package telemetry

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestTraceContextHeaderRoundTrip(t *testing.T) {
	tc := TraceContext{TraceID: "0abc", SpanID: "0def", Campaign: "c0001", Hedged: true}
	h := make(http.Header)
	tc.Inject(h)
	got, ok := TraceFromHeaders(h)
	if !ok {
		t.Fatal("TraceFromHeaders: ok=false after Inject")
	}
	if got != tc {
		t.Fatalf("round trip: got %+v want %+v", got, tc)
	}
	if h.Get(HeaderHedge) != "1" {
		t.Fatalf("hedge header: got %q want 1", h.Get(HeaderHedge))
	}
}

func TestTraceContextZeroInjectsNothing(t *testing.T) {
	h := make(http.Header)
	TraceContext{}.Inject(h)
	if len(h) != 0 {
		t.Fatalf("zero context wrote headers: %v", h)
	}
	if _, ok := TraceFromHeaders(h); ok {
		t.Fatal("TraceFromHeaders: ok=true on empty headers")
	}
}

func TestMintIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := MintID()
		if len(id) != 16 {
			t.Fatalf("MintID length: got %q", id)
		}
		if seen[id] {
			t.Fatalf("MintID repeated %q", id)
		}
		seen[id] = true
	}
}

func TestNilCellTraceIsSafe(t *testing.T) {
	var tr *CellTrace
	tr.Stage(StageCompute, time.Now())
	tr.StageDetail(StageCache, time.Now(), "hit")
	tr.Record(StageSpan{Stage: StageRemote})
	tr.Adopt([]StageSpan{{Stage: StageCompute}}, "w1")
	tr.SetJoined("x")
	tr.SetCached(true)
	tr.SetError(nil)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil trace Spans: got %v", got)
	}
	if got := tr.TraceID(); got != "" {
		t.Fatalf("nil trace TraceID: got %q", got)
	}
	if got := tr.Context(); got != (TraceContext{}) {
		t.Fatalf("nil trace Context: got %+v", got)
	}
	if got := tr.Finish(); got.TraceID != "" {
		t.Fatalf("nil trace Finish: got %+v", got)
	}
}

func TestCellTraceInheritsAndFinishes(t *testing.T) {
	parent := TraceContext{TraceID: "t1", SpanID: "s1", Campaign: "c0001"}
	tr := NewCellTrace(parent, "deadbeef")
	start := time.Now()
	tr.Stage(StageAdmission, start)
	tr.StageDetail(StageCache, start, "miss")
	tr.Adopt([]StageSpan{{Stage: StageCompute, DurNs: 10}}, "w1")
	tr.SetCached(false)

	ctx := tr.Context()
	if ctx.TraceID != "t1" || ctx.SpanID == "" || ctx.SpanID == "s1" {
		t.Fatalf("Context: got %+v, want inherited trace with fresh span", ctx)
	}

	snap := tr.Finish()
	if snap.TraceID != "t1" || snap.Parent != "s1" || snap.Campaign != "c0001" {
		t.Fatalf("snapshot identity: %+v", snap)
	}
	if snap.Digest != "deadbeef" || len(snap.Spans) != 3 {
		t.Fatalf("snapshot content: %+v", snap)
	}
	if !snap.Spans[2].Child || snap.Spans[2].Worker != "w1" {
		t.Fatalf("adopted span not marked child/worker: %+v", snap.Spans[2])
	}
}

func TestStageSumExcludesChildrenAndLosingHedges(t *testing.T) {
	s := CellTraceSnapshot{
		WallNs: 100,
		Spans: []StageSpan{
			{Stage: StageCache, DurNs: 10},
			{Stage: StageRemote, DurNs: 50, Winner: true, Hedged: true},
			{Stage: StageRemote, DurNs: 70, Hedged: true}, // losing leg overlaps
			{Stage: StageCompute, DurNs: 40, Child: true}, // nested in remote
		},
	}
	if got := s.StageSumNs(); got != 60 {
		t.Fatalf("StageSumNs: got %d want 60", got)
	}
	totals := s.StageTotalsUs()
	// Totals aggregate all top-level spans (both remote legs) by stage.
	if len(totals) != 2 {
		t.Fatalf("StageTotalsUs keys: %v", totals)
	}
}

func TestTraceRingWraps(t *testing.T) {
	r := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		r.Add(CellTraceSnapshot{WallNs: int64(i)})
	}
	if r.Total() != 10 {
		t.Fatalf("Total: got %d want 10", r.Total())
	}
	snaps := r.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("Snapshot len: got %d want 4", len(snaps))
	}
	for i, s := range snaps {
		if want := int64(6 + i); s.WallNs != want {
			t.Fatalf("snapshot[%d]: got wall %d want %d (oldest-first)", i, s.WallNs, want)
		}
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var r *TraceRing
	r.Add(CellTraceSnapshot{})
	if r.Total() != 0 || r.Snapshot() != nil {
		t.Fatal("nil TraceRing not inert")
	}
}

func TestWaterfallRenders(t *testing.T) {
	base := time.Now().UnixNano()
	s := CellTraceSnapshot{
		TraceID: "t1", Digest: "deadbeefdeadbeef", StartUnixNs: base, WallNs: 1e6,
		Spans: []StageSpan{
			{Stage: StageAdmission, StartUnixNs: base, DurNs: 2e5},
			{Stage: StageRemote, StartUnixNs: base + 2e5, DurNs: 8e5, Worker: "w1", Hedged: true, Winner: true},
			{Stage: StageCompute, StartUnixNs: base + 3e5, DurNs: 6e5, Worker: "w1", Child: true},
		},
	}
	var b strings.Builder
	if err := s.Waterfall(&b, 40); err != nil {
		t.Fatalf("Waterfall: %v", err)
	}
	out := b.String()
	for _, want := range []string{"trace t1", "cell deadbeefdead", "admission", "remote", "└ compute", "winner", "hedge", "w1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("waterfall missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "\n") != 4 {
		t.Fatalf("waterfall line count: got %d want 4\n%s", strings.Count(out, "\n"), out)
	}
}

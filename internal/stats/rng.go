// Package stats provides deterministic pseudo-random number generation,
// probability distributions, streaming summaries, percentile estimation,
// and confidence intervals for the Duplexity simulation stack.
//
// Every stochastic component in the repository draws randomness through
// this package with an explicit seed, so all experiments are reproducible
// bit-for-bit.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256**. It is not safe for concurrent use; give each simulated
// entity its own RNG (use Split to derive independent streams).
type RNG struct {
	s [4]uint64
	// cached spare normal variate for NormFloat64 (polar method).
	haveSpare bool
	spare     float64
}

// splitmix64 advances the seed expander used to initialize xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two RNGs constructed with
// the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Avoid the all-zero state (cannot occur from splitmix64, but be safe).
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives a new, statistically independent RNG from r's stream.
// It is the supported way to hand child components their own generators.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd2b74407b1ce6e93)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform variate in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be overkill;
	// modulo bias is negligible for n << 2^64 but we still reject to keep
	// the generator exactly uniform.
	bound := uint64(n)
	threshold := -bound % bound
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % bound)
		}
	}
}

// Int63 returns a non-negative int64 variate.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *RNG) ExpFloat64() float64 {
	// Inverse transform; guard against log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

package jobstore

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// ExecFunc runs one dispatched cell to completion. The serve layer
// implements it by pushing the cell through its normal admission →
// coalesce → pool path, wrapping drain/shutdown errors with
// MarkCancelled so the manager leaves the cell resumable.
type ExecFunc func(d Dispatched) (expt.ServedResult, error)

// LookupFunc probes the campaign cache for a cell's raw result bytes
// without executing anything — how resumed durable jobs rematerialize
// cells their cursor says already finished.
type LookupFunc func(cell expt.CellSpec) (json.RawMessage, bool)

// Config configures a Manager.
type Config struct {
	// Dir is the durable store root; empty disables durability
	// (ephemeral jobs still work, nothing survives a restart).
	Dir string
	// Defaults is the quota applied to tenants without an explicit
	// weight; Weights overrides fair-share weight per tenant.
	Defaults Quota
	Weights  map[string]float64
	// MaxInflight caps cells in flight across all tenants.
	MaxInflight int
	// DefaultTTL bounds job state lifetime when the submission names no
	// TTL (default 24h).
	DefaultTTL time.Duration
	// GCInterval is the reap/expire loop period (default 1m).
	GCInterval time.Duration

	Exec   ExecFunc
	Lookup LookupFunc
}

// Job is one submitted job's runtime state: the result lines streamed
// to clients, completion counters, and the notification channel stream
// readers block on. All fields behind mu.
type Job struct {
	id       string
	tenant   string
	lane     Lane
	kind     string
	cells    []expt.CellSpec
	durable  bool
	deadline time.Time
	ttl      time.Duration
	created  time.Time

	mu        sync.Mutex
	lines     []json.RawMessage // index-aligned; nil until the cell resolves
	ready     int               // prefix of lines released to streams
	completed int
	failed    int
	cancelled int
	state     string // "" while running
	doneAt    time.Time
	dlMet     bool
	finalized bool
	resumed   bool
	notify    chan struct{} // closed and replaced whenever ready/state advances
}

// ID returns the job's identifier.
func (j *Job) ID() string { return j.id }

// Tenant returns the owning tenant.
func (j *Job) Tenant() string { return j.tenant }

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: j.state, Cells: len(j.cells),
		Completed: j.completed, Failed: j.failed, Cancelled: j.cancelled,
		Tenant: j.tenant, Lane: j.lane, Durable: j.durable, Resumed: j.resumed,
		DeadlineMet: j.dlMet,
	}
	if st.State == "" {
		st.State = StateRunning
	}
	st.Done = j.finalized
	if !j.deadline.IsZero() {
		st.DeadlineUnixMs = j.deadline.UnixMilli()
	}
	return st
}

// Next returns the result lines from index from onward that are ready,
// whether the job is finished, and a channel that closes on the next
// advance — the same contract the serve stream loop has always used.
func (j *Job) Next(from int) (lines []json.RawMessage, done bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if from < j.ready {
		lines = append(lines, j.lines[from:j.ready]...)
	}
	return lines, j.finalized, j.notify
}

// setLine records a resolved cell's stream line and advances the ready
// prefix past every contiguously resolved cell. Caller holds j.mu.
func (j *Job) setLineLocked(index int, line json.RawMessage) {
	j.lines[index] = line
	for j.ready < len(j.lines) && j.lines[j.ready] != nil {
		j.ready++
	}
}

func (j *Job) wakeLocked() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// encodeLine builds the stream line for one resolved cell. Durable
// jobs use RawLine (raw cache bytes, no cached flag) so resumed and
// uninterrupted runs stream byte-identical rows; ephemeral jobs keep
// the legacy CellLine shape with the decoded result inline.
func (j *Job) encodeLine(index int, res *expt.ServedResult, errMsg string) json.RawMessage {
	if j.durable {
		l := RawLine{Index: index, Cell: j.cells[index], Error: errMsg}
		if res != nil {
			if res.Raw != nil {
				l.Result = res.Raw.Result
			} else if raw, err := json.Marshal(res); err == nil {
				l.Result = raw // exec stubs without a raw envelope (tests)
			}
		}
		raw, _ := json.Marshal(l)
		return raw
	}
	l := CellLine{Index: index, Cell: j.cells[index], Result: res, Error: errMsg}
	raw, _ := json.Marshal(l)
	return raw
}

// Manager owns every job's lifecycle: submission, fair-share dispatch,
// durable progress, resume, and TTL garbage collection.
type Manager struct {
	cfg   Config
	store *Store // nil when Config.Dir == ""
	sched *Scheduler

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string
	seq   int

	wg          sync.WaitGroup
	gcStop      chan struct{}
	gcOnceClose sync.Once

	submitted       atomic.Int64
	resumedJobs     atomic.Int64
	completedJobs   atomic.Int64
	failedJobs      atomic.Int64
	expiredJobs     atomic.Int64
	reapedJobs      atomic.Int64
	cellsDispatched atomic.Int64
	deadlineMet     atomic.Int64
	deadlineMissed  atomic.Int64

	histMu    sync.Mutex
	waitIntUs telemetry.Histogram
	waitBatUs telemetry.Histogram
}

// NewManager builds a manager. With a Dir, the durable store is opened
// (created if missing) but nothing is resumed until Start.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("jobstore: Config.Exec is required")
	}
	if cfg.DefaultTTL <= 0 {
		cfg.DefaultTTL = 24 * time.Hour
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = time.Minute
	}
	m := &Manager{
		cfg:    cfg,
		sched:  NewScheduler(cfg.Defaults, cfg.Weights, cfg.MaxInflight),
		jobs:   make(map[string]*Job),
		gcStop: make(chan struct{}),
	}
	if cfg.Dir != "" {
		st, err := OpenStore(cfg.Dir)
		if err != nil {
			return nil, err
		}
		m.store = st
		m.seq = st.MaxSeq()
	}
	return m, nil
}

// Start launches the dispatch and GC loops and resumes incomplete
// durable jobs from disk, returning how many were resumed.
func (m *Manager) Start() (resumed int, err error) {
	if m.store != nil {
		resumed, err = m.resume()
		if err != nil {
			return 0, err
		}
	}
	m.wg.Add(1)
	go m.dispatchLoop()
	m.wg.Add(1)
	go m.gcLoop()
	return resumed, nil
}

// Submit validates quota, persists the job (when durable), queues its
// cells, and returns the live job.
func (m *Manager) Submit(spec JobSpec) (*Job, error) {
	if spec.Tenant == "" {
		spec.Tenant = DefaultTenant
	}
	if spec.Lane == "" {
		spec.Lane = LaneBatch
	}
	if len(spec.Cells) == 0 {
		return nil, fmt.Errorf("jobstore: job has no cells")
	}
	ttl := spec.TTL
	if ttl <= 0 {
		ttl = m.cfg.DefaultTTL
	}
	now := time.Now()

	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("j%04d", m.seq)
	m.mu.Unlock()

	j := &Job{
		id: id, tenant: spec.Tenant, lane: spec.Lane, kind: spec.Kind,
		cells: spec.Cells, durable: spec.Durable, deadline: spec.Deadline,
		ttl: ttl, created: now,
		lines:  make([]json.RawMessage, len(spec.Cells)),
		notify: make(chan struct{}),
	}

	sj := &schedJob{id: id}
	for i, cs := range spec.Cells {
		sj.cells = append(sj.cells, pendingCell{
			jobID: id, index: i, cell: cs, deadline: spec.Deadline, queued: now,
		})
	}
	if err := m.sched.AddJob(spec.Tenant, sj, spec.Lane, false); err != nil {
		return nil, err
	}

	if spec.Durable && m.store != nil {
		rec := m.record(j)
		if err := m.store.Put(rec); err != nil {
			// The job is already queued; losing durability is worse than
			// failing the submission, so unwind it.
			m.sched.CancelJob(spec.Tenant, id)
			m.sched.JobDone(spec.Tenant)
			return nil, err
		}
	}

	m.mu.Lock()
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.submitted.Add(1)
	return j, nil
}

func (m *Manager) record(j *Job) Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := Record{
		ID: j.id, Tenant: j.tenant, Lane: j.lane, Kind: j.kind, Cells: j.cells,
		TTLSec: int64(j.ttl / time.Second), CreatedUnixMs: j.created.UnixMilli(),
		State: j.state, DeadlineMet: j.dlMet,
	}
	if rec.State == "" {
		rec.State = StateRunning
	}
	if !j.deadline.IsZero() {
		rec.DeadlineUnixMs = j.deadline.UnixMilli()
	}
	if !j.doneAt.IsZero() {
		rec.DoneUnixMs = j.doneAt.UnixMilli()
	}
	return rec
}

// Get returns a job by ID, or nil.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// List returns job statuses in submission order, optionally filtered
// by tenant ("" = all).
func (m *Manager) List(tenant string) []JobStatus {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := m.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()
	var out []JobStatus
	for _, j := range jobs {
		if tenant != "" && j.tenant != tenant {
			continue
		}
		out = append(out, j.Status())
	}
	return out
}

// AdmitCell charges a quota-gated single-cell request against the
// tenant's quota; the returned release must be called when the cell
// resolves.
func (m *Manager) AdmitCell(tenant string) (release func(), err error) {
	if tenant == "" {
		tenant = DefaultTenant
	}
	if err := m.sched.TryAcquire(tenant); err != nil {
		return nil, err
	}
	m.cellsDispatched.Add(1)
	var once sync.Once
	return func() { once.Do(func() { m.sched.Release(tenant) }) }, nil
}

// dispatchLoop pulls cells from the scheduler and runs each on its own
// goroutine (the admission queue under Exec provides the real
// concurrency limit; the scheduler's global cap bounds the fan-out).
func (m *Manager) dispatchLoop() {
	defer m.wg.Done()
	for {
		d, ok := m.sched.Next()
		if !ok {
			return
		}
		m.cellsDispatched.Add(1)
		m.observeWait(d)
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			defer m.sched.Release(d.Tenant)
			res, err := m.cfg.Exec(d)
			m.complete(d, &res, err)
		}()
	}
}

func (m *Manager) observeWait(d Dispatched) {
	us := time.Since(d.Queued).Microseconds()
	if us < 0 {
		us = 0
	}
	m.histMu.Lock()
	if d.Lane == LaneInteractive {
		m.waitIntUs.Observe(uint64(us))
	} else {
		m.waitBatUs.Observe(uint64(us))
	}
	m.histMu.Unlock()
}

// complete records one dispatched cell's outcome.
func (m *Manager) complete(d Dispatched, res *expt.ServedResult, err error) {
	j := m.Get(d.JobID)
	if j == nil {
		return
	}
	j.mu.Lock()
	switch {
	case err != nil && IsCancelled(err):
		j.cancelled++
		if !j.durable {
			// Ephemeral jobs account cancelled cells in the stream so a
			// drained campaign still terminates; durable jobs leave the
			// cell unresolved — the next boot re-dispatches it.
			j.setLineLocked(d.Index, j.encodeLine(d.Index, nil, err.Error()))
		}
	case err != nil:
		j.failed++
		j.setLineLocked(d.Index, j.encodeLine(d.Index, nil, err.Error()))
		if j.durable && m.store != nil {
			_ = m.store.AppendCursor(j.id, CursorEntry{Index: d.Index, Error: err.Error()})
		}
	default:
		j.completed++
		j.setLineLocked(d.Index, j.encodeLine(d.Index, res, ""))
		if j.durable && m.store != nil {
			_ = m.store.AppendCursor(j.id, CursorEntry{Index: d.Index})
		}
	}
	m.finalizeLocked(j)
	j.wakeLocked()
	j.mu.Unlock()
}

// finalizeLocked moves a job to its terminal state once every cell is
// accounted for. Durable jobs do not count cancelled cells — those
// resume — so a drained durable job simply stays running (stalled)
// until the next boot. Caller holds j.mu.
func (m *Manager) finalizeLocked(j *Job) {
	if j.finalized {
		return
	}
	accounted := j.completed + j.failed
	if !j.durable {
		accounted += j.cancelled
	}
	if accounted < len(j.cells) {
		return
	}
	j.finalized = true
	j.doneAt = time.Now()
	if j.failed > 0 {
		j.state = StateFailed
	} else if j.state == "" {
		j.state = StateDone
	}
	if !j.deadline.IsZero() {
		if j.state == StateDone && !j.doneAt.After(j.deadline) {
			j.dlMet = true
			m.deadlineMet.Add(1)
		} else {
			m.deadlineMissed.Add(1)
		}
	}
	switch j.state {
	case StateDone:
		m.completedJobs.Add(1)
	case StateFailed:
		m.failedJobs.Add(1)
	}
	if j.durable && m.store != nil {
		rec := Record{
			ID: j.id, Tenant: j.tenant, Lane: j.lane, Kind: j.kind, Cells: j.cells,
			TTLSec: int64(j.ttl / time.Second), CreatedUnixMs: j.created.UnixMilli(),
			State: j.state, DoneUnixMs: j.doneAt.UnixMilli(), DeadlineMet: j.dlMet,
		}
		if !j.deadline.IsZero() {
			rec.DeadlineUnixMs = j.deadline.UnixMilli()
		}
		_ = m.store.Put(rec)
	}
	m.sched.JobDone(j.tenant)
}

// resume rebuilds jobs from disk. Finished jobs come back read-only
// (their streams rematerialized from the cache where possible);
// unfinished jobs re-enqueue exactly the cells their cursor does not
// cover. Returns how many jobs resumed execution.
func (m *Manager) resume() (int, error) {
	stored, err := m.store.Load()
	if err != nil {
		return 0, err
	}
	resumed := 0
	for _, sj := range stored {
		rec := sj.Record
		j := &Job{
			id: rec.ID, tenant: rec.Tenant, lane: rec.Lane, kind: rec.Kind,
			cells: rec.Cells, durable: true,
			ttl:     time.Duration(rec.TTLSec) * time.Second,
			created: time.UnixMilli(rec.CreatedUnixMs),
			lines:   make([]json.RawMessage, len(rec.Cells)),
			notify:  make(chan struct{}),
			dlMet:   rec.DeadlineMet,
		}
		if j.ttl <= 0 {
			j.ttl = m.cfg.DefaultTTL
		}
		if rec.DeadlineUnixMs != 0 {
			j.deadline = time.UnixMilli(rec.DeadlineUnixMs)
		}
		seen := make(map[int]CursorEntry, len(sj.Cursor))
		for _, e := range sj.Cursor {
			if e.Index >= 0 && e.Index < len(j.cells) {
				seen[e.Index] = e
			}
		}
		var pending []pendingCell
		now := time.Now()
		for i := range j.cells {
			e, ok := seen[i]
			switch {
			case ok && e.Error != "":
				j.failed++
				j.setLineLocked(i, j.encodeLine(i, nil, e.Error))
			case ok:
				if raw, hit := m.lookup(j.cells[i]); hit {
					j.completed++
					l := RawLine{Index: i, Cell: j.cells[i], Result: raw}
					b, _ := json.Marshal(l)
					j.setLineLocked(i, b)
					continue
				}
				// Cursor says finished but the cache entry is gone
				// (wiped or partial write): re-run the cell rather than
				// serve a hole.
				pending = append(pending, pendingCell{jobID: j.id, index: i, cell: j.cells[i], deadline: j.deadline, queued: now})
			default:
				pending = append(pending, pendingCell{jobID: j.id, index: i, cell: j.cells[i], deadline: j.deadline, queued: now})
			}
		}

		terminal := rec.State == StateDone || rec.State == StateFailed || rec.State == StateExpired
		if terminal {
			j.state = rec.State
			j.finalized = true
			if rec.DoneUnixMs != 0 {
				j.doneAt = time.UnixMilli(rec.DoneUnixMs)
			} else {
				j.doneAt = j.created
			}
			// A finished cell whose cache entry vanished cannot be
			// re-run (the job is closed); surface the gap explicitly.
			for i := range j.cells {
				if j.lines[i] == nil {
					j.setLineLocked(i, j.encodeLine(i, nil, "result evicted from cache"))
				}
			}
		} else {
			j.resumed = true
			if len(pending) == 0 {
				m.finalizeViaLock(j, true)
			} else {
				sjq := &schedJob{id: j.id, cells: pending}
				_ = m.sched.AddJob(j.tenant, sjq, j.lane, true)
				resumed++
				m.resumedJobs.Add(1)
			}
		}

		m.mu.Lock()
		m.jobs[j.id] = j
		m.order = append(m.order, j.id)
		m.mu.Unlock()
	}
	return resumed, nil
}

// finalizeViaLock finalizes a job that reached terminal state outside
// the dispatch path (resume with full cursor coverage). countJob keeps
// the scheduler's queued-jobs balance right: resume never charged one.
func (m *Manager) finalizeViaLock(j *Job, addJobFirst bool) {
	if addJobFirst {
		// Balance the JobDone inside finalizeLocked.
		_ = m.sched.AddJob(j.tenant, &schedJob{id: j.id}, j.lane, true)
	}
	j.mu.Lock()
	m.finalizeLocked(j)
	j.wakeLocked()
	j.mu.Unlock()
}

func (m *Manager) lookup(cs expt.CellSpec) (json.RawMessage, bool) {
	if m.cfg.Lookup == nil {
		return nil, false
	}
	return m.cfg.Lookup(cs)
}

// gcLoop periodically reaps finished jobs past their TTL and expires
// unfinished jobs that outlived theirs.
func (m *Manager) gcLoop() {
	defer m.wg.Done()
	t := time.NewTicker(m.cfg.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-m.gcStop:
			return
		case now := <-t.C:
			m.gcOnce(now)
		}
	}
}

// gcOnce runs one GC sweep at the given instant (exposed for tests).
func (m *Manager) gcOnce(now time.Time) {
	m.mu.Lock()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, id := range m.order {
		if j := m.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	m.mu.Unlock()

	for _, j := range jobs {
		j.mu.Lock()
		ttl := j.ttl
		if ttl <= 0 {
			ttl = m.cfg.DefaultTTL
		}
		switch {
		case j.finalized && now.Sub(j.doneAt) > ttl:
			j.mu.Unlock()
			m.reap(j)
		case !j.finalized && now.Sub(j.created) > ttl:
			// Expire: drop pending cells, close the job. In-flight cells
			// may still land; complete() tolerates them (state stays
			// expired, counters advance harmlessly).
			j.state = StateExpired
			j.finalized = true
			j.doneAt = now
			for i := range j.cells {
				if j.lines[i] == nil {
					j.setLineLocked(i, j.encodeLine(i, nil, "job expired"))
				}
			}
			j.wakeLocked()
			j.mu.Unlock()
			m.sched.CancelJob(j.tenant, j.id)
			m.sched.JobDone(j.tenant)
			m.expiredJobs.Add(1)
			if j.durable && m.store != nil {
				_ = m.store.Put(m.record(j))
			}
		default:
			j.mu.Unlock()
		}
	}
}

func (m *Manager) reap(j *Job) {
	m.mu.Lock()
	delete(m.jobs, j.id)
	for i, id := range m.order {
		if id == j.id {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
	if j.durable && m.store != nil {
		_ = m.store.Reap(j.id)
	}
	m.reapedJobs.Add(1)
}

// Stop closes the scheduler, cancels still-pending ephemeral cells
// (durable ones stay on disk for the next boot), and waits — bounded
// by ctx — for in-flight dispatch goroutines to record their
// outcomes.
func (m *Manager) Stop(ctx context.Context) error {
	m.gcOnceClose.Do(func() { close(m.gcStop) })
	rest := m.sched.Close()
	for _, d := range rest {
		if j := m.Get(d.JobID); j != nil && !j.durable {
			m.complete(d, nil, MarkCancelled(ErrClosed))
		}
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("jobstore: stop interrupted: %w", ctx.Err())
	}
}

// Stats is the manager's metrics snapshot.
type Stats struct {
	Jobs            int                    `json:"jobs"`
	Submitted       int64                  `json:"submitted"`
	Resumed         int64                  `json:"resumed"`
	Completed       int64                  `json:"completed"`
	Failed          int64                  `json:"failed"`
	Expired         int64                  `json:"expired"`
	Reaped          int64                  `json:"reaped"`
	CellsDispatched int64                  `json:"cells_dispatched"`
	DeadlineMet     int64                  `json:"deadline_met"`
	DeadlineMissed  int64                  `json:"deadline_missed"`
	Tenants         map[string]TenantStats `json:"tenants,omitempty"`
}

// Stats snapshots counters and per-tenant scheduler state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	n := len(m.jobs)
	m.mu.Unlock()
	return Stats{
		Jobs:            n,
		Submitted:       m.submitted.Load(),
		Resumed:         m.resumedJobs.Load(),
		Completed:       m.completedJobs.Load(),
		Failed:          m.failedJobs.Load(),
		Expired:         m.expiredJobs.Load(),
		Reaped:          m.reapedJobs.Load(),
		CellsDispatched: m.cellsDispatched.Load(),
		DeadlineMet:     m.deadlineMet.Load(),
		DeadlineMissed:  m.deadlineMissed.Load(),
		Tenants:         m.sched.Snapshot(),
	}
}

// WaitHistograms copies the per-lane scheduler-wait histograms
// (microseconds) into dst via merge — the serve metrics exporter's
// hook.
func (m *Manager) WaitHistograms(interactive, batch *telemetry.Histogram) {
	m.histMu.Lock()
	defer m.histMu.Unlock()
	interactive.Merge(&m.waitIntUs)
	batch.Merge(&m.waitBatUs)
}

// SortStatuses orders job statuses by ID (stable display order for
// CLI and Statz consumers).
func SortStatuses(sts []JobStatus) {
	sort.Slice(sts, func(i, j int) bool { return sts[i].ID < sts[j].ID })
}

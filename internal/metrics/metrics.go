// Package metrics implements the multi-program performance metrics used
// in the evaluation: system throughput (STP) and average normalized turn-
// around time (ANTT) per Eyerman & Eeckhout, plus normalization helpers
// for the figure tables.
package metrics

import (
	"fmt"
	"math"
)

// STP is system throughput: the sum over threads of their multi-program
// IPC relative to their isolated single-program IPC. Higher is better;
// n perfectly isolated threads give STP = n.
func STP(multiIPC, singleIPC []float64) (float64, error) {
	if len(multiIPC) != len(singleIPC) || len(multiIPC) == 0 {
		return 0, fmt.Errorf("metrics: STP needs matching non-empty IPC slices (%d vs %d)", len(multiIPC), len(singleIPC))
	}
	s := 0.0
	for i := range multiIPC {
		if singleIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: thread %d single-program IPC must be positive", i)
		}
		s += multiIPC[i] / singleIPC[i]
	}
	return s, nil
}

// ANTT is average normalized turnaround time: the mean slowdown across
// threads. Lower is better; 1 means no interference.
func ANTT(multiIPC, singleIPC []float64) (float64, error) {
	if len(multiIPC) != len(singleIPC) || len(multiIPC) == 0 {
		return 0, fmt.Errorf("metrics: ANTT needs matching non-empty IPC slices")
	}
	s := 0.0
	for i := range multiIPC {
		if multiIPC[i] <= 0 {
			return 0, fmt.Errorf("metrics: thread %d multi-program IPC must be positive", i)
		}
		s += singleIPC[i] / multiIPC[i]
	}
	return s / float64(len(multiIPC)), nil
}

// Normalize divides each value by values[base], the paper's presentation
// convention ("normalized to Baseline").
func Normalize(values []float64, base int) ([]float64, error) {
	if base < 0 || base >= len(values) {
		return nil, fmt.Errorf("metrics: base index %d outside %d values", base, len(values))
	}
	if values[base] == 0 {
		return nil, fmt.Errorf("metrics: base value is zero")
	}
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v / values[base]
	}
	return out, nil
}

// GeoMean returns the geometric mean of positive values — the standard
// aggregate for normalized performance ratios.
func GeoMean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("metrics: geomean of nothing")
	}
	s := 0.0
	for i, v := range values {
		if v <= 0 {
			return 0, fmt.Errorf("metrics: geomean needs positive values (got %v at %d)", v, i)
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(values))), nil
}

// Mean returns the arithmetic mean.
func Mean(values []float64) (float64, error) {
	if len(values) == 0 {
		return 0, fmt.Errorf("metrics: mean of nothing")
	}
	s := 0.0
	for _, v := range values {
		s += v
	}
	return s / float64(len(values)), nil
}

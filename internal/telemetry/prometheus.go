package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PrometheusContentType is the Content-Type for the text exposition
// format emitted by WritePrometheus.
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromName converts a dotted registry name to a valid Prometheus metric
// name under prefix: "serve.cells.cache_hits" with prefix "duplexity"
// becomes "duplexity_serve_cells_cache_hits".
func PromName(prefix, name string) string {
	var b strings.Builder
	b.Grow(len(prefix) + 1 + len(name))
	if prefix != "" {
		b.WriteString(prefix)
		b.WriteByte('_')
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a sorted, escaped label block ("" when empty).
func promLabels(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		v := labels[k]
		v = strings.ReplaceAll(v, `\`, `\\`)
		v = strings.ReplaceAll(v, "\n", `\n`)
		v = strings.ReplaceAll(v, `"`, `\"`)
		b.WriteString(v)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels renders base labels plus one extra pair.
func mergeLabels(labels map[string]string, k, v string) string {
	m := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		m[lk] = lv
	}
	m[k] = v
	return promLabels(m)
}

// WritePrometheus encodes a registry snapshot in the Prometheus text
// exposition format (version 0.0.4). Counters and gauges map directly;
// log2 histograms become cumulative le-buckets with exact bounds:
// bucket k holds integer observations in [2^(k-1), 2^k), so its
// cumulative upper bound is le = 2^k − 1 (bucket 0, exact zeros, is
// le = 0); the top saturating bucket folds into +Inf. Metric names are
// sorted, so output is deterministic and diffable. labels (may be nil)
// are attached to every sample — the coordinator's fleet aggregation
// uses this to tag each worker's scrape.
func WritePrometheus(w io.Writer, s Snapshot, prefix string, labels map[string]string) error {
	lb := promLabels(labels)

	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PromName(prefix, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s%s %d\n", n, n, lb, s.Counters[name]); err != nil {
			return fmt.Errorf("telemetry: writing prometheus counter %s: %w", name, err)
		}
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := PromName(prefix, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s%s %s\n", n, n, lb,
			strconv.FormatFloat(s.Gauges[name], 'g', -1, 64)); err != nil {
			return fmt.Errorf("telemetry: writing prometheus gauge %s: %w", name, err)
		}
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		n := PromName(prefix, name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return fmt.Errorf("telemetry: writing prometheus histogram %s: %w", name, err)
		}
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Hi == ^uint64(0) {
				// The saturating top bucket has no finite upper bound;
				// its observations are covered by +Inf below.
				continue
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				n, mergeLabels(labels, "le", strconv.FormatUint(b.Hi-1, 10)), cum); err != nil {
				return fmt.Errorf("telemetry: writing prometheus histogram %s: %w", name, err)
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
			n, mergeLabels(labels, "le", "+Inf"), h.Count,
			n, lb, h.Sum,
			n, lb, h.Count); err != nil {
			return fmt.Errorf("telemetry: writing prometheus histogram %s: %w", name, err)
		}
	}
	return nil
}

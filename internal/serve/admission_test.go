package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// newTestServer builds a server over a tiny suite, optionally swapping
// the cell runner for a stub so admission behavior can be tested
// without multi-second simulations.
func newTestServer(t *testing.T, cfg Config, run func(expt.CellSpec) (expt.ServedResult, error)) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Suite == nil {
		cfg.Suite = expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1})
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run != nil {
		s.run = func(cs expt.CellSpec, _ *telemetry.CellTrace, _ time.Time) (expt.ServedResult, error) { return run(cs) }
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
	})
	return s, ts
}

func matrixCell(load float64) expt.CellSpec {
	return expt.CellSpec{Kind: expt.KindMatrix, Design: "Baseline", Workload: "RSC", Load: load}
}

func stubResult(cs expt.CellSpec) expt.ServedResult {
	return expt.ServedResult{Kind: cs.Kind, Design: cs.Design, Workload: cs.Workload, Load: cs.Load, Digest: "stub"}
}

func postJSON(t *testing.T, url string, body any) (int, http.Header, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decoding %s: %v (%s)", url, err, data)
		}
	}
	return resp.StatusCode
}

// pollStatz waits until pred(statz) holds (metric updates race HTTP
// responses by design, so assertions on counters must poll).
func pollStatz(t *testing.T, base string, what string, pred func(Statz) bool) Statz {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st Statz
		getJSON(t, base+"/v1/statz", &st)
		if pred(st) {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("statz never satisfied %q: %+v", what, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func counter(st Statz, name string) uint64 { return st.Metrics.Counters[name] }

// TestQueueFullSheds429: with the only worker busy and the one-deep
// queue occupied, the next open-loop submission is shed with 429 and a
// Retry-After hint instead of queueing unboundedly.
func TestQueueFullSheds429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		started <- struct{}{}
		<-release
		return stubResult(cs), nil
	})

	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, _, _ := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30+0.01*float64(i)))
			codes[i] = c
		}()
	}
	<-started // worker occupied by one cell
	pollStatz(t, ts.URL, "admitted == 2", func(st Statz) bool { return counter(st, "serve.admitted") == 2 })

	status, hdr, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.40))
	if status != http.StatusTooManyRequests {
		t.Fatalf("third submission = %d (%s), want 429", status, body)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	var er ErrorResponse
	if json.Unmarshal(body, &er) != nil || er.RetryAfterSec < 1 {
		t.Errorf("429 body = %s, want retry_after_sec >= 1", body)
	}

	close(release) // let the running and queued cells finish
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Errorf("admitted cell %d = %d, want 200", i, c)
		}
	}
	st := pollStatz(t, ts.URL, "shed recorded", func(st Statz) bool { return counter(st, "serve.shed.queue_full") == 1 })
	if counter(st, "serve.cells.completed") != 2 {
		t.Errorf("completed = %d, want 2", counter(st, "serve.cells.completed"))
	}
}

// TestRateLimit429: the token bucket sheds submissions beyond the burst
// with 429 and a Retry-After hint.
func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, RatePerSec: 0.01, Burst: 1},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30)); status != http.StatusOK {
		t.Fatalf("first submission = %d (%s), want 200", status, body)
	}
	status, hdr, _ := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.31))
	if status != http.StatusTooManyRequests {
		t.Fatalf("second submission = %d, want 429", status)
	}
	if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", hdr.Get("Retry-After"))
	}
	pollStatz(t, ts.URL, "rate-limit shed", func(st Statz) bool { return counter(st, "serve.shed.rate_limited") == 1 })
}

// TestDeadlineCancelledAndJournaled: a cell whose requester's deadline
// expires while it is still queued is cancelled — never simulated — and
// journaled as incomplete, so the audit trail distinguishes lost work
// from finished work.
func TestDeadlineCancelledAndJournaled(t *testing.T) {
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: dir})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var mu sync.Mutex
	var executed []float64
	s, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 4}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		started <- struct{}{}
		mu.Lock()
		executed = append(executed, cs.Load)
		mu.Unlock()
		<-release
		return stubResult(cs), nil
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // occupies the worker
		defer wg.Done()
		postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30))
	}()
	<-started

	victim := matrixCell(0.40)
	status, _, body := postJSON(t, ts.URL+"/v1/cells", CellRequest{CellSpec: victim, TimeoutMs: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("deadline-expired submission = %d (%s), want 504", status, body)
	}

	close(release) // finish the first cell; the worker then meets the abandoned one
	pollStatz(t, ts.URL, "cancellation recorded", func(st Statz) bool { return counter(st, "serve.cells.cancelled") == 1 })
	wg.Wait()

	mu.Lock()
	for _, load := range executed {
		if load == victim.Load {
			t.Error("deadline-expired cell was simulated anyway")
		}
	}
	mu.Unlock()

	key, err := suite.ServedKey(victim)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := campaign.ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if e.Status == campaign.StatusCancelled && e.Digest == key.Digest() {
			found = true
		}
	}
	if !found {
		t.Errorf("no cancelled journal entry for the victim cell: %+v", entries)
	}
	if sum := s.suite.Engine().Stats(); sum.Incomplete != 1 {
		t.Errorf("engine incomplete = %d, want 1", sum.Incomplete)
	}
}

// TestPanicIsolation: a panicking cell becomes a 500 and a journal
// record; sibling workers and subsequent cells are unaffected.
func TestPanicIsolation(t *testing.T) {
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: dir})
	_, ts := newTestServer(t, Config{Suite: suite, Workers: 2, QueueDepth: 8}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		if cs.Load == 0.33 {
			panic("synthetic cell failure")
		}
		return stubResult(cs), nil
	})

	status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.33))
	if status != http.StatusInternalServerError || !strings.Contains(string(body), "panicked") {
		t.Fatalf("panicking cell = %d (%s), want 500 with panic message", status, body)
	}
	// The daemon survives and serves the next cell.
	if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30)); status != http.StatusOK {
		t.Fatalf("cell after panic = %d (%s), want 200", status, body)
	}
	st := pollStatz(t, ts.URL, "panic recorded", func(st Statz) bool { return counter(st, "serve.panics") == 1 })
	if counter(st, "serve.cells.completed") != 1 {
		t.Errorf("completed = %d, want 1", counter(st, "serve.cells.completed"))
	}
	entries, err := campaign.ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	foundPanic := false
	for _, e := range entries {
		if e.Status == campaign.StatusPanic {
			foundPanic = true
		}
	}
	if !foundPanic {
		t.Error("no panic journal entry")
	}
}

// TestCoalesceSingleflight: concurrent identical submissions share one
// execution; every requester gets the leader's result.
func TestCoalesceSingleflight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var mu sync.Mutex
	executions := 0
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		started <- struct{}{}
		<-release
		mu.Lock()
		executions++
		mu.Unlock()
		return stubResult(cs), nil
	})

	var wg sync.WaitGroup
	bodies := make([][]byte, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.50))
			if status != http.StatusOK {
				t.Errorf("submission %d = %d (%s)", i, status, body)
			}
			bodies[i] = body
		}()
	}
	<-started // leader is executing; the flight stays registered until released
	pollStatz(t, ts.URL, "2 coalesce hits", func(st Statz) bool { return counter(st, "serve.coalesce.hits") == 2 })
	close(release)
	wg.Wait()

	if !bytes.Equal(bodies[0], bodies[1]) || !bytes.Equal(bodies[0], bodies[2]) {
		t.Errorf("coalesced responses differ:\n%s\n%s\n%s", bodies[0], bodies[1], bodies[2])
	}
	if executions != 1 {
		t.Errorf("executions = %d, want 1 (singleflight)", executions)
	}
	st := pollStatz(t, ts.URL, "1 leader", func(st Statz) bool { return counter(st, "serve.coalesce.leaders") == 1 })
	if counter(st, "serve.admitted") != 1 {
		t.Errorf("admitted = %d, want 1 (followers bypass the queue)", counter(st, "serve.admitted"))
	}
}

// TestValidation400: malformed requests die at the boundary with
// structured field errors; they never spend admission budget.
func TestValidation400(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	status, _, body := postJSON(t, ts.URL+"/v1/cells",
		expt.CellSpec{Kind: "figX", Design: "Pentium", Workload: "nginx", Load: 2})
	if status != http.StatusBadRequest {
		t.Fatalf("invalid cell = %d, want 400", status)
	}
	var er ErrorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	fields := map[string]bool{}
	for _, f := range er.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"kind", "design", "workload"} {
		if !fields[want] {
			t.Errorf("400 body missing field error %q: %s", want, body)
		}
	}

	// Unknown body fields fail loudly (typo protection).
	if status, _, _ := postJSON(t, ts.URL+"/v1/cells", map[string]any{"kind": "matrix", "desing": "Baseline"}); status != http.StatusBadRequest {
		t.Errorf("unknown field = %d, want 400", status)
	}

	if status, _, body := postJSON(t, ts.URL+"/v1/campaigns", expt.CampaignSpec{Kind: "bogus"}); status != http.StatusBadRequest {
		t.Errorf("invalid campaign = %d (%s), want 400", status, body)
	}
	var st Statz
	getJSON(t, ts.URL+"/v1/statz", &st)
	if counter(st, "serve.admitted") != 0 {
		t.Errorf("invalid requests consumed admission: admitted = %d", counter(st, "serve.admitted"))
	}

	if status := getJSON(t, ts.URL+"/v1/campaigns/c9999", nil); status != http.StatusNotFound {
		t.Errorf("unknown campaign id = %d, want 404", status)
	}
}

// TestDrainShedsAndCheckpoints: drain refuses new work with 503,
// finishes every admitted cell, and flushes an unclean checkpoint.
func TestDrainShedsAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: dir})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 4}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		started <- struct{}{}
		<-release
		return stubResult(cs), nil
	})

	var inflightStatus int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		inflightStatus, _, _ = postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30))
	}()
	<-started

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Drain is observable before it completes: healthz flips to 503.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var hz Healthz
		if code := getJSON(t, ts.URL+"/v1/healthz", &hz); code == http.StatusServiceUnavailable && hz.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if status, _, _ := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.44)); status != http.StatusServiceUnavailable {
		t.Errorf("submission during drain = %d, want 503", status)
	}

	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	if inflightStatus != http.StatusOK {
		t.Errorf("in-flight cell during drain = %d, want 200 (drain must finish it)", inflightStatus)
	}
	cp, err := campaign.ReadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint after drain: %v, %v", cp, err)
	}
	if cp.Clean {
		t.Error("drain checkpoint marked clean")
	}
	if cp.Summary.Incomplete != 0 {
		t.Errorf("drain lost %d in-flight cells", cp.Summary.Incomplete)
	}
}

// TestSSEStream: a text/event-stream client gets SSE frames carrying
// the same payloads as the NDJSON stream.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	status, _, body := postJSON(t, ts.URL+"/v1/campaigns",
		expt.CampaignSpec{Kind: expt.CampaignFig5, Designs: []string{"Baseline"}, Workloads: []string{"RSC"}, Loads: []float64{0.3}})
	if status != http.StatusAccepted {
		t.Fatalf("campaign submission = %d (%s), want 202", status, body)
	}
	var acc CampaignAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}

	req, err := http.NewRequest("GET", ts.URL+acc.Stream, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	text := string(data)
	if !strings.Contains(text, "event: cell\n") || !strings.Contains(text, "event: done\n") {
		t.Errorf("SSE stream missing frames:\n%s", text)
	}
}

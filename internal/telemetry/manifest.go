package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Manifest is the machine-readable summary of one simulation run:
// enough to identify the run (tool, config, seed, code version), cost it
// (wall time), and diff its outcomes (counter snapshot, histograms,
// event summary) against other runs or other commits. Both cmd/dyadsim
// and cmd/duplexity write one when -telemetry is given.
type Manifest struct {
	// Tool names the producing binary; Version is the manifest format.
	Tool    string `json:"tool"`
	Version int    `json:"version"`
	// Design is the simulated design point (dyadsim runs).
	Design string `json:"design,omitempty"`
	// Config records the run's flag/parameter values.
	Config map[string]interface{} `json:"config,omitempty"`
	Seed   uint64                 `json:"seed"`
	// GitDescribe identifies the code version ("unknown" outside a git
	// checkout).
	GitDescribe string `json:"git_describe"`
	// WallSeconds is the run's wall-clock duration.
	WallSeconds float64 `json:"wall_seconds"`
	// Cycles is the final simulation cycle (dyadsim runs).
	Cycles uint64 `json:"cycles,omitempty"`
	// Snapshot is the end-of-run registry state (counters, gauges, and
	// histograms — including the Derive'd master-restart latency).
	Snapshot *Snapshot `json:"snapshot,omitempty"`
	// Windows are the periodic snapshots taken during the run.
	Windows []Snapshot `json:"windows,omitempty"`
	// Events summarizes the event trace.
	Events *EventSummary `json:"events,omitempty"`
	// Spans are the reconstructed request timelines (capped by the
	// producer to keep manifests reviewable).
	Spans []Span `json:"spans,omitempty"`
	// Campaign is the experiment-campaign engine's accounting (worker
	// count, cache hits/misses, per-cell wall times) for runs that fan
	// simulation cells through internal/campaign. Typed as interface{}
	// to keep telemetry free of simulator imports; producers embed
	// campaign.Summary here.
	Campaign interface{} `json:"campaign,omitempty"`
	// Extra carries tool-specific sections (e.g. cmd/duplexity's
	// per-experiment timings and per-design campaign summary).
	Extra map[string]interface{} `json:"extra,omitempty"`
}

// ManifestVersion is the current manifest format version.
// Version history: 1 = initial; 2 = adds the campaign section.
const ManifestVersion = 2

// GitDescribe returns `git describe --always --dirty` for the current
// directory, or "unknown" when git or the repository is unavailable.
// Failures are deliberately non-fatal: telemetry must not break runs in
// deployment environments without git.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// WriteJSON encodes the manifest as indented JSON (deterministic: JSON
// object keys are sorted by the encoder).
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("telemetry: encoding manifest: %w", err)
	}
	return nil
}

// WriteFile writes the manifest to path, creating or truncating it.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: creating manifest %s: %w", path, err)
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: closing manifest %s: %w", path, err)
	}
	return nil
}

// ReadManifest parses a manifest file (for tests and diff tooling).
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("telemetry: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("telemetry: parsing manifest %s: %w", path, err)
	}
	return &m, nil
}

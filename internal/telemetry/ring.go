package telemetry

import (
	"bufio"
	"fmt"
	"io"
)

// Ring is a fixed-capacity ring buffer of events implementing Sink.
// Emission never allocates and never blocks; once full, new events
// overwrite the oldest (Dropped counts the overwritten ones). A ring is
// the default sink for interactive runs: bounded memory, with the most
// recent window always available for post-run analysis.
type Ring struct {
	buf   []Event
	total uint64
}

// DefaultRingCap is the default event capacity (32 MiB of events).
const DefaultRingCap = 1 << 20

// NewRing builds a ring holding up to capacity events (≤ 0 uses
// DefaultRingCap).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Emit implements Sink.
func (r *Ring) Emit(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.total%uint64(cap(r.buf))] = e
	}
	r.total++
}

// Len returns the number of buffered events.
func (r *Ring) Len() int { return len(r.buf) }

// Total returns the number of events ever emitted.
func (r *Ring) Total() uint64 { return r.total }

// Dropped returns how many events were overwritten by wraparound.
func (r *Ring) Dropped() uint64 { return r.total - uint64(len(r.buf)) }

// Events returns the buffered events oldest-first (a copy).
func (r *Ring) Events() []Event {
	out := make([]Event, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	head := int(r.total % uint64(cap(r.buf)))
	n := copy(out, r.buf[head:])
	copy(out[n:], r.buf[:head])
	return out
}

// EventWriter streams events to an io.Writer as one text line per event
// ("cycle kind src a b"), buffered. It implements Sink; the first write
// error is latched and reported by Close. Use it for -trace output where
// the full event stream (not just a ring window) should hit the disk.
type EventWriter struct {
	w      *bufio.Writer
	n      uint64
	err    error
	closed bool
}

// eventHeader identifies event-trace files; the trailing digit is a
// format version.
const eventHeader = "# duplexity-events v1\n"

// NewEventWriter starts an event trace on w.
func NewEventWriter(w io.Writer) *EventWriter {
	ew := &EventWriter{w: bufio.NewWriterSize(w, 1<<16)}
	if _, err := ew.w.WriteString(eventHeader); err != nil {
		ew.err = fmt.Errorf("telemetry: writing event header: %w", err)
	}
	return ew
}

// Emit implements Sink. Errors are latched; emission after an error or
// after Close is a no-op.
func (ew *EventWriter) Emit(e Event) {
	if ew.err != nil || ew.closed {
		return
	}
	if _, err := fmt.Fprintf(ew.w, "%d %s %s %d %d\n",
		e.Cycle, e.Kind, SrcName(e.Src), e.A, e.B); err != nil {
		ew.err = fmt.Errorf("telemetry: writing event %d: %w", ew.n, err)
		return
	}
	ew.n++
}

// Count returns the number of events written.
func (ew *EventWriter) Count() uint64 { return ew.n }

// Close flushes buffered events and makes the writer unusable. It
// returns the first latched write error, or a wrapped flush error;
// closing twice is safe and returns the same result.
func (ew *EventWriter) Close() error {
	if ew.closed {
		return ew.err
	}
	ew.closed = true
	if ew.err != nil {
		return ew.err
	}
	if err := ew.w.Flush(); err != nil {
		ew.err = fmt.Errorf("telemetry: flushing %d events: %w", ew.n, err)
	}
	return ew.err
}

// WriteEvents dumps events to w in the EventWriter text format.
func WriteEvents(w io.Writer, events []Event) error {
	ew := NewEventWriter(w)
	for _, e := range events {
		ew.Emit(e)
	}
	return ew.Close()
}

// EventSummary aggregates an event stream for manifests.
type EventSummary struct {
	// Total counts events emitted, Buffered those still in the ring, and
	// Dropped those lost to wraparound.
	Total    uint64 `json:"total"`
	Buffered int    `json:"buffered"`
	Dropped  uint64 `json:"dropped"`
	// ByKind counts buffered events per kind name.
	ByKind map[string]uint64 `json:"by_kind,omitempty"`
	// Spans counts request spans reconstructible from the buffer.
	Spans int `json:"spans"`
}

// Summarize builds an EventSummary from a ring's contents.
func Summarize(r *Ring, spans int) EventSummary {
	s := EventSummary{Total: r.Total(), Buffered: r.Len(), Dropped: r.Dropped(), Spans: spans}
	if r.Len() > 0 {
		s.ByKind = make(map[string]uint64)
		for _, e := range r.Events() {
			s.ByKind[e.Kind.String()]++
		}
	}
	return s
}

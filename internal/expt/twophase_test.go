package expt

import (
	"bytes"
	"testing"

	"duplexity/internal/core"
	"duplexity/internal/idle"
)

// rawFor resolves one cell through a fresh suite and returns its cache
// entry bytes plus its digest.
func rawFor(t *testing.T, opts Options, cs CellSpec) (string, []byte) {
	t.Helper()
	opts.CacheDir = t.TempDir()
	s := NewSuite(opts)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	raw, err := s.RunServedRaw(cs)
	if err != nil {
		t.Fatal(err)
	}
	return raw.Digest, raw.Result
}

// The tentpole invariant of the two-phase cache split: for every
// decomposable cell kind, the phase-2 entry's bytes decode to exactly
// what the monolithic cell produced, and the cell's content address is
// the unchanged legacy digest — so warm caches written before the split
// keep hitting, byte for byte.
func TestTwoPhaseByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("two cold micro-sims per case")
	}
	base := Options{Scale: 0.02, Seed: 1}
	cases := []CellSpec{
		// A non-baseline tail cell (exercises both slowdown micro-sims)
		// and a baseline one (no micros at all).
		{Kind: KindTail, Design: core.DesignDuplexity.String(), Workload: "RSC", Load: 0.5},
		{Kind: KindTail, Design: core.DesignBaseline.String(), Workload: "RSC", Load: 0.5},
		// An explicit arrival rate (the Figure 5(e) shape).
		{Kind: KindTail, Design: core.DesignDuplexity.String(), Workload: "RSC", Load: 0.5, Lambda: 12345},
		// Energyprop under the fill governor (morphing design) and a
		// C-state governor on the baseline.
		{Kind: KindEnergyProp, Design: core.DesignDuplexity.String(), Workload: "RSC", Load: 0.25, Governor: idle.GovFill},
		{Kind: KindEnergyProp, Design: core.DesignBaseline.String(), Workload: "RSC", Load: 0.25, Governor: idle.GovDeep},
	}
	for _, cs := range cases {
		mono := base
		mono.SinglePhase = true
		dMono, bMono := rawFor(t, mono, cs)
		dTwo, bTwo := rawFor(t, base, cs)
		if dMono != dTwo {
			t.Errorf("%s %s/%s gov=%q lambda=%v: digest drifted between modes: %s != %s",
				cs.Kind, cs.Design, cs.Workload, cs.Governor, cs.Lambda, dMono, dTwo)
		}
		if !bytes.Equal(bMono, bTwo) {
			t.Errorf("%s %s/%s gov=%q lambda=%v: two-phase bytes differ from monolithic:\n mono %s\n two  %s",
				cs.Kind, cs.Design, cs.Workload, cs.Governor, cs.Lambda, bMono, bTwo)
		}
	}
}

// The cold tail campaign computes exactly one slowdown micro-sim per
// design × workload, no matter how many loads fan out from it, and the
// legacy whole-cell totals keep counting cells only.
func TestTailMatrixMicroSharing(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the cold 105-cell tail campaign")
	}
	if raceEnabled {
		t.Skip("cold full-matrix campaign is too slow under the race detector")
	}
	s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 4})
	if _, err := s.TailMatrix(); err != nil {
		t.Fatal(err)
	}
	st := s.CampaignStats()
	designs, workloads, loads := len(core.AllDesigns), 5, len(Loads)
	wantCells := designs * workloads * loads
	if st.Cells != wantCells || st.Misses != wantCells || st.Hits != 0 {
		t.Fatalf("legacy totals cells=%d hits=%d misses=%d, want %d/0/%d",
			st.Cells, st.Hits, st.Misses, wantCells, wantCells)
	}
	// One micro-sim per design×workload: baseline cells need none, but
	// every non-baseline family also pulls in the baseline measurement.
	wantMicro := designs * workloads
	if st.MicrosimMisses != wantMicro {
		t.Fatalf("micro-sims simulated %d times, want %d (one per design×workload)",
			st.MicrosimMisses, wantMicro)
	}
	if st.QueueingMisses != wantCells {
		t.Fatalf("queueing layer misses = %d, want %d", st.QueueingMisses, wantCells)
	}
}

// Served tail cells default Lambda to the workload's nominal rate at
// the load, sharing one content address with the CLI figure cell; an
// explicit equal rate resolves to the same key.
func TestTailServedKeyDefaults(t *testing.T) {
	s := NewSuite(Options{Scale: 0.01, Seed: 1})
	spec := workloadByName("RSC")
	defaulted, err := s.ServedKey(CellSpec{Kind: KindTail, Design: "Duplexity", Workload: "RSC", Load: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	explicit, err := s.ServedKey(CellSpec{Kind: KindTail, Design: "Duplexity", Workload: "RSC", Load: 0.5, Lambda: spec.QPSAtLoad(0.5)})
	if err != nil {
		t.Fatal(err)
	}
	if defaulted.Digest() != explicit.Digest() {
		t.Fatalf("defaulted lambda key %s != explicit %s", defaulted.Digest(), explicit.Digest())
	}
	if defaulted.Lambda == 0 {
		t.Fatal("tail key left Lambda unset")
	}
	cli := s.tailKey(core.DesignDuplexity, spec, 0.5, spec.QPSAtLoad(0.5))
	if cli.Digest() != defaulted.Digest() {
		t.Fatalf("served tail key %s != CLI figure key %s", defaulted.Digest(), cli.Digest())
	}
}

// Lambda is rejected on non-tail kinds and never perturbs legacy keys.
func TestLambdaValidation(t *testing.T) {
	bad := CellSpec{Kind: KindMatrix, Design: "Baseline", Workload: "RSC", Load: 0.5, Lambda: 100}
	if err := bad.Validate(); err == nil {
		t.Fatal("matrix cell with lambda accepted")
	}
	ok := CellSpec{Kind: KindTail, Design: "Baseline", Workload: "RSC", Load: 0.5, Lambda: 100}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	neg := CellSpec{Kind: KindTail, Design: "Baseline", Workload: "RSC", Load: 0.5, Lambda: -1}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative lambda accepted")
	}
}

// A tails campaign expands over the Figure 5 load grid with Lambda
// left 0 (per-cell nominal-rate default).
func TestTailsCampaignExpand(t *testing.T) {
	cells, err := CampaignSpec{Kind: CampaignTails}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(core.AllDesigns) * 5 * len(Loads)
	if len(cells) != want {
		t.Fatalf("tails campaign expanded to %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		if c.Kind != KindTail || c.Lambda != 0 {
			t.Fatalf("unexpected expanded cell %+v", c)
		}
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := (CampaignSpec{Kind: CampaignTails, Governors: []string{idle.GovDeep}}).Expand(); err == nil {
		t.Fatal("tails campaign with governors accepted")
	}
}

// The fleet shard digest of a two-phase cell is its first phase-1
// digest — the design's own slowdown cell — so every load fanned out
// from one micro-sim rendezvous-ranks to the same worker.
func TestTwoPhaseShardDigestIsPhase1(t *testing.T) {
	s := NewSuite(Options{Scale: 0.01, Seed: 1})
	spec := workloadByName("RSC")
	tp := s.tailTwoPhase(core.DesignDuplexity, spec, 0.5, spec.QPSAtLoad(0.5))
	if len(tp.Micro) != 2 {
		t.Fatalf("tail cell has %d micros, want 2", len(tp.Micro))
	}
	wantShard := s.cellKey(KindSlowdown, core.DesignDuplexity, spec, 0, "").Digest()
	if got := tp.Micro[0].Key.Digest(); got != wantShard {
		t.Fatalf("first micro digest %s, want the design's slowdown cell %s", got, wantShard)
	}
}

package campaign

import (
	"encoding/json"
	"fmt"
	"time"

	"duplexity/internal/telemetry"
)

// Two-phase cells split the paper's pipeline where the paper itself
// splits: an expensive cycle-level micro-simulation that measures a
// design×workload's service characteristics (phase 1), and a cheap
// request-granularity queueing simulation that sweeps offered load over
// those measurements (phase 2). Caching the phases separately means a
// campaign that fans one micro-sim out over many loads simulates it
// once, and a re-run that changes only the load grid re-simulates no
// micro-sims at all.
//
// The two cache layers share one content-addressed store:
//
//   - Phase 1 entries are ordinary cells of the micro-sim's own kind
//     (e.g. "slowdown"), keyed on (kind, model, design, workload, spec,
//     scale, seed) — no load, no governor. Warm caches written before
//     the split already hold them under the same digests.
//   - Phase 2 entries are stored under the cell's full legacy digest
//     (kind + load + governor + lambda ...). Because the phase-1 inputs
//     (design, workload, spec, scale, seed) are all part of that key,
//     the cell digest is equivalent to hashing the phase-1 digest plus
//     the (load, governor, lambda) coordinates — and keeping the legacy
//     encoding means every cache written before the split keeps
//     hitting, byte for byte.
//
// The phase-2 entry's bytes must decode to exactly what the monolithic
// cell produced; TestTwoPhaseByteIdentity in internal/expt pins this
// for every decomposed cell kind.

// MicroTask is one phase-1 dependency of a two-phase cell: the
// micro-sim's own cache key and the function that measures it. Run must
// be deterministic from the key alone (the standard cell contract).
type MicroTask struct {
	Key Key
	Run func() (json.RawMessage, error)
}

// TwoPhase describes a cell computed in two cached stages. Micro lists
// the phase-1 dependencies in a fixed order; Queue receives their raw
// results in that order and computes the cell's final result. Queue
// must produce bytes identical to the monolithic computation of the
// same cell.
type TwoPhase struct {
	Micro []MicroTask
	Queue func(micro []json.RawMessage) (json.RawMessage, error)
}

// ShardedRemote is an optional Remote refinement for two-phase cells:
// ExecSharded behaves like Exec/ExecDeadline but ranks workers by
// shardDigest — the cell's first phase-1 digest — instead of the cell's
// own digest, so every load fanned out from one micro-sim lands on the
// worker whose disk cache already holds (or is computing) that
// micro-sim. Identity, verification, and L1 coalescing still use the
// cell's own digest.
type ShardedRemote interface {
	Remote
	ExecSharded(k Key, shardDigest string, tr *telemetry.CellTrace, deadline time.Time) (Entry, bool, error)
}

// microFlight coalesces concurrent resolutions of one phase-1 digest:
// N cells fanning loads out from the same micro-sim wait on one
// measurement instead of racing N identical simulations.
type microFlight struct {
	done chan struct{}
	raw  json.RawMessage
	err  error
}

// DoRawTwoPhase resolves a two-phase cell: phase-2 (whole-cell) cache
// probe, then remote dispatch (sharded on the first phase-1 digest when
// the remote supports it), then local computation — each phase-1
// dependency resolved through its own cache layer (in-memory memo, disk
// cache, singleflight, then simulation) before Queue combines them. The
// returned Entry is byte-identical to what DoRaw would have produced
// for the same cell computed monolithically. A nil tp (or nil tp.Queue)
// is rejected; callers with no decomposition use DoRaw.
func (e *Engine) DoRawTwoPhase(k Key, tp *TwoPhase, tr *telemetry.CellTrace, deadline time.Time) (Entry, bool, error) {
	if tp == nil || tp.Queue == nil {
		return Entry{}, false, fmt.Errorf("campaign: two-phase cell without a queue stage")
	}
	digest := k.Digest()

	if e.cache != nil {
		probe := time.Now()
		if ent, ok := e.cache.GetEntry(digest); ok {
			tr.StageDetail(telemetry.StageCache, probe, "hit")
			e.stats.recordQueueing(true)
			e.finishLayer(k, digest, true, false, 0, tr, tp)
			return ent, true, nil
		}
		tr.StageDetail(telemetry.StageCache, probe, "miss")
	}

	if e.remote != nil {
		exec := e.remote.Exec
		if sr, ok := e.remote.(ShardedRemote); ok && len(tp.Micro) > 0 {
			shard := tp.Micro[0].Key.Digest()
			exec = func(k Key, tr *telemetry.CellTrace) (Entry, bool, error) {
				return sr.ExecSharded(k, shard, tr, deadline)
			}
		} else if dr, ok := e.remote.(DeadlineRemote); ok && !deadline.IsZero() {
			exec = func(k Key, tr *telemetry.CellTrace) (Entry, bool, error) {
				return dr.ExecDeadline(k, tr, deadline)
			}
		}
		ent, remoteCached, err := exec(k, tr)
		if err == nil {
			if e.cache != nil {
				put := time.Now()
				if perr := e.cache.Put(digest, ent); perr != nil {
					e.stats.recordError()
					return Entry{}, false, perr
				}
				tr.Stage(telemetry.StageSerialize, put)
			}
			e.stats.recordQueueing(remoteCached)
			e.finishLayer(k, digest, remoteCached, true, ent.WallSeconds, tr, tp)
			return ent, remoteCached, nil
		}
		// Remote exhausted its retries; fall through to local two-phase
		// computation, exactly like the single-phase fallback.
	}

	micro := make([]json.RawMessage, len(tp.Micro))
	for i, mt := range tp.Micro {
		raw, err := e.resolveMicro(mt, tr)
		if err != nil {
			e.stats.recordError()
			return Entry{}, false, err
		}
		micro[i] = raw
	}

	start := time.Now()
	raw, err := tp.Queue(micro)
	wall := time.Since(start).Seconds()
	tr.Stage(telemetry.StageCompute, start)
	if err != nil {
		e.stats.recordError()
		return Entry{}, false, err
	}
	ent := Entry{Key: k, WallSeconds: wall, Result: raw}
	if e.cache != nil {
		put := time.Now()
		if err := e.cache.Put(digest, ent); err != nil {
			e.stats.recordError()
			return Entry{}, false, err
		}
		tr.Stage(telemetry.StageSerialize, put)
	}
	e.stats.recordQueueing(false)
	e.finishLayer(k, digest, false, false, wall, tr, tp)
	return ent, false, nil
}

// resolveMicro resolves one phase-1 dependency: in-memory memo, disk
// cache, singleflight join, then simulation (journaled into the cache
// like any other cell). Micro-sim wall time counts toward the engine's
// SimWallSeconds — it is real compute — but micro resolutions are
// accounted in their own per-layer counters, never in the legacy
// Cells/Hits/Misses totals (those still count whole cells).
func (e *Engine) resolveMicro(mt MicroTask, tr *telemetry.CellTrace) (json.RawMessage, error) {
	digest := mt.Key.Digest()

	e.microMu.Lock()
	if raw, ok := e.microMem[digest]; ok {
		e.microMu.Unlock()
		e.finishMicro(mt.Key, digest, true, 0)
		return raw, nil
	}
	if f, ok := e.microFlights[digest]; ok {
		e.microMu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, f.err
		}
		// A coalesced follower's micro-sim cost it nothing: a hit.
		e.finishMicro(mt.Key, digest, true, 0)
		return f.raw, nil
	}
	f := &microFlight{done: make(chan struct{})}
	e.microFlights[digest] = f
	e.microMu.Unlock()

	raw, hit, wall, err := e.computeMicro(mt, digest, tr)

	e.microMu.Lock()
	delete(e.microFlights, digest)
	if err == nil {
		e.microMem[digest] = raw
	}
	e.microMu.Unlock()
	f.raw, f.err = raw, err
	close(f.done)
	if err != nil {
		return nil, err
	}
	e.finishMicro(mt.Key, digest, hit, wall)
	return raw, nil
}

// computeMicro is the flight leader's path: disk probe, then
// simulation plus a cache write.
func (e *Engine) computeMicro(mt MicroTask, digest string, tr *telemetry.CellTrace) (json.RawMessage, bool, float64, error) {
	if e.cache != nil {
		if ent, ok := e.cache.GetEntry(digest); ok {
			return ent.Result, true, 0, nil
		}
	}
	if mt.Run == nil {
		return nil, false, 0, fmt.Errorf("micro-sim %s not cached and not computable", digest[:12])
	}
	start := time.Now()
	raw, err := mt.Run()
	wall := time.Since(start).Seconds()
	if err != nil {
		return nil, false, 0, err
	}
	if e.cache != nil {
		ent := Entry{Key: mt.Key, WallSeconds: wall, Result: raw}
		if err := e.cache.Put(digest, ent); err != nil {
			return nil, false, 0, err
		}
	}
	return raw, false, wall, nil
}

// finishMicro records one phase-1 resolution in the per-layer counters
// and the journal.
func (e *Engine) finishMicro(k Key, digest string, cached bool, wall float64) {
	seq := e.stats.recordMicro(cached, wall)
	if e.journal != nil {
		_ = e.journal.Append(JournalEntry{
			Seq: seq, Digest: digest, Kind: k.Kind,
			Design: k.Design, Workload: k.Workload, Load: k.Load,
			Cached: cached, WallSeconds: wall,
			Layer: LayerMicrosim,
		})
	}
}

// finishLayer is finish for a two-phase cell: the legacy accounting
// (the cell still counts once in Cells/Hits/Misses, so dashboards and
// manifests that predate the split keep reading correctly) plus the
// queueing-layer journal annotation and the phase-1 digests the cell
// was derived from.
func (e *Engine) finishLayer(k Key, digest string, cached, remote bool, wall float64, tr *telemetry.CellTrace, tp *TwoPhase) {
	seq := e.stats.record(CellTiming{
		Kind: k.Kind, Design: k.Design, Workload: k.Workload, Load: k.Load,
		Cached: cached, Remote: remote, WallSeconds: wall,
	})
	if e.journal != nil {
		var deps []string
		for _, mt := range tp.Micro {
			deps = append(deps, mt.Key.Digest())
		}
		_ = e.journal.Append(JournalEntry{
			Seq: seq, Digest: digest, Kind: k.Kind,
			Design: k.Design, Workload: k.Workload, Load: k.Load,
			Cached: cached, Remote: remote, WallSeconds: wall,
			StagesUs: tr.StageTotalsUs(),
			Layer:    LayerQueueing, MicroDigests: deps,
		})
	}
}

package workload

import (
	"fmt"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

// Phase is one stage of a microservice request: a burst of compute
// instructions optionally followed by a demarcated µs-scale remote
// operation (RDMA read, SSD access, leaf fan-out).
type Phase struct {
	// Instrs is the number of compute instructions in the phase.
	Instrs stats.Distribution
	// RemoteNs is the latency distribution of the remote operation that
	// ends the phase; nil means the phase ends without a stall.
	RemoteNs stats.Distribution
	// RemoteProb is the probability the remote occurs (e.g. a cache-hit
	// rate); 0 is treated as 1 when RemoteNs is set.
	RemoteProb float64
}

// PhasedGen generates request instruction streams with an explicit phase
// structure, e.g. McRouter's "3µs of routing compute, then a synchronous
// 3-5µs leaf access". Instruction texture (op mix, footprints, branch
// behaviour) comes from an underlying SynthStream; the phase machinery
// inserts remote operations and request boundaries.
type PhasedGen struct {
	synth  *isa.SynthStream
	phases []Phase
	rng    *stats.RNG

	phase     int
	remaining int64
}

// NewPhasedGen validates and builds a phased request generator. The
// texture config must not itself produce remotes or request marks.
func NewPhasedGen(texture isa.SynthConfig, phases []Phase, seed uint64) (*PhasedGen, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: phased generator needs at least one phase")
	}
	if texture.RemoteEvery != 0 || texture.InstrsPerRequest != nil {
		return nil, fmt.Errorf("workload: texture must not produce remotes or request marks itself")
	}
	for i, p := range phases {
		if p.Instrs == nil {
			return nil, fmt.Errorf("workload: phase %d missing instruction count", i)
		}
		if p.RemoteProb < 0 || p.RemoteProb > 1 {
			return nil, fmt.Errorf("workload: phase %d remote probability %v outside [0,1]", i, p.RemoteProb)
		}
	}
	synth, err := isa.NewSynthStream(texture)
	if err != nil {
		return nil, err
	}
	g := &PhasedGen{synth: synth, phases: phases, rng: stats.NewRNG(seed)}
	g.startPhase(0)
	return g, nil
}

// MustPhasedGen panics on configuration errors.
func MustPhasedGen(texture isa.SynthConfig, phases []Phase, seed uint64) *PhasedGen {
	g, err := NewPhasedGen(texture, phases, seed)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *PhasedGen) startPhase(i int) {
	g.phase = i
	n := int64(g.phases[i].Instrs.Sample(g.rng))
	if n < 1 {
		n = 1
	}
	g.remaining = n
}

// Next implements isa.Stream; it never goes idle (request pacing is the
// RequestStream wrapper's job).
func (g *PhasedGen) Next(now uint64) (isa.Instr, bool) {
	p := g.phases[g.phase]
	if g.remaining > 0 {
		in, _ := g.synth.Next(now)
		g.remaining--
		if g.remaining == 0 && p.RemoteNs == nil {
			g.advance(&in)
		}
		return in, true
	}
	// Phase compute exhausted and a remote is configured.
	in := isa.Instr{Op: isa.OpIntAlu, PC: 0x200000}
	prob := p.RemoteProb
	if prob == 0 {
		prob = 1
	}
	if g.rng.Bernoulli(prob) {
		in = isa.Instr{
			Op:       isa.OpRemote,
			PC:       0x200000,
			Dst:      1,
			Addr:     0x7f0000000000,
			RemoteNs: p.RemoteNs.Sample(g.rng),
		}
	}
	g.advance(&in)
	return in, true
}

// advance moves to the next phase, marking end-of-request at wrap.
func (g *PhasedGen) advance(in *isa.Instr) {
	next := g.phase + 1
	if next == len(g.phases) {
		in.EndOfRequest = true
		next = 0
	}
	g.startPhase(next)
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// Distribution is a sampleable probability distribution over non-negative
// real values (latencies, service times, stall durations).
type Distribution interface {
	// Sample draws one variate using the supplied generator.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution for logs and table captions.
	String() string
}

// Deterministic is a point mass at Value.
type Deterministic struct{ Value float64 }

// Sample implements Distribution.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean implements Distribution.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Exponential is the exponential distribution with the given mean
// (rate = 1/mean). M/G/1 idle periods and RDMA completion latencies in the
// paper are exponential.
type Exponential struct{ MeanVal float64 }

// Sample implements Distribution.
func (e Exponential) Sample(r *RNG) float64 { return e.MeanVal * r.ExpFloat64() }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return e.MeanVal }

func (e Exponential) String() string { return fmt.Sprintf("Exp(mean=%g)", e.MeanVal) }

// CDF returns P(X <= x).
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanVal)
}

// Uniform is the continuous uniform distribution on [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("U[%g,%g)", u.Lo, u.Hi) }

// Lognormal is parameterized by the mean and coefficient of variation of
// the resulting (not the underlying normal) distribution. Cloud service
// times are commonly modelled as lognormal with CV around 1-2.
type Lognormal struct {
	MeanVal float64 // mean of the lognormal variate
	CV      float64 // coefficient of variation (stddev/mean)
}

func (l Lognormal) params() (mu, sigma float64) {
	// For lognormal: mean = exp(mu + sigma^2/2), CV^2 = exp(sigma^2)-1.
	s2 := math.Log(1 + l.CV*l.CV)
	sigma = math.Sqrt(s2)
	mu = math.Log(l.MeanVal) - s2/2
	return mu, sigma
}

// Sample implements Distribution.
func (l Lognormal) Sample(r *RNG) float64 {
	mu, sigma := l.params()
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Mean implements Distribution.
func (l Lognormal) Mean() float64 { return l.MeanVal }

func (l Lognormal) String() string {
	return fmt.Sprintf("Lognormal(mean=%g,cv=%g)", l.MeanVal, l.CV)
}

// BoundedPareto is a heavy-tailed distribution on [L, H] with shape Alpha.
// The paper notes that cloud service distributions are heavy-tailed; we use
// bounded Pareto for the high-variability workload variants.
type BoundedPareto struct {
	L, H  float64
	Alpha float64
}

// Sample implements Distribution.
func (p BoundedPareto) Sample(r *RNG) float64 {
	u := r.Float64()
	la := math.Pow(p.L, p.Alpha)
	ha := math.Pow(p.H, p.Alpha)
	x := -(u*ha - u*la - ha) / (ha * la)
	return math.Pow(x, -1/p.Alpha)
}

// Mean implements Distribution.
func (p BoundedPareto) Mean() float64 {
	if p.Alpha == 1 {
		return p.L * p.H / (p.H - p.L) * math.Log(p.H/p.L)
	}
	la := math.Pow(p.L, p.Alpha)
	num := la * p.Alpha / (p.Alpha - 1) * (1 - math.Pow(p.L/p.H, p.Alpha-1))
	den := 1 - math.Pow(p.L/p.H, p.Alpha)
	return num / den
}

func (p BoundedPareto) String() string {
	return fmt.Sprintf("BPareto(L=%g,H=%g,a=%g)", p.L, p.H, p.Alpha)
}

// Shifted wraps a distribution and adds a constant offset to every sample,
// modelling a fixed processing component plus a variable one.
type Shifted struct {
	Base  Distribution
	Shift float64
}

// Sample implements Distribution.
func (s Shifted) Sample(r *RNG) float64 { return s.Shift + s.Base.Sample(r) }

// Mean implements Distribution.
func (s Shifted) Mean() float64 { return s.Shift + s.Base.Mean() }

func (s Shifted) String() string { return fmt.Sprintf("%g+%s", s.Shift, s.Base) }

// Scaled multiplies every sample of Base by Factor. The queueing simulator
// uses it to apply IPC-slowdown factors measured in the micro-architecture
// simulation, per the paper's BigHouse methodology.
type Scaled struct {
	Base   Distribution
	Factor float64
}

// Sample implements Distribution.
func (s Scaled) Sample(r *RNG) float64 { return s.Factor * s.Base.Sample(r) }

// Mean implements Distribution.
func (s Scaled) Mean() float64 { return s.Factor * s.Base.Mean() }

func (s Scaled) String() string { return fmt.Sprintf("%g*%s", s.Factor, s.Base) }

// Mixture draws from component i with probability Weights[i].
type Mixture struct {
	Components []Distribution
	Weights    []float64 // must sum to ~1
}

// NewMixture validates and constructs a mixture distribution.
func NewMixture(components []Distribution, weights []float64) (Mixture, error) {
	if len(components) == 0 || len(components) != len(weights) {
		return Mixture{}, fmt.Errorf("stats: mixture needs equal, non-zero components (%d) and weights (%d)", len(components), len(weights))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			return Mixture{}, fmt.Errorf("stats: negative mixture weight %g", w)
		}
		sum += w
	}
	if math.Abs(sum-1) > 1e-9 {
		return Mixture{}, fmt.Errorf("stats: mixture weights sum to %g, want 1", sum)
	}
	return Mixture{Components: components, Weights: weights}, nil
}

// Sample implements Distribution.
func (m Mixture) Sample(r *RNG) float64 {
	u := r.Float64()
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean implements Distribution.
func (m Mixture) Mean() float64 {
	mean := 0.0
	for i, w := range m.Weights {
		mean += w * m.Components[i].Mean()
	}
	return mean
}

func (m Mixture) String() string { return fmt.Sprintf("Mixture(%d)", len(m.Components)) }

// Empirical samples uniformly from a fixed set of observations,
// reproducing BigHouse's use of measured service-time distributions.
type Empirical struct {
	sorted []float64
	mean   float64
}

// NewEmpirical builds an empirical distribution from observations.
// It copies and sorts the data.
func NewEmpirical(obs []float64) (*Empirical, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("stats: empirical distribution needs at least one observation")
	}
	s := append([]float64(nil), obs...)
	sort.Float64s(s)
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return &Empirical{sorted: s, mean: sum / float64(len(s))}, nil
}

// Sample implements Distribution, drawing with linear interpolation between
// adjacent order statistics so the support is continuous.
func (e *Empirical) Sample(r *RNG) float64 {
	n := len(e.sorted)
	if n == 1 {
		return e.sorted[0]
	}
	pos := r.Float64() * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	return e.sorted[i]*(1-frac) + e.sorted[i+1]*frac
}

// Mean implements Distribution.
func (e *Empirical) Mean() float64 { return e.mean }

func (e *Empirical) String() string { return fmt.Sprintf("Empirical(n=%d)", len(e.sorted)) }

// Quantile returns the q-quantile (0<=q<=1) of the observations.
func (e *Empirical) Quantile(q float64) float64 { return Quantile(e.sorted, q) }

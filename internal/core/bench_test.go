package core

import (
	"testing"

	"duplexity/internal/workload"
)

func benchDyad(tb testing.TB, design Design, mode ExecMode) *Dyad {
	tb.Helper()
	gen := masterGen(1, true)
	master, err := workload.NewRequestStream(gen, 100_000, design.FreqGHz(), 7)
	if err != nil {
		tb.Fatal(err)
	}
	d, err := NewDyad(Config{
		Design:       design,
		MasterStream: master,
		BatchStreams: batchStreams(32, 100),
	})
	if err != nil {
		tb.Fatal(err)
	}
	d.Exec = mode
	return d
}

// BenchmarkDyadStep measures the full dyad's cycle-by-cycle cost —
// master OoO engine, morph controller, lender scheduler, and workload
// admission — under moderate load. Steady state must not allocate.
func BenchmarkDyadStep(b *testing.B) {
	for _, design := range []Design{DesignBaseline, DesignDuplexity} {
		b.Run(design.String(), func(b *testing.B) {
			d := benchDyad(b, design, ExecStepped)
			for i := 0; i < 200_000; i++ {
				d.Step()
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Step()
			}
		})
	}
}

// BenchmarkDyadRun measures simulated cycles per wall second through the
// Run path in all three execution modes; the step-to-event ratio is the
// discrete-event speedup on this (moderate-load) workload. Steady state
// must not allocate in any mode.
func BenchmarkDyadRun(b *testing.B) {
	for _, mode := range []ExecMode{ExecStepped, ExecFastForward, ExecEvent} {
		b.Run(mode.String(), func(b *testing.B) {
			d := benchDyad(b, DesignDuplexity, mode)
			d.Run(200_000)
			b.ReportAllocs()
			b.ResetTimer()
			d.Run(uint64(b.N))
		})
	}
}

// TestDyadStepZeroAlloc pins the zero-allocation property of the whole
// simulation hot loop: a warmed dyad must step without allocating.
// (Request latency recording appends to a pre-sized reservoir; at this
// load the steady-state window sees amortized-zero growth.)
func TestDyadStepZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle warmup; skipped with -short")
	}
	for _, design := range []Design{DesignBaseline, DesignDuplexity} {
		d := benchDyad(t, design, ExecStepped)
		for i := 0; i < 2_000_000; i++ {
			d.Step()
		}
		if n := testing.AllocsPerRun(20_000, func() { d.Step() }); n != 0 {
			t.Fatalf("%v: Dyad.Step allocates %.4f objects/cycle in steady state, want 0", design, n)
		}
	}
}

// TestDyadEventRunZeroAlloc pins the same property for the event
// engine's run loop: after the engine is built (first Run), further runs
// — heap maintenance, lazy span charging, pool invalidation included —
// must not allocate.
func TestDyadEventRunZeroAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle warmup; skipped with -short")
	}
	for _, design := range []Design{DesignBaseline, DesignDuplexity} {
		d := benchDyad(t, design, ExecEvent)
		d.Run(2_000_000)
		if n := testing.AllocsPerRun(100, func() { d.Run(1_000) }); n != 0 {
			t.Fatalf("%v: event-mode Run allocates %.4f objects/call in steady state, want 0", design, n)
		}
	}
}

// Package idle models CPU core idle states (C-states) and the governors
// that choose between them — the competing approach to Duplexity for
// harvesting killer-microsecond idle periods. Where Duplexity fills a
// server-idle gap with borrowed filler-threads at full power, a
// conventional latency-sensitive server parks the core in a sleep state
// and pays the state's exit latency on the next request.
//
// The state catalogue is grounded in the AgileWatts and AgilePkgC
// proposals (PAPERS.md): a shallow halt state (C1) with ~µs exit, a deep
// power-gated state (C6) whose tens-of-µs entry/exit latencies are
// exactly the "core parking fattens the tail" penalty the paper argues
// against, and an AgileWatts-style agile-deep state (C6A) that keeps
// near-C6 residency power but exits in hundreds of nanoseconds by
// retaining clocks/PLLs and using medium-grain power gates.
//
// The package is a pure model: internal/queueing drives an Accountant
// over the simulated idle intervals, and internal/power converts the
// resulting residency Summary into load-dependent chip power.
package idle

import "fmt"

// CState is one idle state of the model.
type CState struct {
	// Name identifies the state in summaries ("C1", "C6", ...).
	Name string `json:"name"`
	// EntryUs and ExitUs are the transition latencies in µs. Entry is
	// spent inside the idle interval (at full power, flushing state and
	// draining clocks); exit is charged onto the next request's latency.
	EntryUs float64 `json:"entry_us"`
	ExitUs  float64 `json:"exit_us"`
	// PowerFrac is the fraction of active static (leakage) power the
	// core keeps while resident in the state.
	PowerFrac float64 `json:"power_frac"`
	// FillIPC marks a Duplexity-style fill pseudo-state: instead of
	// sleeping, the core morphs and runs filler-threads at this
	// aggregate IPC for the whole interval (PowerFrac stays 1; the
	// "idle" time buys batch throughput rather than saving power).
	FillIPC float64 `json:"fill_ipc,omitempty"`
}

// TargetResidencyUs is the break-even residency: the interval length
// above which entering the state saves static energy despite the
// entry+exit time spent at full power. States that save no power
// (PowerFrac >= 1) have no break-even and return 0.
func (c CState) TargetResidencyUs() float64 {
	if c.PowerFrac >= 1 {
		return 0
	}
	return (c.EntryUs + c.ExitUs) / (1 - c.PowerFrac)
}

// The state catalogue. Latencies and residency powers follow the
// AgileWatts/AgilePkgC characterization of server parts: C1 halts the
// clock but keeps the core powered; C6 power-gates the core (state
// flushed to the LLC, µs-to-tens-of-µs transitions); C6A is the
// AgileWatts agile variant (near-C6 power, sub-µs transitions); C0Fill
// is Duplexity's alternative — morph in ~20 cycles, run fillers at full
// power, restart the master in ~50 cycles (core.DuplexityRestartLat at
// the 3.25 GHz master clock ≈ 0.015µs).
var (
	C1     = CState{Name: "C1", EntryUs: 0.2, ExitUs: 1.0, PowerFrac: 0.55}
	C6     = CState{Name: "C6", EntryUs: 20, ExitUs: 40, PowerFrac: 0.05}
	C6A    = CState{Name: "C6A", EntryUs: 0.1, ExitUs: 0.2, PowerFrac: 0.12}
	C0Fill = CState{Name: "C0-fill", EntryUs: 0.006, ExitUs: 0.016, PowerFrac: 1, FillIPC: 2.0}
)

// Governor chooses a C-state for each idle interval as it begins. A
// governor must be deterministic: the same call sequence yields the
// same picks, so simulations stay bit-identical at any worker count.
type Governor interface {
	Name() string
	// Pick returns the state to enter for an idle interval beginning
	// now. prevIdleUs is the previous idle interval's length in µs (0
	// before the first interval) — the only prediction signal a real
	// governor has at idle entry.
	Pick(prevIdleUs float64) CState
}

// Governor names accepted at API boundaries.
const (
	GovShallow  = "shallow"
	GovDeep     = "deep"
	GovAgile    = "agile"
	GovAdaptive = "adaptive"
	GovFill     = "fill"
)

type fixedGov struct {
	name  string
	state CState
}

func (g fixedGov) Name() string        { return g.name }
func (g fixedGov) Pick(float64) CState { return g.state }

// adaptiveGov is a menu-style last-interval predictor: go deep only
// when the previous idle interval exceeded C6's break-even residency.
type adaptiveGov struct{}

func (adaptiveGov) Name() string { return GovAdaptive }
func (adaptiveGov) Pick(prevIdleUs float64) CState {
	if prevIdleUs >= C6.TargetResidencyUs() {
		return C6
	}
	return C1
}

// governors lists every governor in canonical order; the index of a
// name in this list is its stable identity for seed derivation.
var governors = []Governor{
	fixedGov{GovShallow, C1},
	fixedGov{GovDeep, C6},
	fixedGov{GovAgile, C6A},
	adaptiveGov{},
	fixedGov{GovFill, C0Fill},
}

// Governors returns the governor catalogue in canonical order:
// always-shallow (C1), fixed-deep core parking (C6), AgileWatts-style
// agile deep (C6A), adaptive (menu-lite C1/C6), and Duplexity fill.
func Governors() []Governor { return append([]Governor(nil), governors...) }

// Names lists the governor names in canonical order.
func Names() []string {
	names := make([]string, len(governors))
	for i, g := range governors {
		names[i] = g.Name()
	}
	return names
}

// ByName resolves a governor name.
func ByName(name string) (Governor, bool) {
	for _, g := range governors {
		if g.Name() == name {
			return g, true
		}
	}
	return nil, false
}

// IndexOf returns a name's canonical index (stable across runs, used
// for per-cell seed derivation), or -1 when unknown.
func IndexOf(name string) int {
	for i, g := range governors {
		if g.Name() == name {
			return i
		}
	}
	return -1
}

// RequiresMorphing reports whether the governor only makes sense on a
// design that can morph into filler mode (the fill pseudo-state).
func RequiresMorphing(name string) bool { return name == GovFill }

// StateResidency is one C-state's accumulated accounting over a
// simulation. PowerFrac and FillIPC are copied from the state so power
// consumers need no access to the governor or the catalogue.
type StateResidency struct {
	Name      string  `json:"name"`
	PowerFrac float64 `json:"power_frac"`
	FillIPC   float64 `json:"fill_ipc,omitempty"`
	// ResidencyUs is time fully resident in the state (entry complete,
	// reduced power); TransitionUs is entry time plus aborted-entry
	// time, spent at full power inside idle intervals.
	ResidencyUs  float64 `json:"residency_us"`
	TransitionUs float64 `json:"transition_us"`
	// Entries counts completed entries; Aborted counts intervals too
	// short to finish the entry sequence.
	Entries uint64 `json:"entries"`
	Aborted uint64 `json:"aborted"`
	// WakeUs is the total exit latency charged onto requests that
	// arrived while the core was in (or entering) this state.
	WakeUs float64 `json:"wake_us"`
}

// Summary is the per-governor idle accounting of one simulation. The
// invariant IdleUs == Σ states (ResidencyUs + TransitionUs) holds
// exactly: every idle microsecond is attributed to exactly one state.
type Summary struct {
	Governor  string           `json:"governor"`
	IdleUs    float64          `json:"idle_us"`
	Intervals uint64           `json:"intervals"`
	WakeUs    float64          `json:"wake_us"`
	States    []StateResidency `json:"states"`
}

// Accountant classifies a simulation's idle intervals through a
// governor and accumulates per-state residency. Not safe for
// concurrent use; simulations own one each.
type Accountant struct {
	gov        Governor
	prevIdleUs float64
	idx        map[string]int
	states     []StateResidency
	intervals  uint64
	idleUs     float64
	wakeUs     float64
}

// NewAccountant builds an accountant over the given governor.
func NewAccountant(gov Governor) *Accountant {
	return &Accountant{gov: gov, idx: make(map[string]int)}
}

// Idle classifies one idle interval of gapUs microseconds and returns
// the wake latency (µs) to charge onto the request that ends it, plus
// the chosen state's index in Summary().States. Intervals shorter than
// the state's entry latency are aborted entries: the wake must first
// complete the remaining entry sequence, then pay the full exit.
func (a *Accountant) Idle(gapUs float64) (wakeUs float64, state int) {
	if gapUs <= 0 {
		return 0, -1
	}
	st := a.gov.Pick(a.prevIdleUs)
	a.prevIdleUs = gapUs
	i, ok := a.idx[st.Name]
	if !ok {
		i = len(a.states)
		a.idx[st.Name] = i
		a.states = append(a.states, StateResidency{
			Name: st.Name, PowerFrac: st.PowerFrac, FillIPC: st.FillIPC,
		})
	}
	r := &a.states[i]
	a.intervals++
	a.idleUs += gapUs
	if gapUs < st.EntryUs {
		r.TransitionUs += gapUs
		r.Aborted++
		wakeUs = (st.EntryUs - gapUs) + st.ExitUs
	} else {
		r.TransitionUs += st.EntryUs
		r.ResidencyUs += gapUs - st.EntryUs
		r.Entries++
		wakeUs = st.ExitUs
	}
	r.WakeUs += wakeUs
	a.wakeUs += wakeUs
	return wakeUs, i
}

// Summary snapshots the accumulated accounting. States appear in
// first-entered order, which is deterministic for deterministic
// governors.
func (a *Accountant) Summary() *Summary {
	return &Summary{
		Governor:  a.gov.Name(),
		IdleUs:    a.idleUs,
		Intervals: a.intervals,
		WakeUs:    a.wakeUs,
		States:    append([]StateResidency(nil), a.states...),
	}
}

// Validate reports an inconsistent summary (used by power before
// trusting residency to compute energy).
func (s *Summary) Validate() error {
	var sum float64
	for _, st := range s.States {
		if st.PowerFrac < 0 || st.PowerFrac > 1 {
			return fmt.Errorf("idle: state %s power fraction %v outside [0,1]", st.Name, st.PowerFrac)
		}
		sum += st.ResidencyUs + st.TransitionUs
	}
	if diff := sum - s.IdleUs; diff > 1e-6*(1+s.IdleUs) || diff < -1e-6*(1+s.IdleUs) {
		return fmt.Errorf("idle: states account for %v µs of %v µs idle", sum, s.IdleUs)
	}
	return nil
}

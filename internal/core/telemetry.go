package core

import (
	"fmt"

	"duplexity/internal/cpu"
	"duplexity/internal/telemetry"
)

// EnableTelemetry attaches sink to every instrumented component of the
// dyad: the master OoO engine (SrcMaster), the lender datapath and its
// scheduler (SrcLender), the morphing controller and its filler engine
// (SrcFiller), and the master stream if it is instrumentable. Pass nil to
// detach. Call before stepping; attaching mid-run is safe but events
// before the call are lost.
func (d *Dyad) EnableTelemetry(sink telemetry.Sink) {
	d.telemetry = sink
	d.MasterOoO.Telemetry = sink
	d.MasterOoO.TelemetrySrc = telemetry.SrcMaster
	d.LenderCore.Telemetry = sink
	d.LenderCore.TelemetrySrc = telemetry.SrcLender
	d.Lender.Telemetry = sink
	d.Lender.TelemetrySrc = telemetry.SrcLender
	if d.Master != nil {
		d.Master.Telemetry = sink
		d.Master.TelemetrySrc = telemetry.SrcMaster
		fc := d.Master.FillerCore()
		fc.Telemetry = sink
		fc.TelemetrySrc = telemetry.SrcFiller
		d.Master.filler.setTelemetry(sink, telemetry.SrcFiller)
	}
	if inst, ok := d.masterStream.(telemetry.Instrumentable); ok {
		inst.SetTelemetry(sink)
	}
}

// CollectInto mirrors the dyad's live counters into reg, so windowed
// snapshots and the run manifest see a consistent hierarchical view.
// Counter values are absolute (set, not added): calling repeatedly as the
// simulation advances keeps the registry current.
func (d *Dyad) CollectInto(reg *telemetry.Registry) {
	collectCore(reg.Scope("master"), d.MasterOoO.Stats, d.MasterOoO.Config().Width)
	for t := 0; t < d.MasterOoO.Threads(); t++ {
		collectThread(reg.Scope(fmt.Sprintf("master.thread%d", t)), d.MasterOoO.ThreadStats(t))
	}
	collectCore(reg.Scope("lender"), d.LenderCore.Stats, d.LenderCore.Config().Width)
	for i := 0; i < d.LenderCore.Slots(); i++ {
		collectThread(reg.Scope(fmt.Sprintf("lender.slot%d", i)), &d.LenderCore.Slot(i).Stats)
	}

	p := reg.Scope("pool")
	p.Counter("steals").Set(d.Pool.Steals)
	p.Counter("returns").Set(d.Pool.Returns)
	p.Counter("queued").Set(uint64(d.Pool.Len()))

	l := reg.Scope("lender.sched")
	l.Counter("swaps").Set(d.Lender.Swaps)
	l.Counter("preempts").Set(d.Lender.Preempts)

	if d.Master != nil {
		fc := d.Master.FillerCore()
		collectCore(reg.Scope("filler"), fc.Stats, fc.Config().Width)
		for i := 0; i < fc.Slots(); i++ {
			collectThread(reg.Scope(fmt.Sprintf("filler.slot%d", i)), &fc.Slot(i).Stats)
		}
		m := reg.Scope("master.morph")
		m.Counter("morphs").Set(d.Master.Stats.Morphs)
		m.Counter("idle_morphs").Set(d.Master.Stats.IdleMorphs)
		m.Counter("master_cycles").Set(d.Master.Stats.MasterCycles)
		m.Counter("drain_cycles").Set(d.Master.Stats.DrainCycles)
		m.Counter("filler_cycles").Set(d.Master.Stats.FillerCycles)
		m.Counter("restart_stalls").Set(d.Master.Stats.RestartStalls)
		m.Gauge("mode").Set(float64(d.Master.Mode()))
	}

	g := reg.Scope("dyad")
	g.Counter("cycles").Set(d.now)
	g.Counter("requests_completed").Set(d.MasterOoO.ThreadStats(0).RequestsCompleted)
	g.Gauge("master_utilization").Set(d.MasterUtilization())
}

// collectCore mirrors one datapath's CoreStats (surfacing IssueSlotsUsed,
// which no printed table reports) plus its utilization gauge.
func collectCore(s telemetry.Scope, st cpu.CoreStats, width int) {
	s.Counter("cycles").Set(st.Cycles)
	s.Counter("total_retired").Set(st.TotalRetired)
	s.Counter("fetch_stall_cycles").Set(st.FetchStallCycles)
	s.Counter("issue_slots_used").Set(st.IssueSlotsUsed)
	s.Gauge("utilization").Set(st.Utilization(width))
}

func collectThread(s telemetry.Scope, st *cpu.ThreadStats) {
	s.Counter("retired").Set(st.Retired)
	s.Counter("remotes").Set(st.Remotes)
	s.Counter("remote_stall_cycles").Set(st.RemoteStallCycles)
	s.Counter("idle_cycles").Set(st.IdleCycles)
	s.Counter("requests_completed").Set(st.RequestsCompleted)
}

// ThreadReport formats every hardware thread's statistics — master OoO
// threads, borrowed-filler slots, and lender slots — as an aligned table.
func (d *Dyad) ThreadReport() string {
	var names []string
	var sts []*cpu.ThreadStats
	for t := 0; t < d.MasterOoO.Threads(); t++ {
		names = append(names, fmt.Sprintf("master.thread%d", t))
		sts = append(sts, d.MasterOoO.ThreadStats(t))
	}
	if d.Master != nil {
		fc := d.Master.FillerCore()
		for i := 0; i < fc.Slots(); i++ {
			names = append(names, fmt.Sprintf("filler.slot%d", i))
			sts = append(sts, &fc.Slot(i).Stats)
		}
	}
	for i := 0; i < d.LenderCore.Slots(); i++ {
		names = append(names, fmt.Sprintf("lender.slot%d", i))
		sts = append(sts, &d.LenderCore.Slot(i).Stats)
	}
	return cpu.ThreadTable(names, sts)
}

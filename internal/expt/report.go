package expt

import "duplexity/internal/idle"

// CellReport is the machine-readable form of one simulated campaign
// point (design × workload × load), the per-design summary embedded in
// cmd/duplexity's -telemetry run manifest.
type CellReport struct {
	Design       string  `json:"design"`
	Workload     string  `json:"workload"`
	Load         float64 `json:"load"`
	Utilization  float64 `json:"utilization"`
	Seconds      float64 `json:"seconds"`
	OoORetired   uint64  `json:"ooo_retired"`
	InORetired   uint64  `json:"ino_retired"`
	BatchRetired uint64  `json:"batch_retired"`
	RemotesPerS  float64 `json:"remotes_per_s"`
	Requests     uint64  `json:"requests"`
	MicroP99Us   float64 `json:"micro_p99_us,omitempty"`
}

// TailCellReport is the machine-readable form of one tail-latency
// queueing point (design × workload × load × arrival rate).
type TailCellReport struct {
	Design    string  `json:"design"`
	Workload  string  `json:"workload"`
	Load      float64 `json:"load"`
	LambdaQPS float64 `json:"lambda_qps"`
	P99Us     float64 `json:"p99_us"`
}

func (c tailCell) report() *TailCellReport {
	return &TailCellReport{
		Design:    c.Design.String(),
		Workload:  c.Workload,
		Load:      c.Load,
		LambdaQPS: c.LambdaQPS,
		P99Us:     c.P99Us,
	}
}

// EnergyCellReport is the machine-readable form of one
// energy-proportionality point (design × workload × governor × load).
type EnergyCellReport struct {
	Design         string        `json:"design"`
	Workload       string        `json:"workload"`
	Governor       string        `json:"governor"`
	Load           float64       `json:"load"`
	Slowdown       float64       `json:"slowdown"`
	Requests       uint64        `json:"requests"`
	SimulatedUs    float64       `json:"simulated_us"`
	Utilization    float64       `json:"utilization"`
	IdleFraction   float64       `json:"idle_fraction"`
	MeanUs         float64       `json:"mean_us"`
	P99Us          float64       `json:"p99_us"`
	WakeChargedUs  float64       `json:"wake_charged_us"`
	AvgPowerW      float64       `json:"avg_power_w"`
	IdlePowerW     float64       `json:"idle_power_w"`
	EnergyPerReqUJ float64       `json:"energy_per_req_uj"`
	BatchGIPS      float64       `json:"batch_gips"`
	Idle           *idle.Summary `json:"idle,omitempty"`
}

func (c energyCell) report() *EnergyCellReport {
	return &EnergyCellReport{
		Design:         c.Design.String(),
		Workload:       c.Workload,
		Governor:       c.Governor,
		Load:           c.Load,
		Slowdown:       c.Slowdown,
		Requests:       c.Requests,
		SimulatedUs:    c.SimulatedUs,
		Utilization:    c.Utilization,
		IdleFraction:   c.IdleFraction,
		MeanUs:         c.MeanUs,
		P99Us:          c.P99Us,
		WakeChargedUs:  c.WakeChargedUs,
		AvgPowerW:      c.AvgPowerW,
		IdlePowerW:     c.IdlePowerW,
		EnergyPerReqUJ: c.EnergyPerReqUJ,
		BatchGIPS:      c.BatchGIPS,
		Idle:           c.Idle,
	}
}

// ReportEnergyCached exports every energy-proportionality cell the
// Suite has simulated so far, without triggering new simulation.
func (s *Suite) ReportEnergyCached() []EnergyCellReport {
	out := make([]EnergyCellReport, 0, len(s.energy))
	for _, c := range s.energy {
		out = append(out, *c.report())
	}
	return out
}

// ReportCached exports every campaign cell the Suite has simulated so
// far. It never triggers new simulation: if no requested experiment
// needed the matrix, the report is empty.
func (s *Suite) ReportCached() []CellReport {
	out := make([]CellReport, 0, len(s.matrix))
	for _, c := range s.matrix {
		out = append(out, CellReport{
			Design:       c.Design.String(),
			Workload:     c.Workload,
			Load:         c.Load,
			Utilization:  c.Utilization,
			Seconds:      c.Seconds,
			OoORetired:   c.OoORetired,
			InORetired:   c.InORetired,
			BatchRetired: c.BatchRetired,
			RemotesPerS:  c.RemotesPerS,
			Requests:     c.Requests,
			MicroP99Us:   c.MicroP99Us,
		})
	}
	return out
}

package expt

import (
	"fmt"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/graphwl"
	"duplexity/internal/isa"
	"duplexity/internal/workload"
)

// Loads are the offered-load levels of the Figure 5 experiments.
var Loads = []float64{0.3, 0.5, 0.7}

// cell is one point of the design × workload × load campaign. Fields
// are exported so cells round-trip exactly through the campaign
// engine's JSON result cache.
type cell struct {
	Design   core.Design `json:"design"`
	Workload string      `json:"workload"`
	Load     float64     `json:"load"`

	Utilization  float64 `json:"utilization"`
	Seconds      float64 `json:"seconds"`
	OoORetired   uint64  `json:"ooo_retired"`
	InORetired   uint64  `json:"ino_retired"`
	BatchRetired uint64  `json:"batch_retired"`
	RemotesPerS  float64 `json:"remotes_per_s"`
	Requests     uint64  `json:"requests"`
	MicroP99Us   float64 `json:"micro_p99_us,omitempty"`
}

type slowKey struct {
	design   core.Design
	workload string
}

// cellKey content-addresses one campaign cell: everything that can
// change the cell's result is in the key, so the on-disk cache is
// invalidated exactly when it must be (see campaign.Key).
// governor is empty for every pre-idle-model cell kind, which keeps
// those digests — and therefore warm caches — byte-identical.
func (s *Suite) cellKey(kind string, design core.Design, spec *workload.Spec, load float64, governor string) campaign.Key {
	return campaign.Key{
		Kind:     kind,
		Model:    core.ModelVersion,
		Design:   design.String(),
		Workload: spec.Name,
		Spec:     campaign.DigestOf(*spec),
		Governor: governor,
		Load:     load,
		Scale:    s.opts.Scale,
		Seed:     s.opts.Seed,
	}
}

// fillerStreams builds the Section V filler set for one design: 32 BSP
// threads split between PageRank and SSSP over a power-law graph. SMT
// designs additionally get an independent batch thread prepended as the
// co-runner (a tightly barrier-coupled BSP worker pinned to an SMT
// context would spend its life waiting for pool-scheduled job-mates,
// which is a scheduling pathology rather than the co-location the paper
// evaluates).
func (s *Suite) fillerStreams(design core.Design, seed uint64) ([]isa.Stream, error) {
	g, err := graphwl.GenPowerLaw(4096, 12, 0.5, seed)
	if err != nil {
		return nil, err
	}
	streams, _, _, err := graphwl.NewFillerSet(g, 32, seed+1)
	if err != nil {
		return nil, err
	}
	switch design {
	case core.DesignSMT, core.DesignSMTPlus:
		streams = append([]isa.Stream{workload.Batch(seed + 5)}, streams...)
	}
	return streams, nil
}

// runCell simulates one open-loop matrix point. Every seed derives from
// the cell's own inputs (design, load, campaign seed), and all mutable
// simulator state is local to this call, so cells may run concurrently
// on the campaign engine's workers and still reproduce the sequential
// results exactly.
func (s *Suite) runCell(design core.Design, spec *workload.Spec, load float64) (cell, error) {
	freq := design.FreqGHz()
	master, err := spec.NewMaster(load, freq, s.opts.Seed+uint64(design)*7+uint64(load*100))
	if err != nil {
		return cell{}, err
	}
	batch, err := s.fillerStreams(design, s.opts.Seed+31*uint64(design))
	if err != nil {
		return cell{}, err
	}
	d, err := core.NewDyad(core.Config{
		Design:       design,
		MasterStream: master,
		BatchStreams: batch,
	})
	if err != nil {
		return cell{}, err
	}
	d.Exec = s.opts.Exec
	// Budget: enough cycles to observe the idle/stall structure at the
	// lowest load; bounded for smoke runs by Options.Scale.
	budget := s.opts.cycles(3_000_000)
	minRequests := s.opts.requests(60)
	d.Run(budget)
	for d.MasterOoO.ThreadStats(0).RequestsCompleted < minRequests && d.Now() < 4*budget {
		d.Run(budget / 4)
	}

	c := cell{
		Design:       design,
		Workload:     spec.Name,
		Load:         load,
		Utilization:  d.MasterUtilization(),
		Seconds:      d.Seconds(),
		OoORetired:   d.MasterOoO.Stats.TotalRetired,
		BatchRetired: d.BatchRetired(),
		RemotesPerS:  float64(d.RemoteOps()) / d.Seconds(),
		Requests:     d.MasterOoO.ThreadStats(0).RequestsCompleted,
	}
	c.InORetired = d.LenderCore.Stats.TotalRetired
	if d.Master != nil {
		c.InORetired += d.Master.FillerCore().Stats.TotalRetired
	}
	if d.Latencies.Count() > 0 {
		c.MicroP99Us = d.CyclesToUs(d.Latencies.P99())
	}
	return c, nil
}

// matrixTasks enumerates the full design × workload × load campaign in
// canonical (paper) order.
func (s *Suite) matrixTasks() []campaign.Task[cell] {
	var tasks []campaign.Task[cell]
	for _, design := range core.AllDesigns {
		for _, spec := range workload.Microservices() {
			for _, load := range Loads {
				design, spec, load := design, spec, load
				tasks = append(tasks, campaign.Task[cell]{
					Key: s.cellKey("matrix", design, spec, load, ""),
					Run: func() (cell, error) { return s.runCell(design, spec, load) },
				})
			}
		}
	}
	return tasks
}

// Matrix runs (or returns the memoized) full campaign through the
// campaign engine: cells fan out across the worker pool, cached cells
// are decoded instead of simulated, and completions are journaled so an
// interrupted campaign resumes where it left off.
func (s *Suite) Matrix() ([]cell, error) {
	if s.matrixRun {
		return s.matrix, s.matrixErr
	}
	s.matrixRun = true
	if s.engErr != nil {
		s.matrixErr = s.engErr
		return nil, s.matrixErr
	}
	s.matrix, s.matrixErr = campaign.Run(s.eng, s.matrixTasks())
	return s.matrix, s.matrixErr
}

// freqAdjSlowdown converts raw closed-loop cycles-per-request for a
// design and the baseline into the frequency-adjusted service-time
// inflation. Every consumer — Slowdowns(), the energyprop memo path,
// and the two-phase queue closures that recompute the value from
// cached phase-1 bytes — funnels through this one expression, so the
// float arithmetic (and therefore cached cell bytes) is identical on
// all of them.
func freqAdjSlowdown(design core.Design, v, base float64) float64 {
	return (v / design.FreqGHz()) / (base / core.DesignBaseline.FreqGHz())
}

// measureSlowdown runs the saturated closed-loop cell for one (design,
// workload) point and returns cycles per request.
func (s *Suite) measureSlowdown(design core.Design, spec *workload.Spec) (float64, error) {
	reqTarget := s.opts.requests(150)
	cap := s.opts.cycles(8_000_000)
	closed := workload.NewClosedStream(spec.NewGen(s.opts.Seed + 1013))
	batch, err := s.fillerStreams(design, s.opts.Seed+97*uint64(design))
	if err != nil {
		return 0, err
	}
	d, err := core.NewDyad(core.Config{
		Design:       design,
		MasterStream: closed,
		BatchStreams: batch,
	})
	if err != nil {
		return 0, err
	}
	d.Exec = s.opts.Exec
	done := d.RunUntilRequests(reqTarget, cap)
	if done == 0 {
		return 0, fmt.Errorf("no requests completed for %v/%s", design, spec.Name)
	}
	return float64(d.Now()) / float64(done), nil
}

// Slowdowns measures each design's service-time inflation per workload
// with a saturated closed-loop run (the Section V methodology: IPC
// slowdowns measured in the cycle-level simulator scale the service
// distribution used by the request-granularity queueing simulation).
// The 35 closed-loop measurements are independent cells and run on the
// same campaign engine as the matrix.
func (s *Suite) Slowdowns() (map[slowKey]float64, error) {
	if s.slowdownsRun {
		return s.slowdowns, s.slowdownsErr
	}
	s.slowdownsRun = true
	if s.engErr != nil {
		s.slowdownsErr = s.engErr
		return nil, s.slowdownsErr
	}

	specs := workload.Microservices()
	var tasks []campaign.Task[float64]
	for _, spec := range specs {
		for _, design := range core.AllDesigns {
			design, spec := design, spec
			tasks = append(tasks, campaign.Task[float64]{
				Key: s.cellKey("slowdown", design, spec, 0, ""),
				Run: func() (float64, error) { return s.measureSlowdown(design, spec) },
			})
		}
	}
	svc, err := campaign.Run(s.eng, tasks)
	if err != nil {
		s.slowdownsErr = err
		return nil, err
	}

	baseIdx := 0
	for i, d := range core.AllDesigns {
		if d == core.DesignBaseline {
			baseIdx = i
		}
	}
	s.slowdowns = make(map[slowKey]float64)
	s.serviceBase = make(map[string]float64)
	// Seed the concurrent-safe raw memo too, so energyprop cells reuse
	// these campaign-cached measurements instead of re-simulating.
	s.slowMu.Lock()
	if s.rawSlow == nil {
		s.rawSlow = make(map[slowKey]float64)
	}
	for si, spec := range specs {
		for di, design := range core.AllDesigns {
			s.rawSlow[slowKey{design, spec.Name}] = svc[si*len(core.AllDesigns)+di]
		}
	}
	s.slowMu.Unlock()
	for si, spec := range specs {
		base := svc[si*len(core.AllDesigns)+baseIdx]
		s.serviceBase[spec.Name] = base
		for di, design := range core.AllDesigns {
			if design == core.DesignBaseline {
				s.slowdowns[slowKey{design, spec.Name}] = 1.0
				continue
			}
			// Frequency-adjust: cycles per request at different clocks.
			v := svc[si*len(core.AllDesigns)+di]
			s.slowdowns[slowKey{design, spec.Name}] = freqAdjSlowdown(design, v, base)
		}
	}
	return s.slowdowns, nil
}

package core

import (
	"duplexity/internal/cpu"
	"duplexity/internal/hsmt"
)

// ExecMode selects how Run and RunUntilRequests advance simulated time.
// All three modes are behavior-preserving by construction: stats,
// telemetry event streams (kinds, cycle stamps, emission order), latency
// samples, and campaign cache keys are bit-identical across modes (the
// three-way equivalence suite in fastforward_test.go holds them to byte
// equality). ModelVersion is deliberately untouched by the mode: how
// time advances is not part of the model.
type ExecMode uint8

const (
	// ExecEvent (the default) drives the dyad as a discrete-event
	// simulation: each component registers its next wake cycle in a
	// priority queue and the clock jumps straight from one scheduled
	// event to the next, never iterating intermediate cycles. One
	// component can sleep through another's busy span, so stall-heavy
	// configurations (the paper's killer microseconds) no longer pay a
	// host cycle per simulated cycle.
	ExecEvent ExecMode = iota
	// ExecFastForward is the whole-dyad skip loop (the pre-event-engine
	// default): step every component every cycle, and only when a cycle
	// visibly changed nothing anywhere jump all components together to
	// the earliest next event. Kept for the equivalence suite and as the
	// conservative middle ground.
	ExecFastForward
	// ExecStepped steps every component every cycle with no skipping at
	// all — the reference semantics the other two modes are held to.
	ExecStepped
)

// String implements fmt.Stringer.
func (m ExecMode) String() string {
	switch m {
	case ExecEvent:
		return "event"
	case ExecFastForward:
		return "fastforward"
	default:
		return "stepped"
	}
}

// Profitability backoff shared by the event engine and the legacy
// fast-forward path: an exact NextEvent scan costs roughly as much as a
// handful of plain steps, so a scan that yields a jump shorter than
// scanMinGain cycles did not pay for itself. After such a scan the
// scanner holds off for exponentially more quiet cycles (capped at
// scanHoldoffCap) before paying for another one. Pure throttling: a
// held-off cycle is simply stepped, which is always legal.
const (
	scanMinGain    = 8
	scanHoldoffCap = 64
)

// component is one independently clocked unit of the event engine: the
// master side of a dyad (OoO engine plus morph controller and filler
// engine) or its lender side (HSMT scheduler plus in-order datapath).
// Components of a dyad interact only through the shared virtual-context
// run queue (hsmt.Pool) and through passive memory-system state; caches
// and memory ports mutate only inside Access calls from a stepping
// component, so a component that does not step cannot be observed to
// change by anyone else. That is what makes per-component clocks sound.
type component interface {
	// stepAt advances the component through cycle now.
	stepAt(now uint64)
	// skipSpan bulk-charges the quiescent span [now, now+n) exactly as
	// n per-cycle steps would have (cycle counters, stall/idle charges,
	// round-robin phase). The engine only calls it for spans it has
	// proven quiescent.
	skipSpan(now, n uint64)
	// wakeAt returns a conservative lower bound on the next cycle >= now
	// at which stepping the component could change observable state
	// (cpu.NoEvent when nothing is scheduled). Called only immediately
	// after stepAt(now), at which point it must be emission-free: every
	// workload admission at or before now already happened inside the
	// step, so the query mutates nothing and emits no telemetry.
	wakeAt(now uint64) uint64
	// snapProgress marks the component's progress-visible counters;
	// progressed reports whether it made visible progress since the last
	// mark — the cheap gate that decides whether a wakeAt scan could be
	// worthwhile.
	snapProgress()
	progressed() bool
	// runQueue returns the shared hsmt.Pool this component can push to
	// or steal from, nil if it never touches one. Components sharing a
	// pool have their cached wake times invalidated when a sharer's
	// step changes the pool.
	runQueue() *hsmt.Pool
}

// masterComp adapts a dyad's master side (morph controller + OoO engine
// + filler engine, or the bare OoO engine for non-morphing designs) to
// the component interface.
type masterComp struct {
	d      *Dyad
	fstats *cpu.CoreStats // filler datapath stats, nil without a MasterCore
	mm, fm coreMark
}

func (c *masterComp) stepAt(now uint64) {
	if c.d.Master != nil {
		c.d.Master.Step(now)
	} else {
		c.d.MasterOoO.Step(now)
	}
}

func (c *masterComp) skipSpan(now, n uint64) {
	if c.d.Master != nil {
		c.d.Master.SkipCycles(now, n)
	} else {
		c.d.MasterOoO.SkipCycles(now, n)
	}
}

func (c *masterComp) wakeAt(now uint64) uint64 {
	if c.d.Master != nil {
		return c.d.Master.NextEvent(now)
	}
	return c.d.MasterOoO.NextEvent(now)
}

func (c *masterComp) snapProgress() {
	c.mm = markCore(&c.d.MasterOoO.Stats)
	if c.fstats != nil {
		c.fm = markCore(c.fstats)
	}
}

func (c *masterComp) progressed() bool {
	return advancedSince(&c.d.MasterOoO.Stats, c.mm) ||
		(c.fstats != nil && advancedSince(c.fstats, c.fm))
}

func (c *masterComp) runQueue() *hsmt.Pool {
	if c.d.Master == nil {
		return nil
	}
	return c.d.Master.runQueue()
}

// lenderComp adapts a dyad's lender side (HSMT scheduler + in-order
// datapath) to the component interface.
type lenderComp struct {
	d  *Dyad
	lm coreMark
}

func (c *lenderComp) stepAt(now uint64) { c.d.Lender.StepCore(now) }

func (c *lenderComp) skipSpan(now, n uint64) {
	c.d.Lender.SkipCycles(now, n)
	c.d.LenderCore.SkipCycles(now, n)
}

func (c *lenderComp) wakeAt(now uint64) uint64 {
	ev := c.d.Lender.NextEvent(now)
	if ce := c.d.LenderCore.NextEvent(now); ce < ev {
		ev = ce
	}
	return ev
}

func (c *lenderComp) snapProgress() { c.lm = markCore(&c.d.LenderCore.Stats) }

func (c *lenderComp) progressed() bool { return advancedSince(&c.d.LenderCore.Stats, c.lm) }

func (c *lenderComp) runQueue() *hsmt.Pool { return c.d.Pool }

// eventEngine is the discrete-event core loop: a binary min-heap of
// per-component wake cycles. The engine pops the earliest wake, advances
// the clock straight to it, and steps exactly the components scheduled
// there — an idle cycle is never ticked, and a sleeping component is
// never polled while another is busy.
//
// Bit-identity with lockstep stepping rests on four invariants,
// documented in DESIGN.md §13:
//
//  1. Canonical slice order. All components due at cycle T step in the
//     fixed order lockstep uses (a dyad's master before its lender;
//     dyads in chip order), so telemetry emission order and shared-cache
//     access order are preserved exactly.
//  2. Conservative wakes. A cached wake time is a lower bound: waking a
//     still-quiescent component early costs a no-op step, never
//     correctness. Wakes are recomputed only right after the component
//     steps (when the query is provably emission-free) and are clamped
//     to at least T+1.
//  3. Lazy exact charging. Stats for a sleeping component are charged
//     just before it next steps (or at run end) via skipSpan over
//     [charged, T): the span is quiescent by invariant 2, so the bulk
//     charge equals what per-cycle stepping would have accumulated.
//  4. Run-queue invalidation. The shared hsmt.Pool is the only active
//     cross-component channel. When a step changes the pool (a steal or
//     a return), every sharer's cached wake is lowered: to T for
//     sharers later in canonical order (lockstep would let them observe
//     the change in the same cycle), to T+1 for earlier ones (they
//     already ran at T before the change, exactly as in lockstep).
type eventEngine struct {
	comps []component
	pools []*hsmt.Pool // comps[i].runQueue(), cached at build time
	wake  []uint64     // cached conservative wake cycle per component
	// charged[i] is the cycle up to which (exclusive) component i's
	// per-cycle stats are charged; [charged[i], now) is an uncharged
	// quiescent span.
	charged []uint64
	penalty []uint32 // profitability backoff state (scanMinGain et al.)
	holdoff []uint32
	heap    []int32 // heap of component indices keyed by (wake, index)
	pos     []int32 // component index -> heap position
	// onSkip is called with the width of every clock jump, crediting
	// SkippedCycles diagnostics on the owning dyads.
	onSkip func(n uint64)
}

// newDyadEngine builds the event engine over the given dyads' components
// in canonical order: for each dyad its master side then its lender
// side, dyads in the order given (chip order).
func newDyadEngine(dyads ...*Dyad) *eventEngine {
	n := 2 * len(dyads)
	e := &eventEngine{
		comps:   make([]component, 0, n),
		pools:   make([]*hsmt.Pool, 0, n),
		wake:    make([]uint64, n),
		charged: make([]uint64, n),
		penalty: make([]uint32, n),
		holdoff: make([]uint32, n),
		heap:    make([]int32, n),
		pos:     make([]int32, n),
	}
	for _, d := range dyads {
		mc := &masterComp{d: d}
		if d.Master != nil {
			mc.fstats = &d.Master.FillerCore().Stats
		}
		e.comps = append(e.comps, mc, &lenderComp{d: d})
		e.pools = append(e.pools, mc.runQueue(), d.Pool)
	}
	ds := dyads
	e.onSkip = func(n uint64) {
		for _, d := range ds {
			d.SkippedCycles += n
		}
	}
	return e
}

// arm resets the engine for a run starting at cycle start: every
// component is scheduled for the first cycle (lockstep steps everyone on
// cycle one too) and is charged through start.
func (e *eventEngine) arm(start uint64) {
	for i := range e.comps {
		e.wake[i] = start
		e.charged[i] = start
		e.penalty[i] = 0
		e.holdoff[i] = 0
		e.heap[i] = int32(i)
		e.pos[i] = int32(i)
	}
}

// run advances the composed components from start until end (exclusive)
// on a shared clock and returns the cycle reached. done, when non-nil,
// is evaluated after every executed cycle and stops the run early — the
// same check frequency as the stepped loop, since the condition can only
// change on an executed cycle. All components are settled (charged
// through the returned cycle) on exit.
func (e *eventEngine) run(start, end uint64, done func() bool) uint64 {
	if start >= end {
		return start
	}
	e.arm(start)
	now := start
	for now < end {
		// Execute the event slice at now: every component scheduled at
		// or before now steps, in canonical order.
		for i := range e.comps {
			if e.wake[i] <= now {
				e.stepComp(int32(i), now)
			}
		}
		now++
		if done != nil && done() {
			break
		}
		if now >= end {
			break
		}
		// Jump the clock to the next scheduled wake; cycles in between
		// are provably idle and are never ticked.
		if t := e.wake[e.heap[0]]; t > now {
			target := t
			if target > end {
				target = end
			}
			e.onSkip(target - now)
			now = target
		}
	}
	e.settle(now)
	return now
}

// stepComp charges component i's outstanding quiescent span, steps it
// through cycle now, and reschedules it.
func (e *eventEngine) stepComp(i int32, now uint64) {
	c := e.comps[i]
	if gap := now - e.charged[i]; gap > 0 {
		c.skipSpan(e.charged[i], gap)
	}
	var steals, returns uint64
	p := e.pools[i]
	if p != nil {
		steals, returns = p.Steals, p.Returns
	}
	c.snapProgress()
	c.stepAt(now)
	e.charged[i] = now + 1

	var w uint64
	switch {
	case c.progressed():
		// A productive cycle: more work is overwhelmingly likely next
		// cycle, and the exact scan would be pure overhead.
		w = now + 1
	case e.holdoff[i] > 0:
		// Recent scans did not pay for themselves; step blindly.
		e.holdoff[i]--
		w = now + 1
	default:
		w = c.wakeAt(now)
		if w <= now {
			w = now + 1
		}
		if w >= now+scanMinGain {
			e.penalty[i] = 0
		} else {
			pen := e.penalty[i]*2 + 1
			if pen > scanHoldoffCap {
				pen = scanHoldoffCap
			}
			e.penalty[i] = pen
			e.holdoff[i] = pen
		}
	}
	e.wake[i] = w
	e.fix(i)

	if p != nil && (p.Steals != steals || p.Returns != returns) {
		e.invalidatePool(p, i, now)
	}
}

// invalidatePool lowers the cached wake of every other sharer of pool p
// after component i's step at cycle now changed the pool. Sharers later
// in canonical order may react within the same cycle (they have not
// stepped yet this slice, matching lockstep, where they run after i);
// earlier sharers already ran at now and can react at now+1.
func (e *eventEngine) invalidatePool(p *hsmt.Pool, i int32, now uint64) {
	for j := range e.comps {
		j := int32(j)
		if j == i || e.pools[j] != p {
			continue
		}
		w := now
		if j < i {
			w = now + 1
		}
		if w < e.wake[j] {
			e.wake[j] = w
			e.fix(j)
		}
	}
}

// settle charges every component's outstanding quiescent span through
// cycle now (exclusive), leaving all stats exactly as a lockstep run to
// now would have.
func (e *eventEngine) settle(now uint64) {
	for i, c := range e.comps {
		if gap := now - e.charged[i]; gap > 0 {
			c.skipSpan(e.charged[i], gap)
			e.charged[i] = now
		}
	}
}

// Binary min-heap over component indices keyed by (wake, index). The
// index tie-break keeps the heap deterministic; slice execution order is
// fixed by the canonical component scan regardless.

func (e *eventEngine) less(a, b int32) bool {
	if e.wake[a] != e.wake[b] {
		return e.wake[a] < e.wake[b]
	}
	return a < b
}

func (e *eventEngine) hswap(x, y int) {
	h := e.heap
	h[x], h[y] = h[y], h[x]
	e.pos[h[x]] = int32(x)
	e.pos[h[y]] = int32(y)
}

// fix restores the heap invariant after component i's wake changed.
func (e *eventEngine) fix(i int32) {
	if !e.up(int(e.pos[i])) {
		e.down(int(e.pos[i]))
	}
}

func (e *eventEngine) up(j int) bool {
	moved := false
	for j > 0 {
		parent := (j - 1) / 2
		if !e.less(e.heap[j], e.heap[parent]) {
			break
		}
		e.hswap(j, parent)
		j = parent
		moved = true
	}
	return moved
}

func (e *eventEngine) down(j int) {
	n := len(e.heap)
	for {
		l := 2*j + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && e.less(e.heap[r], e.heap[l]) {
			least = r
		}
		if !e.less(e.heap[least], e.heap[j]) {
			return
		}
		e.hswap(j, least)
		j = least
	}
}

package expt

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/idle"
	"duplexity/internal/telemetry"
	"duplexity/internal/workload"
)

// This file is the serving boundary of the experiment harness: it
// resolves externally submitted cell requests (internal/serve's HTTP
// API) onto the exact same campaign tasks the CLI figures submit.
// Served cells therefore hit the same content-addressed cache keys and
// produce byte-identical cache entries — the serve layer adds
// scheduling, never semantics.

// Cell kinds accepted at the API boundary.
const (
	// KindMatrix is one open-loop design × workload × load point (the
	// Figure 5/6 campaign cell).
	KindMatrix = "matrix"
	// KindSlowdown is one saturated closed-loop service-time cell (the
	// Figure 5d-e slowdown measurement).
	KindSlowdown = "slowdown"
	// KindEnergyProp is one energy-proportionality point: a queueing
	// simulation under an idle governor plus the power model over the
	// resulting C-state residency.
	KindEnergyProp = "energyprop"
	// KindTail is one tail-latency queueing point (the Figure 5(d)/(e)
	// BigHouse stage as a content-addressed cell): a queueing simulation
	// whose service distribution is scaled by the design's closed-loop
	// slowdown. Resolves two-phase by default — the slowdown micro-sims
	// are shared phase-1 dependencies.
	KindTail = "tail"
)

// CellSpec is a single simulation cell requested over the serve API.
// Scale and seed are properties of the serving harness (Options), not
// the request: a daemon serves one (scale, seed, model-version) world,
// so identical requests always map to identical cache keys.
type CellSpec struct {
	Kind     string `json:"kind"`
	Design   string `json:"design"`
	Workload string `json:"workload"`
	// Load is the offered load in (0, 0.95] for matrix and energyprop
	// cells; slowdown cells are saturated closed-loop runs and must
	// leave it 0.
	Load float64 `json:"load,omitempty"`
	// Governor names the idle governor for energyprop cells
	// (idle.Names); other kinds must leave it empty.
	Governor string `json:"governor,omitempty"`
	// Lambda is an explicit arrival rate (QPS) for tail cells; 0 defaults
	// to the workload's nominal rate at the requested load. Other kinds
	// must leave it 0.
	Lambda float64 `json:"lambda,omitempty"`
}

// FieldError locates one invalid request field.
type FieldError struct {
	Field   string `json:"field"`
	Message string `json:"message"`
}

// ValidationError aggregates every invalid field of a request, so API
// clients see all problems in one structured 400 instead of fixing them
// one round-trip at a time.
type ValidationError struct {
	Fields []FieldError `json:"fields"`
}

func (e *ValidationError) Error() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.Field + ": " + f.Message
	}
	return "invalid request: " + strings.Join(parts, "; ")
}

// ParseDesign resolves a design-point name (core.Design.String form,
// e.g. "Duplexity", "SMT+").
func ParseDesign(name string) (core.Design, bool) {
	for _, d := range core.AllDesigns {
		if d.String() == name {
			return d, true
		}
	}
	return 0, false
}

// KnownDesignNames lists the design points in evaluation order.
func KnownDesignNames() []string {
	names := make([]string, len(core.AllDesigns))
	for i, d := range core.AllDesigns {
		names[i] = d.String()
	}
	return names
}

// KnownWorkloadNames lists the Section V microservices in suite order.
func KnownWorkloadNames() []string {
	specs := workload.Microservices()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

func workloadByName(name string) *workload.Spec {
	for _, s := range workload.Microservices() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Validate checks a cell request at the API boundary, before any
// queueing or simulation, returning a *ValidationError naming every bad
// field (the serve layer maps it to a structured 400).
func (cs CellSpec) Validate() error {
	var errs []FieldError
	switch cs.Kind {
	case KindMatrix:
		if math.IsNaN(cs.Load) || cs.Load <= 0 || cs.Load > 0.95 {
			errs = append(errs, FieldError{"load", fmt.Sprintf("matrix cells need 0 < load <= 0.95, got %v", cs.Load)})
		}
	case KindSlowdown:
		if cs.Load != 0 {
			errs = append(errs, FieldError{"load", "slowdown cells are saturated closed-loop runs; leave load 0"})
		}
	case KindEnergyProp:
		if math.IsNaN(cs.Load) || cs.Load <= 0 || cs.Load > 0.95 {
			errs = append(errs, FieldError{"load", fmt.Sprintf("energyprop cells need 0 < load <= 0.95, got %v", cs.Load)})
		}
		if _, ok := idle.ByName(cs.Governor); !ok {
			errs = append(errs, FieldError{"governor", fmt.Sprintf("unknown idle governor %q (known: %s)", cs.Governor, strings.Join(idle.Names(), ", "))})
		} else if idle.RequiresMorphing(cs.Governor) {
			if d, ok := ParseDesign(cs.Design); ok && !d.Morphs() {
				errs = append(errs, FieldError{"governor", fmt.Sprintf("the %s governor needs a morphing design; %s cannot run filler-threads", cs.Governor, cs.Design)})
			}
		}
	case KindTail:
		if math.IsNaN(cs.Load) || cs.Load <= 0 || cs.Load > 0.95 {
			errs = append(errs, FieldError{"load", fmt.Sprintf("tail cells need 0 < load <= 0.95, got %v", cs.Load)})
		}
		if math.IsNaN(cs.Lambda) || cs.Lambda < 0 {
			errs = append(errs, FieldError{"lambda", fmt.Sprintf("tail cells need lambda >= 0 (0: the workload's nominal rate at the load), got %v", cs.Lambda)})
		}
	default:
		errs = append(errs, FieldError{"kind", fmt.Sprintf("unknown kind %q (known: %s, %s, %s, %s)", cs.Kind, KindMatrix, KindSlowdown, KindEnergyProp, KindTail)})
	}
	if cs.Kind != KindEnergyProp && cs.Governor != "" {
		errs = append(errs, FieldError{"governor", "only energyprop cells take an idle governor"})
	}
	if cs.Kind != KindTail && cs.Lambda != 0 {
		errs = append(errs, FieldError{"lambda", "only tail cells take an explicit arrival rate"})
	}
	if _, ok := ParseDesign(cs.Design); !ok {
		errs = append(errs, FieldError{"design", fmt.Sprintf("unknown design %q (known: %s)", cs.Design, strings.Join(KnownDesignNames(), ", "))})
	}
	if workloadByName(cs.Workload) == nil {
		errs = append(errs, FieldError{"workload", fmt.Sprintf("unknown workload %q (known: %s)", cs.Workload, strings.Join(KnownWorkloadNames(), ", "))})
	}
	if len(errs) > 0 {
		return &ValidationError{Fields: errs}
	}
	return nil
}

// ServedResult is the API-facing outcome of one served cell. Cell (for
// matrix kinds) carries exactly the fields the CLI's campaign report
// exposes; the underlying cache entry is byte-identical to a CLI run's.
type ServedResult struct {
	Kind     string  `json:"kind"`
	Design   string  `json:"design"`
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	// Digest is the cell's content address in the campaign cache.
	Digest string `json:"digest"`
	// Cached reports whether the on-disk cache answered the cell (false
	// when this request simulated it, or received a coalesced result
	// from a concurrent identical request's simulation).
	Cached bool `json:"cached"`
	// Governor echoes the requested idle governor (energyprop only).
	Governor string `json:"governor,omitempty"`
	// Cell is the matrix-cell payload (nil for other kinds).
	Cell *CellReport `json:"cell,omitempty"`
	// CyclesPerReq is the slowdown-cell payload (0 for other kinds).
	CyclesPerReq float64 `json:"cycles_per_req,omitempty"`
	// Energy is the energyprop-cell payload (nil for other kinds).
	Energy *EnergyCellReport `json:"energy,omitempty"`
	// Tail is the tail-cell payload (nil for other kinds).
	Tail *TailCellReport `json:"tail,omitempty"`
	// Raw is the cache-entry-level form this result decoded from. It is
	// what a fleet worker ships to its coordinator (the serve layer's
	// /v1/exec endpoint returns it); excluded from client-facing JSON.
	Raw *RawCellResult `json:"-"`
}

// RawCellResult is one resolved cell at the cache-entry level: the
// content address, whether a cache answered it, the producing
// simulation's wall time, and the raw result JSON exactly as cached.
// This is the fleet wire format — a coordinator stores the entry
// verbatim, so its cache ends up byte-identical to a single-node run's.
type RawCellResult struct {
	Digest      string          `json:"digest"`
	Cached      bool            `json:"cached"`
	WallSeconds float64         `json:"wall_seconds"`
	Result      json.RawMessage `json:"result"`
	// Stages carries the producing daemon's recorded spans for this
	// resolution, so a coordinator can adopt them as children of its
	// own remote span and stitch a cross-process timeline. Wire-only
	// observability: never part of the cached entry, so cache bytes
	// stay identical with tracing on or off.
	Stages []telemetry.StageSpan `json:"stages,omitempty"`
}

// Engine exposes the suite's campaign engine to the serving layer
// (single-cell submission, drain-time checkpoint, incomplete-cell
// journaling).
func (s *Suite) Engine() *campaign.Engine { return s.eng }

// servedKeyFor resolves a validated spec to its campaign key plus the
// parsed design, workload, and effective arrival rate (tail cells with
// Lambda 0 default to the workload's nominal rate at the load, exactly
// as the CLI figure path does — so the defaulted request and the CLI
// cell share one cache entry).
func (s *Suite) servedKeyFor(cs CellSpec) (campaign.Key, core.Design, *workload.Spec, float64) {
	design, _ := ParseDesign(cs.Design)
	spec := workloadByName(cs.Workload)
	if cs.Kind == KindTail {
		lambda := cs.Lambda
		if lambda == 0 {
			lambda = spec.QPSAtLoad(cs.Load)
		}
		return s.tailKey(design, spec, cs.Load, lambda), design, spec, lambda
	}
	return s.cellKey(cs.Kind, design, spec, cs.Load, cs.Governor), design, spec, 0
}

// ServedKey returns the content-address key a validated spec resolves
// to — the same key the CLI path would use for the identical cell.
func (s *Suite) ServedKey(cs CellSpec) (campaign.Key, error) {
	if err := cs.Validate(); err != nil {
		return campaign.Key{}, err
	}
	key, _, _, _ := s.servedKeyFor(cs)
	return key, nil
}

// RunServedRaw resolves one validated cell through the campaign engine
// at the cache-entry level: local cache probe, remote dispatch (when the
// suite has a fleet), simulation on a miss, journaling — identical
// accounting to a CLI batch. This is what the serve layer's /v1/exec
// endpoint returns to a fleet coordinator. Safe for concurrent use.
func (s *Suite) RunServedRaw(cs CellSpec) (RawCellResult, error) {
	return s.RunServedRawTraced(cs, nil)
}

// RunServedRawTraced is RunServedRaw with per-stage tracing threaded
// into the campaign engine (nil tr: untraced).
func (s *Suite) RunServedRawTraced(cs CellSpec, tr *telemetry.CellTrace) (RawCellResult, error) {
	return s.RunServedRawDeadline(cs, tr, time.Time{})
}

// RunServedRawDeadline is RunServedRawTraced for deadline-lane cells: a
// non-zero deadline reaches the campaign engine's remote (a fleet
// coordinator) for Hurry-up-style placement, never the simulation
// itself, so results stay byte-identical with or without a deadline.
func (s *Suite) RunServedRawDeadline(cs CellSpec, tr *telemetry.CellTrace, deadline time.Time) (RawCellResult, error) {
	if s.engErr != nil {
		return RawCellResult{}, s.engErr
	}
	if err := cs.Validate(); err != nil {
		return RawCellResult{}, err
	}
	key, design, spec, lambda := s.servedKeyFor(cs)

	// Two-phase kinds resolve their slowdown micro-sims through the
	// engine's phase-1 layer (shared across every served cell and CLI
	// figure that needs them) unless the suite runs single-phase.
	if !s.opts.SinglePhase {
		var tp *campaign.TwoPhase
		switch cs.Kind {
		case KindTail:
			tp = s.tailTwoPhase(design, spec, cs.Load, lambda)
		case KindEnergyProp:
			tp = s.energyTwoPhase(design, spec, cs.Governor, cs.Load)
		}
		if tp != nil {
			ent, cached, err := s.eng.DoRawTwoPhase(key, tp, tr, deadline)
			if err != nil {
				return RawCellResult{}, err
			}
			return RawCellResult{
				Digest: key.Digest(), Cached: cached,
				WallSeconds: ent.WallSeconds, Result: ent.Result,
			}, nil
		}
	}

	var run func() (json.RawMessage, error)
	switch cs.Kind {
	case KindMatrix:
		run = func() (json.RawMessage, error) {
			c, err := s.runCell(design, spec, cs.Load)
			if err != nil {
				return nil, err
			}
			return json.Marshal(c)
		}
	case KindSlowdown:
		run = func() (json.RawMessage, error) {
			v, err := s.measureSlowdown(design, spec)
			if err != nil {
				return nil, err
			}
			return json.Marshal(v)
		}
	case KindEnergyProp:
		run = func() (json.RawMessage, error) {
			c, err := s.runEnergyCell(design, spec, cs.Governor, cs.Load)
			if err != nil {
				return nil, err
			}
			return json.Marshal(c)
		}
	case KindTail:
		run = func() (json.RawMessage, error) {
			c, err := s.runTailCell(design, spec, cs.Load, lambda)
			if err != nil {
				return nil, err
			}
			return json.Marshal(c)
		}
	}
	ent, cached, err := s.eng.DoRawDeadline(key, run, tr, deadline)
	if err != nil {
		return RawCellResult{}, err
	}
	return RawCellResult{
		Digest: key.Digest(), Cached: cached,
		WallSeconds: ent.WallSeconds, Result: ent.Result,
	}, nil
}

// RunServed resolves one validated cell and decodes it into the
// API-facing result shape. It layers typed decoding over RunServedRaw,
// so the local, coordinator, and worker paths all produce their
// responses from the same cached bytes. Unlike the figure methods,
// RunServed is safe for concurrent use (it touches no Suite
// memoization), which is what lets the serve layer fan cells across its
// pool with one shared Suite.
func (s *Suite) RunServed(cs CellSpec) (ServedResult, error) {
	return s.RunServedTraced(cs, nil)
}

// RunServedTraced is RunServed with per-stage tracing threaded through
// (nil tr: untraced).
func (s *Suite) RunServedTraced(cs CellSpec, tr *telemetry.CellTrace) (ServedResult, error) {
	return s.RunServedDeadline(cs, tr, time.Time{})
}

// RunServedDeadline is RunServedTraced with a placement deadline for
// interactive-lane cells (zero deadline: batch semantics). This is the
// serve layer's run hook.
func (s *Suite) RunServedDeadline(cs CellSpec, tr *telemetry.CellTrace, deadline time.Time) (ServedResult, error) {
	raw, err := s.RunServedRawDeadline(cs, tr, deadline)
	if err != nil {
		return ServedResult{}, err
	}
	out := ServedResult{
		Kind: cs.Kind, Design: cs.Design, Workload: cs.Workload, Load: cs.Load,
		Governor: cs.Governor, Digest: raw.Digest, Cached: raw.Cached, Raw: &raw,
	}
	switch cs.Kind {
	case KindMatrix:
		var c cell
		if err := json.Unmarshal(raw.Result, &c); err != nil {
			return ServedResult{}, fmt.Errorf("expt: decoding matrix cell %s: %w", raw.Digest[:12], err)
		}
		out.Cell = &CellReport{
			Design:       c.Design.String(),
			Workload:     c.Workload,
			Load:         c.Load,
			Utilization:  c.Utilization,
			Seconds:      c.Seconds,
			OoORetired:   c.OoORetired,
			InORetired:   c.InORetired,
			BatchRetired: c.BatchRetired,
			RemotesPerS:  c.RemotesPerS,
			Requests:     c.Requests,
			MicroP99Us:   c.MicroP99Us,
		}
	case KindSlowdown:
		var v float64
		if err := json.Unmarshal(raw.Result, &v); err != nil {
			return ServedResult{}, fmt.Errorf("expt: decoding slowdown cell %s: %w", raw.Digest[:12], err)
		}
		out.CyclesPerReq = v
	case KindEnergyProp:
		var c energyCell
		if err := json.Unmarshal(raw.Result, &c); err != nil {
			return ServedResult{}, fmt.Errorf("expt: decoding energyprop cell %s: %w", raw.Digest[:12], err)
		}
		out.Energy = c.report()
	case KindTail:
		var c tailCell
		if err := json.Unmarshal(raw.Result, &c); err != nil {
			return ServedResult{}, fmt.Errorf("expt: decoding tail cell %s: %w", raw.Digest[:12], err)
		}
		out.Tail = c.report()
	}
	return out, nil
}

// Campaign kinds accepted at the API boundary: the matrix campaign
// ("fig5" is the CLI-familiar alias) and the closed-loop slowdown
// campaign, mirroring the experiment families the duplexity CLI
// validates up front.
const (
	CampaignMatrix     = "matrix"
	CampaignFig5       = "fig5"
	CampaignSlowdowns  = "slowdowns"
	CampaignEnergyProp = "energyprop"
	CampaignTails      = "tails"
)

// CampaignSpec is a batch submission: a cell family crossed over design
// × workload (× load for matrix kinds, × governor for energyprop).
// Empty lists default to the full paper campaign for that axis.
type CampaignSpec struct {
	Kind      string    `json:"kind"`
	Designs   []string  `json:"designs,omitempty"`
	Workloads []string  `json:"workloads,omitempty"`
	Loads     []float64 `json:"loads,omitempty"`
	Governors []string  `json:"governors,omitempty"`
}

// Expand validates a campaign submission and enumerates its cells in
// canonical (paper) order: design-major, then workload, then load —
// the same order the CLI's matrixTasks uses, so streamed results line
// up with figure rows.
func (c CampaignSpec) Expand() ([]CellSpec, error) {
	var errs []FieldError
	cellKind := ""
	switch c.Kind {
	case CampaignMatrix, CampaignFig5:
		cellKind = KindMatrix
	case CampaignSlowdowns:
		cellKind = KindSlowdown
		if len(c.Loads) > 0 {
			errs = append(errs, FieldError{"loads", "slowdown campaigns are closed-loop; leave loads empty"})
		}
	case CampaignEnergyProp:
		cellKind = KindEnergyProp
	case CampaignTails:
		cellKind = KindTail
	default:
		errs = append(errs, FieldError{"kind", fmt.Sprintf("unknown campaign kind %q (known: %s, %s, %s, %s, %s)",
			c.Kind, CampaignMatrix, CampaignFig5, CampaignSlowdowns, CampaignEnergyProp, CampaignTails)})
	}
	if cellKind != KindEnergyProp && len(c.Governors) > 0 {
		errs = append(errs, FieldError{"governors", "only energyprop campaigns take idle governors"})
	}
	designs := c.Designs
	if len(designs) == 0 {
		if cellKind == KindEnergyProp {
			// The canonical proportionality story: the baseline OoO core
			// under sleep states vs Duplexity filling idle.
			designs = []string{core.DesignBaseline.String(), core.DesignDuplexity.String()}
		} else {
			designs = KnownDesignNames()
		}
	}
	for _, d := range designs {
		if _, ok := ParseDesign(d); !ok {
			errs = append(errs, FieldError{"designs", fmt.Sprintf("unknown design %q (known: %s)", d, strings.Join(KnownDesignNames(), ", "))})
		}
	}
	workloads := c.Workloads
	if len(workloads) == 0 {
		workloads = KnownWorkloadNames()
	}
	for _, w := range workloads {
		if workloadByName(w) == nil {
			errs = append(errs, FieldError{"workloads", fmt.Sprintf("unknown workload %q (known: %s)", w, strings.Join(KnownWorkloadNames(), ", "))})
		}
	}
	loads := c.Loads
	switch cellKind {
	case KindMatrix, KindEnergyProp, KindTail:
		if len(loads) == 0 {
			if cellKind == KindEnergyProp {
				loads = append([]float64(nil), EnergyLoads...)
			} else {
				loads = append([]float64(nil), Loads...)
			}
		}
		for _, l := range loads {
			if math.IsNaN(l) || l <= 0 || l > 0.95 {
				errs = append(errs, FieldError{"loads", fmt.Sprintf("%s loads need 0 < load <= 0.95, got %v", cellKind, l)})
			}
		}
	default:
		loads = []float64{0}
	}
	governors := []string{""}
	if cellKind == KindEnergyProp {
		governors = c.Governors
		if len(governors) == 0 {
			governors = []string{idle.GovShallow, idle.GovDeep, idle.GovAgile, idle.GovFill}
		}
		for _, g := range governors {
			if _, ok := idle.ByName(g); !ok {
				errs = append(errs, FieldError{"governors", fmt.Sprintf("unknown idle governor %q (known: %s)", g, strings.Join(idle.Names(), ", "))})
			}
		}
	}
	if len(errs) > 0 {
		// Report each field once even when several values are bad.
		sort.SliceStable(errs, func(i, j int) bool { return errs[i].Field < errs[j].Field })
		return nil, &ValidationError{Fields: errs}
	}
	var cells []CellSpec
	for _, d := range designs {
		for _, w := range workloads {
			for _, l := range loads {
				for _, g := range governors {
					// The fill governor needs a morphing design; the
					// cross-product silently drops invalid pairings so
					// "Baseline+Duplexity × all governors" expands to the
					// meaningful cells instead of erroring.
					if g != "" && idle.RequiresMorphing(g) {
						if dd, ok := ParseDesign(d); ok && !dd.Morphs() {
							continue
						}
					}
					cells = append(cells, CellSpec{Kind: cellKind, Design: d, Workload: w, Load: l, Governor: g})
				}
			}
		}
	}
	if len(cells) == 0 {
		return nil, &ValidationError{Fields: []FieldError{{"governors",
			"no valid (design, governor) pairings: the fill governor needs a morphing design"}}}
	}
	return cells, nil
}

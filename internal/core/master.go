package core

import (
	"duplexity/internal/cpu"
	"duplexity/internal/hsmt"
	"duplexity/internal/isa"
	"duplexity/internal/telemetry"
)

// Mode is the master-core's execution mode.
type Mode int

// Master-core modes (Section III-B).
const (
	// ModeMaster: single-threaded OoO execution of the master-thread.
	ModeMaster Mode = iota
	// ModeDraining: a µs-scale stall was demarcated; elder instructions
	// drain while younger ones have been flushed.
	ModeDraining
	// ModeFiller: the datapath has morphed to in-order HSMT and executes
	// borrowed filler-threads.
	ModeFiller
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeMaster:
		return "master"
	case ModeDraining:
		return "draining"
	default:
		return "filler"
	}
}

// fillerEngine abstracts the filler-thread execution engine: either a
// fixed 8-thread in-order SMT (MorphCore) or an HSMT scheduler over a
// dyad-shared virtual-context pool (MorphCore+, Duplexity variants).
type fillerEngine interface {
	// Step advances the filler datapath one cycle.
	Step(now uint64)
	// EvictAll removes all filler contexts (master-thread restart).
	EvictAll(now uint64)
	// Core exposes the underlying datapath for statistics.
	Core() *cpu.InOCore
	// NextEvent returns the earliest cycle >= now at which a Step could
	// change observable state (cpu.NoEvent if none is scheduled).
	NextEvent(now uint64) uint64
	// SkipCycles bulk-charges a quiescent span [now, now+n) exactly as n
	// per-cycle Steps would have.
	SkipCycles(now, n uint64)
	// pool returns the shared run queue the engine steals from and
	// returns to, nil for engines with private streams (fixedFiller).
	pool() *hsmt.Pool
	// setTelemetry attaches an event sink, tagging emissions with src.
	setTelemetry(sink telemetry.Sink, src uint8)
}

// hsmtFiller adapts an hsmt.Scheduler to the fillerEngine interface.
type hsmtFiller struct{ sched *hsmt.Scheduler }

func (h hsmtFiller) Step(now uint64)     { h.sched.StepCore(now) }
func (h hsmtFiller) EvictAll(now uint64) { h.sched.EvictAll(now) }
func (h hsmtFiller) Core() *cpu.InOCore  { return h.sched.Core() }
func (h hsmtFiller) NextEvent(now uint64) uint64 {
	ev := h.sched.NextEvent(now)
	if ce := h.sched.Core().NextEvent(now); ce < ev {
		ev = ce
	}
	return ev
}
func (h hsmtFiller) SkipCycles(now, n uint64) {
	h.sched.SkipCycles(now, n)
	h.sched.Core().SkipCycles(now, n)
}
func (h hsmtFiller) pool() *hsmt.Pool { return h.sched.Pool() }
func (h hsmtFiller) setTelemetry(sink telemetry.Sink, src uint8) {
	h.sched.Telemetry = sink
	h.sched.TelemetrySrc = src
}

// fixedFiller runs a fixed set of filler streams (MorphCore's 8 filler
// threads): no backing pool, threads block in place on µs-scale stalls.
type fixedFiller struct {
	core    *cpu.InOCore
	streams []isa.Stream
	pending [][]isa.Instr
	bound   bool

	sink    telemetry.Sink
	sinkSrc uint8
}

func newFixedFiller(core *cpu.InOCore, streams []isa.Stream) *fixedFiller {
	return &fixedFiller{core: core, streams: streams, pending: make([][]isa.Instr, len(streams))}
}

func (f *fixedFiller) Step(now uint64) {
	if !f.bound {
		for i, s := range f.streams {
			if i >= f.core.Slots() {
				break
			}
			f.core.Bind(i, s, now, 0) // swap cost charged via MorphInLat
			if len(f.pending[i]) > 0 {
				f.core.Preload(i, f.pending[i])
				// Keep the backing array for the next eviction's
				// UnbindInto, so morph churn does not allocate.
				f.pending[i] = f.pending[i][:0]
			}
			if f.sink != nil {
				f.sink.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFillerBorrow,
					Src: f.sinkSrc, A: uint64(i), B: uint64(i)})
			}
		}
		f.bound = true
	}
	f.core.Step(now)
}

func (f *fixedFiller) EvictAll(now uint64) {
	if !f.bound {
		return
	}
	for i := 0; i < f.core.Slots(); i++ {
		if f.core.Slot(i).Active() {
			_, f.pending[i] = f.core.UnbindInto(i, f.pending[i][:0])
			if f.sink != nil {
				f.sink.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFillerEvict,
					Src: f.sinkSrc, A: uint64(i), B: telemetry.EvictMasterRestart})
			}
		}
	}
	f.bound = false
}

func (f *fixedFiller) Core() *cpu.InOCore { return f.core }

func (f *fixedFiller) NextEvent(now uint64) uint64 {
	if !f.bound {
		return now // next Step binds the filler streams
	}
	return f.core.NextEvent(now)
}

func (f *fixedFiller) SkipCycles(now, n uint64) { f.core.SkipCycles(now, n) }

func (f *fixedFiller) pool() *hsmt.Pool { return nil }

func (f *fixedFiller) setTelemetry(sink telemetry.Sink, src uint8) {
	f.sink = sink
	f.sinkSrc = src
}

// MasterStats summarizes master-core mode activity.
type MasterStats struct {
	Morphs        uint64 // stall-triggered transitions to filler mode
	IdleMorphs    uint64 // idle-triggered transitions
	MasterCycles  uint64 // cycles in ModeMaster
	DrainCycles   uint64 // cycles draining
	FillerCycles  uint64 // cycles in ModeFiller
	RestartStalls uint64 // total master restart-latency cycles charged
}

// MasterCore is the morphable core of Section III-B: it executes its
// latency-critical master-thread on a 4-wide OoO engine and, whenever the
// master-thread stalls on a demarcated µs-scale operation or runs out of
// requests, drains, morphs into an in-order HSMT engine, and executes
// filler-threads until the master-thread becomes ready again.
type MasterCore struct {
	design     Design
	restartLat uint64
	ooo        *cpu.OoOCore
	filler     fillerEngine
	// signaler reports master-thread work availability without consuming
	// instructions; nil disables idle-triggered morphing.
	signaler cpu.WorkSignaler

	mode            Mode
	modeReadyAt     uint64 // cycle when the in-progress morph completes
	stalledOnRemote bool
	remoteReadyAt   uint64
	// now mirrors the cycle last passed to Step, so the OnRemote hook
	// (which receives only a completion time) can stamp events.
	now uint64
	// morphStart records the cycle the in-progress morph began, so resume
	// paths can report (and charge) the master-thread's away time.
	morphStart uint64

	// Telemetry, when non-nil, receives Morph and MasterRestart events;
	// nil costs one check per mode transition.
	Telemetry telemetry.Sink
	// TelemetrySrc tags emitted events (telemetry.SrcMaster).
	TelemetrySrc uint8

	Stats MasterStats
}

// NewMasterCore assembles a master-core from its two engines. The ooo
// engine must have exactly one thread (the master-thread); its OnRemote
// hook is installed by the master-core.
func NewMasterCore(design Design, ooo *cpu.OoOCore, filler fillerEngine, signaler cpu.WorkSignaler) *MasterCore {
	m := &MasterCore{
		design: design, restartLat: design.RestartLat(),
		ooo: ooo, filler: filler, signaler: signaler,
	}
	ooo.OnRemote = m.onRemote
	return m
}

// SetRestartLat overrides the design's master-thread restart latency
// (used by the restart-latency ablation study).
func (m *MasterCore) SetRestartLat(cycles uint64) { m.restartLat = cycles }

// Mode returns the current execution mode.
func (m *MasterCore) Mode() Mode { return m.mode }

// OoO exposes the master-thread engine.
func (m *MasterCore) OoO() *cpu.OoOCore { return m.ooo }

// FillerCore exposes the filler-thread datapath.
func (m *MasterCore) FillerCore() *cpu.InOCore { return m.filler.Core() }

// runQueue returns the dyad-shared context pool the filler engine draws
// from, nil when the engine runs private streams (MorphCore).
func (m *MasterCore) runQueue() *hsmt.Pool { return m.filler.pool() }

// onRemote fires when the master-thread issues a µs-scale operation:
// demarcate the stall, flush younger work, and begin draining.
func (m *MasterCore) onRemote(tid int, _ isa.Instr, completeAt uint64) cpu.RemoteAction {
	if m.mode != ModeMaster {
		return cpu.RemoteBlock
	}
	m.stalledOnRemote = true
	m.remoteReadyAt = completeAt
	m.ooo.HaltFetch(tid)
	m.ooo.SquashYoungerThanRemote(tid)
	m.mode = ModeDraining
	m.morphStart = m.now
	m.Stats.Morphs++
	if m.Telemetry != nil {
		m.Telemetry.Emit(telemetry.Event{Cycle: m.now, Kind: telemetry.EvMorph,
			Src: m.TelemetrySrc, A: 1})
	}
	return cpu.RemoteHandled
}

// masterReady reports whether the master-thread can resume at now.
func (m *MasterCore) masterReady(now uint64) bool {
	if m.stalledOnRemote {
		return now >= m.remoteReadyAt
	}
	return m.signaler != nil && m.signaler.HasWork(now)
}

// Step advances the master-core one cycle.
func (m *MasterCore) Step(now uint64) {
	m.now = now
	switch m.mode {
	case ModeMaster:
		m.Stats.MasterCycles++
		m.ooo.Step(now)
		// Idle-triggered morph: no in-flight work and no pending request.
		if m.mode == ModeMaster && m.signaler != nil &&
			m.ooo.Drained(0) && !m.signaler.HasWork(now) {
			m.stalledOnRemote = false
			m.ooo.HaltFetch(0)
			m.mode = ModeDraining
			m.morphStart = now
			m.Stats.IdleMorphs++
			if m.Telemetry != nil {
				m.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMorph,
					Src: m.TelemetrySrc, A: 0})
			}
		}

	case ModeDraining:
		m.Stats.DrainCycles++
		m.ooo.Step(now)
		switch {
		case m.stalledOnRemote && m.ooo.DrainedToRemote(0):
			// Refresh the wake-up time from the actual head remote (the
			// oldest remote may differ from the one that triggered).
			if ca, ok := m.ooo.HeadRemoteCompletion(0); ok {
				m.remoteReadyAt = ca
			}
			if now >= m.remoteReadyAt {
				// The stall resolved while draining: resume immediately;
				// no fillers ran, so no eviction or restart penalty.
				m.resumeWithoutFillers(now)
				return
			}
			m.mode = ModeFiller
			m.modeReadyAt = now + MorphInLat
		case m.stalledOnRemote && m.ooo.Drained(0):
			// The remote completed and committed before the drain
			// finished (short stall): resume directly.
			m.resumeWithoutFillers(now)
		case !m.stalledOnRemote && m.ooo.Drained(0):
			m.mode = ModeFiller
			m.modeReadyAt = now + MorphInLat
		}

	case ModeFiller:
		if m.masterReady(now) {
			m.resumeMaster(now)
			// The restart window counts as master cycles; the OoO engine
			// steps again from the next cycle.
			m.Stats.MasterCycles++
			m.ooo.Step(now)
			return
		}
		m.Stats.FillerCycles++
		if now >= m.modeReadyAt {
			m.filler.Step(now)
		}
	}
}

// NextEvent returns the earliest cycle >= now at which a Step could
// change observable state, per mode: the OoO engine's own events in
// master/draining modes (plus "now" whenever a mode transition would
// fire this cycle), and the master-ready time, morph-in completion, and
// filler-engine events in filler mode. Conservative: returning now is
// always legal and merely prevents a skip.
func (m *MasterCore) NextEvent(now uint64) uint64 {
	switch m.mode {
	case ModeMaster:
		// An idle-triggered morph fires the same cycle its condition
		// holds, and the condition can only become true at an OoO event
		// (commit draining the ROB) or a stream arrival — both priced
		// by the engine's NextEvent.
		if m.signaler != nil && m.ooo.Drained(0) {
			if !m.signaler.HasWork(now) {
				return now
			}
			// Drained with work pending: Step polls the signaler every
			// cycle (the idle-morph check), and each poll admits — and
			// emits — due arrivals. The wake must therefore price the
			// next arrival itself, not just the engine's events: inside
			// a restart window the engine is fetch-ineligible and its
			// NextEvent never consults the stream, yet the per-cycle
			// polls still admit arrivals the moment they land.
			ev := m.ooo.NextEvent(now)
			sig, ok := m.signaler.(isa.Eventer)
			if !ok {
				return now // cannot bound the poll: check every cycle
			}
			if w := sig.NextWorkAt(now); w < ev {
				ev = w
			}
			return ev
		}
		return m.ooo.NextEvent(now)

	case ModeDraining:
		// Drain-complete checks run every cycle; once they hold the
		// transition fires immediately.
		if m.ooo.DrainedToRemote(0) || m.ooo.Drained(0) {
			return now
		}
		return m.ooo.NextEvent(now)

	default: // ModeFiller
		var ev uint64 = cpu.NoEvent
		// Master-thread wake-up.
		if m.stalledOnRemote {
			if m.remoteReadyAt <= now {
				return now
			}
			ev = m.remoteReadyAt
		} else if sig, ok := m.signaler.(isa.Eventer); ok {
			w := sig.NextWorkAt(now)
			if w <= now {
				return now
			}
			if w < ev {
				ev = w
			}
		} else {
			return now // cannot bound HasWork: check every cycle
		}
		// Filler side: parked until the morph-in completes, then the
		// engine's own events.
		if now < m.modeReadyAt {
			if m.modeReadyAt < ev {
				ev = m.modeReadyAt
			}
		} else if fe := m.filler.NextEvent(now); fe < ev {
			ev = fe
		}
		return ev
	}
}

// SkipCycles bulk-charges a quiescent span [now, now+n) exactly as n
// per-cycle Steps would: the mode-cycle counter, plus the active
// engine's own per-cycle state. The caller must have established
// now+n <= NextEvent(now). In filler mode the OoO engine is not stepped
// (it holds no cycle charges), and the filler engine is charged only
// once its morph-in latency has elapsed.
func (m *MasterCore) SkipCycles(now, n uint64) {
	m.now = now + n
	switch m.mode {
	case ModeMaster:
		m.Stats.MasterCycles += n
		m.ooo.SkipCycles(now, n)
	case ModeDraining:
		m.Stats.DrainCycles += n
		m.ooo.SkipCycles(now, n)
	default: // ModeFiller
		m.Stats.FillerCycles += n
		if now >= m.modeReadyAt {
			m.filler.SkipCycles(now, n)
		}
		// now < modeReadyAt implies the whole span predates the
		// morph-in completion (NextEvent capped it), so the filler
		// engine was never stepped and takes no charges.
	}
}

// resumeWithoutFillers returns to master mode from a drain whose stall
// resolved before any filler-thread ran: master state is fully intact.
func (m *MasterCore) resumeWithoutFillers(now uint64) {
	m.ooo.ResumeFetch(0, now)
	if m.stalledOnRemote {
		// Controller-managed remote: charge the cycles the morph machinery
		// held the master-thread (the engine charged nothing at issue).
		m.ooo.AddRemoteStall(0, now-m.morphStart)
	}
	m.stalledOnRemote = false
	m.mode = ModeMaster
	if m.Telemetry != nil {
		m.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMasterRestart,
			Src: m.TelemetrySrc, A: 0, B: now - m.morphStart})
	}
}

// resumeMaster evicts filler-threads and restarts the master-thread.
// Pending filler instructions are squashed immediately; filler register
// state spills through the L0 (Duplexity) or via microcode (MorphCore),
// which is charged as the design's restart latency before fetch resumes.
func (m *MasterCore) resumeMaster(now uint64) {
	m.filler.EvictAll(now)
	m.Stats.RestartStalls += m.restartLat
	m.ooo.ResumeFetch(0, now+m.restartLat)
	if m.stalledOnRemote {
		// Controller-managed remote: charge the parked window (the restart
		// penalty itself is tracked separately in Stats.RestartStalls).
		m.ooo.AddRemoteStall(0, now-m.morphStart)
	}
	m.stalledOnRemote = false
	m.mode = ModeMaster
	if m.Telemetry != nil {
		m.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMasterRestart,
			Src: m.TelemetrySrc, A: m.restartLat, B: now - m.morphStart})
	}
}

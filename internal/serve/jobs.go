package serve

import (
	"context"
	"encoding/json"
	"errors"

	"duplexity/internal/expt"
	"duplexity/internal/jobstore"
	"duplexity/internal/telemetry"
)

// CellLine is one streamed result line of an ephemeral campaign job —
// the NDJSON shape the /v1/campaigns API has always used, now owned by
// the jobstore package.
type CellLine = jobstore.CellLine

// JobStatus is the API-facing summary of one job (campaign or
// multi-tenant), shared with the jobstore package.
type JobStatus = jobstore.JobStatus

// runJobCell is the job manager's ExecFunc: it pushes one dispatched
// cell through the server's normal admission → coalesce → pool path
// with backpressure. Drain and shutdown outcomes are wrapped with
// MarkCancelled so the manager treats the cell as interrupted-not-
// failed: ephemeral jobs account it cancelled, durable jobs leave it
// pending for the next boot's resume.
func (s *Server) runJobCell(d jobstore.Dispatched) (expt.ServedResult, error) {
	res, _, err := s.execCellOpts(context.Background(), d.Cell, execOpts{
		block:    true,
		tc:       telemetry.TraceContext{Campaign: d.JobID},
		deadline: d.Deadline,
		queuedAt: d.Queued,
	})
	if err != nil && (errors.Is(err, errDraining) || errors.Is(err, context.Canceled)) {
		err = jobstore.MarkCancelled(err)
	}
	return res, err
}

// lookupCell is the job manager's LookupFunc: a read-only probe of the
// campaign cache for a finished cell's raw result bytes, used to
// rematerialize resumed durable jobs without re-simulating anything.
func (s *Server) lookupCell(cs expt.CellSpec) (json.RawMessage, bool) {
	eng := s.suite.Engine()
	if eng == nil {
		return nil, false
	}
	key, err := s.suite.ServedKey(cs)
	if err != nil {
		return nil, false
	}
	ent, ok := eng.Lookup(key)
	if !ok {
		return nil, false
	}
	return ent.Result, true
}

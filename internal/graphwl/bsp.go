package graphwl

import (
	"fmt"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

// Kernel selects the BSP computation.
type Kernel int

// Supported kernels.
const (
	KernelPageRank Kernel = iota
	KernelSSSP
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	if k == KernelSSSP {
		return "sssp"
	}
	return "pagerank"
}

// Simulated data-structure base addresses (shared across workers: the
// filler threads cooperate on one job through disaggregated memory).
const (
	rankBase    = 0x3_0000_0000_0000
	nextBase    = 0x3_1000_0000_0000
	contribBase = 0x3_2000_0000_0000
	distBase    = 0x3_3000_0000_0000
	barrierAddr = 0x3_4000_0000_0000
)

// JobConfig configures a BSP job.
type JobConfig struct {
	Graph   *Graph
	Kernel  Kernel
	Workers int
	// Damping is PageRank's damping factor (default 0.85).
	Damping float64
	// Source is SSSP's source vertex.
	Source int
	// RemoteLatNs is the RDMA read latency (default exponential, 1µs).
	RemoteLatNs stats.Distribution
	// RemoteBatch is the number of remote cache lines aggregated into one
	// queue-pair read (message batching); it controls the stall-to-
	// compute ratio. Default 64, which lands near the paper profile of ~1µs stall per 1-2µs of compute.
	RemoteBatch int
	// ItersPerRun is the number of supersteps before the kernel restarts
	// (keeps streams infinite). Default 10.
	ItersPerRun int
	Seed        uint64
}

func (c *JobConfig) withDefaults() JobConfig {
	out := *c
	if out.Damping == 0 {
		out.Damping = 0.85
	}
	if out.RemoteLatNs == nil {
		out.RemoteLatNs = stats.Exponential{MeanVal: 1000}
	}
	if out.RemoteBatch == 0 {
		out.RemoteBatch = 64
	}
	if out.ItersPerRun == 0 {
		out.ItersPerRun = 10
	}
	return out
}

// Job is a shared BSP computation driven by per-worker instruction
// streams. The simulation is single-threaded, so shared state needs no
// locking; the barrier is a sense-reversing counter that stragglers spin
// on, exactly as the emitted instruction stream does.
type Job struct {
	cfg    JobConfig
	g      *Graph
	outDeg []int32

	rank, next []float64
	contrib    []float64
	dist, nd   []int32

	superstep  int
	arrived    int
	midArrived int
	midGen     int
	changed    bool

	// Runs counts completed kernel executions (ItersPerRun supersteps).
	Runs uint64
	// RemoteReads counts issued RDMA reads across all workers.
	RemoteReads uint64

	workers []*bspWorker
}

// NewJob validates cfg and builds the job with its worker streams.
func NewJob(cfg JobConfig) (*Job, error) {
	c := cfg.withDefaults()
	if c.Graph == nil {
		return nil, fmt.Errorf("graphwl: job needs a graph")
	}
	if c.Workers < 1 {
		return nil, fmt.Errorf("graphwl: need at least one worker")
	}
	if c.Source < 0 || c.Source >= c.Graph.N {
		return nil, fmt.Errorf("graphwl: source %d outside graph", c.Source)
	}
	j := &Job{cfg: c, g: c.Graph, outDeg: c.Graph.OutDegrees()}
	j.rank = make([]float64, j.g.N)
	j.next = make([]float64, j.g.N)
	j.contrib = make([]float64, j.g.N)
	j.dist = make([]int32, j.g.N)
	j.nd = make([]int32, j.g.N)
	j.initState()
	for i := 0; i < c.Workers; i++ {
		j.workers = append(j.workers, newBSPWorker(j, i))
	}
	return j, nil
}

// MustNewJob panics on configuration errors.
func MustNewJob(cfg JobConfig) *Job {
	j, err := NewJob(cfg)
	if err != nil {
		panic(err)
	}
	return j
}

func (j *Job) initState() {
	const inf = int32(1 << 30)
	for i := range j.rank {
		j.rank[i] = 1.0 / float64(j.g.N)
		j.next[i] = 0
		j.dist[i] = inf
		j.nd[i] = inf
	}
	j.dist[j.cfg.Source] = 0
	j.nd[j.cfg.Source] = 0
}

// Superstep returns the current superstep index within the current run.
func (j *Job) Superstep() int { return j.superstep }

// Rank returns the current PageRank vector (valid between supersteps).
func (j *Job) Rank() []float64 { return j.rank }

// Dist returns the current SSSP distance vector.
func (j *Job) Dist() []int32 { return j.dist }

// Worker returns worker i's instruction stream.
func (j *Job) Worker(i int) isa.Stream { return j.workers[i] }

// Streams returns all worker streams.
func (j *Job) Streams() []isa.Stream {
	out := make([]isa.Stream, len(j.workers))
	for i, w := range j.workers {
		out[i] = w
	}
	return out
}

// advance is executed by the last worker to reach the barrier.
func (j *Job) advance() {
	j.superstep++
	j.arrived = 0
	switch j.cfg.Kernel {
	case KernelPageRank:
		j.rank, j.next = j.next, j.rank
	case KernelSSSP:
		copy(j.dist, j.nd)
	}
	if j.superstep >= j.cfg.ItersPerRun {
		j.Runs++
		j.superstep = 0
		j.initState()
	}
	j.changed = false
}

// bspWorker emits the instruction stream of one BSP worker while actually
// performing its share of the computation. Vertices are partitioned
// round-robin (owner = v mod workers); remote vertex data is fetched with
// batched single-cache-line RDMA reads and cached for the superstep.
type bspWorker struct {
	job *Job
	id  int
	rng *stats.RNG

	// q is consumed from qHead; produce only ever appends to a fully
	// drained queue, so the backing array is reused run after run
	// (popping with q = q[1:] would shed capacity and reallocate).
	q        []isa.Instr
	qHead    int
	codeBase uint64
	pcIdx    uint64

	localStep  int
	phase      int // 0 contrib (PR only), 1 mid-barrier, 2 gather, 3 end-barrier
	vCursor    int
	inBarrier  bool
	myMidGen   int
	remoteSeen map[int32]struct{}
	missCount  int

	// Stats
	SpinRounds uint64
}

func newBSPWorker(j *Job, id int) *bspWorker {
	w := &bspWorker{
		job:        j,
		id:         id,
		rng:        stats.NewRNG(j.cfg.Seed ^ (uint64(id+1) * 0x9e37)),
		codeBase:   0x500000 + uint64(id)*0x11040,
		remoteSeen: make(map[int32]struct{}),
		vCursor:    id,
	}
	if j.cfg.Kernel == KernelSSSP {
		w.phase = 2
	}
	return w
}

// emission helpers ---------------------------------------------------------

func (w *bspWorker) pc() uint64 {
	// A 2KB loop region per worker: realistic I-cache/predictor behaviour.
	p := w.codeBase + (w.pcIdx%512)*4
	w.pcIdx++
	return p
}

func (w *bspWorker) alu() {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpIntAlu,
		Dst: isa.RegID(1 + w.pcIdx%30), Src1: isa.RegID(1 + (w.pcIdx+7)%30)})
}

func (w *bspWorker) fp() {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpFPAlu,
		Dst: isa.RegID(1 + w.pcIdx%30), Src1: isa.RegID(1 + (w.pcIdx+3)%30)})
}

func (w *bspWorker) load(addr uint64) {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpLoad, Addr: addr,
		Dst: isa.RegID(1 + w.pcIdx%30)})
}

func (w *bspWorker) store(addr uint64) {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpStore, Addr: addr,
		Src1: isa.RegID(1 + w.pcIdx%30)})
}

func (w *bspWorker) branch(taken bool) {
	in := isa.Instr{PC: w.pc(), Op: isa.OpBranch, Taken: taken,
		Src1: isa.RegID(1 + w.pcIdx%30)}
	if taken {
		in.Target = w.codeBase
		w.pcIdx = 0
	}
	w.q = append(w.q, in)
}

func (w *bspWorker) remote(addr uint64) {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpRemote, Addr: addr,
		Dst:      isa.RegID(1 + w.pcIdx%30),
		RemoteNs: w.job.cfg.RemoteLatNs.Sample(w.rng)})
	w.job.RemoteReads++
}

// park emits an mwait-style wait for a barrier poll interval (300-700ns,
// jittered to avoid lock-step wake-ups). Parked contexts are swapped out
// by HSMT schedulers, so barrier waits do not burn issue bandwidth.
func (w *bspWorker) park() {
	w.q = append(w.q, isa.Instr{PC: w.pc(), Op: isa.OpPark,
		RemoteNs: 300 + 400*w.rng.Float64()})
}

// touch handles an access to vertex u's shared data: local load for owned
// vertices, batched RDMA for remote lines not yet cached this superstep.
func (w *bspWorker) touch(base uint64, u int32) {
	addr := base + uint64(u)*8
	if int(u)%w.job.cfg.Workers == w.id {
		w.load(addr)
		return
	}
	line := int32(addr >> 6)
	if _, ok := w.remoteSeen[line]; ok {
		w.load(addr)
		return
	}
	w.remoteSeen[line] = struct{}{}
	w.missCount++
	if w.missCount%w.job.cfg.RemoteBatch == 1 || w.job.cfg.RemoteBatch == 1 {
		w.remote(addr)
	} else {
		w.load(addr)
	}
}

// Next implements isa.Stream.
func (w *bspWorker) Next(uint64) (isa.Instr, bool) {
	for w.qHead == len(w.q) {
		w.q = w.q[:0]
		w.qHead = 0
		w.produce()
	}
	in := w.q[w.qHead]
	w.qHead++
	return in, true
}

// produce advances the BSP state machine by one unit of work, appending
// its instruction trace to the queue.
func (w *bspWorker) produce() {
	j := w.job
	// New superstep?
	if w.localStep != j.superstep {
		w.localStep = j.superstep
		w.phase = 0
		if j.cfg.Kernel == KernelSSSP {
			w.phase = 2
		}
		w.vCursor = w.id
		w.inBarrier = false
		w.remoteSeen = make(map[int32]struct{})
		w.missCount = 0
	}
	switch w.phase {
	case 0: // contribution pass (PageRank)
		if w.vCursor >= j.g.N {
			w.phase = 1
			return
		}
		v := w.vCursor
		w.vCursor += j.cfg.Workers
		j.contrib[v] = j.rank[v] / float64(j.outDeg[v])
		w.load(rankBase + uint64(v)*8)
		w.fp()
		w.store(contribBase + uint64(v)*8)

	case 1: // mid-superstep barrier: all contributions published
		if !w.inBarrier {
			w.inBarrier = true
			w.myMidGen = j.midGen
			j.midArrived++
			w.store(barrierAddr)
		}
		if j.midArrived == j.cfg.Workers {
			j.midArrived = 0
			j.midGen++
		}
		if j.midGen != w.myMidGen {
			w.phase = 2
			w.vCursor = w.id
			w.inBarrier = false
			w.alu()
			return
		}
		w.SpinRounds++
		w.load(barrierAddr)
		w.park()

	case 2: // gather pass
		if w.vCursor >= j.g.N {
			w.phase = 3
			return
		}
		v := w.vCursor
		w.vCursor += j.cfg.Workers
		switch j.cfg.Kernel {
		case KernelPageRank:
			sum := 0.0
			for _, u := range j.g.Neighbors(v) {
				w.touch(contribBase, u)
				w.fp()
				sum += j.contrib[u]
			}
			j.next[v] = (1-j.cfg.Damping)/float64(j.g.N) + j.cfg.Damping*sum
			w.fp()
			w.store(nextBase + uint64(v)*8)
		case KernelSSSP:
			best := j.dist[v]
			for _, u := range j.g.Neighbors(v) {
				w.touch(distBase, u)
				w.alu()
				if j.dist[u]+1 < best {
					best = j.dist[u] + 1
				}
			}
			if best < j.nd[v] {
				j.nd[v] = best
				j.changed = true
				w.store(distBase + uint64(v)*8)
			}
		}
		w.branch(w.vCursor >= j.g.N) // loop branch, taken at shard end

	case 3: // end-of-superstep barrier
		if !w.inBarrier {
			w.inBarrier = true
			j.arrived++
			w.store(barrierAddr)
		}
		if j.arrived == j.cfg.Workers {
			// Last arriver advances the superstep.
			j.advance()
			w.alu()
			return
		}
		if w.localStep != j.superstep {
			return // someone advanced while we spun
		}
		// Check the counter, then park until the next poll.
		w.SpinRounds++
		w.load(barrierAddr)
		w.park()
	}
}

// NewFillerSet builds the paper's filler-thread configuration: half the
// workers run PageRank, half run SSSP, as two independent BSP jobs over
// the same graph. It returns the streams and the two jobs.
func NewFillerSet(g *Graph, workers int, seed uint64) ([]isa.Stream, *Job, *Job, error) {
	if workers < 2 {
		return nil, nil, nil, fmt.Errorf("graphwl: need at least two workers")
	}
	pr, err := NewJob(JobConfig{Graph: g, Kernel: KernelPageRank, Workers: workers / 2, Seed: seed})
	if err != nil {
		return nil, nil, nil, err
	}
	ss, err := NewJob(JobConfig{Graph: g, Kernel: KernelSSSP, Workers: workers - workers/2, Seed: seed + 1})
	if err != nil {
		return nil, nil, nil, err
	}
	streams := append(pr.Streams(), ss.Streams()...)
	return streams, pr, ss, nil
}

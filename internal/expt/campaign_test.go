package expt

import (
	"encoding/json"
	"os"
	"testing"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/workload"
)

func writeFile(path string) error { return os.WriteFile(path, []byte("x"), 0o644) }

// subsetTasks picks a handful of real matrix cells spread across
// designs and workloads, cheap enough to simulate repeatedly (and under
// -race) where the full 105-cell matrix is not.
func subsetTasks(s *Suite) []campaign.Task[cell] {
	all := s.matrixTasks()
	idx := []int{0, 31, 64, 104} // Baseline, SMT+, MorphCore+, Duplexity cells
	tasks := make([]campaign.Task[cell], 0, len(idx))
	for _, i := range idx {
		tasks = append(tasks, all[i])
	}
	return tasks
}

// TestCampaignCellsWorkersDeterminism is the simulation half of the
// engine's determinism guarantee: real cycle-level cells produce
// byte-identical results at any worker count, because every seed
// derives from the cell's own key and each Dyad is goroutine-confined.
func TestCampaignCellsWorkersDeterminism(t *testing.T) {
	run := func(workers int) []byte {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: workers})
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		cells, err := campaign.Run(s.eng, subsetTasks(s))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	seq := run(1)
	par := run(8)
	if string(seq) != string(par) {
		t.Fatalf("workers=8 cells differ from workers=1:\nseq %s\npar %s", seq, par)
	}
}

// TestCampaignCellsCacheRoundTrip: a cold run simulates, a warm run
// decodes the same bytes from the cache and simulates nothing.
func TestCampaignCellsCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run := func() ([]byte, campaign.Summary) {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 4, CacheDir: dir})
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		cells, err := campaign.Run(s.eng, subsetTasks(s))
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(cells)
		if err != nil {
			t.Fatal(err)
		}
		return b, s.CampaignStats()
	}
	cold, cs := run()
	if cs.Misses != 4 || cs.Hits != 0 {
		t.Fatalf("cold stats %+v", cs)
	}
	warm, ws := run()
	if ws.Misses != 0 || ws.Hits != 4 || ws.PriorCells != 4 {
		t.Fatalf("warm stats %+v", ws)
	}
	if string(cold) != string(warm) {
		t.Fatalf("warm cells not byte-identical:\ncold %s\nwarm %s", cold, warm)
	}
}

// TestCellKeySensitivity: the cache digest must change when any cell
// input changes — fidelity, seed, load, design, or the workload's
// definition (not just its name).
func TestCellKeySensitivity(t *testing.T) {
	s := NewSuite(Options{Scale: 0.05, Seed: 1})
	spec := workload.McRouter()
	base := s.cellKey("matrix", core.DesignDuplexity, spec, 0.5, "").Digest()

	if d := s.cellKey("slowdown", core.DesignDuplexity, spec, 0.5, "").Digest(); d == base {
		t.Error("kind change did not change digest")
	}
	if d := s.cellKey("matrix", core.DesignSMT, spec, 0.5, "").Digest(); d == base {
		t.Error("design change did not change digest")
	}
	if d := s.cellKey("matrix", core.DesignDuplexity, spec, 0.7, "").Digest(); d == base {
		t.Error("load change did not change digest")
	}
	s2 := NewSuite(Options{Scale: 0.1, Seed: 1})
	if d := s2.cellKey("matrix", core.DesignDuplexity, spec, 0.5, "").Digest(); d == base {
		t.Error("scale change did not change digest")
	}
	s3 := NewSuite(Options{Scale: 0.05, Seed: 2})
	if d := s3.cellKey("matrix", core.DesignDuplexity, spec, 0.5, "").Digest(); d == base {
		t.Error("seed change did not change digest")
	}
	edited := workload.McRouter()
	edited.Phases = edited.Phases[:1] // same name, different definition
	if d := s.cellKey("matrix", core.DesignDuplexity, edited, 0.5, "").Digest(); d == base {
		t.Error("workload-spec edit did not change digest")
	}
}

// TestFig5aWarmCacheByteIdentical renders a full Figure 5(a) from a
// cold cache and again from the warm cache: identical tables, zero
// cells re-simulated. (~1-2 minutes of cycle-level simulation.)
func TestFig5aWarmCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign")
	}
	if raceEnabled {
		t.Skip("full campaign too slow under -race")
	}
	dir := t.TempDir()

	s1 := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 8, CacheDir: dir})
	t1, err := s1.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	cs := s1.CampaignStats()
	if cs.Misses != 105 || cs.Hits != 0 {
		t.Fatalf("cold stats %+v", cs)
	}

	s2 := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 8, CacheDir: dir})
	t2, err := s2.Fig5a()
	if err != nil {
		t.Fatal(err)
	}
	ws := s2.CampaignStats()
	if ws.Misses != 0 || ws.Hits != 105 {
		t.Fatalf("warm stats %+v: cells were re-simulated", ws)
	}
	if t1.String() != t2.String() {
		t.Fatalf("warm table differs:\n%s\n%s", t1, t2)
	}
}

func TestSuiteBadCacheDirFailsFast(t *testing.T) {
	// A cache dir that collides with an existing file cannot be created.
	dir := t.TempDir()
	file := dir + "/occupied"
	if err := writeFile(file); err != nil {
		t.Fatal(err)
	}
	s := NewSuite(Options{Scale: 0.05, CacheDir: file})
	if s.Err() == nil {
		t.Fatal("NewSuite with uncreatable cache dir: Err() == nil")
	}
	if _, err := s.Matrix(); err == nil {
		t.Fatal("Matrix with broken engine succeeded")
	}
}

package campaign

import "sync"

// CellTiming is the per-cell accounting row surfaced in run manifests:
// which cell, whether the cache answered it, and the simulation wall
// time (0 for cache hits).
type CellTiming struct {
	Kind     string  `json:"kind"`
	Design   string  `json:"design"`
	Workload string  `json:"workload"`
	Load     float64 `json:"load"`
	Cached   bool    `json:"cached"`
	// Remote marks a cell resolved by a fleet worker rather than this
	// process (Cached then reports the worker's cache, WallSeconds the
	// worker's simulation time).
	Remote      bool    `json:"remote,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Summary is a snapshot of an engine's campaign accounting, shaped for
// direct embedding in a telemetry manifest.
type Summary struct {
	// Workers is the configured pool width.
	Workers int `json:"workers"`
	// PriorCells counts cache entries that existed before this engine
	// opened the cache (what a resumed run inherited).
	PriorCells int `json:"prior_cells,omitempty"`
	// Cells = Hits + Misses: completions in this engine's lifetime.
	Cells  int `json:"cells"`
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	// Remote counts cells resolved by fleet workers (a subset of Cells).
	Remote int `json:"remote,omitempty"`
	Errors int `json:"errors,omitempty"`
	// Per-layer counters for two-phase cells. Micro-sim resolutions are
	// accounted here only — never in Cells/Hits/Misses, which still
	// count whole cells — so a two-phase campaign's legacy totals stay
	// comparable with single-phase runs. A queueing hit/miss is recorded
	// alongside the legacy hit/miss for every two-phase cell; legacy
	// single-phase cells touch neither layer.
	MicrosimHits   int `json:"microsim_hits,omitempty"`
	MicrosimMisses int `json:"microsim_misses,omitempty"`
	QueueingHits   int `json:"queueing_hits,omitempty"`
	QueueingMisses int `json:"queueing_misses,omitempty"`
	// Incomplete counts admitted cells journaled as cancelled or
	// panicked by a serving layer (never part of Cells).
	Incomplete int `json:"incomplete,omitempty"`
	// HitRate is Hits/Cells (0 when no cells completed).
	HitRate float64 `json:"hit_rate"`
	// SimWallSeconds sums per-cell simulation wall time. With several
	// workers this exceeds elapsed wall time — that surplus is the
	// parallelism win.
	SimWallSeconds float64 `json:"sim_wall_seconds"`
	// Timings lists every completed cell in completion order.
	Timings []CellTiming `json:"timings,omitempty"`
}

// Stats accumulates campaign accounting under a mutex; cells finish on
// many goroutines.
type Stats struct {
	mu         sync.Mutex
	workers    int
	prior      int
	seq        int
	hits       int
	misses     int
	remote     int
	errors     int
	incomplete int
	microHits  int
	microMiss  int
	queueHits  int
	queueMiss  int
	simWall    float64
	timings    []CellTiming
}

func newStats() *Stats { return &Stats{} }

func (s *Stats) setPrior(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prior = n
}

// record logs one completed cell and returns its completion sequence
// number.
func (s *Stats) record(t CellTiming) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.Cached {
		s.hits++
	} else {
		s.misses++
	}
	if t.Remote {
		s.remote++
	}
	s.simWall += t.WallSeconds
	s.timings = append(s.timings, t)
	s.seq++
	return s.seq
}

// recordIncomplete logs a cancelled or panicked cell and returns its
// journal sequence number.
func (s *Stats) recordIncomplete() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.incomplete++
	s.seq++
	return s.seq
}

// recordMicro logs one phase-1 micro-sim resolution and returns its
// journal sequence number. Micro-sim wall time is real compute and
// counts toward SimWallSeconds.
func (s *Stats) recordMicro(hit bool, wall float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.microHits++
	} else {
		s.microMiss++
	}
	s.simWall += wall
	s.seq++
	return s.seq
}

// recordQueueing logs the phase-2 probe outcome of one two-phase cell
// (recorded alongside the legacy hit/miss, which record() handles).
func (s *Stats) recordQueueing(hit bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.queueHits++
	} else {
		s.queueMiss++
	}
}

func (s *Stats) recordError() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.errors++
}

func (s *Stats) summary() Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := Summary{
		PriorCells:     s.prior,
		Cells:          s.hits + s.misses,
		Hits:           s.hits,
		Misses:         s.misses,
		Remote:         s.remote,
		Errors:         s.errors,
		Incomplete:     s.incomplete,
		MicrosimHits:   s.microHits,
		MicrosimMisses: s.microMiss,
		QueueingHits:   s.queueHits,
		QueueingMisses: s.queueMiss,
		SimWallSeconds: s.simWall,
		Timings:        append([]CellTiming(nil), s.timings...),
	}
	if sum.Cells > 0 {
		sum.HitRate = float64(sum.Hits) / float64(sum.Cells)
	}
	return sum
}

package stats

import (
	"math"
	"sort"
	"testing"
)

func TestLatencyRecorderBasics(t *testing.T) {
	l := NewLatencyRecorder(16)
	if l.Count() != 0 {
		t.Fatal("fresh recorder not empty")
	}
	if !math.IsNaN(l.Mean()) {
		t.Fatal("mean of empty recorder should be NaN")
	}
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	if l.Count() != 100 {
		t.Fatalf("count = %d", l.Count())
	}
	if math.Abs(l.Mean()-50.5) > 1e-9 {
		t.Fatalf("mean = %v", l.Mean())
	}
	if p := l.P99(); math.Abs(p-99.01) > 0.5 {
		t.Fatalf("p99 = %v, want ~99", p)
	}
	l.Reset()
	if l.Count() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestLatencyRecorderInterleavedSort(t *testing.T) {
	l := NewLatencyRecorder(4)
	l.Add(5)
	l.Add(1)
	if got := l.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	l.Add(0.5) // must re-sort after adding
	if got := l.Quantile(0); got != 0.5 {
		t.Fatalf("q0 after add = %v", got)
	}
}

// TestLatencyRecorderMergeMatchesFullSort interleaves adds with
// quantile queries (the convergence-check access pattern) and verifies
// the incrementally merged recorder agrees with a full sort of the same
// observations at every checkpoint.
func TestLatencyRecorderMergeMatchesFullSort(t *testing.T) {
	rng := NewRNG(7)
	l := NewLatencyRecorder(64)
	var ref []float64
	for round := 0; round < 50; round++ {
		// Uneven batch sizes exercise empty, tiny, and large tails.
		n := int(rng.Uint64() % 300)
		for i := 0; i < n; i++ {
			x := rng.ExpFloat64() * 100
			l.Add(x)
			ref = append(ref, x)
		}
		sorted := append([]float64(nil), ref...)
		sort.Float64s(sorted)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got, want := l.Quantile(q), Quantile(sorted, q); got != want {
				t.Fatalf("round %d: q%.2f = %v, want %v", round, q, got, want)
			}
		}
		if len(ref) > 0 {
			est, lo, hi := l.QuantileCI(0.99, 1.96)
			if math.IsNaN(est) || lo > est || hi < est {
				t.Fatalf("round %d: CI %v [%v, %v] inconsistent", round, est, lo, hi)
			}
		}
		got := l.Samples()
		if len(got) != len(sorted) {
			t.Fatalf("round %d: Samples len %d, want %d", round, len(got), len(sorted))
		}
		for i := range got {
			if got[i] != sorted[i] {
				t.Fatalf("round %d: Samples[%d] = %v, want %v", round, i, got[i], sorted[i])
			}
		}
	}
}

func TestQuantileCI(t *testing.T) {
	l := NewLatencyRecorder(100000)
	r := NewRNG(33)
	e := Exponential{MeanVal: 1}
	for i := 0; i < 100000; i++ {
		l.Add(e.Sample(r))
	}
	est, lo, hi := l.QuantileCI(0.99, 1.96)
	// Analytic p99 of Exp(1) is -ln(0.01) = 4.605.
	want := -math.Log(0.01)
	if math.Abs(est-want)/want > 0.05 {
		t.Fatalf("p99 = %v, want ~%v", est, want)
	}
	if !(lo <= est && est <= hi) {
		t.Fatalf("CI [%v,%v] does not bracket estimate %v", lo, hi, est)
	}
	if !l.RelativeQuantileErrorBelow(0.99, 1.96, 0.05) {
		t.Fatal("100k exponential samples should satisfy BigHouse 5% criterion")
	}
}

func TestQuantileCIEmpty(t *testing.T) {
	l := NewLatencyRecorder(0)
	est, lo, hi := l.QuantileCI(0.99, 1.96)
	if !math.IsNaN(est) || !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty recorder should return NaN CI")
	}
	if l.RelativeQuantileErrorBelow(0.99, 1.96, 0.05) {
		t.Fatal("empty recorder cannot satisfy error criterion")
	}
}

func TestBinomialPMFSanity(t *testing.T) {
	// Sum over all k must be 1.
	for _, n := range []int{1, 8, 32, 100} {
		for _, p := range []float64{0.1, 0.5, 0.9} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += BinomialPMF(n, p, k)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("PMF(n=%d,p=%v) sums to %v", n, p, sum)
			}
		}
	}
	// Known value: Binomial(4, 0.5) at k=2 is 6/16.
	if got := BinomialPMF(4, 0.5, 2); math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("PMF(4,0.5,2) = %v", got)
	}
	if BinomialPMF(4, 0.5, -1) != 0 || BinomialPMF(4, 0.5, 5) != 0 {
		t.Fatal("out-of-range k should have zero mass")
	}
	if BinomialPMF(4, 0, 0) != 1 || BinomialPMF(4, 1, 4) != 1 {
		t.Fatal("degenerate p should concentrate mass")
	}
}

func TestBinomialTail(t *testing.T) {
	if got := BinomialTail(10, 0.5, 0); got != 1 {
		t.Fatalf("tail k=0 = %v", got)
	}
	if got := BinomialTail(10, 0.5, 11); got != 0 {
		t.Fatalf("tail k>n = %v", got)
	}
	// P(X>=5) for Binomial(10,0.5) = 0.623046875.
	if got := BinomialTail(10, 0.5, 5); math.Abs(got-0.623046875) > 1e-9 {
		t.Fatalf("tail = %v", got)
	}
}

// Property check against Monte-Carlo: the paper's Fig 2(b) numbers.
// With threads stalled 10% of the time, 11 virtual contexts keep 8
// physical contexts busy ~90% of the time.
func TestBinomialTailPaperNumbers(t *testing.T) {
	if got := BinomialTail(11, 0.9, 8); got < 0.88 || got > 0.99 {
		t.Fatalf("P(>=8 ready | n=11, p_ready=0.9) = %v, want ~0.9+", got)
	}
	// With 50% stall probability, 21 virtual contexts are needed.
	if got := BinomialTail(21, 0.5, 8); got < 0.85 {
		t.Fatalf("P(>=8 ready | n=21, p_ready=0.5) = %v, want >=0.85", got)
	}
	if got := BinomialTail(16, 0.5, 8); got > 0.75 {
		t.Fatalf("P(>=8 ready | n=16, p_ready=0.5) = %v, should be clearly below target", got)
	}
}

func TestBinomialTailMonteCarlo(t *testing.T) {
	r := NewRNG(77)
	const n, trials = 21, 200000
	p := 0.5
	hits := 0
	for i := 0; i < trials; i++ {
		ready := 0
		for j := 0; j < n; j++ {
			if r.Bernoulli(p) {
				ready++
			}
		}
		if ready >= 8 {
			hits++
		}
	}
	mc := float64(hits) / trials
	an := BinomialTail(n, p, 8)
	if math.Abs(mc-an) > 0.01 {
		t.Fatalf("Monte-Carlo %v vs analytic %v", mc, an)
	}
}

package cpu

import (
	"fmt"

	"duplexity/internal/bpred"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/telemetry"
)

// RemoteAction tells the engine how an issued remote operation will be
// handled.
type RemoteAction int

const (
	// RemoteBlock leaves the thread resident and blocked until the
	// remote operation completes (Baseline/SMT behaviour).
	RemoteBlock RemoteAction = iota
	// RemoteHandled means an external scheduler (HSMT pool or morph
	// controller) takes over: the engine takes no further action for the
	// slot, and the scheduler will typically swap the context out.
	RemoteHandled
)

// InOSlot is one physical context of the in-order SMT datapath.
type InOSlot struct {
	stream isa.Stream
	active bool
	idx    int // position in InOCore.slots

	// buf is consumed from bufHead (ring-head index: re-slicing with
	// [1:] would shed backing-array capacity on every issue and force an
	// allocation every few instructions).
	buf        []isa.Instr
	bufHead    int
	regReadyAt [isa.NumArchRegs]uint64
	// headWakeAt caches the cycle at which the head instruction's sources
	// become ready; the issue loop skips the slot until then. Reset to 0
	// whenever the head changes.
	headWakeAt    uint64
	fetchResumeAt uint64
	// fetchBlocked latches fetch off between a mispredicted branch's
	// fetch and its issue (resolution); the redirect penalty is charged
	// when the branch issues.
	fetchBlocked bool
	// unavailableUntil models context swap-in latency.
	unavailableUntil uint64
	// blockedUntil is the completion time of an engine-managed remote op.
	blockedUntil uint64
	lastLine     uint64

	Stats ThreadStats
}

// Active reports whether a context is bound to the slot.
func (s *InOSlot) Active() bool { return s.active }

// bufLen returns the fetch-buffer occupancy.
func (s *InOSlot) bufLen() int { return len(s.buf) - s.bufHead }

// popBuf removes and returns the oldest buffered instruction.
func (s *InOSlot) popBuf() isa.Instr {
	in := s.buf[s.bufHead]
	s.bufHead++
	if s.bufHead == len(s.buf) {
		s.buf = s.buf[:0]
		s.bufHead = 0
	}
	return in
}

// pushBuf appends to the fetch buffer, compacting the consumed head
// region instead of growing the backing array.
func (s *InOSlot) pushBuf(in isa.Instr) {
	if len(s.buf) == cap(s.buf) && s.bufHead > 0 {
		n := copy(s.buf, s.buf[s.bufHead:])
		s.buf = s.buf[:n]
		s.bufHead = 0
	}
	s.buf = append(s.buf, in)
}

// Blocked reports whether the slot is blocked on a remote op at now.
func (s *InOSlot) Blocked(now uint64) bool { return s.blockedUntil > now }

// InOCore is the in-order SMT datapath of Table I's lender-core: 8
// physical contexts, 4-wide issue, round-robin fetch, shared gshare
// predictor and shared L1 ports. It is also the master-core's
// filler-thread engine (with dyad remote ports substituted).
type InOCore struct {
	cfg   PipelineConfig
	iport *memsys.Port
	dport *memsys.Port
	pred  *bpred.Unit

	slots   []*InOSlot
	fetchRR int
	issueRR int

	Stats CoreStats

	// OnRemote, if set, is consulted when a slot issues a remote op.
	OnRemote func(slot int, in isa.Instr, completeAt uint64) RemoteAction
	// OnRequestEnd, if set, is called when a slot issues an
	// EndOfRequest-marked instruction.
	OnRequestEnd func(slot int, now uint64)

	// Telemetry, when non-nil, receives cache-miss burst events; each
	// emission site costs one nil check when disabled.
	Telemetry telemetry.Sink
	// TelemetrySrc tags emitted events with the owning component.
	TelemetrySrc uint8
}

// NewInOCore builds an in-order SMT core with nSlots physical contexts.
func NewInOCore(cfg PipelineConfig, nSlots int, iport, dport *memsys.Port, pred *bpred.Unit) (*InOCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nSlots <= 0 {
		return nil, fmt.Errorf("cpu: need at least one InO slot")
	}
	if err := iport.Validate(); err != nil {
		return nil, err
	}
	if err := dport.Validate(); err != nil {
		return nil, err
	}
	c := &InOCore{cfg: cfg, iport: iport, dport: dport, pred: pred}
	c.slots = make([]*InOSlot, nSlots)
	for i := range c.slots {
		c.slots[i] = &InOSlot{idx: i, buf: make([]isa.Instr, 0, cfg.FetchBufEntries)}
	}
	return c, nil
}

// Config returns the core's pipeline configuration.
func (c *InOCore) Config() PipelineConfig { return c.cfg }

// Slots returns the number of physical contexts.
func (c *InOCore) Slots() int { return len(c.slots) }

// Slot returns physical context i.
func (c *InOCore) Slot(i int) *InOSlot { return c.slots[i] }

// Bind attaches a context's stream to slot i, charging swapLat cycles of
// unavailability (loading architectural registers from the run queue).
// The slot's scoreboard resets: all registers become ready at now+swapLat.
func (c *InOCore) Bind(slot int, stream isa.Stream, now, swapLat uint64) {
	s := c.slots[slot]
	s.stream = stream
	s.active = true
	s.buf = s.buf[:0]
	s.bufHead = 0
	s.unavailableUntil = now + swapLat
	s.blockedUntil = 0
	s.fetchResumeAt = 0
	s.headWakeAt = 0
	s.fetchBlocked = false
	s.lastLine = ^uint64(0)
	for r := range s.regReadyAt {
		s.regReadyAt[r] = now + swapLat
	}
}

// Unbind detaches slot i, returning its stream and any fetched-but-not-
// issued instructions (which belong to the context and must be replayed
// when it is next bound — streams are consuming generators). Statistics
// remain with the slot (per-physical-context, matching hardware counters).
func (c *InOCore) Unbind(slot int) (isa.Stream, []isa.Instr) {
	return c.UnbindInto(slot, nil)
}

// UnbindInto is Unbind with a caller-supplied destination for the
// pending instructions (typically the context's previous Pending slice,
// truncated), so steady-state context churn does not allocate.
func (c *InOCore) UnbindInto(slot int, dst []isa.Instr) (isa.Stream, []isa.Instr) {
	s := c.slots[slot]
	st := s.stream
	dst = append(dst, s.buf[s.bufHead:]...)
	s.stream = nil
	s.active = false
	s.buf = s.buf[:0]
	s.bufHead = 0
	return st, dst
}

// Preload seeds slot i's fetch buffer with a previously unbound context's
// pending instructions. Call immediately after Bind.
func (c *InOCore) Preload(slot int, instrs []isa.Instr) {
	s := c.slots[slot]
	s.buf = s.buf[:0]
	s.bufHead = 0
	s.buf = append(s.buf, instrs...)
	s.headWakeAt = 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Step simulates one cycle at global time now. Phases: issue first (using
// last cycle's buffers), then fetch — so an instruction cannot be fetched
// and issued in the same cycle.
func (c *InOCore) Step(now uint64) {
	c.Stats.Cycles++
	c.issue(now)
	c.fetch(now)
}

func (c *InOCore) issue(now uint64) {
	total := c.cfg.Width
	ldst, fp, mul, ialu := c.cfg.LdStPorts, c.cfg.FPUs, c.cfg.Muls, c.cfg.IntALUs
	n := len(c.slots)
	start := c.issueRR
	c.issueRR = (c.issueRR + 1) % n
	for k := 0; k < n && total > 0; k++ {
		s := c.slots[(start+k)%n]
		if !s.active || s.unavailableUntil > now || s.blockedUntil > now {
			continue
		}
		if s.headWakeAt > now {
			continue
		}
		for total > 0 && s.bufLen() > 0 {
			in := s.buf[s.bufHead]
			if wake := max64(s.regReadyAt[in.Src1], s.regReadyAt[in.Src2]); wake > now {
				s.headWakeAt = wake
				break // in-order: head not ready blocks the slot
			}
			// Structural hazards (OpPark needs no functional unit).
			switch in.Op {
			case isa.OpLoad, isa.OpStore, isa.OpRemote:
				if ldst == 0 {
					goto nextSlot
				}
			case isa.OpPark:
			case isa.OpFPAlu:
				if fp == 0 {
					goto nextSlot
				}
			case isa.OpIntMul:
				if mul == 0 {
					goto nextSlot
				}
			default:
				if ialu == 0 {
					goto nextSlot
				}
			}
			s.popBuf()
			s.headWakeAt = 0
			total--
			c.Stats.IssueSlotsUsed++
			switch in.Op {
			case isa.OpLoad:
				ldst--
				lat := uint64(c.dport.Access(now, in.Addr, false))
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + lat
				}
				if c.Telemetry != nil && lat >= memsys.LLCHitLat {
					c.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvCacheMiss,
						Src: c.TelemetrySrc, A: lat, B: uint64(c.slotIndex(s))})
				}
			case isa.OpStore:
				ldst--
				c.dport.Access(now, in.Addr, true)
			case isa.OpRemote, isa.OpPark:
				if in.Op == isa.OpRemote {
					ldst--
					s.Stats.Remotes++
				}
				completeAt := now + CyclesFromNs(in.RemoteNs, c.cfg.FreqGHz)
				action := RemoteBlock
				if c.OnRemote != nil {
					action = c.OnRemote(c.slotIndex(s), in, completeAt)
				}
				if action == RemoteBlock {
					s.blockedUntil = completeAt
					if in.Op == isa.OpRemote {
						// Engine-managed remote: the slot blocks in place
						// for the full device latency.
						s.Stats.RemoteStallCycles += completeAt - now
					}
					if in.Dst != isa.RegNone {
						s.regReadyAt[in.Dst] = completeAt
					}
				}
			case isa.OpFPAlu:
				fp--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatFPAlu
				}
			case isa.OpIntMul:
				mul--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatIntMul
				}
			default:
				ialu--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatIntAlu
				}
			}
			s.Stats.Retired++
			c.Stats.TotalRetired++
			if in.EndOfRequest {
				s.Stats.RequestsCompleted++
				if c.OnRequestEnd != nil {
					c.OnRequestEnd(c.slotIndex(s), now)
				}
			}
			if in.Op == isa.OpBranch && s.fetchBlocked && s.bufLen() == 0 {
				// The mispredicted branch (always the last fetched) just
				// resolved: charge the front-end redirect from here.
				s.fetchBlocked = false
				s.fetchResumeAt = now + uint64(c.cfg.MispredictPenalty)
			}
			if (in.Op == isa.OpRemote || in.Op == isa.OpPark) && s.blockedUntil > now {
				goto nextSlot // blocked: stop issuing from this slot
			}
		}
	nextSlot:
	}
}

func (c *InOCore) slotIndex(s *InOSlot) int { return s.idx }

func (c *InOCore) fetch(now uint64) {
	budget := c.cfg.Width
	n := len(c.slots)
	start := c.fetchRR
	c.fetchRR = (c.fetchRR + 1) % n
	fetchedAny := false
	for k := 0; k < n && budget > 0; k++ {
		s := c.slots[(start+k)%n]
		if !s.active || s.unavailableUntil > now || s.blockedUntil > now ||
			s.fetchResumeAt > now || s.fetchBlocked {
			continue
		}
		for budget > 0 && s.bufLen() < c.cfg.FetchBufEntries {
			in, ok := s.stream.Next(now)
			if !ok {
				if s.bufLen() == 0 {
					s.Stats.IdleCycles++
				}
				break
			}
			// Instruction-cache access on line crossing.
			line := in.PC >> 6
			if line != s.lastLine {
				s.lastLine = line
				ilat := uint64(c.iport.Access(now, in.PC, false))
				if ilat > uint64(c.iport.L1.HitLatency()) {
					s.fetchResumeAt = now + ilat
				}
			}
			if s.bufLen() == 0 {
				s.headWakeAt = 0 // head is changing
			}
			s.pushBuf(in)
			budget--
			fetchedAny = true
			if in.Op == isa.OpBranch {
				if c.pred.PredictAndTrain(in) {
					// Fetch stalls until the branch issues (resolution);
					// the redirect penalty is charged there.
					s.fetchBlocked = true
					break
				}
				if in.Taken {
					break // taken-branch fetch break
				}
			}
			if s.fetchResumeAt > now {
				break // I-cache miss stalls further fetch
			}
		}
	}
	if !fetchedAny {
		c.Stats.FetchStallCycles++
	}
}

// NextEvent returns the earliest cycle >= now at which the core's
// observable state can change: now if any slot would issue or fetch this
// cycle, otherwise the minimum over swap-in completions, remote-block
// completions, head wake-up times, fetch resumes, and stream arrival
// events (NoEvent if every slot is drained with no future work). The
// result is conservative: returning now is always legal.
func (c *InOCore) NextEvent(now uint64) uint64 {
	ev := uint64(NoEvent)
	for _, s := range c.slots {
		if !s.active {
			continue
		}
		gate := max64(s.unavailableUntil, s.blockedUntil)
		if s.bufLen() > 0 {
			if gate > now {
				if gate < ev {
					ev = gate
				}
			} else {
				in := s.buf[s.bufHead]
				wake := max64(s.regReadyAt[in.Src1], s.regReadyAt[in.Src2])
				if wake <= now {
					return now // head issues this cycle
				}
				if wake < ev {
					ev = wake
				}
			}
		}
		// Fetch side. fetchBlocked clears when the latched branch
		// issues, which the issue-side events above already price.
		if gate > now {
			if gate < ev {
				ev = gate
			}
			continue
		}
		if s.fetchBlocked {
			continue
		}
		if s.fetchResumeAt > now {
			if s.fetchResumeAt < ev {
				ev = s.fetchResumeAt
			}
			continue
		}
		if s.bufLen() >= c.cfg.FetchBufEntries {
			continue
		}
		w := streamNextWork(s.stream, now)
		if w <= now {
			return now
		}
		if w < ev {
			ev = w
		}
	}
	return ev
}

// SkipCycles advances the core's deterministic per-cycle state by n
// cycles starting at now, exactly as n quiescent Step calls would:
// cycle and fetch-stall counters, idle cycles for fetch-eligible empty
// slots, and the fetch/issue round-robin pointers. The caller must have
// established now+n <= NextEvent(now).
func (c *InOCore) SkipCycles(now, n uint64) {
	c.Stats.Cycles += n
	c.Stats.FetchStallCycles += n
	nslots := uint64(len(c.slots))
	c.issueRR = int((uint64(c.issueRR) + n) % nslots)
	c.fetchRR = int((uint64(c.fetchRR) + n) % nslots)
	for _, s := range c.slots {
		if !s.active || s.fetchBlocked {
			continue
		}
		if s.unavailableUntil > now || s.blockedUntil > now || s.fetchResumeAt > now {
			continue
		}
		if s.bufLen() == 0 {
			// The slow path charges one idle cycle per eligible
			// empty-handed probe of the stream.
			s.Stats.IdleCycles += n
		}
	}
}

// Run steps the core for n cycles starting at cycle start and returns the
// next cycle value (start+n). Quiescent spans — every bound slot blocked
// on a remote, a dependence, or an empty stream — are fast-forwarded via
// NextEvent/SkipCycles; the result is bit-identical to n plain Steps.
func (c *InOCore) Run(start, n uint64) uint64 {
	end := start + n
	now := start
	for now < end {
		if ev := c.NextEvent(now); ev > now+1 {
			target := ev
			if target > end {
				target = end
			}
			c.SkipCycles(now, target-now)
			now = target
			continue
		}
		c.Step(now)
		now++
	}
	return end
}

package expt

// CellReport is the machine-readable form of one simulated campaign
// point (design × workload × load), the per-design summary embedded in
// cmd/duplexity's -telemetry run manifest.
type CellReport struct {
	Design       string  `json:"design"`
	Workload     string  `json:"workload"`
	Load         float64 `json:"load"`
	Utilization  float64 `json:"utilization"`
	Seconds      float64 `json:"seconds"`
	OoORetired   uint64  `json:"ooo_retired"`
	InORetired   uint64  `json:"ino_retired"`
	BatchRetired uint64  `json:"batch_retired"`
	RemotesPerS  float64 `json:"remotes_per_s"`
	Requests     uint64  `json:"requests"`
	MicroP99Us   float64 `json:"micro_p99_us,omitempty"`
}

// ReportCached exports every campaign cell the Suite has simulated so
// far. It never triggers new simulation: if no requested experiment
// needed the matrix, the report is empty.
func (s *Suite) ReportCached() []CellReport {
	out := make([]CellReport, 0, len(s.matrix))
	for _, c := range s.matrix {
		out = append(out, CellReport{
			Design:       c.Design.String(),
			Workload:     c.Workload,
			Load:         c.Load,
			Utilization:  c.Utilization,
			Seconds:      c.Seconds,
			OoORetired:   c.OoORetired,
			InORetired:   c.InORetired,
			BatchRetired: c.BatchRetired,
			RemotesPerS:  c.RemotesPerS,
			Requests:     c.Requests,
			MicroP99Us:   c.MicroP99Us,
		})
	}
	return out
}

package sched

import (
	"math"
	"testing"
)

// Section IV's numbers: stall-free batch work needs 16 threads when the
// master borrows (8 per core); 50%-stalled batch threads that only run
// on the lender need 21; the pessimistic both-stall case caps at 32.
func TestPaperProvisioningNumbers(t *testing.T) {
	n, err := Contexts(Demand{BatchStallFrac: 0, MasterBorrows: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 16 {
		t.Fatalf("stall-free with borrowing = %d, want 16", n)
	}
	n, err = Contexts(Demand{BatchStallFrac: 0, MasterBorrows: false})
	if err != nil {
		t.Fatal(err)
	}
	if n != 8 {
		t.Fatalf("stall-free lender-only = %d, want 8", n)
	}
	n, err = Contexts(Demand{BatchStallFrac: 0.5, MasterBorrows: false})
	if err != nil {
		t.Fatal(err)
	}
	if n < 19 || n > 23 {
		t.Fatalf("50%%-stall lender-only = %d, want ~21", n)
	}
	n, err = Contexts(Demand{BatchStallFrac: 0.5, MasterBorrows: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != MaxContexts {
		t.Fatalf("pessimistic both-stall = %d, want cap %d", n, MaxContexts)
	}
}

func TestContextsValidation(t *testing.T) {
	if _, err := Contexts(Demand{BatchStallFrac: -0.1}); err == nil {
		t.Fatal("negative stall fraction accepted")
	}
	if _, err := Contexts(Demand{BatchStallFrac: 1}); err == nil {
		t.Fatal("unit stall fraction accepted")
	}
	if _, err := Contexts(Demand{Target: 1}); err == nil {
		t.Fatal("unit target accepted")
	}
}

func TestContextsMonotoneInStall(t *testing.T) {
	prev := 0
	for p := 0.05; p < 0.6; p += 0.05 {
		n, err := Contexts(Demand{BatchStallFrac: p, MasterBorrows: false})
		if err != nil {
			t.Fatal(err)
		}
		if n < prev {
			t.Fatalf("provisioning not monotone at stall %v: %d < %d", p, n, prev)
		}
		prev = n
	}
}

func TestObserver(t *testing.T) {
	if _, err := NewObserver(0); err == nil {
		t.Fatal("zero alpha accepted")
	}
	o, err := NewObserver(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Record(0, 0); err == nil {
		t.Fatal("empty window accepted")
	}
	if err := o.Record(10, 5); err == nil {
		t.Fatal("stalled > total accepted")
	}
	// First sample seeds the estimate.
	if err := o.Record(50, 100); err != nil {
		t.Fatal(err)
	}
	if o.StallFrac() != 0.5 {
		t.Fatalf("seed estimate %v", o.StallFrac())
	}
	// EMA: next sample of 0 halves it.
	if err := o.Record(0, 100); err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.StallFrac()-0.25) > 1e-12 {
		t.Fatalf("EMA estimate %v, want 0.25", o.StallFrac())
	}
}

func TestObserverRecommendation(t *testing.T) {
	o, err := NewObserver(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Record(100, 1000); err != nil { // 10% stall
		t.Fatal(err)
	}
	n, err := o.Recommend(false, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 2(b): 10% stall needs ~11 contexts for 8 physical at 90%.
	if n < 10 || n > 12 {
		t.Fatalf("recommendation %d, want ~11", n)
	}
}

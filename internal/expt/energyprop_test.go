package expt

import (
	"reflect"
	"testing"

	"duplexity/internal/core"
	"duplexity/internal/idle"
	"duplexity/internal/workload"
)

// ModelVersion is pinned: the idle model is additive (governor-free
// cache digests are unchanged), so introducing it must NOT have bumped
// the model version — a bump would invalidate every existing cache.
func TestModelVersionPinnedAcrossIdleModel(t *testing.T) {
	if core.ModelVersion != "hpca19-duplexity-v1" {
		t.Fatalf("ModelVersion %q; the idle model must not invalidate legacy caches", core.ModelVersion)
	}
}

func TestEnergyCombosCanonical(t *testing.T) {
	combos := EnergyCombos()
	if len(combos) != 4 {
		t.Fatalf("got %d combos, want 4", len(combos))
	}
	for _, c := range combos {
		if _, ok := idle.ByName(c.Governor); !ok {
			t.Errorf("combo names unknown governor %q", c.Governor)
		}
		if idle.RequiresMorphing(c.Governor) && !c.Design.Morphs() {
			t.Errorf("combo %v/%s: fill on a non-morphing design", c.Design, c.Governor)
		}
	}
	prev := 0.0
	for _, l := range EnergyLoads {
		if l <= prev || l > 0.95 {
			t.Fatalf("EnergyLoads not ascending in (0, 0.95]: %v", EnergyLoads)
		}
		prev = l
	}
}

func TestEnergyCellKeyGovernorSensitivity(t *testing.T) {
	s := NewSuite(Options{Scale: 0.05, Seed: 1})
	spec := workload.Microservices()[0]
	deep := s.cellKey(KindEnergyProp, core.DesignBaseline, spec, 0.5, idle.GovDeep)
	agile := s.cellKey(KindEnergyProp, core.DesignBaseline, spec, 0.5, idle.GovAgile)
	if deep.Digest() == agile.Digest() {
		t.Fatal("governor not part of the cell address")
	}
	// The energyprop kind is its own cache family even at equal points.
	matrix := s.cellKey(KindMatrix, core.DesignBaseline, spec, 0.5, "")
	if matrix.Governor != "" {
		t.Fatal("matrix cells must not carry a governor")
	}
}

func TestEnergyCellSpecValidation(t *testing.T) {
	ok := CellSpec{Kind: KindEnergyProp, Design: "Duplexity", Workload: "RSC", Load: 0.5, Governor: idle.GovFill}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid fill cell rejected: %v", err)
	}
	bad := []CellSpec{
		// Fill needs a morphing design.
		{Kind: KindEnergyProp, Design: "Baseline", Workload: "RSC", Load: 0.5, Governor: idle.GovFill},
		// Unknown governor.
		{Kind: KindEnergyProp, Design: "Baseline", Workload: "RSC", Load: 0.5, Governor: "turbo"},
		// Load outside (0, 0.95].
		{Kind: KindEnergyProp, Design: "Baseline", Workload: "RSC", Load: 0, Governor: idle.GovDeep},
		// Governors are energyprop-only.
		{Kind: KindMatrix, Design: "Baseline", Workload: "RSC", Load: 0.5, Governor: idle.GovDeep},
	}
	for i, cs := range bad {
		if err := cs.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cs)
		}
	}
}

func TestEnergyPropCampaignExpand(t *testing.T) {
	cells, err := CampaignSpec{Kind: CampaignEnergyProp}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: {Baseline, Duplexity} × 5 workloads × 5 loads × 4
	// governors, minus the dropped fill×Baseline pairings: (3+4)·5·5.
	if len(cells) != 175 {
		t.Fatalf("default energyprop campaign has %d cells, want 175", len(cells))
	}
	for _, cs := range cells {
		if err := cs.Validate(); err != nil {
			t.Fatalf("expanded cell invalid: %+v: %v", cs, err)
		}
	}
	// A governors list with no valid pairing is an error, not 0 cells.
	if _, err := (CampaignSpec{Kind: CampaignEnergyProp, Designs: []string{"Baseline"},
		Governors: []string{idle.GovFill}}).Expand(); err == nil {
		t.Fatal("fill-only × Baseline-only expanded to nothing without error")
	}
	// Governors on a matrix campaign are rejected up front.
	if _, err := (CampaignSpec{Kind: CampaignMatrix, Governors: []string{idle.GovDeep}}).Expand(); err == nil {
		t.Fatal("matrix campaign accepted governors")
	}
}

func TestEnergyCellsWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full energy sweep in -short mode")
	}
	var runs [][]energyCell
	for _, workers := range []int{1, 8} {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: workers})
		cells, err := s.EnergyCells()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(cells) != len(EnergyCombos())*len(workload.Microservices())*len(EnergyLoads) {
			t.Fatalf("workers=%d: %d cells", workers, len(cells))
		}
		runs = append(runs, cells)
	}
	if !reflect.DeepEqual(runs[0], runs[1]) {
		t.Fatal("energy cells differ across worker counts")
	}
}

func TestEnergyPropWarmCacheByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full energy sweep in -short mode")
	}
	dir := t.TempDir()
	render := func() (string, int) {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 8, CacheDir: dir})
		tb, err := s.EnergyProp()
		if err != nil {
			t.Fatal(err)
		}
		return tb.String(), s.CampaignStats().Misses
	}
	cold, coldMisses := render()
	warm, warmMisses := render()
	if coldMisses == 0 {
		t.Fatal("cold run reported no misses")
	}
	if warmMisses != 0 {
		t.Fatalf("warm run simulated %d cells", warmMisses)
	}
	if cold != warm {
		t.Fatal("warm-cache table not byte-identical")
	}
}

// The headline qualitative claim, cheap enough to check on two cells:
// at mid load, parking the baseline core in C6 draws less idle power
// than Duplexity filling idle at full tilt — and pays for it with a
// visibly fatter tail.
func TestEnergyQualitativeDeepVsFill(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level slowdown measurement in -short mode")
	}
	s := NewSuite(Options{Scale: 0.01, Seed: 1})
	spec := workload.Microservices()[2] // RSC
	deep, err := s.runEnergyCell(core.DesignBaseline, spec, idle.GovDeep, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	fill, err := s.runEnergyCell(core.DesignDuplexity, spec, idle.GovFill, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if deep.IdlePowerW >= fill.IdlePowerW {
		t.Errorf("deep idle power %v W not below fill's %v W", deep.IdlePowerW, fill.IdlePowerW)
	}
	if deep.P99Us <= fill.P99Us {
		t.Errorf("deep p99 %v µs not above fill's %v µs", deep.P99Us, fill.P99Us)
	}
	if fill.BatchGIPS <= 0 {
		t.Errorf("fill harvested no batch throughput")
	}
	if deep.BatchGIPS != 0 {
		t.Errorf("deep governor harvested %v GIPS from sleep states", deep.BatchGIPS)
	}
}

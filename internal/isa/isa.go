// Package isa defines the dynamic instruction model consumed by the
// cycle-level pipeline simulators, plus a configurable synthetic
// instruction-stream generator framework.
//
// The repository has no access to x86 binaries or a gem5-class functional
// front-end, so workloads are represented as dynamic instruction streams
// with realistic op mixes, register dependence distances, branch behaviour
// (exercising the real simulated predictors), memory footprints
// (exercising the real simulated caches and TLBs), and explicit
// microsecond-scale remote operations (the paper's "demarcated stalls").
package isa

import "fmt"

// OpClass classifies a dynamic instruction for the timing model.
type OpClass uint8

// Operation classes. OpRemote models a demarcated µs-scale operation
// (RDMA read, Optane access, leaf fan-out) per Section IV of the paper:
// hardware recognizes the start and end of such stalls.
const (
	OpNop OpClass = iota
	OpIntAlu
	OpIntMul
	OpFPAlu
	OpLoad
	OpStore
	OpBranch
	OpRemote
	// OpPark is an mwait/hlt-style wait: the thread blocks for RemoteNs
	// (a wake-up poll interval) without issuing network traffic. BSP
	// barrier waits park instead of spinning, matching Section IV's
	// "unused virtual contexts are parked via HLT".
	OpPark
	numOpClasses
)

// String implements fmt.Stringer.
func (o OpClass) String() string {
	switch o {
	case OpNop:
		return "nop"
	case OpIntAlu:
		return "int"
	case OpIntMul:
		return "mul"
	case OpFPAlu:
		return "fp"
	case OpLoad:
		return "load"
	case OpStore:
		return "store"
	case OpBranch:
		return "branch"
	case OpRemote:
		return "remote"
	case OpPark:
		return "park"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// RegID names an architectural register. Register 0 is the "none"
// register (no source/destination). The x86-64 state the paper assumes is
// 16 64-bit GP registers plus 16 128-bit XMM registers; we model 32
// uniform architectural registers per thread.
type RegID uint8

// RegNone marks an absent operand.
const RegNone RegID = 0

// NumArchRegs is the number of architectural registers per thread
// (16 GP + 16 XMM, flattened).
const NumArchRegs = 33 // index 0 unused

// Instr is one dynamic instruction.
type Instr struct {
	// PC is the (synthetic) program counter, used by branch predictors,
	// the BTB, and the instruction cache.
	PC uint64
	// Op classifies the instruction.
	Op OpClass
	// Dst is the destination register (RegNone if none).
	Dst RegID
	// Src1 and Src2 are source registers (RegNone if absent).
	Src1, Src2 RegID
	// Addr is the effective address for OpLoad/OpStore.
	Addr uint64
	// Taken is the actual branch outcome for OpBranch.
	Taken bool
	// Target is the actual next PC for a taken branch.
	Target uint64
	// IsCall and IsReturn mark call/return branches for the RAS.
	IsCall, IsReturn bool
	// RemoteNs is the device latency of an OpRemote in nanoseconds.
	RemoteNs float64
	// EndOfRequest marks the last instruction of a service request;
	// used for request-latency accounting on latency-critical threads.
	EndOfRequest bool
}

// Stream produces the dynamic instruction stream of one hardware thread.
//
// Next returns ok=false when the thread currently has no work (an idle
// latency-critical thread waiting for a request); the caller should
// advance simulated time and retry. Batch streams never go idle.
type Stream interface {
	Next(nowCycle uint64) (Instr, bool)
}

// NoEvent is the NextWorkAt sentinel for "never": the stream has no
// scheduled future work.
const NoEvent = ^uint64(0)

// Eventer is implemented by streams that can report, WITHOUT consuming
// input or mutating any state, the earliest cycle >= now at which Next
// may return an instruction. Implementations must be pure: the
// event-driven fast-forward path calls NextWorkAt on cycles where the
// cycle-by-cycle path would not have called Next at all, so any side
// effect (consuming RNG draws, emitting telemetry, admitting arrivals)
// would break the bit-identical-results invariant.
//
// A return value w <= now means "work may be available right now";
// w > now promises Next would return ok=false on every cycle in
// [now, w); NoEvent means the stream will never produce work again.
// Streams that cannot promise anything simply do not implement the
// interface — callers must then assume work can appear on any cycle.
type Eventer interface {
	NextWorkAt(now uint64) uint64
}

// Fixed is a Stream that replays a fixed slice of instructions, cyclically
// if Loop is set. It supports the trace-based simulation mode the paper
// uses for multi-threaded throughput workloads.
type Fixed struct {
	Instrs []Instr
	Loop   bool
	pos    int
}

// NextWorkAt implements Eventer: a fixed trace has work immediately or
// never again.
func (f *Fixed) NextWorkAt(now uint64) uint64 {
	if len(f.Instrs) == 0 {
		return NoEvent
	}
	if f.pos >= len(f.Instrs) && !f.Loop {
		return NoEvent
	}
	return now
}

// Next implements Stream.
func (f *Fixed) Next(uint64) (Instr, bool) {
	if len(f.Instrs) == 0 {
		return Instr{}, false
	}
	if f.pos >= len(f.Instrs) {
		if !f.Loop {
			return Instr{}, false
		}
		f.pos = 0
	}
	in := f.Instrs[f.pos]
	f.pos++
	return in, true
}

// Record drains up to n instructions from s (at cycle 0) into a slice,
// for later replay with Fixed. Idle streams terminate recording early.
func Record(s Stream, n int) []Instr {
	out := make([]Instr, 0, n)
	for i := 0; i < n; i++ {
		in, ok := s.Next(0)
		if !ok {
			break
		}
		out = append(out, in)
	}
	return out
}

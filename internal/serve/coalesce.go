package serve

import (
	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// flight is one in-flight cell shared by every concurrent identical
// submission (singleflight keyed on the cell's SHA-256 cache digest).
// The first submitter is the leader and occupies a queue slot and a
// worker; followers wait on done and read the leader's result, so a
// burst of duplicate submissions costs exactly one simulation — and
// afterwards the on-disk cache answers repeats across time as well.
//
// waiters is guarded by Server.fmu. When it reaches zero before the
// leader's work starts executing (every requester's deadline expired in
// the queue), the worker cancels the cell and journals it incomplete
// instead of simulating for nobody.
type flight struct {
	key     campaign.Key
	digest  string
	waiters int

	// tr is the leader's cell trace (nil when tracing is disabled): the
	// worker records the admission span and threads it into the engine;
	// followers adopt its spans as children of their own traces.
	tr *telemetry.CellTrace

	done chan struct{}
	res  expt.ServedResult
	err  error
}

package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/serve"
)

// keySuite is a shared cheap suite used only for key derivation (no
// simulation happens through it).
var keySuite = expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1})

func specFor(load float64) expt.CellSpec {
	return expt.CellSpec{Kind: expt.KindMatrix, Design: "Baseline", Workload: "RSC", Load: load}
}

func keyFor(t *testing.T, load float64) campaign.Key {
	t.Helper()
	k, err := keySuite.ServedKey(specFor(load))
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// fakeWorker is a scriptable worker daemon: it answers /v1/queuez with
// a fixed world and /v1/exec with a correctly-digested stub entry,
// optionally delayed or failed via hooks.
type fakeWorker struct {
	t     *testing.T
	world expt.World

	mu    sync.Mutex
	execs int
	// hook, when non-nil, intercepts /v1/exec; return true if handled.
	hook func(w http.ResponseWriter, r *http.Request) bool

	srv *httptest.Server
}

func newFakeWorker(t *testing.T) *fakeWorker {
	f := &fakeWorker{t: t, world: keySuite.World()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/queuez", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(serve.Queuez{Workers: 2, QueueCapacity: 8, World: f.world})
	})
	mux.HandleFunc("POST /v1/exec", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.execs++
		hook := f.hook
		f.mu.Unlock()
		if hook != nil && hook(w, r) {
			return
		}
		f.serveExec(w, r)
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// serveExec answers with the digest the coordinator expects and a stub
// result payload derived from the cell's load, so different cells have
// distinguishable results.
func (f *fakeWorker) serveExec(w http.ResponseWriter, r *http.Request) {
	var req serve.CellRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	key, err := keySuite.ServedKey(req.CellSpec)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	json.NewEncoder(w).Encode(expt.RawCellResult{
		Digest: key.Digest(), Cached: false, WallSeconds: 0.01,
		Result: json.RawMessage(fmt.Sprintf(`{"load":%g,"from":%q}`, req.Load, f.srv.URL)),
	})
}

func (f *fakeWorker) execCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs
}

func (f *fakeWorker) setHook(hook func(w http.ResponseWriter, r *http.Request) bool) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

func newTestCoordinator(t *testing.T, o Options, fakes ...*fakeWorker) *Coordinator {
	t.Helper()
	for _, f := range fakes {
		o.Workers = append(o.Workers, f.srv.URL)
	}
	c, err := New(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRendezvousStableMinimalRemap(t *testing.T) {
	a, b, x := newWorker("http://a"), newWorker("http://b"), newWorker("http://x")
	three := []*worker{a, b, x}
	two := []*worker{a, b}
	moved, kept := 0, 0
	for i := 0; i < 400; i++ {
		digest := fmt.Sprintf("digest-%d", i)
		top3 := rankWorkers(digest, three)[0]
		top2 := rankWorkers(digest, two)[0]
		if top3 == x {
			moved++ // x's cells must reshard somewhere
			continue
		}
		if top2 != top3 {
			t.Fatalf("digest %q moved from %s to %s though its owner survived", digest, top3.name, top2.name)
		}
		kept++
	}
	// Roughly a third of cells belonged to the removed worker.
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
	if moved < 400/6 || moved > 400/2 {
		t.Errorf("removed worker owned %d/400 cells, want roughly a third", moved)
	}
}

func TestShardingRoutesToHomeWorker(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	c := newTestCoordinator(t, Options{}, f1, f2)

	// Dispatch several distinct unloaded cells; each must land on its
	// rendezvous home, not round-robin.
	loads := []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80}
	byName := map[string]int{}
	for _, l := range loads {
		k := keyFor(t, l)
		home := rankWorkers(k.Digest(), c.workers)[0].name
		ent, cached, err := c.Exec(k, nil)
		if err != nil {
			t.Fatal(err)
		}
		if cached {
			t.Fatalf("fresh cell %g reported cached", l)
		}
		if ent.WallSeconds != 0.01 || len(ent.Result) == 0 {
			t.Fatalf("entry = %+v", ent)
		}
		byName[home]++
	}
	if f1.execCount()+f2.execCount() != len(loads) {
		t.Fatalf("exec counts %d+%d, want %d", f1.execCount(), f2.execCount(), len(loads))
	}
	if f1.execCount() != byName[f1.srv.URL] || f2.execCount() != byName[f2.srv.URL] {
		t.Errorf("dispatch did not follow rendezvous homes: got %d/%d, want %d/%d",
			f1.execCount(), f2.execCount(), byName[f1.srv.URL], byName[f2.srv.URL])
	}
}

func TestL1SingleflightCoalesces(t *testing.T) {
	release := make(chan struct{})
	f := newFakeWorker(t)
	f.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		<-release
		return false
	})
	c := newTestCoordinator(t, Options{}, f)

	k := keyFor(t, 0.5)
	var wg sync.WaitGroup
	var cachedCount atomic.Int64
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ent, cached, err := c.Exec(k, nil)
			if err != nil {
				t.Error(err)
				return
			}
			if cached {
				cachedCount.Add(1)
			}
			if len(ent.Result) == 0 {
				t.Error("empty entry")
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let followers coalesce
	close(release)
	wg.Wait()
	if got := f.execCount(); got != 1 {
		t.Fatalf("worker saw %d execs, want 1 (singleflight)", got)
	}
	if cachedCount.Load() != 4 {
		t.Errorf("cached followers = %d, want 4", cachedCount.Load())
	}
	// A later Exec answers from L1 without touching the fleet.
	if _, cached, err := c.Exec(k, nil); err != nil || !cached {
		t.Fatalf("L1 probe: cached=%v err=%v", cached, err)
	}
	if got := f.execCount(); got != 1 {
		t.Fatalf("L1 hit reached the worker (%d execs)", got)
	}
	if st := c.Stats(); st.L1Hits != 1 || st.L1Entries != 1 {
		t.Errorf("stats = %+v, want 1 L1 hit / 1 entry", st)
	}
}

func TestHedgeStragglerFirstResultWins(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	c := newTestCoordinator(t, Options{HedgeAfter: 50 * time.Millisecond}, f1, f2)

	// Find a cell homed on f1 so we can make its primary the straggler.
	var k campaign.Key
	for l := 0.10; l < 0.90; l += 0.01 {
		cand := keyFor(t, l)
		if rankWorkers(cand.Digest(), c.workers)[0].name == f1.srv.URL {
			k = cand
			break
		}
	}
	if k == (campaign.Key{}) {
		t.Fatal("no cell homed on f1")
	}

	primaryCancelled := make(chan error, 1)
	f1.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		// Drain the body so the server's background read can detect the
		// client disconnect and cancel r.Context().
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			primaryCancelled <- r.Context().Err()
			return true
		case <-time.After(5 * time.Second):
			t.Error("straggler was never cancelled")
			return false
		}
	})

	start := time.Now()
	ent, cached, err := c.Exec(k, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cached || len(ent.Result) == 0 {
		t.Fatalf("hedged result = %+v cached=%v", ent, cached)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("hedge took %v, straggler must not gate the result", elapsed)
	}
	// The hedge fired, won, and the loser's request was cancelled.
	select {
	case <-primaryCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("primary request was not cancelled after hedge won")
	}
	st := c.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if f2.execCount() != 1 {
		t.Errorf("hedge worker execs = %d, want 1", f2.execCount())
	}
}

func TestRetryReshardsOnWorkerFailure(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	f1.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		http.Error(w, "synthetic worker crash", http.StatusInternalServerError)
		return true
	})
	c := newTestCoordinator(t, Options{}, f1, f2)

	// Every cell must complete even when f1 eats all of its shard.
	for _, l := range []float64{0.15, 0.25, 0.35, 0.45, 0.55, 0.65} {
		if _, _, err := c.Exec(keyFor(t, l), nil); err != nil {
			t.Fatalf("cell %g failed despite a healthy worker: %v", l, err)
		}
	}
	st := c.Stats()
	var failed, completed int64
	for _, w := range st.Workers {
		failed += w.Failed
		completed += w.Completed
	}
	if failed == 0 {
		t.Error("no failures recorded against the crashing worker")
	}
	if completed != 6 {
		t.Errorf("completed = %d, want 6", completed)
	}
}

func TestBackpressure429HalvesWindowAndRetries(t *testing.T) {
	f := newFakeWorker(t)
	c := newTestCoordinator(t, Options{}, f)
	// Grow the window first so the halving is observable.
	for _, l := range []float64{0.11, 0.12, 0.13} {
		if _, _, err := c.Exec(keyFor(t, l), nil); err != nil {
			t.Fatal(err)
		}
	}
	before := c.Stats().Workers[0].Window

	// The next dispatch is shed once, then accepted.
	var rejections atomic.Int64
	f.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		if rejections.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
			return true
		}
		return false
	})

	start := time.Now()
	if _, _, err := c.Exec(keyFor(t, 0.77), nil); err != nil {
		t.Fatalf("cell failed despite retry budget: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 500*time.Millisecond {
		t.Errorf("retry ignored Retry-After: completed in %v", elapsed)
	}
	st := c.Stats().Workers[0]
	if st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}
	// Window halved on the 429, then +1 on the eventual success.
	if want := before/2 + 1; st.Window != want {
		t.Errorf("window = %d, want %d (halve then grow)", st.Window, want)
	}
}

func TestRegisterWorldMismatchFatal(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	f2.world.Seed = 999
	c, err := New(Options{Workers: []string{f1.srv.URL, f2.srv.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Register(context.Background()); err == nil {
		t.Fatal("mismatched worlds must fail registration")
	}
}

func TestDigestMismatchFatal(t *testing.T) {
	f := newFakeWorker(t)
	f.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		json.NewEncoder(w).Encode(expt.RawCellResult{
			Digest: "deadbeef", Result: json.RawMessage(`{}`),
		})
		return true
	})
	c := newTestCoordinator(t, Options{}, f)
	if _, _, err := c.Exec(keyFor(t, 0.5), nil); err == nil {
		t.Fatal("digest drift must be a hard error, never cached")
	}
	if st := c.Stats(); st.L1Entries != 0 {
		t.Error("drifted entry landed in L1")
	}
}

// TestE2EFleetByteIdenticalToSingleNode drives the real simulator: two
// real duplexityd worker servers, a coordinator suite dispatching
// through the fleet, and a single-node reference run. The merged
// results and the coordinator's cache entries must match the reference
// byte-for-byte (wall times aside — they are measurements).
func TestE2EFleetByteIdenticalToSingleNode(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	newWorkerServer := func(dir string) *httptest.Server {
		suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 42, Workers: 1, CacheDir: dir})
		s, err := serve.New(serve.Config{Suite: suite, Workers: 1, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("worker drain: %v", err)
			}
		})
		return ts
	}
	w1 := newWorkerServer(t.TempDir())
	w2 := newWorkerServer(t.TempDir())

	coord, err := New(Options{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, want := coord.World(), keySuite.World(); got.Model != want.Model || got.Scale != 0.01 || got.Seed != 42 {
		t.Fatalf("adopted world = %+v", got)
	}

	specs := []expt.CellSpec{
		specFor(0.3), specFor(0.6),
		{Kind: expt.KindMatrix, Design: "Duplexity", Workload: "RSC", Load: 0.3},
		{Kind: expt.KindSlowdown, Design: "Baseline", Workload: "RSC"},
	}

	coordDir := t.TempDir()
	fleetSuite := expt.NewSuite(expt.Options{
		Scale: 0.01, Seed: 42, Workers: 2, CacheDir: coordDir, Remote: coord,
	})
	refSuite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 42, Workers: 1, CacheDir: t.TempDir()})

	for i, cs := range specs {
		fr, err := fleetSuite.RunServedRaw(cs)
		if err != nil {
			t.Fatalf("fleet cell %d: %v", i, err)
		}
		rr, err := refSuite.RunServedRaw(cs)
		if err != nil {
			t.Fatalf("ref cell %d: %v", i, err)
		}
		if fr.Digest != rr.Digest {
			t.Fatalf("cell %d digests diverge: %s vs %s", i, fr.Digest, rr.Digest)
		}
		if !bytes.Equal(fr.Result, rr.Result) {
			t.Errorf("cell %d result bytes diverge:\n%s\n%s", i, fr.Result, rr.Result)
		}
		// The remote entry landed in the coordinator's disk cache with
		// the exact result bytes.
		raw, err := os.ReadFile(filepath.Join(coordDir, fr.Digest+".json"))
		if err != nil {
			t.Fatalf("cell %d missing from coordinator cache: %v", i, err)
		}
		var ent campaign.Entry
		if err := json.Unmarshal(raw, &ent); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ent.Result, rr.Result) {
			t.Errorf("cell %d cached bytes diverge from single-node run", i)
		}
	}

	// Fleet accounting: every cell was resolved remotely, none locally.
	sum := fleetSuite.CampaignStats()
	if sum.Remote != len(specs) || sum.Misses != len(specs) {
		t.Errorf("fleet stats remote=%d misses=%d, want %d/%d", sum.Remote, sum.Misses, len(specs), len(specs))
	}
	if sum.SimWallSeconds <= 0 {
		t.Error("fleet run recorded no worker simulation time")
	}
	// Both workers participated (4 cells, rendezvous-spread).
	st := coord.Stats()
	if len(st.Workers) != 2 || st.Workers[0].Completed+st.Workers[1].Completed != int64(len(specs)) {
		t.Errorf("worker completions = %+v", st.Workers)
	}

	// A rerun answers from the coordinator's now-warm disk cache.
	for i, cs := range specs {
		fr, err := fleetSuite.RunServedRaw(cs)
		if err != nil {
			t.Fatalf("warm fleet cell %d: %v", i, err)
		}
		if !fr.Cached {
			t.Errorf("warm cell %d not served from coordinator cache", i)
		}
	}
}

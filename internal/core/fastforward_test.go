package core

import (
	"reflect"
	"testing"

	"duplexity/internal/telemetry"
	"duplexity/internal/workload"
)

// hashSink folds every telemetry event into an order-sensitive FNV-1a
// hash. Comparing hashes between two runs asserts that the full event
// streams — kinds, cycle stamps, sources, and arguments, in emission
// order — are identical.
type hashSink struct {
	h uint64
	n uint64
}

func newHashSink() *hashSink { return &hashSink{h: 1469598103934665603} }

func (s *hashSink) word(v uint64) {
	for i := 0; i < 8; i++ {
		s.h ^= v & 0xff
		s.h *= 1099511628211
		v >>= 8
	}
}

func (s *hashSink) Emit(e telemetry.Event) {
	s.word(e.Cycle)
	s.word(uint64(e.Kind))
	s.word(uint64(e.Src))
	s.word(e.A)
	s.word(e.B)
	s.n++
}

// makeTracedDyad is makeDyad with an explicit execution mode and a
// hashing telemetry sink attached before any cycle runs.
func makeTracedDyad(t *testing.T, design Design, qps float64, mode ExecMode) (*Dyad, *hashSink) {
	t.Helper()
	gen := masterGen(1, true)
	master, err := workload.NewRequestStream(gen, qps, design.FreqGHz(), 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDyad(Config{
		Design:       design,
		MasterStream: master,
		BatchStreams: batchStreams(32, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Exec = mode
	sink := newHashSink()
	d.EnableTelemetry(sink)
	return d, sink
}

// compareDyads asserts that a dyad run in some skipping mode and the
// cycle-by-cycle reference ended in externally identical states: clock,
// every stats struct, the telemetry event stream, the collected metric
// registry, the formatted thread report, and the raw latency samples.
func compareDyads(t *testing.T, design Design, mode ExecMode, got, ref *Dyad, gotSink, refSink *hashSink) {
	t.Helper()
	if got.Now() != ref.Now() {
		t.Fatalf("%v/%v: clock diverged: %d vs stepped %d", design, mode, got.Now(), ref.Now())
	}
	if gotSink.n != refSink.n || gotSink.h != refSink.h {
		t.Fatalf("%v/%v: telemetry streams diverged: %d events hash %x, stepped %d events hash %x",
			design, mode, gotSink.n, gotSink.h, refSink.n, refSink.h)
	}
	if a, b := *got.MasterOoO.ThreadStats(0), *ref.MasterOoO.ThreadStats(0); a != b {
		t.Fatalf("%v/%v: master thread stats diverged:\ngot     %+v\nstepped %+v", design, mode, a, b)
	}
	if got.MasterOoO.Stats != ref.MasterOoO.Stats {
		t.Fatalf("%v/%v: master core stats diverged:\ngot     %+v\nstepped %+v",
			design, mode, got.MasterOoO.Stats, ref.MasterOoO.Stats)
	}
	if (got.Master == nil) != (ref.Master == nil) {
		t.Fatalf("%v/%v: master-core presence diverged", design, mode)
	}
	if got.Master != nil && got.Master.Stats != ref.Master.Stats {
		t.Fatalf("%v/%v: morph stats diverged:\ngot     %+v\nstepped %+v",
			design, mode, got.Master.Stats, ref.Master.Stats)
	}
	if a, b := got.Latencies.Samples(), ref.Latencies.Samples(); !reflect.DeepEqual(a, b) {
		t.Fatalf("%v/%v: latency samples diverged: got %d samples, stepped %d", design, mode, len(a), len(b))
	}
	gotReg, refReg := telemetry.NewRegistry(), telemetry.NewRegistry()
	got.CollectInto(gotReg)
	ref.CollectInto(refReg)
	if a, b := gotReg.Snapshot(got.Now()), refReg.Snapshot(ref.Now()); !reflect.DeepEqual(a, b) {
		t.Fatalf("%v/%v: collected registries diverged:\ngot     %+v\nstepped %+v", design, mode, a, b)
	}
	if a, b := got.ThreadReport(), ref.ThreadReport(); a != b {
		t.Fatalf("%v/%v: thread reports diverged:\ngot:\n%s\nstepped:\n%s", design, mode, a, b)
	}
}

// skipModes are the two time-skipping execution modes, each held to bit
// equality against the ExecStepped reference.
var skipModes = []ExecMode{ExecFastForward, ExecEvent}

// TestFastForwardEquivalence is the three-way equivalence invariant: for
// every design, a dyad run with the legacy whole-dyad fast-forward and
// one run on the discrete-event engine must both be bit-identical —
// stats, telemetry counters, event stream, latency samples — to the same
// dyad stepped cycle by cycle.
func TestFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	const budget = 1_200_000
	for _, design := range AllDesigns {
		ref, refSink := makeTracedDyad(t, design, 100_000, ExecStepped)
		ref.Run(budget)
		if ref.SkippedCycles != 0 {
			t.Fatalf("%v: cycle-by-cycle dyad reports %d skipped cycles", design, ref.SkippedCycles)
		}
		for _, mode := range skipModes {
			d, sink := makeTracedDyad(t, design, 100_000, mode)
			d.Run(budget)
			compareDyads(t, design, mode, d, ref, sink, refSink)
			if design == DesignBaseline && d.SkippedCycles == 0 {
				t.Fatalf("%v/%v: never skipped (remote stalls should quiesce the dyad)", design, mode)
			}
		}
	}
}

// TestFastForwardEquivalenceUntilRequests exercises the RunUntilRequests
// path, which interleaves skip decisions with request-completion checks,
// in both skipping modes.
func TestFastForwardEquivalenceUntilRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	for _, design := range []Design{DesignBaseline, DesignDuplexity} {
		ref, refSink := makeTracedDyad(t, design, 100_000, ExecStepped)
		nref := ref.RunUntilRequests(60, 6_000_000)
		for _, mode := range skipModes {
			d, sink := makeTracedDyad(t, design, 100_000, mode)
			n := d.RunUntilRequests(60, 6_000_000)
			if n != nref {
				t.Fatalf("%v/%v: completed requests diverged: %d vs stepped %d", design, mode, n, nref)
			}
			compareDyads(t, design, mode, d, ref, sink, refSink)
		}
	}
}

// TestEventEquivalenceQuick is the raced smoke variant of the three-way
// suite: small enough to run under the race detector in check.sh's
// -short pass, yet covering both designs' full mode machinery
// (master/draining/filler transitions, pool steals between the lender
// and the master's filler engine). Unlike the full suite it is NOT
// skipped with -short.
func TestEventEquivalenceQuick(t *testing.T) {
	const budget = 220_000
	for _, design := range []Design{DesignBaseline, DesignDuplexity} {
		ref, refSink := makeTracedDyad(t, design, 100_000, ExecStepped)
		ref.Run(budget)
		for _, mode := range skipModes {
			d, sink := makeTracedDyad(t, design, 100_000, mode)
			d.Run(budget)
			compareDyads(t, design, mode, d, ref, sink, refSink)
		}
	}
}

// TestChipFastForwardEquivalence checks the chip-level engines: a
// two-dyad chip sharing an LLC must produce identical per-dyad stats in
// all three execution modes. Event mode is the interesting one — a
// busy dyad must not keep a stalled neighbour's clock ticking, and the
// shared-LLC access interleaving must still match lockstep exactly.
func TestChipFastForwardEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	build := func(mode ExecMode) *Chip {
		t.Helper()
		cfg := ChipConfig{Design: DesignDuplexity}
		for i := uint64(0); i < 2; i++ {
			gen := masterGen(1+i, true)
			master, err := workload.NewRequestStream(gen, 100_000, cfg.Design.FreqGHz(), 7+i)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Masters = append(cfg.Masters, master)
			cfg.Batches = append(cfg.Batches, batchStreams(32, 100+100*i))
		}
		c, err := NewChip(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range c.Dyads {
			d.Exec = mode
		}
		return c
	}
	ref := build(ExecStepped)
	ref.Run(800_000)
	for _, mode := range skipModes {
		c := build(mode)
		c.Run(800_000)
		if c.Now() != ref.Now() {
			t.Fatalf("%v: chip clock diverged: %d vs stepped %d", mode, c.Now(), ref.Now())
		}
		for i := range c.Dyads {
			a, b := c.Dyads[i], ref.Dyads[i]
			if a.Now() != b.Now() {
				t.Fatalf("%v: dyad %d clock diverged: %d vs stepped %d", mode, i, a.Now(), b.Now())
			}
			if a.MasterOoO.Stats != b.MasterOoO.Stats {
				t.Fatalf("%v: dyad %d: master core stats diverged:\ngot     %+v\nstepped %+v",
					mode, i, a.MasterOoO.Stats, b.MasterOoO.Stats)
			}
			if a.Master.Stats != b.Master.Stats {
				t.Fatalf("%v: dyad %d: morph stats diverged:\ngot     %+v\nstepped %+v",
					mode, i, a.Master.Stats, b.Master.Stats)
			}
			if !reflect.DeepEqual(a.Latencies.Samples(), b.Latencies.Samples()) {
				t.Fatalf("%v: dyad %d: latency samples diverged", mode, i)
			}
			if a.ThreadReport() != b.ThreadReport() {
				t.Fatalf("%v: dyad %d: thread reports diverged", mode, i)
			}
		}
		if c.Shared.LLC.Stats != ref.Shared.LLC.Stats {
			t.Fatalf("%v: shared LLC stats diverged:\ngot     %+v\nstepped %+v",
				mode, c.Shared.LLC.Stats, ref.Shared.LLC.Stats)
		}
	}
}

package workload

import (
	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

// FLANNXY builds the Section II-B motivation workload: a saturated (100%
// load, no inter-request idleness) FLANN-like stream that computes for
// computeUs between remote accesses whose latency is exponential with
// mean stallUs. FLANN-9-1 is FLANNXY(9, 1), FLANN-1-1 is FLANNXY(1, 1);
// stallUs = 0 gives the stall-free baseline.
func FLANNXY(computeUs, stallUs float64, seed uint64) isa.Stream {
	cfg := isa.SynthConfig{
		Seed:     seed,
		LoadFrac: 0.24, StoreFrac: 0.06, BranchFrac: 0.12, FPFrac: 0.14, MulFrac: 0.04,
		CodeBytes: 16 * 1024, DataBytes: 1 << 20, HotFrac: 0.9, HotBytes: 24 * 1024,
		StreamFrac: 0.2, DepP: 0.3, BranchRandomFrac: 0.06,
	}
	if stallUs > 0 {
		cfg.RemoteEvery = computeUs * InstrsPerUs
		cfg.RemoteLat = stats.Exponential{MeanVal: stallUs * 1000}
	}
	return isa.MustSynthStream(cfg)
}

// SPECMix returns one thread of the Figure 2(a) "SPEC workload mix":
// cache-resident compute-bound code with moderate ILP and no µs-scale
// stalls, the regime where in-order SMT throughput converges to OoO
// throughput by ~8 threads.
func SPECMix(seed uint64) isa.Stream {
	return isa.MustSynthStream(isa.SynthConfig{
		Seed:     seed,
		LoadFrac: 0.2, StoreFrac: 0.07, BranchFrac: 0.12, FPFrac: 0.08, MulFrac: 0.03,
		CodeBytes: 4 * 1024, DataBytes: 64 * 1024, HotFrac: 0.95, HotBytes: 2 * 1024,
		StreamFrac: 0.25, DepP: 0.2, BranchRandomFrac: 0.04,
	})
}

// Batch returns one generic latency-insensitive scale-out thread with
// µs-scale remote accesses (disaggregated-memory flavored): roughly 1µs
// of stall per 1-2µs of compute, per Section V's filler description.
// Batch analytics sweep large data shards, so the working set is far
// larger than an L1 — co-locating one of these on an SMT context
// pollutes the latency-critical thread's cache state.
func Batch(seed uint64) isa.Stream {
	return isa.MustSynthStream(isa.SynthConfig{
		Seed:     seed,
		LoadFrac: 0.24, StoreFrac: 0.08, BranchFrac: 0.12,
		CodeBytes: 16 * 1024, DataBytes: 1 << 19, HotFrac: 0.8, HotBytes: 24 * 1024,
		StreamFrac: 0.35, DepP: 0.25, BranchRandomFrac: 0.05,
		RemoteEvery: 1.5 * InstrsPerUs / 4, // InO thread IPC ~0.25-0.5
		RemoteLat:   stats.Exponential{MeanVal: 1000},
	})
}

// BatchSet returns n distinct batch threads.
func BatchSet(n int, seed uint64) []isa.Stream {
	out := make([]isa.Stream, n)
	for i := range out {
		out[i] = Batch(seed + uint64(i)*131)
	}
	return out
}

package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"duplexity/internal/expt"
	"duplexity/internal/jobstore"
	"duplexity/internal/telemetry"
)

// Multi-tenant request headers: which tenant a request bills against
// and which priority lane it rides.
const (
	HeaderTenant = "X-Duplexity-Tenant"
	HeaderLane   = "X-Duplexity-Lane"
)

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", s.handleCell)
	mux.HandleFunc("POST /v1/exec", s.handleExec)
	mux.HandleFunc("GET /v1/queuez", s.handleQueuez)
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmitCampaign)
	mux.HandleFunc("GET /v1/campaigns", s.handleListCampaigns)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStreamJobResults)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /v1/jobs/{id}/results", s.handleStreamJobResults)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	mux.HandleFunc("GET /v1/metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /v1/tracez", s.handleTracez)
	return mux
}

// handleCell is the synchronous single-cell path: validate at the
// boundary, rate-limit, then admission → coalesce → pool, answering
// with the served result or a structured rejection.
func (s *Server) handleCell(w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	// Validate before spending any admission budget: a malformed cell
	// must fail with a 400 naming its fields, never deep inside a worker.
	if err := req.CellSpec.Validate(); err != nil {
		writeExecError(w, err)
		return
	}
	if err := s.admitRate(); err != nil {
		writeExecError(w, err)
		return
	}
	// Requests naming a tenant or lane opt into the multi-tenant quota
	// gate: the cell charges the tenant's in-flight quota (429 when
	// over) and interactive-lane cells inherit a placement deadline.
	var deadline time.Time
	if tenant, laneHdr := r.Header.Get(HeaderTenant), r.Header.Get(HeaderLane); tenant != "" || laneHdr != "" {
		lane, err := jobstore.ParseLane(laneHdr)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
			return
		}
		release, err := s.mgr.AdmitCell(tenant)
		if err != nil {
			writeExecError(w, err)
			return
		}
		defer release()
		if lane == jobstore.LaneInteractive {
			deadline = time.Now().Add(s.cfg.InteractiveDeadline)
		}
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	tc, _ := telemetry.TraceFromHeaders(r.Header)
	res, _, err := s.execCellOpts(ctx, req.CellSpec, execOpts{tc: tc, deadline: deadline})
	if err != nil {
		writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleExec is the fleet-internal execution path: a coordinator
// dispatches one cell and receives the cache-entry-level result (digest,
// cached flag, wall time, raw result JSON) so it can store an identical
// cache entry on its side. It shares admission, coalescing, and the pool
// with /v1/cells — hedged duplicates landing on the same worker coalesce
// onto one flight, and a full queue sheds with 429 + Retry-After, which
// is the coordinator's backpressure signal. The token bucket is not
// consulted: the coordinator's per-worker window is the rate control.
func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req CellRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if err := req.CellSpec.Validate(); err != nil {
		writeExecError(w, err)
		return
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	tc, _ := telemetry.TraceFromHeaders(r.Header)
	res, tr, err := s.execCell(ctx, req.CellSpec, false, tc)
	if err != nil {
		writeExecError(w, err)
		return
	}
	if res.Raw == nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: "cell resolved without raw entry"})
		return
	}
	// Ship this request's recorded spans so the coordinator can adopt
	// them as children of its remote span. The Raw struct is shared by
	// every coalesced waiter — attach to a copy, never mutate it.
	out := *res.Raw
	out.Stages = tr.Spans()
	writeJSON(w, http.StatusOK, out)
}

// handleQueuez reports the worker's dispatch-relevant state in one small
// body: queue depth and capacity, in-flight cells, a retry hint, and the
// (model, scale, seed) world identity a coordinator must verify before
// routing cells here.
func (s *Server) handleQueuez(w http.ResponseWriter, r *http.Request) {
	s.fmu.Lock()
	inflight := len(s.flights)
	s.fmu.Unlock()
	writeJSON(w, http.StatusOK, Queuez{
		Draining:      s.Draining(),
		Workers:       s.cfg.Workers,
		QueueCapacity: cap(s.runq),
		QueueLength:   len(s.runq),
		InFlight:      inflight,
		RetryAfterSec: int(s.retryAfter().Seconds()),
		World:         s.suite.World(),
	})
}

// handleSubmitCampaign expands a batch submission into cells and starts
// an asynchronous ephemeral job (dies with the process, like the
// original campaign API); results stream from GET /v1/campaigns/{id}.
func (s *Server) handleSubmitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec expt.CampaignSpec
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &spec); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	cells, err := spec.Expand()
	if err != nil {
		writeExecError(w, err)
		return
	}
	if s.Draining() {
		writeExecError(w, errDraining)
		return
	}
	j, err := s.mgr.Submit(jobstore.JobSpec{
		Tenant: r.Header.Get(HeaderTenant),
		Kind:   spec.Kind,
		Cells:  cells,
	})
	if err != nil {
		writeExecError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, CampaignAccepted{
		ID: j.ID(), Cells: len(cells), Stream: "/v1/campaigns/" + j.ID(),
	})
}

func (s *Server) handleListCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List(""))
}

// handleSubmitJob is the multi-tenant submission path: a campaign
// expansion plus tenant, lane, deadline, and TTL directives. Jobs are
// durable whenever the daemon has a job directory — they survive a
// restart and resume exactly where they stopped.
func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	cells, err := req.CampaignSpec.Expand()
	if err != nil {
		writeExecError(w, err)
		return
	}
	lane, err := jobstore.ParseLane(req.Lane)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: err.Error()})
		return
	}
	if s.Draining() {
		writeExecError(w, errDraining)
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = r.Header.Get(HeaderTenant)
	}
	spec := jobstore.JobSpec{
		Tenant:  tenant,
		Lane:    lane,
		Kind:    req.Kind,
		Cells:   cells,
		TTL:     time.Duration(req.TTLSec) * time.Second,
		Durable: s.durable,
	}
	if req.DeadlineMs > 0 {
		spec.Deadline = time.Now().Add(time.Duration(req.DeadlineMs) * time.Millisecond)
	} else if lane == jobstore.LaneInteractive {
		spec.Deadline = time.Now().Add(s.cfg.InteractiveDeadline)
	}
	j, err := s.mgr.Submit(spec)
	if err != nil {
		writeExecError(w, err)
		return
	}
	st := j.Status()
	writeJSON(w, http.StatusAccepted, JobAccepted{
		ID: j.ID(), Cells: len(cells), Tenant: st.Tenant, Lane: string(st.Lane),
		Durable: s.durable, Stream: "/v1/jobs/" + j.ID() + "/results",
	})
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.Get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown job id"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleDrain asks the supervising process to drain: the handler only
// raises the signal (DrainRequested); the daemon's signal loop runs the
// actual Drain so HTTP shutdown ordering stays in one place.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.RequestDrain()
	writeJSON(w, http.StatusAccepted, Healthz{Status: "draining"})
}

// handleStreamJobResults streams a job's per-cell results as they
// complete, in submission order: NDJSON lines by default, SSE frames
// when the client asks for text/event-stream. Completed lines replay
// first (byte-stable), then the stream follows live completions and
// ends with a status summary.
func (s *Server) handleStreamJobResults(w http.ResponseWriter, r *http.Request) {
	j := s.mgr.Get(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, ErrorResponse{Error: "unknown job id"})
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	writeLine := func(event string, data []byte) {
		if sse {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		} else {
			w.Write(data)
			w.Write([]byte("\n"))
		}
	}

	sent := 0
	for {
		lines, done, wait := j.Next(sent)
		for _, l := range lines {
			writeLine("cell", l)
			sent++
		}
		if done {
			final, _ := json.Marshal(j.Status())
			writeLine("done", final)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, Healthz{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, Healthz{Status: "ok"})
}

// handleMetricsz emits the daemon's metrics in the Prometheus text
// exposition format: the serve-layer counters and latency histogram,
// the campaign engine's cache accounting, and the tracez ring total.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", telemetry.PrometheusContentType)
	_ = telemetry.WritePrometheus(w, s.metricsSnapshot(), "duplexity", nil)
}

// handleTracez reports the most recent cell traces (oldest first) for
// timeline inspection; the duplexityd tracez subcommand renders them as
// text waterfalls.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusOK, Tracez{Disabled: true})
		return
	}
	writeJSON(w, http.StatusOK, Tracez{
		Total:  s.traces.Total(),
		Traces: s.traces.Snapshot(),
	})
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	st := Statz{
		Draining:      s.Draining(),
		Workers:       s.cfg.Workers,
		QueueCapacity: cap(s.runq),
		QueueLength:   len(s.runq),
		Metrics:       s.metricsSnapshot(),
		Jobs:          s.mgr.List(""),
		JobStats:      s.mgr.Stats(),
	}
	if eng := s.suite.Engine(); eng != nil {
		st.Campaign = eng.Stats()
		// Per-cell timings grow without bound in a long-lived daemon;
		// statz reports the aggregate accounting only.
		st.Campaign.Timings = nil
	}
	writeJSON(w, http.StatusOK, st)
}

// Package cpu implements the cycle-level pipeline models used throughout
// the evaluation: a 4-wide out-of-order superscalar engine with SMT
// (Baseline, SMT, SMT+ and the master-core's master-thread mode), and an
// in-order SMT engine (the lender-core's datapath and the master-core's
// filler-thread mode).
//
// The models are cycle-level rather than cycle-accurate: each simulated
// cycle runs commit → complete → issue → dispatch → fetch phases over
// explicit ROB/IQ/LSQ/PRF structures, with latencies fed by the real
// simulated cache, TLB, and branch-predictor state. Branch mispredictions
// are modelled as fetch stalls until the branch resolves plus a redirect
// penalty (no wrong-path execution), which captures the first-order cost
// while keeping the simulator fast enough to sweep the paper's full
// design × workload × load matrix.
package cpu

import "fmt"

// PipelineConfig sizes one core's pipeline. The defaults mirror Table I.
type PipelineConfig struct {
	// Width is fetch/issue/commit width (Table I: 4-wide).
	Width int
	// ROBEntries is reorder-buffer capacity (144), partitioned equally
	// among active threads unless PriorityThread is set.
	ROBEntries int
	// PhysRegs is physical register file capacity (144).
	PhysRegs int
	// IQEntries is the unified issue-queue capacity.
	IQEntries int
	// LQEntries and SQEntries size the load and store queues (48/32).
	LQEntries, SQEntries int
	// Functional-unit counts per cycle.
	IntALUs, LdStPorts, FPUs, Muls int
	// MispredictPenalty is the front-end redirect latency in cycles after
	// a mispredicted branch resolves.
	MispredictPenalty int
	// FetchBufEntries is the per-thread decoupling buffer depth.
	FetchBufEntries int
	// PriorityThread, if >= 0, enables SMT+ policies: that thread gets
	// fetch/issue priority, and other threads are limited to
	// StorageCapFrac of ROB/IQ/LQ/SQ capacity (Section V: 30%).
	PriorityThread int
	// StorageCapFrac caps non-priority threads' storage share.
	StorageCapFrac float64
	// FreqGHz is the core clock, used to convert device ns to cycles.
	FreqGHz float64
}

// TableIConfig returns the Baseline/SMT/master-core configuration:
// 4-wide OoO, 144-entry ROB/PRF, 48-entry LQ, 32-entry SQ.
func TableIConfig() PipelineConfig {
	return PipelineConfig{
		Width:             4,
		ROBEntries:        144,
		PhysRegs:          144,
		IQEntries:         60,
		LQEntries:         48,
		SQEntries:         32,
		IntALUs:           4,
		LdStPorts:         2,
		FPUs:              2,
		Muls:              1,
		MispredictPenalty: 12,
		FetchBufEntries:   16,
		PriorityThread:    -1,
		StorageCapFrac:    1.0,
		FreqGHz:           3.4,
	}
}

// SMTPlusConfig returns the SMT+ design point: thread 0 (the
// latency-critical microservice) is prioritized for bandwidth resources
// and co-runners are limited to 30% of storage resources.
func SMTPlusConfig() PipelineConfig {
	c := TableIConfig()
	c.FreqGHz = 3.35
	c.PriorityThread = 0
	c.StorageCapFrac = 0.30
	return c
}

// Validate reports sizing errors.
func (c PipelineConfig) Validate() error {
	if c.Width <= 0 || c.ROBEntries <= 0 || c.PhysRegs <= 0 || c.IQEntries <= 0 {
		return fmt.Errorf("cpu: non-positive core structure size: %+v", c)
	}
	if c.LQEntries <= 0 || c.SQEntries <= 0 || c.FetchBufEntries <= 0 {
		return fmt.Errorf("cpu: non-positive queue size: %+v", c)
	}
	if c.IntALUs <= 0 || c.LdStPorts <= 0 || c.FPUs <= 0 || c.Muls <= 0 {
		return fmt.Errorf("cpu: need at least one of each functional unit")
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("cpu: negative mispredict penalty")
	}
	if c.PriorityThread >= 0 && (c.StorageCapFrac <= 0 || c.StorageCapFrac > 1) {
		return fmt.Errorf("cpu: storage cap %v outside (0,1]", c.StorageCapFrac)
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("cpu: non-positive frequency")
	}
	return nil
}

// CyclesFromNs converts a nanosecond latency to cycles at freqGHz,
// rounding up (a stall cannot complete mid-cycle).
func CyclesFromNs(ns, freqGHz float64) uint64 {
	c := ns * freqGHz
	u := uint64(c)
	if float64(u) < c {
		u++
	}
	return u
}

// Execution latencies in cycles per op class.
const (
	LatIntAlu = 1
	LatIntMul = 3
	LatFPAlu  = 4
	LatBranch = 1
	LatStore  = 1
)

// WorkSignaler is implemented by request-driven streams that can report
// whether work is available without consuming an instruction. The
// master-core controller uses it to detect idleness and wake-up.
type WorkSignaler interface {
	HasWork(nowCycle uint64) bool
}

package bpred

import (
	"testing"
	"testing/quick"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

func TestCounter2Saturation(t *testing.T) {
	c := counter2(0)
	for i := 0; i < 10; i++ {
		c = c.update(true)
	}
	if c != 3 {
		t.Fatalf("counter did not saturate at 3: %d", c)
	}
	for i := 0; i < 10; i++ {
		c = c.update(false)
	}
	if c != 0 {
		t.Fatalf("counter did not saturate at 0: %d", c)
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	b := NewBimodal(1024)
	pc := uint64(0x400100)
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	if !b.Predict(pc) {
		t.Fatal("bimodal failed to learn always-taken branch")
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, false)
	}
	if b.Predict(pc) {
		t.Fatal("bimodal failed to unlearn")
	}
}

func TestBimodalPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two size accepted")
		}
	}()
	NewBimodal(1000)
}

func TestGShareLearnsPattern(t *testing.T) {
	// A strictly alternating branch is bimodal-hostile but trivially
	// learnable from 1-bit history; gshare must converge on it.
	g := NewGShare(4096)
	pc := uint64(0x400200)
	taken := false
	// Train.
	for i := 0; i < 2000; i++ {
		g.Update(pc, taken)
		taken = !taken
	}
	// Measure.
	correct := 0
	for i := 0; i < 1000; i++ {
		if g.Predict(pc) == taken {
			correct++
		}
		g.Update(pc, taken)
		taken = !taken
	}
	if correct < 950 {
		t.Fatalf("gshare correct on %d/1000 of alternating pattern", correct)
	}
}

func TestTournamentBeatsComponentsOnMixedWorkload(t *testing.T) {
	// Two branch populations: strongly biased (bimodal-friendly) and
	// pattern-based (gshare-friendly). The tournament should approach the
	// better component on each.
	tour := NewTournament(4096, 4096, 4096)
	r := stats.NewRNG(42)
	biasedPC := uint64(0x1000)
	patternPC := uint64(0x2000)
	step := 0
	next := func() (pc uint64, taken bool) {
		step++
		if step%2 == 0 {
			return biasedPC, r.Bernoulli(0.95)
		}
		return patternPC, step%4 < 2
	}
	// Train.
	for i := 0; i < 20000; i++ {
		pc, taken := next()
		tour.Update(pc, taken)
	}
	correct, total := 0, 0
	for i := 0; i < 10000; i++ {
		pc, taken := next()
		if tour.Predict(pc) == taken {
			correct++
		}
		total++
		tour.Update(pc, taken)
	}
	rate := float64(correct) / float64(total)
	if rate < 0.9 {
		t.Fatalf("tournament accuracy %v on mixed workload, want >=0.9", rate)
	}
}

func TestTournamentReset(t *testing.T) {
	tour := NewTournament(1024, 1024, 1024)
	pc := uint64(0x3000)
	for i := 0; i < 100; i++ {
		tour.Update(pc, true)
	}
	if !tour.Predict(pc) {
		t.Fatal("did not learn")
	}
	tour.Reset()
	if tour.Predict(pc) {
		t.Fatal("reset did not clear learned taken bias")
	}
}

func TestStorageBits(t *testing.T) {
	// Table I: tournament = 16K bimodal + 16K gshare + 16K selector,
	// all 2-bit => ~96 Kbit + history.
	tour := NewTournament(16384, 16384, 16384)
	bits := tour.StorageBits()
	if bits < 96*1024 || bits > 97*1024 {
		t.Fatalf("tournament storage = %d bits, want ~98304", bits)
	}
	g := NewGShare(8192)
	if g.StorageBits() < 2*8192 {
		t.Fatal("gshare storage too small")
	}
	if NewBTB(2048).StorageBits() != 2048*97 {
		t.Fatal("BTB storage formula changed unexpectedly")
	}
}

func TestBTB(t *testing.T) {
	b := NewBTB(256)
	if _, hit := b.Lookup(0x100); hit {
		t.Fatal("empty BTB hit")
	}
	b.Update(0x100, 0x900)
	if tgt, hit := b.Lookup(0x100); !hit || tgt != 0x900 {
		t.Fatalf("BTB lookup = %#x,%v", tgt, hit)
	}
	// Conflicting PC evicts (direct-mapped): same index, different tag.
	conflict := uint64(0x100 + 256*4)
	b.Update(conflict, 0xA00)
	if _, hit := b.Lookup(0x100); hit {
		t.Fatal("direct-mapped conflict did not evict")
	}
	b.Reset()
	if _, hit := b.Lookup(conflict); hit {
		t.Fatal("reset did not invalidate")
	}
}

func TestRASLIFO(t *testing.T) {
	r := NewRAS(4)
	if _, ok := r.Pop(); ok {
		t.Fatal("empty RAS popped")
	}
	r.Push(1)
	r.Push(2)
	r.Push(3)
	for want := uint64(3); want >= 1; want-- {
		got, ok := r.Pop()
		if !ok || got != want {
			t.Fatalf("pop = %d,%v want %d", got, ok, want)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("drained RAS popped")
	}
}

func TestRASOverflowWrapsAround(t *testing.T) {
	r := NewRAS(2)
	r.Push(1)
	r.Push(2)
	r.Push(3) // overwrites oldest
	if v, ok := r.Pop(); !ok || v != 3 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if v, ok := r.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("depth tracking broken after wrap")
	}
}

// Property: RAS behaves as a bounded LIFO for sequences shorter than its
// capacity.
func TestRASProperty(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) > 32 {
			vals = vals[:32]
		}
		r := NewRAS(32)
		for _, v := range vals {
			r.Push(v)
		}
		for i := len(vals) - 1; i >= 0; i-- {
			got, ok := r.Pop()
			if !ok || got != vals[i] {
				return false
			}
		}
		_, ok := r.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUnitNonBranchIgnored(t *testing.T) {
	u := NewTableIUnit()
	if u.PredictAndTrain(isa.Instr{Op: isa.OpLoad, PC: 4}) {
		t.Fatal("non-branch reported as mispredict")
	}
	if u.Stats.Branches != 0 {
		t.Fatal("non-branch counted as branch")
	}
}

func TestUnitLearnsLoopBranch(t *testing.T) {
	u := NewTableIUnit()
	in := isa.Instr{Op: isa.OpBranch, PC: 0x400000, Taken: true, Target: 0x400040}
	// First encounter: BTB cold, counted as mispredict once trained taken.
	for i := 0; i < 50; i++ {
		u.PredictAndTrain(in)
	}
	before := u.Stats.Mispredicts
	for i := 0; i < 100; i++ {
		if u.PredictAndTrain(in) {
			t.Fatalf("trained loop branch mispredicted at iter %d", i)
		}
	}
	if u.Stats.Mispredicts != before {
		t.Fatal("mispredict count grew on trained branch")
	}
}

func TestUnitTargetMispredict(t *testing.T) {
	u := NewTableIUnit()
	a := isa.Instr{Op: isa.OpBranch, PC: 0x100, Taken: true, Target: 0x200}
	for i := 0; i < 10; i++ {
		u.PredictAndTrain(a)
	}
	// Same PC, different target: direction correct but target wrong.
	b := a
	b.Target = 0x300
	if !u.PredictAndTrain(b) {
		t.Fatal("changed target not flagged as mispredict")
	}
}

func TestUnitCallReturn(t *testing.T) {
	u := NewTableIUnit()
	call := isa.Instr{Op: isa.OpBranch, PC: 0x100, Taken: true, Target: 0x800, IsCall: true}
	ret := isa.Instr{Op: isa.OpBranch, PC: 0x880, Taken: true, Target: 0x104, IsReturn: true}
	// Warm the BTB for the call.
	u.PredictAndTrain(call)
	u.PredictAndTrain(ret) // RAS has 0x104 pushed: correct return target
	mis := u.Stats.Mispredicts
	u.PredictAndTrain(call)
	if u.PredictAndTrain(ret) {
		t.Fatal("RAS-predicted return mispredicted")
	}
	_ = mis
}

func TestUnitResetClearsStats(t *testing.T) {
	u := NewLenderUnit()
	u.PredictAndTrain(isa.Instr{Op: isa.OpBranch, PC: 0x10, Taken: true, Target: 0x40})
	u.Reset()
	if u.Stats.Branches != 0 || u.Stats.Mispredicts != 0 {
		t.Fatal("reset kept stats")
	}
}

func TestMispredictRate(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("empty stats rate not 0")
	}
	s.Branches = 10
	s.Mispredicts = 3
	if s.MispredictRate() != 0.3 {
		t.Fatalf("rate = %v", s.MispredictRate())
	}
}

package queueing

import (
	"math"
	"testing"

	"duplexity/internal/stats"
)

func TestConfigValidation(t *testing.T) {
	if _, err := Simulate(Config{ArrivalQPS: 0, ServiceUs: stats.Exponential{MeanVal: 1}}); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
	if _, err := Simulate(Config{ArrivalQPS: 1000}); err == nil {
		t.Fatal("missing service distribution accepted")
	}
	// Load exactly 1: unstable.
	if _, err := Simulate(Config{ArrivalQPS: 100_000, ServiceUs: stats.Deterministic{Value: 10}}); err == nil {
		t.Fatal("unit load accepted")
	}
	// Extra pushing load over 1.
	if _, err := Simulate(Config{
		ArrivalQPS: 90_000,
		ServiceUs:  stats.Deterministic{Value: 10},
		ExtraUs:    stats.Deterministic{Value: 2},
	}); err == nil {
		t.Fatal("extra overhead pushing load over 1 accepted")
	}
}

func TestMM1AgainstTheory(t *testing.T) {
	// M/M/1: λ=50K, µ=100K (10µs exponential service) → ρ=0.5.
	cfg := Config{
		ArrivalQPS: 50_000,
		ServiceUs:  stats.Exponential{MeanVal: 10},
		Seed:       42,
	}
	res, err := Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := MM1MeanUs(50_000, 10) // 20µs
	if math.Abs(res.MeanUs-wantMean)/wantMean > 0.05 {
		t.Fatalf("mean sojourn %v µs, theory %v", res.MeanUs, wantMean)
	}
	wantP99 := MM1P99Us(50_000, 10) // ~92.1µs
	if math.Abs(res.P99Us-wantP99)/wantP99 > 0.08 {
		t.Fatalf("p99 %v µs, theory %v", res.P99Us, wantP99)
	}
	if math.Abs(res.Utilization-0.5) > 0.02 {
		t.Fatalf("utilization %v, want 0.5", res.Utilization)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if !(res.P99LoUs <= res.P99Us && res.P99Us <= res.P99HiUs) {
		t.Fatal("CI does not bracket estimate")
	}
}

func TestMDOneBeatsMM1Tail(t *testing.T) {
	// Deterministic service has lower tail than exponential at equal load.
	det, err := Simulate(Config{ArrivalQPS: 50_000, ServiceUs: stats.Deterministic{Value: 10}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Simulate(Config{ArrivalQPS: 50_000, ServiceUs: stats.Exponential{MeanVal: 10}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if det.P99Us >= exp.P99Us {
		t.Fatalf("M/D/1 p99 %v not below M/M/1 %v", det.P99Us, exp.P99Us)
	}
}

func TestTailGrowsWithLoad(t *testing.T) {
	p99 := func(load float64) float64 {
		res, err := Simulate(Config{
			ArrivalQPS: load * 100_000,
			ServiceUs:  stats.Lognormal{MeanVal: 10, CV: 1},
			Seed:       7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.P99Us
	}
	l30, l50, l70 := p99(0.3), p99(0.5), p99(0.7)
	if !(l30 < l50 && l50 < l70) {
		t.Fatalf("p99 not increasing with load: %v %v %v", l30, l50, l70)
	}
	// Queueing amplification: 70% load should be much worse than 30%.
	if l70 < 1.5*l30 {
		t.Fatalf("insufficient tail amplification: %v vs %v", l70, l30)
	}
}

func TestExtraOverheadShiftsLatency(t *testing.T) {
	base, err := Simulate(Config{ArrivalQPS: 30_000, ServiceUs: stats.Deterministic{Value: 10}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	extra, err := Simulate(Config{
		ArrivalQPS: 30_000,
		ServiceUs:  stats.Deterministic{Value: 10},
		ExtraUs:    stats.Deterministic{Value: 5},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if extra.MeanUs < base.MeanUs+4 {
		t.Fatalf("per-request extra not reflected: %v vs %v", extra.MeanUs, base.MeanUs)
	}
}

func TestMaxRequestsBound(t *testing.T) {
	res, err := Simulate(Config{
		ArrivalQPS:   50_000,
		ServiceUs:    stats.Lognormal{MeanVal: 10, CV: 2},
		MaxRequests:  5000,
		MinRequests:  4000,
		TargetRelErr: 0.0001, // unreachable
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("claimed convergence at impossible tolerance")
	}
	if res.Completed > 5100 {
		t.Fatalf("overran MaxRequests: %d", res.Completed)
	}
}

func TestMeanQueueDepthSane(t *testing.T) {
	// Little's law sanity: E[N_wait] = λ * E[W_wait]. At ρ=0.5 M/M/1,
	// waiting time = 10µs → N ≈ 0.5.
	res, err := Simulate(Config{ArrivalQPS: 50_000, ServiceUs: stats.Exponential{MeanVal: 10}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wait := res.MeanUs - 10 // subtract mean service
	littles := 50_000 * wait / 1e6
	if math.Abs(res.MeanQueueDepth-littles)/littles > 0.15 {
		t.Fatalf("queue depth %v violates Little's law (want ~%v)", res.MeanQueueDepth, littles)
	}
}

func TestMM1Helpers(t *testing.T) {
	if !math.IsInf(MM1P99Us(100_000, 10), 1) || !math.IsInf(MM1MeanUs(100_000, 10), 1) {
		t.Fatal("overloaded M/M/1 should be infinite")
	}
	if math.Abs(MM1MeanUs(50_000, 10)-20) > 1e-9 {
		t.Fatal("M/M/1 mean formula wrong")
	}
}

package power

import (
	"math"
	"strings"
	"testing"

	"duplexity/internal/core"
	"duplexity/internal/idle"
)

// Golden chip-power values per design, computed by hand from the
// per-structure area literals and the energy-per-instruction constants.
// These pin the flat (no idle summary) model: any drift here would
// silently re-price every published energy number.
func TestChipPowerGolden(t *testing.T) {
	// 3M OoO + 6M InO instructions over 1ms:
	// dynamic = (3e6·0.45 + 6e6·0.16) nJ / 1ms = 2.31 W exactly.
	act := Activity{Seconds: 1e-3, OoOInstrs: 3_000_000, InOInstrs: 6_000_000}
	const dyn = 2.31
	cases := []struct {
		design core.Design
		chip   float64 // core + lender (5.50) + 2MB LLC (7.80), mm²
	}{
		{core.DesignBaseline, 25.40},
		{core.DesignSMT, 25.50},
		{core.DesignSMTPlus, 25.50},
		{core.DesignMorphCore, 25.70},
		{core.DesignMorphCorePlus, 25.70},
		{core.DesignDuplexity, 26.00},
		{core.DesignDuplexityRepl, 29.78},
	}
	for _, c := range cases {
		want := c.chip*leakWPerMM + dyn
		got, err := ChipPowerW(c.design, act)
		if err != nil {
			t.Fatalf("%v: %v", c.design, err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: chip power %v W, want %v", c.design, got, want)
		}
	}
	// Derived metrics off the same activity, Baseline: 9M instrs at 9 GIPS.
	epi, err := EnergyPerInstrNJ(core.DesignBaseline, act)
	if err != nil {
		t.Fatal(err)
	}
	if want := (25.40*leakWPerMM + dyn) / 9.0; math.Abs(epi-want) > 1e-12 {
		t.Errorf("energy/instr %v nJ, want %v", epi, want)
	}
	pd, err := PerfDensity(core.DesignBaseline, act)
	if err != nil {
		t.Fatal(err)
	}
	if want := 9e9 / 25.40; math.Abs(pd-want)/want > 1e-12 {
		t.Errorf("perf density %v, want %v", pd, want)
	}
}

// With an idle summary attached, leakage is residency-weighted: active
// time and transitions at full power, residency at the state's
// PowerFrac. The weights are exact, so the test pins them exactly.
func TestChipPowerIdleWeighted(t *testing.T) {
	sum := &idle.Summary{
		Governor: idle.GovDeep, IdleUs: 500, Intervals: 10,
		States: []idle.StateResidency{
			{Name: "C6", PowerFrac: 0.05, ResidencyUs: 400, TransitionUs: 100, Entries: 10},
		},
	}
	act := Activity{Seconds: 1e-3, OoOInstrs: 1_000_000, Idle: sum}
	// 1000µs interval: 500 active + 100 transition at full power, 400
	// resident at 5% → weight (500 + 100 + 20)/1000 = 0.62.
	const dyn = 1_000_000 * 0.45 * 1e-9 / 1e-3 // 0.45 W
	want := ChipArea(core.DesignBaseline)*leakWPerMM*0.62 + dyn
	got, err := ChipPowerW(core.DesignBaseline, act)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("idle-weighted power %v W, want %v", got, want)
	}
	flat, err := ChipPowerW(core.DesignBaseline, Activity{Seconds: 1e-3, OoOInstrs: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if got >= flat {
		t.Fatalf("idle residency did not lower power: %v vs flat %v", got, flat)
	}
}

func TestIdlePowerW(t *testing.T) {
	full := ChipArea(core.DesignBaseline) * leakWPerMM
	// No summary (or no idle time): the conservative flat answer.
	if got, err := IdlePowerW(core.DesignBaseline, nil); err != nil || got != full {
		t.Fatalf("nil summary: %v W (err %v), want %v", got, err, full)
	}
	// Pure residency in C6: 5% of full leakage.
	pure := &idle.Summary{Governor: idle.GovDeep, IdleUs: 500, States: []idle.StateResidency{
		{Name: "C6", PowerFrac: 0.05, ResidencyUs: 500},
	}}
	got, err := IdlePowerW(core.DesignBaseline, pure)
	if err != nil {
		t.Fatal(err)
	}
	if want := full * 0.05; math.Abs(got-want) > 1e-12 {
		t.Fatalf("pure C6 residency: %v W, want %v", got, want)
	}
	// All transition time (aborted entries): no savings at all.
	churn := &idle.Summary{Governor: idle.GovDeep, IdleUs: 500, States: []idle.StateResidency{
		{Name: "C6", PowerFrac: 0.05, TransitionUs: 500, Aborted: 50},
	}}
	got, err = IdlePowerW(core.DesignBaseline, churn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-full) > 1e-12 {
		t.Fatalf("transition-only idle: %v W, want full %v", got, full)
	}
	// An inconsistent summary must be rejected, not silently priced.
	bad := &idle.Summary{IdleUs: 500, States: []idle.StateResidency{
		{Name: "C6", PowerFrac: 1.5, ResidencyUs: 500},
	}}
	if _, err := IdlePowerW(core.DesignBaseline, bad); err == nil {
		t.Fatal("power fraction 1.5 accepted")
	}
}

func TestEnergyPerRequestGolden(t *testing.T) {
	act := Activity{Seconds: 1e-3, OoOInstrs: 3_000_000, InOInstrs: 6_000_000}
	got, err := EnergyPerRequestUJ(core.DesignBaseline, act, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// 4.342 W × 1ms / 1000 requests = 4.342 µJ/request.
	if want := 25.40*leakWPerMM + 2.31; math.Abs(got-want) > 1e-9 {
		t.Fatalf("energy/request %v µJ, want %v", got, want)
	}
	if _, err := EnergyPerRequestUJ(core.DesignBaseline, act, 0); err == nil {
		t.Fatal("zero requests accepted")
	}
}

func TestActivityValidateIdle(t *testing.T) {
	// Idle time exceeding the interval is impossible activity.
	over := Activity{Seconds: 1e-3, OoOInstrs: 1, Idle: &idle.Summary{
		IdleUs: 2000, States: []idle.StateResidency{{Name: "C1", PowerFrac: 0.55, ResidencyUs: 2000}},
	}}
	if err := over.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("idle > interval accepted: %v", err)
	}
	// States that don't account for the summary's idle total.
	leaky := Activity{Seconds: 1e-3, OoOInstrs: 1, Idle: &idle.Summary{
		IdleUs: 500, States: []idle.StateResidency{{Name: "C1", PowerFrac: 0.55, ResidencyUs: 100}},
	}}
	if err := leaky.Validate(); err == nil {
		t.Fatal("unaccounted idle time accepted")
	}
	if _, err := ChipPowerW(core.DesignBaseline, leaky); err == nil {
		t.Fatal("ChipPowerW priced an invalid summary")
	}
}

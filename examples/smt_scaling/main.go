// SMT-scaling study (the Figure 1(c) motivation): how many SMT threads
// does a 4-wide OoO core need before throughput saturates, and how do
// µs-scale stalls change the answer? Demonstrates the experiment Suite
// part of the public API.
//
// Run with: go run ./examples/smt_scaling [-scale 0.5]
package main

import (
	"flag"
	"fmt"
	"log"

	"duplexity"
)

func main() {
	scale := flag.Float64("scale", 0.5, "simulation fidelity (1.0 = paper scale)")
	flag.Parse()

	s := duplexity.NewSuite(duplexity.SuiteOptions{Scale: *scale, Seed: 1})

	t, err := s.Fig1c()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t)

	t2, err := s.Fig2a()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(t2)

	fmt.Println(s.Fig2b())

	fmt.Println("Takeaways (Section II-B): a stall-free mix saturates the 4-wide")
	fmt.Println("core around 8 threads; workloads with µs-scale stalls need more")
	fmt.Println("threads, and the InO/OoO issue gap vanishes at ~8 threads —")
	fmt.Println("which is why the lender-core is an 8-way in-order HSMT.")
}

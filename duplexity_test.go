package duplexity

import (
	"testing"

	"duplexity/internal/workload"
)

// The public API integration test: build a Duplexity dyad against the
// McRouter microservice with graph fillers, run it, and check the core
// invariants end to end.
func TestPublicAPIDuplexityDyad(t *testing.T) {
	spec := McRouter()
	master, err := spec.NewMaster(0.5, DesignDuplexity.FreqGHz(), 42)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGraph(2048, 10, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	fillers, _, _, err := FillerSet(g, 32, 9)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDyad(DyadConfig{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: fillers,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Run(1_500_000)
	if d.MasterUtilization() <= 0.05 {
		t.Fatalf("utilization %v too low", d.MasterUtilization())
	}
	if d.Latencies.Count() == 0 {
		t.Fatal("no request latencies recorded")
	}
	if d.BatchRetired() == 0 {
		t.Fatal("fillers made no progress")
	}
}

func TestPublicAPIQueueSim(t *testing.T) {
	res, err := QueueSim(QueueConfig{
		ArrivalQPS: 50_000,
		ServiceUs:  Exponential{MeanVal: 10},
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P99Us <= res.MeanUs {
		t.Fatal("p99 below mean")
	}
}

func TestPublicAPIAnalytic(t *testing.T) {
	if got := ClosedLoopUtilization(1, 1); got != 0.5 {
		t.Fatalf("closed-loop utilization = %v", got)
	}
	p := IdlePeriods{QPS: 200_000, Load: 0.5}
	if p.MeanUs() != 10 {
		t.Fatalf("mean idle = %v", p.MeanUs())
	}
	r := ReadyThreads{Contexts: 21, PStall: 0.5}
	if r.ProbAtLeast(8) < 0.85 {
		t.Fatal("ready-thread model off")
	}
}

func TestPublicAPISuiteAnalyticFigures(t *testing.T) {
	s := NewSuite(SuiteOptions{Scale: 0.05, Seed: 2})
	if s.Fig1a() == nil || s.Fig1b() == nil || s.Fig2b() == nil {
		t.Fatal("analytic figures missing")
	}
	if s.Table1() == nil || s.Table2() == nil {
		t.Fatal("tables missing")
	}
	if len(s.Table2().Rows) != 7 {
		t.Fatal("Table II row count wrong")
	}
}

func TestWorkloadSuiteExposed(t *testing.T) {
	if len(Microservices()) != 5 {
		t.Fatal("workload suite incomplete")
	}
	var _ *workload.Spec = FLANNHA() // aliases stay in sync
	if len(BatchSet(4, 1)) != 4 {
		t.Fatal("batch set sizing wrong")
	}
	if len(AllDesigns) != 7 {
		t.Fatal("design list incomplete")
	}
}

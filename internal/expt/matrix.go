package expt

import (
	"fmt"

	"duplexity/internal/core"
	"duplexity/internal/graphwl"
	"duplexity/internal/isa"
	"duplexity/internal/workload"
)

// Loads are the offered-load levels of the Figure 5 experiments.
var Loads = []float64{0.3, 0.5, 0.7}

// cell is one point of the design × workload × load campaign.
type cell struct {
	design   core.Design
	workload string
	load     float64

	utilization  float64
	seconds      float64
	oooRetired   uint64
	inoRetired   uint64
	batchRetired uint64
	remotesPerS  float64
	requests     uint64
	microP99Us   float64
}

type slowKey struct {
	design   core.Design
	workload string
}

// fillerStreams builds the Section V filler set for one design: 32 BSP
// threads split between PageRank and SSSP over a power-law graph. SMT
// designs additionally get an independent batch thread prepended as the
// co-runner (a tightly barrier-coupled BSP worker pinned to an SMT
// context would spend its life waiting for pool-scheduled job-mates,
// which is a scheduling pathology rather than the co-location the paper
// evaluates).
func (s *Suite) fillerStreams(design core.Design, seed uint64) ([]isa.Stream, error) {
	g, err := graphwl.GenPowerLaw(4096, 12, 0.5, seed)
	if err != nil {
		return nil, err
	}
	streams, _, _, err := graphwl.NewFillerSet(g, 32, seed+1)
	if err != nil {
		return nil, err
	}
	switch design {
	case core.DesignSMT, core.DesignSMTPlus:
		streams = append([]isa.Stream{workload.Batch(seed + 5)}, streams...)
	}
	return streams, nil
}

// runCell simulates one open-loop matrix point.
func (s *Suite) runCell(design core.Design, spec *workload.Spec, load float64) (cell, error) {
	freq := design.FreqGHz()
	master, err := spec.NewMaster(load, freq, s.opts.Seed+uint64(design)*7+uint64(load*100))
	if err != nil {
		return cell{}, err
	}
	batch, err := s.fillerStreams(design, s.opts.Seed+31*uint64(design))
	if err != nil {
		return cell{}, err
	}
	d, err := core.NewDyad(core.Config{
		Design:       design,
		MasterStream: master,
		BatchStreams: batch,
	})
	if err != nil {
		return cell{}, err
	}
	// Budget: enough cycles to observe the idle/stall structure at the
	// lowest load; bounded for smoke runs by Options.Scale.
	budget := s.opts.cycles(3_000_000)
	minRequests := s.opts.requests(60)
	d.Run(budget)
	for d.MasterOoO.ThreadStats(0).RequestsCompleted < minRequests && d.Now() < 4*budget {
		d.Run(budget / 4)
	}

	c := cell{
		design:       design,
		workload:     spec.Name,
		load:         load,
		utilization:  d.MasterUtilization(),
		seconds:      d.Seconds(),
		oooRetired:   d.MasterOoO.Stats.TotalRetired,
		batchRetired: d.BatchRetired(),
		remotesPerS:  float64(d.RemoteOps()) / d.Seconds(),
		requests:     d.MasterOoO.ThreadStats(0).RequestsCompleted,
	}
	c.inoRetired = d.LenderCore.Stats.TotalRetired
	if d.Master != nil {
		c.inoRetired += d.Master.FillerCore().Stats.TotalRetired
	}
	if d.Latencies.Count() > 0 {
		c.microP99Us = d.CyclesToUs(d.Latencies.P99())
	}
	return c, nil
}

// Matrix runs (or returns the memoized) full campaign.
func (s *Suite) Matrix() ([]cell, error) {
	if s.matrixRun {
		return s.matrix, s.matrixErr
	}
	s.matrixRun = true
	for _, design := range core.AllDesigns {
		for _, spec := range workload.Microservices() {
			for _, load := range Loads {
				c, err := s.runCell(design, spec, load)
				if err != nil {
					s.matrixErr = fmt.Errorf("cell %v/%s/%v: %w", design, spec.Name, load, err)
					return nil, s.matrixErr
				}
				s.matrix = append(s.matrix, c)
			}
		}
	}
	return s.matrix, nil
}

// Slowdowns measures each design's service-time inflation per workload
// with a saturated closed-loop run (the Section V methodology: IPC
// slowdowns measured in the cycle-level simulator scale the service
// distribution used by the request-granularity queueing simulation).
func (s *Suite) Slowdowns() (map[slowKey]float64, error) {
	if s.slowdownsRun {
		return s.slowdowns, s.slowdownsErr
	}
	s.slowdownsRun = true
	s.slowdowns = make(map[slowKey]float64)
	s.serviceBase = make(map[string]float64)

	reqTarget := s.opts.requests(150)
	cap := s.opts.cycles(8_000_000)

	measure := func(design core.Design, spec *workload.Spec) (float64, error) {
		closed := workload.NewClosedStream(spec.NewGen(s.opts.Seed + 1013))
		batch, err := s.fillerStreams(design, s.opts.Seed+97*uint64(design))
		if err != nil {
			return 0, err
		}
		d, err := core.NewDyad(core.Config{
			Design:       design,
			MasterStream: closed,
			BatchStreams: batch,
		})
		if err != nil {
			return 0, err
		}
		done := d.RunUntilRequests(reqTarget, cap)
		if done == 0 {
			return 0, fmt.Errorf("no requests completed for %v/%s", design, spec.Name)
		}
		return float64(d.Now()) / float64(done), nil
	}

	for _, spec := range workload.Microservices() {
		base, err := measure(core.DesignBaseline, spec)
		if err != nil {
			s.slowdownsErr = err
			return nil, err
		}
		s.serviceBase[spec.Name] = base
		s.slowdowns[slowKey{core.DesignBaseline, spec.Name}] = 1.0
		for _, design := range core.AllDesigns {
			if design == core.DesignBaseline {
				continue
			}
			svc, err := measure(design, spec)
			if err != nil {
				s.slowdownsErr = err
				return nil, err
			}
			// Frequency-adjust: cycles per request at different clocks.
			slow := (svc / design.FreqGHz()) / (base / core.DesignBaseline.FreqGHz())
			s.slowdowns[slowKey{design, spec.Name}] = slow
		}
	}
	return s.slowdowns, nil
}

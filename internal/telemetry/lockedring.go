package telemetry

import "sync"

// LockedRing is a mutex-guarded Ring for multi-goroutine emitters. The
// plain Ring is unsynchronized by design (the cycle-level simulator is
// one goroutine); the serve path runs many cells concurrently, and a
// shared event buffer there must serialize Emit against wraparound —
// two goroutines racing the overwrite index would interleave torn
// events. LockedRing wraps a Ring with a lock and implements Sink.
type LockedRing struct {
	mu sync.Mutex
	r  *Ring
}

// NewLockedRing builds a concurrency-safe ring holding up to capacity
// events (≤ 0 uses DefaultRingCap).
func NewLockedRing(capacity int) *LockedRing {
	return &LockedRing{r: NewRing(capacity)}
}

// Emit implements Sink.
func (l *LockedRing) Emit(e Event) {
	l.mu.Lock()
	l.r.Emit(e)
	l.mu.Unlock()
}

// Len returns the number of buffered events.
func (l *LockedRing) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Len()
}

// Total returns the number of events ever emitted.
func (l *LockedRing) Total() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Total()
}

// Dropped returns how many events were overwritten by wraparound.
func (l *LockedRing) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Dropped()
}

// Events returns the buffered events oldest-first (a copy).
func (l *LockedRing) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Events()
}

package memsys

import (
	"testing"

	"duplexity/internal/cache"
)

func TestMemLatCycles(t *testing.T) {
	if got := MemLatCycles(3.4); got != 170 {
		t.Fatalf("50ns at 3.4GHz = %d cycles, want 170", got)
	}
	if got := MemLatCycles(3.25); got != 162 {
		t.Fatalf("50ns at 3.25GHz = %d cycles, want 162", got)
	}
}

func TestPortValidate(t *testing.T) {
	if err := (&Port{Name: "x"}).Validate(); err == nil {
		t.Fatal("empty port validated")
	}
	cm := NewTableICoreMem("c0")
	sh := NewTableIShared("chip", 3.4)
	i, d := LocalPorts(cm, sh, cache.OwnerMaster)
	if err := i.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalAccessLatencies(t *testing.T) {
	cm := NewTableICoreMem("c0")
	sh := NewTableIShared("chip", 3.4)
	_, d := LocalPorts(cm, sh, cache.OwnerMaster)

	addr := uint64(0x1000)
	// Cold: TLB miss (page walk) + L1 miss + LLC miss + memory.
	cold := d.Access(tick(), addr, false)
	want := PageWalkLat + L1HitLat + LLCHitLat + sh.MemLat
	if cold != want {
		t.Fatalf("cold access = %d cycles, want %d", cold, want)
	}
	// Warm: L1 hit only.
	if got := d.Access(tick(), addr, false); got != L1HitLat {
		t.Fatalf("warm access = %d cycles, want %d", got, L1HitLat)
	}
	// Evict from L1 but not LLC: L1 miss + LLC hit. Force eviction by
	// filling the set (2-way, 512 sets, stride = 512*64).
	d.Access(tick(), addr+512*64, false)
	d.Access(tick(), addr+2*512*64, false)
	got := d.Access(tick(), addr, false)
	if got != L1HitLat+LLCHitLat {
		t.Fatalf("LLC-hit access = %d cycles, want %d", got, L1HitLat+LLCHitLat)
	}
}

func TestDyadPortLatencies(t *testing.T) {
	lender := NewTableICoreMem("lender")
	sh := NewTableIShared("chip", 3.4)
	l0 := NewL0Pair("m0")
	itlb, dtlb := cache.NewTLB(64), cache.NewTLB(64)
	_, d := DyadPorts(l0, lender, sh, itlb, dtlb)

	addr := uint64(0x2000)
	// Cold read: page walk + L0 lookup + remote hop + L1 + LLC + mem.
	cold := d.Access(tick(), addr, false)
	want := PageWalkLat + L0HitLat + RemoteHopLat + L1HitLat + LLCHitLat + sh.MemLat
	if cold != want {
		t.Fatalf("cold remote access = %d, want %d", cold, want)
	}
	// Second access: L0 hit, 1 cycle.
	if got := d.Access(tick(), addr, false); got != L0HitLat {
		t.Fatalf("L0 hit = %d, want %d", got, L0HitLat)
	}
	// A write is write-through: L0 latency + remote hop, and lands in L1.
	wlat := d.Access(tick(), addr, true)
	if wlat != L0HitLat+RemoteHopLat {
		t.Fatalf("write-through latency = %d, want %d", wlat, L0HitLat+RemoteHopLat)
	}
	if !lender.L1D.Contains(addr) {
		t.Fatal("write-through did not reach lender L1")
	}
}

func TestDyadBackInvalidation(t *testing.T) {
	lender := NewTableICoreMem("lender")
	sh := NewTableIShared("chip", 3.4)
	l0 := NewL0Pair("m0")
	_, d := DyadPorts(l0, lender, sh, cache.NewTLB(64), cache.NewTLB(64))

	addr := uint64(0x3000)
	d.Access(tick(), addr, false)
	if !l0.D.Contains(addr) {
		t.Fatal("L0 not filled")
	}
	// Force the lender L1 to evict addr's line: fill its set.
	// L1D: 64KB/64B/2-way = 512 sets; stride 512*64 = 32768.
	lender.L1D.Access(addr+32768, false, cache.OwnerFiller)
	lender.L1D.Access(addr+2*32768, false, cache.OwnerFiller)
	if lender.L1D.Contains(addr) {
		t.Fatal("L1 line not evicted by set fill")
	}
	if l0.D.Contains(addr) {
		t.Fatal("L0 kept line after lender L1 eviction (inclusion broken)")
	}
}

func TestFillerDoesNotTouchMasterCaches(t *testing.T) {
	// The Duplexity wiring must leave a master-core's own CoreMem
	// untouched when fillers access the lender path.
	master := NewTableICoreMem("master")
	lender := NewTableICoreMem("lender")
	sh := NewTableIShared("chip", 3.4)
	l0 := NewL0Pair("m0")
	_, d := DyadPorts(l0, lender, sh, cache.NewTLB(64), cache.NewTLB(64))

	for a := uint64(0); a < 1<<16; a += 64 {
		d.Access(tick(), a, false)
	}
	if master.L1D.Stats.TotalAccesses() != 0 {
		t.Fatal("filler path touched master L1D")
	}
	if master.DTLB.Accesses != 0 {
		t.Fatal("filler path touched master DTLB")
	}
	if lender.L1D.Stats.Accesses[cache.OwnerFiller] == 0 {
		t.Fatal("filler path did not reach lender L1D")
	}
}

func TestSharedLLCPollution(t *testing.T) {
	// Master and filler share the LLC; filler streaming must evict master
	// lines — the residual interference Duplexity tolerates (it protects
	// L1/TLB/predictor, not the LLC).
	cm := NewTableICoreMem("c0")
	sh := NewTableIShared("chip", 3.4)
	_, dm := LocalPorts(cm, sh, cache.OwnerMaster)
	lender := NewTableICoreMem("lender")
	l0 := NewL0Pair("m0")
	_, df := DyadPorts(l0, lender, sh, cache.NewTLB(64), cache.NewTLB(64))

	dm.Access(tick(), 0x100, false)
	if !sh.LLC.Contains(0x100) {
		t.Fatal("master line not in LLC")
	}
	// Stream 4MB of filler data through the LLC.
	for a := uint64(1 << 22); a < 5<<22; a += 64 {
		df.Access(tick(), a, false)
	}
	if sh.LLC.Contains(0x100) {
		t.Fatal("LLC line survived 4MB streaming — LLC model broken")
	}
	if sh.LLC.Stats.CrossEvictions == 0 {
		t.Fatal("no cross-owner evictions recorded in LLC")
	}
}

// tnow provides monotonically increasing access timestamps so the miss-
// bandwidth model does not queue unrelated test accesses.
var tnow uint64

func tick() uint64 {
	tnow += 1000
	return tnow
}

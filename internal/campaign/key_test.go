package campaign

import "testing"

// The cache address of a governor-free key is pinned byte-for-byte: the
// idle-governor field must never perturb legacy digests (a cache full
// of months-old cells would silently resimulate), and any change to the
// canonical encoding must be a deliberate ModelVersion-style decision,
// not an accident. The hex below was produced by this exact key when
// the Governor field was introduced.
func TestLegacyDigestPinned(t *testing.T) {
	k := Key{
		Kind: "matrix", Model: "hpca19-duplexity-v1", Design: "Duplexity",
		Workload: "RSC", Spec: "0123456789abcdef", Load: 0.5, Scale: 1, Seed: 1,
	}
	const pinned = "9ea5cad8adc4cd21c77267efdfc7c9e751eeaaf5b7133e25179fcec9ce051063"
	if got := k.Digest(); got != pinned {
		t.Fatalf("legacy digest drifted:\n got %s\nwant %s", got, pinned)
	}
}

// A zero Lambda must leave every legacy digest untouched — like
// Governor, the field is omitted from the canonical encoding when zero,
// so caches written before the arrival-rate field existed keep hitting.
func TestLambdaZeroKeepsLegacyDigest(t *testing.T) {
	k := Key{
		Kind: "matrix", Model: "hpca19-duplexity-v1", Design: "Duplexity",
		Workload: "RSC", Spec: "0123456789abcdef", Load: 0.5, Scale: 1, Seed: 1,
	}
	withField := k
	withField.Lambda = 0
	if got, want := withField.Digest(), k.Digest(); got != want {
		t.Fatalf("zero Lambda perturbed the digest: %s != %s", got, want)
	}
	const pinned = "9ea5cad8adc4cd21c77267efdfc7c9e751eeaaf5b7133e25179fcec9ce051063"
	if got := withField.Digest(); got != pinned {
		t.Fatalf("legacy digest drifted:\n got %s\nwant %s", got, pinned)
	}
}

// Golden pins for both layers of the two-phase cache split: a phase-1
// micro-sim key (the load-free slowdown cell) and a phase-2 queueing
// key (a tail cell with an explicit arrival rate). Drift in either
// means warm caches stop hitting — change them only with a deliberate
// ModelVersion-style decision.
func TestTwoPhaseDigestsPinned(t *testing.T) {
	phase1 := Key{
		Kind: "slowdown", Model: "hpca19-duplexity-v1", Design: "Duplexity",
		Workload: "RSC", Spec: "0123456789abcdef", Scale: 1, Seed: 1,
	}
	const pinned1 = "5f9ef7062f0018cfd12b2f79decd62f708ad90c16a2eca521e00790c01b6f98b"
	if got := phase1.Digest(); got != pinned1 {
		t.Fatalf("phase-1 (micro-sim) digest drifted:\n got %s\nwant %s", got, pinned1)
	}
	phase2 := Key{
		Kind: "tail", Model: "hpca19-duplexity-v1", Design: "Duplexity",
		Workload: "RSC", Spec: "0123456789abcdef", Load: 0.5, Lambda: 120000, Scale: 1, Seed: 1,
	}
	const pinned2 = "3d1f2705e93ac7dfd4d56f486d48d23e5763fd55f2cf28eeb0a983d7df2e350d"
	if got := phase2.Digest(); got != pinned2 {
		t.Fatalf("phase-2 (queueing) digest drifted:\n got %s\nwant %s", got, pinned2)
	}
}

// Distinct arrival rates are distinct cells: the Figure 5(e)
// density-scaled sweep keys on Lambda.
func TestLambdaExtendsDigest(t *testing.T) {
	base := Key{
		Kind: "tail", Model: "m", Design: "Duplexity",
		Workload: "RSC", Spec: "s", Load: 0.5, Scale: 1, Seed: 1,
	}
	seen := map[string]float64{base.Digest(): 0}
	for _, l := range []float64{1, 120000, 120000.5, 240000} {
		k := base
		k.Lambda = l
		d := k.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("lambda %v collides with %v", l, prev)
		}
		seen[d] = l
	}
}

// A non-empty governor extends the digest (distinct cells), and every
// governor gets its own address.
func TestGovernorExtendsDigest(t *testing.T) {
	base := Key{
		Kind: "energyprop", Model: "m", Design: "Baseline",
		Workload: "RSC", Spec: "s", Load: 0.5, Scale: 1, Seed: 1,
	}
	seen := map[string]string{base.Digest(): "(none)"}
	for _, gov := range []string{"shallow", "deep", "agile", "adaptive", "fill"} {
		k := base
		k.Governor = gov
		d := k.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("governor %q collides with %q", gov, prev)
		}
		seen[d] = gov
	}
}

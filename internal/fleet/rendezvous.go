package fleet

import (
	"hash/fnv"
	"sort"
)

// rendezvousScore is the highest-random-weight score of (digest,
// worker): FNV-1a over the cell's SHA-256 digest and the worker's name,
// separated so "ab"+"c" and "a"+"bc" never collide. Every coordinator
// computes the same ranking from the same member list, with no shared
// state and no ring to rebalance — and when a worker leaves, only the
// cells it owned move, so the surviving workers' disk caches stay hot.
func rendezvousScore(digest, worker string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(digest))
	h.Write([]byte{0})
	h.Write([]byte(worker))
	return h.Sum64()
}

// rankWorkers orders workers by descending rendezvous score for a
// digest (ties broken by name for determinism). Index 0 is the cell's
// home worker; later indexes are the hedge/retry order.
func rankWorkers(digest string, workers []*worker) []*worker {
	ranked := append([]*worker(nil), workers...)
	sort.SliceStable(ranked, func(i, j int) bool {
		si, sj := rendezvousScore(digest, ranked[i].name), rendezvousScore(digest, ranked[j].name)
		if si != sj {
			return si > sj
		}
		return ranked[i].name < ranked[j].name
	})
	return ranked
}

package expt

import (
	"strconv"
	"strings"
	"testing"
)

func parse(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "x", Columns: []string{"a", "bb"}}
	tb.AddRow("1", "2")
	tb.Notes = append(tb.Notes, "n")
	s := tb.String()
	for _, want := range []string{"== x ==", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || o.Seed != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if got := (Options{Scale: 0.0001}).withDefaults().cycles(3_000_000); got != 200_000 {
		t.Fatalf("cycle floor = %d", got)
	}
	if got := (Options{Scale: 0.0001}).withDefaults().requests(100); got != 20 {
		t.Fatalf("request floor = %d", got)
	}
}

func TestFig1aShape(t *testing.T) {
	s := NewSuite(Options{Scale: 0.05})
	tb := s.Fig1a()
	if len(tb.Rows) != 7 || len(tb.Columns) != 8 {
		t.Fatalf("Fig1a dims %dx%d", len(tb.Rows), len(tb.Columns))
	}
	// Diagonal (stall == compute) is always 0.5.
	for i, row := range tb.Rows {
		if v := parse(t, row[i+1]); v != 0.5 {
			t.Fatalf("diagonal cell %d = %v", i, v)
		}
	}
	// Monotone down the stall axis.
	for j := 1; j < len(tb.Columns); j++ {
		for i := 1; i < len(tb.Rows); i++ {
			if parse(t, tb.Rows[i][j]) > parse(t, tb.Rows[i-1][j]) {
				t.Fatal("utilization increased with longer stalls")
			}
		}
	}
}

func TestFig1bShape(t *testing.T) {
	tb := NewSuite(Options{Scale: 0.05}).Fig1b()
	if len(tb.Rows) != 6 {
		t.Fatalf("Fig1b rows = %d", len(tb.Rows))
	}
	// CDFs are monotone in x and bounded by 1.
	for _, row := range tb.Rows {
		prev := -1.0
		for _, cell := range row[1:] {
			v := parse(t, cell)
			if v < prev || v > 1 {
				t.Fatalf("CDF row %q not monotone in [0,1]", row[0])
			}
			prev = v
		}
	}
	// Paper anchors appear in the row labels.
	if !strings.Contains(tb.Rows[1][0], "mean 10.0µs") {
		t.Fatalf("200K@50%% mean idle label wrong: %q", tb.Rows[1][0])
	}
}

func TestFig2bShape(t *testing.T) {
	tb := NewSuite(Options{Scale: 0.05}).Fig2b()
	// Monotone in contexts for both stall rates; endpoint values sane.
	for col := 1; col <= 2; col++ {
		prev := -1.0
		for _, row := range tb.Rows {
			v := parse(t, row[col])
			if v < prev {
				t.Fatal("P(>=8 ready) not monotone in contexts")
			}
			prev = v
		}
	}
	last := tb.Rows[len(tb.Rows)-1]
	if parse(t, last[1]) < 0.999 {
		t.Fatal("32 contexts at 10% stall should be ~certain")
	}
	if !strings.Contains(tb.Notes[0], "p=0.5 -> 21") {
		t.Fatalf("min-context note wrong: %q", tb.Notes[0])
	}
}

func TestTable1And2(t *testing.T) {
	s := NewSuite(Options{Scale: 0.05})
	if got := len(s.Table1().Rows); got != 8 {
		t.Fatalf("Table I rows = %d", got)
	}
	t2 := s.Table2()
	if got := len(t2.Rows); got != 7 {
		t.Fatalf("Table II rows = %d", got)
	}
	// Spot-check the calibrated areas against the paper.
	if v := parse(t, t2.Rows[0][1]); v < 11.8 || v > 12.4 {
		t.Fatalf("baseline area %v, want ~12.1", v)
	}
	if v := parse(t, t2.Rows[5][1]); v < 5.2 || v > 5.8 {
		t.Fatalf("lender area %v, want ~5.5", v)
	}
}

func TestWorkloadsTable(t *testing.T) {
	tb := NewSuite(Options{Scale: 0.05}).Workloads()
	if len(tb.Rows) != 5 {
		t.Fatalf("workloads rows = %d", len(tb.Rows))
	}
}

// TestFig1cShape runs the cycle-level SMT scaling study at smoke scale
// and checks the paper's qualitative claims.
func TestFig1cShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level experiment")
	}
	if raceEnabled {
		t.Skip("cycle-level experiment too slow under -race")
	}
	s := NewSuite(Options{Scale: 0.2, Seed: 3})
	tb, err := s.Fig1c()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	last := len(tb.Columns) - 1
	for _, row := range tb.Rows {
		one := parse(t, row[1])
		sixteen := parse(t, row[last])
		if sixteen < 2*one {
			t.Fatalf("%s: no SMT scaling (%v -> %v)", row[0], one, sixteen)
		}
	}
	// µs-scale stalls demand more threads: at 8 threads FLANN-1-1 must
	// trail the stall-free baseline.
	base8 := parse(t, tb.Rows[0][5])
	f11at8 := parse(t, tb.Rows[3][5])
	if f11at8 >= base8 {
		t.Fatalf("FLANN-1-1 at 8t (%v) not below baseline (%v)", f11at8, base8)
	}
}

// TestFig2aShape checks the InO/OoO convergence claim.
func TestFig2aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level experiment")
	}
	if raceEnabled {
		t.Skip("cycle-level experiment too slow under -race")
	}
	s := NewSuite(Options{Scale: 0.2, Seed: 3})
	tb, err := s.Fig2a()
	if err != nil {
		t.Fatal(err)
	}
	oooRow, inoRow := tb.Rows[0], tb.Rows[1]
	gap1 := parse(t, oooRow[1]) / parse(t, inoRow[1])
	gap8 := parse(t, oooRow[len(oooRow)-1]) / parse(t, inoRow[len(inoRow)-1])
	if gap1 < 1.3 {
		t.Fatalf("single-thread OoO/InO gap %v too small", gap1)
	}
	if gap8 > 1.25 {
		t.Fatalf("8-thread OoO/InO gap %v did not vanish", gap8)
	}
}

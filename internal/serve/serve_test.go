package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// readStream fetches a campaign's NDJSON stream to completion and
// returns the raw cell lines plus the final status line.
func readStream(t *testing.T, url string) (cells [][]byte, final JobStatus) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream %s = %d", url, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lines [][]byte
	for sc.Scan() {
		lines = append(lines, append([]byte(nil), sc.Bytes()...))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatalf("empty stream from %s", url)
	}
	if err := json.Unmarshal(lines[len(lines)-1], &final); err != nil {
		t.Fatalf("final status line: %v (%s)", err, lines[len(lines)-1])
	}
	return lines[:len(lines)-1], final
}

// TestE2EServeCampaignBitIdentical drives the real simulator end to
// end: the same small fig5 matrix submitted twice concurrently must
// execute each cell exactly once (coalesced), stream byte-identical
// results to both submitters, and land every cell in the shared
// journal.
func TestE2EServeCampaignBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 42, Workers: 1, CacheDir: dir})
	s, ts := newTestServer(t, Config{Suite: suite, Workers: 2, QueueDepth: 16}, nil)

	// Gate the real runner so both submissions are in the house before
	// any cell finishes — the duplicate MUST coalesce, deterministically.
	gate := make(chan struct{})
	s.run = func(cs expt.CellSpec, tr *telemetry.CellTrace, _ time.Time) (expt.ServedResult, error) {
		<-gate
		return suite.RunServedTraced(cs, tr)
	}

	spec := expt.CampaignSpec{
		Kind:      expt.CampaignFig5,
		Designs:   []string{"Baseline", "Duplexity"},
		Workloads: []string{"RSC"},
		Loads:     []float64{0.3},
	}
	var ids []string
	for i := 0; i < 2; i++ {
		status, _, body := postJSON(t, ts.URL+"/v1/campaigns", spec)
		if status != http.StatusAccepted {
			t.Fatalf("submission %d = %d (%s)", i, status, body)
		}
		var acc CampaignAccepted
		if err := json.Unmarshal(body, &acc); err != nil {
			t.Fatal(err)
		}
		if acc.Cells != 2 {
			t.Fatalf("expanded to %d cells, want 2", acc.Cells)
		}
		ids = append(ids, acc.ID)
	}
	// Every duplicate cell must have joined its leader's flight.
	pollStatz(t, ts.URL, "2 coalesce hits", func(st Statz) bool { return counter(st, "serve.coalesce.hits") == 2 })
	close(gate)

	lines1, final1 := readStream(t, ts.URL+"/v1/campaigns/"+ids[0])
	lines2, final2 := readStream(t, ts.URL+"/v1/campaigns/"+ids[1])
	if final1.Completed != 2 || final2.Completed != 2 || final1.Failed+final2.Failed != 0 {
		t.Fatalf("jobs did not complete cleanly: %+v / %+v", final1, final2)
	}
	if len(lines1) != 2 || len(lines2) != 2 {
		t.Fatalf("stream lengths %d/%d, want 2/2", len(lines1), len(lines2))
	}
	for i := range lines1 {
		if !bytes.Equal(lines1[i], lines2[i]) {
			t.Errorf("duplicate submissions diverge at line %d:\n%s\n%s", i, lines1[i], lines2[i])
		}
	}

	st := pollStatz(t, ts.URL, "4 completions", func(st Statz) bool { return counter(st, "serve.cells.completed") == 2 })
	if got := counter(st, "serve.coalesce.leaders"); got != 2 {
		t.Errorf("leaders = %d, want 2 (each unique cell simulated once)", got)
	}
	if st.Campaign.Misses != 2 {
		t.Errorf("engine misses = %d, want 2", st.Campaign.Misses)
	}

	// The journal holds exactly the two executed cells, none incomplete.
	entries, err := campaign.ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal entries = %d, want 2: %+v", len(entries), entries)
	}
	for _, e := range entries {
		if e.Status != "" {
			t.Errorf("journal entry %s has status %q, want complete", e.Digest, e.Status)
		}
	}

	// A repeat submission is now answered from the content-addressed
	// cache: byte-identical lines again, zero new simulations.
	status, _, body := postJSON(t, ts.URL+"/v1/campaigns", spec)
	if status != http.StatusAccepted {
		t.Fatalf("warm submission = %d (%s)", status, body)
	}
	var acc CampaignAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	lines3, final3 := readStream(t, ts.URL+"/v1/campaigns/"+acc.ID)
	if final3.Completed != 2 {
		t.Fatalf("warm job: %+v", final3)
	}
	for i := range lines3 {
		var warm, cold CellLine
		if err := json.Unmarshal(lines3[i], &warm); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(lines1[i], &cold); err != nil {
			t.Fatal(err)
		}
		if !warm.Result.Cached {
			t.Errorf("warm line %d not served from cache", i)
		}
		if warm.Result.Digest != cold.Result.Digest {
			t.Errorf("warm digest %s != cold digest %s", warm.Result.Digest, cold.Result.Digest)
		}
		warm.Result.Cached = cold.Result.Cached
		wb, _ := json.Marshal(warm)
		cb, _ := json.Marshal(cold)
		if !bytes.Equal(wb, cb) {
			t.Errorf("warm result diverges from cold at line %d:\n%s\n%s", i, wb, cb)
		}
	}
	st = pollStatz(t, ts.URL, "cache hits", func(st Statz) bool { return counter(st, "serve.cells.cache_hits") == 2 })
	if st.Campaign.Misses != 2 {
		t.Errorf("warm replay re-simulated: misses = %d, want still 2", st.Campaign.Misses)
	}
}

// TestE2EDrainCompletesInflight drives the real simulator and verifies
// a graceful drain: the in-flight cell finishes (journal-verified, zero
// lost cells) and the checkpoint records an unclean stop.
func TestE2EDrainCompletesInflight(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 7, Workers: 1, CacheDir: dir})
	s, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 4}, nil)

	spec := expt.CampaignSpec{
		Kind:      expt.CampaignFig5,
		Designs:   []string{"Baseline"},
		Workloads: []string{"RSC"},
		Loads:     []float64{0.5},
	}
	status, _, body := postJSON(t, ts.URL+"/v1/campaigns", spec)
	if status != http.StatusAccepted {
		t.Fatalf("submission = %d (%s)", status, body)
	}
	var acc CampaignAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	// Wait for the cell to be admitted so the drain genuinely races a
	// running simulation rather than an empty queue.
	pollStatz(t, ts.URL, "cell admitted", func(st Statz) bool { return counter(st, "serve.admitted") == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	_, final := readStream(t, ts.URL+"/v1/campaigns/"+acc.ID)
	if !final.Done || final.Completed != 1 || final.Cancelled != 0 {
		t.Fatalf("drain lost in-flight work: %+v", final)
	}

	cp, err := campaign.ReadCheckpoint(dir)
	if err != nil || cp == nil {
		t.Fatalf("no checkpoint after drain: %v, %v", cp, err)
	}
	if cp.Clean {
		t.Error("drain checkpoint marked clean")
	}
	entries, err := campaign.ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Status != "" {
		t.Fatalf("journal does not show the drained cell as complete: %+v", entries)
	}
}

// Package sched implements the OS/cluster-level policy questions of
// Section IV: how many virtual contexts to provision per dyad, and how
// to adapt that number to measured stall behaviour. A dyad appears to
// software as a variable number of hardware threads; this package is the
// "data-center-scale scheduling layer" stand-in that picks the number.
package sched

import (
	"fmt"

	"duplexity/internal/analytic"
)

// PhysicalContexts is the lender-core's physical context count; the
// master-core can host the same number when morphed.
const PhysicalContexts = 8

// MaxContexts bounds provisioning: Section IV finds 32 virtual contexts
// per dyad sufficient even in the most pessimistic scenarios.
const MaxContexts = 32

// Demand describes a dyad's thread population for provisioning.
type Demand struct {
	// BatchStallFrac is the fraction of time a batch thread spends in
	// µs-scale stalls (0 for stall-free batch work).
	BatchStallFrac float64
	// MasterBorrows reports whether the master-core's µs-scale holes are
	// to be filled (i.e. the latency-critical thread stalls or idles and
	// fillers run on both cores of the dyad).
	MasterBorrows bool
	// Target is the desired probability that enough ready contexts exist
	// to fill all schedulable physical contexts (default 0.9).
	Target float64
}

// Validate reports bad parameters.
func (d Demand) Validate() error {
	if d.BatchStallFrac < 0 || d.BatchStallFrac >= 1 {
		return fmt.Errorf("sched: batch stall fraction %v outside [0,1)", d.BatchStallFrac)
	}
	if d.Target < 0 || d.Target >= 1 {
		return fmt.Errorf("sched: target %v outside [0,1)", d.Target)
	}
	return nil
}

// Contexts returns the number of virtual contexts to provision for the
// dyad, reproducing Section IV's sizing rules:
//
//   - stall-free batch threads: one per schedulable physical context
//     (8 for the lender alone, 16 when the master borrows);
//   - stalling batch threads: the binomial model's minimum pool keeping
//     the physical contexts fed with probability Target, capped at 32.
func Contexts(d Demand) (int, error) {
	if err := d.Validate(); err != nil {
		return 0, err
	}
	target := d.Target
	if target == 0 {
		target = 0.9
	}
	phys := PhysicalContexts
	if d.MasterBorrows {
		phys = 2 * PhysicalContexts
	}
	if d.BatchStallFrac == 0 {
		return phys, nil
	}
	n := analytic.MinContextsFor(phys, d.BatchStallFrac, target, MaxContexts)
	if n > MaxContexts {
		n = MaxContexts
	}
	return n, nil
}

// Observer estimates a thread population's stall fraction from counters
// a running dyad already exposes (cycles blocked on remotes vs total),
// smoothing with an exponential moving average so the provisioner does
// not chase noise.
type Observer struct {
	alpha    float64
	estimate float64
	seeded   bool
}

// NewObserver builds an observer; alpha in (0,1] is the EMA weight of
// each new sample (e.g. 0.2).
func NewObserver(alpha float64) (*Observer, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, fmt.Errorf("sched: EMA weight %v outside (0,1]", alpha)
	}
	return &Observer{alpha: alpha}, nil
}

// Record folds in one measurement window: stalledCycles of blockedTime
// across totalCycles of thread-occupancy.
func (o *Observer) Record(stalledCycles, totalCycles uint64) error {
	if totalCycles == 0 {
		return fmt.Errorf("sched: empty measurement window")
	}
	if stalledCycles > totalCycles {
		return fmt.Errorf("sched: stalled %d > total %d", stalledCycles, totalCycles)
	}
	sample := float64(stalledCycles) / float64(totalCycles)
	if !o.seeded {
		o.estimate = sample
		o.seeded = true
		return nil
	}
	o.estimate = o.alpha*sample + (1-o.alpha)*o.estimate
	return nil
}

// StallFrac returns the smoothed stall-fraction estimate.
func (o *Observer) StallFrac() float64 { return o.estimate }

// Recommend turns the current estimate into a provisioning decision.
func (o *Observer) Recommend(masterBorrows bool, target float64) (int, error) {
	return Contexts(Demand{
		BatchStallFrac: o.estimate,
		MasterBorrows:  masterBorrows,
		Target:         target,
	})
}

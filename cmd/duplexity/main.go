// Command duplexity regenerates the paper's tables and figures.
//
// Usage:
//
//	duplexity [-scale f] [-seed n] <experiment>...
//
// Experiments: fig1a fig1b fig1c fig2a fig2b table1 table2 fig5a fig5b
// fig5c fig5d fig5e fig5f fig6 workloads slowdowns all motivation
//
// -scale 1.0 reproduces the paper-scale campaign (minutes of CPU);
// smaller values trade fidelity for time.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"duplexity"
)

func main() {
	scale := flag.Float64("scale", 1.0, "simulation fidelity (1.0 = paper scale)")
	seed := flag.Uint64("seed", 1, "campaign seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: duplexity [-scale f] [-seed n] <experiment>...\n")
		fmt.Fprintf(os.Stderr, "experiments: fig1a fig1b fig1c fig2a fig2b table1 table2\n")
		fmt.Fprintf(os.Stderr, "             fig5a fig5b fig5c fig5d fig5e fig5f fig6\n")
		fmt.Fprintf(os.Stderr, "             workloads slowdowns motivation all\n")
		fmt.Fprintf(os.Stderr, "             ablation-contexts ablation-restart ablation-l0\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	s := duplexity.NewSuite(duplexity.SuiteOptions{Scale: *scale, Seed: *seed})

	static := map[string]func() *duplexity.Table{
		"fig1a":     s.Fig1a,
		"fig1b":     s.Fig1b,
		"fig2b":     s.Fig2b,
		"table1":    s.Table1,
		"table2":    s.Table2,
		"workloads": s.Workloads,
	}
	dynamic := map[string]func() (*duplexity.Table, error){
		"fig1c":     s.Fig1c,
		"fig2a":     s.Fig2a,
		"fig5a":     s.Fig5a,
		"fig5b":     s.Fig5b,
		"fig5c":     s.Fig5c,
		"fig5d":     s.Fig5d,
		"fig5e":     s.Fig5e,
		"fig5f":     s.Fig5f,
		"fig6":      s.Fig6,
		"slowdowns": s.ServiceSlowdowns,
		// Ablation studies of Duplexity's design choices (not paper figures).
		"ablation-contexts": s.AblationVirtualContexts,
		"ablation-restart":  s.AblationRestartLatency,
		"ablation-l0":       s.AblationL0,
	}
	order := []string{
		"table1", "table2", "workloads",
		"fig1a", "fig1b", "fig1c", "fig2a", "fig2b",
		"slowdowns", "fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig6",
		"ablation-contexts", "ablation-restart", "ablation-l0",
	}
	motivation := []string{"fig1a", "fig1b", "fig1c", "fig2a", "fig2b"}

	var names []string
	for _, arg := range flag.Args() {
		switch arg {
		case "all":
			names = append(names, order...)
		case "motivation":
			names = append(names, motivation...)
		default:
			names = append(names, arg)
		}
	}
	for _, name := range names {
		start := time.Now()
		switch {
		case static[name] != nil:
			fmt.Println(static[name]())
		case dynamic[name] != nil:
			t, err := dynamic[name]()
			if err != nil {
				fmt.Fprintf(os.Stderr, "duplexity: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Println(t)
		default:
			fmt.Fprintf(os.Stderr, "duplexity: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Printf("(%s took %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

package cpu

import (
	"fmt"

	"duplexity/internal/bpred"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/telemetry"
)

// RemoteAction tells the engine how an issued remote operation will be
// handled.
type RemoteAction int

const (
	// RemoteBlock leaves the thread resident and blocked until the
	// remote operation completes (Baseline/SMT behaviour).
	RemoteBlock RemoteAction = iota
	// RemoteHandled means an external scheduler (HSMT pool or morph
	// controller) takes over: the engine takes no further action for the
	// slot, and the scheduler will typically swap the context out.
	RemoteHandled
)

// InOSlot is one physical context of the in-order SMT datapath.
type InOSlot struct {
	stream isa.Stream
	active bool

	buf        []isa.Instr
	regReadyAt [isa.NumArchRegs]uint64
	// headWakeAt caches the cycle at which the head instruction's sources
	// become ready; the issue loop skips the slot until then. Reset to 0
	// whenever the head changes.
	headWakeAt    uint64
	fetchResumeAt uint64
	// fetchBlocked latches fetch off between a mispredicted branch's
	// fetch and its issue (resolution); the redirect penalty is charged
	// when the branch issues.
	fetchBlocked bool
	// unavailableUntil models context swap-in latency.
	unavailableUntil uint64
	// blockedUntil is the completion time of an engine-managed remote op.
	blockedUntil uint64
	lastLine     uint64

	Stats ThreadStats
}

// Active reports whether a context is bound to the slot.
func (s *InOSlot) Active() bool { return s.active }

// Blocked reports whether the slot is blocked on a remote op at now.
func (s *InOSlot) Blocked(now uint64) bool { return s.blockedUntil > now }

// InOCore is the in-order SMT datapath of Table I's lender-core: 8
// physical contexts, 4-wide issue, round-robin fetch, shared gshare
// predictor and shared L1 ports. It is also the master-core's
// filler-thread engine (with dyad remote ports substituted).
type InOCore struct {
	cfg   PipelineConfig
	iport *memsys.Port
	dport *memsys.Port
	pred  *bpred.Unit

	slots   []*InOSlot
	fetchRR int
	issueRR int

	Stats CoreStats

	// OnRemote, if set, is consulted when a slot issues a remote op.
	OnRemote func(slot int, in isa.Instr, completeAt uint64) RemoteAction
	// OnRequestEnd, if set, is called when a slot issues an
	// EndOfRequest-marked instruction.
	OnRequestEnd func(slot int, now uint64)

	// Telemetry, when non-nil, receives cache-miss burst events; each
	// emission site costs one nil check when disabled.
	Telemetry telemetry.Sink
	// TelemetrySrc tags emitted events with the owning component.
	TelemetrySrc uint8
}

// NewInOCore builds an in-order SMT core with nSlots physical contexts.
func NewInOCore(cfg PipelineConfig, nSlots int, iport, dport *memsys.Port, pred *bpred.Unit) (*InOCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if nSlots <= 0 {
		return nil, fmt.Errorf("cpu: need at least one InO slot")
	}
	if err := iport.Validate(); err != nil {
		return nil, err
	}
	if err := dport.Validate(); err != nil {
		return nil, err
	}
	c := &InOCore{cfg: cfg, iport: iport, dport: dport, pred: pred}
	c.slots = make([]*InOSlot, nSlots)
	for i := range c.slots {
		c.slots[i] = &InOSlot{buf: make([]isa.Instr, 0, cfg.FetchBufEntries)}
	}
	return c, nil
}

// Config returns the core's pipeline configuration.
func (c *InOCore) Config() PipelineConfig { return c.cfg }

// Slots returns the number of physical contexts.
func (c *InOCore) Slots() int { return len(c.slots) }

// Slot returns physical context i.
func (c *InOCore) Slot(i int) *InOSlot { return c.slots[i] }

// Bind attaches a context's stream to slot i, charging swapLat cycles of
// unavailability (loading architectural registers from the run queue).
// The slot's scoreboard resets: all registers become ready at now+swapLat.
func (c *InOCore) Bind(slot int, stream isa.Stream, now, swapLat uint64) {
	s := c.slots[slot]
	s.stream = stream
	s.active = true
	s.buf = s.buf[:0]
	s.unavailableUntil = now + swapLat
	s.blockedUntil = 0
	s.fetchResumeAt = 0
	s.headWakeAt = 0
	s.fetchBlocked = false
	s.lastLine = ^uint64(0)
	for r := range s.regReadyAt {
		s.regReadyAt[r] = now + swapLat
	}
}

// Unbind detaches slot i, returning its stream and any fetched-but-not-
// issued instructions (which belong to the context and must be replayed
// when it is next bound — streams are consuming generators). Statistics
// remain with the slot (per-physical-context, matching hardware counters).
func (c *InOCore) Unbind(slot int) (isa.Stream, []isa.Instr) {
	s := c.slots[slot]
	st := s.stream
	var pending []isa.Instr
	if len(s.buf) > 0 {
		pending = append(pending, s.buf...)
	}
	s.stream = nil
	s.active = false
	s.buf = s.buf[:0]
	return st, pending
}

// Preload seeds slot i's fetch buffer with a previously unbound context's
// pending instructions. Call immediately after Bind.
func (c *InOCore) Preload(slot int, instrs []isa.Instr) {
	s := c.slots[slot]
	s.buf = s.buf[:0]
	s.buf = append(s.buf, instrs...)
	s.headWakeAt = 0
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Step simulates one cycle at global time now. Phases: issue first (using
// last cycle's buffers), then fetch — so an instruction cannot be fetched
// and issued in the same cycle.
func (c *InOCore) Step(now uint64) {
	c.Stats.Cycles++
	c.issue(now)
	c.fetch(now)
}

func (c *InOCore) issue(now uint64) {
	total := c.cfg.Width
	ldst, fp, mul, ialu := c.cfg.LdStPorts, c.cfg.FPUs, c.cfg.Muls, c.cfg.IntALUs
	n := len(c.slots)
	start := c.issueRR
	c.issueRR = (c.issueRR + 1) % n
	for k := 0; k < n && total > 0; k++ {
		s := c.slots[(start+k)%n]
		if !s.active || s.unavailableUntil > now || s.blockedUntil > now {
			continue
		}
		if s.headWakeAt > now {
			continue
		}
		for total > 0 && len(s.buf) > 0 {
			in := s.buf[0]
			if wake := max64(s.regReadyAt[in.Src1], s.regReadyAt[in.Src2]); wake > now {
				s.headWakeAt = wake
				break // in-order: head not ready blocks the slot
			}
			// Structural hazards (OpPark needs no functional unit).
			switch in.Op {
			case isa.OpLoad, isa.OpStore, isa.OpRemote:
				if ldst == 0 {
					goto nextSlot
				}
			case isa.OpPark:
			case isa.OpFPAlu:
				if fp == 0 {
					goto nextSlot
				}
			case isa.OpIntMul:
				if mul == 0 {
					goto nextSlot
				}
			default:
				if ialu == 0 {
					goto nextSlot
				}
			}
			s.buf = s.buf[1:]
			s.headWakeAt = 0
			total--
			c.Stats.IssueSlotsUsed++
			switch in.Op {
			case isa.OpLoad:
				ldst--
				lat := uint64(c.dport.Access(now, in.Addr, false))
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + lat
				}
				if c.Telemetry != nil && lat >= memsys.LLCHitLat {
					c.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvCacheMiss,
						Src: c.TelemetrySrc, A: lat, B: uint64(c.slotIndex(s))})
				}
			case isa.OpStore:
				ldst--
				c.dport.Access(now, in.Addr, true)
			case isa.OpRemote, isa.OpPark:
				if in.Op == isa.OpRemote {
					ldst--
					s.Stats.Remotes++
				}
				completeAt := now + CyclesFromNs(in.RemoteNs, c.cfg.FreqGHz)
				action := RemoteBlock
				if c.OnRemote != nil {
					action = c.OnRemote(c.slotIndex(s), in, completeAt)
				}
				if action == RemoteBlock {
					s.blockedUntil = completeAt
					if in.Op == isa.OpRemote {
						// Engine-managed remote: the slot blocks in place
						// for the full device latency.
						s.Stats.RemoteStallCycles += completeAt - now
					}
					if in.Dst != isa.RegNone {
						s.regReadyAt[in.Dst] = completeAt
					}
				}
			case isa.OpFPAlu:
				fp--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatFPAlu
				}
			case isa.OpIntMul:
				mul--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatIntMul
				}
			default:
				ialu--
				if in.Dst != isa.RegNone {
					s.regReadyAt[in.Dst] = now + LatIntAlu
				}
			}
			s.Stats.Retired++
			c.Stats.TotalRetired++
			if in.EndOfRequest {
				s.Stats.RequestsCompleted++
				if c.OnRequestEnd != nil {
					c.OnRequestEnd(c.slotIndex(s), now)
				}
			}
			if in.Op == isa.OpBranch && s.fetchBlocked && len(s.buf) == 0 {
				// The mispredicted branch (always the last fetched) just
				// resolved: charge the front-end redirect from here.
				s.fetchBlocked = false
				s.fetchResumeAt = now + uint64(c.cfg.MispredictPenalty)
			}
			if (in.Op == isa.OpRemote || in.Op == isa.OpPark) && s.blockedUntil > now {
				goto nextSlot // blocked: stop issuing from this slot
			}
		}
	nextSlot:
	}
}

func (c *InOCore) slotIndex(s *InOSlot) int {
	for i, x := range c.slots {
		if x == s {
			return i
		}
	}
	return -1
}

func (c *InOCore) fetch(now uint64) {
	budget := c.cfg.Width
	n := len(c.slots)
	start := c.fetchRR
	c.fetchRR = (c.fetchRR + 1) % n
	fetchedAny := false
	for k := 0; k < n && budget > 0; k++ {
		s := c.slots[(start+k)%n]
		if !s.active || s.unavailableUntil > now || s.blockedUntil > now ||
			s.fetchResumeAt > now || s.fetchBlocked {
			continue
		}
		for budget > 0 && len(s.buf) < c.cfg.FetchBufEntries {
			in, ok := s.stream.Next(now)
			if !ok {
				if len(s.buf) == 0 {
					s.Stats.IdleCycles++
				}
				break
			}
			// Instruction-cache access on line crossing.
			line := in.PC >> 6
			if line != s.lastLine {
				s.lastLine = line
				ilat := uint64(c.iport.Access(now, in.PC, false))
				if ilat > uint64(c.iport.L1.HitLatency()) {
					s.fetchResumeAt = now + ilat
				}
			}
			if len(s.buf) == 0 {
				s.headWakeAt = 0 // head is changing
			}
			s.buf = append(s.buf, in)
			budget--
			fetchedAny = true
			if in.Op == isa.OpBranch {
				if c.pred.PredictAndTrain(in) {
					// Fetch stalls until the branch issues (resolution);
					// the redirect penalty is charged there.
					s.fetchBlocked = true
					break
				}
				if in.Taken {
					break // taken-branch fetch break
				}
			}
			if s.fetchResumeAt > now {
				break // I-cache miss stalls further fetch
			}
		}
	}
	if !fetchedAny {
		c.Stats.FetchStallCycles++
	}
}

// Run steps the core for n cycles starting at cycle start and returns the
// next cycle value (start+n).
func (c *InOCore) Run(start, n uint64) uint64 {
	for i := uint64(0); i < n; i++ {
		c.Step(start + i)
	}
	return start + n
}

package cpu

// ThreadStats accumulates per-hardware-thread execution statistics.
type ThreadStats struct {
	// Retired counts committed (OoO) or issued-in-order (InO) instructions.
	Retired uint64
	// Remotes counts demarcated µs-scale remote operations.
	Remotes uint64
	// RemoteStallCycles accumulates cycles the thread spent blocked on
	// remote operations (OoO engine, where the thread stays resident).
	RemoteStallCycles uint64
	// IdleCycles accumulates cycles with no work available.
	IdleCycles uint64
	// RequestsCompleted counts committed EndOfRequest markers.
	RequestsCompleted uint64
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	Cycles       uint64
	TotalRetired uint64
	// FetchStallCycles counts cycles the front end fetched nothing.
	FetchStallCycles uint64
	// IssueSlotsUsed counts issue slots filled (utilization numerator is
	// retired instructions; this tracks raw issue activity).
	IssueSlotsUsed uint64
}

// IPC returns total retired instructions per cycle.
func (s CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalRetired) / float64(s.Cycles)
}

// Utilization returns retired instructions per peak retire slot — the
// paper's core-utilization metric (retired IPC divided by width 4).
func (s CoreStats) Utilization(width int) float64 {
	if s.Cycles == 0 || width == 0 {
		return 0
	}
	return float64(s.TotalRetired) / float64(s.Cycles*uint64(width))
}

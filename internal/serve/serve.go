// Package serve exposes the experiment-campaign engine as a
// long-running HTTP/JSON service: the daemon form of the one-shot
// duplexity CLI, built for the paper's own serving regime — bursty,
// latency-sensitive submissions over a pool of heavyweight simulation
// cells.
//
// The request path is admission → coalesce → campaign pool:
//
//   - Admission: a token bucket rate-limits open-loop submissions and a
//     bounded queue caps memory; when either saturates the server sheds
//     load with 429 + Retry-After instead of queueing unboundedly.
//     Per-request deadlines cancel cells that are still queued when the
//     deadline expires; cancelled cells are journaled as incomplete.
//   - Coalesce: concurrent identical submissions (same SHA-256 cache
//     key) share one in-flight simulation with singleflight semantics;
//     afterwards the content-addressed on-disk cache answers repeats.
//   - Pool: a fixed worker pool executes cells through
//     campaign.Do — the same cache, journal, and accounting as CLI
//     batches, so served results are byte-identical to CLI runs.
//
// One bad cell cannot take the daemon down: worker panics are caught,
// journaled, and surfaced as request errors while sibling cells keep
// running. SIGTERM-style drain (Drain) refuses new work, finishes every
// admitted cell, and flushes a campaign checkpoint.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/jobstore"
	"duplexity/internal/telemetry"
)

// Config assembles a Server.
type Config struct {
	// Suite is the experiment harness the daemon serves: its scale,
	// seed, and cache directory fix the (model, scale, seed) world all
	// requests resolve against. Required, and Suite.Err() must be nil.
	Suite *expt.Suite
	// Workers is the simulation pool width; <= 0 means one per CPU.
	Workers int
	// QueueDepth bounds the submission queue; <= 0 means 64. When the
	// queue is full, open-loop submissions are shed with 429.
	QueueDepth int
	// RatePerSec enables a token-bucket rate limit on POST /v1/cells
	// (<= 0 disables). Burst is the bucket size (<= 0 means max(1, rate)).
	RatePerSec float64
	Burst      int
	// DefaultTimeout is the per-request deadline for POST /v1/cells when
	// the request doesn't set one; <= 0 means 10 minutes.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies; <= 0 means 1 MiB.
	MaxBodyBytes int64
	// TraceDepth sizes the GET /v1/tracez recent-cell ring; <= 0 means
	// telemetry.DefaultTraceDepth.
	TraceDepth int
	// DisableTracing turns per-cell stage tracing off entirely: no
	// spans, no trace ring, /v1/tracez reports disabled. Results and
	// cache bytes are identical either way.
	DisableTracing bool

	// JobDir is where durable job records and cursors live; "" means
	// <cache dir>/jobs. With no cache directory either, jobs fall back
	// to ephemeral (nothing survives a restart).
	JobDir string
	// JobTTL bounds job state lifetime: finished jobs are reaped JobTTL
	// after completion, unfinished ones expired JobTTL after
	// submission; <= 0 means 24h.
	JobTTL time.Duration
	// JobGCInterval is the reap/expire sweep period; <= 0 means 1m.
	JobGCInterval time.Duration
	// TenantInflight caps one tenant's concurrently executing cells;
	// <= 0 means 4x Workers.
	TenantInflight int
	// TenantQueuedJobs caps one tenant's unfinished jobs; <= 0 means 16.
	TenantQueuedJobs int
	// TenantWeights overrides the fair-share weight per tenant name
	// (default weight 1).
	TenantWeights map[string]float64
	// SchedInflight caps scheduler-dispatched cells in flight across all
	// tenants; <= 0 means max(16, 4x Workers).
	SchedInflight int
	// InteractiveDeadline is the placement deadline granted to
	// interactive-lane work that names none; <= 0 means 30s.
	InteractiveDeadline time.Duration
}

// work is one enqueued leader cell.
type work struct {
	flight *flight
	spec   expt.CellSpec
	// enq stamps the admission-queue entry; the worker closes the
	// admission span against it at pickup.
	enq time.Time
	// deadline is the placement deadline inherited from an
	// interactive-lane job (zero for everything else); it rides down to
	// the engine so a fleet remote can hedge earlier as it nears.
	deadline time.Time
}

// Server is the serving layer: an http.Handler plus the admission,
// coalescing, and execution machinery behind it.
type Server struct {
	cfg   Config
	suite *expt.Suite

	// run executes one validated cell; swapped by tests to decouple
	// admission/coalescing behavior from multi-second simulations. The
	// trace is nil when tracing is disabled; the deadline is zero for
	// batch work.
	run func(expt.CellSpec, *telemetry.CellTrace, time.Time) (expt.ServedResult, error)

	bucket *tokenBucket
	m      metrics

	// traces is the /v1/tracez ring; nil when tracing is disabled.
	traces *telemetry.TraceRing

	runq    chan *work
	quit    chan struct{}
	drainCh chan struct{}

	// admitMu serializes admission against drain: admitters hold the
	// read side across the draining check and the inflight.Add, so
	// Drain's Wait can never race a late Add.
	admitMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	wg sync.WaitGroup

	fmu     sync.Mutex
	flights map[string]*flight

	// mgr owns every campaign job's lifecycle: durable storage,
	// fair-share dispatch, resume, and TTL garbage collection.
	mgr *jobstore.Manager
	// durable reports whether job state survives restarts (a job
	// directory resolved at startup).
	durable bool
	// resumed counts the incomplete durable jobs re-admitted at startup.
	resumed int

	// drainReq closes when POST /v1/drain asks the supervising process
	// to begin a graceful drain.
	drainReq     chan struct{}
	drainReqOnce sync.Once

	drainOnce sync.Once
	quitOnce  sync.Once

	mux *http.ServeMux
}

// New builds a server and starts its worker pool. Callers must Drain
// (or abandon the process) to stop it.
func New(cfg Config) (*Server, error) {
	if cfg.Suite == nil {
		return nil, fmt.Errorf("serve: Config.Suite is required")
	}
	if err := cfg.Suite.Err(); err != nil {
		return nil, fmt.Errorf("serve: suite: %w", err)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Minute
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.TenantInflight <= 0 {
		cfg.TenantInflight = 4 * cfg.Workers
	}
	if cfg.TenantQueuedJobs <= 0 {
		cfg.TenantQueuedJobs = 16
	}
	if cfg.SchedInflight <= 0 {
		cfg.SchedInflight = 4 * cfg.Workers
		if cfg.SchedInflight < 16 {
			cfg.SchedInflight = 16
		}
	}
	if cfg.InteractiveDeadline <= 0 {
		cfg.InteractiveDeadline = 30 * time.Second
	}
	s := &Server{
		cfg:      cfg,
		suite:    cfg.Suite,
		runq:     make(chan *work, cfg.QueueDepth),
		quit:     make(chan struct{}),
		drainCh:  make(chan struct{}),
		drainReq: make(chan struct{}),
		flights:  make(map[string]*flight),
	}
	s.run = s.suite.RunServedDeadline
	if !cfg.DisableTracing {
		s.traces = telemetry.NewTraceRing(cfg.TraceDepth)
	}
	if cfg.RatePerSec > 0 {
		burst := cfg.Burst
		if burst <= 0 {
			burst = int(cfg.RatePerSec)
			if burst < 1 {
				burst = 1
			}
		}
		s.bucket = newTokenBucket(cfg.RatePerSec, burst)
	}
	jobDir := cfg.JobDir
	if jobDir == "" {
		if eng := cfg.Suite.Engine(); eng != nil {
			if d := eng.CacheDir(); d != "" {
				jobDir = filepath.Join(d, "jobs")
			}
		}
	}
	s.durable = jobDir != ""
	mgr, err := jobstore.NewManager(jobstore.Config{
		Dir: jobDir,
		Defaults: jobstore.Quota{
			Weight:        1,
			MaxInflight:   cfg.TenantInflight,
			MaxQueuedJobs: cfg.TenantQueuedJobs,
		},
		Weights:     cfg.TenantWeights,
		MaxInflight: cfg.SchedInflight,
		DefaultTTL:  cfg.JobTTL,
		GCInterval:  cfg.JobGCInterval,
		Exec:        s.runJobCell,
		Lookup:      s.lookupCell,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: job store: %w", err)
	}
	s.mgr = mgr
	s.mux = s.routes()
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	// Resume after the pool is live: re-admitted cells flow through the
	// normal admission path immediately.
	resumed, err := mgr.Start()
	if err != nil {
		return nil, fmt.Errorf("serve: job resume: %w", err)
	}
	s.resumed = resumed
	return s, nil
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Draining reports whether a drain has begun.
func (s *Server) Draining() bool {
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	return s.draining
}

// Resumed reports how many incomplete durable jobs the server
// re-admitted at startup.
func (s *Server) Resumed() int { return s.resumed }

// Jobs exposes the job manager (CLI status plumbing and tests).
func (s *Server) Jobs() *jobstore.Manager { return s.mgr }

// RequestDrain signals DrainRequested; the process supervising the
// server (the daemon's signal loop) performs the actual Drain.
func (s *Server) RequestDrain() { s.drainReqOnce.Do(func() { close(s.drainReq) }) }

// DrainRequested closes when an API client POSTs /v1/drain.
func (s *Server) DrainRequested() <-chan struct{} { return s.drainReq }

// Drain gracefully stops the server: refuse new work, finish every
// admitted cell, stop the pool, and flush the campaign journal
// checkpoint. Safe to call more than once; ctx bounds how long to wait
// for in-flight cells (expiry leaves the pool running so a later Drain
// can retry).
func (s *Server) Drain(ctx context.Context) error {
	s.admitMu.Lock()
	s.draining = true
	s.admitMu.Unlock()
	s.drainOnce.Do(func() { close(s.drainCh) })

	// Stop the job manager first: pending ephemeral cells cancel,
	// pending durable cells stay on disk for the next boot's resume, and
	// in-flight dispatches run to completion through the pool below.
	if err := s.mgr.Stop(ctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted with cells in flight: %w", ctx.Err())
	}
	s.quitOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
	if eng := s.suite.Engine(); eng != nil {
		if err := eng.Checkpoint(false); err != nil {
			return fmt.Errorf("serve: drain checkpoint: %w", err)
		}
	}
	return nil
}

// execOpts parameterizes one pass through the admission path.
type execOpts struct {
	// block selects backpressure (campaign/job cells) over shedding
	// (the open-loop /v1/cells path).
	block bool
	// tc is the inherited trace context (zero: this daemon is the
	// trace root).
	tc telemetry.TraceContext
	// deadline is the interactive-lane placement deadline (zero for
	// batch work).
	deadline time.Time
	// queuedAt, when set, backdates the cell's trace to its scheduler
	// enqueue so the wall time covers fair-share wait, recorded as a
	// "sched" span.
	queuedAt time.Time
}

// execCell runs one validated cell through admission → coalesce → pool.
// Blocking submissions (campaign cells) wait for queue space with
// backpressure; non-blocking ones (the open-loop /v1/cells path) are
// shed with 429 when the queue is full.
func (s *Server) execCell(ctx context.Context, spec expt.CellSpec, block bool, tc telemetry.TraceContext) (expt.ServedResult, *telemetry.CellTrace, error) {
	return s.execCellOpts(ctx, spec, execOpts{block: block, tc: tc})
}

// execCellOpts is execCell with scheduling context. The returned
// *telemetry.CellTrace is nil when tracing is disabled, and its
// snapshot has already been pushed to the tracez ring by return time.
func (s *Server) execCellOpts(ctx context.Context, spec expt.CellSpec, o execOpts) (expt.ServedResult, *telemetry.CellTrace, error) {
	var zero expt.ServedResult
	key, err := s.suite.ServedKey(spec)
	if err != nil {
		return zero, nil, err
	}
	digest := key.Digest()
	var tr *telemetry.CellTrace
	if s.traces != nil {
		if !o.queuedAt.IsZero() {
			tr = telemetry.NewCellTraceAt(o.tc, digest, o.queuedAt)
			tr.Stage(telemetry.StageSched, o.queuedAt)
		} else {
			tr = telemetry.NewCellTrace(o.tc, digest)
		}
	}

	s.admitMu.RLock()
	if s.draining {
		s.admitMu.RUnlock()
		s.m.shedDraining.Add(1)
		s.finishTrace(tr, false, errDraining)
		return zero, tr, errDraining
	}

	// Coalesce: join an identical in-flight cell instead of submitting a
	// duplicate. Followers consume no queue slot and no worker.
	s.fmu.Lock()
	if f, ok := s.flights[digest]; ok {
		f.waiters++
		leader := f.tr
		s.fmu.Unlock()
		s.admitMu.RUnlock()
		s.m.coalesceHits.Add(1)
		wait := time.Now()
		res, err := s.await(ctx, f)
		if tr != nil {
			// The follower's own time went to waiting; the leader's spans
			// are adopted as children so the timeline still shows where
			// the shared flight spent the microseconds.
			tr.Stage(telemetry.StageCoalesce, wait)
			tr.SetJoined(leader.TraceID())
			tr.Adopt(leader.Spans(), "")
		}
		s.finishTrace(tr, res.Cached, err)
		return res, tr, err
	}
	f := &flight{key: key, digest: digest, waiters: 1, done: make(chan struct{}), tr: tr}
	s.flights[digest] = f
	s.fmu.Unlock()
	// Count the leader before releasing admitMu so Drain's inflight.Wait
	// can never miss it; the enqueue itself must happen outside the lock
	// (a blocked backpressure send while holding it would deadlock
	// Drain).
	s.inflight.Add(1)
	s.admitMu.RUnlock()
	s.m.coalesceLeaders.Add(1)

	enqueued := false
	if o.block {
		select {
		case s.runq <- &work{flight: f, spec: spec, enq: time.Now(), deadline: o.deadline}:
			enqueued = true
		case <-s.drainCh:
			err = errDraining
			s.m.shedDraining.Add(1)
		case <-ctx.Done():
			err = ctx.Err()
		}
	} else {
		select {
		case s.runq <- &work{flight: f, spec: spec, enq: time.Now(), deadline: o.deadline}:
			enqueued = true
		default:
			err = &shedError{status: http.StatusTooManyRequests, retryAfter: s.retryAfter(), msg: "submission queue full"}
			s.m.shedQueueFull.Add(1)
		}
	}
	if !enqueued {
		s.inflight.Done()
		// The flight never reached the pool: fail every follower that
		// coalesced onto it (their result will never come).
		s.failFlight(f, err)
		s.finishTrace(tr, false, err)
		return zero, tr, err
	}
	s.m.admitted.Add(1)
	res, err := s.await(ctx, f)
	s.finishTrace(tr, res.Cached, err)
	return res, tr, err
}

// finishTrace closes a cell's trace and records it on the tracez ring.
// Each requester (leader or coalesced follower) records its own trace
// exactly once, at return.
func (s *Server) finishTrace(tr *telemetry.CellTrace, cached bool, err error) {
	if tr == nil {
		return
	}
	tr.SetCached(cached)
	tr.SetError(err)
	s.traces.Add(tr.Finish())
}

// await waits for a flight to resolve, or abandons it on deadline
// expiry. An abandoned flight still runs if any other waiter remains;
// when the last waiter leaves before execution starts, the worker
// cancels the cell and journals it incomplete.
func (s *Server) await(ctx context.Context, f *flight) (expt.ServedResult, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		s.fmu.Lock()
		f.waiters--
		remaining := f.waiters
		s.fmu.Unlock()
		if remaining > 0 {
			// A follower abandoning a flight other waiters still want:
			// the leader's cell keeps running untouched, but this
			// request accepted work it will never see — journal its own
			// cancellation so the audit trail is per-request, not
			// per-flight. The sole-waiter case journals in runFlight
			// when the worker cancels the cell itself.
			s.m.followerCancelled.Add(1)
			if eng := s.suite.Engine(); eng != nil {
				eng.JournalIncomplete(f.key, campaign.StatusCancelled)
			}
		}
		return expt.ServedResult{}, ctx.Err()
	}
}

// failFlight resolves a never-enqueued flight with an admission error.
func (s *Server) failFlight(f *flight, err error) {
	s.fmu.Lock()
	delete(s.flights, f.digest)
	s.fmu.Unlock()
	f.err = err
	close(f.done)
}

func (s *Server) worker() {
	defer s.wg.Done()
	for {
		// Prefer queued work over quit so drain finishes every admitted
		// cell before the pool exits.
		select {
		case w := <-s.runq:
			s.runFlight(w)
			continue
		default:
		}
		select {
		case w := <-s.runq:
			s.runFlight(w)
		case <-s.quit:
			return
		}
	}
}

// runFlight executes one leader cell with panic isolation.
func (s *Server) runFlight(w *work) {
	defer s.inflight.Done()
	f := w.flight

	s.fmu.Lock()
	if f.waiters == 0 {
		// Every requester's deadline expired while the cell was queued:
		// cancel instead of simulating into the void, and journal the
		// cancellation so the daemon's audit trail shows accepted-but-
		// unfinished work.
		delete(s.flights, f.digest)
		s.fmu.Unlock()
		s.m.cancelled.Add(1)
		if eng := s.suite.Engine(); eng != nil {
			eng.JournalIncomplete(f.key, campaign.StatusCancelled)
		}
		f.err = context.DeadlineExceeded
		close(f.done)
		return
	}
	s.fmu.Unlock()

	// Queue wait ends here: the admission span runs from enqueue to
	// worker pickup.
	f.tr.Stage(telemetry.StageAdmission, w.enq)
	start := time.Now()
	res, err := s.safeRun(w.spec, f, w.deadline)
	elapsed := time.Since(start)

	s.fmu.Lock()
	delete(s.flights, f.digest)
	s.fmu.Unlock()
	f.res, f.err = res, err
	close(f.done)

	if err != nil {
		s.m.failed.Add(1)
		return
	}
	s.m.completed.Add(1)
	if res.Cached {
		s.m.cacheHits.Add(1)
	}
	s.m.observeLatency(uint64(elapsed.Microseconds()))
}

// safeRun is the panic-isolation boundary: a panicking cell becomes a
// request error and a journal record, never a dead daemon.
func (s *Server) safeRun(spec expt.CellSpec, f *flight, deadline time.Time) (res expt.ServedResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cell panicked: %v", r)
			s.m.panics.Add(1)
			if eng := s.suite.Engine(); eng != nil {
				eng.JournalIncomplete(f.key, campaign.StatusPanic)
			}
		}
	}()
	return s.run(spec, f.tr, deadline)
}

// retryAfter estimates when a shed submission is worth retrying: the
// queued work divided across the pool, using the engine's measured
// mean simulation time (1s when nothing has been measured yet).
func (s *Server) retryAfter() time.Duration {
	mean := 1.0
	if eng := s.suite.Engine(); eng != nil {
		if st := eng.Stats(); st.Misses > 0 {
			mean = st.SimWallSeconds / float64(st.Misses)
		}
	}
	est := time.Duration(float64(len(s.runq)) * mean / float64(s.cfg.Workers) * float64(time.Second))
	if est < time.Second {
		est = time.Second
	}
	if est > 60*time.Second {
		est = 60 * time.Second
	}
	return est
}

package telemetry

import "testing"

// sinkHolder mimics an instrumented component: a Sink field that is nil
// in uninstrumented runs.
type sinkHolder struct {
	sink Sink
}

//go:noinline
func (h *sinkHolder) hotPath(cycle uint64) {
	if h.sink != nil {
		h.sink.Emit(Event{Cycle: cycle, Kind: EvCacheMiss, A: 30})
	}
}

// BenchmarkEmitNil measures the uninstrumented fast path: the single
// nil-check an emission site costs when no sink is attached. This is the
// per-site overhead the <3% BenchmarkDyad guard in scripts/check.sh is
// bounding (sub-nanosecond per site on any modern CPU).
func BenchmarkEmitNil(b *testing.B) {
	h := &sinkHolder{}
	for i := 0; i < b.N; i++ {
		h.hotPath(uint64(i))
	}
}

// BenchmarkEmitRing measures the enabled path into the ring buffer.
func BenchmarkEmitRing(b *testing.B) {
	h := &sinkHolder{sink: NewRing(1 << 16)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.hotPath(uint64(i))
	}
}

// BenchmarkHistogramObserve measures the histogram fast path.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}

// BenchmarkRegistrySnapshot measures snapshot cost at a realistic
// registry size (one dyad's worth of counters).
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := NewRegistry()
	for _, core := range []string{"master", "lender", "filler"} {
		s := r.Scope(core)
		for _, name := range []string{"cycles", "retired", "fetch_stall_cycles", "issue_slots_used"} {
			s.Counter(name).Set(1)
		}
		for t := 0; t < 8; t++ {
			ts := s.Scope("thread" + string(rune('0'+t)))
			for _, name := range []string{"retired", "remotes", "remote_stall_cycles", "idle_cycles"} {
				ts.Counter(name).Set(1)
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot(uint64(i))
	}
}

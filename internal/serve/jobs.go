package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// CellLine is one streamed result line of a campaign job: the cell's
// index in canonical submission order plus its result or error.
type CellLine struct {
	Index  int                `json:"index"`
	Cell   expt.CellSpec      `json:"cell"`
	Result *expt.ServedResult `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// JobStatus is the API-facing summary of one campaign job.
type JobStatus struct {
	ID    string `json:"id"`
	Kind  string `json:"kind"`
	State string `json:"state"` // "running" | "done"
	Cells int    `json:"cells"`
	// Completed + Failed + Cancelled == streamed lines so far.
	Completed int `json:"completed"`
	Failed    int `json:"failed,omitempty"`
	// Cancelled counts cells refused by a drain before execution.
	Cancelled int  `json:"cancelled,omitempty"`
	Done      bool `json:"done"`
}

// job tracks one submitted campaign. Results are streamed in
// submission order (the engine's own contract: submission order, never
// completion order), so two jobs over identical cells produce
// byte-identical streams regardless of worker scheduling; out-of-order
// completions buffer until their predecessors finish. Lines are
// encoded once at completion, so replays are byte-stable too.
type job struct {
	id    string
	kind  string
	cells []expt.CellSpec

	mu        sync.Mutex
	lines     []json.RawMessage // index-aligned; nil until complete
	ready     int               // contiguous encoded prefix length
	completed int
	failed    int
	cancelled int
	notify    chan struct{} // closed and replaced on every advance
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Kind: j.kind, State: "running", Cells: len(j.cells),
		Completed: j.completed, Failed: j.failed, Cancelled: j.cancelled,
	}
	if j.completed+j.failed+j.cancelled == len(j.cells) {
		st.State, st.Done = "done", true
	}
	return st
}

// complete records cell i's outcome and wakes streamers.
func (j *job) complete(i int, res expt.ServedResult, err error) {
	line := CellLine{Index: i, Cell: j.cells[i]}
	if err != nil {
		line.Error = err.Error()
	} else {
		line.Result = &res
	}
	raw, merr := json.Marshal(line)
	if merr != nil {
		// A result that cannot encode is a bug in the result type; keep
		// the stream alive with an error line.
		raw, _ = json.Marshal(CellLine{Index: i, Cell: j.cells[i], Error: "encoding result: " + merr.Error()})
	}

	j.mu.Lock()
	j.lines[i] = raw
	switch {
	case err == nil:
		j.completed++
	case errors.Is(err, errDraining) || errors.Is(err, context.Canceled):
		j.cancelled++
	default:
		j.failed++
	}
	for j.ready < len(j.lines) && j.lines[j.ready] != nil {
		j.ready++
	}
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// next returns the encoded lines in [from, ready), whether the job is
// fully streamed at that point, and the channel to wait on for more.
func (j *job) next(from int) (lines []json.RawMessage, done bool, wait <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	lines = j.lines[from:j.ready]
	return lines, j.ready == len(j.cells), j.notify
}

// jobTable registers campaign jobs under monotonic IDs.
type jobTable struct {
	mu    sync.Mutex
	seq   int
	jobs  map[string]*job
	order []string
}

func newJobTable() *jobTable {
	return &jobTable{jobs: make(map[string]*job)}
}

func (t *jobTable) add(kind string, cells []expt.CellSpec) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	j := &job{
		id:     fmt.Sprintf("c%04d", t.seq),
		kind:   kind,
		cells:  cells,
		lines:  make([]json.RawMessage, len(cells)),
		notify: make(chan struct{}),
	}
	t.jobs[j.id] = j
	t.order = append(t.order, j.id)
	return j
}

func (t *jobTable) get(id string) *job {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobs[id]
}

func (t *jobTable) list() []JobStatus {
	t.mu.Lock()
	ids := append([]string(nil), t.order...)
	t.mu.Unlock()
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		if j := t.get(id); j != nil {
			out = append(out, j.status())
		}
	}
	return out
}

// startJob fans a campaign's cells into the admission path. Each cell
// is a blocking submission (backpressure, not shedding); identical
// cells across concurrent jobs coalesce to one simulation. A drain
// cancels cells not yet admitted and lets admitted ones finish.
func (s *Server) startJob(j *job) {
	for i := range j.cells {
		i := i
		go func() {
			res, _, err := s.execCell(context.Background(), j.cells[i], true, telemetry.TraceContext{Campaign: j.id})
			j.complete(i, res, err)
		}()
	}
}

// Package campaign is the experiment-campaign engine: a worker pool
// that fans embarrassingly-parallel simulation cells out across
// goroutines, backed by a content-addressed on-disk result cache and an
// append-only completion journal.
//
// The paper's evaluation (Figures 5a–f, Figure 6, the ablations) is a
// campaign of independent (design × workload × load × seed) cells.
// Each cell derives every random seed from its own Key, and each worker
// confines its Dyad (and all other simulator state) to a single
// goroutine, so campaign results are bit-identical to the sequential
// path at any worker count. Results are returned in submission order,
// never in completion order.
//
// Cells are keyed by a SHA-256 digest over the cell's full input
// (design, workload-spec fingerprint, load, scale, seed, and a
// model-version string). With a cache directory configured, each
// completed cell is journaled to disk as it finishes: repeated runs and
// overlapping figures skip simulation entirely, and a killed campaign
// resumes where it left off instead of starting over.
package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of concurrent cells; <= 0 means one worker
	// per CPU (runtime.NumCPU()). Workers = 1 is the sequential path.
	Workers int
	// CacheDir enables the persistent content-addressed result cache
	// (and its completion journal) rooted at this directory. Empty means
	// no persistence: every cell simulates.
	CacheDir string
}

// Engine executes campaign cells on a bounded worker pool with optional
// result caching. An Engine is safe for use from multiple goroutines,
// though callers typically submit one batch at a time.
type Engine struct {
	workers int
	cache   *Cache
	journal *Journal
	stats   *Stats
}

// New builds an engine. With a CacheDir, the directory is created if
// needed and pre-existing entries are counted (reported as PriorCells in
// the stats summary, so a resumed run can say how much work it skipped).
func New(o Options) (*Engine, error) {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	e := &Engine{workers: w, stats: newStats()}
	if o.CacheDir != "" {
		c, err := OpenCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		n, err := c.Len()
		if err != nil {
			return nil, err
		}
		e.cache = c
		e.journal = NewJournal(c.JournalPath())
		e.stats.setPrior(n)
	}
	return e, nil
}

// Workers returns the configured pool width.
func (e *Engine) Workers() int { return e.workers }

// Stats snapshots the engine's cache and wall-time accounting.
func (e *Engine) Stats() Summary {
	s := e.stats.summary()
	s.Workers = e.workers
	return s
}

// Task is one campaign cell: a content-address for its full input and
// the function that computes it. R must round-trip through
// encoding/json unchanged for cache hits to be exact (exported fields,
// no maps with non-deterministic iteration feeding back into results).
type Task[R any] struct {
	Key Key
	Run func() (R, error)
}

// Run executes tasks on the engine's worker pool and returns their
// results in submission order. Cells whose digest is already in the
// cache are decoded instead of simulated and counted as hits; computed
// cells are journaled to the cache as they finish, so an interrupted
// batch resumes from its completed cells. On failure Run returns the
// error of the lowest-index failing task (deterministic at any worker
// count); remaining queued cells are abandoned, but cells already
// finished are still in the cache.
func Run[R any](e *Engine, tasks []Task[R]) ([]R, error) {
	results := make([]R, len(tasks))
	errs := make([]error, len(tasks))
	var failed atomic.Bool

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue // drain the queue without starting new cells
				}
				r, _, err := runOne(e, tasks[i])
				results[i], errs[i] = r, err
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			k := tasks[i].Key
			return nil, fmt.Errorf("campaign: cell %s %s/%s@%v: %w",
				k.Kind, k.Design, k.Workload, k.Load, err)
		}
	}
	// Clean batch completion: flush a checkpoint so out-of-band tooling
	// can see how far the campaign has progressed (non-fatal, like the
	// journal itself).
	_ = e.Checkpoint(true)
	return results, nil
}

// Do resolves a single cell outside any batch: the asynchronous
// submission hook used by long-running services (internal/serve) that
// admit cells one at a time instead of in Run batches. It shares the
// cache, journal, and stats accounting with Run and is safe for
// concurrent use. The second return reports whether the cache answered
// the cell.
func Do[R any](e *Engine, t Task[R]) (R, bool, error) {
	return runOne(e, t)
}

// runOne resolves one cell: cache probe, then simulation plus
// journaling on a miss. The bool reports a cache hit.
func runOne[R any](e *Engine, t Task[R]) (R, bool, error) {
	var zero R
	digest := t.Key.Digest()

	if e.cache != nil {
		if raw, ok := e.cache.Get(digest); ok {
			var r R
			if err := json.Unmarshal(raw, &r); err == nil {
				e.finish(t.Key, digest, true, 0)
				return r, true, nil
			}
			// Undecodable entry (format drift, torn write that slipped
			// through): fall through and recompute; Put overwrites it.
		}
	}

	start := time.Now()
	r, err := t.Run()
	wall := time.Since(start).Seconds()
	if err != nil {
		e.stats.recordError()
		return zero, false, err
	}
	if e.cache != nil {
		raw, err := json.Marshal(r)
		if err != nil {
			e.stats.recordError()
			return zero, false, fmt.Errorf("encoding result: %w", err)
		}
		if err := e.cache.Put(digest, Entry{Key: t.Key, WallSeconds: wall, Result: raw}); err != nil {
			e.stats.recordError()
			return zero, false, err
		}
	}
	e.finish(t.Key, digest, false, wall)
	return r, false, nil
}

// finish records accounting and journals the completion.
func (e *Engine) finish(k Key, digest string, cached bool, wall float64) {
	seq := e.stats.record(CellTiming{
		Kind: k.Kind, Design: k.Design, Workload: k.Workload, Load: k.Load,
		Cached: cached, WallSeconds: wall,
	})
	if e.journal != nil {
		// Journal failures are deliberately non-fatal: the journal is an
		// observability artifact; resume correctness comes from the
		// content-addressed cache entries themselves.
		_ = e.journal.Append(JournalEntry{
			Seq: seq, Digest: digest, Kind: k.Kind,
			Design: k.Design, Workload: k.Workload, Load: k.Load,
			Cached: cached, WallSeconds: wall,
		})
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	"duplexity/internal/expt"
	"duplexity/internal/jobstore"
)

// TestJobsSubmitAndStream: the multi-tenant submission path accepts a
// job with tenant and lane, streams its results, and reports a terminal
// status carrying the tenant metadata.
func TestJobsSubmitAndStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	req := JobRequest{
		CampaignSpec: expt.CampaignSpec{
			Kind: expt.CampaignFig5, Designs: []string{"Baseline", "Duplexity"},
			Workloads: []string{"RSC"}, Loads: []float64{0.3},
		},
		Tenant: "acme",
		Lane:   "interactive",
	}
	status, _, body := postJSON(t, ts.URL+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("job submission = %d (%s), want 202", status, body)
	}
	var acc JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.Cells != 2 || acc.Tenant != "acme" || acc.Lane != "interactive" {
		t.Fatalf("accepted = %+v", acc)
	}
	if acc.Durable {
		t.Error("suite without a cache dir must fall back to ephemeral jobs")
	}

	lines, final := readStream(t, ts.URL+acc.Stream)
	if len(lines) != 2 || !final.Done || final.Completed != 2 {
		t.Fatalf("stream = %d lines, final %+v", len(lines), final)
	}
	if final.Tenant != "acme" || final.Lane != jobstore.LaneInteractive {
		t.Fatalf("final status lost tenant metadata: %+v", final)
	}
	if !final.DeadlineMet {
		t.Errorf("interactive job with default deadline not marked met: %+v", final)
	}

	// The job shows up in tenant-filtered listings and by ID.
	var listed []JobStatus
	getJSON(t, ts.URL+"/v1/jobs?tenant=acme", &listed)
	if len(listed) != 1 || listed[0].ID != acc.ID {
		t.Fatalf("tenant listing = %+v", listed)
	}
	var none []JobStatus
	getJSON(t, ts.URL+"/v1/jobs?tenant=other", &none)
	if len(none) != 0 {
		t.Fatalf("foreign tenant sees %+v", none)
	}
	var st JobStatus
	if code := getJSON(t, ts.URL+"/v1/jobs/"+acc.ID, &st); code != http.StatusOK || st.State != jobstore.StateDone {
		t.Fatalf("job status = %d %+v", code, st)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/j9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job id = %d, want 404", code)
	}
}

// TestJobsQueuedJobsQuotaSheds: a tenant past MaxQueuedJobs gets 429
// with a Retry-After hint while other tenants keep submitting.
func TestJobsQueuedJobsQuotaSheds(t *testing.T) {
	release := make(chan struct{})
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8, TenantQueuedJobs: 2},
		func(cs expt.CellSpec) (expt.ServedResult, error) {
			<-release
			return stubResult(cs), nil
		})
	defer close(release)

	req := func(tenant string, load float64) (int, http.Header) {
		status, hdr, _ := postJSON(t, ts.URL+"/v1/jobs", JobRequest{
			CampaignSpec: expt.CampaignSpec{
				Kind: expt.CampaignFig5, Designs: []string{"Baseline"},
				Workloads: []string{"RSC"}, Loads: []float64{load},
			},
			Tenant: tenant,
		})
		return status, hdr
	}
	for i := 0; i < 2; i++ {
		if status, _ := req("greedy", 0.3+0.01*float64(i)); status != http.StatusAccepted {
			t.Fatalf("submission %d = %d, want 202", i, status)
		}
	}
	status, hdr := req("greedy", 0.4)
	if status != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission = %d, want 429", status)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Quotas are per tenant: a different tenant is unaffected.
	if status, _ := req("patient", 0.5); status != http.StatusAccepted {
		t.Fatalf("other tenant = %d, want 202", status)
	}
}

// TestCellTenantHeaderQuota: POST /v1/cells with a tenant header
// charges the tenant's in-flight quota; requests beyond it shed 429
// without consuming admission, and headerless requests stay ungated.
func TestCellTenantHeaderQuota(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8, TenantInflight: 1},
		func(cs expt.CellSpec) (expt.ServedResult, error) {
			started <- struct{}{}
			<-release
			return stubResult(cs), nil
		})

	post := func(load float64, tenant string) (int, []byte) {
		data, _ := json.Marshal(matrixCell(load))
		req, _ := http.NewRequest("POST", ts.URL+"/v1/cells", bytes.NewReader(data))
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(HeaderTenant, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if status, body := post(0.30, "capped"); status != http.StatusOK {
			t.Errorf("first tenant cell = %d (%s)", status, body)
		}
	}()
	<-started // the tenant's only in-flight slot is taken

	if status, body := post(0.40, "capped"); status != http.StatusTooManyRequests {
		t.Fatalf("over-quota tenant cell = %d (%s), want 429", status, body)
	}
	// No tenant header: the legacy ungated path still admits.
	var wg2 sync.WaitGroup
	wg2.Add(1)
	go func() {
		defer wg2.Done()
		if status, body := post(0.50, ""); status != http.StatusOK {
			t.Errorf("headerless cell = %d (%s)", status, body)
		}
	}()
	<-started
	close(release)
	wg.Wait()
	wg2.Wait()
}

// TestDrainEndpointSignals: POST /v1/drain answers 202 and raises
// DrainRequested for the supervising process; it does not drain
// in-line.
func TestDrainEndpointSignals(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	select {
	case <-s.DrainRequested():
		t.Fatal("drain requested before any request")
	default:
	}
	status, _, body := postJSON(t, ts.URL+"/v1/drain", struct{}{})
	if status != http.StatusAccepted {
		t.Fatalf("drain = %d (%s), want 202", status, body)
	}
	select {
	case <-s.DrainRequested():
	case <-time.After(time.Second):
		t.Fatal("DrainRequested never fired")
	}
	if s.Draining() {
		t.Error("handler drained in-line; that is the supervisor's job")
	}
}

// TestDurableJobSurvivesRestart is the HTTP-level half of the restart
// story: a durable job finished by daemon A streams byte-identically
// from daemon B over the same cache and job directories, with zero
// re-simulation.
func TestDurableJobSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	dir := t.TempDir()
	mkServer := func() (*Server, string, func()) {
		suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 11, Workers: 1, CacheDir: dir})
		s, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 8}, nil)
		return s, ts.URL, func() {}
	}

	sA, urlA, _ := mkServer()
	if !sA.durable {
		t.Fatal("server with a cache dir is not durable")
	}
	req := JobRequest{
		CampaignSpec: expt.CampaignSpec{
			Kind: expt.CampaignFig5, Designs: []string{"Baseline"},
			Workloads: []string{"RSC"}, Loads: []float64{0.3, 0.5},
		},
		Tenant: "acme",
	}
	status, _, body := postJSON(t, urlA+"/v1/jobs", req)
	if status != http.StatusAccepted {
		t.Fatalf("job = %d (%s)", status, body)
	}
	var acc JobAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if !acc.Durable {
		t.Fatalf("job not durable: %+v", acc)
	}
	linesA, finalA := readStream(t, urlA+acc.Stream)
	if !finalA.Done || finalA.Completed != 2 {
		t.Fatalf("job A: %+v", finalA)
	}

	// "Restart": a second server over the same directories. The
	// finished job must come back rematerialized from the cache.
	sB, urlB, _ := mkServer()
	var misses = func(s *Server) int64 {
		return int64(s.suite.Engine().Stats().Misses)
	}
	linesB, finalB := readStream(t, urlB+acc.Stream)
	if !finalB.Done || finalB.Completed != 2 {
		t.Fatalf("job B: %+v", finalB)
	}
	if len(linesA) != len(linesB) {
		t.Fatalf("stream lengths diverge: %d vs %d", len(linesA), len(linesB))
	}
	for i := range linesA {
		if !bytes.Equal(linesA[i], linesB[i]) {
			t.Errorf("restarted stream diverges at line %d:\n%s\n%s", i, linesA[i], linesB[i])
		}
	}
	if got := misses(sB); got != 0 {
		t.Errorf("restart re-simulated %d cells, want 0", got)
	}
}

module duplexity

go 1.22

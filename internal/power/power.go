// Package power is the McPAT/CACTI-lite area, frequency, and power model
// (32nm) behind Table II and the performance-density and energy results
// of Figures 5(b) and 5(c). Component areas are built bottom-up from
// structure sizes and calibrated to reproduce Table II's totals; power
// combines per-area leakage with per-instruction dynamic energy.
package power

import (
	"fmt"

	"duplexity/internal/core"
	"duplexity/internal/idle"
)

// Component is one area/power entry of the model.
type Component struct {
	Name    string
	AreaMM2 float64
}

// Per-structure areas in mm² at 32nm, calibrated so design totals match
// Table II.
const (
	areaL1Pair    = 3.20 // 64KB I + 64KB D, 2-way
	areaPredictor = 0.42 // tournament 16K/16K/16K + 2K BTB + RAS
	areaLenderBP  = 0.12 // gshare 8K + BTB
	areaTLBs      = 0.16 // 64-entry I/D pair
	areaPRF       = 0.72 // 144-entry physical register file
	areaOoOEngine = 2.55 // rename, IQ wakeup/select, ROB, bypass
	areaLSQ       = 0.55 // 48-entry LQ + 32-entry SQ
	areaFUs       = 2.20 // 4 ALUs, 2 FP, 1 mul, 2 ld/st ports
	areaFrontEnd  = 1.55 // fetch, decode, µcode
	areaMiscCore  = 0.75 // interconnect stop, PMU, misc
	areaSMTExtra  = 0.10 // second architectural context, tags
	areaMorphMux  = 0.30 // in-order issue queues + mode muxes (~2%)
	areaFillerSeg = 0.30 // filler TLBs + reduced predictor + L0s (~2.5%)
	areaInOEngine = 0.35 // in-order scoreboard/issue for lender
	areaLenderARF = 0.25 // 128-entry architectural RF
	areaLenderFUs = 0.80 // narrower FP, fewer ports
	areaLenderFE  = 0.42 // simpler fetch/decode
	areaLenderMsc = 0.20
	// AreaLLCPerMB is Table II's LLC density.
	AreaLLCPerMB = 3.9
)

// CoreComponents returns the per-structure breakdown for a design's main
// core (the master-core or its alternative).
func CoreComponents(d core.Design) []Component {
	base := []Component{
		{"L1 I/D caches", areaL1Pair},
		{"branch predictor", areaPredictor},
		{"TLBs", areaTLBs},
		{"physical register file", areaPRF},
		{"OoO engine", areaOoOEngine},
		{"load/store queues", areaLSQ},
		{"functional units", areaFUs},
		{"front end", areaFrontEnd},
		{"misc", areaMiscCore},
	}
	switch d {
	case core.DesignBaseline:
	case core.DesignSMT, core.DesignSMTPlus:
		base = append(base, Component{"SMT context", areaSMTExtra})
	case core.DesignMorphCore:
		base = append(base, Component{"morph mode logic", areaMorphMux})
	case core.DesignMorphCorePlus:
		base = append(base, Component{"morph mode logic", areaMorphMux})
	case core.DesignDuplexity:
		base = append(base,
			Component{"morph mode logic", areaMorphMux},
			Component{"filler segregation (TLB/BP/L0)", areaFillerSeg})
	case core.DesignDuplexityRepl:
		base = append(base,
			Component{"morph mode logic", areaMorphMux},
			Component{"filler segregation (TLB/BP/L0)", areaFillerSeg},
			Component{"replicated L1 caches", areaL1Pair},
			Component{"replicated predictor/TLBs", areaPredictor + areaTLBs})
	}
	return base
}

// LenderComponents returns the lender-core breakdown (8-way InO HSMT).
func LenderComponents() []Component {
	return []Component{
		{"L1 I/D caches", areaL1Pair},
		{"branch predictor", areaLenderBP},
		{"TLBs", areaTLBs},
		{"architectural register file", areaLenderARF},
		{"in-order engine", areaInOEngine},
		{"functional units", areaLenderFUs},
		{"front end", areaLenderFE},
		{"misc", areaLenderMsc},
	}
}

func sumArea(cs []Component) float64 {
	a := 0.0
	for _, c := range cs {
		a += c.AreaMM2
	}
	return a
}

// CoreArea returns the design's main-core area (Table II rows 1-5).
func CoreArea(d core.Design) float64 { return sumArea(CoreComponents(d)) }

// LenderArea returns the lender-core area (Table II row 6).
func LenderArea() float64 { return sumArea(LenderComponents()) }

// ChipArea returns the evaluated unit's total area: the design's main
// core paired with a lender-core (Section V methodology) plus 1MB of LLC
// per core.
func ChipArea(d core.Design) float64 {
	return CoreArea(d) + LenderArea() + 2*AreaLLCPerMB
}

// TableII is one row of the paper's area/frequency table.
type TableII struct {
	Component string
	AreaMM2   float64
	FreqGHz   float64 // 0 for the LLC row
}

// TableIIRows regenerates Table II.
func TableIIRows() []TableII {
	return []TableII{
		{"Baseline OoO", CoreArea(core.DesignBaseline), core.DesignBaseline.FreqGHz()},
		{"SMT", CoreArea(core.DesignSMT), core.DesignSMT.FreqGHz()},
		{"MorphCore", CoreArea(core.DesignMorphCore), core.DesignMorphCore.FreqGHz()},
		{"Master-core", CoreArea(core.DesignDuplexity), core.DesignDuplexity.FreqGHz()},
		{"Master-core + replication", CoreArea(core.DesignDuplexityRepl), core.DesignDuplexityRepl.FreqGHz()},
		{"Lender-core", LenderArea(), core.LenderFreqGHz},
		{"LLC (per MB)", AreaLLCPerMB, 0},
	}
}

// Power model ---------------------------------------------------------------

// Dynamic energy per instruction in nJ by engine style, and leakage
// density; magnitudes are representative of 32nm server cores.
const (
	epiOoO     = 0.45 // nJ per instruction retired on an OoO engine
	epiInO     = 0.16 // nJ per instruction on the in-order engine
	leakWPerMM = 0.08 // W/mm² static
)

// Activity summarizes a simulation interval for the power model.
type Activity struct {
	// Seconds of simulated wall time.
	Seconds float64
	// OoOInstrs retired on out-of-order engines.
	OoOInstrs uint64
	// InOInstrs retired on in-order engines (lender + filler mode).
	InOInstrs uint64
	// Idle, when non-nil, is the C-state residency accounting from
	// internal/idle: static power is then residency-weighted instead of
	// flat, making chip power load-dependent. Nil preserves the legacy
	// flat-leakage model (and the legacy cache digests that pin it).
	Idle *idle.Summary
}

// Validate reports impossible activity.
func (a Activity) Validate() error {
	if a.Seconds <= 0 {
		return fmt.Errorf("power: non-positive interval")
	}
	if a.Idle != nil {
		if err := a.Idle.Validate(); err != nil {
			return err
		}
		if a.Idle.IdleUs*1e-6 > a.Seconds*(1+1e-9) {
			return fmt.Errorf("power: %v µs idle exceeds %v s interval", a.Idle.IdleUs, a.Seconds)
		}
	}
	return nil
}

// staticFracSeconds returns the interval's leakage-weighted seconds: time
// outside idle (and idle transitions) counts at full static power, and
// each C-state's residency counts at its PowerFrac. With no idle summary
// the whole interval is at full power — the legacy flat model.
func (a Activity) staticFracSeconds() float64 {
	if a.Idle == nil {
		return a.Seconds
	}
	idleS, weighted := 0.0, 0.0
	for _, st := range a.Idle.States {
		idleS += (st.ResidencyUs + st.TransitionUs) * 1e-6
		// Transitions burn full power; residency burns PowerFrac.
		weighted += st.TransitionUs*1e-6 + st.ResidencyUs*1e-6*st.PowerFrac
	}
	active := a.Seconds - idleS
	if active < 0 {
		active = 0
	}
	return active + weighted
}

// ChipPowerW returns total power: leakage on the full evaluated unit plus
// dynamic power from instruction activity. When Activity carries a
// C-state residency summary, leakage is weighted by per-state residency
// power so light load yields proportionally lower static power.
func ChipPowerW(d core.Design, act Activity) (float64, error) {
	if err := act.Validate(); err != nil {
		return 0, err
	}
	leak := ChipArea(d) * leakWPerMM * act.staticFracSeconds() / act.Seconds
	dyn := (float64(act.OoOInstrs)*epiOoO + float64(act.InOInstrs)*epiInO) * 1e-9 / act.Seconds
	return leak + dyn, nil
}

// IdlePowerW returns the average static power drawn during the summary's
// idle time on design d — the "what does an idle core cost" axis of the
// energy-proportionality curves. Transitions count at full leakage,
// residency at the state's PowerFrac. Zero idle time returns full
// leakage (the conservative answer for a core that never idles).
func IdlePowerW(d core.Design, sum *idle.Summary) (float64, error) {
	full := ChipArea(d) * leakWPerMM
	if sum == nil || sum.IdleUs <= 0 {
		return full, nil
	}
	if err := sum.Validate(); err != nil {
		return 0, err
	}
	weighted := 0.0
	for _, st := range sum.States {
		weighted += st.TransitionUs + st.ResidencyUs*st.PowerFrac
	}
	return full * weighted / sum.IdleUs, nil
}

// EnergyPerRequestUJ converts an interval's average power into µJ per
// served request — the headline energy-proportionality metric.
func EnergyPerRequestUJ(d core.Design, act Activity, requests uint64) (float64, error) {
	if requests == 0 {
		return 0, fmt.Errorf("power: no requests served")
	}
	p, err := ChipPowerW(d, act)
	if err != nil {
		return 0, err
	}
	return p * act.Seconds / float64(requests) * 1e6, nil
}

// EnergyPerInstrNJ is Figure 5(c)'s metric: power divided by aggregate
// instruction throughput.
func EnergyPerInstrNJ(d core.Design, act Activity) (float64, error) {
	p, err := ChipPowerW(d, act)
	if err != nil {
		return 0, err
	}
	total := act.OoOInstrs + act.InOInstrs
	if total == 0 {
		return 0, fmt.Errorf("power: no instructions retired")
	}
	ips := float64(total) / act.Seconds
	return p / ips * 1e9, nil
}

// PerfDensity is Figure 5(b)'s metric: instructions per second per mm²,
// using the full evaluated unit's area (core + lender + LLC), which masks
// part of the per-core differences exactly as the paper notes.
func PerfDensity(d core.Design, act Activity) (float64, error) {
	if err := act.Validate(); err != nil {
		return 0, err
	}
	ips := float64(act.OoOInstrs+act.InOInstrs) / act.Seconds
	return ips / ChipArea(d), nil
}

package cache

import "fmt"

// PageBytes is the simulated page size (4KB x86 pages).
const PageBytes = 4096

// TLB is a fully-associative, LRU translation lookaside buffer.
// Table I provisions 64-entry I/D TLBs; Duplexity replicates a full-size
// TLB for the filler-thread mode so fillers never disturb master-thread
// translations.
type TLB struct {
	entries []tlbEntry
	clock   uint64
	// lastVPN/lastIdx form a one-entry micro-TLB: consecutive accesses to
	// the same page skip the associative scan. The fast path refreshes
	// the entry's LRU stamp, so hit/miss behaviour is unchanged.
	lastVPN  uint64
	lastIdx  int
	haveLast bool

	Accesses uint64
	Misses   uint64
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	lru   uint64
}

// NewTLB builds a TLB with n entries.
func NewTLB(n int) *TLB {
	if n <= 0 {
		panic(fmt.Sprintf("cache: TLB size %d must be positive", n))
	}
	return &TLB{entries: make([]tlbEntry, n)}
}

// Lookup translates addr, filling on miss, and reports whether it hit.
func (t *TLB) Lookup(addr uint64) bool {
	vpn := addr / PageBytes
	t.clock++
	t.Accesses++
	if t.haveLast && vpn == t.lastVPN {
		t.entries[t.lastIdx].lru = t.clock
		return true
	}
	t.lastVPN = vpn
	t.haveLast = true
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vpn == vpn {
			e.lru = t.clock
			t.lastIdx = i
			return true
		}
	}
	// Miss: find the LRU victim (or an invalid slot).
	victim := 0
	for i := 1; i < len(t.entries); i++ {
		if !t.entries[victim].valid {
			break
		}
		e := &t.entries[i]
		if !e.valid || e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Misses++
	t.entries[victim] = tlbEntry{vpn: vpn, valid: true, lru: t.clock}
	t.lastIdx = victim
	return false
}

// Flush invalidates all translations (context switch without ASIDs).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i].valid = false
	}
	t.haveLast = false
}

// MissRate returns misses per access.
func (t *TLB) MissRate() float64 {
	if t.Accesses == 0 {
		return 0
	}
	return float64(t.Misses) / float64(t.Accesses)
}

// Size returns the number of entries.
func (t *TLB) Size() int { return len(t.entries) }

// StorageBits returns TLB state size for the area model (VPN ~36 bits,
// PPN ~36 bits, flags).
func (t *TLB) StorageBits() int { return len(t.entries) * 76 }

package workload

import (
	"math"
	"testing"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

func TestPhasedGenValidation(t *testing.T) {
	tex := isa.SynthConfig{CodeBytes: 4096, DataBytes: 4096}
	if _, err := NewPhasedGen(tex, nil, 1); err == nil {
		t.Fatal("no phases accepted")
	}
	if _, err := NewPhasedGen(tex, []Phase{{}}, 1); err == nil {
		t.Fatal("phase without instruction count accepted")
	}
	if _, err := NewPhasedGen(tex, []Phase{{Instrs: stats.Deterministic{Value: 10}, RemoteProb: 2}}, 1); err == nil {
		t.Fatal("bad remote probability accepted")
	}
	badTex := tex
	badTex.RemoteEvery = 5
	badTex.RemoteLat = stats.Deterministic{Value: 1}
	if _, err := NewPhasedGen(badTex, []Phase{{Instrs: stats.Deterministic{Value: 10}}}, 1); err == nil {
		t.Fatal("texture with its own remotes accepted")
	}
}

func TestPhasedGenStructure(t *testing.T) {
	tex := isa.SynthConfig{CodeBytes: 4096, DataBytes: 4096, LoadFrac: 0.2}
	g := MustPhasedGen(tex, []Phase{
		{Instrs: stats.Deterministic{Value: 100}, RemoteNs: stats.Deterministic{Value: 1000}},
		{Instrs: stats.Deterministic{Value: 50}},
	}, 3)
	remotes, requests, count := 0, 0, 0
	lastWasRemoteAt := -1
	for i := 0; i < (100+1+50)*20; i++ {
		in, ok := g.Next(0)
		if !ok {
			t.Fatal("phased gen went idle")
		}
		count++
		if in.Op == isa.OpRemote {
			remotes++
			if in.RemoteNs != 1000 {
				t.Fatalf("remote latency %v", in.RemoteNs)
			}
			lastWasRemoteAt = count
		}
		if in.EndOfRequest {
			requests++
			// EndOfRequest must come 50 instructions after the remote.
			if lastWasRemoteAt >= 0 && count-lastWasRemoteAt != 50 {
				t.Fatalf("request end %d instrs after remote, want 50", count-lastWasRemoteAt)
			}
		}
	}
	if requests != 20 {
		t.Fatalf("requests = %d, want 20", requests)
	}
	if remotes != 20 {
		t.Fatalf("remotes = %d, want 20 (one per request)", remotes)
	}
}

func TestPhasedGenRemoteProb(t *testing.T) {
	tex := isa.SynthConfig{CodeBytes: 4096, DataBytes: 4096}
	g := MustPhasedGen(tex, []Phase{
		{Instrs: stats.Deterministic{Value: 10}, RemoteNs: stats.Deterministic{Value: 500}, RemoteProb: 0.5},
	}, 9)
	remotes, requests := 0, 0
	for requests < 2000 {
		in, _ := g.Next(0)
		if in.Op == isa.OpRemote {
			remotes++
		}
		if in.EndOfRequest {
			requests++
		}
	}
	frac := float64(remotes) / float64(requests)
	if math.Abs(frac-0.5) > 0.05 {
		t.Fatalf("remote fraction %v, want ~0.5", frac)
	}
}

func TestRequestStreamValidation(t *testing.T) {
	if _, err := NewRequestStream(nil, 1000, 3.4, 1); err == nil {
		t.Fatal("nil generator accepted")
	}
	gen := isa.MustSynthStream(isa.SynthConfig{
		CodeBytes: 4096, DataBytes: 4096,
		InstrsPerRequest: stats.Deterministic{Value: 100},
	})
	if _, err := NewRequestStream(gen, 0, 3.4, 1); err == nil {
		t.Fatal("zero QPS accepted")
	}
	if _, err := NewRequestStream(gen, 1000, 0, 1); err == nil {
		t.Fatal("zero frequency accepted")
	}
}

func TestRequestStreamIdleAndArrivals(t *testing.T) {
	gen := isa.MustSynthStream(isa.SynthConfig{
		CodeBytes: 4096, DataBytes: 4096,
		InstrsPerRequest: stats.Deterministic{Value: 10},
	})
	// 100K QPS at 3.4GHz: mean gap 34000 cycles.
	rs, err := NewRequestStream(gen, 100_000, 3.4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if rs.HasWork(0) {
		// The first arrival can land at cycle ~0 with small probability;
		// accept either but ensure consistency with Next.
		if _, ok := rs.Next(0); !ok {
			t.Fatal("HasWork true but Next idle")
		}
	} else if _, ok := rs.Next(0); ok {
		t.Fatal("HasWork false but Next produced an instruction")
	}

	// March time forward: requests must arrive, produce 10 instructions
	// each, and register completions in FIFO arrival order.
	var completions int
	var lastArrival uint64
	for now := uint64(0); now < 3_400_000; now += 13 {
		for rs.HasWork(now) {
			in, ok := rs.Next(now)
			if !ok {
				t.Fatal("HasWork true but stream idle")
			}
			if in.EndOfRequest {
				a, ok := rs.PopCompleted()
				if !ok {
					t.Fatal("no completion recorded")
				}
				if a < lastArrival {
					t.Fatal("completions out of arrival order")
				}
				lastArrival = a
				completions++
			}
		}
	}
	// Expect ~100 arrivals in 1ms.
	if completions < 60 || completions > 140 {
		t.Fatalf("completions = %d, want ~100", completions)
	}
	if rs.Arrivals < uint64(completions) {
		t.Fatal("arrivals fewer than completions")
	}
}

func TestRequestStreamQueueDepth(t *testing.T) {
	gen := isa.MustSynthStream(isa.SynthConfig{
		CodeBytes: 4096, DataBytes: 4096,
		InstrsPerRequest: stats.Deterministic{Value: 5},
	})
	rs, err := NewRequestStream(gen, 1_000_000, 3.4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Never consuming: queue depth grows with time.
	rs.HasWork(3_400_000)
	if rs.QueueDepth() < 500 {
		t.Fatalf("queue depth %d after 1ms of 1M QPS without service", rs.QueueDepth())
	}
}

func TestMicroserviceSpecs(t *testing.T) {
	specs := Microservices()
	if len(specs) != 5 {
		t.Fatalf("suite has %d workloads, want 5", len(specs))
	}
	wantService := map[string]float64{
		"FLANN-HA": 11, "FLANN-LL": 2.3, "RSC": 15, "McRouter": 7, "WordStem": 4,
	}
	for _, s := range specs {
		if want, ok := wantService[s.Name]; !ok || math.Abs(s.NominalServiceUs-want) > 1e-9 {
			t.Errorf("%s nominal service %v, want %v", s.Name, s.NominalServiceUs, want)
		}
		if s.CapacityQPS() <= 0 {
			t.Errorf("%s capacity not positive", s.Name)
		}
		if got := s.QPSAtLoad(0.5); math.Abs(got-0.5*s.CapacityQPS()) > 1e-9 {
			t.Errorf("%s QPSAtLoad broken", s.Name)
		}
		d := s.ServiceDist()
		if math.Abs(d.Mean()-s.NominalServiceUs) > 1e-9 {
			t.Errorf("%s service dist mean %v != nominal %v", s.Name, d.Mean(), s.NominalServiceUs)
		}
	}
	if WordStem().HasStalls() {
		t.Error("WordStem should be stall-free")
	}
	if !McRouter().HasStalls() {
		t.Error("McRouter should stall")
	}
}

// Per-request instruction streams must carry the right stall structure:
// measure mean stall ns per request against the spec.
func TestMicroserviceStallStructure(t *testing.T) {
	for _, s := range Microservices() {
		gen := s.NewGen(11)
		var stallNs float64
		requests := 0
		for requests < 500 {
			in, _ := gen.Next(0)
			if in.Op == isa.OpRemote {
				stallNs += in.RemoteNs
			}
			if in.EndOfRequest {
				requests++
			}
		}
		gotUs := stallNs / float64(requests) / 1000
		if s.StallUs == 0 {
			if gotUs != 0 {
				t.Errorf("%s: unexpected stalls %vµs", s.Name, gotUs)
			}
			continue
		}
		if math.Abs(gotUs-s.StallUs)/s.StallUs > 0.15 {
			t.Errorf("%s: stall %vµs per request, want ~%v", s.Name, gotUs, s.StallUs)
		}
	}
}

func TestMasterLoadValidation(t *testing.T) {
	s := McRouter()
	if _, err := s.NewMaster(0, 3.4, 1); err == nil {
		t.Fatal("zero load accepted")
	}
	if _, err := s.NewMaster(1.5, 3.4, 1); err == nil {
		t.Fatal("overload accepted")
	}
	if _, err := s.NewMaster(0.5, 3.4, 1); err != nil {
		t.Fatal(err)
	}
}

func TestFLANNXY(t *testing.T) {
	s := FLANNXY(9, 1, 3)
	remotes, n := 0, 0
	var stall float64
	for remotes < 400 {
		in, _ := s.Next(0)
		n++
		if in.Op == isa.OpRemote {
			remotes++
			stall += in.RemoteNs
		}
	}
	gap := float64(n) / float64(remotes)
	if math.Abs(gap-9*InstrsPerUs)/(9*InstrsPerUs) > 0.1 {
		t.Fatalf("remote gap %v instrs, want ~%v", gap, 9*InstrsPerUs)
	}
	if mean := stall / float64(remotes); math.Abs(mean-1000) > 150 {
		t.Fatalf("mean stall %v ns, want ~1000", mean)
	}
	// Baseline: no remotes.
	b := FLANNXY(9, 0, 3)
	for i := 0; i < 10000; i++ {
		in, _ := b.Next(0)
		if in.Op == isa.OpRemote {
			t.Fatal("baseline produced a remote op")
		}
	}
}

func TestBatchSet(t *testing.T) {
	set := BatchSet(32, 9)
	if len(set) != 32 {
		t.Fatalf("got %d streams", len(set))
	}
	// Distinct streams: first instructions should differ across seeds
	// (different code bases).
	a, _ := set[0].Next(0)
	b, _ := set[1].Next(0)
	if a.PC == b.PC {
		t.Fatal("batch streams share a code region")
	}
}

func TestSPECMixClean(t *testing.T) {
	s := SPECMix(4)
	for i := 0; i < 20000; i++ {
		in, ok := s.Next(0)
		if !ok {
			t.Fatal("SPEC mix went idle")
		}
		if in.Op == isa.OpRemote {
			t.Fatal("SPEC mix produced µs-scale stalls")
		}
	}
}

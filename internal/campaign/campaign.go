// Package campaign is the experiment-campaign engine: a worker pool
// that fans embarrassingly-parallel simulation cells out across
// goroutines, backed by a content-addressed on-disk result cache and an
// append-only completion journal.
//
// The paper's evaluation (Figures 5a–f, Figure 6, the ablations) is a
// campaign of independent (design × workload × load × seed) cells.
// Each cell derives every random seed from its own Key, and each worker
// confines its Dyad (and all other simulator state) to a single
// goroutine, so campaign results are bit-identical to the sequential
// path at any worker count. Results are returned in submission order,
// never in completion order.
//
// Cells are keyed by a SHA-256 digest over the cell's full input
// (design, workload-spec fingerprint, load, scale, seed, and a
// model-version string). With a cache directory configured, each
// completed cell is journaled to disk as it finishes: repeated runs and
// overlapping figures skip simulation entirely, and a killed campaign
// resumes where it left off instead of starting over.
package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"duplexity/internal/telemetry"
)

// Options configures an Engine.
type Options struct {
	// Workers is the number of concurrent cells; <= 0 means one worker
	// per CPU (runtime.NumCPU()). Workers = 1 is the sequential path.
	Workers int
	// CacheDir enables the persistent content-addressed result cache
	// (and its completion journal) rooted at this directory. Empty means
	// no persistence: every cell simulates.
	CacheDir string
	// Remote, when non-nil, is consulted after the local cache and before
	// local computation: cells are dispatched to it (a fleet of worker
	// daemons, in practice) and its entries are written into the local
	// cache verbatim, so a remote-executed campaign leaves the same cache
	// bytes a local run would. A Remote error falls back to local
	// computation when the task has a Run body.
	Remote Remote
}

// Remote executes a cell somewhere else and returns the same Entry a
// local computation would have cached: the full key, the producing
// worker's simulation wall time, and the raw result JSON. The bool
// reports whether the remote answered from its own cache. Implementations
// must be safe for concurrent use; internal/fleet provides the
// rendezvous-sharded, hedged implementation. tr, which may be nil
// (untraced), receives the dispatch's remote spans so the caller's
// end-to-end timeline covers the network hop (DESIGN.md §11).
type Remote interface {
	Exec(k Key, tr *telemetry.CellTrace) (Entry, bool, error)
}

// DeadlineRemote is an optional Remote refinement for deadline-lane
// cells: ExecDeadline behaves like Exec but may place and hedge more
// aggressively as the deadline nears (Hurry-up-style scheduling). A
// Remote that does not implement it is driven through Exec regardless
// of deadline.
type DeadlineRemote interface {
	Remote
	ExecDeadline(k Key, tr *telemetry.CellTrace, deadline time.Time) (Entry, bool, error)
}

// Engine executes campaign cells on a bounded worker pool with optional
// result caching. An Engine is safe for use from multiple goroutines,
// though callers typically submit one batch at a time.
type Engine struct {
	workers int
	cache   *Cache
	journal *Journal
	remote  Remote
	stats   *Stats

	// microMu guards the phase-1 layer of two-phase cells: an in-memory
	// memo of resolved micro-sim results (bounded by the number of
	// unique design×workload points) and the singleflight map that
	// coalesces concurrent cells sharing a micro-sim.
	microMu      sync.Mutex
	microMem     map[string]json.RawMessage
	microFlights map[string]*microFlight
}

// New builds an engine. With a CacheDir, the directory is created if
// needed and pre-existing entries are counted (reported as PriorCells in
// the stats summary, so a resumed run can say how much work it skipped).
func New(o Options) (*Engine, error) {
	w := o.Workers
	if w <= 0 {
		w = runtime.NumCPU()
	}
	e := &Engine{
		workers: w, remote: o.Remote, stats: newStats(),
		microMem:     make(map[string]json.RawMessage),
		microFlights: make(map[string]*microFlight),
	}
	if o.CacheDir != "" {
		c, err := OpenCache(o.CacheDir)
		if err != nil {
			return nil, err
		}
		n, err := c.Len()
		if err != nil {
			return nil, err
		}
		e.cache = c
		e.journal = NewJournal(c.JournalPath())
		e.stats.setPrior(n)
	}
	return e, nil
}

// Workers returns the configured pool width.
func (e *Engine) Workers() int { return e.workers }

// CacheDir returns the cache root, or "" when the engine is ephemeral.
func (e *Engine) CacheDir() string {
	if e.cache == nil {
		return ""
	}
	return e.cache.Dir()
}

// Lookup probes the local cache for a completed cell without touching
// hit/miss accounting or the journal — the read-only probe the durable
// job store uses to rematerialize finished cells after a restart.
func (e *Engine) Lookup(k Key) (Entry, bool) {
	if e.cache == nil {
		return Entry{}, false
	}
	return e.cache.GetEntry(k.Digest())
}

// Stats snapshots the engine's cache and wall-time accounting.
func (e *Engine) Stats() Summary {
	s := e.stats.summary()
	s.Workers = e.workers
	return s
}

// Task is one campaign cell: a content-address for its full input and
// the function that computes it. R must round-trip through
// encoding/json unchanged for cache hits to be exact (exported fields,
// no maps with non-deterministic iteration feeding back into results).
type Task[R any] struct {
	Key Key
	Run func() (R, error)
	// TwoPhase, when non-nil, resolves the cell through the two-layer
	// cache (phase-1 micro-sims shared across cells, phase-2 stored
	// under the cell's own digest) instead of Run. TwoPhase.Queue must
	// produce bytes identical to Run's for the same key.
	TwoPhase *TwoPhase
}

// Run executes tasks on the engine's worker pool and returns their
// results in submission order. Cells whose digest is already in the
// cache are decoded instead of simulated and counted as hits; computed
// cells are journaled to the cache as they finish, so an interrupted
// batch resumes from its completed cells. On failure Run returns the
// error of the lowest-index failing task (deterministic at any worker
// count); remaining queued cells are abandoned, but cells already
// finished are still in the cache.
func Run[R any](e *Engine, tasks []Task[R]) ([]R, error) {
	results := make([]R, len(tasks))
	errs := make([]error, len(tasks))
	var failed atomic.Bool

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue // drain the queue without starting new cells
				}
				r, _, err := runOne(e, tasks[i])
				results[i], errs[i] = r, err
				if err != nil {
					failed.Store(true)
				}
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			k := tasks[i].Key
			return nil, fmt.Errorf("campaign: cell %s %s/%s@%v: %w",
				k.Kind, k.Design, k.Workload, k.Load, err)
		}
	}
	// Clean batch completion: flush a checkpoint so out-of-band tooling
	// can see how far the campaign has progressed (non-fatal, like the
	// journal itself).
	_ = e.Checkpoint(true)
	return results, nil
}

// Do resolves a single cell outside any batch: the asynchronous
// submission hook used by long-running services (internal/serve) that
// admit cells one at a time instead of in Run batches. It shares the
// cache, journal, and stats accounting with Run and is safe for
// concurrent use. The second return reports whether the cache answered
// the cell.
func Do[R any](e *Engine, t Task[R]) (R, bool, error) {
	return runOne(e, t)
}

// runOne resolves one cell: cache probe, then simulation plus
// journaling on a miss. The bool reports a cache hit.
func runOne[R any](e *Engine, t Task[R]) (R, bool, error) {
	var zero R
	var ent Entry
	var cached bool
	var err error
	if t.TwoPhase != nil {
		ent, cached, err = e.DoRawTwoPhase(t.Key, t.TwoPhase, nil, time.Time{})
	} else {
		var run func() (json.RawMessage, error)
		if t.Run != nil {
			run = func() (json.RawMessage, error) {
				r, rerr := t.Run()
				if rerr != nil {
					return nil, rerr
				}
				raw, merr := json.Marshal(r)
				if merr != nil {
					return nil, fmt.Errorf("encoding result: %w", merr)
				}
				return raw, nil
			}
		}
		ent, cached, err = e.DoRaw(t.Key, run)
	}
	if err != nil {
		return zero, false, err
	}
	var r R
	if err := json.Unmarshal(ent.Result, &r); err != nil {
		return zero, false, fmt.Errorf("decoding result: %w", err)
	}
	return r, cached, nil
}

// DoRaw resolves one cell at the cache-entry level: local cache probe,
// then the remote executor (if configured), then local computation via
// run. The returned Entry is exactly what the cache holds (or would
// hold, sans cache dir), which is what lets a fleet worker ship its
// envelope to a coordinator that then stores byte-identical entries.
// The bool reports whether any cache — local or a remote worker's —
// answered the cell. run may be nil when the caller cannot compute
// locally; such a cell fails if it is neither cached nor remotely
// executable.
func (e *Engine) DoRaw(k Key, run func() (json.RawMessage, error)) (Entry, bool, error) {
	return e.DoRawTraced(k, run, nil)
}

// DoRawTraced is DoRaw with per-stage tracing: the cache probe, remote
// dispatch, local compute, and cache-write serialization each record a
// span on tr (nil tr: untraced, zero extra work). The stage breakdown
// is also journaled with the completion. Tracing never changes what is
// computed or cached — entries and results are byte-identical with tr
// nil or not.
func (e *Engine) DoRawTraced(k Key, run func() (json.RawMessage, error), tr *telemetry.CellTrace) (Entry, bool, error) {
	return e.DoRawDeadline(k, run, tr, time.Time{})
}

// DoRawDeadline is DoRawTraced for deadline-lane cells: a non-zero
// deadline is forwarded to the remote when it implements DeadlineRemote,
// so a fleet coordinator can prefer the hot-cache worker and hedge
// earlier as the budget shrinks. The deadline never changes what is
// computed or cached — only where and how eagerly.
func (e *Engine) DoRawDeadline(k Key, run func() (json.RawMessage, error), tr *telemetry.CellTrace, deadline time.Time) (Entry, bool, error) {
	digest := k.Digest()

	if e.cache != nil {
		probe := time.Now()
		if ent, ok := e.cache.GetEntry(digest); ok {
			tr.StageDetail(telemetry.StageCache, probe, "hit")
			e.finish(k, digest, true, false, 0, tr)
			return ent, true, nil
		}
		tr.StageDetail(telemetry.StageCache, probe, "miss")
	}

	if e.remote != nil {
		exec := e.remote.Exec
		if dr, ok := e.remote.(DeadlineRemote); ok && !deadline.IsZero() {
			exec = func(k Key, tr *telemetry.CellTrace) (Entry, bool, error) {
				return dr.ExecDeadline(k, tr, deadline)
			}
		}
		ent, remoteCached, err := exec(k, tr)
		if err == nil {
			if e.cache != nil {
				put := time.Now()
				if perr := e.cache.Put(digest, ent); perr != nil {
					e.stats.recordError()
					return Entry{}, false, perr
				}
				tr.Stage(telemetry.StageSerialize, put)
			}
			// Cached reports the worker's cache; WallSeconds is the
			// worker's simulation time, so SimWallSeconds still sums
			// real compute fleet-wide.
			e.finish(k, digest, remoteCached, true, ent.WallSeconds, tr)
			return ent, remoteCached, nil
		}
		if run == nil {
			e.stats.recordError()
			return Entry{}, false, err
		}
		// Remote exhausted its retries; fall back to computing locally so
		// a coordinator outlives its whole fleet.
	}

	if run == nil {
		e.stats.recordError()
		return Entry{}, false, fmt.Errorf("cell %s not cached and not computable", digest[:12])
	}

	start := time.Now()
	raw, err := run()
	wall := time.Since(start).Seconds()
	tr.Stage(telemetry.StageCompute, start)
	if err != nil {
		e.stats.recordError()
		return Entry{}, false, err
	}
	ent := Entry{Key: k, WallSeconds: wall, Result: raw}
	if e.cache != nil {
		put := time.Now()
		if err := e.cache.Put(digest, ent); err != nil {
			e.stats.recordError()
			return Entry{}, false, err
		}
		tr.Stage(telemetry.StageSerialize, put)
	}
	e.finish(k, digest, false, false, wall, tr)
	return ent, false, nil
}

// finish records accounting and journals the completion (with the
// traced per-stage breakdown, when there is one).
func (e *Engine) finish(k Key, digest string, cached, remote bool, wall float64, tr *telemetry.CellTrace) {
	seq := e.stats.record(CellTiming{
		Kind: k.Kind, Design: k.Design, Workload: k.Workload, Load: k.Load,
		Cached: cached, Remote: remote, WallSeconds: wall,
	})
	if e.journal != nil {
		// Journal failures are deliberately non-fatal: the journal is an
		// observability artifact; resume correctness comes from the
		// content-addressed cache entries themselves.
		_ = e.journal.Append(JournalEntry{
			Seq: seq, Digest: digest, Kind: k.Kind,
			Design: k.Design, Workload: k.Workload, Load: k.Load,
			Cached: cached, Remote: remote, WallSeconds: wall,
			StagesUs: tr.StageTotalsUs(),
		})
	}
}

package jobstore

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func schedJobOf(id string, n int) *schedJob {
	sj := &schedJob{id: id}
	cells := testCells(n)
	for i, c := range cells {
		sj.cells = append(sj.cells, pendingCell{jobID: id, index: i, cell: c, queued: time.Now()})
	}
	return sj
}

// drain pulls up to n dispatches without blocking forever, releasing
// each immediately so quotas never throttle the drain itself.
func drain(t *testing.T, s *Scheduler, n int) []Dispatched {
	t.Helper()
	out := make([]Dispatched, 0, n)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			d, ok := s.Next()
			if !ok {
				return
			}
			out = append(out, d)
			s.Release(d.Tenant)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("scheduler drain stalled after %d dispatches", len(out))
	}
	return out
}

func TestFairShareProportionalToWeights(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 100, MaxQueuedJobs: 10},
		map[string]float64{"heavy": 3, "light": 1}, 1000)
	if err := s.AddJob("heavy", schedJobOf("j1", 40), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob("light", schedJobOf("j2", 40), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range drain(t, s, 40) {
		counts[d.Tenant]++
	}
	// Weighted fair queueing: over the first 40 dispatches heavy should
	// get ~3x light (30/10); allow one dispatch of slack for boundary
	// rounding.
	if counts["heavy"] < 29 || counts["heavy"] > 31 {
		t.Fatalf("heavy got %d of 40 dispatches, want ~30 (weights 3:1): %v", counts["heavy"], counts)
	}
}

func TestInteractiveLanePreempts(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 100, MaxQueuedJobs: 10}, nil, 1000)
	if err := s.AddJob("batcher", schedJobOf("j1", 10), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AddJob("urgent", schedJobOf("j2", 3), LaneInteractive, false); err != nil {
		t.Fatal(err)
	}
	got := drain(t, s, 5)
	for i := 0; i < 3; i++ {
		if got[i].Lane != LaneInteractive {
			t.Fatalf("dispatch %d is %s/%s, want the interactive lane first: %+v", i, got[i].Tenant, got[i].Lane, got)
		}
	}
	if got[3].Lane != LaneBatch || got[4].Lane != LaneBatch {
		t.Fatalf("batch lane did not follow: %+v", got)
	}
}

func TestMaxInflightQuotaEnforced(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 2, MaxQueuedJobs: 10}, nil, 1000)
	if err := s.AddJob("t", schedJobOf("j1", 5), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	var got []Dispatched
	for i := 0; i < 2; i++ {
		d, ok := s.Next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		got = append(got, d)
	}
	// Third dispatch must block until a release.
	next := make(chan Dispatched, 1)
	go func() {
		if d, ok := s.Next(); ok {
			next <- d
		}
	}()
	select {
	case d := <-next:
		t.Fatalf("dispatch %+v exceeded MaxInflight=2", d)
	case <-time.After(50 * time.Millisecond):
	}
	s.Release("t")
	select {
	case <-next:
	case <-time.After(2 * time.Second):
		t.Fatal("release did not unblock the scheduler")
	}
}

func TestMaxQueuedJobsSheds(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 4, MaxQueuedJobs: 2}, nil, 100)
	for i := 0; i < 2; i++ {
		if err := s.AddJob("t", schedJobOf(fmt.Sprintf("j%d", i), 1), LaneBatch, false); err != nil {
			t.Fatal(err)
		}
	}
	err := s.AddJob("t", schedJobOf("j2", 1), LaneBatch, false)
	qe, ok := err.(*QuotaError)
	if !ok || qe.Tenant != "t" || qe.Limit != 2 {
		t.Fatalf("third job error = %v, want QuotaError limit 2", err)
	}
	// JobDone frees a slot.
	s.JobDone("t")
	if err := s.AddJob("t", schedJobOf("j3", 1), LaneBatch, false); err != nil {
		t.Fatalf("add after JobDone failed: %v", err)
	}
	// force (restart resume) bypasses the quota even at the limit.
	if err := s.AddJob("t", schedJobOf("j4", 1), LaneBatch, true); err != nil {
		t.Fatalf("forced add failed: %v", err)
	}
}

func TestIdleTenantVtimeNormalized(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 100, MaxQueuedJobs: 10}, nil, 1000)
	if err := s.AddJob("busy", schedJobOf("j1", 20), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	drain(t, s, 10) // busy's vtime advances to 10
	// A tenant arriving now starts at the active minimum, not zero: it
	// must not monopolize dispatch to "catch up" time it never queued.
	if err := s.AddJob("late", schedJobOf("j2", 20), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range drain(t, s, 10) {
		counts[d.Tenant]++
	}
	if counts["late"] > 6 {
		t.Fatalf("late tenant got %d of 10 dispatches after idling, want ~5: %v", counts["late"], counts)
	}
}

func TestTryAcquireQuota(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 2, MaxQueuedJobs: 4}, nil, 100)
	for i := 0; i < 2; i++ {
		if err := s.TryAcquire("t"); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.TryAcquire("t"); err == nil {
		t.Fatal("TryAcquire beyond MaxInflight succeeded")
	}
	s.Release("t")
	if err := s.TryAcquire("t"); err != nil {
		t.Fatalf("TryAcquire after release: %v", err)
	}
}

func TestCloseReturnsPending(t *testing.T) {
	s := NewScheduler(Quota{Weight: 1, MaxInflight: 10, MaxQueuedJobs: 10}, nil, 100)
	if err := s.AddJob("t", schedJobOf("j1", 3), LaneBatch, false); err != nil {
		t.Fatal(err)
	}
	d, ok := s.Next()
	if !ok {
		t.Fatal("no first dispatch")
	}
	rest := s.Close()
	if len(rest) != 2 {
		t.Fatalf("Close returned %d pending cells, want 2 (1 of 3 dispatched)", len(rest))
	}
	for _, r := range rest {
		if r.Index == d.Index {
			t.Fatalf("Close returned the already-dispatched cell %d", d.Index)
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("Next returned work after Close")
	}
	if err := s.AddJob("t", schedJobOf("j2", 1), LaneBatch, false); err != ErrClosed {
		t.Fatalf("AddJob after Close = %v, want ErrClosed", err)
	}
}

// TestInteractiveDeadlineUnderSaturation is the acceptance-criteria
// pin: two tenants saturating the batch lane, a third tenant submits a
// small interactive-lane job with a deadline — the interactive job
// finishes before its deadline and no tenant ever exceeds its
// in-flight quota.
func TestInteractiveDeadlineUnderSaturation(t *testing.T) {
	const perCell = 2 * time.Millisecond
	quota := Quota{Weight: 1, MaxInflight: 2, MaxQueuedJobs: 8}
	s := NewScheduler(quota, nil, 4)

	var mu sync.Mutex
	inflight := map[string]int{}
	maxInflight := map[string]int{}
	interactiveLeft := 4
	var interactiveDone time.Time

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				d, ok := s.Next()
				if !ok {
					return
				}
				mu.Lock()
				inflight[d.Tenant]++
				if inflight[d.Tenant] > maxInflight[d.Tenant] {
					maxInflight[d.Tenant] = inflight[d.Tenant]
				}
				mu.Unlock()
				time.Sleep(perCell) // the "simulation"
				mu.Lock()
				inflight[d.Tenant]--
				if d.Lane == LaneInteractive {
					if interactiveLeft--; interactiveLeft == 0 {
						interactiveDone = time.Now()
					}
				}
				mu.Unlock()
				s.Release(d.Tenant)
			}
		}()
	}

	// Two tenants pile on saturating batch work...
	for _, tn := range []string{"batch-a", "batch-b"} {
		for i := 0; i < 4; i++ {
			if err := s.AddJob(tn, schedJobOf(fmt.Sprintf("%s-%d", tn, i), 10), LaneBatch, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	time.Sleep(5 * perCell) // let the batch lanes saturate the workers

	// ...then a third tenant needs 4 interactive cells inside a budget
	// that saturated FIFO service of 80 batch cells would blow through.
	deadline := time.Now().Add(20 * perCell)
	if err := s.AddJob("urgent", schedJobOf("rush", 4), LaneInteractive, false); err != nil {
		t.Fatal(err)
	}
	for {
		mu.Lock()
		done := interactiveLeft == 0
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline.Add(100 * perCell)) {
			t.Fatal("interactive job never finished")
		}
		time.Sleep(time.Millisecond)
	}

	mu.Lock()
	finished := interactiveDone
	mu.Unlock()
	if finished.After(deadline) {
		t.Fatalf("interactive job finished %v past its deadline under batch saturation",
			finished.Sub(deadline))
	}
	s.Close()
	wg.Wait()
	for tn, peak := range maxInflight {
		if peak > quota.MaxInflight {
			t.Fatalf("tenant %s peaked at %d in-flight cells, quota is %d", tn, peak, quota.MaxInflight)
		}
	}
}

package cache

import (
	"testing"
	"testing/quick"

	"duplexity/internal/stats"
)

func l1Cfg() Config {
	return Config{Name: "L1D", SizeBytes: 64 * 1024, LineBytes: 64, Ways: 2, HitLatency: 3}
}

func tinyCfg() Config {
	// 4 sets x 2 ways x 64B lines = 512B: easy to reason about.
	return Config{Name: "tiny", SizeBytes: 512, LineBytes: 64, Ways: 2, HitLatency: 1}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", SizeBytes: 0, LineBytes: 64, Ways: 2},
		{Name: "b", SizeBytes: 1024, LineBytes: 48, Ways: 2},
		{Name: "c", SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{Name: "d", SizeBytes: 1024, LineBytes: 64, Ways: 5},
		{Name: "e", SizeBytes: 64 * 3, LineBytes: 64, Ways: 1}, // 3 sets
		{Name: "f", SizeBytes: 1024, LineBytes: 64, Ways: 2, HitLatency: -1},
	}
	for _, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("config %q accepted: %+v", c.Name, c)
		}
	}
	if _, err := New(l1Cfg()); err != nil {
		t.Fatalf("Table I L1 config rejected: %v", err)
	}
}

func TestMissThenHit(t *testing.T) {
	c := MustNew(tinyCfg())
	if c.Access(0x1000, false, OwnerMaster) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000, false, OwnerMaster) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1010, false, OwnerMaster) {
		t.Fatal("same-line access missed")
	}
	if c.Stats.TotalAccesses() != 3 || c.Stats.TotalMisses() != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := MustNew(tinyCfg()) // 4 sets, 2 ways
	// Three lines mapping to set 0: addresses stride 4*64=256.
	a, b, d := uint64(0), uint64(256), uint64(512)
	c.Access(a, false, OwnerMaster)
	c.Access(b, false, OwnerMaster)
	c.Access(a, false, OwnerMaster) // a is now MRU
	c.Access(d, false, OwnerMaster) // evicts b (LRU)
	if !c.Contains(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line not evicted")
	}
	if !c.Contains(d) {
		t.Fatal("new line not installed")
	}
}

func TestCrossOwnerEvictionStats(t *testing.T) {
	c := MustNew(tinyCfg())
	c.Access(0, false, OwnerMaster)
	c.Access(256, false, OwnerMaster)
	// Filler fills the same set twice: evicts both master lines.
	c.Access(512, false, OwnerFiller)
	c.Access(768, false, OwnerFiller)
	if c.Stats.CrossEvictions != 2 {
		t.Fatalf("cross evictions = %d, want 2", c.Stats.CrossEvictions)
	}
}

func TestOnEvictCallback(t *testing.T) {
	c := MustNew(tinyCfg())
	var evicted []uint64
	c.OnEvict = func(addr uint64) { evicted = append(evicted, addr) }
	c.Access(0, false, OwnerMaster)
	c.Access(256, false, OwnerMaster)
	c.Access(512, false, OwnerMaster) // evicts line 0
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evicted = %v, want [0]", evicted)
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(tinyCfg())
	c.Access(0x40, false, OwnerMaster)
	c.Invalidate(0x40)
	if c.Contains(0x40) {
		t.Fatal("line survived invalidation")
	}
	c.Invalidate(0x9999000) // absent: no-op
	if c.Stats.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Stats.Invalidations)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := MustNew(tinyCfg())
	for i := uint64(0); i < 8; i++ {
		c.Access(i*64, false, OwnerFiller)
	}
	c.InvalidateAll()
	for i := uint64(0); i < 8; i++ {
		if c.Contains(i * 64) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
}

func TestWritebackAccounting(t *testing.T) {
	c := MustNew(tinyCfg())
	c.Access(0, true, OwnerMaster) // dirty
	c.Access(256, false, OwnerMaster)
	c.Access(512, false, OwnerMaster) // evicts dirty line 0
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d, want 1", c.Stats.Writebacks)
	}
	wt := tinyCfg()
	wt.WriteThrough = true
	c2 := MustNew(wt)
	c2.Access(0, true, OwnerMaster)
	c2.Access(256, false, OwnerMaster)
	c2.Access(512, false, OwnerMaster)
	if c2.Stats.Writebacks != 0 {
		t.Fatal("write-through cache recorded a writeback")
	}
}

func TestOccupancyBy(t *testing.T) {
	c := MustNew(tinyCfg()) // 8 lines total
	c.Access(0, false, OwnerMaster)
	c.Access(64, false, OwnerMaster)
	c.Access(128, false, OwnerFiller)
	if got := c.OccupancyBy(OwnerMaster); got != 0.25 {
		t.Fatalf("master occupancy = %v, want 0.25", got)
	}
	if got := c.OccupancyBy(OwnerFiller); got != 0.125 {
		t.Fatalf("filler occupancy = %v, want 0.125", got)
	}
}

func TestMissRates(t *testing.T) {
	c := MustNew(l1Cfg())
	if c.Stats.MissRate() != 0 {
		t.Fatal("empty cache reports non-zero miss rate")
	}
	// Working set fits: after warmup, miss rate should be ~0.
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < 32*1024; a += 64 {
			c.Access(a, false, OwnerMaster)
		}
	}
	if r := c.Stats.MissRateFor(OwnerMaster); r > 0.26 {
		t.Fatalf("fitting working set miss rate = %v", r)
	}
	// A thrashing working set (4x capacity, sequential) misses ~always.
	c2 := MustNew(l1Cfg())
	for round := 0; round < 3; round++ {
		for a := uint64(0); a < 256*1024; a += 64 {
			c2.Access(a, false, OwnerFiller)
		}
	}
	if r := c2.Stats.MissRateFor(OwnerFiller); r < 0.95 {
		t.Fatalf("thrashing miss rate = %v, want ~1", r)
	}
}

// Property: Access is deterministic in its hit result w.r.t. Contains,
// and a just-accessed address is always contained afterwards.
func TestAccessContainsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c := MustNew(tinyCfg())
		r := stats.NewRNG(seed)
		for i := 0; i < 2000; i++ {
			addr := uint64(r.Intn(4096))
			pre := c.Contains(addr)
			hit := c.Access(addr, r.Bernoulli(0.3), OwnerMaster)
			if hit != pre {
				return false
			}
			if !c.Contains(addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the number of valid lines never exceeds capacity, and
// eviction callbacks fire exactly when a valid line is replaced.
func TestCapacityInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		c := MustNew(tinyCfg())
		installs, evicts := 0, 0
		c.OnEvict = func(uint64) { evicts++ }
		r := stats.NewRNG(seed)
		for i := 0; i < 1000; i++ {
			if !c.Access(uint64(r.Intn(100))*64, false, OwnerMaster) {
				installs++
			}
		}
		valid := 0
		for s := uint64(0); s < 100; s++ {
			if c.Contains(s * 64) {
				valid++
			}
		}
		return valid <= 8 && installs-evicts == valid
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(4)
	if tlb.Lookup(0) {
		t.Fatal("cold TLB hit")
	}
	if !tlb.Lookup(100) { // same page
		t.Fatal("same-page lookup missed")
	}
	// Fill 4 distinct pages, then a 5th evicts the LRU (page 0).
	tlb.Lookup(1 * PageBytes)
	tlb.Lookup(2 * PageBytes)
	tlb.Lookup(3 * PageBytes)
	tlb.Lookup(4 * PageBytes)
	if tlb.Lookup(0) {
		t.Fatal("LRU page not evicted")
	}
	if tlb.MissRate() == 0 {
		t.Fatal("miss rate not tracked")
	}
	tlb.Flush()
	if tlb.Lookup(4 * PageBytes) {
		t.Fatal("flush did not clear translations")
	}
}

func TestTLBLRUOrder(t *testing.T) {
	tlb := NewTLB(2)
	tlb.Lookup(0 * PageBytes)
	tlb.Lookup(1 * PageBytes)
	tlb.Lookup(0 * PageBytes) // page 0 now MRU
	tlb.Lookup(2 * PageBytes) // evicts page 1
	if !tlb.Lookup(0 * PageBytes) {
		t.Fatal("MRU page evicted")
	}
	if tlb.Lookup(1*PageBytes) == true {
		t.Fatal("LRU page retained")
	}
}

func TestStorageBits(t *testing.T) {
	c := MustNew(l1Cfg())
	if c.StorageBits() != 1024*50 {
		t.Fatalf("cache tag storage = %d", c.StorageBits())
	}
	if NewTLB(64).StorageBits() != 64*76 {
		t.Fatal("TLB storage formula changed")
	}
}

package fleet

import (
	"sync"
	"sync/atomic"
	"time"
)

// worker is the coordinator's view of one duplexityd worker daemon: a
// bounded in-flight window with AIMD adjustment, a 429-driven holdoff,
// and exponential down-marking on connection failure.
type worker struct {
	name string // base URL, e.g. "http://host:9400"
	// joined marks a worker that entered the fleet through
	// POST /v1/fleet/join rather than the boot-time -fleet list. Joined
	// workers must keep heartbeating or they are evicted; static workers
	// are only ever down-marked, never removed.
	joined bool

	mu sync.Mutex
	// lastBeat is the most recent join/heartbeat for a joined worker.
	lastBeat time.Time
	// window bounds concurrent dispatches; additive increase on success
	// up to windowCap, halved when the worker sheds with 429 — the same
	// loop TCP runs, fed by the serving layer's admission signals.
	window    int
	windowCap int
	inflight  int
	// notBefore holds dispatch off until a 429's Retry-After has passed.
	notBefore time.Time
	// downUntil marks the worker unusable after connection failures,
	// with exponential backoff so a dead host costs progressively less.
	downUntil time.Time
	fails     int

	dispatched atomic.Int64
	completed  atomic.Int64
	rejected   atomic.Int64
	failed     atomic.Int64
}

func newWorker(name string) *worker {
	return &worker{name: name, window: 1, windowCap: 16}
}

// beat records a heartbeat and clears any down-marking: a worker that
// can reach us to heartbeat is dispatchable again.
func (w *worker) beat(now time.Time) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.lastBeat = now
	w.fails = 0
	w.downUntil = time.Time{}
}

// stale reports whether a joined worker has missed heartbeats long
// enough to evict. Static workers are never stale.
func (w *worker) stale(now time.Time, evictAfter time.Duration) bool {
	if !w.joined {
		return false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return now.Sub(w.lastBeat) > evictAfter
}

// configure sizes the window from the worker's reported simulation pool
// width: start at the pool width (one dispatch per simulation slot) and
// allow up to 2× so the worker's queue stays fed between round trips.
func (w *worker) configure(poolWidth int) {
	if poolWidth < 1 {
		poolWidth = 1
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.window = poolWidth
	w.windowCap = 2 * poolWidth
}

// tryAcquire claims an in-flight slot if the worker is usable now.
func (w *worker) tryAcquire(now time.Time) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if now.Before(w.downUntil) || now.Before(w.notBefore) {
		return false
	}
	if w.inflight >= w.window {
		return false
	}
	w.inflight++
	w.dispatched.Add(1)
	return true
}

func (w *worker) release() {
	w.mu.Lock()
	w.inflight--
	w.mu.Unlock()
}

// success clears failure state and grows the window additively.
func (w *worker) success() {
	w.completed.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails = 0
	w.downUntil = time.Time{}
	if w.window < w.windowCap {
		w.window++
	}
}

// reject reacts to a 429: halve the window and honor Retry-After
// (clamped — the worker's drain estimate can be pessimistic, and other
// cells may free its queue sooner).
func (w *worker) reject(retryAfter time.Duration, now time.Time) {
	w.rejected.Add(1)
	if retryAfter <= 0 {
		retryAfter = 250 * time.Millisecond
	}
	if retryAfter > 5*time.Second {
		retryAfter = 5 * time.Second
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.window > 1 {
		w.window /= 2
	}
	w.notBefore = now.Add(retryAfter)
}

// connFail marks the worker down with exponential backoff.
func (w *worker) connFail(now time.Time) {
	w.failed.Add(1)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.fails++
	d := 5 * time.Second
	if w.fails <= 5 {
		d = 250 * time.Millisecond << uint(w.fails-1)
	}
	w.downUntil = now.Add(d)
}

// status snapshots the worker for /v1/fleetz.
func (w *worker) status(now time.Time) WorkerStatus {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WorkerStatus{
		Name:       w.name,
		Window:     w.window,
		InFlight:   w.inflight,
		Down:       now.Before(w.downUntil),
		Joined:     w.joined,
		Dispatched: w.dispatched.Load(),
		Completed:  w.completed.Load(),
		Rejected:   w.rejected.Load(),
		Failed:     w.failed.Load(),
	}
}

package netmodel

import (
	"math"
	"testing"
)

func TestFDR4x(t *testing.T) {
	n := FDR4x()
	if n.MaxGbps != 56 || n.MaxIOPS != 90e6 {
		t.Fatalf("FDR capabilities %+v", n)
	}
}

func TestSingleLineIsIOPSLimited(t *testing.T) {
	// 64B operations: data limit is 56e9/8/64 = 109M ops/s > 90M IOPS,
	// so the paper's workloads are IOPS-limited.
	n := FDR4x()
	u, lim, err := n.Utilization(9e6, 64)
	if err != nil {
		t.Fatal(err)
	}
	if lim != LimitIOPS {
		t.Fatalf("64B ops limited by %v, want iops", lim)
	}
	if math.Abs(u-0.1) > 1e-9 {
		t.Fatalf("9M ops on 90M IOPS = %v, want 0.1", u)
	}
}

func TestLargeOpsAreDataLimited(t *testing.T) {
	n := FDR4x()
	_, lim, err := n.Utilization(1e6, 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	if lim != LimitData {
		t.Fatalf("64KB ops limited by %v, want data", lim)
	}
}

func TestUtilizationValidation(t *testing.T) {
	if _, _, err := (NIC{}).Utilization(1, 64); err == nil {
		t.Fatal("invalid NIC accepted")
	}
	if _, _, err := FDR4x().Utilization(-1, 64); err == nil {
		t.Fatal("negative load accepted")
	}
}

// The paper's takeaway: each dyad uses at most ~7.1% of FDR IOPS, so 14
// dyads share one NIC port.
func TestPaperDyadsPerPort(t *testing.T) {
	n := FDR4x()
	perDyad := 0.071 * 90e6
	dyads, err := n.DyadsPerPort(perDyad, 64)
	if err != nil {
		t.Fatal(err)
	}
	if dyads != 14 {
		t.Fatalf("dyads per port = %d, paper says 14", dyads)
	}
	if _, err := n.DyadsPerPort(0, 64); err == nil {
		t.Fatal("zero load accepted")
	}
}

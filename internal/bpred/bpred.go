// Package bpred implements the branch prediction structures from Table I
// of the paper: a tournament predictor (16K-entry bimodal, 16K-entry
// gshare, 16K-entry selector), a reduced 8K-entry gshare for lender-cores
// and the master-core's filler mode, a 2K-entry BTB, and a 32-entry
// return-address stack.
package bpred

import "fmt"

// DirectionPredictor predicts conditional branch outcomes.
type DirectionPredictor interface {
	// Predict returns the predicted direction for the branch at pc.
	Predict(pc uint64) bool
	// Update trains the predictor with the actual outcome.
	Update(pc uint64, taken bool)
	// Reset clears all learned state (used to model a cold predictor).
	Reset()
	// StorageBits returns the predictor's state size for the area model.
	StorageBits() int
}

// counter2 is a 2-bit saturating counter; >=2 predicts taken.
type counter2 uint8

func (c counter2) taken() bool { return c >= 2 }

func (c counter2) update(taken bool) counter2 {
	if taken {
		if c < 3 {
			return c + 1
		}
		return c
	}
	if c > 0 {
		return c - 1
	}
	return c
}

// Bimodal is a PC-indexed table of 2-bit counters.
type Bimodal struct {
	table []counter2
	mask  uint64
}

// NewBimodal builds a bimodal predictor with entries slots (power of two).
func NewBimodal(entries int) *Bimodal {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("bpred: bimodal entries %d not a positive power of two", entries))
	}
	b := &Bimodal{table: make([]counter2, entries), mask: uint64(entries - 1)}
	b.Reset()
	return b
}

func (b *Bimodal) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Predict implements DirectionPredictor.
func (b *Bimodal) Predict(pc uint64) bool { return b.table[b.idx(pc)].taken() }

// Update implements DirectionPredictor.
func (b *Bimodal) Update(pc uint64, taken bool) {
	i := b.idx(pc)
	b.table[i] = b.table[i].update(taken)
}

// Reset implements DirectionPredictor, weakly-not-taken initial state.
func (b *Bimodal) Reset() {
	for i := range b.table {
		b.table[i] = 1
	}
}

// StorageBits implements DirectionPredictor.
func (b *Bimodal) StorageBits() int { return 2 * len(b.table) }

// GShare XORs global branch history with the PC to index its counters.
type GShare struct {
	table   []counter2
	mask    uint64
	history uint64
	histLen uint
}

// NewGShare builds a gshare predictor with entries slots (power of two);
// history length is log2(entries).
func NewGShare(entries int) *GShare {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("bpred: gshare entries %d not a positive power of two", entries))
	}
	hl := uint(0)
	for 1<<hl < entries {
		hl++
	}
	g := &GShare{table: make([]counter2, entries), mask: uint64(entries - 1), histLen: hl}
	g.Reset()
	return g
}

func (g *GShare) idx(pc uint64) uint64 { return ((pc >> 2) ^ g.history) & g.mask }

// Predict implements DirectionPredictor.
func (g *GShare) Predict(pc uint64) bool { return g.table[g.idx(pc)].taken() }

// Update implements DirectionPredictor and shifts the outcome into the
// global history register.
func (g *GShare) Update(pc uint64, taken bool) {
	i := g.idx(pc)
	g.table[i] = g.table[i].update(taken)
	g.history <<= 1
	if taken {
		g.history |= 1
	}
	g.history &= (1 << g.histLen) - 1
}

// Reset implements DirectionPredictor.
func (g *GShare) Reset() {
	for i := range g.table {
		g.table[i] = 1
	}
	g.history = 0
}

// StorageBits implements DirectionPredictor.
func (g *GShare) StorageBits() int { return 2*len(g.table) + int(g.histLen) }

// Tournament combines a bimodal and a gshare component with a selector
// table of 2-bit meta counters (>=2 selects gshare), per Table I.
type Tournament struct {
	bimodal  *Bimodal
	gshare   *GShare
	selector []counter2
	selMask  uint64
}

// NewTournament builds the Table I configuration when called as
// NewTournament(16384, 16384, 16384).
func NewTournament(bimodalEntries, gshareEntries, selectorEntries int) *Tournament {
	if selectorEntries <= 0 || selectorEntries&(selectorEntries-1) != 0 {
		panic(fmt.Sprintf("bpred: selector entries %d not a positive power of two", selectorEntries))
	}
	t := &Tournament{
		bimodal:  NewBimodal(bimodalEntries),
		gshare:   NewGShare(gshareEntries),
		selector: make([]counter2, selectorEntries),
		selMask:  uint64(selectorEntries - 1),
	}
	t.Reset()
	return t
}

func (t *Tournament) selIdx(pc uint64) uint64 { return (pc >> 2) & t.selMask }

// Predict implements DirectionPredictor.
func (t *Tournament) Predict(pc uint64) bool {
	if t.selector[t.selIdx(pc)].taken() {
		return t.gshare.Predict(pc)
	}
	return t.bimodal.Predict(pc)
}

// Update implements DirectionPredictor: both components train; the
// selector moves toward whichever component was correct.
func (t *Tournament) Update(pc uint64, taken bool) {
	bp := t.bimodal.Predict(pc)
	gp := t.gshare.Predict(pc)
	if bp != gp {
		i := t.selIdx(pc)
		t.selector[i] = t.selector[i].update(gp == taken)
	}
	t.bimodal.Update(pc, taken)
	t.gshare.Update(pc, taken)
}

// Reset implements DirectionPredictor.
func (t *Tournament) Reset() {
	t.bimodal.Reset()
	t.gshare.Reset()
	for i := range t.selector {
		t.selector[i] = 1 // weakly prefer bimodal until gshare proves itself
	}
}

// StorageBits implements DirectionPredictor.
func (t *Tournament) StorageBits() int {
	return t.bimodal.StorageBits() + t.gshare.StorageBits() + 2*len(t.selector)
}

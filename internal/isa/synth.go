package isa

import (
	"fmt"

	"duplexity/internal/stats"
)

// SynthConfig parameterizes a synthetic instruction stream. The defaults
// chosen by workloads approximate the behaviour of the paper's
// microservices: op mix, code/data footprints (which determine cache and
// TLB behaviour), branch predictability (which determines predictor
// behaviour), register dependence distance (which determines exploitable
// ILP), and the rate/latency of demarcated µs-scale remote operations.
type SynthConfig struct {
	Seed uint64

	// Op mix: fractions of the dynamic stream; the remainder is OpIntAlu.
	LoadFrac, StoreFrac, BranchFrac, FPFrac, MulFrac float64

	// CodeBytes is the instruction footprint (a synthetic loop body);
	// instructions are 4 bytes. Exercises I-cache and I-TLB.
	CodeBytes uint64
	// CodeBase offsets the code region so different threads may share or
	// segregate code (zero defaults to a per-seed region).
	CodeBase uint64

	// DataBytes is the data working set; exercises D-cache and D-TLB.
	DataBytes uint64
	// DataBase offsets the data region (zero defaults to a per-seed region).
	DataBase uint64
	// HotFrac of random accesses hit a HotBytes-sized hot region (90/10
	// locality by default in workloads).
	HotFrac  float64
	HotBytes uint64
	// StreamFrac of memory accesses are sequential (next cache line).
	StreamFrac float64

	// BranchRandomFrac of branch executions are data-dependent
	// (unpredictable); the rest follow a strong per-PC bias.
	BranchRandomFrac float64

	// DepP is the per-source probability of reading a recently written
	// register (geometric dependence distance). Higher means less ILP.
	DepP float64

	// RemoteEvery is the mean number of instructions between OpRemote
	// operations (exponentially distributed gap); zero disables them.
	RemoteEvery float64
	// RemoteLat is the remote-device latency distribution in nanoseconds.
	RemoteLat stats.Distribution

	// InstrsPerRequest, when non-nil, marks EndOfRequest after a number
	// of instructions drawn from this distribution (per request).
	InstrsPerRequest stats.Distribution
}

// Validate reports configuration errors.
func (c *SynthConfig) Validate() error {
	mix := c.LoadFrac + c.StoreFrac + c.BranchFrac + c.FPFrac + c.MulFrac
	if mix > 1 {
		return fmt.Errorf("isa: op-mix fractions sum to %v > 1", mix)
	}
	for _, f := range []float64{c.LoadFrac, c.StoreFrac, c.BranchFrac, c.FPFrac, c.MulFrac,
		c.HotFrac, c.StreamFrac, c.BranchRandomFrac, c.DepP} {
		if f < 0 || f > 1 {
			return fmt.Errorf("isa: fraction %v outside [0,1]", f)
		}
	}
	if c.RemoteEvery > 0 && c.RemoteLat == nil {
		return fmt.Errorf("isa: RemoteEvery set but RemoteLat is nil")
	}
	if c.CodeBytes == 0 {
		return fmt.Errorf("isa: CodeBytes must be positive")
	}
	if c.DataBytes == 0 && (c.LoadFrac > 0 || c.StoreFrac > 0) {
		return fmt.Errorf("isa: DataBytes must be positive when memory ops are generated")
	}
	return nil
}

// SynthStream generates an infinite synthetic instruction stream.
// It implements Stream and never goes idle; request-arrival gating is
// layered on top by the workload package.
type SynthStream struct {
	cfg SynthConfig
	rng *stats.RNG

	codeBase, dataBase uint64
	bodyLen            uint64 // instructions in the loop body
	idx                uint64 // current instruction index within body

	streamCursor uint64 // sequential access cursor

	lastWritten [8]RegID // ring of recently written registers
	lwPos       int

	toNextRemote  float64
	toEndOfReq    float64
	reqLenPending bool
}

// NewSynthStream validates cfg and builds a generator.
func NewSynthStream(cfg SynthConfig) (*SynthStream, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &SynthStream{cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
	// Default per-seed regions are staggered by a stride that is not a
	// multiple of any cache's set span, so co-scheduled threads do not
	// pathologically alias to the same cache sets.
	s.codeBase = cfg.CodeBase
	if s.codeBase == 0 {
		s.codeBase = 0x400000 + (cfg.Seed%256)*0x1011040
	}
	s.dataBase = cfg.DataBase
	if s.dataBase == 0 {
		s.dataBase = 0x100000000 + (cfg.Seed%256)*0x10022840
	}
	s.bodyLen = cfg.CodeBytes / 4
	if s.bodyLen < 4 {
		s.bodyLen = 4
	}
	for i := range s.lastWritten {
		s.lastWritten[i] = RegID(1 + i)
	}
	if cfg.RemoteEvery > 0 {
		s.toNextRemote = cfg.RemoteEvery * s.rng.ExpFloat64()
	}
	if cfg.InstrsPerRequest != nil {
		s.toEndOfReq = cfg.InstrsPerRequest.Sample(s.rng)
		s.reqLenPending = true
	}
	return s, nil
}

// MustSynthStream is NewSynthStream that panics on config errors; for use
// with statically known-good configurations.
func MustSynthStream(cfg SynthConfig) *SynthStream {
	s, err := NewSynthStream(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// pcHash derives deterministic per-PC properties (branch bias, targets).
func pcHash(pc uint64) uint64 {
	x := pc
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func (s *SynthStream) pickSrc() RegID {
	if s.rng.Bernoulli(s.cfg.DepP) {
		// Geometric-ish recent dependence: mostly the last 1-3 writes.
		d := 0
		for d < len(s.lastWritten)-1 && s.rng.Bernoulli(0.5) {
			d++
		}
		return s.lastWritten[(s.lwPos-1-d+2*len(s.lastWritten))%len(s.lastWritten)]
	}
	return RegID(1 + s.rng.Intn(NumArchRegs-1))
}

func (s *SynthStream) pickDst() RegID {
	r := RegID(1 + s.rng.Intn(NumArchRegs-1))
	s.lastWritten[s.lwPos] = r
	s.lwPos = (s.lwPos + 1) % len(s.lastWritten)
	return r
}

func (s *SynthStream) dataAddr() uint64 {
	if s.rng.Bernoulli(s.cfg.StreamFrac) {
		s.streamCursor = (s.streamCursor + 64) % s.cfg.DataBytes
		return s.dataBase + s.streamCursor
	}
	if s.cfg.HotBytes > 0 && s.rng.Bernoulli(s.cfg.HotFrac) {
		return s.dataBase + uint64(s.rng.Int63())%s.cfg.HotBytes
	}
	return s.dataBase + uint64(s.rng.Int63())%s.cfg.DataBytes
}

// Next implements Stream. It never returns ok=false.
func (s *SynthStream) Next(uint64) (Instr, bool) {
	pc := s.codeBase + s.idx*4
	in := Instr{PC: pc, Op: OpIntAlu}

	// End-of-body: an always-taken backward branch (highly predictable).
	if s.idx == s.bodyLen-1 {
		s.idx = 0
		in.Op = OpBranch
		in.Taken = true
		in.Target = s.codeBase
		in.Src1 = s.pickSrc()
		s.finishInstr(&in)
		return in, true
	}

	// Remote operations are scheduled by instruction count.
	if s.cfg.RemoteEvery > 0 {
		s.toNextRemote--
		if s.toNextRemote <= 0 {
			s.toNextRemote = s.cfg.RemoteEvery * s.rng.ExpFloat64()
			in.Op = OpRemote
			in.Dst = s.pickDst()
			in.Src1 = s.pickSrc()
			in.RemoteNs = s.cfg.RemoteLat.Sample(s.rng)
			in.Addr = s.dataAddr()
			s.idx++
			s.finishInstr(&in)
			return in, true
		}
	}

	u := s.rng.Float64()
	c := s.cfg
	switch {
	case u < c.LoadFrac:
		in.Op = OpLoad
		in.Addr = s.dataAddr()
		in.Dst = s.pickDst()
		in.Src1 = s.pickSrc()
	case u < c.LoadFrac+c.StoreFrac:
		in.Op = OpStore
		in.Addr = s.dataAddr()
		in.Src1 = s.pickSrc()
		in.Src2 = s.pickSrc()
	case u < c.LoadFrac+c.StoreFrac+c.BranchFrac:
		in.Op = OpBranch
		in.Src1 = s.pickSrc()
		h := pcHash(pc)
		if s.rng.Bernoulli(c.BranchRandomFrac) {
			// Data-dependent branch: unpredictable outcome.
			in.Taken = s.rng.Bernoulli(0.5)
		} else {
			// Strongly biased per-PC outcome (bias in [0.93, 1.0)),
			// giving realistic low-MPKI behaviour for loop-heavy service
			// code; unpredictability is added via BranchRandomFrac.
			bias := 0.93 + float64(h%64)/64*0.07
			in.Taken = s.rng.Bernoulli(bias)
		}
		if in.Taken {
			// Per-PC fixed forward skip of 1-8 instructions, wrapping
			// inside the body to keep the loop structure.
			skip := 1 + h%8
			next := (s.idx + skip) % (s.bodyLen - 1)
			in.Target = s.codeBase + next*4
			s.idx = next
			s.finishInstr(&in)
			return in, true
		}
	case u < c.LoadFrac+c.StoreFrac+c.BranchFrac+c.FPFrac:
		in.Op = OpFPAlu
		in.Dst = s.pickDst()
		in.Src1 = s.pickSrc()
		in.Src2 = s.pickSrc()
	case u < c.LoadFrac+c.StoreFrac+c.BranchFrac+c.FPFrac+c.MulFrac:
		in.Op = OpIntMul
		in.Dst = s.pickDst()
		in.Src1 = s.pickSrc()
		in.Src2 = s.pickSrc()
	default:
		in.Op = OpIntAlu
		in.Dst = s.pickDst()
		in.Src1 = s.pickSrc()
		in.Src2 = s.pickSrc()
	}
	s.idx++
	s.finishInstr(&in)
	return in, true
}

// finishInstr applies request-boundary accounting.
func (s *SynthStream) finishInstr(in *Instr) {
	if !s.reqLenPending {
		return
	}
	s.toEndOfReq--
	if s.toEndOfReq <= 0 {
		in.EndOfRequest = true
		s.toEndOfReq = s.cfg.InstrsPerRequest.Sample(s.rng)
		if s.toEndOfReq < 1 {
			s.toEndOfReq = 1
		}
	}
}

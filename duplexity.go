// Package duplexity is a cycle-level simulation library reproducing
// "Enhancing Server Efficiency in the Face of Killer Microseconds"
// (Mirhosseini, Sriraman, Wenisch — HPCA 2019).
//
// The paper proposes Duplexity, a heterogeneous server architecture that
// fills microsecond-scale utilization holes (fast-I/O stalls and brief
// inter-request idle periods) in latency-critical microservices. A
// latency-optimized master-core and a throughput-optimized lender-core
// form a dyad: when the master-thread stalls or idles, the master-core
// morphs into an in-order hierarchical-SMT engine and borrows
// filler-threads from the lender-core's virtual-context pool, with
// segregated filler state (dedicated TLBs, reduced predictor, L0 filter
// caches backed by the lender's L1s) so the master-thread restarts in
// ~50 cycles with its microarchitectural state intact.
//
// The library provides:
//
//   - Dyad: a cycle-level simulation of one master/lender pair under any
//     of the paper's seven design points (Baseline, SMT, SMT+, MorphCore,
//     MorphCore+, Duplexity+replication, Duplexity).
//   - Workloads: the Section V microservices (FLANN-HA/LL, RSC, McRouter,
//     WordStem) as request-driven instruction streams, and PageRank/SSSP
//     BSP filler kernels over synthetic power-law graphs.
//   - Suite: the experiment harness regenerating every table and figure
//     of the paper's evaluation.
//   - QueueSim: the BigHouse-style M/G/1 tail-latency simulator.
//
// All simulations are deterministic given a seed and use only the Go
// standard library.
package duplexity

import (
	"io"

	"duplexity/internal/analytic"
	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/expt"
	"duplexity/internal/graphwl"
	"duplexity/internal/idle"
	"duplexity/internal/isa"
	"duplexity/internal/queueing"
	"duplexity/internal/sched"
	"duplexity/internal/stats"
	"duplexity/internal/telemetry"
	"duplexity/internal/trace"
	"duplexity/internal/workload"
)

// Design selects one of the paper's seven evaluated server designs.
type Design = core.Design

// The evaluated design points (Section V).
const (
	DesignBaseline      = core.DesignBaseline
	DesignSMT           = core.DesignSMT
	DesignSMTPlus       = core.DesignSMTPlus
	DesignMorphCore     = core.DesignMorphCore
	DesignMorphCorePlus = core.DesignMorphCorePlus
	DesignDuplexityRepl = core.DesignDuplexityRepl
	DesignDuplexity     = core.DesignDuplexity
)

// AllDesigns lists every design point in evaluation order.
var AllDesigns = core.AllDesigns

// ExecMode selects how a Dyad or Chip advances simulated time: the
// default discrete-event engine (never ticks an idle cycle), the legacy
// whole-dyad fast-forward loop, or reference cycle-by-cycle stepping.
// Results are bit-identical in all three modes.
type ExecMode = core.ExecMode

// Execution modes.
const (
	ExecEvent       = core.ExecEvent
	ExecFastForward = core.ExecFastForward
	ExecStepped     = core.ExecStepped
)

// Dyad is a cycle-level simulation of one design point: the evaluated
// core paired with a throughput lender-core, a shared LLC, and a shared
// virtual-context pool.
type Dyad = core.Dyad

// DyadConfig assembles a Dyad.
type DyadConfig = core.Config

// NewDyad wires up a design point per the paper's Section V methodology.
func NewDyad(cfg DyadConfig) (*Dyad, error) { return core.NewDyad(cfg) }

// Workload describes one latency-critical microservice from Section V.
type Workload = workload.Spec

// The Section V microservice suite.
var (
	FLANNHA  = workload.FLANNHA
	FLANNLL  = workload.FLANNLL
	RSC      = workload.RSC
	McRouter = workload.McRouter
	WordStem = workload.WordStem
)

// Microservices returns the full Section V workload suite.
func Microservices() []*Workload { return workload.Microservices() }

// Stream is a dynamic instruction stream consumed by the simulated cores.
type Stream = isa.Stream

// BatchSet returns n generic latency-insensitive scale-out threads with
// µs-scale disaggregated-memory stalls.
func BatchSet(n int, seed uint64) []Stream { return workload.BatchSet(n, seed) }

// Graph is a synthetic power-law graph for the filler kernels.
type Graph = graphwl.Graph

// NewGraph generates a power-law graph with the given locality bias.
func NewGraph(n, avgDeg int, pLocal float64, seed uint64) (*Graph, error) {
	return graphwl.GenPowerLaw(n, avgDeg, pLocal, seed)
}

// FillerSet builds the paper's filler-thread configuration: half
// PageRank, half SSSP workers over one graph, as two BSP jobs.
func FillerSet(g *Graph, workers int, seed uint64) ([]Stream, *graphwl.Job, *graphwl.Job, error) {
	return graphwl.NewFillerSet(g, workers, seed)
}

// Suite is the experiment harness: one method per table and figure of
// the paper (Fig1a..Fig2b, Table1, Table2, Fig5a..Fig5f, Fig6). Its
// simulation cells execute on the campaign engine (internal/campaign):
// a worker pool with a content-addressed on-disk result cache, so
// results are bit-identical at any worker count and warm-cache runs
// skip simulation entirely.
type Suite = expt.Suite

// SuiteOptions scales experiment fidelity (Scale 1.0 = paper-scale)
// and configures the campaign engine (Workers, CacheDir).
type SuiteOptions = expt.Options

// CampaignSummary reports the campaign engine's cache-hit/miss and
// per-cell wall-time accounting (Suite.CampaignStats).
type CampaignSummary = campaign.Summary

// ModelVersion fingerprints simulator semantics for the campaign result
// cache; it participates in every cell's cache key.
const ModelVersion = core.ModelVersion

// Table is a formatted experiment result.
type Table = expt.Table

// NewSuite builds an experiment harness.
func NewSuite(opts SuiteOptions) *Suite { return expt.NewSuite(opts) }

// IdleCState is one CPU idle state of the energy model: entry/exit
// latency, residency power fraction, and break-even target residency.
type IdleCState = idle.CState

// IdleGovernor classifies server-idle intervals into C-states; attach
// one to QueueConfig.IdleGov to model core parking (or Duplexity's
// fill alternative) in the tail simulation.
type IdleGovernor = idle.Governor

// IdleSummary is the per-state residency accounting of one simulation,
// consumed by the power model for load-dependent chip power.
type IdleSummary = idle.Summary

// IdleGovernors returns the governor catalogue in canonical order:
// always-shallow (C1), fixed-deep core parking (C6), AgileWatts-style
// agile deep (C6A), adaptive, and Duplexity fill.
func IdleGovernors() []IdleGovernor { return idle.Governors() }

// IdleGovernorByName resolves a governor name ("shallow", "deep",
// "agile", "adaptive", "fill").
func IdleGovernorByName(name string) (IdleGovernor, bool) { return idle.ByName(name) }

// QueueConfig parameterizes the BigHouse-style M/G/1 tail simulator.
type QueueConfig = queueing.Config

// QueueResult summarizes a queueing simulation.
type QueueResult = queueing.Result

// QueueSim runs the request-granularity FCFS M/G/1 simulation.
func QueueSim(cfg QueueConfig) (QueueResult, error) { return queueing.Simulate(cfg) }

// Distribution is a sampleable latency/service-time distribution.
type Distribution = stats.Distribution

// Common distributions for queueing and workload configuration.
type (
	// Exponential has the memoryless property of Poisson processes.
	Exponential = stats.Exponential
	// Lognormal models heavy-ish-tailed cloud service times.
	Lognormal = stats.Lognormal
	// Deterministic is a point mass.
	Deterministic = stats.Deterministic
)

// IdlePeriods is the M/G/1 idle-period model behind Figure 1(b).
type IdlePeriods = analytic.IdlePeriods

// ClosedLoopUtilization is the Figure 1(a) model: utilization of a
// system alternating computeUs of work and stallUs of stalling.
func ClosedLoopUtilization(computeUs, stallUs float64) float64 {
	return analytic.ClosedLoopUtilization(computeUs, stallUs)
}

// ReadyThreads is the binomial virtual-context sizing model of
// Figure 2(b).
type ReadyThreads = analytic.ReadyThreads

// Chip is a multi-dyad server processor sharing one LLC (Figure 4c).
type Chip = core.Chip

// ChipConfig assembles a Chip.
type ChipConfig = core.ChipConfig

// NewChip wires several dyads onto a shared last-level cache.
func NewChip(cfg ChipConfig) (*Chip, error) { return core.NewChip(cfg) }

// ProvisionDemand describes a dyad's thread population for the
// Section IV virtual-context provisioning policy.
type ProvisionDemand = sched.Demand

// ProvisionContexts returns how many virtual contexts to give a dyad.
func ProvisionContexts(d ProvisionDemand) (int, error) { return sched.Contexts(d) }

// StallObserver adaptively estimates batch stall fractions for
// provisioning decisions.
type StallObserver = sched.Observer

// NewStallObserver builds an observer with EMA weight alpha.
func NewStallObserver(alpha float64) (*StallObserver, error) { return sched.NewObserver(alpha) }

// Telemetry types: the zero-dependency observability subsystem. Attach a
// sink with Dyad.EnableTelemetry, mirror counters with Dyad.CollectInto,
// and reconstruct per-request timelines with RequestSpans. See
// internal/telemetry for the full API (event writers, manifests, CSV).
type (
	// TelemetrySink receives simulation events.
	TelemetrySink = telemetry.Sink
	// TelemetryEvent is one cycle-stamped simulation event.
	TelemetryEvent = telemetry.Event
	// TelemetryRing is a fixed-capacity in-memory event sink.
	TelemetryRing = telemetry.Ring
	// TelemetryRegistry holds hierarchical named counters, gauges, and
	// mergeable power-of-two histograms.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySpan is one request's reconstructed timeline.
	TelemetrySpan = telemetry.Span
	// RunManifest is the machine-readable run report written by the CLIs.
	RunManifest = telemetry.Manifest
)

// NewTelemetryRegistry builds an empty metric registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTelemetryRing builds an event ring (capacity ≤ 0 uses the default).
func NewTelemetryRing(capacity int) *TelemetryRing { return telemetry.NewRing(capacity) }

// RequestSpans reconstructs per-request timelines from an event stream.
func RequestSpans(events []TelemetryEvent) []TelemetrySpan { return telemetry.Spans(events) }

// TraceWriter serializes an instruction stream to a compact binary trace
// (the paper's trace-based simulation mode).
type TraceWriter = trace.Writer

// NewTraceWriter starts a trace on w.
func NewTraceWriter(w io.Writer) (*TraceWriter, error) { return trace.NewWriter(w) }

// CaptureTrace drains up to n instructions from s into tw.
func CaptureTrace(tw *TraceWriter, s Stream, n uint64) (uint64, error) {
	return trace.Capture(tw, s, n)
}

// LoadTrace reads a binary trace and returns a replaying stream.
func LoadTrace(r io.Reader, loop bool) (Stream, error) { return trace.Load(r, loop) }

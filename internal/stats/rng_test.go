package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Split()
	// The child stream must not simply replay the parent stream.
	p := NewRNG(7)
	p.Uint64() // advance past the Split draw
	for i := 0; i < 50; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatalf("child stream mirrors parent at step %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(4)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.Float64())
	}
	if math.Abs(s.Mean()-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", s.Mean())
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(5)
	cfg := &quick.Config{MaxCount: 500}
	f := func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.ExpFloat64())
	}
	if math.Abs(s.Mean()-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", s.Mean())
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(8)
	var s Summary
	for i := 0; i < 200000; i++ {
		s.Add(r.NormFloat64())
	}
	if math.Abs(s.Mean()) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.StdDev()-1) > 0.02 {
		t.Fatalf("normal stddev = %v, want ~1", s.StdDev())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(9)
	for n := 1; n <= 64; n *= 2 {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) rate = %v", rate)
	}
}

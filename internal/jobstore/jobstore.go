// Package jobstore is duplexityd's multi-tenant campaign control
// plane: a durable job store (submitted jobs journaled to disk and
// resumed across daemon restarts), a weighted fair-share scheduler
// with per-tenant quotas and priority lanes, and TTL-driven garbage
// collection of finished job state.
//
// The package sits between the HTTP surface (internal/serve) and the
// admission queue: serve translates requests into JobSpecs and hands
// the Manager an ExecFunc that pushes one cell through its normal
// admission → coalesce → pool path. The Manager decides *which* cell
// goes next (fair share across tenants, interactive lane before
// batch), the admission queue still decides *whether* the daemon can
// take it right now.
//
// Durability deliberately reuses the campaign engine's persistence:
// the job record and its per-cell cursor capture only *which* cells of
// *which* job finished; the bytes of each result live solely in the
// content-addressed cache. A restarted daemon rematerializes finished
// cells from the cache (byte-identical, no re-simulation) and
// re-dispatches only the cells the crash interrupted.
package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"duplexity/internal/expt"
)

// Lane is a job's priority lane.
type Lane string

const (
	// LaneInteractive is the deadline lane: its cells are dispatched
	// before any batch cell and carry a placement deadline that the
	// fleet coordinator turns into Hurry-up-style earlier hedging.
	LaneInteractive Lane = "interactive"
	// LaneBatch is the default throughput lane: no deadline, scheduled
	// purely by weighted fair share.
	LaneBatch Lane = "batch"
)

// DefaultTenant is the tenant jobs land under when the request names
// none. It is a real tenant like any other: same default quota, same
// fair-share weight.
const DefaultTenant = "default"

// ParseLane maps an API string to a Lane ("" means batch).
func ParseLane(s string) (Lane, error) {
	switch s {
	case "", string(LaneBatch):
		return LaneBatch, nil
	case string(LaneInteractive):
		return LaneInteractive, nil
	}
	return "", fmt.Errorf("unknown lane %q (want %q or %q)", s, LaneInteractive, LaneBatch)
}

// JobSpec is a submission: what to run, for whom, how urgently, and
// whether it must survive a daemon restart.
type JobSpec struct {
	Tenant string
	Lane   Lane
	Kind   string
	Cells  []expt.CellSpec
	// Deadline applies to interactive-lane jobs: every cell inherits it
	// as a placement deadline, and the job counts as deadline-met only
	// if it finishes (without failures) before it.
	Deadline time.Time
	// TTL bounds the job's state lifetime: a finished job is reaped TTL
	// after completion, an unfinished one is expired TTL after
	// submission. Zero means the manager default.
	TTL time.Duration
	// Durable jobs are journaled to disk and resumed after a restart;
	// ephemeral jobs (the legacy /v1/campaigns path) die with the
	// process.
	Durable bool
}

// Job states. A job is "running" from submission until every cell is
// accounted for, then "done" or "failed"; "expired" marks a job the GC
// cancelled because it outlived its TTL before finishing.
const (
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
	StateExpired = "expired"
)

// JobStatus is the API-facing summary of one job. Field names and
// omission rules are shared with the legacy campaign status payload so
// existing stream consumers keep working.
type JobStatus struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	State     string `json:"state"`
	Cells     int    `json:"cells"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed,omitempty"`
	Cancelled int    `json:"cancelled,omitempty"`
	Done      bool   `json:"done"`

	Tenant         string `json:"tenant,omitempty"`
	Lane           Lane   `json:"lane,omitempty"`
	Durable        bool   `json:"durable,omitempty"`
	Resumed        bool   `json:"resumed,omitempty"`
	DeadlineUnixMs int64  `json:"deadline_unix_ms,omitempty"`
	DeadlineMet    bool   `json:"deadline_met,omitempty"`
}

// CellLine is one ephemeral-job result row: the streamed NDJSON shape
// the /v1/campaigns API has always used, with the decoded result (and
// its cached flag) inline.
type CellLine struct {
	Index  int                `json:"index"`
	Cell   expt.CellSpec      `json:"cell"`
	Result *expt.ServedResult `json:"result,omitempty"`
	Error  string             `json:"error,omitempty"`
}

// RawLine is one durable-job result row. Result carries the cache
// entry's raw result bytes — no cached flag, no wall time — so the
// stream of a job resumed after a crash (cells rematerialized from the
// cache) is byte-identical to the stream of an uninterrupted run.
type RawLine struct {
	Index  int             `json:"index"`
	Cell   expt.CellSpec   `json:"cell"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// Quota bounds one tenant's footprint.
type Quota struct {
	// Weight is the tenant's fair-share weight; dispatching one cell
	// advances the tenant's virtual time by 1/Weight, and the scheduler
	// always picks the eligible tenant with the smallest virtual time.
	Weight float64
	// MaxInflight caps the tenant's concurrently executing cells
	// (scheduler dispatches plus quota-gated single-cell requests).
	MaxInflight int
	// MaxQueuedJobs caps the tenant's unfinished jobs; submissions
	// beyond it are shed with a QuotaError (HTTP 429 upstream).
	MaxQueuedJobs int
}

// QuotaError reports a submission shed by a per-tenant quota.
type QuotaError struct {
	Tenant string
	What   string
	Limit  int
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q over quota: %s limit %d reached", e.Tenant, e.What, e.Limit)
}

// ErrClosed reports a submission or dispatch against a stopped
// manager (the daemon is draining).
var ErrClosed = errors.New("jobstore: manager stopped")

// cancelledError marks an exec outcome as a drain/shutdown
// cancellation rather than a real failure, so the manager leaves the
// cell pending (durable jobs resume it) instead of recording a
// failure.
type cancelledError struct{ err error }

func (e *cancelledError) Error() string { return e.err.Error() }
func (e *cancelledError) Unwrap() error { return e.err }

// MarkCancelled wraps an exec error so the manager treats the cell as
// cancelled-not-failed. The serve layer applies it to drain and
// context-cancellation errors.
func MarkCancelled(err error) error { return &cancelledError{err: err} }

// IsCancelled reports whether err was wrapped by MarkCancelled.
func IsCancelled(err error) bool {
	var ce *cancelledError
	return errors.As(err, &ce)
}

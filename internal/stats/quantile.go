package stats

import (
	"math"
	"sort"
)

// LatencyRecorder collects latency observations and answers quantile
// queries. It keeps every sample (request-granularity simulations in this
// repository produce at most a few million observations), which makes
// quantiles exact — important for 99th-percentile comparisons.
//
// Storage is split into a sorted prefix and an unsorted tail of recent
// Adds: a quantile query sorts only the tail and merges it into the
// prefix in one linear pass. Periodic convergence checks over a growing
// sample set (the BigHouse stopping criterion polls every few thousand
// requests) therefore cost O(tail log tail + n) per check instead of
// re-sorting all n samples every time.
type LatencyRecorder struct {
	sorted []float64 // ascending; the merged prefix
	tail   []float64 // observations since the last merge
	sum    float64
}

// NewLatencyRecorder returns a recorder with capacity hint n.
func NewLatencyRecorder(n int) *LatencyRecorder {
	return &LatencyRecorder{sorted: make([]float64, 0, n)}
}

// Add records one latency observation.
func (l *LatencyRecorder) Add(x float64) {
	l.tail = append(l.tail, x)
	l.sum += x
}

// Count returns the number of observations.
func (l *LatencyRecorder) Count() int { return len(l.sorted) + len(l.tail) }

// Mean returns the mean latency (NaN if empty).
func (l *LatencyRecorder) Mean() float64 {
	if l.Count() == 0 {
		return math.NaN()
	}
	return l.sum / float64(l.Count())
}

// ensureSorted folds the unsorted tail into the sorted prefix: sort the
// tail, then merge backwards in place (largest first), so the merge
// needs no scratch buffer and never moves an element twice.
func (l *LatencyRecorder) ensureSorted() {
	if len(l.tail) == 0 {
		return
	}
	sort.Float64s(l.tail)
	n, t := len(l.sorted), len(l.tail)
	l.sorted = append(l.sorted, l.tail...)
	for i, j, k := n-1, t-1, n+t-1; j >= 0; k-- {
		if i >= 0 && l.sorted[i] > l.tail[j] {
			l.sorted[k] = l.sorted[i]
			i--
		} else {
			l.sorted[k] = l.tail[j]
			j--
		}
	}
	l.tail = l.tail[:0]
}

// Quantile returns the q-quantile of the recorded samples.
func (l *LatencyRecorder) Quantile(q float64) float64 {
	l.ensureSorted()
	return Quantile(l.sorted, q)
}

// P99 returns the 99th percentile, the paper's headline tail metric.
func (l *LatencyRecorder) P99() float64 { return l.Quantile(0.99) }

// QuantileCI estimates a confidence interval for the q-quantile using the
// binomial order-statistic method at confidence z (e.g. 1.96 for 95%).
// It returns the point estimate and the interval bounds.
func (l *LatencyRecorder) QuantileCI(q, z float64) (est, lo, hi float64) {
	l.ensureSorted()
	n := len(l.sorted)
	if n == 0 {
		nan := math.NaN()
		return nan, nan, nan
	}
	est = Quantile(l.sorted, q)
	// Order-statistic indices: q*n +/- z*sqrt(n*q*(1-q)).
	sd := z * math.Sqrt(float64(n)*q*(1-q))
	loIdx := int(math.Floor(q*float64(n) - sd))
	hiIdx := int(math.Ceil(q*float64(n) + sd))
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	return est, l.sorted[loIdx], l.sorted[hiIdx]
}

// RelativeQuantileErrorBelow reports whether the q-quantile's confidence
// interval half-width is within frac of the estimate — the BigHouse
// stopping criterion (95% CI within 5%).
func (l *LatencyRecorder) RelativeQuantileErrorBelow(q, z, frac float64) bool {
	est, lo, hi := l.QuantileCI(q, z)
	if math.IsNaN(est) || est == 0 {
		return false
	}
	return (hi-lo)/2/est < frac
}

// Reset discards all recorded samples but keeps capacity.
func (l *LatencyRecorder) Reset() {
	l.sorted = l.sorted[:0]
	l.tail = l.tail[:0]
	l.sum = 0
}

// Samples returns the recorded observations in ascending order (shared
// backing array; do not mutate).
func (l *LatencyRecorder) Samples() []float64 {
	l.ensureSorted()
	return l.sorted
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space for numerical stability at large n.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lg := lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lg)
}

// BinomialTail returns P(X >= k) for X ~ Binomial(n, p). The paper's
// Figure 2(b) plots this for k=8 as the probability that at least 8
// virtual contexts are ready.
func BinomialTail(n int, p float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	sum := 0.0
	for i := k; i <= n; i++ {
		sum += BinomialPMF(n, p, i)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}

// lnChoose returns ln(n choose k) via the log-gamma function.
func lnChoose(n, k int) float64 {
	return lnGamma(float64(n)+1) - lnGamma(float64(k)+1) - lnGamma(float64(n-k)+1)
}

// lnGamma is a Lanczos approximation of the log-gamma function, sufficient
// for binomial coefficients (relative error ~1e-13).
func lnGamma(x float64) float64 {
	// Coefficients for g=7, n=9 Lanczos.
	g := []float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula.
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - lnGamma(1-x)
	}
	x--
	a := g[0]
	t := x + 7.5
	for i := 1; i < 9; i++ {
		a += g[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

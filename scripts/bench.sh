#!/usr/bin/env bash
# bench.sh — campaign-engine performance trajectory.
#
# Runs the Figure 5 matrix (the 105-cell design × workload × load
# campaign, via the figures that consume it) three ways:
#
#   1. sequential  (-workers 1, cold cache)
#   2. parallel    (-workers N, cold cache)   N = BENCH_WORKERS or nproc
#   3. warm        (-workers N, warm cache from run 2)
#
# and writes BENCH_campaign.json with wall times, cells/sec, cache-hit
# rates, and speedups. It also asserts the engine's core guarantee:
# stdout tables from all three runs are byte-identical (modulo the
# per-experiment "took" timing lines).
#
# The campaign section then runs the two-phase A/B: the cold 105-cell
# tails campaign (the Figure 5(d) queueing stage as content-addressed
# cells) once with -single-phase (monolithic cells, each re-measuring
# its own service slowdowns inline) and once with the two-layer cache
# split (one micro-sim per design × workload, shared across the load
# grid). The "cold_two_phase" stanza records micro-sims computed vs
# cells completed and the speedup over single-phase; the section fails
# unless the tables are byte-identical, exactly 35 micro-sims were
# simulated, and the split is >=2x faster.
#
# It then runs the energyprop sweep once and writes BENCH_energy.json:
# sweep throughput plus the RSC deep-idle vs Duplexity-fill envelope
# (idle power, µJ/request, p99, tail penalty) at low/mid/high load.
#
# It then runs cmd/simbench twice and writes BENCH_simcore.json with a
# stanza per configuration: "moderate" (steady load, full batch
# population — parity territory, the event engine must simply never be
# slower) and "stall_heavy" (near-idle load, no batch threads — the
# paper's killer-microsecond regime, where the discrete-event engine
# must hold a >=10x speedup over cycle stepping; simbench's -floor flag
# makes the measurement itself the gate). Each stanza records simulated
# cycles/sec for stepped, fast-forward, and event execution plus skip
# ratios, alongside the sequential campaign throughput in cells/sec
# when the campaign section ran.
#
# Finally it boots duplexityd on a loopback port and drives it with the
# built-in load generator — one closed-loop run (cold cache, real
# simulations) and one open-loop run (warm, mostly cache hits) — and
# writes BENCH_serve.json with both envelopes: sent/ok/shed counts,
# request throughput, and p50/p99 request latency — plus a tracing
# on/off A/B over the warm cache pinning the trace plane's overhead.
#
# Finally it benchmarks the distributed tier: the same small campaign
# run against a single-node daemon and against a coordinator sharding
# over two local worker daemons, writing BENCH_fleet.json with both
# cells/sec figures. (On a single-core host the fleet adds overhead
# rather than speedup; the envelope records, it does not assert.)
#
# Finally it benchmarks the multi-tenant job store: two equal batch
# jobs from tenants weighted 2:1 run to completion (scheduler
# throughput in cells/sec, plus the observed mid-run fair-share ratio),
# then single-cell probe jobs race a saturating batch job through the
# interactive and batch lanes, writing BENCH_jobs.json with both
# per-lane latency envelopes. (Like the fleet figure, the envelope
# records; it does not assert.)
#
# Every BENCH_*.json envelope records the host environment uniformly:
# host_cpus, go_version, gomaxprocs, git_commit — so a regression found
# in a stored envelope can be pinned to the exact tree that produced it.
#
# Tunables: BENCH_SCALE (default 0.05), BENCH_WORKERS (default nproc),
# BENCH_SERVE_ADDR (default 127.0.0.1:8124), BENCH_SERVE_REQUESTS
# (default 32), BENCH_FLEET_BASE_PORT (default 8141).
# BENCH_ONLY selects sections as a comma list from
# {campaign,energy,simcore,serve,fleet,jobs} — e.g. BENCH_ONLY=simcore
# refreshes BENCH_simcore.json alone. Unset runs everything. Every
# envelope restamps git_commit (with a -dirty suffix when the tree
# differs from HEAD) and host metadata on every run, so a stored
# envelope can never silently describe an older tree.
# Note: the parallel speedup is only meaningful on a multi-core host;
# the warm-cache speedup is meaningful anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${BENCH_SCALE:-0.05}"
WORKERS="${BENCH_WORKERS:-$(nproc)}"
EXPTS=(fig5a fig5b fig5c fig5f fig6)
OUT="BENCH_campaign.json"

# The uniform host-environment stanza every BENCH_*.json carries,
# recomputed on every invocation so stored envelopes always name the
# tree that actually produced them; a worktree that differs from HEAD
# gets a -dirty suffix.
NCPU="$(nproc)"
GOVER="$(go env GOVERSION)"
GMP="${GOMAXPROCS:-$NCPU}"
GITSHA="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
if [[ "$GITSHA" != "unknown" ]] && ! git diff --quiet HEAD -- 2>/dev/null; then
    GITSHA="$GITSHA-dirty"
fi
ENV_JSON="\"host_cpus\": $NCPU, \"go_version\": \"$GOVER\", \"gomaxprocs\": $GMP, \"git_commit\": \"$GITSHA\""

# should_run <section>: true when BENCH_ONLY is unset/empty or names the
# section in its comma list.
should_run() {
    [[ -z "${BENCH_ONLY:-}" || ",${BENCH_ONLY}," == *",$1,"* ]]
}

tmp="$(mktemp -d)"
cleanup() {
    [[ -n "${serve_pid:-}" ]] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
if should_run campaign || should_run energy; then
    go build -o "$tmp/duplexity" ./cmd/duplexity
fi
if should_run serve || should_run fleet || should_run jobs; then
    go build -o "$tmp/duplexityd" ./cmd/duplexityd
fi

if should_run campaign; then

# run <name> <workers> <cachedir>: executes the matrix figures, records
# wall seconds to $tmp/<name>.wall and the campaign summary counters to
# $tmp/<name>.cells/.hits/.misses.
run() {
    local name="$1" workers="$2" cdir="$3"
    echo "== $name: -workers $workers =="
    local t0 t1
    t0="$(date +%s.%N)"
    "$tmp/duplexity" -scale "$SCALE" -seed 1 -workers "$workers" -cachedir "$cdir" \
        "${EXPTS[@]}" >"$tmp/$name.out" 2>"$tmp/$name.err"
    t1="$(date +%s.%N)"
    awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}' >"$tmp/$name.wall"
    # Last campaign summary line: campaign: workers=N cells=C hits=H misses=M ...
    local line
    line="$(grep '^campaign:' "$tmp/$name.err" | tail -1)"
    echo "$line"
    echo "$line" | sed 's/.*cells=\([0-9]*\).*/\1/'  >"$tmp/$name.cells"
    echo "$line" | sed 's/.*hits=\([0-9]*\).*/\1/'   >"$tmp/$name.hits"
    echo "$line" | sed 's/.*misses=\([0-9]*\).*/\1/' >"$tmp/$name.misses"
    grep -v " took " "$tmp/$name.out" >"$tmp/$name.tables"
}

run sequential 1          "$tmp/cache-seq"
run parallel   "$WORKERS" "$tmp/cache-par"
run warm       "$WORKERS" "$tmp/cache-par"

# run_tails <name> <cachedir> [flags...]: executes the tails campaign,
# recording the same wall/cells files as run() plus the phase-1
# micro-sim simulation count (the M of the "phase1=H/M" summary field).
run_tails() {
    local name="$1" cdir="$2"; shift 2
    echo "== $name: tails $* =="
    local t0 t1
    t0="$(date +%s.%N)"
    "$tmp/duplexity" -scale "$SCALE" -seed 1 -workers "$WORKERS" -cachedir "$cdir" \
        "$@" tails >"$tmp/$name.out" 2>"$tmp/$name.err"
    t1="$(date +%s.%N)"
    awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}' >"$tmp/$name.wall"
    local line
    line="$(grep '^campaign:' "$tmp/$name.err" | tail -1)"
    echo "$line"
    echo "$line" | sed 's/.*cells=\([0-9]*\).*/\1/' >"$tmp/$name.cells"
    echo "$line" | sed 's/.* phase1=[0-9]*\/\([0-9]*\).*/\1/' >"$tmp/$name.micros"
    grep -v " took " "$tmp/$name.out" >"$tmp/$name.tables"
}

# The two-phase A/B. Both runs are cold; the only variable is the cache
# split, so the wall-time gap is exactly the redundant micro-sim compute
# the split eliminates (180 inline slowdown measurements collapse to 35
# shared ones — one per design × workload, baselines needing none of
# their own but every non-baseline family pulling the baseline in).
run_tails single_phase_cold "$tmp/cache-sp" -single-phase
run_tails two_phase_cold    "$tmp/cache-tp"

echo "== two-phase check =="
cmp "$tmp/single_phase_cold.tables" "$tmp/two_phase_cold.tables" \
    || { echo "FAIL: two-phase tails tables differ from single-phase"; exit 1; }
TP_MICROS="$(cat "$tmp/two_phase_cold.micros")"
TP_CELLS="$(cat "$tmp/two_phase_cold.cells")"
if [[ "$TP_MICROS" != "35" ]]; then
    echo "FAIL: cold two-phase tails simulated $TP_MICROS micro-sims, want 35 (one per design x workload)"
    exit 1
fi
TP_SPEEDUP="$(awk -v s="$(cat "$tmp/single_phase_cold.wall")" \
                  -v t="$(cat "$tmp/two_phase_cold.wall")" 'BEGIN{printf "%.2f", s/t}')"
if awk -v x="$TP_SPEEDUP" 'BEGIN{exit !(x < 2.0)}'; then
    echo "FAIL: two-phase cold speedup ${TP_SPEEDUP}x < 2x over single-phase"
    exit 1
fi
echo "tables byte-identical; $TP_MICROS micro-sims for $TP_CELLS cells; ${TP_SPEEDUP}x vs single-phase"

echo "== determinism check =="
cmp "$tmp/sequential.tables" "$tmp/parallel.tables" \
    || { echo "FAIL: -workers $WORKERS tables differ from -workers 1"; exit 1; }
cmp "$tmp/sequential.tables" "$tmp/warm.tables" \
    || { echo "FAIL: warm-cache tables differ"; exit 1; }
if [[ "$(cat "$tmp/warm.misses")" != "0" ]]; then
    echo "FAIL: warm run re-simulated $(cat "$tmp/warm.misses") cells"
    exit 1
fi
echo "tables byte-identical across sequential/parallel/warm; warm run simulated 0 cells"

awk -v scale="$SCALE" -v workers="$WORKERS" -v envjson="$ENV_JSON" \
    -v sw="$(cat "$tmp/sequential.wall")" -v sc="$(cat "$tmp/sequential.cells")" \
    -v pw="$(cat "$tmp/parallel.wall")"   -v pc="$(cat "$tmp/parallel.cells")" \
    -v ww="$(cat "$tmp/warm.wall")"       -v wh="$(cat "$tmp/warm.hits")" \
    -v wc="$(cat "$tmp/warm.cells")" \
    -v spw="$(cat "$tmp/single_phase_cold.wall")" \
    -v tpw="$(cat "$tmp/two_phase_cold.wall")" \
    -v tpc="$(cat "$tmp/two_phase_cold.cells")" \
    -v tpm="$(cat "$tmp/two_phase_cold.micros")" 'BEGIN {
    printf "{\n"
    printf "  \"bench\": \"campaign-fig5-matrix\",\n"
    printf "  \"scale\": %s,\n", scale
    printf "  %s,\n", envjson
    printf "  \"experiments\": [\"fig5a\", \"fig5b\", \"fig5c\", \"fig5f\", \"fig6\"],\n"
    printf "  \"sequential\": {\"workers\": 1, \"wall_seconds\": %s, \"cells\": %d, \"cells_per_sec\": %.3f},\n", sw, sc, sc/sw
    printf "  \"parallel\": {\"workers\": %d, \"wall_seconds\": %s, \"cells\": %d, \"cells_per_sec\": %.3f, \"speedup_vs_sequential\": %.2f},\n", workers, pw, pc, pc/pw, sw/pw
    printf "  \"warm_cache\": {\"workers\": %d, \"wall_seconds\": %s, \"cells\": %d, \"hits\": %d, \"hit_rate\": %.3f, \"speedup_vs_sequential\": %.2f},\n", workers, ww, wc, wh, wh/wc, sw/ww
    printf "  \"cold_two_phase\": {\"experiment\": \"tails\", \"workers\": %d, \"cells\": %d, \"micro_sims_computed\": %d, \"wall_seconds\": %s, \"single_phase_wall_seconds\": %s, \"speedup_vs_single_phase\": %.2f}\n", workers, tpc, tpm, tpw, spw, spw/tpw
    printf "}\n"
}' >"$OUT"

echo "== $OUT =="
cat "$OUT"
fi # campaign

# --- energy-proportionality benchmark -----------------------------------
# BENCH_energy.json records the energyprop sweep's envelope: campaign
# throughput over the governor-keyed cells, plus the headline
# deep-idle-vs-Duplexity-fill comparison on RSC at low/mid/high load —
# idle power, energy per request, p99, and the tail penalty in percent.
# The figures record the trade the paper argues (sleep states save idle
# power, fill preserves the tail and harvests throughput); the envelope
# records, it does not assert — scripts/energyprop_smoke.sh is the gate.
if should_run energy; then
ENERGYOUT="BENCH_energy.json"
echo "== energyprop bench =="
t0="$(date +%s.%N)"
"$tmp/duplexity" -scale "$SCALE" -seed 1 -workers "$WORKERS" \
    -cachedir "$tmp/energy-cache" energyprop \
    >"$tmp/energy.out" 2>"$tmp/energy.err"
t1="$(date +%s.%N)"
ENERGY_WALL="$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}')"
eline="$(grep '^campaign:' "$tmp/energy.err" | tail -1)"
echo "$eline"
ENERGY_CELLS="$(sed 's/.*cells=\([0-9]*\).*/\1/' <<<"$eline")"

# Columns: workload load design/governor util idle_frac avg_W idle_W
# uJ/req batch_GIPS p99_us. One stanza per load level, deep vs fill.
awk -v scale="$SCALE" -v workers="$WORKERS" -v envjson="$ENV_JSON" \
    -v wall="$ENERGY_WALL" -v cells="$ENERGY_CELLS" '
$1 == "RSC" && $3 == "Baseline/deep"  { dIdle[$2] = $7; dUj[$2] = $8; dP99[$2] = $10 }
$1 == "RSC" && $3 == "Duplexity/fill" { fIdle[$2] = $7; fUj[$2] = $8; fGips[$2] = $9; fP99[$2] = $10 }
END {
    printf "{\n"
    printf "  \"bench\": \"energyprop\",\n"
    printf "  %s,\n", envjson
    printf "  \"scale\": %s,\n", scale
    printf "  \"workers\": %d,\n", workers
    printf "  \"sweep\": {\"cells\": %d, \"wall_seconds\": %s, \"cells_per_sec\": %.3f},\n", cells, wall, cells/wall
    printf "  \"rsc_deep_vs_fill\": {\n"
    n = split("0.10 0.50 0.90", loads, " ")
    for (i = 1; i <= n; i++) {
        l = loads[i]
        printf "    \"%s\": {\"deep\": {\"idle_w\": %s, \"uj_per_req\": %s, \"p99_us\": %s}, " \
               "\"fill\": {\"idle_w\": %s, \"uj_per_req\": %s, \"batch_gips\": %s, \"p99_us\": %s}, " \
               "\"deep_p99_penalty_pct\": %.1f}%s\n", \
            l, dIdle[l], dUj[l], dP99[l], fIdle[l], fUj[l], fGips[l], fP99[l], \
            (dP99[l] - fP99[l]) / fP99[l] * 100, (i < n ? "," : "")
    }
    printf "  }\n"
    printf "}\n"
}' "$tmp/energy.out" >"$ENERGYOUT"
python3 -m json.tool "$ENERGYOUT" >/dev/null \
    || { echo "FAIL: $ENERGYOUT is not valid JSON"; exit 1; }

echo "== $ENERGYOUT =="
cat "$ENERGYOUT"
fi # energy

# --- simulator-core benchmark -------------------------------------------
# BENCH_simcore.json reports how fast the cycle-level simulator itself
# runs: simulated cycles per wall second stepped cycle by cycle, with
# the legacy fast-forward loop, and on the discrete-event engine, plus
# per-mode skip ratios — under two configurations:
#
#   moderate    steady load, full batch population: compute-bound, the
#               event engine's job is to never be slower than stepping
#   stall_heavy near-idle load, no batch threads: the killer-microsecond
#               regime, where the event engine must hold >=10x; the
#               -floor flag turns the run into a gate (non-zero exit
#               below the floor), so the headline win cannot rot
#
# simbench also cross-checks that every mode retires identical work,
# failing the benchmark on any divergence. The campaign throughput
# figure rides along when the campaign section ran in this invocation.
if should_run simcore; then
SIMOUT="BENCH_simcore.json"
echo "== simbench =="
go build -o "$tmp/simbench" ./cmd/simbench
"$tmp/simbench" -cycles "${BENCH_SIM_CYCLES:-3000000}" -seed 1 >"$tmp/sim-moderate.json"
cat "$tmp/sim-moderate.json"
"$tmp/simbench" -cycles "${BENCH_SIM_CYCLES:-3000000}" -seed 1 \
    -load 0.02 -batch 0 -designs baseline,duplexity \
    -floor "${BENCH_SIM_FLOOR:-10}" >"$tmp/sim-stall.json"
cat "$tmp/sim-stall.json"

{
    echo "{"
    echo "  \"bench\": \"simcore\","
    echo "  $ENV_JSON,"
    if [[ -f "$tmp/sequential.wall" ]]; then
        awk -v sw="$(cat "$tmp/sequential.wall")" -v sc="$(cat "$tmp/sequential.cells")" \
            'BEGIN { printf "  \"campaign_cells_per_sec\": %.3f,\n", sc/sw }'
    fi
    echo "  \"moderate\":"
    sed -e 's/^/  /' -e '$s/$/,/' "$tmp/sim-moderate.json"
    echo "  \"stall_heavy\":"
    sed 's/^/  /' "$tmp/sim-stall.json"
    echo "}"
} >"$SIMOUT"
python3 -m json.tool "$SIMOUT" >/dev/null \
    || { echo "FAIL: $SIMOUT is not valid JSON"; exit 1; }

echo "== $SIMOUT =="
cat "$SIMOUT"
fi # simcore

# --- serving-layer benchmark --------------------------------------------
# BENCH_serve.json reports the daemon's request envelope under the two
# canonical load regimes. The closed-loop run hits a cold cache, so its
# latency is dominated by real simulation time; the open-loop run reuses
# the now-warm cache, so its latency is the serving overhead itself
# (admission, coalescing, HTTP). Shed counts quantify the admission
# controller rather than failing the bench: overload answers 429.
if should_run serve; then
SERVEOUT="BENCH_serve.json"
SADDR="${BENCH_SERVE_ADDR:-127.0.0.1:8124}"
SREQS="${BENCH_SERVE_REQUESTS:-32}"
echo "== duplexityd loadgen =="
"$tmp/duplexityd" serve -addr "$SADDR" -scale "$SCALE" -seed 1 \
    -workers "$WORKERS" -cachedir "$tmp/serve-cache" 2>"$tmp/served.log" &
serve_pid=$!
for i in $(seq 1 100); do
    curl -fsS "http://$SADDR/v1/healthz" >/dev/null 2>&1 && break
    kill -0 "$serve_pid" 2>/dev/null \
        || { echo "FAIL: duplexityd died during boot"; cat "$tmp/served.log"; exit 1; }
    sleep 0.1
done

"$tmp/duplexityd" loadgen -addr "$SADDR" -conc "$WORKERS" -requests "$SREQS" \
    -spread 16 >"$tmp/serve-closed.json"
cat "$tmp/serve-closed.json"
"$tmp/duplexityd" loadgen -addr "$SADDR" -qps 100 -duration 3s \
    -spread 16 >"$tmp/serve-open.json"
cat "$tmp/serve-open.json"

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "FAIL: duplexityd drain exited nonzero"; cat "$tmp/served.log"; exit 1; }
serve_pid=""
[[ -f "$tmp/serve-cache/checkpoint.json" ]] \
    || { echo "FAIL: no checkpoint after drain"; exit 1; }

# Tracing A/B: the same warm closed-loop load against the same cache,
# once with tracing on and once off. Warm requests are pure serving
# overhead, so this is the worst case for the trace plane's cost; the
# overhead_pct figure pins the ISSUE's <2% tracing budget.
AB_REQS="${BENCH_AB_REQUESTS:-400}"
ab_run() {
    local flag="$1" out="$2"
    "$tmp/duplexityd" serve -addr "$SADDR" -scale "$SCALE" -seed 1 \
        -workers "$WORKERS" -cachedir "$tmp/serve-cache" -tracing="$flag" \
        2>"$tmp/served-ab.log" &
    serve_pid=$!
    for i in $(seq 1 100); do
        curl -fsS "http://$SADDR/v1/healthz" >/dev/null 2>&1 && break
        kill -0 "$serve_pid" 2>/dev/null \
            || { echo "FAIL: duplexityd died during A/B boot"; cat "$tmp/served-ab.log"; exit 1; }
        sleep 0.1
    done
    "$tmp/duplexityd" loadgen -addr "$SADDR" -conc "$WORKERS" -requests "$AB_REQS" \
        -spread 16 >"$out"
    kill -TERM "$serve_pid"
    wait "$serve_pid" || true
    serve_pid=""
}
echo "== tracing A/B (warm, $AB_REQS requests) =="
ab_run true  "$tmp/serve-ab-on.json"
ab_run false "$tmp/serve-ab-off.json"
cat "$tmp/serve-ab-on.json" "$tmp/serve-ab-off.json"
RPS_ON="$(sed 's/.*"rps":\([0-9.]*\).*/\1/' "$tmp/serve-ab-on.json")"
RPS_OFF="$(sed 's/.*"rps":\([0-9.]*\).*/\1/' "$tmp/serve-ab-off.json")"
AB_JSON="$(awk -v on="$RPS_ON" -v off="$RPS_OFF" -v n="$AB_REQS" 'BEGIN {
    printf "{\"requests\": %d, \"rps_tracing_on\": %.3f, \"rps_tracing_off\": %.3f, \"overhead_pct\": %.2f}", n, on, off, (off - on) / off * 100
}')"
echo "tracing A/B: $AB_JSON"

{
    echo "{"
    echo "  \"bench\": \"serve-loadgen\","
    echo "  $ENV_JSON,"
    echo "  \"scale\": $SCALE,"
    echo "  \"workers\": $WORKERS,"
    echo "  \"closed_cold\": $(cat "$tmp/serve-closed.json"),"
    echo "  \"open_warm\": $(cat "$tmp/serve-open.json"),"
    echo "  \"tracing_ab\": $AB_JSON"
    echo "}"
} >"$SERVEOUT"

echo "== $SERVEOUT =="
cat "$SERVEOUT"
fi # serve

# --- fleet benchmark ----------------------------------------------------
# BENCH_fleet.json compares campaign throughput (cells/sec, cold cache)
# through a single-node daemon against a coordinator sharding the same
# campaign over two local worker daemons. On a single-core host the
# fleet's extra hop costs more than the second worker earns; on
# multi-core (or real multi-host) fleets the two-worker figure should
# approach 2x.
if should_run fleet; then
FLEETOUT="BENCH_fleet.json"
FBASE="${BENCH_FLEET_BASE_PORT:-8141}"
F_SINGLE="127.0.0.1:$FBASE"
F_W1="127.0.0.1:$((FBASE + 1))"
F_W2="127.0.0.1:$((FBASE + 2))"
F_CO="127.0.0.1:$((FBASE + 3))"
FLEET_LOADS="${BENCH_FLEET_LOADS:-0.2,0.4,0.6,0.8}"
echo "== fleet bench =="

fleet_pids=()
boot() {
    local log="$1"; shift
    "$tmp/duplexityd" "$@" 2>"$log" &
    local pid=$!
    fleet_pids+=("$pid")
    local addr
    addr="$(sed -n 's/.*-addr \([^ ]*\).*/\1/p' <<<"$*")"
    for i in $(seq 1 100); do
        curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null || { echo "FAIL: daemon died booting"; cat "$log"; exit 1; }
        sleep 0.1
    done
    echo "FAIL: daemon on $addr never became healthy"; cat "$log"; exit 1
}
fleet_cleanup() { for p in "${fleet_pids[@]:-}"; do kill "$p" 2>/dev/null || true; done; }
trap 'fleet_cleanup; cleanup' EXIT

# timed_campaign <addr> <out-wall> <out-cells>
timed_campaign() {
    local addr="$1" wall="$2" cells="$3" t0 t1
    t0="$(date +%s.%N)"
    "$tmp/duplexityd" submit -addr "$addr" -campaign -kind fig5 \
        -designs Baseline,Duplexity -workloads RSC -loads "$FLEET_LOADS" \
        >"$tmp/fleetbench.ndjson" 2>/dev/null
    t1="$(date +%s.%N)"
    awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}' >"$wall"
    sed '$d' "$tmp/fleetbench.ndjson" | wc -l | tr -d ' ' >"$cells"
}

boot "$tmp/fb-single.log" serve -addr "$F_SINGLE" -scale "$SCALE" -seed 1 \
    -workers "$WORKERS" -cachedir "$tmp/fb-single-cache"
timed_campaign "$F_SINGLE" "$tmp/fb-single.wall" "$tmp/fb-single.cells"

boot "$tmp/fb-w1.log" serve -addr "$F_W1" -scale "$SCALE" -seed 1 \
    -workers "$WORKERS" -cachedir "$tmp/fb-w1-cache"
boot "$tmp/fb-w2.log" serve -addr "$F_W2" -scale "$SCALE" -seed 1 \
    -workers "$WORKERS" -cachedir "$tmp/fb-w2-cache"
boot "$tmp/fb-co.log" coordinate -addr "$F_CO" -fleet "$F_W1,$F_W2" \
    -cachedir "$tmp/fb-co-cache"
timed_campaign "$F_CO" "$tmp/fb-fleet.wall" "$tmp/fb-fleet.cells"
fleet_cleanup
fleet_pids=()

awk -v scale="$SCALE" -v workers="$WORKERS" -v envjson="$ENV_JSON" \
    -v sw="$(cat "$tmp/fb-single.wall")" -v sc="$(cat "$tmp/fb-single.cells")" \
    -v fw="$(cat "$tmp/fb-fleet.wall")"  -v fc="$(cat "$tmp/fb-fleet.cells")" 'BEGIN {
    printf "{\n"
    printf "  \"bench\": \"fleet-campaign\",\n"
    printf "  %s,\n", envjson
    printf "  \"scale\": %s,\n", scale
    printf "  \"single_node\": {\"workers\": %d, \"wall_seconds\": %s, \"cells\": %d, \"cells_per_sec\": %.3f},\n", workers, sw, sc, sc/sw
    printf "  \"fleet_2_workers\": {\"workers_per_node\": %d, \"wall_seconds\": %s, \"cells\": %d, \"cells_per_sec\": %.3f, \"speedup_vs_single\": %.2f}\n", workers, fw, fc, fc/fw, sw/fw
    printf "}\n"
}' >"$FLEETOUT"

echo "== $FLEETOUT =="
cat "$FLEETOUT"
fi # fleet

# --- job-store benchmark ------------------------------------------------
# BENCH_jobs.json reports the multi-tenant control plane's envelope on a
# deliberately narrow daemon (-workers 2) so saturation is reproducible
# regardless of host core count:
#
#   * scheduler throughput: two 12-cell batch jobs from tenants alpha
#     (weight 2) and beta (weight 1) submitted together, cells/sec over
#     the whole run
#   * fairness ratio: alpha's vs beta's completed cells sampled mid-run
#     (expected to track the 2:1 weights)
#   * lane latency: single-cell probe jobs submitted while a 24-cell
#     batch job saturates the pool, alternating interactive and batch
#     lanes; per-lane mean and worst-case job latency
if should_run jobs; then
JOBSOUT="BENCH_jobs.json"
JADDR="${BENCH_JOBS_ADDR:-127.0.0.1:8146}"
JWORKERS=2
echo "== jobs bench =="

"$tmp/duplexityd" serve -addr "$JADDR" -scale "$SCALE" -seed 1 \
    -workers "$JWORKERS" -cachedir "$tmp/jobs-cache" \
    -tenant-weights alpha=2,beta=1 2>"$tmp/jobsd.log" &
serve_pid=$!
for i in $(seq 1 100); do
    curl -fsS "http://$JADDR/v1/healthz" >/dev/null 2>&1 && break
    kill -0 "$serve_pid" 2>/dev/null \
        || { echo "FAIL: jobs-bench daemon died during boot"; cat "$tmp/jobsd.log"; exit 1; }
    sleep 0.1
done

submit_job() { # submit_job <tenant> <lane> <loads> -> job id on stdout
    "$tmp/duplexityd" jobs -addr "$JADDR" -submit -kind fig5 \
        -designs Baseline,Duplexity -workloads RSC -loads "$3" \
        -tenant "$1" -lane "$2" 2>/dev/null \
        | python3 -c "import json,sys; print(json.load(sys.stdin)['id'])"
}
job_done() { # job_done <id> -> completed count; "done" appended when finished
    curl -fsS "http://$JADDR/v1/jobs/$1" | python3 -c \
        "import json,sys; j=json.load(sys.stdin); print(j['completed'], 'done' if j['done'] else '')"
}

t0="$(date +%s.%N)"
job_a="$(submit_job alpha batch 0.11,0.22,0.33,0.44,0.55,0.66)"
job_b="$(submit_job beta  batch 0.12,0.23,0.34,0.45,0.56,0.67)"
fair_a=""; fair_b=""
while :; do
    read -r ca da <<<"$(job_done "$job_a")"
    read -r cb db <<<"$(job_done "$job_b")"
    # First sample past the halfway mark is the fairness observation.
    if [[ -z "$fair_a" && $((ca + cb)) -ge 12 ]]; then fair_a="$ca"; fair_b="$cb"; fi
    [[ "$da" == "done" && "$db" == "done" ]] && break
    sleep 0.025
done
t1="$(date +%s.%N)"
# If both jobs finished between polls the mid-run sample never fired;
# fall back to the final (uninformative, 1.0) counts so the envelope
# stays well-formed.
[[ -n "$fair_a" ]] || { fair_a="$ca"; fair_b="$cb"; }
SCHED_WALL="$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", b-a}')"
echo "scheduler: 24 cells in ${SCHED_WALL}s; mid-run completed alpha=$fair_a beta=$fair_b"

# Lane probes: a long batch job keeps both pool slots busy while
# single-cell jobs race through each lane. Probe loads are unique so
# every probe is a real (cold) simulation.
sat_job="$(submit_job beta batch 0.13,0.24,0.35,0.46,0.57,0.68,0.79,0.85,0.14,0.25,0.36,0.47)"
probe() { # probe <lane> <load> -> wall seconds for the 1-cell job
    local pt0 pt1
    pt0="$(date +%s.%N)"
    "$tmp/duplexityd" jobs -addr "$JADDR" -submit -kind fig5 \
        -designs Baseline -workloads RSC -loads "$2" \
        -tenant alpha -lane "$1" -stream >/dev/null 2>&1
    pt1="$(date +%s.%N)"
    awk -v a="$pt0" -v b="$pt1" 'BEGIN{printf "%.4f", b-a}'
}
int_lat=(); bat_lat=()
for i in 1 2 3 4; do
    int_lat+=("$(probe interactive "0.15$i")")
    bat_lat+=("$(probe batch "0.16$i")")
done
read -r _ sat_done <<<"$(job_done "$sat_job")"
echo "lane probes: interactive=(${int_lat[*]}) batch=(${bat_lat[*]}) saturator_done=${sat_done:-no}"
while :; do
    read -r _ d <<<"$(job_done "$sat_job")"
    [[ "$d" == "done" ]] && break
    sleep 0.1
done

kill -TERM "$serve_pid"
wait "$serve_pid" || { echo "FAIL: jobs-bench daemon drain exited nonzero"; cat "$tmp/jobsd.log"; exit 1; }
serve_pid=""

lane_stats() { # lane_stats <lat...> -> {"mean_s":..,"worst_s":..,"samples":N}
    awk 'BEGIN { n = ARGC - 1; sum = 0; max = 0
        for (i = 1; i < ARGC; i++) { sum += ARGV[i]; if (ARGV[i] + 0 > max) max = ARGV[i] + 0 }
        printf "{\"samples\": %d, \"mean_s\": %.4f, \"worst_s\": %.4f}", n, sum / n, max
    }' "$@"
}
awk -v scale="$SCALE" -v workers="$JWORKERS" -v envjson="$ENV_JSON" \
    -v sw="$SCHED_WALL" -v fa="$fair_a" -v fb="$fair_b" \
    -v intj="$(lane_stats "${int_lat[@]}")" -v batj="$(lane_stats "${bat_lat[@]}")" 'BEGIN {
    printf "{\n"
    printf "  \"bench\": \"jobstore-scheduler\",\n"
    printf "  %s,\n", envjson
    printf "  \"scale\": %s,\n", scale
    printf "  \"workers\": %d,\n", workers
    printf "  \"tenant_weights\": {\"alpha\": 2, \"beta\": 1},\n"
    printf "  \"scheduler\": {\"cells\": 24, \"wall_seconds\": %s, \"cells_per_sec\": %.3f},\n", sw, 24/sw
    printf "  \"fairness\": {\"mid_run_completed\": {\"alpha\": %d, \"beta\": %d}, \"ratio\": %.2f, \"weight_ratio\": 2.0},\n", fa, fb, (fb > 0 ? fa/fb : fa)
    printf "  \"lane_probe_jobs\": {\"interactive\": %s, \"batch\": %s}\n", intj, batj
    printf "}\n"
}' >"$JOBSOUT"

echo "== $JOBSOUT =="
cat "$JOBSOUT"
fi # jobs

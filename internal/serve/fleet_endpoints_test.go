package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"
	"testing"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/expt"
)

// TestCoalesceFollowerTimeout: a follower whose deadline expires while
// the leader is mid-execution must not cancel the leader's cell, and the
// follower's abandonment must land in the journal as its own cancelled
// entry — the audit trail is per-request, not per-flight. This is also
// exactly what happens when a fleet coordinator cancels the losing half
// of a hedged dispatch.
func TestCoalesceFollowerTimeout(t *testing.T) {
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: dir})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var mu sync.Mutex
	executions := 0
	s, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 4}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		started <- struct{}{}
		mu.Lock()
		executions++
		mu.Unlock()
		<-release
		return stubResult(cs), nil
	})

	target := matrixCell(0.50)
	var leaderStatus int
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		leaderStatus, _, _ = postJSON(t, ts.URL+"/v1/cells", target)
	}()
	<-started // leader is executing; its flight stays registered until release

	// The follower coalesces onto the running flight, then times out.
	status, _, body := postJSON(t, ts.URL+"/v1/cells", CellRequest{CellSpec: target, TimeoutMs: 50})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("follower = %d (%s), want 504", status, body)
	}
	st := pollStatz(t, ts.URL, "follower cancellation recorded", func(st Statz) bool {
		return counter(st, "serve.cells.follower_cancelled") == 1
	})
	if counter(st, "serve.coalesce.hits") != 1 {
		t.Errorf("coalesce hits = %d, want 1", counter(st, "serve.coalesce.hits"))
	}

	// The leader is untouched: still running, then completes normally.
	close(release)
	wg.Wait()
	if leaderStatus != http.StatusOK {
		t.Fatalf("leader = %d, want 200 (follower timeout must not cancel the leader)", leaderStatus)
	}
	mu.Lock()
	if executions != 1 {
		t.Errorf("executions = %d, want exactly 1", executions)
	}
	mu.Unlock()
	st = pollStatz(t, ts.URL, "leader completed", func(st Statz) bool {
		return counter(st, "serve.cells.completed") == 1
	})
	if counter(st, "serve.cells.cancelled") != 0 {
		t.Errorf("cell cancelled = %d, want 0 (only the follower gave up)", counter(st, "serve.cells.cancelled"))
	}

	// The follower's journal entry records its own cancelled status.
	key, err := suite.ServedKey(target)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := campaign.ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cancelled := 0
	for _, e := range entries {
		if e.Status == campaign.StatusCancelled && e.Digest == key.Digest() {
			cancelled++
		}
	}
	if cancelled != 1 {
		t.Errorf("cancelled journal entries for the cell = %d, want 1: %+v", cancelled, entries)
	}
	if sum := s.suite.Engine().Stats(); sum.Incomplete != 1 {
		t.Errorf("engine incomplete = %d, want 1", sum.Incomplete)
	}
}

// TestExecEndpoint: POST /v1/exec returns the cache-entry-level result a
// coordinator stores verbatim, and validates at the boundary like every
// other endpoint.
func TestExecEndpoint(t *testing.T) {
	rawResult := json.RawMessage(`{"design":"Baseline","value":42}`)
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4}, func(cs expt.CellSpec) (expt.ServedResult, error) {
		res := stubResult(cs)
		res.Raw = &expt.RawCellResult{
			Digest: "d1", Cached: false, WallSeconds: 0.25, Result: rawResult,
		}
		return res, nil
	})

	status, _, body := postJSON(t, ts.URL+"/v1/exec", CellRequest{CellSpec: matrixCell(0.30)})
	if status != http.StatusOK {
		t.Fatalf("exec = %d (%s), want 200", status, body)
	}
	var raw expt.RawCellResult
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if raw.Digest != "d1" || raw.Cached || raw.WallSeconds != 0.25 {
		t.Errorf("exec envelope = %+v", raw)
	}
	if !bytes.Equal(raw.Result, rawResult) {
		t.Errorf("exec result bytes = %s, want %s", raw.Result, rawResult)
	}

	if status, _, _ := postJSON(t, ts.URL+"/v1/exec", CellRequest{CellSpec: expt.CellSpec{Kind: "bogus"}}); status != http.StatusBadRequest {
		t.Errorf("invalid exec = %d, want 400", status)
	}
}

// TestQueuezReportsWorld: GET /v1/queuez exposes queue state and the
// world identity a coordinator verifies before routing cells here.
func TestQueuezReportsWorld(t *testing.T) {
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 9, Workers: 1})
	_, ts := newTestServer(t, Config{Suite: suite, Workers: 3, QueueDepth: 7},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })

	var qz Queuez
	if code := getJSON(t, ts.URL+"/v1/queuez", &qz); code != http.StatusOK {
		t.Fatalf("queuez = %d, want 200", code)
	}
	if qz.Draining || qz.Workers != 3 || qz.QueueCapacity != 7 {
		t.Errorf("queuez = %+v", qz)
	}
	want := expt.World{Model: core.ModelVersion, Scale: 0.01, Seed: 9}
	if qz.World != want {
		t.Errorf("world = %+v, want %+v", qz.World, want)
	}
}

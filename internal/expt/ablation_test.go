package expt

import (
	"strconv"
	"testing"
)

func TestAblationVirtualContexts(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level experiment")
	}
	if raceEnabled {
		t.Skip("cycle-level experiment too slow under -race")
	}
	s := NewSuite(Options{Scale: 0.15, Seed: 2})
	tb, err := s.AblationVirtualContexts()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// More virtual contexts must not reduce utilization materially; the
	// backlog (32) should clearly beat bare physical contexts (8).
	u8 := parse(t, tb.Rows[0][1])
	u32 := parse(t, tb.Rows[3][1])
	if u32 < u8*1.1 {
		t.Errorf("32 contexts (%v) not clearly better than 8 (%v)", u32, u8)
	}
}

func TestAblationRestartLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level experiment")
	}
	if raceEnabled {
		t.Skip("cycle-level experiment too slow under -race")
	}
	s := NewSuite(Options{Scale: 0.15, Seed: 2})
	tb, err := s.AblationRestartLatency()
	if err != nil {
		t.Fatal(err)
	}
	// A 2000-cycle restart must visibly hurt tail latency vs 50 cycles.
	p50c, err1 := strconv.ParseFloat(tb.Rows[1][1], 64)
	p2000, err2 := strconv.ParseFloat(tb.Rows[3][1], 64)
	if err1 != nil || err2 != nil {
		t.Fatalf("unparseable p99 cells: %v %v", tb.Rows[1][1], tb.Rows[3][1])
	}
	if p2000 <= p50c {
		t.Errorf("slow restart p99 %v not above fast restart %v", p2000, p50c)
	}
}

func TestAblationL0(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle-level experiment")
	}
	if raceEnabled {
		t.Skip("cycle-level experiment too slow under -race")
	}
	s := NewSuite(Options{Scale: 0.15, Seed: 2})
	tb, err := s.AblationL0()
	if err != nil {
		t.Fatal(err)
	}
	// The L0s are bandwidth filters: removing them must raise lender L1D
	// traffic per cycle.
	with := parse(t, tb.Rows[0][3])
	without := parse(t, tb.Rows[1][3])
	if without <= with {
		t.Errorf("lender L1D traffic without L0 (%v) not above with L0 (%v)", without, with)
	}
}

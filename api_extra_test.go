package duplexity

import (
	"bytes"
	"testing"
)

func TestPublicAPITraceRoundTrip(t *testing.T) {
	spec := WordStem()
	gen := spec.NewGen(5)
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := CaptureTrace(tw, gen, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10_000 {
		t.Fatalf("captured %d", n)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	stream, err := LoadTrace(&buf, false)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for {
		if _, ok := stream.Next(0); !ok {
			break
		}
		count++
	}
	if count != 10_000 {
		t.Fatalf("replayed %d instructions", count)
	}
}

func TestPublicAPIProvisioning(t *testing.T) {
	n, err := ProvisionContexts(ProvisionDemand{BatchStallFrac: 0.5, MasterBorrows: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Fatalf("pessimistic provisioning %d, want 32 (Section IV)", n)
	}
	o, err := NewStallObserver(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Record(500, 1000); err != nil {
		t.Fatal(err)
	}
	if got, err := o.Recommend(false, 0.9); err != nil || got < 19 {
		t.Fatalf("recommendation %d (%v)", got, err)
	}
}

func TestPublicAPIChip(t *testing.T) {
	spec := FLANNLL()
	var masters []Stream
	var batches [][]Stream
	for i := 0; i < 2; i++ {
		m, err := spec.NewMaster(0.5, DesignDuplexity.FreqGHz(), uint64(i+9))
		if err != nil {
			t.Fatal(err)
		}
		masters = append(masters, m)
		batches = append(batches, BatchSet(16, uint64(i*50)))
	}
	c, err := NewChip(ChipConfig{Design: DesignDuplexity, Masters: masters, Batches: batches})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(600_000)
	if c.MeanMasterUtilization() <= 0 {
		t.Fatal("chip idle")
	}
	if c.Latencies().Count() == 0 {
		t.Fatal("no chip latencies")
	}
}

// Quickstart: simulate one Duplexity dyad serving the McRouter
// microservice at 50% load with PageRank/SSSP filler-threads, and compare
// its core utilization and tail latency against the Baseline design.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"duplexity"
)

func simulate(design duplexity.Design) *duplexity.Dyad {
	spec := duplexity.McRouter()
	master, err := spec.NewMaster(0.5, design.FreqGHz(), 42)
	if err != nil {
		log.Fatal(err)
	}
	// The Section V filler set: 32 BSP graph-analytics threads (half
	// PageRank, half SSSP) over a power-law graph, with 1µs RDMA reads
	// for remote vertices.
	g, err := duplexity.NewGraph(4096, 12, 0.5, 7)
	if err != nil {
		log.Fatal(err)
	}
	fillers, _, _, err := duplexity.FillerSet(g, 32, 9)
	if err != nil {
		log.Fatal(err)
	}
	d, err := duplexity.NewDyad(duplexity.DyadConfig{
		Design:       design,
		MasterStream: master,
		BatchStreams: fillers,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Run(3_000_000) // ~0.9ms of simulated time
	return d
}

func main() {
	fmt.Println("McRouter @ 50% load, 32 graph-analytics filler threads")
	fmt.Println()
	for _, design := range []duplexity.Design{duplexity.DesignBaseline, duplexity.DesignSMT, duplexity.DesignDuplexity} {
		d := simulate(design)
		fmt.Printf("%-14s utilization %.2f   batch %6.0f MIPS   p99 %6.1f µs\n",
			design.String()+":",
			d.MasterUtilization(),
			float64(d.BatchRetired())/d.Seconds()/1e6,
			d.CyclesToUs(d.Latencies.P99()))
	}
	fmt.Println()
	fmt.Println("Duplexity fills the master-core's µs-scale stall and idle holes")
	fmt.Println("with filler-threads while keeping the microservice tail close to")
	fmt.Println("the baseline — unlike SMT co-location.")
}

// Package graphwl implements the filler-thread workloads of Section V:
// distributed PageRank and Single-Source Shortest Path over a synthetic
// power-law graph (standing in for the paper's Twitter subset), executed
// with bulk-synchronous processing and a synchronous queue-pair
// disaggregated-memory model in which reading a remote vertex costs a
// 1µs single-cache-line RDMA read.
//
// The kernels actually compute: worker streams emit the instruction
// traces of a real BSP execution whose numeric results are checked
// against serial reference implementations in tests.
package graphwl

import (
	"fmt"

	"duplexity/internal/stats"
)

// Graph is a directed graph in compressed sparse row form. For the BSP
// kernels the adjacency list of v is interpreted as v's in-neighbors
// (pull-based gather).
type Graph struct {
	N       int
	offsets []int32
	edges   []int32
}

// GenPowerLaw generates a graph with a heavy-tailed degree distribution
// via preferential attachment, plus locality bias: with probability
// pLocal an edge endpoint is drawn from the vertex's own partition-sized
// neighbourhood, modelling the partial locality real graph partitioners
// achieve (the paper: "almost half of vertices are accessed remotely").
func GenPowerLaw(n, avgDeg int, pLocal float64, seed uint64) (*Graph, error) {
	if n < 2 || avgDeg < 1 {
		return nil, fmt.Errorf("graphwl: need n >= 2 and avgDeg >= 1, got n=%d deg=%d", n, avgDeg)
	}
	if pLocal < 0 || pLocal > 1 {
		return nil, fmt.Errorf("graphwl: pLocal %v outside [0,1]", pLocal)
	}
	rng := stats.NewRNG(seed)
	adj := make([][]int32, n)
	// endpoints records every edge endpoint for preferential attachment.
	endpoints := make([]int32, 0, n*avgDeg)
	block := 512 // locality neighbourhood size
	for v := 1; v < n; v++ {
		deg := 1 + rng.Intn(2*avgDeg-1) // mean ~avgDeg
		for e := 0; e < deg; e++ {
			var u int32
			switch {
			case rng.Bernoulli(pLocal):
				// Local edge within the vertex's block.
				base := (v / block) * block
				span := block
				if base+span > v {
					span = v - base // only earlier vertices exist
				}
				if span <= 0 {
					u = int32(rng.Intn(v))
				} else {
					u = int32(base + rng.Intn(span))
				}
			case len(endpoints) > 0 && rng.Bernoulli(0.7):
				// Preferential attachment: copy a random endpoint.
				u = endpoints[rng.Intn(len(endpoints))]
			default:
				u = int32(rng.Intn(v))
			}
			if u == int32(v) {
				continue
			}
			adj[v] = append(adj[v], u)
			endpoints = append(endpoints, u, int32(v))
		}
	}
	// Give vertex 0 a couple of edges so it isn't isolated.
	adj[0] = append(adj[0], 1%int32(n), int32(n/2))

	g := &Graph{N: n, offsets: make([]int32, n+1)}
	total := 0
	for v := range adj {
		total += len(adj[v])
	}
	g.edges = make([]int32, 0, total)
	for v := range adj {
		g.offsets[v] = int32(len(g.edges))
		g.edges = append(g.edges, adj[v]...)
	}
	g.offsets[n] = int32(len(g.edges))
	return g, nil
}

// MustGenPowerLaw panics on invalid parameters.
func MustGenPowerLaw(n, avgDeg int, pLocal float64, seed uint64) *Graph {
	g, err := GenPowerLaw(n, avgDeg, pLocal, seed)
	if err != nil {
		panic(err)
	}
	return g
}

// Neighbors returns v's in-neighbor list (shared backing array).
func (g *Graph) Neighbors(v int) []int32 {
	return g.edges[g.offsets[v]:g.offsets[v+1]]
}

// Edges returns the total edge count.
func (g *Graph) Edges() int { return len(g.edges) }

// OutDegrees computes each vertex's out-degree under the in-neighbor
// interpretation (number of adjacency lists a vertex appears in).
func (g *Graph) OutDegrees() []int32 {
	out := make([]int32, g.N)
	for _, u := range g.edges {
		out[u]++
	}
	// Dangling vertices push to nobody; treat as out-degree 1 so their
	// rank mass is not divided by zero (standard dangling fix).
	for i := range out {
		if out[i] == 0 {
			out[i] = 1
		}
	}
	return out
}

// PageRankRef is the serial reference PageRank (pull-based, damping d,
// iters full sweeps), used to validate the BSP execution.
func PageRankRef(g *Graph, d float64, iters int) []float64 {
	n := g.N
	rank := make([]float64, n)
	next := make([]float64, n)
	outDeg := g.OutDegrees()
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		for v := 0; v < n; v++ {
			sum := 0.0
			for _, u := range g.Neighbors(v) {
				sum += rank[u] / float64(outDeg[u])
			}
			next[v] = (1-d)/float64(n) + d*sum
		}
		rank, next = next, rank
	}
	return rank
}

// SSSPRef is the serial reference shortest-path (unit weights, treating
// the in-neighbor lists as undirected adjacency for reachability), a
// Bellman-Ford sweep matching the BSP kernel's relaxation.
func SSSPRef(g *Graph, src int, sweeps int) []int32 {
	const inf = int32(1 << 30)
	dist := make([]int32, g.N)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	for s := 0; s < sweeps; s++ {
		changed := false
		for v := 0; v < g.N; v++ {
			for _, u := range g.Neighbors(v) {
				if dist[u]+1 < dist[v] {
					dist[v] = dist[u] + 1
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

package trace

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
	"duplexity/internal/workload"
)

func synth(seed uint64) isa.Stream {
	return isa.MustSynthStream(isa.SynthConfig{
		Seed: seed, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.14,
		CodeBytes: 8 * 1024, DataBytes: 1 << 18, HotFrac: 0.9, HotBytes: 8 * 1024,
		StreamFrac: 0.25, DepP: 0.3, BranchRandomFrac: 0.05,
		RemoteEvery: 500, RemoteLat: stats.Exponential{MeanVal: 1000},
		InstrsPerRequest: stats.Deterministic{Value: 777},
	})
}

func TestRoundTrip(t *testing.T) {
	src := synth(7)
	want := isa.Record(src, 20000)

	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, in := range want {
		if err := w.Append(in); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != uint64(len(want)) {
		t.Fatalf("count %d != %d", w.Count(), len(want))
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d instrs, wrote %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("instr %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

func TestCompactness(t *testing.T) {
	src := synth(8)
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Capture(w, src, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	bytesPer := float64(buf.Len()) / float64(n)
	if bytesPer > 14 {
		t.Fatalf("trace uses %.1f bytes/instr; format regressed", bytesPer)
	}
}

func TestCaptureStopsAtIdle(t *testing.T) {
	fixed := &isa.Fixed{Instrs: []isa.Instr{{PC: 4, Op: isa.OpIntAlu}, {PC: 8, Op: isa.OpIntAlu}}}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	n, err := Capture(w, fixed, 100)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("captured %d, want 2", n)
	}
}

func TestAppendAfterFlush(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(isa.Instr{}); err == nil {
		t.Fatal("append after flush accepted")
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTATRACE"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	src := synth(9)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if _, err := Capture(w, src, 100); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop mid-record: reading must fail with a non-EOF error eventually
	// or return fewer records, never panic.
	for _, cut := range []int{len(full) - 1, len(full) - 3, 12} {
		r, err := NewReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // header itself truncated
		}
		for {
			_, err := r.Next()
			if err != nil {
				break
			}
		}
	}
}

// Property: any instruction round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(pc, addr, target uint64, op, dst, s1, s2 uint8, taken, eor, call, ret bool, remote float64) bool {
		in := isa.Instr{
			PC: pc, Op: isa.OpClass(op % 9), Dst: isa.RegID(dst), Src1: isa.RegID(s1), Src2: isa.RegID(s2),
			Addr: addr, Taken: taken, Target: target, EndOfRequest: eor,
			IsCall: call, IsReturn: ret,
		}
		if remote == remote && remote != 0 { // skip NaN; keep ±values
			in.RemoteNs = remote
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		if err := w.Append(in); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		if err != nil {
			return false
		}
		if _, err := r.Next(); err != io.EOF {
			return false
		}
		return got == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// A captured microservice trace must replay identically through Load,
// and looping replay must preserve request structure.
func TestLoadLoopReplay(t *testing.T) {
	spec := workload.McRouter()
	gen := spec.NewGen(3)
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	if _, err := Capture(w, gen, 40000); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	stream, err := Load(bytes.NewReader(buf.Bytes()), true)
	if err != nil {
		t.Fatal(err)
	}
	requests := 0
	for i := 0; i < 100000; i++ {
		in, ok := stream.Next(0)
		if !ok {
			t.Fatal("looping replay went idle")
		}
		if in.EndOfRequest {
			requests++
		}
	}
	if requests == 0 {
		t.Fatal("replay lost request boundaries")
	}
}

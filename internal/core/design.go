// Package core implements the paper's primary contribution: the
// master-core (a morphable core that runs a single latency-critical
// master-thread out-of-order and fills its µs-scale stall/idle holes with
// in-order filler-threads), the master/lender dyad with segregated filler
// state, and the seven server design points evaluated in Section V.
package core

import "fmt"

// ModelVersion fingerprints the simulator's semantics for the
// experiment-campaign result cache (internal/campaign): any change that
// can alter a simulated result — core timing, workload generation,
// power model, seed derivation — must bump this string so every cached
// cell is invalidated. Flag/CLI changes that do not affect results must
// NOT bump it, or warm caches are thrown away for nothing.
const ModelVersion = "hpca19-duplexity-v1"

// Design enumerates the evaluated design points (Section V).
type Design int

// The seven design configurations compared in the paper.
const (
	// DesignBaseline is a 4-wide OoO core running only the microservice.
	DesignBaseline Design = iota
	// DesignSMT adds a second SMT batch thread with ICOUNT fetch.
	DesignSMT
	// DesignSMTPlus prioritizes the microservice thread and caps the
	// co-runner at 30% of storage resources.
	DesignSMTPlus
	// DesignMorphCore morphs to 8 fixed filler-threads when the
	// master-thread stalls or idles; fillers share all master state.
	DesignMorphCore
	// DesignMorphCorePlus extends MorphCore with HSMT and a lender-core
	// pairing (borrows from a shared virtual-context pool) but still
	// shares the master's caches, TLBs, and predictor with fillers.
	DesignMorphCorePlus
	// DesignDuplexityRepl is Duplexity with all stateful structures,
	// including L1 caches, replicated for fillers.
	DesignDuplexityRepl
	// DesignDuplexity is the final design: fillers use dedicated TLBs, a
	// reduced predictor, and L0 caches backed by the lender-core's L1s.
	DesignDuplexity
)

// AllDesigns lists every design point in evaluation order.
var AllDesigns = []Design{
	DesignBaseline, DesignSMT, DesignSMTPlus,
	DesignMorphCore, DesignMorphCorePlus,
	DesignDuplexityRepl, DesignDuplexity,
}

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case DesignBaseline:
		return "Baseline"
	case DesignSMT:
		return "SMT"
	case DesignSMTPlus:
		return "SMT+"
	case DesignMorphCore:
		return "MorphCore"
	case DesignMorphCorePlus:
		return "MorphCore+"
	case DesignDuplexityRepl:
		return "Duplexity+repl"
	case DesignDuplexity:
		return "Duplexity"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// LenderFreqGHz is the lender-core's clock from Table II. The simple
// in-order lender closes timing at the same frequency as the baseline
// OoO core; Table II (internal/power) and the simulator share this
// constant so the table cannot drift from the simulated clock.
const LenderFreqGHz = 3.4

// FreqGHz returns the design's clock frequency from Table II.
func (d Design) FreqGHz() float64 {
	switch d {
	case DesignBaseline:
		return LenderFreqGHz
	case DesignSMT, DesignSMTPlus:
		return 3.35
	case DesignMorphCore:
		return 3.3
	default: // master-core based designs
		return 3.25
	}
}

// Morphs reports whether the design switches into a filler-thread mode.
func (d Design) Morphs() bool { return d >= DesignMorphCore }

// UsesHSMT reports whether the design's filler mode draws from a
// virtual-context pool shared with a lender-core.
func (d Design) UsesHSMT() bool { return d >= DesignMorphCorePlus }

// SegregatesState reports whether filler-threads are isolated from the
// master-thread's microarchitectural state.
func (d Design) SegregatesState() bool {
	return d == DesignDuplexity || d == DesignDuplexityRepl
}

// Timing constants for mode transitions (Sections III-B1 and III-B4).
const (
	// MorphInLat is the latency to reconfigure the datapath into
	// in-order SMT mode after the drain completes.
	MorphInLat = 20
	// DuplexityRestartLat is the master-thread restart latency: pending
	// filler instructions are flushed and filler register state spills
	// through the L0 in under 50 cycles.
	DuplexityRestartLat = 50
	// MorphCoreRestartLat is MorphCore's slower restart: filler
	// architectural registers are evacuated to a dedicated memory region
	// by microcode (8 threads x 32 registers at ~1 per cycle).
	MorphCoreRestartLat = 300
)

// RestartLat returns the master-thread restart latency for the design.
func (d Design) RestartLat() uint64 {
	switch d {
	case DesignMorphCore, DesignMorphCorePlus:
		return MorphCoreRestartLat
	case DesignDuplexity, DesignDuplexityRepl:
		return DuplexityRestartLat
	default:
		return 0
	}
}

package expt

import (
	"fmt"
	"testing"

	"duplexity/internal/core"
	"duplexity/internal/workload"
)

// TestServiceCalibration checks that the simulated baseline service time
// of each microservice lands near the paper's nominal service time
// (the per-workload instruction densities in the workload package are
// calibrated against this).
func TestServiceCalibration(t *testing.T) {
	if raceEnabled {
		t.Skip("cycle-level calibration too slow under -race")
	}
	for _, spec := range workload.Microservices() {
		closed := workload.NewClosedStream(spec.NewGen(1013))
		d, err := core.NewDyad(core.Config{
			Design:       core.DesignBaseline,
			MasterStream: closed,
			BatchStreams: workload.BatchSet(32, 5),
		})
		if err != nil {
			t.Fatal(err)
		}
		done := d.RunUntilRequests(120, 12_000_000)
		if done == 0 {
			t.Fatalf("%s: no requests", spec.Name)
		}
		us := float64(d.Now()) / float64(done) / (d.Freq * 1e3)
		fmt.Printf("%-9s measured %.1fµs nominal %.1fµs (ratio %.2f)\n",
			spec.Name, us, spec.NominalServiceUs, us/spec.NominalServiceUs)
		if r := us / spec.NominalServiceUs; r < 0.7 || r > 1.4 {
			t.Errorf("%s: measured service %.1fµs vs nominal %.1fµs", spec.Name, us, spec.NominalServiceUs)
		}
	}
}

package hsmt

import (
	"testing"

	"duplexity/internal/bpred"
	"duplexity/internal/cache"
	"duplexity/internal/cpu"
	"duplexity/internal/memsys"
)

func benchScheduler(b *testing.B) *Scheduler {
	b.Helper()
	cm := memsys.NewTableICoreMem("lender")
	sh := memsys.NewTableIShared("chip", 3.4)
	iport, dport := memsys.LocalPorts(cm, sh, cache.OwnerFiller)
	core, err := cpu.NewInOCore(cpu.TableIConfig(), 8, iport, dport, bpred.NewLenderUnit())
	if err != nil {
		b.Fatal(err)
	}
	pool := NewPool()
	for i := 0; i < 24; i++ {
		pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(40+i), true)})
	}
	s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSchedulerStepCore measures the HSMT lender under its design
// load: 8 physical slots backed by 24 remote-stalling virtual contexts,
// so swaps, quantum preemptions, and pending-buffer replays all run
// every few hundred cycles. Steady state must not allocate.
func BenchmarkSchedulerStepCore(b *testing.B) {
	s := benchScheduler(b)
	now := uint64(0)
	for ; now < 100_000; now++ {
		s.StepCore(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.StepCore(now)
		now++
	}
}

// TestSchedulerStepZeroAlloc pins the zero-allocation property of the
// lender hot loop, including context swap-out (UnbindInto reuses the
// virtual context's pending buffer) and swap-in (bind replays it).
func TestSchedulerStepZeroAlloc(t *testing.T) {
	cm := memsys.NewTableICoreMem("lender")
	sh := memsys.NewTableIShared("chip", 3.4)
	iport, dport := memsys.LocalPorts(cm, sh, cache.OwnerFiller)
	core, err := cpu.NewInOCore(cpu.TableIConfig(), 8, iport, dport, bpred.NewLenderUnit())
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPool()
	for i := 0; i < 24; i++ {
		pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(40+i), true)})
	}
	s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for ; now < 300_000; now++ {
		s.StepCore(now)
	}
	swaps := s.Swaps
	if n := testing.AllocsPerRun(20_000, func() {
		s.StepCore(now)
		now++
	}); n != 0 {
		t.Fatalf("scheduler StepCore allocates %.4f objects/cycle in steady state, want 0", n)
	}
	if s.Swaps == swaps {
		t.Fatal("steady-state window exercised no context swaps; benchmark not representative")
	}
}

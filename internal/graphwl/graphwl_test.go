package graphwl

import (
	"math"
	"testing"

	"duplexity/internal/isa"
)

func testGraph() *Graph { return MustGenPowerLaw(2000, 8, 0.5, 42) }

func TestGenPowerLawValidation(t *testing.T) {
	if _, err := GenPowerLaw(1, 4, 0.5, 1); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := GenPowerLaw(100, 0, 0.5, 1); err == nil {
		t.Fatal("deg=0 accepted")
	}
	if _, err := GenPowerLaw(100, 4, 1.5, 1); err == nil {
		t.Fatal("pLocal>1 accepted")
	}
}

func TestGraphShape(t *testing.T) {
	g := testGraph()
	if g.N != 2000 {
		t.Fatalf("n=%d", g.N)
	}
	avg := float64(g.Edges()) / float64(g.N)
	if avg < 4 || avg > 14 {
		t.Fatalf("average degree %v, want ~8", avg)
	}
	// All edges in range; vertex ids valid.
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if u < 0 || int(u) >= g.N {
				t.Fatalf("edge to invalid vertex %d", u)
			}
		}
	}
	// Heavy tail: max out-degree well above average.
	outDeg := g.OutDegrees()
	maxDeg := int32(0)
	for _, d := range outDeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 6*avg {
		t.Fatalf("max out-degree %d not heavy-tailed (avg %v)", maxDeg, avg)
	}
}

func TestPageRankRefProperties(t *testing.T) {
	g := testGraph()
	rank := PageRankRef(g, 0.85, 30)
	sum := 0.0
	for _, r := range rank {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	// Rank mass is approximately conserved (dangling mass leaks a bit in
	// this formulation; accept a wide band around 1).
	if sum < 0.5 || sum > 1.5 {
		t.Fatalf("rank mass = %v", sum)
	}
}

func TestSSSPRefProperties(t *testing.T) {
	g := testGraph()
	dist := SSSPRef(g, 0, 50)
	if dist[0] != 0 {
		t.Fatal("source distance not zero")
	}
	// Triangle inequality over the relaxation edges.
	for v := 0; v < g.N; v++ {
		for _, u := range g.Neighbors(v) {
			if dist[u] < 1<<29 && dist[v] > dist[u]+1 {
				t.Fatalf("unrelaxed edge %d->%d: %d > %d+1", u, v, dist[v], dist[u])
			}
		}
	}
}

// drive steps all worker streams round-robin until the job completes
// whole runs or the step budget is exhausted.
func drive(t *testing.T, j *Job, steps int) {
	t.Helper()
	streams := j.Streams()
	for i := 0; i < steps && j.Runs == 0; i++ {
		for _, s := range streams {
			if _, ok := s.Next(0); !ok {
				t.Fatal("BSP worker went idle")
			}
		}
	}
}

// The BSP instruction-stream execution must compute the same PageRank as
// the serial reference.
func TestBSPPageRankMatchesReference(t *testing.T) {
	g := MustGenPowerLaw(500, 6, 0.5, 7)
	iters := 5
	j := MustNewJob(JobConfig{Graph: g, Kernel: KernelPageRank, Workers: 4,
		ItersPerRun: iters, Seed: 3})
	ref := PageRankRef(g, 0.85, iters)

	// Drive until just before the run completes, capturing the final
	// vector right at the last swap: run to completion and compare on the
	// freshly re-initialized job is too late, so check at superstep
	// iters-1 -> advance. Simpler: set ItersPerRun high and compare at
	// superstep == iters.
	j2 := MustNewJob(JobConfig{Graph: g, Kernel: KernelPageRank, Workers: 4,
		ItersPerRun: 1000, Seed: 3})
	streams := j2.Streams()
	for j2.Superstep() < iters {
		for _, s := range streams {
			s.Next(0)
		}
	}
	for v := 0; v < g.N; v++ {
		if math.Abs(j2.Rank()[v]-ref[v]) > 1e-12*(1+math.Abs(ref[v]))+1e-15 {
			t.Fatalf("rank[%d] = %v, ref %v", v, j2.Rank()[v], ref[v])
		}
	}
	_ = j
}

func TestBSPSSSPMatchesReference(t *testing.T) {
	g := MustGenPowerLaw(500, 6, 0.5, 9)
	sweeps := 6
	j := MustNewJob(JobConfig{Graph: g, Kernel: KernelSSSP, Workers: 4,
		Source: 0, ItersPerRun: 1000, Seed: 5})
	streams := j.Streams()
	for j.Superstep() < sweeps {
		for _, s := range streams {
			s.Next(0)
		}
	}
	ref := SSSPRef(g, 0, sweeps)
	for v := 0; v < g.N; v++ {
		if j.Dist()[v] != ref[v] {
			t.Fatalf("dist[%d] = %d, ref %d", v, j.Dist()[v], ref[v])
		}
	}
}

func TestBSPRestartsRuns(t *testing.T) {
	g := MustGenPowerLaw(200, 4, 0.5, 11)
	j := MustNewJob(JobConfig{Graph: g, Kernel: KernelPageRank, Workers: 2,
		ItersPerRun: 2, Seed: 1})
	drive(t, j, 1_000_000)
	if j.Runs == 0 {
		t.Fatal("job never completed a run")
	}
}

func TestBSPRemoteStructure(t *testing.T) {
	g := MustGenPowerLaw(2000, 8, 0.5, 13)
	j := MustNewJob(JobConfig{Graph: g, Kernel: KernelPageRank, Workers: 8,
		ItersPerRun: 1000, Seed: 2})
	streams := j.Streams()
	instrs, remotes := 0, 0
	var stallNs float64
	for j.Superstep() < 3 {
		for _, s := range streams {
			in, _ := s.Next(0)
			instrs++
			if in.Op == isa.OpRemote {
				remotes++
				stallNs += in.RemoteNs
				if in.RemoteNs <= 0 {
					t.Fatal("remote without latency")
				}
			}
		}
	}
	if remotes == 0 {
		t.Fatal("no RDMA reads emitted")
	}
	if j.RemoteReads != uint64(remotes) {
		t.Fatalf("job counted %d remote reads, stream saw %d", j.RemoteReads, remotes)
	}
	// Paper profile: ~1µs stall per 1-2µs of compute per thread. At InO
	// thread IPC ~0.3 (3.25GHz), 1.5µs is ~1500 instructions. Accept a
	// generous band: one remote per 500-6000 instructions.
	gap := float64(instrs) / float64(remotes)
	if gap < 500 || gap > 6000 {
		t.Fatalf("remote every %v instrs, outside plausible filler profile", gap)
	}
	if mean := stallNs / float64(remotes); mean < 500 || mean > 2000 {
		t.Fatalf("mean RDMA latency %v ns, want ~1000", mean)
	}
}

func TestNewFillerSet(t *testing.T) {
	g := MustGenPowerLaw(1000, 6, 0.5, 17)
	streams, pr, ss, err := NewFillerSet(g, 32, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(streams) != 32 {
		t.Fatalf("got %d streams", len(streams))
	}
	if pr == nil || ss == nil {
		t.Fatal("missing jobs")
	}
	if _, _, _, err := NewFillerSet(g, 1, 3); err == nil {
		t.Fatal("single worker accepted")
	}
	// All streams produce instructions.
	for i, s := range streams {
		if _, ok := s.Next(0); !ok {
			t.Fatalf("stream %d idle", i)
		}
	}
}

func TestJobValidation(t *testing.T) {
	g := testGraph()
	if _, err := NewJob(JobConfig{Kernel: KernelPageRank, Workers: 2}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewJob(JobConfig{Graph: g, Workers: 0}); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewJob(JobConfig{Graph: g, Workers: 2, Source: -1}); err == nil {
		t.Fatal("bad source accepted")
	}
	if KernelPageRank.String() != "pagerank" || KernelSSSP.String() != "sssp" {
		t.Fatal("kernel names wrong")
	}
}

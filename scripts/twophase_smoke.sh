#!/usr/bin/env bash
# twophase_smoke.sh — end-to-end gate for the two-layer (micro-sim +
# queueing) campaign cache split, driven through duplexityd over a real
# socket:
#
#   1. boot duplexityd with a fresh cache dir, poll /v1/healthz
#   2. submit the tails campaign (the Figure 5(d) queueing stage as
#      content-addressed cells) cold over loads {0.3, 0.5} and assert
#      /v1/metricsz reports exactly one micro-sim simulated per
#      design × workload (35), not one per cell (70)
#   3. re-submit with only the load grid changed ({0.5, 0.7}) and
#      assert zero micro-sim re-simulations: the 35 overlapping cells
#      answer from the phase-2 (queueing) layer, the 35 new ones
#      re-derive from cached phase-1 results
#   4. run the overlapping load alone on a second daemon over a second
#      fresh cache dir and assert every cache entry it wrote — phase-1
#      micro-sims and phase-2 cells alike — exists in the first cache
#      under the same digest with an identical result payload
#
# Tunables: SMOKE_SCALE (default 0.02), SMOKE_SEED (default 1),
# SMOKE_TP_ADDR (default 127.0.0.1:8127).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SMOKE_SCALE:-0.02}"
SEED="${SMOKE_SEED:-1}"
ADDR="${SMOKE_TP_ADDR:-127.0.0.1:8127}"

tmp="$(mktemp -d)"
cleanup() {
    [[ -n "${daemon_pid:-}" ]] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/duplexityd" ./cmd/duplexityd

# boot <cachedir>: starts duplexityd and waits for /v1/healthz.
boot() {
    "$tmp/duplexityd" serve -addr "$ADDR" -scale "$SCALE" -seed "$SEED" \
        -cachedir "$1" 2>"$tmp/daemon.log" &
    daemon_pid=$!
    for i in $(seq 1 100); do
        if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then break; fi
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "FAIL: daemon died during boot"; cat "$tmp/daemon.log"; exit 1
        fi
        sleep 0.1
    done
    curl -fsS "http://$ADDR/v1/healthz" | grep -q '"ok"' \
        || { echo "FAIL: daemon never became healthy"; cat "$tmp/daemon.log"; exit 1; }
}

stop() {
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
}

# metric <name>: scrapes one counter value from /v1/metricsz.
metric() {
    curl -fsS "http://$ADDR/v1/metricsz" \
        | awk -v m="$1" '$1 == m { print $2; found = 1 } END { if (!found) print 0 }'
}

submit_tails() { # submit_tails <name> <loads>
    "$tmp/duplexityd" submit -addr "$ADDR" -campaign -kind tails \
        -loads "$2" >"$tmp/$1.ndjson"
    tail -1 "$tmp/$1.ndjson" | grep -q '"state":"done"' \
        || { echo "FAIL: $1 campaign never finished"; tail -3 "$tmp/$1.ndjson"; exit 1; }
}

echo "== boot (cache A) =="
boot "$tmp/cache-a"
echo "daemon healthy on $ADDR"

echo "== cold tails campaign, loads 0.3,0.5 =="
submit_tails cold "0.3,0.5"
micro1="$(metric duplexity_campaign_cells_microsim_misses)"
queue_miss1="$(metric duplexity_campaign_cells_queueing_misses)"
if [[ "$micro1" != "35" ]]; then
    echo "FAIL: cold campaign simulated $micro1 micro-sims, want 35 (one per design x workload)"
    exit 1
fi
if [[ "$queue_miss1" != "70" ]]; then
    echo "FAIL: cold campaign resolved $queue_miss1 queueing cells, want 70"
    exit 1
fi
echo "cold: 70 cells from 35 micro-sims"

echo "== load-grid change, loads 0.5,0.7 =="
queue_hit1="$(metric duplexity_campaign_cells_queueing_hits)"
submit_tails regrid "0.5,0.7"
micro2="$(metric duplexity_campaign_cells_microsim_misses)"
queue_hit2="$(metric duplexity_campaign_cells_queueing_hits)"
if [[ "$micro2" != "$micro1" ]]; then
    echo "FAIL: load-grid change re-simulated $((micro2 - micro1)) micro-sims, want 0"
    exit 1
fi
if [[ "$((queue_hit2 - queue_hit1))" != "35" ]]; then
    echo "FAIL: overlapping load answered $((queue_hit2 - queue_hit1)) cells from the queueing layer, want 35"
    exit 1
fi
echo "grid change: 0 micro-sims re-simulated, 35 overlapping cells served from the queueing layer"
stop

echo "== byte-identity of overlapping cells (fresh cache B) =="
boot "$tmp/cache-b"
submit_tails overlap "0.5"
stop

# Every entry the fresh run wrote — 35 phase-1 micro-sims plus 35
# phase-2 cells — must exist in cache A under the same content address
# with an identical result payload (wall time is the only legal
# difference between the two runs).
python3 - "$tmp/cache-b" "$tmp/cache-a" <<'PYEOF'
import json, os, sys
fresh, orig = sys.argv[1], sys.argv[2]
entries = [f for f in os.listdir(fresh) if f.endswith(".json") and len(f) == 69]
assert len(entries) == 70, f"fresh cache holds {len(entries)} entries, want 70 (35 micro + 35 cells)"
for name in entries:
    other = os.path.join(orig, name)
    assert os.path.exists(other), f"digest {name} missing from the original cache"
    a = json.load(open(os.path.join(fresh, name)))
    b = json.load(open(other))
    assert a["key"] == b["key"], f"{name}: keys diverge"
    assert a["result"] == b["result"], f"{name}: result payloads diverge"
print(f"byte-identity OK: {len(entries)} overlapping entries match across independent runs")
PYEOF

echo "twophase smoke passed"

#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke test of the distributed campaign
# tier: a duplexityd coordinator sharding cells across two local worker
# daemons, checked against a single-node reference run.
#
#   1. boot a single-node reference daemon, run a small campaign,
#      capture the NDJSON stream and its cache entries
#   2. boot two worker daemons and a coordinator over both, run the
#      same campaign through the fleet
#   3. assert the merged NDJSON result lines are byte-identical to the
#      single-node run, and the coordinator's cache entries match the
#      reference entries modulo wall_seconds (a measurement)
#   4. assert /v1/fleetz shows both workers completed cells and the
#      worker journals show no duplicated simulations for hedged cells
#   5. scrape the coordinator's /v1/fleet/metricsz and assert it merges
#      both workers' Prometheus samples under worker="..." labels
#   6. boot an aggressive-hedging coordinator (-hedge-after 1ms), run
#      fresh cells through it, and assert every stitched trace shows
#      exactly one winning remote leg and one adopted compute span
#   7. kill one worker, submit more cells, and assert the campaign
#      still completes against the surviving worker
#
# Tunables: FLEET_SCALE (default 0.02), FLEET_BASE_PORT (default 8131).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${FLEET_SCALE:-0.02}"
BASE_PORT="${FLEET_BASE_PORT:-8131}"
REF_ADDR="127.0.0.1:$BASE_PORT"
W1_ADDR="127.0.0.1:$((BASE_PORT + 1))"
W2_ADDR="127.0.0.1:$((BASE_PORT + 2))"
CO_ADDR="127.0.0.1:$((BASE_PORT + 3))"

tmp="$(mktemp -d)"
pids=()
cleanup() {
    for p in "${pids[@]:-}"; do kill "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT

wait_healthy() {
    local addr="$1" pid="$2" log="$3"
    for i in $(seq 1 100); do
        curl -fsS "http://$addr/v1/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$pid" 2>/dev/null \
            || { echo "FAIL: daemon on $addr died during boot"; cat "$log"; exit 1; }
        sleep 0.1
    done
    echo "FAIL: daemon on $addr never became healthy"; cat "$log"; exit 1
}

submit_campaign() {
    local addr="$1" out="$2"; shift 2
    "$tmp/duplexityd" submit -addr "$addr" -campaign -kind fig5 \
        -designs Baseline,Duplexity -workloads RSC "$@" >"$out"
    tail -1 "$out" | grep -q '"state":"done"' \
        || { echo "FAIL: campaign on $addr never finished"; cat "$out"; exit 1; }
}

echo "== build =="
go build -o "$tmp/duplexityd" ./cmd/duplexityd

echo "== single-node reference =="
"$tmp/duplexityd" serve -addr "$REF_ADDR" -scale "$SCALE" -seed 1 \
    -cachedir "$tmp/ref-cache" 2>"$tmp/ref.log" &
ref_pid=$!; pids+=("$ref_pid")
wait_healthy "$REF_ADDR" "$ref_pid" "$tmp/ref.log"
submit_campaign "$REF_ADDR" "$tmp/ref.ndjson" -loads 0.3,0.6

echo "== boot fleet: 2 workers + coordinator =="
"$tmp/duplexityd" serve -addr "$W1_ADDR" -scale "$SCALE" -seed 1 \
    -cachedir "$tmp/w1-cache" 2>"$tmp/w1.log" &
w1_pid=$!; pids+=("$w1_pid")
"$tmp/duplexityd" serve -addr "$W2_ADDR" -scale "$SCALE" -seed 1 \
    -cachedir "$tmp/w2-cache" 2>"$tmp/w2.log" &
w2_pid=$!; pids+=("$w2_pid")
wait_healthy "$W1_ADDR" "$w1_pid" "$tmp/w1.log"
wait_healthy "$W2_ADDR" "$w2_pid" "$tmp/w2.log"

# The coordinator adopts the workers' world (no -scale/-seed here:
# that path is part of what we are smoke-testing).
"$tmp/duplexityd" coordinate -addr "$CO_ADDR" -fleet "$W1_ADDR,$W2_ADDR" \
    -cachedir "$tmp/co-cache" 2>"$tmp/co.log" &
co_pid=$!; pids+=("$co_pid")
wait_healthy "$CO_ADDR" "$co_pid" "$tmp/co.log"
grep -q "fleet registered: 2 workers" "$tmp/co.log" \
    || { echo "FAIL: coordinator did not register both workers"; cat "$tmp/co.log"; exit 1; }

echo "== fleet campaign =="
submit_campaign "$CO_ADDR" "$tmp/fleet.ndjson" -loads 0.3,0.6

echo "== merged results byte-identical to single-node =="
# Every line but the last is a result row in submission order; the last
# is the job status line, which carries a per-run campaign id.
if ! diff <(sed '$d' "$tmp/ref.ndjson") <(sed '$d' "$tmp/fleet.ndjson"); then
    echo "FAIL: fleet results diverge from the single-node run"
    exit 1
fi
echo "result rows identical"

echo "== cache entries match modulo wall time =="
ref_digests="$(cd "$tmp/ref-cache" && ls ./*.json | grep -v checkpoint | sort)"
co_digests="$(cd "$tmp/co-cache" && ls ./*.json | grep -v checkpoint | sort)"
[[ "$ref_digests" == "$co_digests" ]] \
    || { echo "FAIL: cache digests differ"; diff <(echo "$ref_digests") <(echo "$co_digests"); exit 1; }
for f in $ref_digests; do
    if ! diff <(sed 's/"wall_seconds":[0-9.e+-]*/"wall_seconds":X/' "$tmp/ref-cache/$f") \
              <(sed 's/"wall_seconds":[0-9.e+-]*/"wall_seconds":X/' "$tmp/co-cache/$f"); then
        echo "FAIL: cache entry $f diverges beyond wall time"
        exit 1
    fi
done
echo "$(echo "$ref_digests" | wc -l) cache entries identical modulo wall_seconds"

echo "== fleet dispatch accounting =="
curl -fsS "http://$CO_ADDR/v1/fleetz" >"$tmp/fleetz.json"
cat "$tmp/fleetz.json"
grep -q '"down":true' "$tmp/fleetz.json" \
    && { echo "FAIL: a worker is down-marked after a clean campaign"; exit 1; }
# Each simulated cell ran exactly once across the fleet: the workers'
# journals together hold one cached:false line per reference cell, so
# hedged duplicates (if any fired) were cancelled, not re-simulated.
cells="$(sed '$d' "$tmp/ref.ndjson" | wc -l)"
w_sims="$(cat "$tmp/w1-cache/journal.jsonl" "$tmp/w2-cache/journal.jsonl" 2>/dev/null \
    | grep -c '"cached":false' || true)"
[[ "$w_sims" == "$cells" ]] \
    || { echo "FAIL: workers simulated $w_sims cells, want $cells (duplicate or lost work)"; exit 1; }
echo "workers simulated $w_sims cells for $cells results (no duplicated simulation)"

echo "== fleet metricsz aggregation =="
curl -fsS "http://$CO_ADDR/v1/fleet/metricsz" >"$tmp/fleet-metricsz.txt"
bad="$(grep -v '^#' "$tmp/fleet-metricsz.txt" | grep -vE '^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*(\\")?[^}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$' || true)"
[[ -z "$bad" ]] \
    || { echo "FAIL: unparseable fleet metricsz lines:"; echo "$bad"; exit 1; }
for w in "$W1_ADDR" "$W2_ADDR"; do
    grep -q "^duplexity_fleet_worker_completed{worker=\"http://$w\"}" "$tmp/fleet-metricsz.txt" \
        || { echo "FAIL: no coordinator-side counters for $w"; cat "$tmp/fleet-metricsz.txt"; exit 1; }
    grep -q "duplexity_serve_admitted{worker=\"http://$w\"}" "$tmp/fleet-metricsz.txt" \
        || { echo "FAIL: $w's scraped serve metrics missing"; cat "$tmp/fleet-metricsz.txt"; exit 1; }
done
echo "fleet metricsz merges both workers: $(grep -cv '^#' "$tmp/fleet-metricsz.txt") samples"

echo "== hedged traces: exactly one winning leg per cell =="
CO2_ADDR="127.0.0.1:$((BASE_PORT + 4))"
"$tmp/duplexityd" coordinate -addr "$CO2_ADDR" -fleet "$W1_ADDR,$W2_ADDR" \
    -cachedir "$tmp/co2-cache" -hedge-after 1ms 2>"$tmp/co2.log" &
co2_pid=$!; pids+=("$co2_pid")
wait_healthy "$CO2_ADDR" "$co2_pid" "$tmp/co2.log"
# Fresh load points: nothing cached anywhere upstream of the workers'
# own caches, so every cell crosses the fleet and outlives the 1ms
# hedge threshold.
submit_campaign "$CO2_ADDR" "$tmp/hedged.ndjson" -loads 0.35,0.65
curl -fsS "http://$CO2_ADDR/v1/fleetz" >"$tmp/fleetz2.json"
curl -fsS "http://$CO2_ADDR/v1/tracez" >"$tmp/tracez2.json"
python3 - "$tmp/tracez2.json" "$tmp/fleetz2.json" <<'PYEOF'
import json, sys
tz = json.load(open(sys.argv[1]))
fz = json.load(open(sys.argv[2]))
assert fz["hedges"] >= 1, f"hedge-after=1ms fired no hedges: {fz}"
traces = tz.get("traces") or []
assert traces, "coordinator recorded no traces"
hedged_traces = 0
for tr in traces:
    spans = tr.get("spans") or []
    remotes = [s for s in spans if s["stage"] == "remote" and not s.get("child")]
    if not remotes:
        continue  # answered from a cache tier, no dispatch
    winners = [s for s in remotes if s.get("winner")]
    assert len(winners) == 1, \
        f"trace {tr['trace_id']}: {len(winners)} winning remote legs in {remotes}"
    computes = [s for s in spans if s["stage"] == "compute" and s.get("child")]
    assert len(computes) == 1, \
        f"trace {tr['trace_id']}: {len(computes)} adopted compute spans, want exactly 1"
    if any(s.get("hedged") for s in remotes):
        hedged_traces += 1
print(f"hedged traces OK: {len(traces)} traces, {hedged_traces} with a hedged winner, "
      f"{fz['hedges']} hedges / {fz['hedge_wins']} wins fleet-wide")
PYEOF
kill -TERM "$co2_pid" && wait "$co2_pid" || true

echo "== kill one worker mid-run; campaign must still complete =="
submit_campaign "$CO_ADDR" "$tmp/resilience.ndjson" -loads 0.45 &
submit_pid=$!
sleep 0.3
kill -KILL "$w2_pid" 2>/dev/null || true
wait "$submit_pid" || { echo "FAIL: campaign failed after losing a worker"; exit 1; }
lines="$(sed '$d' "$tmp/resilience.ndjson" | wc -l)"
[[ "$lines" == "2" ]] \
    || { echo "FAIL: resilience campaign returned $lines rows, want 2"; cat "$tmp/resilience.ndjson"; exit 1; }
grep -q '"error"' <(sed '$d' "$tmp/resilience.ndjson") \
    && { echo "FAIL: resilience campaign rows carry errors"; cat "$tmp/resilience.ndjson"; exit 1; }
echo "campaign completed on the surviving worker"

echo "== coordinator drains cleanly =="
kill -TERM "$co_pid"
wait "$co_pid" || { echo "FAIL: coordinator exited nonzero on SIGTERM"; cat "$tmp/co.log"; exit 1; }
grep -q "drained; checkpoint flushed" "$tmp/co.log" \
    || { echo "FAIL: coordinator log does not confirm the drain"; cat "$tmp/co.log"; exit 1; }

echo "fleet smoke OK: byte-identical merge, hot caches, worker-loss resilience, clean drain"

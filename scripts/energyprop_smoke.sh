#!/usr/bin/env bash
# energyprop_smoke.sh — end-to-end gate for the energy-proportionality
# subsystem (internal/idle + the energyprop experiment family):
#
#   1. runs `duplexity energyprop` sequentially (-workers 1, cold cache)
#   2. runs it again at -workers 4 against a second cold cache and
#      asserts the tables are byte-identical (governor-aware cells must
#      be as deterministic as every other campaign cell)
#   3. replays the -workers 4 run warm and asserts zero cells were
#      re-simulated (the governor participates in the cache key)
#   4. parses the RSC mid-load rows and asserts the paper's qualitative
#      claim: the deep C-state draws less idle power than Duplexity-fill
#      but pays a fatter p99 tail
#
# Tunables: SMOKE_SCALE (default 0.02), SMOKE_SEED (default 1).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SMOKE_SCALE:-0.02}"
SEED="${SMOKE_SEED:-1}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== build =="
go build -o "$tmp/duplexity" ./cmd/duplexity

run() { # run <name> <workers> <cachedir>
    local name="$1" workers="$2" cdir="$3"
    echo "== $name: -workers $workers =="
    "$tmp/duplexity" -scale "$SCALE" -seed "$SEED" -workers "$workers" \
        -cachedir "$cdir" energyprop >"$tmp/$name.out" 2>"$tmp/$name.err"
    grep '^campaign:' "$tmp/$name.err" | tail -1
    grep -v " took " "$tmp/$name.out" >"$tmp/$name.tables"
}

run sequential 1 "$tmp/cache-seq"
run parallel   4 "$tmp/cache-par"
run warm       4 "$tmp/cache-par"

echo "== determinism =="
cmp "$tmp/sequential.tables" "$tmp/parallel.tables" \
    || { echo "FAIL: -workers 4 energyprop table differs from -workers 1"; exit 1; }
cmp "$tmp/sequential.tables" "$tmp/warm.tables" \
    || { echo "FAIL: warm-cache energyprop table differs"; exit 1; }
warm_misses="$(grep '^campaign:' "$tmp/warm.err" | tail -1 | sed 's/.*misses=\([0-9]*\).*/\1/')"
if [[ "$warm_misses" != "0" ]]; then
    echo "FAIL: warm replay re-simulated $warm_misses cells"
    exit 1
fi
echo "tables byte-identical across sequential/parallel/warm; warm replay simulated 0 cells"

echo "== qualitative claim (RSC @ 0.50) =="
# Columns: workload load design/governor util idle_frac avg_W idle_W
# uJ/req batch_GIPS p99_us.
awk '
$1 == "RSC" && $2 == "0.50" && $3 == "Baseline/deep"   { dIdleW = $7; dP99 = $10 }
$1 == "RSC" && $2 == "0.50" && $3 == "Duplexity/fill"  { fIdleW = $7; fP99 = $10 }
END {
    if (dIdleW == "" || fIdleW == "") { print "FAIL: RSC@0.50 rows missing"; exit 1 }
    printf "deep: idle %.2f W, p99 %.1f µs; fill: idle %.2f W, p99 %.1f µs\n", dIdleW, dP99, fIdleW, fP99
    if (dIdleW + 0 >= fIdleW + 0) { print "FAIL: deep idle power not below fill"; exit 1 }
    if (dP99 + 0 <= fP99 + 0)     { print "FAIL: deep p99 not above fill (core parking should fatten the tail)"; exit 1 }
    print "OK: deep C-state saves idle power but fattens the tail vs Duplexity-fill"
}' "$tmp/sequential.tables"

echo "energyprop smoke passed"

package core

import (
	"testing"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
	"duplexity/internal/workload"
)

// remoteStorm is a pathological master workload: nearly every instruction
// is a µs-scale remote op, including zero- and near-zero-latency draws.
// The morph state machine must keep making progress (no deadlock between
// drain, filler, and resume).
func TestDuplexityRemoteStormProgress(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	gen := isa.MustSynthStream(isa.SynthConfig{
		Seed: 3, CodeBytes: 4096, DataBytes: 4096, DepP: 0,
		RemoteEvery:      3,
		RemoteLat:        stats.Uniform{Lo: 0, Hi: 2000},
		InstrsPerRequest: stats.Deterministic{Value: 40},
	})
	master, err := workload.NewRequestStream(gen, 200_000, 3.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	d := MustNewDyad(Config{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: batchStreams(32, 50),
	})
	d.Run(2_000_000)
	if d.MasterThreadRetired() == 0 {
		t.Fatal("no master progress under remote storm")
	}
	if d.MasterOoO.ThreadStats(0).RequestsCompleted == 0 {
		t.Fatal("no requests completed under remote storm")
	}
	if d.Master.Stats.Morphs == 0 {
		t.Fatal("remote storm triggered no morphs")
	}
}

// Zero-latency remotes must resolve during the drain and resume without
// entering filler mode at all.
func TestZeroLatencyRemoteResumesDirectly(t *testing.T) {
	gen := isa.MustSynthStream(isa.SynthConfig{
		Seed: 4, CodeBytes: 4096, DataBytes: 4096, DepP: 0,
		RemoteEvery:      100,
		RemoteLat:        stats.Deterministic{Value: 1}, // ~4 cycles
		InstrsPerRequest: stats.Deterministic{Value: 1000},
	})
	master := workload.NewClosedStream(gen)
	d := MustNewDyad(Config{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: batchStreams(32, 60),
	})
	d.Run(500_000)
	if d.MasterThreadRetired() == 0 {
		t.Fatal("no progress with near-zero remotes")
	}
	ms := d.Master.Stats
	// Nearly every stall resolves mid-drain: filler cycles must be rare
	// relative to master cycles.
	if ms.FillerCycles > ms.MasterCycles/4 {
		t.Fatalf("short stalls spent %d cycles in filler mode (master %d)",
			ms.FillerCycles, ms.MasterCycles)
	}
}

// A master stream that never produces work must leave the dyad parked in
// filler mode with fillers productive.
func TestAlwaysIdleMasterFills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	gen := isa.MustSynthStream(isa.SynthConfig{
		Seed: 5, CodeBytes: 4096, DataBytes: 4096,
		InstrsPerRequest: stats.Deterministic{Value: 100},
	})
	// 1 QPS: effectively no arrivals within the simulated window.
	master, err := workload.NewRequestStream(gen, 1, 3.25, 6)
	if err != nil {
		t.Fatal(err)
	}
	d := MustNewDyad(Config{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: batchStreams(32, 70),
	})
	d.Run(1_000_000)
	if d.Master.Mode() != ModeFiller {
		t.Fatalf("idle master in mode %v, want filler", d.Master.Mode())
	}
	if d.Master.FillerCore().Stats.TotalRetired == 0 {
		t.Fatal("fillers idle on an idle master-core")
	}
	if got := d.MasterUtilization(); got < 0.2 {
		t.Fatalf("idle-master utilization %v; fillers should dominate", got)
	}
}

// SetRestartLat must change resume cost visibly.
func TestSetRestartLat(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	run := func(restart uint64) uint64 {
		gen := masterGen(9, true)
		master := workload.NewClosedStream(gen)
		d := MustNewDyad(Config{
			Design:       DesignDuplexity,
			MasterStream: master,
			BatchStreams: batchStreams(32, 80),
		})
		d.Master.SetRestartLat(restart)
		d.RunUntilRequests(60, 6_000_000)
		return d.Now()
	}
	fast := run(0)
	slow := run(20_000)
	if slow <= fast {
		t.Fatalf("20k-cycle restart (%d cycles total) not slower than free restart (%d)", slow, fast)
	}
}

// NoL0 must remove the filter caches from the filler path.
func TestNoL0Ablation(t *testing.T) {
	gen := masterGen(10, true)
	master := workload.NewClosedStream(gen)
	d := MustNewDyad(Config{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: batchStreams(32, 90),
		NoL0:         true,
	})
	d.Run(300_000)
	if d.MasterThreadRetired() == 0 {
		t.Fatal("NoL0 dyad made no progress")
	}
}

// MorphCore's fixed fillers must survive repeated evict/rebind cycles
// without losing instructions (the pending-buffer plumbing).
func TestMorphCoreEvictRebindChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	d := makeDyad(t, DesignMorphCore, 200_000) // high arrival rate: frequent churn
	d.Run(2_000_000)
	ms := d.Master.Stats
	if ms.Morphs+ms.IdleMorphs < 10 {
		t.Fatalf("only %d morphs; churn test needs more", ms.Morphs+ms.IdleMorphs)
	}
	if d.Master.FillerCore().Stats.TotalRetired == 0 {
		t.Fatal("fixed fillers retired nothing")
	}
}

package jobstore

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"duplexity/internal/expt"
)

// fakeExec simulates cells: deterministic result bytes per cell, an
// optional per-cell error, and a shared "cache" that backs Lookup so
// resume tests behave like the real engine.
type fakeExec struct {
	mu    sync.Mutex
	cache map[string]json.RawMessage
	runs  map[string]int
	fail  map[string]error
	// With block non-nil, each exec consumes one token from it — or
	// aborts with a MarkCancelled error when drainCh closes, mimicking
	// the serve layer's drain behavior.
	block   chan struct{}
	drainCh chan struct{}
}

func newFakeExec() *fakeExec {
	return &fakeExec{
		cache: make(map[string]json.RawMessage),
		runs:  make(map[string]int),
		fail:  make(map[string]error),
	}
}

func (f *fakeExec) gate() {
	f.block = make(chan struct{})
	f.drainCh = make(chan struct{})
}

func cellKey(cs expt.CellSpec) string {
	return fmt.Sprintf("%s/%s/%s/%g", cs.Kind, cs.Design, cs.Workload, cs.Load)
}

func (f *fakeExec) exec(d Dispatched) (expt.ServedResult, error) {
	if f.block != nil {
		select {
		case <-f.block:
		case <-f.drainCh:
			return expt.ServedResult{}, MarkCancelled(errors.New("draining"))
		}
	}
	k := cellKey(d.Cell)
	f.mu.Lock()
	defer f.mu.Unlock()
	f.runs[k]++
	if err := f.fail[k]; err != nil {
		return expt.ServedResult{}, err
	}
	raw := json.RawMessage(fmt.Sprintf(`{"cell":%q,"v":42}`, k))
	f.cache[k] = raw
	return expt.ServedResult{
		Digest: k,
		Raw:    &expt.RawCellResult{Digest: k, Result: raw},
	}, nil
}

func (f *fakeExec) lookup(cs expt.CellSpec) (json.RawMessage, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	raw, ok := f.cache[cellKey(cs)]
	return raw, ok
}

func (f *fakeExec) runCount(cs expt.CellSpec) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs[cellKey(cs)]
}

func newTestManager(t *testing.T, dir string, fe *fakeExec) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		Dir:         dir,
		Defaults:    Quota{Weight: 1, MaxInflight: 8, MaxQueuedJobs: 8},
		MaxInflight: 16,
		Exec:        fe.exec,
		Lookup:      fe.lookup,
		GCInterval:  time.Hour, // tests drive gcOnce directly
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func waitDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	deadline := time.After(10 * time.Second)
	for {
		st := j.Status()
		if st.Done {
			return st
		}
		_, _, wait := j.Next(0)
		select {
		case <-wait:
		case <-deadline:
			t.Fatalf("job %s never finished: %+v", j.ID(), st)
		}
	}
}

func streamOf(t *testing.T, j *Job) []byte {
	t.Helper()
	var buf bytes.Buffer
	sent := 0
	for {
		lines, done, wait := j.Next(sent)
		for _, l := range lines {
			buf.Write(l)
			buf.WriteByte('\n')
		}
		sent += len(lines)
		if done && len(lines) == 0 {
			return buf.Bytes()
		}
		if len(lines) == 0 {
			select {
			case <-wait:
			case <-time.After(10 * time.Second):
				t.Fatal("stream stalled")
			}
		}
	}
}

func TestManagerRunsDurableJob(t *testing.T) {
	fe := newFakeExec()
	m := newTestManager(t, t.TempDir(), fe)
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())

	j, err := m.Submit(JobSpec{Tenant: "acme", Kind: "fig5", Cells: testCells(3), Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateDone || st.Completed != 3 || st.Failed != 0 {
		t.Fatalf("status = %+v", st)
	}
	// Stream lines are RawLines in index order with raw result bytes.
	var lines []RawLine
	for _, raw := range bytes.Split(bytes.TrimSpace(streamOf(t, j)), []byte("\n")) {
		var l RawLine
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatalf("bad stream line %s: %v", raw, err)
		}
		lines = append(lines, l)
	}
	if len(lines) != 3 {
		t.Fatalf("stream has %d lines, want 3", len(lines))
	}
	for i, l := range lines {
		if l.Index != i || l.Error != "" || len(l.Result) == 0 {
			t.Fatalf("line %d malformed: %+v", i, l)
		}
	}
}

func TestManagerFailedCellFailsJob(t *testing.T) {
	fe := newFakeExec()
	cells := testCells(3)
	fe.fail[cellKey(cells[1])] = errors.New("sim blew up")
	m := newTestManager(t, t.TempDir(), fe)
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())

	j, err := m.Submit(JobSpec{Cells: cells, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != StateFailed || st.Completed != 2 || st.Failed != 1 {
		t.Fatalf("status = %+v", st)
	}
	if m.Stats().Failed != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

func TestManagerResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	fe := newFakeExec()

	// Run 1: cells block; complete exactly one, then "crash" (drain
	// aborts the rest uncursored — durable cells stay unresolved on
	// disk, exactly like a kill mid-flight).
	fe.gate()
	m1 := newTestManager(t, dir, fe)
	if _, err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	cells := testCells(4)
	j1, err := m1.Submit(JobSpec{Tenant: "acme", Kind: "fig5", Cells: cells, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	fe.block <- struct{}{} // let exactly one cell through
	for i := 0; j1.Status().Completed == 0; i++ {
		if i > 1000 {
			t.Fatal("first cell never completed")
		}
		time.Sleep(time.Millisecond)
	}
	id := j1.ID()
	close(fe.drainCh) // remaining cells abort as drain-cancelled
	if err := m1.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	fe.block, fe.drainCh = nil, nil

	runsAfterCrash := map[string]int{}
	for _, c := range cells {
		runsAfterCrash[cellKey(c)] = fe.runCount(c)
	}

	// Run 2: a fresh manager over the same dir resumes the job.
	m2 := newTestManager(t, dir, fe)
	resumed, err := m2.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Stop(context.Background())
	if resumed != 1 {
		t.Fatalf("resumed %d jobs, want 1", resumed)
	}
	j2 := m2.Get(id)
	if j2 == nil {
		t.Fatalf("job %s not found after restart", id)
	}
	st := waitDone(t, j2)
	if st.State != StateDone || st.Completed != 4 || !st.Resumed {
		t.Fatalf("resumed status = %+v", st)
	}
	resumedStream := streamOf(t, j2)

	// Cells whose results were already cached must not have re-run.
	for _, c := range cells {
		if prior := runsAfterCrash[cellKey(c)]; prior > 0 && fe.runCount(c) != prior {
			t.Fatalf("cell %s re-simulated after restart (%d -> %d runs)",
				cellKey(c), prior, fe.runCount(c))
		}
	}

	// Reference: the same job uninterrupted on a fresh store must
	// stream byte-identical rows (IDs restart at j0001 in a fresh dir).
	fe2 := newFakeExec()
	m3 := newTestManager(t, t.TempDir(), fe2)
	if _, err := m3.Start(); err != nil {
		t.Fatal(err)
	}
	defer m3.Stop(context.Background())
	j3, err := m3.Submit(JobSpec{Tenant: "acme", Kind: "fig5", Cells: cells, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j3)
	refStream := streamOf(t, j3)
	if !bytes.Equal(resumedStream, refStream) {
		t.Fatalf("resumed stream diverges from uninterrupted run:\nresumed: %s\nref:     %s",
			resumedStream, refStream)
	}
}

func TestManagerEphemeralCancelledOnStop(t *testing.T) {
	fe := newFakeExec()
	fe.gate()
	m := newTestManager(t, "", fe)
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	j, err := m.Submit(JobSpec{Cells: testCells(3)})
	if err != nil {
		t.Fatal(err)
	}
	fe.block <- struct{}{} // one cell completes for real
	close(fe.drainCh)      // the rest abort as drain-cancelled
	if err := m.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if !st.Done || st.Completed != 1 || st.Cancelled != 2 {
		t.Fatalf("ephemeral job after stop: %+v", st)
	}
}

func TestManagerQuotaShedsSubmission(t *testing.T) {
	fe := newFakeExec()
	fe.gate() // nothing completes: jobs stay unfinished
	m, err := NewManager(Config{
		Defaults: Quota{Weight: 1, MaxInflight: 2, MaxQueuedJobs: 2},
		Exec:     fe.exec, Lookup: fe.lookup, GCInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(JobSpec{Tenant: "t", Cells: testCells(1), Durable: false}); err != nil {
			t.Fatal(err)
		}
	}
	_, err = m.Submit(JobSpec{Tenant: "t", Cells: testCells(1)})
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("third submission error = %v, want QuotaError", err)
	}
	close(fe.drainCh)
	if err := m.Stop(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestManagerGCExpiresAndReaps(t *testing.T) {
	fe := newFakeExec()
	dir := t.TempDir()
	m := newTestManager(t, dir, fe)
	if _, err := m.Start(); err != nil {
		t.Fatal(err)
	}
	defer m.Stop(context.Background())

	done, err := m.Submit(JobSpec{Cells: testCells(1), Durable: true, TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, done)

	// Expiry: a job whose TTL elapsed before finishing. Use a blocked
	// manager? Simpler: submit to a quota so small it never dispatches.
	m2, err := NewManager(Config{
		Dir:      dir,
		Defaults: Quota{Weight: 1, MaxInflight: 1, MaxQueuedJobs: 8},
		Exec: func(d Dispatched) (expt.ServedResult, error) {
			select {} // never completes; its job can only expire
		},
		Lookup: fe.lookup, GCInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No Start: nothing dispatches, the job just sits queued.
	stuck, err := m2.Submit(JobSpec{Cells: testCells(2), TTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}

	future := time.Now().Add(2 * time.Minute)
	m2.gcOnce(future)
	st := stuck.Status()
	if st.State != StateExpired || !st.Done {
		t.Fatalf("stuck job after GC = %+v", st)
	}
	if m2.Stats().Expired != 1 {
		t.Fatalf("stats = %+v", m2.Stats())
	}

	// Reap: the finished durable job disappears (memory and disk) once
	// its TTL passes.
	m.gcOnce(time.Now().Add(2 * time.Minute))
	if m.Get(done.ID()) != nil {
		t.Fatalf("finished job %s not reaped", done.ID())
	}
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	for _, sj := range jobs {
		if sj.Record.ID == done.ID() {
			t.Fatalf("reaped job %s still on disk", done.ID())
		}
	}
	if m.Stats().Reaped != 1 {
		t.Fatalf("stats = %+v", m.Stats())
	}
}

package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"
)

// Key is the full input of one campaign cell. Two cells with equal keys
// must compute identical results; any input that can change a result
// (including the simulator implementation itself, via Model) belongs in
// the key, because the digest of the key is the cell's cache address.
type Key struct {
	// Kind names the cell family ("matrix", "slowdown", ...), so
	// different computations over the same point never collide.
	Kind string `json:"kind"`
	// Model is the simulator model-version string; bumping it
	// invalidates every cached cell (see core.ModelVersion).
	Model string `json:"model"`
	// Design is the simulated design point.
	Design string `json:"design"`
	// Workload names the workload; Spec fingerprints its full
	// definition (instruction texture, phases, distributions), so
	// editing a workload invalidates its cells even under the same name.
	Workload string `json:"workload"`
	Spec     string `json:"spec"`
	// Governor names the idle governor for energy-proportionality
	// cells; empty for cell kinds that predate the idle model. Empty is
	// omitted from the digest so every legacy cache address is
	// byte-identical to before the field existed.
	Governor string `json:"governor,omitempty"`
	// Lambda is an explicit arrival rate (QPS) for queueing-stage cells
	// whose rate is not a pure function of Load (Figure 5(e) scales it
	// per design by measured performance density). Zero for every other
	// cell kind, and — like Governor — omitted from the digest when
	// zero, so legacy cache addresses are untouched by the field.
	Lambda float64 `json:"lambda,omitempty"`
	// Load is the offered load (0 for closed-loop cells).
	Load float64 `json:"load"`
	// Scale is the fidelity multiplier (it scales cycle budgets).
	Scale float64 `json:"scale"`
	// Seed is the campaign seed the cell's own seeds derive from.
	Seed uint64 `json:"seed"`
}

// Digest returns the cell's content address: the SHA-256 hex digest of
// a versioned canonical encoding of the key. Floats are encoded with
// strconv 'g'/-1, the shortest representation that round-trips, so the
// encoding is exact and platform-independent.
func (k Key) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "campaign-key-v1\n")
	fmt.Fprintf(h, "kind=%s\nmodel=%s\ndesign=%s\nworkload=%s\nspec=%s\n",
		k.Kind, k.Model, k.Design, k.Workload, k.Spec)
	if k.Governor != "" {
		fmt.Fprintf(h, "governor=%s\n", k.Governor)
	}
	if k.Lambda != 0 {
		fmt.Fprintf(h, "lambda=%s\n", strconv.FormatFloat(k.Lambda, 'g', -1, 64))
	}
	fmt.Fprintf(h, "load=%s\nscale=%s\nseed=%d\n",
		strconv.FormatFloat(k.Load, 'g', -1, 64),
		strconv.FormatFloat(k.Scale, 'g', -1, 64),
		k.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// DigestOf fingerprints an arbitrary configuration value for use as
// Key.Spec: the first 16 hex characters of the SHA-256 of the value's
// %#v rendering. %#v includes concrete type names, so two
// distributions with identical fields but different types fingerprint
// differently. Pass values (not pointers) so the rendering is stable
// across runs.
func DigestOf(v any) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%#v", v)))
	return hex.EncodeToString(sum[:])[:16]
}

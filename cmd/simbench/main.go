// Command simbench measures the cycle-level simulator's own speed: for
// each requested design it builds the same dyad three times — stepped
// cycle by cycle, with the legacy whole-dyad fast-forward, and on the
// discrete-event engine — runs all three for the same simulated-cycle
// budget, and prints a JSON report with simulated cycles per wall
// second, the per-mode speedup over stepping, and the skip ratio
// (fraction of simulated cycles advanced by jumps rather than steps).
//
// Usage:
//
//	simbench [-cycles n] [-seed n] [-load f] [-workload name]
//	         [-designs a,b] [-batch n] [-floor x]
//
// -batch sets the dyad's batch-thread population; -batch 0 empties the
// lender side so the dyad idles between requests and stalls — the
// stall-heavy configuration where the event engine must shine.
//
// The runs double as a live equivalence check: simbench exits non-zero
// if any mode disagrees with stepping on retired instructions, completed
// requests, master-core stats, or elapsed cycles. -floor makes the
// measurement itself a gate: if the event engine's speedup over stepping
// falls below the floor on any design, simbench exits non-zero, so CI
// can pin the discrete-event win and fail when it rots.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duplexity"
)

type row struct {
	design                duplexity.Design
	cycles                uint64
	stepSec, ffSec, evSec float64
	ffSkipped, evSkipped  uint64
	retired, requests     uint64
}

func main() {
	cycles := flag.Uint64("cycles", 3_000_000, "simulated cycles per run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	load := flag.Float64("load", 0.5, "offered load in (0,1)")
	wlName := flag.String("workload", "mcrouter", "flann-ha|flann-ll|rsc|mcrouter|wordstem")
	designs := flag.String("designs", "baseline,duplexity", "comma-separated design list")
	batch := flag.Int("batch", 32, "batch threads per dyad (0 = stall-heavy: no lender work)")
	floor := flag.Float64("floor", 0, "exit non-zero if event speedup over stepping falls below this (0 = off)")
	flag.Parse()

	spec, err := findWorkload(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}

	var rows []row
	for _, name := range strings.Split(*designs, ",") {
		design, err := findDesign(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(2)
		}
		r, err := measure(design, spec, *load, *seed, *cycles, *batch)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		rows = append(rows, r)
	}

	fmt.Println("{")
	fmt.Printf("  %q: %q,\n", "bench", "simcore")
	fmt.Printf("  %q: %q,\n", "workload", spec.Name)
	fmt.Printf("  %q: %g,\n", "load", *load)
	fmt.Printf("  %q: %d,\n", "batch", *batch)
	fmt.Printf("  %q: %d,\n", "cycles", *cycles)
	fmt.Printf("  %q: [\n", "designs")
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Printf("    {\"design\": %q, \"step_cycles_per_sec\": %.0f, \"ff_cycles_per_sec\": %.0f, "+
			"\"event_cycles_per_sec\": %.0f, \"ff_speedup\": %.2f, \"event_speedup\": %.2f, "+
			"\"ff_skip_ratio\": %.4f, \"event_skip_ratio\": %.4f, \"retired\": %d, \"requests\": %d}%s\n",
			r.design.String(), float64(r.cycles)/r.stepSec, float64(r.cycles)/r.ffSec,
			float64(r.cycles)/r.evSec, r.stepSec/r.ffSec, r.stepSec/r.evSec,
			float64(r.ffSkipped)/float64(r.cycles), float64(r.evSkipped)/float64(r.cycles),
			r.retired, r.requests, comma)
	}
	fmt.Println("  ]")
	fmt.Println("}")

	if *floor > 0 {
		ok := true
		for _, r := range rows {
			if sp := r.stepSec / r.evSec; sp < *floor {
				fmt.Fprintf(os.Stderr, "simbench: %v event speedup %.2fx below floor %.2fx\n",
					r.design, sp, *floor)
				ok = false
			}
		}
		if !ok {
			os.Exit(1)
		}
	}
}

// build constructs one dyad for the measurement; all runs of a design
// call it with identical arguments so their streams are identical.
func build(design duplexity.Design, spec *duplexity.Workload, load float64, seed uint64, batch int, mode duplexity.ExecMode) (*duplexity.Dyad, error) {
	master, err := spec.NewMaster(load, design.FreqGHz(), seed)
	if err != nil {
		return nil, err
	}
	g, err := duplexity.NewGraph(4096, 12, 0.5, seed+3)
	if err != nil {
		return nil, err
	}
	fillers, _, _, err := duplexity.FillerSet(g, 32, seed+4)
	if err != nil {
		return nil, err
	}
	if batch < len(fillers) {
		fillers = fillers[:batch]
	}
	d, err := duplexity.NewDyad(duplexity.DyadConfig{
		Design:       design,
		MasterStream: master,
		BatchStreams: fillers,
	})
	if err != nil {
		return nil, err
	}
	d.Exec = mode
	return d, nil
}

func measure(design duplexity.Design, spec *duplexity.Workload, load float64, seed, cycles uint64, batch int) (row, error) {
	r := row{design: design, cycles: cycles}

	run := func(mode duplexity.ExecMode) (*duplexity.Dyad, float64, error) {
		d, err := build(design, spec, load, seed, batch, mode)
		if err != nil {
			return nil, 0, err
		}
		t0 := time.Now()
		d.Run(cycles)
		return d, time.Since(t0).Seconds(), nil
	}

	slow, stepSec, err := run(duplexity.ExecStepped)
	if err != nil {
		return r, err
	}
	r.stepSec = stepSec
	ff, ffSec, err := run(duplexity.ExecFastForward)
	if err != nil {
		return r, err
	}
	r.ffSec, r.ffSkipped = ffSec, ff.SkippedCycles
	ev, evSec, err := run(duplexity.ExecEvent)
	if err != nil {
		return r, err
	}
	r.evSec, r.evSkipped = evSec, ev.SkippedCycles
	r.retired = ev.MasterOoO.Stats.TotalRetired
	r.requests = ev.MasterOoO.ThreadStats(0).RequestsCompleted

	// Live equivalence check: every mode must agree with stepping on the
	// externally visible outcome.
	for _, d := range []*duplexity.Dyad{ff, ev} {
		if d.Now() != slow.Now() {
			return r, fmt.Errorf("%v/%v: clock diverged from stepping: %d vs %d",
				design, d.Exec, d.Now(), slow.Now())
		}
		if d.MasterOoO.Stats != slow.MasterOoO.Stats {
			return r, fmt.Errorf("%v/%v: master core stats diverged from stepping:\n%+v\nvs\n%+v",
				design, d.Exec, d.MasterOoO.Stats, slow.MasterOoO.Stats)
		}
		if a, b := d.MasterOoO.ThreadStats(0).RequestsCompleted,
			slow.MasterOoO.ThreadStats(0).RequestsCompleted; a != b {
			return r, fmt.Errorf("%v/%v: completed requests diverged from stepping: %d vs %d",
				design, d.Exec, a, b)
		}
	}
	return r, nil
}

func findDesign(s string) (duplexity.Design, error) {
	for _, d := range duplexity.AllDesigns {
		if strings.EqualFold(strings.ReplaceAll(d.String(), "+repl", "-repl"), s) ||
			strings.EqualFold(d.String(), s) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func findWorkload(s string) (*duplexity.Workload, error) {
	for _, w := range duplexity.Microservices() {
		if strings.EqualFold(w.Name, s) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", s)
}

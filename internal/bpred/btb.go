package bpred

import (
	"fmt"

	"duplexity/internal/isa"
)

// BTB is a direct-mapped branch target buffer with tags.
type BTB struct {
	tags    []uint64
	targets []uint64
	valid   []bool
	mask    uint64
}

// NewBTB builds a BTB with entries slots (power of two); Table I uses 2048.
func NewBTB(entries int) *BTB {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("bpred: BTB entries %d not a positive power of two", entries))
	}
	return &BTB{
		tags:    make([]uint64, entries),
		targets: make([]uint64, entries),
		valid:   make([]bool, entries),
		mask:    uint64(entries - 1),
	}
}

func (b *BTB) idx(pc uint64) uint64 { return (pc >> 2) & b.mask }

// Lookup returns the predicted target for pc, if present.
func (b *BTB) Lookup(pc uint64) (target uint64, hit bool) {
	i := b.idx(pc)
	if b.valid[i] && b.tags[i] == pc {
		return b.targets[i], true
	}
	return 0, false
}

// Update installs or refreshes the target for pc.
func (b *BTB) Update(pc, target uint64) {
	i := b.idx(pc)
	b.tags[i] = pc
	b.targets[i] = target
	b.valid[i] = true
}

// Reset invalidates all entries.
func (b *BTB) Reset() {
	for i := range b.valid {
		b.valid[i] = false
	}
}

// StorageBits returns BTB state size for the area model (tag ~ 48 bits,
// target ~ 48 bits, valid 1 bit per entry).
func (b *BTB) StorageBits() int { return len(b.tags) * (48 + 48 + 1) }

// RAS is a circular return-address stack.
type RAS struct {
	stack []uint64
	top   int
	depth int
}

// NewRAS builds a return-address stack; Table I uses 32 entries.
func NewRAS(entries int) *RAS {
	if entries <= 0 {
		panic("bpred: RAS needs at least one entry")
	}
	return &RAS{stack: make([]uint64, entries)}
}

// Push records a return address on a call.
func (r *RAS) Push(addr uint64) {
	r.top = (r.top + 1) % len(r.stack)
	r.stack[r.top] = addr
	if r.depth < len(r.stack) {
		r.depth++
	}
}

// Pop predicts the return target. ok=false if the stack is empty.
func (r *RAS) Pop() (addr uint64, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	addr = r.stack[r.top]
	r.top = (r.top - 1 + len(r.stack)) % len(r.stack)
	r.depth--
	return addr, true
}

// Reset empties the stack.
func (r *RAS) Reset() { r.top, r.depth = 0, 0 }

// StorageBits returns RAS state size for the area model.
func (r *RAS) StorageBits() int { return len(r.stack) * 48 }

// Stats counts front-end prediction events.
type Stats struct {
	Branches    uint64
	Mispredicts uint64
	BTBMisses   uint64
}

// MispredictRate returns mispredictions per branch (0 if no branches).
func (s Stats) MispredictRate() float64 {
	if s.Branches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.Branches)
}

// Unit bundles a direction predictor, BTB, and RAS into a front-end
// prediction unit and provides the check-against-actual-outcome protocol
// the pipeline uses.
type Unit struct {
	Dir   DirectionPredictor
	BTB   *BTB
	Ras   *RAS
	Stats Stats
}

// NewTableIUnit builds the Baseline/SMT/master-core front end from
// Table I: tournament 16K/16K/16K, 2K BTB, 32-entry RAS.
func NewTableIUnit() *Unit {
	return &Unit{Dir: NewTournament(16384, 16384, 16384), BTB: NewBTB(2048), Ras: NewRAS(32)}
}

// NewLenderUnit builds the lender-core / filler-mode front end from
// Table I: gshare 8K, 2K BTB, 32-entry RAS.
func NewLenderUnit() *Unit {
	return &Unit{Dir: NewGShare(8192), BTB: NewBTB(2048), Ras: NewRAS(32)}
}

// PredictAndTrain predicts the branch in, trains on the actual outcome,
// and reports whether the front end mispredicted (direction or target).
// Non-branch instructions return false without touching any state.
func (u *Unit) PredictAndTrain(in isa.Instr) bool {
	if in.Op != isa.OpBranch {
		return false
	}
	u.Stats.Branches++

	var predTaken bool
	var predTarget uint64
	var haveTarget bool

	switch {
	case in.IsReturn:
		predTaken = true
		predTarget, haveTarget = u.Ras.Pop()
	default:
		predTaken = u.Dir.Predict(in.PC)
		predTarget, haveTarget = u.BTB.Lookup(in.PC)
		if in.IsCall {
			predTaken = true
			u.Ras.Push(in.PC + 4)
		}
	}

	mispredict := predTaken != in.Taken
	if in.Taken && !mispredict {
		if !haveTarget {
			u.Stats.BTBMisses++
			mispredict = true
		} else if predTarget != in.Target {
			mispredict = true
		}
	}

	// Train direction and BTB with the actual outcome.
	if !in.IsReturn {
		u.Dir.Update(in.PC, in.Taken)
	}
	if in.Taken {
		u.BTB.Update(in.PC, in.Target)
	}
	if mispredict {
		u.Stats.Mispredicts++
	}
	return mispredict
}

// Reset clears all predictor state and statistics.
func (u *Unit) Reset() {
	u.Dir.Reset()
	u.BTB.Reset()
	u.Ras.Reset()
	u.Stats = Stats{}
}

// StorageBits totals the unit's state size for the area model.
func (u *Unit) StorageBits() int {
	return u.Dir.StorageBits() + u.BTB.StorageBits() + u.Ras.StorageBits()
}

// Chip-level study: place four Duplexity dyads on one shared LLC (the
// Figure 4(c) server-processor layout), provision their virtual-context
// pools with the Section IV policy, and report per-dyad and chip-level
// behaviour including inter-dyad LLC interference.
//
// Run with: go run ./examples/chip
package main

import (
	"fmt"
	"log"

	"duplexity"
)

func main() {
	const dyads = 4

	// Section IV provisioning: our batch threads stall ~40% of the time
	// and the master borrows, so ask the policy how many contexts to give
	// each dyad.
	contexts, err := duplexity.ProvisionContexts(duplexity.ProvisionDemand{
		BatchStallFrac: 0.4,
		MasterBorrows:  true,
		Target:         0.9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("provisioning policy: %d virtual contexts per dyad\n\n", contexts)

	spec := duplexity.McRouter()
	var masters []duplexity.Stream
	var batches [][]duplexity.Stream
	for i := 0; i < dyads; i++ {
		m, err := spec.NewMaster(0.5, duplexity.DesignDuplexity.FreqGHz(), uint64(10+i))
		if err != nil {
			log.Fatal(err)
		}
		masters = append(masters, m)
		g, err := duplexity.NewGraph(2048, 10, 0.5, uint64(30+i))
		if err != nil {
			log.Fatal(err)
		}
		fillers, _, _, err := duplexity.FillerSet(g, contexts, uint64(100+i*64))
		if err != nil {
			log.Fatal(err)
		}
		batches = append(batches, fillers)
	}
	chip, err := duplexity.NewChip(duplexity.ChipConfig{
		Design:  duplexity.DesignDuplexity,
		Masters: masters,
		Batches: batches,
	})
	if err != nil {
		log.Fatal(err)
	}
	chip.Run(2_000_000)

	fmt.Printf("chip: %d dyads, %d MB shared LLC, %.2f ms simulated\n\n",
		dyads, chip.Shared.LLC.Config().SizeBytes>>20, chip.Dyads[0].Seconds()*1e3)
	for i, d := range chip.Dyads {
		fmt.Printf("dyad %d: utilization %.2f  requests %4d  p99 %6.1f µs\n",
			i, d.MasterUtilization(),
			d.MasterOoO.ThreadStats(0).RequestsCompleted,
			d.CyclesToUs(d.Latencies.P99()))
	}
	lat := chip.Latencies()
	fmt.Printf("\nchip-wide: utilization %.2f  batch %.0f MIPS  NIC %.2f Mops/s  p99 %.1f µs\n",
		chip.MeanMasterUtilization(),
		float64(chip.BatchRetired())/chip.Dyads[0].Seconds()/1e6,
		chip.RemoteOpsPerSecond()/1e6,
		chip.Dyads[0].CyclesToUs(lat.P99()))
	fmt.Printf("shared-LLC evictions (inter-dyad contention): %d\n", chip.Shared.LLC.Stats.Evictions)
}

package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"duplexity/internal/expt"
	"duplexity/internal/telemetry"
)

// TestTracezRecordsStages drives one real cell through the daemon and
// checks the stitched trace: admission + cache(miss) + compute +
// serialize spans, stage sum bounded by observed wall time, and the
// campaign journal carrying the same breakdown.
func TestTracezRecordsStages(t *testing.T) {
	dir := t.TempDir()
	suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: dir})
	_, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 8}, nil)

	if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30)); status != http.StatusOK {
		t.Fatalf("cell = %d (%s)", status, body)
	}

	var tz Tracez
	getJSON(t, ts.URL+"/v1/tracez", &tz)
	if tz.Disabled || tz.Total != 1 || len(tz.Traces) != 1 {
		t.Fatalf("tracez = disabled=%v total=%d traces=%d, want 1 enabled trace", tz.Disabled, tz.Total, len(tz.Traces))
	}
	tr := tz.Traces[0]
	if tr.TraceID == "" || tr.Digest == "" || tr.Cached || tr.Error != "" {
		t.Fatalf("trace = %+v", tr)
	}
	stages := map[string]string{}
	for _, sp := range tr.Spans {
		if sp.Child {
			t.Errorf("single-node trace has a child span: %+v", sp)
		}
		stages[sp.Stage] = sp.Detail
	}
	for _, want := range []string{telemetry.StageAdmission, telemetry.StageCache, telemetry.StageCompute, telemetry.StageSerialize} {
		if _, ok := stages[want]; !ok {
			t.Errorf("trace missing %s span (got %v)", want, stages)
		}
	}
	if stages[telemetry.StageCache] != "miss" {
		t.Errorf("cache span detail = %q, want miss", stages[telemetry.StageCache])
	}
	if sum := tr.StageSumNs(); sum <= 0 || sum > tr.WallNs {
		t.Errorf("stage sum %dns exceeds wall %dns", sum, tr.WallNs)
	}

	// A warm repeat is a new trace answering from cache: no compute.
	if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30)); status != http.StatusOK {
		t.Fatalf("warm cell = %d (%s)", status, body)
	}
	getJSON(t, ts.URL+"/v1/tracez", &tz)
	if tz.Total != 2 {
		t.Fatalf("tracez total = %d, want 2", tz.Total)
	}
	warm := tz.Traces[len(tz.Traces)-1]
	if !warm.Cached {
		t.Error("warm trace not marked cached")
	}
	for _, sp := range warm.Spans {
		if sp.Stage == telemetry.StageCompute {
			t.Error("warm trace recorded a compute span")
		}
	}
}

// TestCoalescedFollowerTraceJoins gates the runner so two identical
// submissions are in flight together: the follower's trace must name
// the leader's trace, record a coalesce span, and adopt the leader's
// spans as children.
func TestCoalescedFollowerTraceJoins(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8}, nil)
	gate := make(chan struct{})
	started := make(chan struct{}, 4)
	s.run = func(cs expt.CellSpec, tr *telemetry.CellTrace, _ time.Time) (expt.ServedResult, error) {
		started <- struct{}{}
		<-gate
		return stubResult(cs), nil
	}

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.40)); status != http.StatusOK {
				t.Errorf("cell = %d (%s)", status, body)
			}
		}()
	}
	<-started // the leader is executing; any second arrival must coalesce
	// Wait until the follower has joined the flight before releasing.
	for {
		s.fmu.Lock()
		var waiters int
		for _, f := range s.flights {
			waiters = f.waiters
		}
		s.fmu.Unlock()
		if waiters >= 2 {
			break
		}
	}
	close(gate)
	wg.Wait()

	var tz Tracez
	getJSON(t, ts.URL+"/v1/tracez", &tz)
	if len(tz.Traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(tz.Traces))
	}
	var leader, follower *telemetry.CellTraceSnapshot
	for i := range tz.Traces {
		if tz.Traces[i].Joined != "" {
			follower = &tz.Traces[i]
		} else {
			leader = &tz.Traces[i]
		}
	}
	if leader == nil || follower == nil {
		t.Fatalf("no leader/follower split: %+v", tz.Traces)
	}
	if follower.Joined != leader.TraceID {
		t.Errorf("follower joined %q, leader trace is %q", follower.Joined, leader.TraceID)
	}
	var coalesced, children bool
	for _, sp := range follower.Spans {
		if sp.Stage == telemetry.StageCoalesce && !sp.Child {
			coalesced = true
		}
		if sp.Child {
			children = true
		}
	}
	if !coalesced {
		t.Error("follower trace has no coalesce span")
	}
	if !children {
		t.Error("follower did not adopt the leader's spans as children")
	}
	if sum := follower.StageSumNs(); sum > follower.WallNs {
		t.Errorf("follower stage sum %dns exceeds wall %dns", sum, follower.WallNs)
	}
}

// promLineRe matches one Prometheus text-format sample line.
var promLineRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9.eE+]+|\+Inf|NaN)$`)

// TestMetricszPrometheusFormat asserts /v1/metricsz emits parseable
// text exposition: typed serve counters, a latency histogram with
// cumulative le buckets ending at +Inf, and the campaign cache counters.
func TestMetricszPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8},
		func(cs expt.CellSpec) (expt.ServedResult, error) { return stubResult(cs), nil })
	if status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.30)); status != http.StatusOK {
		t.Fatalf("cell = %d (%s)", status, body)
	}

	resp, err := http.Get(ts.URL + "/v1/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.PrometheusContentType {
		t.Errorf("content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	samples := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLineRe.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no samples in exposition")
	}
	for _, want := range []string{
		"# TYPE duplexity_serve_admitted counter",
		"duplexity_serve_admitted 1",
		"# TYPE duplexity_serve_latency_us histogram",
		`duplexity_serve_latency_us_bucket{le="+Inf"} 1`,
		"duplexity_serve_latency_us_count 1",
		"# TYPE duplexity_campaign_cells counter",
		"duplexity_serve_traces_recorded 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTracingOffByteIdentical runs the same cell through a tracing and
// a non-tracing daemon: digests, result bytes, and cache entries must
// match exactly, and the non-tracing daemon reports tracez disabled.
func TestTracingOffByteIdentical(t *testing.T) {
	runOne := func(disable bool) (ServedResultJSON []byte, cacheEntry []byte, url string) {
		dir := t.TempDir()
		suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 7, Workers: 1, CacheDir: dir})
		_, ts := newTestServer(t, Config{Suite: suite, Workers: 1, QueueDepth: 8, DisableTracing: disable}, nil)
		status, _, body := postJSON(t, ts.URL+"/v1/cells", matrixCell(0.50))
		if status != http.StatusOK {
			t.Fatalf("cell = %d (%s)", status, body)
		}
		ents, err := filepath.Glob(filepath.Join(dir, "*.json"))
		if err != nil || len(ents) != 1 {
			t.Fatalf("cache entries = %v (%v)", ents, err)
		}
		raw, err := os.ReadFile(ents[0])
		if err != nil {
			t.Fatal(err)
		}
		return body, raw, ts.URL
	}

	tracedBody, tracedEntry, _ := runOne(false)
	plainBody, plainEntry, plainURL := runOne(true)

	// Wall times are measurements; mask them field-by-field.
	mask := func(b []byte) map[string]any {
		var m map[string]any
		if err := json.Unmarshal(b, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "wall_seconds")
		return m
	}
	a, _ := json.Marshal(mask(tracedEntry))
	b, _ := json.Marshal(mask(plainEntry))
	if !bytes.Equal(a, b) {
		t.Errorf("cache entries diverge with tracing on/off:\n%s\n%s", a, b)
	}
	if !bytes.Equal(tracedBody, plainBody) {
		// The client body has no wall field, so it must match byte-for-byte.
		t.Errorf("served bodies diverge with tracing on/off:\n%s\n%s", tracedBody, plainBody)
	}

	var tz Tracez
	getJSON(t, plainURL+"/v1/tracez", &tz)
	if !tz.Disabled {
		t.Error("non-tracing daemon did not report tracez disabled")
	}
}

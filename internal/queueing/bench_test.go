package queueing

import (
	"testing"

	"duplexity/internal/stats"
)

// BenchmarkQueueingConverge measures a simulation that runs past the
// MinRequests floor and through many convergence checks, the regime where
// the per-check quantile query dominates. Before the LatencyRecorder kept
// an incrementally sorted prefix, every check re-sorted the entire
// growing sample array; this benchmark pins the amortized behavior.
func BenchmarkQueueingConverge(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Simulate(Config{
			ArrivalQPS: 80_000,
			ServiceUs:  stats.Lognormal{MeanVal: 10, CV: 2},
			// A high floor forces ~MinRequests/8192 convergence checks
			// over a large sample set even when the tail converges early.
			MinRequests: 400_000,
			MaxRequests: 500_000,
			Seed:        uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Completed < 400_000 {
			b.Fatalf("completed %d < floor", res.Completed)
		}
	}
}

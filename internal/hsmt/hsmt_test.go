package hsmt

import (
	"testing"
	"testing/quick"

	"duplexity/internal/bpred"
	"duplexity/internal/cache"
	"duplexity/internal/cpu"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/stats"
)

func testCore(t *testing.T, slots int) *cpu.InOCore {
	t.Helper()
	cm := memsys.NewTableICoreMem("lender")
	sh := memsys.NewTableIShared("chip", 3.4)
	i, d := memsys.LocalPorts(cm, sh, cache.OwnerFiller)
	c, err := cpu.NewInOCore(cpu.TableIConfig(), slots, i, d, bpred.NewLenderUnit())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func batch(seed uint64, remote bool) isa.Stream {
	cfg := isa.SynthConfig{
		Seed: seed, LoadFrac: 0.2, StoreFrac: 0.07, BranchFrac: 0.12,
		CodeBytes: 4096, DataBytes: 1 << 16, HotFrac: 0.95, HotBytes: 2 * 1024,
		StreamFrac: 0.25, DepP: 0.2, BranchRandomFrac: 0.04,
	}
	if remote {
		cfg.RemoteEvery = 300
		cfg.RemoteLat = stats.Exponential{MeanVal: 1000}
	}
	return isa.MustSynthStream(cfg)
}

func TestPoolFIFO(t *testing.T) {
	p := NewPool()
	for i := 0; i < 5; i++ {
		p.Add(&VirtualContext{ID: i})
	}
	for i := 0; i < 5; i++ {
		vc := p.PopReady(0)
		if vc == nil || vc.ID != i {
			t.Fatalf("pop %d returned %v", i, vc)
		}
	}
	if p.PopReady(0) != nil {
		t.Fatal("empty pool popped a context")
	}
}

func TestPoolSkipsBlocked(t *testing.T) {
	p := NewPool()
	p.Add(&VirtualContext{ID: 0, ReadyAt: 100})
	p.Add(&VirtualContext{ID: 1})
	vc := p.PopReady(50)
	if vc == nil || vc.ID != 1 {
		t.Fatalf("expected ready context 1, got %v", vc)
	}
	if got := p.ReadyCount(50); got != 0 {
		t.Fatalf("ready count = %d", got)
	}
	if got := p.ReadyCount(100); got != 1 {
		t.Fatalf("ready count at 100 = %d", got)
	}
	if vc0 := p.PopReady(100); vc0 == nil || vc0.ID != 0 {
		t.Fatalf("blocked context not ready at its ReadyAt: %v", vc0)
	}
}

// Property: pool preserves FIFO order among always-ready contexts through
// arbitrary interleavings of pushes and pops.
func TestPoolFIFOProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := NewPool()
		next := 0
		var expect []int
		for _, push := range ops {
			if push || p.Len() == 0 {
				p.Add(&VirtualContext{ID: next})
				expect = append(expect, next)
				next++
			} else {
				vc := p.PopReady(0)
				if vc == nil || vc.ID != expect[0] {
					return false
				}
				expect = expect[1:]
			}
		}
		return p.Len() == len(expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil, NewPool(), 16, 100); err == nil {
		t.Fatal("nil core accepted")
	}
	c := testCore(t, 2)
	if _, err := NewScheduler(c, NewPool(), 16, 0); err == nil {
		t.Fatal("zero quantum accepted")
	}
}

func TestSchedulerBindsReadyContexts(t *testing.T) {
	core := testCore(t, 4)
	pool := NewPool()
	for i := 0; i < 6; i++ {
		pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(i), false)})
	}
	s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
	if err != nil {
		t.Fatal(err)
	}
	s.StepCore(0)
	if s.BoundCount() != 4 {
		t.Fatalf("bound %d contexts, want 4", s.BoundCount())
	}
	if pool.Len() != 2 {
		t.Fatalf("pool holds %d, want 2", pool.Len())
	}
}

func TestSchedulerSwapsOnRemote(t *testing.T) {
	core := testCore(t, 2)
	pool := NewPool()
	for i := 0; i < 8; i++ {
		pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(i), true)})
	}
	s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
	if err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 200000; now++ {
		s.StepCore(now)
	}
	if s.Swaps == 0 {
		t.Fatal("no stall-triggered context swaps")
	}
	// With 8 contexts over 2 slots and frequent stalls, every context
	// should have run at least once.
	ran := 0
	for _, vc := range pool.queue {
		if vc.Binds > 0 {
			ran++
		}
	}
	ran += s.BoundCount()
	if ran < 6 {
		t.Fatalf("only %d contexts ever ran", ran)
	}
}

// HSMT's reason for existence: with µs-scale stalls, 8 physical contexts
// backed by 24 virtual contexts must clearly out-throughput 8 contexts
// with no backing (which block in place).
func TestHSMTHidesStallsVsPlainSMT(t *testing.T) {
	run := func(virtual int) float64 {
		core := testCore(t, 8)
		pool := NewPool()
		for i := 0; i < virtual; i++ {
			pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(40+i), true)})
		}
		s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
		if err != nil {
			t.Fatal(err)
		}
		for now := uint64(0); now < 300000; now++ {
			s.StepCore(now)
		}
		return core.Stats.IPC()
	}
	plain := run(8) // 8 contexts, nothing to swap in: stalls block slots
	hsmt := run(24) // backlog hides stalls
	if hsmt < plain*1.5 {
		t.Fatalf("HSMT IPC %v not clearly above plain-SMT IPC %v", hsmt, plain)
	}
}

func TestQuantumPreemption(t *testing.T) {
	core := testCore(t, 1)
	pool := NewPool()
	// Two stall-free contexts on one slot: only the quantum rotates them.
	a := &VirtualContext{ID: 0, Stream: batch(1, false)}
	b := &VirtualContext{ID: 1, Stream: batch(2, false)}
	pool.Add(a)
	pool.Add(b)
	s, err := NewScheduler(core, pool, DefaultSwapLat, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 10000; now++ {
		s.StepCore(now)
	}
	if s.Preempts < 8 {
		t.Fatalf("preempts = %d, want ~9 with quantum 1000 over 10000 cycles", s.Preempts)
	}
	if a.Binds == 0 || b.Binds == 0 {
		t.Fatal("round-robin did not rotate both contexts")
	}
	if a.Binds < 3 || b.Binds < 3 {
		t.Fatalf("unbalanced rotation: a=%d b=%d", a.Binds, b.Binds)
	}
}

func TestNoPreemptionWithoutWaiters(t *testing.T) {
	core := testCore(t, 2)
	pool := NewPool()
	pool.Add(&VirtualContext{ID: 0, Stream: batch(1, false)})
	pool.Add(&VirtualContext{ID: 1, Stream: batch(2, false)})
	s, err := NewScheduler(core, pool, DefaultSwapLat, 500)
	if err != nil {
		t.Fatal(err)
	}
	for now := uint64(0); now < 5000; now++ {
		s.StepCore(now)
	}
	if s.Preempts != 0 {
		t.Fatalf("preempted %d times with an empty run queue", s.Preempts)
	}
}

func TestEvictAll(t *testing.T) {
	core := testCore(t, 4)
	pool := NewPool()
	for i := 0; i < 4; i++ {
		pool.Add(&VirtualContext{ID: i, Stream: batch(uint64(i), false)})
	}
	s, err := NewScheduler(core, pool, DefaultSwapLat, QuantumCycles(3.4))
	if err != nil {
		t.Fatal(err)
	}
	s.StepCore(0)
	if n := s.EvictAll(1); n != 4 {
		t.Fatalf("evicted %d, want 4", n)
	}
	if s.BoundCount() != 0 || pool.Len() != 4 {
		t.Fatalf("eviction left bound=%d pool=%d", s.BoundCount(), pool.Len())
	}
	// All evicted contexts are immediately ready (no pending stalls).
	if pool.ReadyCount(1) != 4 {
		t.Fatal("evicted contexts not ready")
	}
}

func TestQuantumCycles(t *testing.T) {
	if got := QuantumCycles(3.4); got != 340000 {
		t.Fatalf("100µs at 3.4GHz = %d, want 340000", got)
	}
}

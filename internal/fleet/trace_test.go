package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/serve"
	"duplexity/internal/telemetry"
)

// TestHedgedTraceExactlyOneWinner makes the primary a straggler so the
// hedge fires and wins, then checks the stitched trace: the hedge leg
// carried the hedge header on the wire, and exactly one remote span is
// marked the winner.
func TestHedgedTraceExactlyOneWinner(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	c := newTestCoordinator(t, Options{HedgeAfter: 50 * time.Millisecond}, f1, f2)

	var k campaign.Key
	for l := 0.10; l < 0.90; l += 0.01 {
		cand := keyFor(t, l)
		if rankWorkers(cand.Digest(), c.workers)[0].name == f1.srv.URL {
			k = cand
			break
		}
	}
	if k == (campaign.Key{}) {
		t.Fatal("no cell homed on f1")
	}

	hedgeHeader := make(chan string, 1)
	f2.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		select {
		case hedgeHeader <- r.Header.Get(telemetry.HeaderHedge):
		default:
		}
		return false // fall through to the stub exec
	})
	f1.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		io.Copy(io.Discard, r.Body)
		select {
		case <-r.Context().Done():
			return true
		case <-time.After(5 * time.Second):
			t.Error("straggler was never cancelled")
			return false
		}
	})

	tr := telemetry.NewCellTrace(telemetry.TraceContext{}, k.Digest())
	if _, _, err := c.Exec(k, tr); err != nil {
		t.Fatal(err)
	}

	select {
	case h := <-hedgeHeader:
		if h != "1" {
			t.Errorf("hedge leg carried %s=%q, want 1", telemetry.HeaderHedge, h)
		}
	default:
		t.Fatal("hedge worker saw no request")
	}

	winners, losers := 0, 0
	for _, sp := range tr.Spans() {
		if sp.Stage != telemetry.StageRemote || sp.Child {
			continue
		}
		if sp.Winner {
			winners++
			if !sp.Hedged {
				t.Error("the winning leg should be the hedge, not the straggling primary")
			}
			if sp.Worker != f2.srv.URL {
				t.Errorf("winning span worker = %q, want %q", sp.Worker, f2.srv.URL)
			}
		} else {
			losers++
		}
	}
	if winners != 1 {
		t.Fatalf("winning remote spans = %d, want exactly 1", winners)
	}
	// The cancelled straggler never delivered an outcome, so it records
	// no span at all: losers can only come from failed (not cancelled)
	// legs, and this run had none.
	if losers != 0 {
		t.Errorf("losing remote spans = %d, want 0 (straggler was cancelled, not failed)", losers)
	}
}

// TestE2EFleetStitchedTimeline drives real simulations through a real
// serve worker fleet with tracing on end to end, then checks every
// cell's stitched timeline: a winning remote span with the worker's
// compute spans adopted as children, stage sums bounded by wall time,
// and the coordinator-to-worker gap within the documented slack.
func TestE2EFleetStitchedTimeline(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation; skipped in -short")
	}
	newWorkerServer := func(dir string) *httptest.Server {
		suite := expt.NewSuite(expt.Options{Scale: 0.01, Seed: 42, Workers: 1, CacheDir: dir})
		s, err := serve.New(serve.Config{Suite: suite, Workers: 1, QueueDepth: 8})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Drain(ctx); err != nil {
				t.Errorf("worker drain: %v", err)
			}
		})
		return ts
	}
	w1 := newWorkerServer(t.TempDir())
	w2 := newWorkerServer(t.TempDir())

	coord, err := New(Options{Workers: []string{w1.URL, w2.URL}})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Register(context.Background()); err != nil {
		t.Fatal(err)
	}

	fleetSuite := expt.NewSuite(expt.Options{
		Scale: 0.01, Seed: 42, Workers: 2, CacheDir: t.TempDir(), Remote: coord,
	})

	specs := []expt.CellSpec{
		specFor(0.3), specFor(0.6),
		{Kind: expt.KindMatrix, Design: "Duplexity", Workload: "RSC", Load: 0.3},
	}
	for i, cs := range specs {
		tr := telemetry.NewCellTrace(telemetry.TraceContext{}, "")
		if _, err := fleetSuite.RunServedRawTraced(cs, tr); err != nil {
			t.Fatalf("fleet cell %d: %v", i, err)
		}
		snap := tr.Finish()
		if snap.WallNs <= 0 {
			t.Fatalf("cell %d: wall = %d", i, snap.WallNs)
		}

		var remote *telemetry.StageSpan
		childCompute := false
		for j := range snap.Spans {
			sp := &snap.Spans[j]
			switch {
			case sp.Stage == telemetry.StageRemote && !sp.Child:
				if !sp.Winner {
					t.Errorf("cell %d: unhedged remote span not marked winner", i)
				}
				if remote != nil {
					t.Errorf("cell %d: multiple top-level remote spans", i)
				}
				remote = sp
			case sp.Child && sp.Stage == telemetry.StageCompute:
				childCompute = true
				if sp.Worker == "" {
					t.Errorf("cell %d: adopted compute span names no worker", i)
				}
			}
		}
		if remote == nil {
			t.Fatalf("cell %d: no remote span in %+v", i, snap.Spans)
		}
		if childCompute == false {
			t.Errorf("cell %d: worker compute span was not adopted", i)
		}

		// Consistency: top-level stage durations are disjoint phases of
		// one request, so their sum is bounded by the observed wall.
		if sum := snap.StageSumNs(); sum <= 0 || sum > snap.WallNs {
			t.Errorf("cell %d: stage sum %dns outside (0, wall=%dns]", i, sum, snap.WallNs)
		}
		// The un-spanned remainder (handler plumbing, HTTP overhead) is
		// the documented slack; at this scale it stays well under 500ms.
		if gap := snap.WallNs - snap.StageSumNs(); gap > 500*int64(time.Millisecond) {
			t.Errorf("cell %d: %dns of wall time unaccounted for", i, gap)
		}
		// The worker's own spans nest inside the coordinator's remote
		// span: each child started no earlier than the dispatch (modulo
		// clock skew — same process here, so exact).
		for _, sp := range snap.Spans {
			if !sp.Child {
				continue
			}
			if sp.StartUnixNs < remote.StartUnixNs {
				t.Errorf("cell %d: child %s starts %dns before the remote dispatch",
					i, sp.Stage, remote.StartUnixNs-sp.StartUnixNs)
			}
		}
	}
}

package core

import (
	"fmt"

	"duplexity/internal/cache"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/stats"
)

// ChipConfig assembles a Duplexity server processor: several dyads on a
// shared last-level cache, the Figure 4(c) layout.
type ChipConfig struct {
	// Design applies to every dyad.
	Design Design
	// Masters supplies one latency-critical stream per dyad (its length
	// sets the dyad count).
	Masters []isa.Stream
	// Batches supplies each dyad's batch thread population.
	Batches [][]isa.Stream
	// LLCPerDyadMB sizes the shared LLC (Table I: 1MB per core, so the
	// default is 2MB per dyad).
	LLCPerDyadMB int
	// FreqGHz overrides the design clock (0 = Table II default).
	FreqGHz float64
}

// Chip is a multi-dyad simulation sharing one LLC; inter-dyad
// interference happens there and in DRAM, exactly as on the Figure 4(c)
// floorplan.
type Chip struct {
	Design Design
	Dyads  []*Dyad
	Shared *memsys.Shared
	now    uint64

	// engine is the lazily built chip-wide discrete-event engine (all
	// dyads' components on one queue); scanPenalty/scanHoldoff back off
	// unprofitable NextEvent scans on the legacy fast-forward path.
	engine      *eventEngine
	scanPenalty uint32
	scanHoldoff uint32
}

// NewChip wires up the dyads on a shared LLC.
func NewChip(cfg ChipConfig) (*Chip, error) {
	n := len(cfg.Masters)
	if n == 0 {
		return nil, fmt.Errorf("core: chip needs at least one dyad")
	}
	if len(cfg.Batches) != n {
		return nil, fmt.Errorf("core: %d master streams but %d batch populations", n, len(cfg.Batches))
	}
	perDyad := cfg.LLCPerDyadMB
	if perDyad == 0 {
		perDyad = 2
	}
	freq := cfg.FreqGHz
	if freq == 0 {
		freq = cfg.Design.FreqGHz()
	}
	shared := &memsys.Shared{
		LLC: cache.MustNew(cache.Config{
			Name: "chip.LLC", SizeBytes: perDyad * n << 20, LineBytes: 64,
			Ways: 8, HitLatency: memsys.LLCHitLat,
		}),
		MemLat: memsys.MemLatCycles(freq),
	}
	c := &Chip{Design: cfg.Design, Shared: shared}
	for i := 0; i < n; i++ {
		d, err := NewDyad(Config{
			Design:       cfg.Design,
			MasterStream: cfg.Masters[i],
			BatchStreams: cfg.Batches[i],
			FreqGHz:      freq,
			Shared:       shared,
		})
		if err != nil {
			return nil, fmt.Errorf("core: dyad %d: %w", i, err)
		}
		c.Dyads = append(c.Dyads, d)
	}
	return c, nil
}

// Now returns the chip clock.
func (c *Chip) Now() uint64 { return c.now }

// Step advances every dyad one cycle on the shared clock.
func (c *Chip) Step() {
	for _, d := range c.Dyads {
		d.Step()
	}
	c.now++
}

// execMode resolves the chip-wide execution mode: the strictest mode
// any dyad requests wins (stepped over fast-forward over event), so a
// single dyad pinned to ExecStepped pins the whole chip.
func (c *Chip) execMode() ExecMode {
	m := ExecEvent
	for _, d := range c.Dyads {
		if d.Exec > m {
			m = d.Exec
		}
	}
	return m
}

// Run advances n cycles on the shared clock. In the default event mode
// every dyad's master and lender sides are components of one chip-wide
// event queue — sharing is through the (passive) LLC and each dyad's
// own context pool, so one dyad's stall span is skipped even while a
// neighbour is busy. The legacy fast-forward mode keeps dyads in
// lockstep and only jumps when every dyad is quiescent, to the
// chip-wide earliest event.
func (c *Chip) Run(n uint64) {
	end := c.now + n
	switch c.execMode() {
	case ExecStepped:
		for c.now < end {
			c.Step()
		}
	case ExecFastForward:
		c.runFastForward(end)
	default:
		if c.engine == nil {
			c.engine = newDyadEngine(c.Dyads...)
		}
		c.now = c.engine.run(c.now, end, nil)
		for _, d := range c.Dyads {
			d.now = c.now
		}
	}
}

func (c *Chip) runFastForward(end uint64) {
	for c.now < end {
		idle := true
		for _, d := range c.Dyads {
			if !d.stepQuiet() {
				idle = false
			}
		}
		c.now++
		if !idle || c.now >= end {
			continue
		}
		if c.scanHoldoff > 0 {
			c.scanHoldoff--
			continue
		}
		target := end
		for _, d := range c.Dyads {
			ev := d.NextEvent()
			if ev <= c.now {
				target = c.now
				break
			}
			if ev < target {
				target = ev
			}
		}
		if target >= c.now+scanMinGain {
			c.scanPenalty = 0
		} else {
			pen := c.scanPenalty*2 + 1
			if pen > scanHoldoffCap {
				pen = scanHoldoffCap
			}
			c.scanPenalty = pen
			c.scanHoldoff = pen
		}
		if target > c.now {
			for _, d := range c.Dyads {
				d.skipTo(target)
			}
			c.now = target
		}
	}
}

// MeanMasterUtilization averages the Fig 5(a) metric over dyads.
func (c *Chip) MeanMasterUtilization() float64 {
	if len(c.Dyads) == 0 {
		return 0
	}
	s := 0.0
	for _, d := range c.Dyads {
		s += d.MasterUtilization()
	}
	return s / float64(len(c.Dyads))
}

// BatchRetired totals batch instructions across dyads.
func (c *Chip) BatchRetired() uint64 {
	var n uint64
	for _, d := range c.Dyads {
		n += d.BatchRetired()
	}
	return n
}

// RemoteOpsPerSecond totals the chip's NIC operation rate.
func (c *Chip) RemoteOpsPerSecond() float64 {
	if len(c.Dyads) == 0 || c.now == 0 {
		return 0
	}
	var n uint64
	for _, d := range c.Dyads {
		n += d.RemoteOps()
	}
	return float64(n) / c.Dyads[0].Seconds()
}

// Latencies merges the raw request-latency samples (in cycles) of every
// dyad into one recorder for chip-level percentiles.
func (c *Chip) Latencies() *stats.LatencyRecorder {
	out := stats.NewLatencyRecorder(1 << 12)
	for _, d := range c.Dyads {
		for _, v := range d.Latencies.Samples() {
			out.Add(v)
		}
	}
	return out
}

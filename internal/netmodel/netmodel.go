// Package netmodel models the dyad's NIC for the Section VIII
// interconnect-utilization case study: an FDR 4x InfiniBand link with two
// independent capability limits, a data rate of 56 Gbit/s and 90M I/O
// operations per second. Single-cache-line remote accesses are
// IOPS-limited, as the paper observes.
package netmodel

import "fmt"

// NIC describes one network port's capability envelope.
type NIC struct {
	// MaxGbps is the data-rate limit in gigabits per second.
	MaxGbps float64
	// MaxIOPS is the operation-rate limit in operations per second.
	MaxIOPS float64
}

// FDR4x returns the paper's FDR 4x InfiniBand configuration.
func FDR4x() NIC { return NIC{MaxGbps: 56, MaxIOPS: 90e6} }

// Limit names the binding constraint.
type Limit string

// Binding constraints.
const (
	LimitIOPS Limit = "iops"
	LimitData Limit = "data"
)

// Utilization returns the link utilization fraction for a workload
// issuing opsPerSec operations of bytesPerOp each, along with which
// capability binds. Utilization above 1 means the offered load exceeds
// the link.
func (n NIC) Utilization(opsPerSec, bytesPerOp float64) (float64, Limit, error) {
	if n.MaxGbps <= 0 || n.MaxIOPS <= 0 {
		return 0, "", fmt.Errorf("netmodel: invalid NIC capabilities %+v", n)
	}
	if opsPerSec < 0 || bytesPerOp < 0 {
		return 0, "", fmt.Errorf("netmodel: negative offered load")
	}
	iops := opsPerSec / n.MaxIOPS
	data := opsPerSec * bytesPerOp * 8 / (n.MaxGbps * 1e9)
	if iops >= data {
		return iops, LimitIOPS, nil
	}
	return data, LimitData, nil
}

// DyadsPerPort returns how many dyads with the given per-dyad operation
// rate can share one port before it saturates (at least 1 if any fit).
func (n NIC) DyadsPerPort(opsPerSecPerDyad, bytesPerOp float64) (int, error) {
	u, _, err := n.Utilization(opsPerSecPerDyad, bytesPerOp)
	if err != nil {
		return 0, err
	}
	if u <= 0 {
		return 0, fmt.Errorf("netmodel: dyad offers no load")
	}
	return int(1 / u), nil
}

package expt

import (
	"encoding/json"
	"fmt"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/idle"
	"duplexity/internal/power"
	"duplexity/internal/queueing"
	"duplexity/internal/stats"
	"duplexity/internal/workload"
)

// The energyprop experiment family: energy-per-request and
// energy-proportionality curves over load × design × idle governor. It
// pits the paper's approach (Duplexity: fill idle with batch work at
// full power) against the conventional one (park the core in a C-state
// and pay the wake latency on the next request), a results axis the
// paper argues qualitatively but never measures.

// EnergyLoads are the offered-load levels of the energy-proportionality
// sweep — wider than the Figure 5 loads because proportionality is
// about the low-load end.
var EnergyLoads = []float64{0.1, 0.25, 0.5, 0.75, 0.9}

// EnergyCombo is one (design, governor) curve of the sweep.
type EnergyCombo struct {
	Design   core.Design
	Governor string
}

// EnergyCombos returns the canonical curves: the baseline OoO core under
// each sleep-state policy, against Duplexity filling idle with batch
// work. (The adaptive governor stays available through served campaign
// specs; the default sweep keeps the paper's clean four-way story.)
func EnergyCombos() []EnergyCombo {
	return []EnergyCombo{
		{core.DesignBaseline, idle.GovShallow},
		{core.DesignBaseline, idle.GovDeep},
		{core.DesignBaseline, idle.GovAgile},
		{core.DesignDuplexity, idle.GovFill},
	}
}

// energyCell is one simulated point of the sweep. Every reported metric
// is computed inside the cell (not at table-format time), so a cache
// replay reproduces the table from bytes alone. Fields are exported for
// exact JSON round-trip through the campaign cache.
type energyCell struct {
	Design   core.Design `json:"design"`
	Workload string      `json:"workload"`
	Governor string      `json:"governor"`
	Load     float64     `json:"load"`

	// Slowdown is the design's service-time inflation from the
	// closed-loop cycle-level measurement.
	Slowdown float64 `json:"slowdown"`
	// Requests includes warmup (energy is spent on those too);
	// SimulatedUs spans t=0 to the last departure.
	Requests    uint64  `json:"requests"`
	SimulatedUs float64 `json:"simulated_us"`

	Utilization  float64 `json:"utilization"`
	IdleFraction float64 `json:"idle_fraction"`
	MeanUs       float64 `json:"mean_us"`
	P99Us        float64 `json:"p99_us"`
	// WakeChargedUs is total C-state exit latency added onto request
	// latencies — the mechanism by which deep idle fattens the tail.
	WakeChargedUs float64 `json:"wake_charged_us"`

	// AvgPowerW is residency-weighted chip power; IdlePowerW is the
	// average power drawn during idle time only (the proportionality
	// axis); EnergyPerReqUJ is the headline metric.
	AvgPowerW      float64 `json:"avg_power_w"`
	IdlePowerW     float64 `json:"idle_power_w"`
	EnergyPerReqUJ float64 `json:"energy_per_req_uj"`
	// BatchGIPS is batch throughput harvested from idle time (only the
	// fill governor earns any).
	BatchGIPS float64 `json:"batch_gips"`

	Idle *idle.Summary `json:"idle,omitempty"`
}

// rawSlowdown returns the memoized closed-loop cycles-per-request for
// one (design, workload), measuring it inline on a miss. Unlike the
// Slowdowns() figure path this is safe for concurrent use (served
// energyprop cells fan out across the serve pool); a duplicate
// concurrent measurement is wasted work but deterministic, so both
// racers store the identical value.
func (s *Suite) rawSlowdown(design core.Design, spec *workload.Spec) (float64, error) {
	s.slowMu.Lock()
	v, ok := s.rawSlow[slowKey{design, spec.Name}]
	s.slowMu.Unlock()
	if ok {
		return v, nil
	}
	v, err := s.measureSlowdown(design, spec)
	if err != nil {
		return 0, err
	}
	s.slowMu.Lock()
	if s.rawSlow == nil {
		s.rawSlow = make(map[slowKey]float64)
	}
	s.rawSlow[slowKey{design, spec.Name}] = v
	s.slowMu.Unlock()
	return v, nil
}

// slowdownFor converts raw cycles-per-request into the
// frequency-adjusted service-time inflation, with exactly the
// Slowdowns() arithmetic so both paths agree bit-for-bit.
func (s *Suite) slowdownFor(design core.Design, spec *workload.Spec) (float64, error) {
	if design == core.DesignBaseline {
		return 1.0, nil
	}
	v, err := s.rawSlowdown(design, spec)
	if err != nil {
		return 0, err
	}
	base, err := s.rawSlowdown(core.DesignBaseline, spec)
	if err != nil {
		return 0, err
	}
	return freqAdjSlowdown(design, v, base), nil
}

// runEnergyCell simulates one (design, workload, governor, load) point
// monolithically: derive the slowdown (through the in-process memo),
// then run the queueing + power stage. This is the single-phase path;
// the two-phase path reaches queueEnergyCell with a slowdown derived
// from cached phase-1 bytes instead, and produces identical results
// (TestTwoPhaseByteIdentity).
func (s *Suite) runEnergyCell(design core.Design, spec *workload.Spec, govName string, load float64) (energyCell, error) {
	// Governor resolution stays first so an unknown governor errors
	// without spending a closed-loop measurement.
	if _, ok := idle.ByName(govName); !ok {
		return energyCell{}, fmt.Errorf("expt: unknown idle governor %q", govName)
	}
	slow, err := s.slowdownFor(design, spec)
	if err != nil {
		return energyCell{}, err
	}
	return s.queueEnergyCell(design, spec, govName, load, slow)
}

// queueEnergyCell is the phase-2 body of an energyprop cell: a queueing
// simulation with the governor classifying idle gaps, then the power
// model over the resulting residency, for an already-derived slowdown.
// All seeds derive from the cell's own inputs, so cells are order- and
// concurrency-independent.
func (s *Suite) queueEnergyCell(design core.Design, spec *workload.Spec, govName string, load, slow float64) (energyCell, error) {
	gov, ok := idle.ByName(govName)
	if !ok {
		return energyCell{}, fmt.Errorf("expt: unknown idle governor %q", govName)
	}
	lambda := spec.QPSAtLoad(load)
	rho := lambda * spec.NominalServiceUs * slow / 1e6
	// No ExtraUs restart overhead here: for fill cells the C0-fill
	// state's exit latency is the master-restart charge, applied per
	// idle interval rather than smeared per request.
	cfg := queueing.Config{
		ArrivalQPS: lambda,
		ServiceUs:  stats.Scaled{Base: spec.ServiceDist(), Factor: slow},
		IdleGov:    gov,
		Seed: s.opts.Seed*167 + uint64(design)*59 + uint64(len(spec.Name))*977 +
			uint64(load*1000) + uint64(idle.IndexOf(govName))*31,
		MinRequests: scaledInt(s.opts.Scale, 300_000, 30_000),
		MaxRequests: scaledInt(s.opts.Scale, 2_000_000, 150_000),
	}
	if rho >= 0.95 {
		// Saturated point: finite measurement window, as on hardware.
		cfg.AllowUnstable = true
		cfg.MaxRequests = scaledInt(s.opts.Scale, 400_000, 50_000)
	}
	res, err := queueing.Simulate(cfg)
	if err != nil {
		return energyCell{}, err
	}

	freq := design.FreqGHz()
	reqInstrs := 0.0
	for _, ph := range spec.Phases {
		reqInstrs += ph.Instrs.Mean()
	}
	totalReq := uint64(res.TotalRequests)
	oooInstrs := uint64(float64(totalReq) * reqInstrs)
	var fillInstrs uint64
	if res.Idle != nil {
		for _, st := range res.Idle.States {
			if st.FillIPC > 0 {
				// Residency µs × 1000 ns/µs × GHz (cycles/ns) × IPC.
				fillInstrs += uint64(st.ResidencyUs * 1000 * freq * st.FillIPC)
			}
		}
	}
	elapsedS := res.SimulatedUs * 1e-6
	act := power.Activity{
		Seconds:   elapsedS,
		OoOInstrs: oooInstrs,
		InOInstrs: fillInstrs,
		Idle:      res.Idle,
	}
	avgW, err := power.ChipPowerW(design, act)
	if err != nil {
		return energyCell{}, err
	}
	idleW, err := power.IdlePowerW(design, res.Idle)
	if err != nil {
		return energyCell{}, err
	}
	epr, err := power.EnergyPerRequestUJ(design, act, totalReq)
	if err != nil {
		return energyCell{}, err
	}
	return energyCell{
		Design:         design,
		Workload:       spec.Name,
		Governor:       govName,
		Load:           load,
		Slowdown:       slow,
		Requests:       totalReq,
		SimulatedUs:    res.SimulatedUs,
		Utilization:    res.Utilization,
		IdleFraction:   res.IdleFraction,
		MeanUs:         res.MeanUs,
		P99Us:          res.P99Us,
		WakeChargedUs:  res.WakeChargedUs,
		AvgPowerW:      avgW,
		IdlePowerW:     idleW,
		EnergyPerReqUJ: epr,
		BatchGIPS:      float64(fillInstrs) / elapsedS / 1e9,
		Idle:           res.Idle,
	}, nil
}

// scaledInt scales a request budget by the fidelity factor with a floor.
func scaledInt(scale float64, full, floor int) int {
	v := int(scale * float64(full))
	if v < floor {
		v = floor
	}
	return v
}

// energyTwoPhase builds the two-phase decomposition of one energyprop
// cell: phase-1 is the shared slowdown micro-sim pair, phase-2 the
// queueing + power stage.
func (s *Suite) energyTwoPhase(design core.Design, spec *workload.Spec, govName string, load float64) *campaign.TwoPhase {
	return &campaign.TwoPhase{
		Micro: s.slowMicros(design, spec),
		Queue: func(micro []json.RawMessage) (json.RawMessage, error) {
			if _, ok := idle.ByName(govName); !ok {
				return nil, fmt.Errorf("expt: unknown idle governor %q", govName)
			}
			slow, err := slowFromMicros(design, micro)
			if err != nil {
				return nil, err
			}
			c, err := s.queueEnergyCell(design, spec, govName, load, slow)
			if err != nil {
				return nil, err
			}
			return json.Marshal(c)
		},
	}
}

// energyTasks enumerates the canonical sweep in (combo, workload, load)
// order. Two-phase by default: the slowdown micro-sims resolve once per
// (design, workload) however many loads and governors fan out from them.
func (s *Suite) energyTasks() []campaign.Task[energyCell] {
	var tasks []campaign.Task[energyCell]
	for _, combo := range EnergyCombos() {
		for _, spec := range workload.Microservices() {
			for _, load := range EnergyLoads {
				combo, spec, load := combo, spec, load
				t := campaign.Task[energyCell]{
					Key: s.cellKey(KindEnergyProp, combo.Design, spec, load, combo.Governor),
					Run: func() (energyCell, error) {
						return s.runEnergyCell(combo.Design, spec, combo.Governor, load)
					},
				}
				if !s.opts.SinglePhase {
					t.TwoPhase = s.energyTwoPhase(combo.Design, spec, combo.Governor, load)
				}
				tasks = append(tasks, t)
			}
		}
	}
	return tasks
}

// EnergyCells runs (or returns the memoized) energy-proportionality
// campaign. Two-phase (the default), the slowdown dependencies resolve
// through the campaign engine's micro-sim layer — cache-keyed
// identically to the Figure 5 slowdown cells, so warm caches written
// before the two-phase split still answer them. Single-phase, the
// closed-loop slowdown campaign runs up front and the queueing cells
// find every slowdown memoized, as before the split.
func (s *Suite) EnergyCells() ([]energyCell, error) {
	if s.energyRun {
		return s.energy, s.energyErr
	}
	s.energyRun = true
	if s.engErr != nil {
		s.energyErr = s.engErr
		return nil, s.energyErr
	}
	if s.opts.SinglePhase {
		if _, err := s.Slowdowns(); err != nil {
			s.energyErr = err
			return nil, err
		}
	}
	s.energy, s.energyErr = campaign.Run(s.eng, s.energyTasks())
	return s.energy, s.energyErr
}

// EnergyProp renders the energy-proportionality table: one row per
// (workload, load, design/governor) with utilization, idle power,
// energy per request, harvested batch throughput, and tail latency.
func (s *Suite) EnergyProp() (*Table, error) {
	cells, err := s.EnergyCells()
	if err != nil {
		return nil, err
	}
	byKey := make(map[string]energyCell, len(cells))
	for _, c := range cells {
		byKey[fmt.Sprintf("%s|%v|%v|%s", c.Workload, c.Load, c.Design, c.Governor)] = c
	}
	t := &Table{
		Title: "Energy proportionality: idle power, energy/request, and tail latency vs load",
		Columns: []string{"workload", "load", "design/governor", "util", "idle_frac",
			"avg_W", "idle_W", "uJ/req", "batch_GIPS", "p99_us"},
	}
	for _, spec := range workload.Microservices() {
		for _, load := range EnergyLoads {
			for _, combo := range EnergyCombos() {
				c, ok := byKey[fmt.Sprintf("%s|%v|%v|%s", spec.Name, load, combo.Design, combo.Governor)]
				if !ok {
					continue
				}
				t.AddRow(spec.Name, f2(load),
					fmt.Sprintf("%s/%s", c.Design, c.Governor),
					f3(c.Utilization), f3(c.IdleFraction),
					f2(c.AvgPowerW), f2(c.IdlePowerW), f2(c.EnergyPerReqUJ),
					f2(c.BatchGIPS), f1(c.P99Us))
			}
		}
	}
	// The paper's qualitative claim, stated over the mid-load column:
	// deep idle draws less power while idle but pays for it in the tail.
	var deepIdleW, fillIdleW, deepP99, fillP99 float64
	var n int
	for _, spec := range workload.Microservices() {
		deep, okD := byKey[fmt.Sprintf("%s|%v|%v|%s", spec.Name, 0.5, core.DesignBaseline, idle.GovDeep)]
		fill, okF := byKey[fmt.Sprintf("%s|%v|%v|%s", spec.Name, 0.5, core.DesignDuplexity, idle.GovFill)]
		if okD && okF && fill.P99Us > 0 {
			deepIdleW += deep.IdlePowerW
			fillIdleW += fill.IdlePowerW
			deepP99 += deep.P99Us / fill.P99Us
			fillP99++
			n++
		}
	}
	if n > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"mid-load (50%%): deep-idle draws %.2fW idle vs Duplexity-fill %.2fW, but p99 is %.2fx Duplexity's",
			deepIdleW/float64(n), fillIdleW/float64(n), deepP99/float64(n)))
	}
	t.Notes = append(t.Notes,
		"idle_W: average power during idle time; batch_GIPS: instructions harvested from idle intervals",
		"wake latency of the chosen C-state is charged onto the next request (deep idle fattens p99)")
	return t, nil
}

//go:build race

package expt

// raceEnabled lets multi-minute cycle-level campaign tests skip under
// the race detector's 10-20x slowdown; the race-relevant concurrency is
// covered by the fast subset tests and internal/campaign's suite.
const raceEnabled = true

package jobstore

import (
	"sync"
	"time"

	"duplexity/internal/expt"
)

// Dispatched is one cell handed out by the scheduler, with everything
// the executor needs to run and account for it.
type Dispatched struct {
	JobID  string
	Tenant string
	Lane   Lane
	Index  int
	Cell   expt.CellSpec
	// Deadline is the placement deadline inherited from the job (zero
	// for batch cells).
	Deadline time.Time
	// Queued is when the cell became dispatchable; dispatch minus
	// Queued is the scheduler wait recorded as the "sched" trace stage.
	Queued time.Time
}

// pendingCell is one not-yet-dispatched cell of a queued job.
type pendingCell struct {
	jobID    string
	index    int
	cell     expt.CellSpec
	deadline time.Time
	queued   time.Time
}

// schedJob is a job's pending-cell queue inside the scheduler.
type schedJob struct {
	id    string
	cells []pendingCell
}

// tenantState is one tenant's scheduling bookkeeping. Lane queues hold
// jobs in FIFO order; cells within a job dispatch in index order.
type tenantState struct {
	name        string
	quota       Quota
	vtime       float64
	inflight    int
	jobs        int // unfinished jobs, for MaxQueuedJobs
	interactive []*schedJob
	batch       []*schedJob
	dispatched  int64
}

func (t *tenantState) laneQueue(l Lane) *[]*schedJob {
	if l == LaneInteractive {
		return &t.interactive
	}
	return &t.batch
}

func (t *tenantState) hasPending() bool {
	return len(t.interactive) > 0 || len(t.batch) > 0
}

// Scheduler is the weighted fair-share, two-lane cell scheduler.
//
// Dispatch order: interactive lane strictly before batch; within a
// lane, the eligible tenant (pending work, under its in-flight quota)
// with the smallest virtual time wins, and each dispatch advances that
// tenant's virtual time by 1/weight — classic weighted fair queueing,
// so over any saturated interval tenants receive dispatches in
// proportion to their weights regardless of how many jobs they pile
// up. A global in-flight cap bounds how far the scheduler runs ahead
// of the admission queue.
type Scheduler struct {
	mu        sync.Mutex
	cond      *sync.Cond
	defaults  Quota
	weights   map[string]float64
	maxGlobal int
	global    int
	tenants   map[string]*tenantState
	closed    bool
}

// NewScheduler builds a scheduler. defaults applies to tenants without
// an entry in weights; maxGlobal caps total in-flight cells.
func NewScheduler(defaults Quota, weights map[string]float64, maxGlobal int) *Scheduler {
	if defaults.Weight <= 0 {
		defaults.Weight = 1
	}
	if defaults.MaxInflight <= 0 {
		defaults.MaxInflight = 4
	}
	if defaults.MaxQueuedJobs <= 0 {
		defaults.MaxQueuedJobs = 16
	}
	if maxGlobal <= 0 {
		maxGlobal = 16
	}
	s := &Scheduler{
		defaults:  defaults,
		weights:   weights,
		maxGlobal: maxGlobal,
		tenants:   make(map[string]*tenantState),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// tenant returns (creating if needed) the named tenant's state.
func (s *Scheduler) tenant(name string) *tenantState {
	t, ok := s.tenants[name]
	if !ok {
		q := s.defaults
		if w, ok := s.weights[name]; ok && w > 0 {
			q.Weight = w
		}
		t = &tenantState{name: name, quota: q}
		s.tenants[name] = t
	}
	return t
}

// minActiveVtime returns the smallest virtual time among tenants with
// work in the system (pending or in flight).
func (s *Scheduler) minActiveVtime() (float64, bool) {
	min, found := 0.0, false
	for _, t := range s.tenants {
		if t.inflight == 0 && !t.hasPending() {
			continue
		}
		if !found || t.vtime < min {
			min, found = t.vtime, true
		}
	}
	return min, found
}

// AddJob queues a job's cells for dispatch. force bypasses the
// MaxQueuedJobs quota (resume after restart must always re-admit).
func (s *Scheduler) AddJob(tenant string, job *schedJob, lane Lane, force bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenant(tenant)
	if !force && t.jobs >= t.quota.MaxQueuedJobs {
		return &QuotaError{Tenant: tenant, What: "queued jobs", Limit: t.quota.MaxQueuedJobs}
	}
	// A tenant re-entering after idling must not cash in virtual time
	// it "saved" while absent: catch it up to the active minimum so
	// fairness is measured over busy periods, not wall-clock history.
	if t.inflight == 0 && !t.hasPending() {
		if min, ok := s.minActiveVtime(); ok && min > t.vtime {
			t.vtime = min
		}
	}
	t.jobs++
	q := t.laneQueue(lane)
	*q = append(*q, job)
	s.cond.Broadcast()
	return nil
}

// Next blocks until a cell is dispatchable (or the scheduler closes)
// and returns it. Returns ok=false exactly once per waiter after
// Close.
func (s *Scheduler) Next() (Dispatched, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return Dispatched{}, false
		}
		if d, ok := s.pickLocked(); ok {
			return d, true
		}
		s.cond.Wait()
	}
}

// pickLocked implements the dispatch policy described on Scheduler.
func (s *Scheduler) pickLocked() (Dispatched, bool) {
	if s.global >= s.maxGlobal {
		return Dispatched{}, false
	}
	for _, lane := range []Lane{LaneInteractive, LaneBatch} {
		var best *tenantState
		for _, t := range s.tenants {
			if len(*t.laneQueue(lane)) == 0 || t.inflight >= t.quota.MaxInflight {
				continue
			}
			if best == nil || t.vtime < best.vtime ||
				(t.vtime == best.vtime && t.name < best.name) {
				best = t
			}
		}
		if best == nil {
			continue
		}
		q := best.laneQueue(lane)
		j := (*q)[0]
		c := j.cells[0]
		j.cells = j.cells[1:]
		if len(j.cells) == 0 {
			*q = (*q)[1:]
		}
		best.inflight++
		best.dispatched++
		s.global++
		best.vtime += 1 / best.quota.Weight
		return Dispatched{
			JobID: c.jobID, Tenant: best.name, Lane: lane, Index: c.index,
			Cell: c.cell, Deadline: c.deadline, Queued: c.queued,
		}, true
	}
	return Dispatched{}, false
}

// Release returns one of a tenant's in-flight slots (scheduler
// dispatch or TryAcquire) and wakes waiting dispatchers.
func (s *Scheduler) Release(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok && t.inflight > 0 {
		t.inflight--
	}
	if s.global > 0 {
		s.global--
	}
	s.cond.Broadcast()
}

// TryAcquire charges a quota-gated single-cell request (the /v1/cells
// path with a tenant header) against the tenant's in-flight quota and
// virtual time, without queueing. It never blocks: over-quota requests
// are shed with a QuotaError so the HTTP layer can 429 them.
func (s *Scheduler) TryAcquire(tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	t := s.tenant(tenant)
	if t.inflight >= t.quota.MaxInflight {
		return &QuotaError{Tenant: tenant, What: "in-flight cells", Limit: t.quota.MaxInflight}
	}
	if t.inflight == 0 && !t.hasPending() {
		if min, ok := s.minActiveVtime(); ok && min > t.vtime {
			t.vtime = min
		}
	}
	t.inflight++
	s.global++
	t.dispatched++
	t.vtime += 1 / t.quota.Weight
	return nil
}

// JobDone releases a tenant's queued-job slot once a job reaches a
// terminal state (done, failed, or expired).
func (s *Scheduler) JobDone(tenant string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[tenant]; ok && t.jobs > 0 {
		t.jobs--
	}
	s.cond.Broadcast()
}

// CancelJob removes a job's still-pending cells from its tenant's lane
// queues, returning how many were dropped (for expiry accounting).
func (s *Scheduler) CancelJob(tenant, jobID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tenants[tenant]
	if !ok {
		return 0
	}
	dropped := 0
	for _, q := range []*[]*schedJob{&t.interactive, &t.batch} {
		kept := (*q)[:0]
		for _, j := range *q {
			if j.id == jobID {
				dropped += len(j.cells)
				continue
			}
			kept = append(kept, j)
		}
		*q = kept
	}
	if dropped > 0 {
		s.cond.Broadcast()
	}
	return dropped
}

// Close stops dispatching and returns every still-pending cell so the
// manager can decide each one's fate (ephemeral: cancelled; durable:
// left for the next boot's resume).
func (s *Scheduler) Close() []Dispatched {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var rest []Dispatched
	for _, t := range s.tenants {
		for _, lane := range []Lane{LaneInteractive, LaneBatch} {
			for _, j := range *t.laneQueue(lane) {
				for _, c := range j.cells {
					rest = append(rest, Dispatched{
						JobID: c.jobID, Tenant: t.name, Lane: lane, Index: c.index,
						Cell: c.cell, Deadline: c.deadline, Queued: c.queued,
					})
				}
			}
			*t.laneQueue(lane) = nil
		}
	}
	s.cond.Broadcast()
	return rest
}

// TenantStats is one tenant's scheduler snapshot.
type TenantStats struct {
	Weight          float64 `json:"weight"`
	VTime           float64 `json:"vtime"`
	Inflight        int     `json:"inflight"`
	QueuedJobs      int     `json:"queued_jobs"`
	CellsDispatched int64   `json:"cells_dispatched"`
}

// Snapshot returns per-tenant scheduler state.
func (s *Scheduler) Snapshot() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.tenants))
	for name, t := range s.tenants {
		out[name] = TenantStats{
			Weight: t.quota.Weight, VTime: t.vtime, Inflight: t.inflight,
			QueuedJobs: t.jobs, CellsDispatched: t.dispatched,
		}
	}
	return out
}

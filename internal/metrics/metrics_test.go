package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSTP(t *testing.T) {
	// Two threads at half their solo speed: STP = 1.
	got, err := STP([]float64{1, 1}, []float64{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("STP = %v, want 1", got)
	}
	// Perfect isolation: STP = n.
	got, _ = STP([]float64{2, 2, 2}, []float64{2, 2, 2})
	if got != 3 {
		t.Fatalf("STP = %v, want 3", got)
	}
	if _, err := STP(nil, nil); err == nil {
		t.Fatal("empty STP accepted")
	}
	if _, err := STP([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := STP([]float64{1}, []float64{0}); err == nil {
		t.Fatal("zero single-IPC accepted")
	}
}

func TestANTT(t *testing.T) {
	got, err := ANTT([]float64{1, 1}, []float64{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("ANTT = %v, want 3", got)
	}
	if _, err := ANTT([]float64{0}, []float64{1}); err == nil {
		t.Fatal("zero multi-IPC accepted")
	}
}

func TestNormalize(t *testing.T) {
	out, err := Normalize([]float64{2, 4, 6}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("normalize = %v", out)
	}
	if _, err := Normalize([]float64{1}, 5); err == nil {
		t.Fatal("bad base index accepted")
	}
	if _, err := Normalize([]float64{0, 1}, 0); err == nil {
		t.Fatal("zero base accepted")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %v, want 2", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Fatal("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("mean = %v", got)
	}
	if _, err := Mean(nil); err == nil {
		t.Fatal("empty mean accepted")
	}
}

// Property: geomean <= arithmetic mean (AM-GM), and both lie within the
// value range.
func TestAMGMProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) && v < 1e100 {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		gm, err1 := GeoMean(vals)
		am, err2 := Mean(vals)
		if err1 != nil || err2 != nil {
			return false
		}
		return gm <= am*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: STP of identical multi/single IPCs equals thread count.
func TestSTPIdentityProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := raw[:0]
		for _, v := range raw {
			if v > 0 && !math.IsInf(v, 0) && !math.IsNaN(v) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		got, err := STP(vals, vals)
		return err == nil && math.Abs(got-float64(len(vals))) < 1e-9*float64(len(vals))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"testing"

	"duplexity/internal/isa"
	"duplexity/internal/workload"
)

func chipStreams(t *testing.T, dyads int) ([]isa.Stream, [][]isa.Stream) {
	t.Helper()
	var masters []isa.Stream
	var batches [][]isa.Stream
	for i := 0; i < dyads; i++ {
		gen := masterGen(uint64(20+i), true)
		m, err := workload.NewRequestStream(gen, 100_000, DesignDuplexity.FreqGHz(), uint64(i+3))
		if err != nil {
			t.Fatal(err)
		}
		masters = append(masters, m)
		batches = append(batches, batchStreams(32, uint64(200+i*40)))
	}
	return masters, batches
}

func TestChipValidation(t *testing.T) {
	if _, err := NewChip(ChipConfig{Design: DesignDuplexity}); err == nil {
		t.Fatal("chip without dyads accepted")
	}
	m, _ := chipStreams(t, 1)
	if _, err := NewChip(ChipConfig{Design: DesignDuplexity, Masters: m, Batches: nil}); err == nil {
		t.Fatal("mismatched batch populations accepted")
	}
}

func TestChipRunsAllDyads(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	masters, batches := chipStreams(t, 2)
	c, err := NewChip(ChipConfig{
		Design:  DesignDuplexity,
		Masters: masters,
		Batches: batches,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Shared.LLC.Config().SizeBytes; got != 4<<20 {
		t.Fatalf("chip LLC %d bytes, want 4MB for 2 dyads", got)
	}
	c.Run(1_200_000)
	if c.Now() != 1_200_000 {
		t.Fatalf("chip clock %d", c.Now())
	}
	for i, d := range c.Dyads {
		if d.MasterThreadRetired() == 0 {
			t.Fatalf("dyad %d made no master progress", i)
		}
		if d.Shared != c.Shared {
			t.Fatalf("dyad %d not on the chip LLC", i)
		}
	}
	if c.MeanMasterUtilization() <= 0 {
		t.Fatal("no chip utilization")
	}
	if c.BatchRetired() == 0 {
		t.Fatal("no chip batch throughput")
	}
	if c.RemoteOpsPerSecond() <= 0 {
		t.Fatal("no chip NIC activity")
	}
	if c.Latencies().Count() == 0 {
		t.Fatal("no merged latencies")
	}
}

// Sharing an LLC across dyads must produce inter-dyad interference:
// cross-owner LLC evictions appear, which an isolated dyad of the same
// aggregate capacity would not show for the master's working set.
func TestChipLLCInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	masters, batches := chipStreams(t, 2)
	c, err := NewChip(ChipConfig{
		Design:  DesignDuplexity,
		Masters: masters,
		Batches: batches,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1_000_000)
	if c.Shared.LLC.Stats.CrossEvictions == 0 {
		t.Fatal("no cross-owner evictions in the shared chip LLC")
	}
}

// Package memsys composes cache/TLB structures into the memory paths the
// pipelines use: a core's local path (L1 → LLC → DRAM), and Duplexity's
// dyad path, in which filler-threads running on the master-core reach the
// *lender-core's* L1s through small write-through L0 filter caches with a
// ~3-cycle remote-hop penalty (Section III-B3).
package memsys

import (
	"fmt"

	"duplexity/internal/cache"
)

// Latencies in core cycles for the Table I memory system at ~3.4 GHz.
const (
	L0HitLat  = 1
	L1HitLat  = 3
	LLCHitLat = 30
	// MemLatNs is DRAM access latency from Table I.
	MemLatNs = 50.0
	// RemoteHopLat is the added latency for the master-core to reach the
	// lender-core's L1 caches across the dyad (Section III-B3: ~3 cycles).
	RemoteHopLat = 3
	// PageWalkLat approximates a TLB-miss page walk (a couple of
	// cache-resident PTE accesses).
	PageWalkLat = 40
)

// MemLatCycles converts the Table I DRAM latency to cycles at freqGHz.
func MemLatCycles(freqGHz float64) int {
	return int(MemLatNs * freqGHz)
}

// CoreMem bundles one core's private memory-side structures (Table I:
// 64KB 2-way private I/D L1s, 64-entry I/D TLBs).
type CoreMem struct {
	L1I, L1D   *cache.Cache
	ITLB, DTLB *cache.TLB
}

// NewTableICoreMem builds the Table I private-cache configuration.
func NewTableICoreMem(name string) *CoreMem {
	mk := func(kind string) *cache.Cache {
		return cache.MustNew(cache.Config{
			Name:       name + "." + kind,
			SizeBytes:  64 * 1024,
			LineBytes:  64,
			Ways:       2,
			HitLatency: L1HitLat,
		})
	}
	return &CoreMem{
		L1I:  mk("L1I"),
		L1D:  mk("L1D"),
		ITLB: cache.NewTLB(64),
		DTLB: cache.NewTLB(64),
	}
}

// L0Pair is the master-core's filler-mode filter caches (Section III-B3:
// 2KB L0 I-cache, 4KB write-through L0 D-cache).
type L0Pair struct {
	I, D *cache.Cache
}

// NewL0Pair builds the paper's L0 configuration.
func NewL0Pair(name string) *L0Pair {
	return &L0Pair{
		I: cache.MustNew(cache.Config{
			Name: name + ".L0I", SizeBytes: 2 * 1024, LineBytes: 64,
			Ways: 2, HitLatency: L0HitLat, WriteThrough: true,
		}),
		D: cache.MustNew(cache.Config{
			Name: name + ".L0D", SizeBytes: 4 * 1024, LineBytes: 64,
			Ways: 2, HitLatency: L0HitLat, WriteThrough: true,
		}),
	}
}

// Shared bundles the chip-level shared structures: the LLC slice
// (Table I: 1MB per core, 8-way) and DRAM latency.
type Shared struct {
	LLC    *cache.Cache
	MemLat int // cycles
}

// NewTableIShared builds the shared LLC + memory at the given frequency.
func NewTableIShared(name string, freqGHz float64) *Shared {
	return &Shared{
		LLC: cache.MustNew(cache.Config{
			Name: name + ".LLC", SizeBytes: 1 << 20, LineBytes: 64,
			Ways: 8, HitLatency: LLCHitLat,
		}),
		MemLat: MemLatCycles(freqGHz),
	}
}

// Port is the memory interface a pipeline uses for one access class
// (instruction fetch or data). Access returns the latency of a
// synchronous access through the configured levels.
//
// A Port is passive with respect to simulated time: it holds no
// per-cycle state and mutates (cache contents, prefetch trackers,
// missFreeAt) only inside Access calls made by a stepping core. The
// event-driven fast-forward path (see core.Dyad.NextEvent) therefore
// needs no NextEvent from the memory system — a span with no core
// activity cannot change it, and missFreeAt comparisons against a
// later now yield exactly what cycle-by-cycle stepping would have.
type Port struct {
	Name string
	// L0 is an optional filter cache in front of L1 (filler mode only).
	L0 *cache.Cache
	// L1 is the first-level cache; may belong to a *different* core
	// (the lender) when ExtraL1Lat is non-zero.
	L1 *cache.Cache
	// TLB translates before cache access; nil disables translation.
	TLB *cache.TLB
	// Shared is the LLC + memory backing the port.
	Shared *Shared
	// Owner tags installed lines for pollution accounting.
	Owner cache.Owner
	// ExtraL1Lat is added to every access that goes past L0 (the dyad's
	// remote hop).
	ExtraL1Lat int
	// NextLinePrefetch enables a stream prefetcher: a small table of
	// trackers each holds the next line it expects its stream to touch;
	// an access matching the expectation installs the following line in
	// L1/LLC in the background and advances the tracker. Sequential
	// traversals (instruction fetch, memcpy, graph scans) therefore pay
	// only the first couple of misses per stream; random accesses get no
	// help. Sized for the 8-16 interleaved streams of an SMT core.
	NextLinePrefetch bool
	streams          [16]uint64
	streamPtr        int

	// MissInterval models L1 miss-handling bandwidth (MSHR/fill
	// constraints): the miss path accepts one miss every MissInterval
	// cycles; excess misses queue. Zero disables the model.
	MissInterval int
	missFreeAt   uint64
}

// DefaultMissInterval is the default L1 miss-path bandwidth: one miss
// accepted every 4 cycles (≈16B/cycle of fill bandwidth), shared by all
// threads using the port.
const DefaultMissInterval = 4

// Validate reports mis-wired ports.
func (p *Port) Validate() error {
	if p.L1 == nil || p.Shared == nil || p.Shared.LLC == nil {
		return fmt.Errorf("memsys: port %q missing L1 or shared level", p.Name)
	}
	return nil
}

// Access performs a synchronous access at cycle now and returns its
// latency in cycles.
func (p *Port) Access(now uint64, addr uint64, write bool) int {
	lat := 0
	if p.TLB != nil && !p.TLB.Lookup(addr) {
		lat += PageWalkLat
	}
	if p.L0 != nil {
		lat += p.L0.HitLatency()
		hit := p.L0.Access(addr, write, p.Owner)
		if write {
			// Write-through: the write always proceeds to L1 (the L0 is a
			// bandwidth filter for reads and a register-spill buffer).
			lat += p.ExtraL1Lat
			p.L1.Access(addr, true, p.Owner)
			return lat
		}
		if hit {
			return lat
		}
	}
	if p.NextLinePrefetch {
		p.prefetch(addr)
	}
	lat += p.ExtraL1Lat + p.L1.HitLatency()
	if p.L1.Access(addr, write, p.Owner) {
		return lat
	}
	// L1 miss: contend for the miss-handling path.
	if p.MissInterval > 0 {
		if p.missFreeAt > now {
			lat += int(p.missFreeAt - now)
			p.missFreeAt += uint64(p.MissInterval)
		} else {
			p.missFreeAt = now + uint64(p.MissInterval)
		}
	}
	lat += p.Shared.LLC.HitLatency()
	if p.Shared.LLC.Access(addr, write, p.Owner) {
		return lat
	}
	return lat + p.Shared.MemLat
}

// prefetch runs the stream trackers for an access to addr, installing the
// next line when the access extends a recognized stream.
func (p *Port) prefetch(addr uint64) {
	line := addr >> 6
	for i := range p.streams {
		// Tolerate a one-line skip (taken branches hop over lines).
		if line == p.streams[i] || line == p.streams[i]+1 {
			// Stream confirmed: run two lines ahead (degree-2).
			p.streams[i] = line + 1
			for d := uint64(1); d <= 2; d++ {
				next := (line + d) << 6
				if !p.L1.Contains(next) {
					p.L1.Access(next, false, p.Owner)
					p.Shared.LLC.Access(next, false, p.Owner)
				}
			}
			return
		}
		if line+1 == p.streams[i] {
			return // re-access within the current line: already tracked
		}
	}
	// Unknown line: allocate a tracker expecting the following line.
	p.streams[p.streamPtr] = line + 1
	p.streamPtr = (p.streamPtr + 1) % len(p.streams)
}

// LocalPorts returns the I and D ports for a core accessing its own L1s.
// Both ports enable next-line prefetching (sequential fetch, streaming
// data), matching conventional L1 stream prefetchers.
func LocalPorts(cm *CoreMem, sh *Shared, owner cache.Owner) (iport, dport *Port) {
	iport = &Port{Name: "ifetch", L1: cm.L1I, TLB: cm.ITLB, Shared: sh, Owner: owner,
		NextLinePrefetch: true, MissInterval: DefaultMissInterval}
	dport = &Port{Name: "data", L1: cm.L1D, TLB: cm.DTLB, Shared: sh, Owner: owner,
		NextLinePrefetch: true, MissInterval: DefaultMissInterval}
	return iport, dport
}

// DyadPorts returns the I and D ports for filler-threads executing on the
// master-core but accessing the lender-core's L1s through L0 filter
// caches, with dedicated filler TLBs. It wires L1→L0 back-invalidation so
// the L0s stay inclusive with the lender's L1s (Section III-B3).
func DyadPorts(l0 *L0Pair, lender *CoreMem, sh *Shared, fillerITLB, fillerDTLB *cache.TLB) (iport, dport *Port) {
	lender.L1I.OnEvict = l0.I.Invalidate
	lender.L1D.OnEvict = l0.D.Invalidate
	iport = &Port{Name: "ifetch.remote", L0: l0.I, L1: lender.L1I, TLB: fillerITLB,
		Shared: sh, Owner: cache.OwnerFiller, ExtraL1Lat: RemoteHopLat,
		NextLinePrefetch: true, MissInterval: DefaultMissInterval}
	dport = &Port{Name: "data.remote", L0: l0.D, L1: lender.L1D, TLB: fillerDTLB,
		Shared: sh, Owner: cache.OwnerFiller, ExtraL1Lat: RemoteHopLat,
		NextLinePrefetch: true, MissInterval: DefaultMissInterval}
	return iport, dport
}

package telemetry

import (
	"regexp"
	"strings"
	"testing"
)

// promLineRE matches one sample line of the text exposition format.
var promLineRE = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+Inf|NaN)$`)

func promSnapshot() Snapshot {
	reg := NewRegistry()
	s := reg.Scope("serve")
	s.Counter("admitted").Add(41)
	s.Counter("shed.queue_full").Add(1)
	s.Gauge("queue.depth").Set(3.5)
	h := s.Histogram("latency_us")
	h.Observe(0)  // bucket 0: le=0
	h.Observe(1)  // bucket 1: [1,2) → le=1
	h.Observe(5)  // bucket 3: [4,8) → le=7
	h.Observe(5)  //
	h.Observe(^uint64(0)) // saturating top bucket → +Inf only
	return reg.Snapshot(0)
}

func TestWritePrometheusFormat(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promSnapshot(), "duplexity", nil); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("bad comment line %q", line)
			}
			continue
		}
		if !promLineRE.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE duplexity_serve_admitted counter",
		"duplexity_serve_admitted 41",
		"duplexity_serve_shed_queue_full 1",
		"# TYPE duplexity_serve_queue_depth gauge",
		"duplexity_serve_queue_depth 3.5",
		"# TYPE duplexity_serve_latency_us histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusCumulativeBuckets(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, promSnapshot(), "duplexity", nil); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	// Exact le bounds: bucket k holds [2^(k-1), 2^k) of integers, so
	// cumulative le = 2^k − 1; zeros land at le=0; the saturating top
	// bucket folds into +Inf.
	for _, want := range []string{
		`duplexity_serve_latency_us_bucket{le="0"} 1`,
		`duplexity_serve_latency_us_bucket{le="1"} 2`,
		`duplexity_serve_latency_us_bucket{le="7"} 4`,
		`duplexity_serve_latency_us_bucket{le="+Inf"} 5`,
		`duplexity_serve_latency_us_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, `le="18446744073709551614"`) {
		t.Fatalf("saturating bucket got a finite le:\n%s", out)
	}
}

func TestWritePrometheusLabels(t *testing.T) {
	var b strings.Builder
	err := WritePrometheus(&b, promSnapshot(), "duplexity",
		map[string]string{"worker": `w"1\x`})
	if err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, `duplexity_serve_admitted{worker="w\"1\\x"} 41`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
	if !strings.Contains(out, `duplexity_serve_latency_us_bucket{le="0",worker="w\"1\\x"} 1`) {
		t.Fatalf("histogram label merge wrong:\n%s", out)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.cells.cache_hits": "duplexity_serve_cells_cache_hits",
		"fleet.worker-1.ok":      "duplexity_fleet_worker_1_ok",
	} {
		if got := PromName("duplexity", in); got != want {
			t.Fatalf("PromName(%q): got %q want %q", in, got, want)
		}
	}
}

package telemetry

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 20, 21}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.bucket {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(bucketIndex(c.v))
		if c.v < lo || (c.v >= hi && hi != ^uint64(0)) {
			t.Errorf("value %d outside its bucket bounds [%d, %d)", c.v, lo, hi)
		}
	}
	// Bounds tile the value space: bucket k's hi is bucket k+1's lo.
	for i := 0; i < 64; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Errorf("bucket %d hi %d != bucket %d lo %d", i, hi, i+1, lo)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	var h Histogram
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/min/max = %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != 500500 {
		t.Fatalf("sum = %d", h.Sum())
	}
	// Quantile is a power-of-two upper bound: p50 of 1..1000 is 500,
	// whose bucket is [256,512).
	if q := h.Quantile(0.5); q < 500 || q > 512 {
		t.Errorf("p50 = %d, want in [500, 512]", q)
	}
	if q := h.Quantile(1.0); q != 1000 {
		t.Errorf("p100 = %d, want clamped to max 1000", q)
	}
	if q := h.Quantile(0); q == 0 {
		t.Errorf("p0 of non-empty histogram should be positive")
	}
}

func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var whole, a, b Histogram
	for i := 0; i < 5000; i++ {
		v := uint64(rng.Intn(1 << 16))
		whole.Observe(v)
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if !reflect.DeepEqual(a.Snapshot(), whole.Snapshot()) {
		t.Fatalf("merged snapshot differs from whole-population snapshot:\n%+v\nvs\n%+v",
			a.Snapshot(), whole.Snapshot())
	}
	// Merging an empty histogram is a no-op.
	before := a.Snapshot()
	a.Merge(&Histogram{})
	a.Merge(nil)
	if !reflect.DeepEqual(a.Snapshot(), before) {
		t.Fatal("merge of empty/nil histogram changed state")
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b.c")
	c.Add(3)
	c.Inc()
	if r.Counter("a.b.c") != c || c.Value() != 4 {
		t.Fatalf("counter identity/value broken: %d", c.Value())
	}
	sc := r.Scope("master").Scope("thread0")
	sc.Counter("retired").Set(42)
	if r.Counter("master.thread0.retired").Value() != 42 {
		t.Fatal("scoped counter did not land at the hierarchical name")
	}
	r.Gauge("util").Set(0.5)
	r.Histogram("lat").Observe(9)
	snap := r.Snapshot(100)
	if snap.Cycle != 100 || snap.Counters["a.b.c"] != 4 ||
		snap.Gauges["util"] != 0.5 || snap.Histograms["lat"].Count != 1 {
		t.Fatalf("snapshot mismatch: %+v", snap)
	}
}

func TestWindowsCadence(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	w := r.Windowed(100)
	for cycle := uint64(0); cycle <= 1000; cycle += 30 {
		c.Set(cycle)
		w.Tick(cycle)
	}
	if len(w.Snaps) == 0 {
		t.Fatal("no snapshots taken")
	}
	// Boundaries stay on the 100-cycle grid: each snapshot's cycle is
	// the first tick at or past a fresh multiple of 100.
	prevBoundary := uint64(0)
	for _, s := range w.Snaps {
		boundary := s.Cycle / 100
		if boundary <= prevBoundary && s.Cycle != w.Snaps[0].Cycle {
			t.Errorf("snapshot at %d repeats window %d", s.Cycle, boundary)
		}
		prevBoundary = boundary
		if s.Counters["x"] != s.Cycle {
			t.Errorf("snapshot at %d holds stale counter %d", s.Cycle, s.Counters["x"])
		}
	}
}

func TestWindowsDeterminism(t *testing.T) {
	run := func() []Snapshot {
		r := NewRegistry()
		c := r.Counter("work")
		h := r.Histogram("lat")
		w := r.Windowed(64)
		rng := rand.New(rand.NewSource(99))
		cycle := uint64(0)
		for i := 0; i < 500; i++ {
			cycle += uint64(rng.Intn(40))
			c.Add(uint64(rng.Intn(10)))
			h.Observe(uint64(rng.Intn(1 << 12)))
			w.Tick(cycle)
		}
		return w.Snaps
	}
	a, b := run(), run()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatal("windowed snapshots differ across identical seeded runs")
	}
}

func TestRingWraparound(t *testing.T) {
	r := NewRing(8)
	for i := uint64(1); i <= 20; i++ {
		r.Emit(Event{Cycle: i, Kind: EvMorph})
	}
	if r.Total() != 20 || r.Len() != 8 || r.Dropped() != 12 {
		t.Fatalf("total/len/dropped = %d/%d/%d", r.Total(), r.Len(), r.Dropped())
	}
	ev := r.Events()
	if len(ev) != 8 {
		t.Fatalf("events len %d", len(ev))
	}
	for i, e := range ev {
		if want := uint64(13 + i); e.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d (oldest-first order)", i, e.Cycle, want)
		}
	}
	// Under-full ring returns everything in order.
	r2 := NewRing(8)
	r2.Emit(Event{Cycle: 5})
	r2.Emit(Event{Cycle: 6})
	if got := r2.Events(); len(got) != 2 || got[0].Cycle != 5 || got[1].Cycle != 6 {
		t.Fatalf("under-full ring events: %+v", got)
	}
	if r2.Dropped() != 0 {
		t.Fatalf("under-full ring dropped %d", r2.Dropped())
	}
}

func TestEventWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	ew.Emit(Event{Cycle: 10, Kind: EvFillerBorrow, Src: SrcFiller, A: 3, B: 1})
	ew.Emit(Event{Cycle: 20, Kind: EvFillerEvict, Src: SrcFiller, A: 3, B: EvictMasterRestart})
	if err := ew.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ew.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 || !strings.HasPrefix(lines[0], "# duplexity-events") {
		t.Fatalf("unexpected trace: %q", buf.String())
	}
	if lines[1] != "10 filler_borrow filler 3 1" {
		t.Errorf("line 1: %q", lines[1])
	}
	if lines[2] != "20 filler_evict filler 3 2" {
		t.Errorf("line 2: %q", lines[2])
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, bytes.ErrTooLarge
	}
	f.after--
	return len(p), nil
}

func TestEventWriterCloseReportsWriteError(t *testing.T) {
	ew := NewEventWriter(&failWriter{after: 0})
	for i := 0; i < 10000; i++ { // force a flush past the buffer
		ew.Emit(Event{Cycle: uint64(i)})
	}
	if err := ew.Close(); err == nil {
		t.Fatal("Close did not surface the write error")
	}
}

func TestSpans(t *testing.T) {
	events := []Event{
		{Cycle: 100, Kind: EvRequestArrive, Src: SrcMaster, A: 1},
		{Cycle: 110, Kind: EvRequestDispatch, Src: SrcMaster, A: 1},
		{Cycle: 150, Kind: EvMasterStall, Src: SrcMaster, A: 3000, B: 0},
		{Cycle: 155, Kind: EvMorph, Src: SrcMaster, A: 1},
		{Cycle: 3200, Kind: EvMasterRestart, Src: SrcMaster, A: 50, B: 3045},
		{Cycle: 3300, Kind: EvRequestComplete, Src: SrcMaster, A: 1, B: 3200},
		// Second request: dispatch lost to wraparound, only completion.
		{Cycle: 4000, Kind: EvRequestComplete, Src: SrcMaster, A: 2, B: 500},
		// Lender-side event must not attach to master spans.
		{Cycle: 160, Kind: EvFillerBorrow, Src: SrcLender, A: 9},
	}
	spans := Spans(events)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	s := spans[0]
	if s.ID != 1 || s.Arrive != 100 || s.Dispatch != 110 || s.Complete != 3300 || s.LatencyCycles != 3200 {
		t.Fatalf("span 1: %+v", s)
	}
	if len(s.Waits) != 3 {
		t.Fatalf("span 1 waits: %+v", s.Waits)
	}
	for i := 1; i < len(s.Waits); i++ {
		if s.Waits[i].Cycle < s.Waits[i-1].Cycle {
			t.Fatal("waits not in cycle order")
		}
	}
	if spans[1].ID != 2 || spans[1].start() != 3500 {
		t.Fatalf("span 2 window: %+v", spans[1])
	}
}

func TestDerive(t *testing.T) {
	reg := NewRegistry()
	Derive(reg, []Event{
		{Kind: EvMasterStall, A: 3000},
		{Kind: EvMasterRestart, A: 50, B: 3100},
		{Kind: EvMasterRestart, A: 50, B: 900},
		{Kind: EvRequestComplete, A: 1, B: 4000},
	})
	if n := reg.Histogram(HistRestartAway).Count(); n != 2 {
		t.Errorf("restart-away count %d", n)
	}
	if v := reg.Histogram(HistRestartPenalty).Max(); v != 50 {
		t.Errorf("restart penalty max %d", v)
	}
	if v := reg.Histogram(HistStall).Sum(); v != 3000 {
		t.Errorf("stall sum %d", v)
	}
	if v := reg.Histogram(HistRequestLatency).Sum(); v != 4000 {
		t.Errorf("request latency sum %d", v)
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("b.retired")
	a := r.Counter("a.cycles")
	g := r.Gauge("util")
	var snaps []Snapshot
	for i := uint64(1); i <= 3; i++ {
		a.Set(i * 10)
		c.Set(i)
		g.Set(float64(i) / 10)
		snaps = append(snaps, r.Snapshot(i*100))
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0] != "cycle,counter.a.cycles,counter.b.retired,gauge.util" {
		t.Errorf("header: %q", lines[0])
	}
	if lines[2] != "200,20,2,0.2" {
		t.Errorf("row 2: %q", lines[2])
	}
}

func TestMultiSink(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing should be nil")
	}
	r1, r2 := NewRing(4), NewRing(4)
	if Multi(r1, nil) != Sink(r1) {
		t.Fatal("Multi of one sink should return it directly")
	}
	m := Multi(r1, r2)
	m.Emit(Event{Cycle: 1})
	if r1.Total() != 1 || r2.Total() != 1 {
		t.Fatal("fan-out failed")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("master.ooo.retired").Set(123)
	reg.Histogram(HistRestartAway).Observe(77)
	snap := reg.Snapshot(5000)
	m := &Manifest{
		Tool: "test", Version: ManifestVersion, Design: "duplexity",
		Config: map[string]interface{}{"load": 0.5},
		Seed:   1, GitDescribe: "deadbeef", WallSeconds: 0.25, Cycles: 5000,
		Snapshot: &snap,
	}
	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "test" || got.Snapshot == nil ||
		got.Snapshot.Counters["master.ooo.retired"] != 123 ||
		got.Snapshot.Histograms[HistRestartAway].Count != 1 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
}

// Package hsmt implements Hierarchical Simultaneous Multithreading
// (Section III-A): a pool of latency-insensitive virtual contexts that
// time-multiplex the physical contexts of an in-order SMT datapath
// through a FIFO run queue held in dedicated memory.
//
// When a bound context issues a µs-scale remote operation, its state is
// dumped to the tail of the run queue and a ready context is swapped in.
// A 100µs round-robin quantum prevents starvation. A dyad's master-core
// borrows filler-threads by attaching a second Scheduler (its filler
// engine) to the same Pool: contexts are stolen from the head of the
// shared run queue, exactly as in Section III-A.
package hsmt

import (
	"fmt"

	"duplexity/internal/cpu"
	"duplexity/internal/isa"
	"duplexity/internal/telemetry"
)

// VirtualContext is one latency-insensitive software thread's schedulable
// state.
type VirtualContext struct {
	// ID identifies the context for statistics.
	ID int
	// Stream supplies the context's instruction stream.
	Stream isa.Stream
	// ReadyAt is the cycle at which the context's pending remote
	// operation completes (0 when ready).
	ReadyAt uint64
	// Pending holds fetched-but-unissued instructions saved at swap-out,
	// replayed at the next bind.
	Pending []isa.Instr

	// Binds counts how many times the context was scheduled.
	Binds uint64
}

// Ready reports whether the context can execute at cycle now.
func (v *VirtualContext) Ready(now uint64) bool { return v.ReadyAt <= now }

// Pool is the dyad-shared run queue of virtual contexts.
type Pool struct {
	queue []*VirtualContext
	// earliest is a lower bound on the next cycle at which any queued
	// context becomes ready; it lets schedulers skip queue scans.
	earliest uint64

	// Steals counts head-of-queue grabs; Returns counts re-enqueues.
	Steals, Returns uint64
}

// NewPool builds an empty pool.
func NewPool() *Pool { return &Pool{} }

// Add enqueues a new context at the tail.
func (p *Pool) Add(vc *VirtualContext) {
	if vc.ReadyAt < p.earliest {
		p.earliest = vc.ReadyAt
	}
	p.queue = append(p.queue, vc)
}

// EarliestReady returns a lower bound on the cycle at which the pool next
// has a ready context (0 when a context may already be ready).
func (p *Pool) EarliestReady() uint64 { return p.earliest }

// Len returns the number of queued (unbound) contexts.
func (p *Pool) Len() int { return len(p.queue) }

// ReadyCount returns how many queued contexts are ready at now.
func (p *Pool) ReadyCount(now uint64) int {
	n := 0
	for _, vc := range p.queue {
		if vc.Ready(now) {
			n++
		}
	}
	return n
}

// PopReady removes and returns the first ready context in FIFO order,
// or nil if none is ready.
func (p *Pool) PopReady(now uint64) *VirtualContext {
	if p.earliest > now {
		return nil
	}
	for i, vc := range p.queue {
		if vc.Ready(now) {
			p.queue = append(p.queue[:i], p.queue[i+1:]...)
			p.Steals++
			return vc
		}
	}
	// Nothing ready: tighten the bound so callers skip future scans.
	p.earliest = ^uint64(0)
	for _, vc := range p.queue {
		if vc.ReadyAt < p.earliest {
			p.earliest = vc.ReadyAt
		}
	}
	return nil
}

// Push returns a context to the tail of the run queue; readyAt records
// when its pending stall (if any) resolves.
func (p *Pool) Push(vc *VirtualContext, readyAt uint64) {
	vc.ReadyAt = readyAt
	if readyAt < p.earliest {
		p.earliest = readyAt
	}
	p.queue = append(p.queue, vc)
	p.Returns++
}

// Scheduler time-multiplexes a Pool onto an InOCore's physical contexts.
type Scheduler struct {
	core *cpu.InOCore
	pool *Pool

	// SwapLat is the context swap cost in cycles (dump + load of 32
	// architectural registers through the dedicated run-queue memory).
	SwapLat uint64
	// Quantum is the round-robin preemption interval in cycles
	// (Section IV: 100µs).
	Quantum uint64

	bound   []*VirtualContext
	boundAt []uint64
	// now mirrors the cycle last passed to Step, so the OnRemote hook
	// (which receives only a completion time) can stamp events.
	now uint64

	// Swaps counts stall-triggered context switches; Preempts counts
	// quantum-expiry switches.
	Swaps, Preempts uint64

	// Telemetry, when non-nil, receives FillerBorrow/FillerEvict events
	// for every bind and unbind; nil costs one check per scheduling
	// action.
	Telemetry telemetry.Sink
	// TelemetrySrc tags emitted events with the owning component
	// (telemetry.SrcLender for the lender-core's scheduler,
	// telemetry.SrcFiller for a master-core's filler engine).
	TelemetrySrc uint8
}

// DefaultSwapLat is the modelled swap cost: spilling and filling 32
// architectural registers at 4 per cycle through the run-queue memory.
const DefaultSwapLat = 16

// QuantumCycles returns the 100µs quantum at freqGHz.
func QuantumCycles(freqGHz float64) uint64 {
	return cpu.CyclesFromNs(100_000, freqGHz)
}

// NewScheduler attaches a scheduler to core and pool. It installs the
// core's OnRemote hook; the caller must not overwrite it.
func NewScheduler(core *cpu.InOCore, pool *Pool, swapLat, quantum uint64) (*Scheduler, error) {
	if core == nil || pool == nil {
		return nil, fmt.Errorf("hsmt: scheduler needs a core and a pool")
	}
	if quantum == 0 {
		return nil, fmt.Errorf("hsmt: zero quantum would starve queued contexts")
	}
	s := &Scheduler{
		core: core, pool: pool, SwapLat: swapLat, Quantum: quantum,
		bound:   make([]*VirtualContext, core.Slots()),
		boundAt: make([]uint64, core.Slots()),
	}
	core.OnRemote = s.handleRemote
	return s, nil
}

// Core returns the scheduled datapath.
func (s *Scheduler) Core() *cpu.InOCore { return s.core }

// Pool returns the run queue this scheduler draws from. Two schedulers
// attached to one pool (a dyad's lender and a master-core's filler
// engine) interact only through it, which is what the event engine's
// cross-component wake invalidation keys on.
func (s *Scheduler) Pool() *Pool { return s.pool }

// Bound returns the context bound to slot i (nil if none).
func (s *Scheduler) Bound(i int) *VirtualContext { return s.bound[i] }

// BoundCount returns the number of occupied physical contexts.
func (s *Scheduler) BoundCount() int {
	n := 0
	for _, vc := range s.bound {
		if vc != nil {
			n++
		}
	}
	return n
}

// handleRemote swaps out a context that issued a µs-scale remote op,
// returning it to the run-queue tail, and binds a ready replacement.
func (s *Scheduler) handleRemote(slot int, _ isa.Instr, completeAt uint64) cpu.RemoteAction {
	vc := s.bound[slot]
	if vc == nil {
		return cpu.RemoteBlock
	}
	_, vc.Pending = s.core.UnbindInto(slot, vc.Pending[:0])
	s.pool.Push(vc, completeAt)
	s.bound[slot] = nil
	s.Swaps++
	if s.Telemetry != nil {
		s.Telemetry.Emit(telemetry.Event{Cycle: s.now, Kind: telemetry.EvFillerEvict,
			Src: s.TelemetrySrc, A: uint64(vc.ID), B: telemetry.EvictStall})
	}
	// A replacement is bound on the next Step; physical context pays the
	// swap cost there.
	return cpu.RemoteHandled
}

// Step performs scheduling decisions for cycle now. Call once per cycle,
// before the core's Step.
func (s *Scheduler) Step(now uint64) {
	s.now = now
	for i := range s.bound {
		vc := s.bound[i]
		if vc == nil {
			if next := s.pool.PopReady(now); next != nil {
				s.bind(i, next, now)
			}
			continue
		}
		// Quantum preemption, only if someone ready is waiting.
		if now-s.boundAt[i] >= s.Quantum && s.pool.EarliestReady() <= now && s.pool.ReadyCount(now) > 0 {
			_, vc.Pending = s.core.UnbindInto(i, vc.Pending[:0])
			s.pool.Push(vc, now)
			s.bound[i] = nil
			s.Preempts++
			if s.Telemetry != nil {
				s.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFillerEvict,
					Src: s.TelemetrySrc, A: uint64(vc.ID), B: telemetry.EvictPreempt})
			}
			if next := s.pool.PopReady(now); next != nil {
				s.bind(i, next, now)
			}
		}
	}
}

func (s *Scheduler) bind(slot int, vc *VirtualContext, now uint64) {
	s.core.Bind(slot, vc.Stream, now, s.SwapLat)
	if len(vc.Pending) > 0 {
		s.core.Preload(slot, vc.Pending)
		// Keep the backing array: the next swap-out reuses it via
		// UnbindInto, so steady-state context churn does not allocate.
		vc.Pending = vc.Pending[:0]
	}
	s.bound[slot] = vc
	s.boundAt[slot] = now
	vc.Binds++
	if s.Telemetry != nil {
		s.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFillerBorrow,
			Src: s.TelemetrySrc, A: uint64(vc.ID), B: uint64(slot)})
	}
}

// EvictAll unbinds every context back to the run queue (the master-core
// evicting filler-threads when the master-thread becomes ready). Contexts
// remain ready; their register state is spilled via the L0 by the caller,
// which charges the restart latency.
func (s *Scheduler) EvictAll(now uint64) int {
	n := 0
	for i := range s.bound {
		if s.bound[i] == nil {
			continue
		}
		vc := s.bound[i]
		_, vc.Pending = s.core.UnbindInto(i, vc.Pending[:0])
		s.pool.Push(vc, now)
		s.bound[i] = nil
		n++
		if s.Telemetry != nil {
			s.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvFillerEvict,
				Src: s.TelemetrySrc, A: uint64(vc.ID), B: telemetry.EvictMasterRestart})
		}
	}
	return n
}

// StepCore runs one scheduled cycle: scheduling decisions then the
// datapath cycle.
func (s *Scheduler) StepCore(now uint64) {
	s.Step(now)
	s.core.Step(now)
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// NextEvent returns the earliest cycle >= now at which the scheduler
// could take an action: binding a queued context into an empty slot, or
// quantum-preempting a bound one in favour of a ready waiter. The bound
// is conservative — Pool.EarliestReady may be stale-low, so the result
// can be spuriously early (the caller simply steps and the pool tightens
// its bound), never late. The datapath's own events are priced
// separately by the InOCore's NextEvent.
func (s *Scheduler) NextEvent(now uint64) uint64 {
	ev := uint64(cpu.NoEvent)
	if s.pool.Len() == 0 {
		return ev // no queued context: nothing to bind or preempt for
	}
	ready := s.pool.EarliestReady()
	for i := range s.bound {
		var cand uint64
		if s.bound[i] == nil {
			cand = ready
		} else {
			cand = max64(s.boundAt[i]+s.Quantum, ready)
		}
		if cand <= now {
			return now
		}
		if cand < ev {
			ev = cand
		}
	}
	return ev
}

// SkipCycles advances the scheduler across a quiescent span. The
// scheduler keeps no per-cycle counters — its only per-cycle effects are
// pool-bound tightening (a pure cache) — so only the cycle mirror used
// for telemetry stamping moves.
func (s *Scheduler) SkipCycles(now, n uint64) { s.now = now + n }

package core

import (
	"fmt"

	"duplexity/internal/bpred"
	"duplexity/internal/cache"
	"duplexity/internal/cpu"
	"duplexity/internal/hsmt"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/stats"
	"duplexity/internal/telemetry"
)

// RequestTracker is implemented by request-driven master streams that
// track per-request arrival times, letting the dyad compute end-to-end
// request latencies (arrival to commit of the request's last instruction).
type RequestTracker interface {
	// PopCompleted returns the arrival cycle of the oldest in-service
	// request and removes it from the tracker.
	PopCompleted() (arrivalCycle uint64, ok bool)
}

// Config assembles one dyad (or a non-morphing design point paired with a
// throughput lender-core, per Section V's methodology).
type Config struct {
	// Design selects the design point.
	Design Design
	// MasterStream is the latency-critical microservice thread. It may
	// implement cpu.WorkSignaler (for idle detection) and RequestTracker
	// (for latency accounting).
	MasterStream isa.Stream
	// BatchStreams are the latency-insensitive threads. SMT designs
	// take the first as the co-runner; MorphCore takes the first eight as
	// fixed filler-threads; the remainder populate the lender-core's
	// virtual-context pool (Section IV: 32 per dyad).
	BatchStreams []isa.Stream
	// FreqGHz overrides the design's Table II clock (0 = default).
	FreqGHz float64
	// NoL0 removes Duplexity's L0 filter caches (ablation): fillers then
	// access the lender's L1s directly on every reference.
	NoL0 bool
	// Shared, if non-nil, is an externally owned LLC + memory (a Chip
	// places several dyads on one shared LLC). When nil the dyad builds
	// its own private 2MB slice.
	Shared *memsys.Shared
}

// Dyad is one simulated master/lender pair sharing an LLC slice, a
// virtual-context pool, and (for Duplexity) the lender's L1 caches.
//
// A Dyad is confined to a single goroutine: nothing in this package (or
// in the cpu, isa, workload, or stats packages it composes) holds
// package-level mutable state — every RNG, cache, and telemetry sink
// hangs off the Dyad or the streams passed into it — so the campaign
// engine (internal/campaign) may run one Dyad per worker goroutine
// concurrently without synchronization.
type Dyad struct {
	Design Design
	Freq   float64

	// Master is non-nil for morphing designs.
	Master *MasterCore
	// MasterOoO is the latency-critical engine for every design.
	MasterOoO *cpu.OoOCore
	// MasterPred is the master engine's branch prediction unit.
	MasterPred *bpred.Unit
	// MasterMem is the master-core's private cache/TLB state.
	MasterMem *memsys.CoreMem

	// Lender is the paired throughput core's scheduler.
	Lender *hsmt.Scheduler
	// LenderCore is the lender datapath.
	LenderCore *cpu.InOCore
	// LenderMem is the lender's private cache/TLB state.
	LenderMem *memsys.CoreMem
	// Pool is the virtual-context run queue.
	Pool *hsmt.Pool

	// Shared is the dyad's LLC + memory.
	Shared *memsys.Shared

	// Latencies records end-to-end request latencies in cycles when the
	// master stream implements RequestTracker.
	Latencies *stats.LatencyRecorder

	// Exec selects how Run and RunUntilRequests advance time. The zero
	// value is ExecEvent: a discrete-event engine in which each side of
	// the dyad registers its next wake cycle in a priority queue and the
	// clock jumps from event to event, never ticking an idle cycle.
	// ExecFastForward restores the whole-dyad skip loop; ExecStepped
	// forces cycle-by-cycle stepping. Results are bit-identical in all
	// three modes (see DESIGN.md §8 and §13); the knob exists for the
	// equivalence tests and for debugging.
	Exec ExecMode
	// SkippedCycles counts cycles advanced by jumps rather than steps.
	// It is a diagnostic for the skip ratio only — deliberately not part
	// of CollectInto or any printed table, so outputs and campaign cache
	// keys are unaffected by how time advanced.
	SkippedCycles uint64

	tracker      RequestTracker
	masterStream isa.Stream
	now          uint64

	// engine is the lazily built discrete-event engine for ExecEvent
	// runs; scanPenalty/scanHoldoff are the legacy fast-forward path's
	// profitability backoff (see engine.go: scanMinGain).
	engine      *eventEngine
	scanPenalty uint32
	scanHoldoff uint32

	// telemetry is the attached event sink (nil until EnableTelemetry);
	// completedSeq numbers RequestComplete events, aligning with the
	// master stream's FIFO arrival/dispatch sequence.
	telemetry    telemetry.Sink
	completedSeq uint64
}

// NewDyad wires up a design point per Section V.
func NewDyad(cfg Config) (*Dyad, error) {
	if cfg.MasterStream == nil {
		return nil, fmt.Errorf("core: master stream required")
	}
	freq := cfg.FreqGHz
	if freq == 0 {
		freq = cfg.Design.FreqGHz()
	}

	d := &Dyad{
		Design:       cfg.Design,
		Freq:         freq,
		Latencies:    stats.NewLatencyRecorder(1 << 12),
		masterStream: cfg.MasterStream,
	}

	// Shared LLC: 1MB per core x 2 cores in the dyad (Table I), unless
	// the caller supplies a chip-level LLC.
	if cfg.Shared != nil {
		d.Shared = cfg.Shared
	} else {
		d.Shared = &memsys.Shared{
			LLC: cache.MustNew(cache.Config{
				Name: "dyad.LLC", SizeBytes: 2 << 20, LineBytes: 64,
				Ways: 8, HitLatency: memsys.LLCHitLat,
			}),
			MemLat: memsys.MemLatCycles(freq),
		}
	}

	// Split batch streams per design.
	batch := cfg.BatchStreams
	var coRunner isa.Stream
	var fixedFillers []isa.Stream
	switch cfg.Design {
	case DesignSMT, DesignSMTPlus:
		if len(batch) == 0 {
			return nil, fmt.Errorf("core: %v needs at least one batch stream for the co-runner", cfg.Design)
		}
		coRunner, batch = batch[0], batch[1:]
	case DesignMorphCore:
		if len(batch) < 8 {
			return nil, fmt.Errorf("core: MorphCore needs at least 8 batch streams, got %d", len(batch))
		}
		fixedFillers, batch = batch[:8], batch[8:]
	}

	// Lender-core (all designs pair with one for fair throughput).
	lenderCfg := cpu.TableIConfig()
	lenderCfg.FreqGHz = freq
	d.LenderMem = memsys.NewTableICoreMem("lender")
	li, ld := memsys.LocalPorts(d.LenderMem, d.Shared, cache.OwnerFiller)
	lenderPred := bpred.NewLenderUnit()
	lenderCore, err := cpu.NewInOCore(lenderCfg, 8, li, ld, lenderPred)
	if err != nil {
		return nil, err
	}
	d.LenderCore = lenderCore
	d.Pool = hsmt.NewPool()
	for i, s := range batch {
		d.Pool.Add(&hsmt.VirtualContext{ID: i, Stream: s})
	}
	d.Lender, err = hsmt.NewScheduler(lenderCore, d.Pool, hsmt.DefaultSwapLat, hsmt.QuantumCycles(freq))
	if err != nil {
		return nil, err
	}

	// Master-side engine.
	masterCfg := cpu.TableIConfig()
	masterCfg.FreqGHz = freq
	d.MasterMem = memsys.NewTableICoreMem("master")
	mi, md := memsys.LocalPorts(d.MasterMem, d.Shared, cache.OwnerMaster)
	d.MasterPred = bpred.NewTableIUnit()

	masterStreams := []isa.Stream{cfg.MasterStream}
	switch cfg.Design {
	case DesignSMT:
		masterStreams = append(masterStreams, coRunner)
	case DesignSMTPlus:
		masterCfg = cpu.SMTPlusConfig()
		masterCfg.FreqGHz = freq
		masterStreams = append(masterStreams, coRunner)
	}
	d.MasterOoO, err = cpu.NewOoOCore(masterCfg, masterStreams, mi, md, d.MasterPred)
	if err != nil {
		return nil, err
	}

	// Filler engine for morphing designs.
	if cfg.Design.Morphs() {
		fillerCfg := cpu.TableIConfig()
		fillerCfg.FreqGHz = freq
		var fi, fd *memsys.Port
		fillerPred := d.MasterPred // MorphCore variants share the master's predictor
		switch cfg.Design {
		case DesignMorphCore, DesignMorphCorePlus:
			// Fillers share the master's L1s and TLBs: pollution is real.
			fi = &memsys.Port{Name: "morph.if", L1: d.MasterMem.L1I, TLB: d.MasterMem.ITLB,
				Shared: d.Shared, Owner: cache.OwnerFiller, NextLinePrefetch: true}
			fd = &memsys.Port{Name: "morph.d", L1: d.MasterMem.L1D, TLB: d.MasterMem.DTLB,
				Shared: d.Shared, Owner: cache.OwnerFiller, NextLinePrefetch: true}
		case DesignDuplexityRepl:
			// Full replication: fillers get their own 64KB L1s and TLBs.
			replMem := memsys.NewTableICoreMem("master.repl")
			fi, fd = memsys.LocalPorts(replMem, d.Shared, cache.OwnerFiller)
			fillerPred = bpred.NewLenderUnit()
		case DesignDuplexity:
			// Segregation: dedicated filler TLBs and reduced predictor;
			// L0 filter caches backed by the lender-core's L1s.
			l0 := memsys.NewL0Pair("master")
			fi, fd = memsys.DyadPorts(l0, d.LenderMem, d.Shared, cache.NewTLB(64), cache.NewTLB(64))
			if cfg.NoL0 {
				fi.L0, fd.L0 = nil, nil // ablation: no bandwidth filters
			}
			fillerPred = bpred.NewLenderUnit()
		}
		fillerCore, err := cpu.NewInOCore(fillerCfg, 8, fi, fd, fillerPred)
		if err != nil {
			return nil, err
		}
		var engine fillerEngine
		if cfg.Design == DesignMorphCore {
			engine = newFixedFiller(fillerCore, fixedFillers)
		} else {
			sched, err := hsmt.NewScheduler(fillerCore, d.Pool, hsmt.DefaultSwapLat, hsmt.QuantumCycles(freq))
			if err != nil {
				return nil, err
			}
			engine = hsmtFiller{sched}
		}
		signaler, _ := cfg.MasterStream.(cpu.WorkSignaler)
		d.Master = NewMasterCore(cfg.Design, d.MasterOoO, engine, signaler)
	}

	// Request latency accounting.
	if tr, ok := cfg.MasterStream.(RequestTracker); ok {
		d.tracker = tr
		d.MasterOoO.OnRequestEnd = func(tid int, now uint64) {
			if tid != 0 {
				return
			}
			if arrival, ok := d.tracker.PopCompleted(); ok {
				d.Latencies.Add(float64(now - arrival))
				if d.telemetry != nil {
					d.telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvRequestComplete,
						Src: telemetry.SrcMaster, A: d.completedSeq, B: now - arrival})
				}
				d.completedSeq++
			}
		}
	}
	return d, nil
}

// MustNewDyad is NewDyad that panics on configuration errors.
func MustNewDyad(cfg Config) *Dyad {
	d, err := NewDyad(cfg)
	if err != nil {
		panic(err)
	}
	return d
}

// Now returns the current cycle.
func (d *Dyad) Now() uint64 { return d.now }

// Step advances the dyad one cycle (master side and lender side).
func (d *Dyad) Step() {
	if d.Master != nil {
		d.Master.Step(d.now)
	} else {
		d.MasterOoO.Step(d.now)
	}
	d.Lender.StepCore(d.now)
	d.now++
}

// NextEvent returns the earliest cycle >= Now() at which any dyad
// component (master side, lender scheduler, lender datapath) can change
// observable state. A result <= Now() means some component would make
// progress this cycle; cpu.NoEvent means the dyad is fully drained with
// nothing scheduled.
func (d *Dyad) NextEvent() uint64 {
	now := d.now
	var ev uint64
	if d.Master != nil {
		ev = d.Master.NextEvent(now)
	} else {
		ev = d.MasterOoO.NextEvent(now)
	}
	if ev <= now {
		return now
	}
	if le := d.Lender.NextEvent(now); le < ev {
		ev = le
	}
	if lc := d.LenderCore.NextEvent(now); lc < ev {
		ev = lc
	}
	return ev
}

// skipTo jumps the clock to target, bulk-charging every component for
// the quiescent span. The caller must have established that
// NextEvent() >= target.
func (d *Dyad) skipTo(target uint64) {
	n := target - d.now
	if d.Master != nil {
		d.Master.SkipCycles(d.now, n)
	} else {
		d.MasterOoO.SkipCycles(d.now, n)
	}
	d.Lender.SkipCycles(d.now, n)
	d.LenderCore.SkipCycles(d.now, n)
	d.SkippedCycles += n
	d.now = target
}

// coreMark snapshots a core's progress-visible counters so the fast
// path can detect, in a few comparisons, whether a Step did anything.
type coreMark struct{ cycles, work, fstall uint64 }

func markCore(s *cpu.CoreStats) coreMark {
	return coreMark{s.Cycles, s.TotalRetired + s.IssueSlotsUsed, s.FetchStallCycles}
}

// advancedSince reports whether the core made visible forward progress
// after the mark: it was stepped and either retired/issued something or
// fetched (no fetch-stall charge that cycle).
func advancedSince(s *cpu.CoreStats, m coreMark) bool {
	if s.Cycles == m.cycles {
		return false // not stepped at all (e.g. master OoO in filler mode)
	}
	return s.TotalRetired+s.IssueSlotsUsed != m.work || s.FetchStallCycles == m.fstall
}

// stepQuiet steps the dyad one cycle and reports whether the step made
// no visible progress anywhere — the cheap gate (a handful of counter
// comparisons) that decides whether paying for an exact NextEvent scan
// could be worthwhile.
func (d *Dyad) stepQuiet() bool {
	mm := markCore(&d.MasterOoO.Stats)
	lm := markCore(&d.LenderCore.Stats)
	var fm coreMark
	var fstats *cpu.CoreStats
	if d.Master != nil {
		fstats = &d.Master.FillerCore().Stats
		fm = markCore(fstats)
	}
	d.Step()
	return !advancedSince(&d.MasterOoO.Stats, mm) && !advancedSince(&d.LenderCore.Stats, lm) &&
		(fstats == nil || !advancedSince(fstats, fm))
}

// stepOrSkip advances at least one cycle (never past end). After a Step
// that made no visible progress it consults NextEvent and jumps any
// quiescent span in one go — the expensive exact scan runs only on idle
// cycles, so busy spans pay just the counter comparisons of stepQuiet.
// Scans that yield only tiny jumps (workloads whose quiet cycles come
// one or two at a time) back off exponentially, so the scan cost can
// never make fast-forward slower than plain stepping.
func (d *Dyad) stepOrSkip(end uint64) {
	if !d.stepQuiet() || d.now >= end {
		return
	}
	if d.scanHoldoff > 0 {
		d.scanHoldoff--
		return
	}
	ev := d.NextEvent()
	if ev >= d.now+scanMinGain {
		d.scanPenalty = 0
	} else {
		pen := d.scanPenalty*2 + 1
		if pen > scanHoldoffCap {
			pen = scanHoldoffCap
		}
		d.scanPenalty = pen
		d.scanHoldoff = pen
	}
	if ev > d.now {
		target := ev
		if target > end {
			target = end
		}
		d.skipTo(target)
	}
}

// eventEngineFor returns the dyad's lazily built discrete-event engine.
func (d *Dyad) eventEngineFor() *eventEngine {
	if d.engine == nil {
		d.engine = newDyadEngine(d)
	}
	return d.engine
}

// Run advances n cycles.
func (d *Dyad) Run(n uint64) {
	end := d.now + n
	switch d.Exec {
	case ExecStepped:
		for d.now < end {
			d.Step()
		}
	case ExecFastForward:
		for d.now < end {
			d.stepOrSkip(end)
		}
	default:
		d.now = d.eventEngineFor().run(d.now, end, nil)
	}
}

// RunUntilRequests advances until the master-thread has completed at
// least n requests or maxCycles elapse; it returns the completed count.
func (d *Dyad) RunUntilRequests(n uint64, maxCycles uint64) uint64 {
	ts := d.MasterOoO.ThreadStats(0)
	switch d.Exec {
	case ExecStepped:
		for ts.RequestsCompleted < n && d.now < maxCycles {
			d.Step()
		}
	case ExecFastForward:
		for ts.RequestsCompleted < n && d.now < maxCycles {
			d.stepOrSkip(maxCycles)
		}
	default:
		// The stop condition only changes on an executed cycle (a
		// request completes at a master commit), so the engine checks it
		// exactly as often as the stepped loop does.
		if ts.RequestsCompleted < n && d.now < maxCycles {
			d.now = d.eventEngineFor().run(d.now, maxCycles,
				func() bool { return ts.RequestsCompleted >= n })
		}
	}
	return ts.RequestsCompleted
}

// MasterUtilization returns the Fig 5(a) metric: instructions retired on
// the master-core (master-thread, SMT co-runner, and borrowed
// filler-threads — but not the lender-core) divided by peak retire slots.
func (d *Dyad) MasterUtilization() float64 {
	if d.now == 0 {
		return 0
	}
	retired := d.MasterOoO.Stats.TotalRetired
	if d.Master != nil {
		retired += d.Master.FillerCore().Stats.TotalRetired
	}
	return float64(retired) / float64(d.now*4)
}

// MasterThreadRetired returns instructions retired by the master-thread.
func (d *Dyad) MasterThreadRetired() uint64 {
	return d.MasterOoO.ThreadStats(0).Retired
}

// BatchRetired returns instructions retired by all batch threads: the
// lender-core, borrowed fillers on the master-core, and an SMT co-runner.
func (d *Dyad) BatchRetired() uint64 {
	n := d.LenderCore.Stats.TotalRetired
	if d.Master != nil {
		n += d.Master.FillerCore().Stats.TotalRetired
	}
	if d.MasterOoO.Threads() > 1 {
		n += d.MasterOoO.ThreadStats(1).Retired
	}
	return n
}

// RemoteOps returns the number of µs-scale remote operations issued by
// the whole dyad (the Fig 6 NIC-utilization numerator).
func (d *Dyad) RemoteOps() uint64 {
	n := uint64(0)
	for t := 0; t < d.MasterOoO.Threads(); t++ {
		n += d.MasterOoO.ThreadStats(t).Remotes
	}
	if d.Master != nil {
		fc := d.Master.FillerCore()
		for i := 0; i < fc.Slots(); i++ {
			n += fc.Slot(i).Stats.Remotes
		}
	}
	for i := 0; i < d.LenderCore.Slots(); i++ {
		n += d.LenderCore.Slot(i).Stats.Remotes
	}
	return n
}

// Seconds converts the elapsed cycles to seconds at the dyad's clock.
func (d *Dyad) Seconds() float64 { return float64(d.now) / (d.Freq * 1e9) }

// CyclesToUs converts a cycle count to microseconds at the dyad's clock.
func (d *Dyad) CyclesToUs(c float64) float64 { return c / (d.Freq * 1e3) }

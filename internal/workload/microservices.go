package workload

import (
	"fmt"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

// InstrsPerUs is the generic compute-time-to-instruction conversion used
// by the motivation workloads (assuming ~1.2 IPC at 3.4 GHz).
const InstrsPerUs = 4200.0

// Spec describes one latency-critical microservice from Section V.
type Spec struct {
	// Name identifies the workload in tables ("FLANN-HA", "McRouter"...).
	Name string
	// NominalServiceUs is the mean end-to-end service time (compute plus
	// stalls) on the baseline core, per the paper's workload description.
	NominalServiceUs float64
	// StallUs is the mean time per request spent in µs-scale stalls.
	StallUs float64
	// ServiceCV is the service-time coefficient of variation used by the
	// BigHouse-style queueing model.
	ServiceCV float64
	// Texture is the instruction-mix/footprint configuration (Seed is
	// overridden per instance).
	Texture isa.SynthConfig
	// Phases is the request's compute/stall structure.
	Phases []Phase
}

// HasStalls reports whether requests include µs-scale remote operations.
func (s *Spec) HasStalls() bool { return s.StallUs > 0 }

// CapacityQPS is the service rate µ of one baseline core: requests per
// second at 100% utilization.
func (s *Spec) CapacityQPS() float64 { return 1e6 / s.NominalServiceUs }

// QPSAtLoad returns the arrival rate for an offered load in (0,1).
func (s *Spec) QPSAtLoad(load float64) float64 { return load * s.CapacityQPS() }

// ServiceDist returns the workload's service-time distribution in µs for
// request-granularity queueing simulation.
func (s *Spec) ServiceDist() stats.Distribution {
	if s.ServiceCV == 0 {
		return stats.Deterministic{Value: s.NominalServiceUs}
	}
	return stats.Lognormal{MeanVal: s.NominalServiceUs, CV: s.ServiceCV}
}

// NewGen returns a fresh per-request instruction generator.
func (s *Spec) NewGen(seed uint64) isa.Stream {
	texture := s.Texture
	texture.Seed = seed*2 + 1
	return MustPhasedGen(texture, s.Phases, seed)
}

// NewMaster returns a request-driven master-thread stream offering the
// given load fraction of the service's capacity.
func (s *Spec) NewMaster(load, freqGHz float64, seed uint64) (*RequestStream, error) {
	if load <= 0 || load >= 1 {
		return nil, fmt.Errorf("workload: load %v outside (0,1)", load)
	}
	return NewRequestStream(s.NewGen(seed), s.QPSAtLoad(load), freqGHz, seed+77)
}

// instrs converts µs of compute into an instruction-count distribution
// with mild per-request variability, at a per-workload instruction
// density (instructions per µs = measured baseline IPC × 3.4 GHz).
// Each microservice's density is calibrated so that the simulated
// baseline service time matches the paper's nominal service time; the
// microservices sustain IPCs between ~0.3 (WordStem's branchy stemmer)
// and ~0.65 (McRouter's hashing), consistent with the paper's
// observation that such services under-utilize wide OoO cores.
func instrs(us, perUs float64) stats.Distribution {
	return stats.Lognormal{MeanVal: us * perUs, CV: 0.2}
}

// FLANNHA is the high-accuracy FLANN configuration: a 10µs LSH lookup
// identifying many nearest-neighbor candidates, then a one-sided
// single-cache-line RDMA read (exponential, 1µs mean) for one candidate.
func FLANNHA() *Spec {
	return &Spec{
		Name:             "FLANN-HA",
		NominalServiceUs: 11,
		StallUs:          1,
		ServiceCV:        1.0,
		Texture: isa.SynthConfig{
			LoadFrac: 0.24, StoreFrac: 0.06, BranchFrac: 0.12, FPFrac: 0.14, MulFrac: 0.04,
			CodeBytes: 16 * 1024, DataBytes: 1 << 20, HotFrac: 0.9, HotBytes: 24 * 1024,
			StreamFrac: 0.2, DepP: 0.3, BranchRandomFrac: 0.06,
		},
		Phases: []Phase{
			{Instrs: instrs(10, 1300), RemoteNs: stats.Exponential{MeanVal: 1000}},
			{Instrs: instrs(0.3, 1300)}, // response assembly
		},
	}
}

// FLANNLL is the low-latency FLANN configuration: longer hash keys cut
// the lookup to 1µs; the RDMA read dominates.
func FLANNLL() *Spec {
	s := FLANNHA()
	s.Name = "FLANN-LL"
	s.NominalServiceUs = 2.3
	s.Phases = []Phase{
		{Instrs: instrs(1, 1250), RemoteNs: stats.Exponential{MeanVal: 1000}},
		{Instrs: instrs(0.3, 1250)},
	}
	return s
}

// RSC is the Remote Storage Caching microservice: a 3µs cuckoo-hash
// lookup mapping remote block addresses to a local Optane SSD, an 8µs
// device access via user-level polling, then a 4µs memcpy of the 4KB
// block. Only read transactions are modelled, as in the paper.
func RSC() *Spec {
	return &Spec{
		Name:             "RSC",
		NominalServiceUs: 15,
		StallUs:          8,
		ServiceCV:        0.8,
		Texture: isa.SynthConfig{
			// Cuckoo probing is dependent-load heavy; the memcpy phase
			// contributes streaming stores.
			LoadFrac: 0.28, StoreFrac: 0.14, BranchFrac: 0.1, MulFrac: 0.03,
			CodeBytes: 8 * 1024, DataBytes: 2 << 20, HotFrac: 0.7, HotBytes: 64 * 1024,
			StreamFrac: 0.45, DepP: 0.45, BranchRandomFrac: 0.05,
		},
		Phases: []Phase{
			{Instrs: instrs(3, 1200), RemoteNs: stats.Exponential{MeanVal: 8000}},
			{Instrs: instrs(4, 1200)}, // 4KB memcpy
		},
	}
}

// McRouter is the consistent-hashing KV router: 3µs to route a request
// to one of 100 leaf servers, then a synchronous wait for the
// RDMA-based leaf KV store (3-5µs per operation).
func McRouter() *Spec {
	return &Spec{
		Name:             "McRouter",
		NominalServiceUs: 7,
		StallUs:          4,
		ServiceCV:        1.2,
		Texture: isa.SynthConfig{
			LoadFrac: 0.18, StoreFrac: 0.08, BranchFrac: 0.14, MulFrac: 0.08,
			CodeBytes: 12 * 1024, DataBytes: 256 * 1024, HotFrac: 0.92, HotBytes: 16 * 1024,
			StreamFrac: 0.1, DepP: 0.3, BranchRandomFrac: 0.08,
		},
		Phases: []Phase{
			{Instrs: instrs(3, 2230), RemoteNs: stats.Uniform{Lo: 3000, Hi: 5000}},
			{Instrs: instrs(0.3, 2230)},
		},
	}
}

// WordStem is the Porter-stemmer query-rewriting microservice: a 4µs
// stateless leaf service with stemming paths hard-coded into control
// flow — no µs-scale stalls; utilization holes arise only from idleness.
func WordStem() *Spec {
	return &Spec{
		Name:             "WordStem",
		NominalServiceUs: 4,
		StallUs:          0,
		ServiceCV:        0.5,
		Texture: isa.SynthConfig{
			LoadFrac: 0.14, StoreFrac: 0.05, BranchFrac: 0.24,
			CodeBytes: 48 * 1024, DataBytes: 16 * 1024, HotFrac: 0.95, HotBytes: 8 * 1024,
			StreamFrac: 0.1, DepP: 0.35, BranchRandomFrac: 0.1,
		},
		Phases: []Phase{{Instrs: instrs(4, 900)}},
	}
}

// Microservices returns the Section V workload suite in paper order.
func Microservices() []*Spec {
	return []*Spec{FLANNHA(), FLANNLL(), RSC(), McRouter(), WordStem()}
}

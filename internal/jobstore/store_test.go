package jobstore

import (
	"os"
	"path/filepath"
	"testing"

	"duplexity/internal/expt"
)

func testCells(n int) []expt.CellSpec {
	out := make([]expt.CellSpec, n)
	for i := range out {
		out[i] = expt.CellSpec{
			Kind: expt.KindMatrix, Design: "Baseline", Workload: "RSC",
			Load: 0.1 + float64(i)*0.05,
		}
	}
	return out
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{
		ID: "j0001", Tenant: "acme", Lane: LaneInteractive, Kind: "fig5",
		Cells: testCells(3), DeadlineUnixMs: 1234, TTLSec: 60,
		CreatedUnixMs: 1000, State: StateRunning,
	}
	if err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCursor("j0001", CursorEntry{Index: 0}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCursor("j0001", CursorEntry{Index: 2, Error: "boom"}); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.MaxSeq(); got != 1 {
		t.Fatalf("MaxSeq = %d, want 1", got)
	}
	jobs, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("loaded %d jobs, want 1", len(jobs))
	}
	got := jobs[0]
	if got.Record.ID != "j0001" || got.Record.Tenant != "acme" ||
		got.Record.Lane != LaneInteractive || len(got.Record.Cells) != 3 ||
		got.Record.DeadlineUnixMs != 1234 || got.Record.TTLSec != 60 {
		t.Fatalf("record round trip mismatch: %+v", got.Record)
	}
	if len(got.Cursor) != 2 || got.Cursor[0].Index != 0 ||
		got.Cursor[1].Index != 2 || got.Cursor[1].Error != "boom" {
		t.Fatalf("cursor round trip mismatch: %+v", got.Cursor)
	}
}

func TestStoreTornCursorTail(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(Record{ID: "j0001", Tenant: "t", Lane: LaneBatch, Cells: testCells(2), State: StateRunning}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCursor("j0001", CursorEntry{Index: 0}); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, unparseable trailing line.
	f, err := os.OpenFile(filepath.Join(dir, "j0001"+cursorSuffix), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"index":1,"err`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jobs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || len(jobs[0].Cursor) != 1 || jobs[0].Cursor[0].Index != 0 {
		t.Fatalf("torn tail not dropped: %+v", jobs)
	}
}

func TestStoreReapAndSeq(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"j0001", "j0002"} {
		if err := st.Put(Record{ID: id, Tenant: "t", Lane: LaneBatch, Cells: testCells(1), State: StateDone}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Reap("j0001"); err != nil {
		t.Fatal(err)
	}
	jobs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Record.ID != "j0002" {
		t.Fatalf("reap left %+v", jobs)
	}
	// Reaping must not recycle IDs: the scan still sees j0002.
	st2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := st2.MaxSeq(); got != 2 {
		t.Fatalf("MaxSeq after reap = %d, want 2", got)
	}
	// Reaping an absent job is not an error (idempotent GC).
	if err := st.Reap("j0009"); err != nil {
		t.Fatalf("reap of missing job: %v", err)
	}
}

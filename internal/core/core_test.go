package core

import (
	"testing"

	"duplexity/internal/isa"
	"duplexity/internal/stats"
	"duplexity/internal/workload"
)

// masterGen builds a microservice-like per-request generator: ~3µs of
// compute (at ~1 IPC) per request with a 1µs remote access in the middle.
func masterGen(seed uint64, withRemote bool) *isa.SynthStream {
	cfg := isa.SynthConfig{
		Seed: seed, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.14,
		CodeBytes: 8 * 1024, DataBytes: 1 << 16, HotFrac: 0.95, HotBytes: 4 * 1024,
		StreamFrac: 0.2, DepP: 0.3, BranchRandomFrac: 0.06,
		InstrsPerRequest: stats.Deterministic{Value: 4000},
	}
	if withRemote {
		cfg.RemoteEvery = 2000
		cfg.RemoteLat = stats.Exponential{MeanVal: 1000}
	}
	return isa.MustSynthStream(cfg)
}

func batchStreams(n int, seed uint64) []isa.Stream {
	out := make([]isa.Stream, n)
	for i := range out {
		out[i] = isa.MustSynthStream(isa.SynthConfig{
			Seed: seed + uint64(i), LoadFrac: 0.2, StoreFrac: 0.07, BranchFrac: 0.12,
			CodeBytes: 4096, DataBytes: 1 << 16, HotFrac: 0.95, HotBytes: 2 * 1024,
			StreamFrac: 0.25, DepP: 0.2, BranchRandomFrac: 0.04,
			RemoteEvery: 5000, RemoteLat: stats.Exponential{MeanVal: 1000},
		})
	}
	return out
}

func makeDyad(t *testing.T, design Design, qps float64) *Dyad {
	t.Helper()
	gen := masterGen(1, true)
	master, err := workload.NewRequestStream(gen, qps, design.FreqGHz(), 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDyad(Config{
		Design:       design,
		MasterStream: master,
		BatchStreams: batchStreams(32, 100),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDesignStringsAndProps(t *testing.T) {
	for _, d := range AllDesigns {
		if d.String() == "" {
			t.Fatalf("design %d has empty name", d)
		}
		if d.FreqGHz() <= 0 {
			t.Fatalf("design %v has non-positive frequency", d)
		}
	}
	if DesignBaseline.Morphs() || DesignSMT.Morphs() {
		t.Fatal("non-morphing designs report morphing")
	}
	if !DesignDuplexity.Morphs() || !DesignDuplexity.UsesHSMT() || !DesignDuplexity.SegregatesState() {
		t.Fatal("Duplexity properties wrong")
	}
	if DesignMorphCore.UsesHSMT() || DesignMorphCorePlus.SegregatesState() {
		t.Fatal("MorphCore variant properties wrong")
	}
	if DesignDuplexity.RestartLat() != DuplexityRestartLat {
		t.Fatal("Duplexity restart latency wrong")
	}
	if DesignBaseline.RestartLat() != 0 {
		t.Fatal("baseline should have no restart latency")
	}
}

func TestNewDyadValidation(t *testing.T) {
	if _, err := NewDyad(Config{Design: DesignBaseline}); err == nil {
		t.Fatal("missing master stream accepted")
	}
	if _, err := NewDyad(Config{Design: DesignSMT, MasterStream: masterGen(1, false)}); err == nil {
		t.Fatal("SMT without co-runner accepted")
	}
	if _, err := NewDyad(Config{
		Design: DesignMorphCore, MasterStream: masterGen(1, false),
		BatchStreams: batchStreams(4, 5),
	}); err == nil {
		t.Fatal("MorphCore with <8 batch streams accepted")
	}
}

func TestAllDesignsRunAndCompleteRequests(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	for _, design := range AllDesigns {
		d := makeDyad(t, design, 100_000) // 100K QPS: moderate load
		done := d.RunUntilRequests(50, 5_000_000)
		if done < 50 {
			t.Fatalf("%v: only %d requests completed", design, done)
		}
		if d.Latencies.Count() == 0 {
			t.Fatalf("%v: no latencies recorded", design)
		}
		if u := d.MasterUtilization(); u <= 0 || u > 1 {
			t.Fatalf("%v: utilization %v out of range", design, u)
		}
	}
}

func TestDuplexityMorphsAndFills(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	d := makeDyad(t, DesignDuplexity, 100_000)
	d.RunUntilRequests(100, 8_000_000)
	ms := d.Master.Stats
	if ms.Morphs == 0 {
		t.Fatal("no stall-triggered morphs")
	}
	if ms.IdleMorphs == 0 {
		t.Fatal("no idle-triggered morphs")
	}
	if ms.FillerCycles == 0 {
		t.Fatal("no filler-mode cycles")
	}
	if d.Master.FillerCore().Stats.TotalRetired == 0 {
		t.Fatal("fillers retired nothing on the master-core")
	}
}

func TestDuplexityUtilizationBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	base := makeDyad(t, DesignBaseline, 100_000)
	base.Run(2_000_000)
	dup := makeDyad(t, DesignDuplexity, 100_000)
	dup.Run(2_000_000)
	bu, du := base.MasterUtilization(), dup.MasterUtilization()
	if du < 2*bu {
		t.Fatalf("Duplexity utilization %v not clearly above baseline %v", du, bu)
	}
}

func TestDuplexityProtectsMasterState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	// After running Duplexity with heavy filler activity, the
	// master-core's own L1s must contain no filler-owned lines.
	d := makeDyad(t, DesignDuplexity, 50_000)
	d.Run(2_000_000)
	if occ := d.MasterMem.L1D.OccupancyBy(cacheOwnerFiller()); occ != 0 {
		t.Fatalf("filler lines in master L1D: %v", occ)
	}
	if occ := d.MasterMem.L1I.OccupancyBy(cacheOwnerFiller()); occ != 0 {
		t.Fatalf("filler lines in master L1I: %v", occ)
	}
	if d.MasterMem.L1D.Stats.CrossEvictions != 0 {
		t.Fatal("cross-owner evictions in master L1D under Duplexity")
	}
}

func TestMorphCorePollutesMasterState(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	d := makeDyad(t, DesignMorphCorePlus, 50_000)
	d.Run(2_000_000)
	if occ := d.MasterMem.L1D.OccupancyBy(cacheOwnerFiller()); occ == 0 {
		t.Fatal("MorphCore+ fillers left no footprint in master L1D (sharing broken)")
	}
	if d.MasterMem.L1D.Stats.CrossEvictions == 0 {
		t.Fatal("no cross-owner evictions under MorphCore+ (pollution not modelled)")
	}
}

func TestTailLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	// SMT co-location should inflate the microservice's p99 relative to
	// Duplexity at the same load.
	p99 := func(design Design) float64 {
		d := makeDyad(t, design, 150_000)
		d.RunUntilRequests(200, 10_000_000)
		return d.Latencies.P99()
	}
	base := p99(DesignBaseline)
	smt := p99(DesignSMT)
	dup := p99(DesignDuplexity)
	if smt < base {
		t.Fatalf("SMT p99 (%v cycles) below baseline (%v)", smt, base)
	}
	if dup > smt {
		t.Fatalf("Duplexity p99 (%v cycles) above SMT (%v): isolation not working", dup, smt)
	}
}

func TestBatchThroughputAccounting(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-million-cycle simulation; skipped with -short")
	}
	d := makeDyad(t, DesignDuplexity, 100_000)
	d.Run(3_000_000)
	if d.BatchRetired() == 0 {
		t.Fatal("no batch instructions retired")
	}
	if d.RemoteOps() == 0 {
		t.Fatal("no remote ops counted")
	}
	if d.Seconds() <= 0 {
		t.Fatal("elapsed seconds not positive")
	}
	if us := d.CyclesToUs(3250); us < 0.9 || us > 1.1 {
		t.Fatalf("3250 cycles at 3.25GHz = %v µs, want ~1", us)
	}
}

func TestModeString(t *testing.T) {
	if ModeMaster.String() != "master" || ModeDraining.String() != "draining" || ModeFiller.String() != "filler" {
		t.Fatal("mode names wrong")
	}
}

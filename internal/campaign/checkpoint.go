package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// CheckpointVersion is the checkpoint file format version.
const CheckpointVersion = 1

// Checkpoint is a progress summary flushed to <cachedir>/checkpoint.json.
// Like the journal it is an observability artifact, not a correctness
// one (resume correctness comes from the content-addressed cache
// entries): it answers "how far did this campaign get, and did it stop
// cleanly?" without replaying the journal.
//
// Historically a checkpoint was only written on clean batch completion,
// so a killed or drained daemon left no record of its progress; it is
// now also flushed (with Clean=false) on drain and interrupt paths —
// internal/serve's graceful drain and cmd/duplexity's signal handler.
type Checkpoint struct {
	Version int `json:"version"`
	// Clean is true when the checkpoint was written by a completed
	// batch, false when flushed by a drain or interrupt.
	Clean bool `json:"clean"`
	// CacheCells is the number of complete cache entries on disk at
	// flush time — what a resumed run will inherit as PriorCells.
	CacheCells int `json:"cache_cells"`
	// Summary is the flushing engine's lifetime accounting (per-cell
	// timings omitted to keep the file small).
	Summary Summary `json:"summary"`
}

// CheckpointPath returns the checkpoint location inside a cache
// directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, "checkpoint.json") }

// Checkpoint flushes a progress checkpoint to the cache directory,
// atomically (temp file + rename, like cache entries). Without a cache
// it is a no-op: there is nowhere to resume from, so there is nothing
// worth checkpointing.
func (e *Engine) Checkpoint(clean bool) error {
	if e.cache == nil {
		return nil
	}
	n, err := e.cache.Len()
	if err != nil {
		return err
	}
	sum := e.Stats()
	sum.Timings = nil
	cp := Checkpoint{Version: CheckpointVersion, Clean: clean, CacheCells: n, Summary: sum}
	data, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(e.cache.Dir(), "checkpoint-*.tmp")
	if err != nil {
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	if err := os.Rename(tmp.Name(), CheckpointPath(e.cache.Dir())); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("campaign: checkpoint write: %w", err)
	}
	return nil
}

// ReadCheckpoint parses a checkpoint file; a missing file returns
// (nil, nil).
func ReadCheckpoint(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(CheckpointPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: reading checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("campaign: parsing checkpoint: %w", err)
	}
	return &cp, nil
}

// JournalIncomplete records a cell that was admitted but never
// finished — cancelled while queued or killed by a panic — so a drained
// or crashed service leaves an auditable record distinguishing lost
// work from completed work. Status is one of StatusCancelled or
// StatusPanic. Non-fatal and a no-op without a cache, mirroring
// ordinary journaling.
func (e *Engine) JournalIncomplete(k Key, status string) {
	if e.journal == nil {
		return
	}
	_ = e.journal.Append(JournalEntry{
		Seq: e.stats.recordIncomplete(), Digest: k.Digest(), Kind: k.Kind,
		Design: k.Design, Workload: k.Workload, Load: k.Load,
		Status: status,
	})
}

package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestMembershipJoinHeartbeatEvict exercises the membership state
// machine directly: join, heartbeat, world verification, leave, and
// heartbeat-timeout eviction.
func TestMembershipJoinHeartbeatEvict(t *testing.T) {
	c, err := New(Options{HeartbeatInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	world := keySuite.World()

	created, err := c.Join("http://a", 2, world)
	if err != nil || !created {
		t.Fatalf("first join: created=%v err=%v", created, err)
	}
	if got := c.World(); got != world {
		t.Fatalf("coordinator did not adopt the joiner's world: %+v", got)
	}
	// A repeat join is a heartbeat, not a new member.
	if created, err = c.Join("http://a", 2, world); err != nil || created {
		t.Fatalf("heartbeat join: created=%v err=%v", created, err)
	}
	// A mismatched world must be rejected before it can serve a cell.
	bad := world
	bad.Seed = world.Seed + 1
	if _, err := c.Join("http://evil", 2, bad); err == nil {
		t.Fatal("mismatched world joined the fleet")
	}
	if _, err := c.Join("", 1, world); err == nil {
		t.Fatal("join without a URL accepted")
	}

	if c.Leave("http://nobody") {
		t.Error("leaving an unknown worker reported removal")
	}
	if !c.Leave("http://a") {
		t.Fatal("joined worker could not leave")
	}
	if n := len(c.snapshot()); n != 0 {
		t.Fatalf("fleet size after leave = %d, want 0", n)
	}

	// Eviction: a joined worker that stops heartbeating is removed once
	// EvictAfter (3× heartbeat = 60ms) passes; a beating one survives.
	if _, err := c.Join("http://quiet", 1, world); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Join("http://chatty", 1, world); err != nil {
		t.Fatal(err)
	}
	if ev := c.EvictStale(time.Now()); len(ev) != 0 {
		t.Fatalf("fresh workers evicted: %v", ev)
	}
	time.Sleep(40 * time.Millisecond)
	if _, err := c.Join("http://chatty", 1, world); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // quiet is now ~70ms stale, chatty ~30ms
	ev := c.EvictStale(time.Now())
	if len(ev) != 1 || ev[0] != "http://quiet" {
		t.Fatalf("evicted %v, want [http://quiet]", ev)
	}
	st := c.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Name != "http://chatty" || !st.Workers[0].Joined {
		t.Fatalf("post-eviction fleet = %+v", st.Workers)
	}
	if st.Joins != 3 || st.Leaves != 1 || st.Evictions != 1 {
		t.Errorf("membership counters joins=%d leaves=%d evictions=%d, want 3/1/1",
			st.Joins, st.Leaves, st.Evictions)
	}
}

// TestMembershipHTTPEndpoints drives join and leave over the wire the
// way duplexityd join does.
func TestMembershipHTTPEndpoints(t *testing.T) {
	c, err := New(Options{HeartbeatInterval: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(c.Handler())
	defer ts.Close()

	post := func(path string, body any) (int, []byte) {
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	status, body := post("/v1/fleet/join", JoinRequest{Worker: "http://w1", PoolWidth: 4, World: keySuite.World()})
	if status != http.StatusOK {
		t.Fatalf("join = %d (%s)", status, body)
	}
	var jr JoinResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if !jr.Created || jr.Workers != 1 || jr.HeartbeatSec != 5 {
		t.Fatalf("join response = %+v", jr)
	}

	// World mismatch over HTTP is a 409, keeping the joiner out.
	bad := keySuite.World()
	bad.Seed = 999
	if status, body := post("/v1/fleet/join", JoinRequest{Worker: "http://w2", World: bad}); status != http.StatusConflict {
		t.Fatalf("mismatched join = %d (%s), want 409", status, body)
	}

	var fz Status
	resp, err := http.Get(ts.URL + "/v1/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&fz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(fz.Workers) != 1 || fz.Workers[0].Name != "http://w1" || !fz.Workers[0].Joined {
		t.Fatalf("fleetz after join = %+v", fz.Workers)
	}

	if status, body := post("/v1/fleet/leave", LeaveRequest{Worker: "http://w1"}); status != http.StatusOK {
		t.Fatalf("leave = %d (%s)", status, body)
	}
	if n := len(c.snapshot()); n != 0 {
		t.Fatalf("fleet size after leave = %d, want 0", n)
	}
}

// TestMembershipRebalanceInFlightNoFailures is the acceptance case:
// the fleet grows and shrinks at runtime — a worker joins while cells
// are queued behind a saturated member, and the original worker leaves
// while its cells are still in flight — and no cell fails.
func TestMembershipRebalanceInFlightNoFailures(t *testing.T) {
	f1, f2 := newFakeWorker(t), newFakeWorker(t)
	c, err := New(Options{CellTimeout: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// The fleet starts empty and acquires its first worker at runtime.
	if created, err := c.Join(f1.srv.URL, 2, f1.world); err != nil || !created {
		t.Fatalf("join f1: created=%v err=%v", created, err)
	}
	if _, _, err := c.Exec(keyFor(t, 0.11), nil); err != nil {
		t.Fatalf("cell through a joined-only fleet: %v", err)
	}

	// Saturate f1 (window 2): its two slots block on the gate, further
	// cells spin in acquireWait with nowhere to go.
	gate := make(chan struct{})
	f1.setHook(func(w http.ResponseWriter, r *http.Request) bool {
		<-gate
		return false
	})
	loads := []float64{0.21, 0.31, 0.41, 0.51, 0.61}
	var wg sync.WaitGroup
	errs := make([]error, len(loads))
	for i, l := range loads {
		wg.Add(1)
		go func(i int, l float64) {
			defer wg.Done()
			_, _, errs[i] = c.Exec(keyFor(t, l), nil)
		}(i, l)
	}
	waitInflight := func(f *fakeWorker, n int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for f.execCount() < n {
			if time.Now().After(deadline) {
				t.Fatalf("%s saw %d execs, want >= %d", f.srv.URL, f.execCount(), n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitInflight(f1, 3) // warm-up cell + the two gated slots

	// Grow: f2 joins mid-burst. The cells stuck in acquireWait must
	// rebalance onto it and complete even though f1 stays wedged.
	if _, err := c.Join(f2.srv.URL, 2, f2.world); err != nil {
		t.Fatal(err)
	}
	waitInflight(f2, 1)

	// Shrink: f1 leaves while its two gated cells are still in flight.
	// They hold the *worker and must finish; only new acquires skip it.
	if !c.Leave(f1.srv.URL) {
		t.Fatal("f1 could not leave")
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("cell %d failed across membership changes: %v", i, err)
		}
	}

	// Post-shrink traffic routes only to the surviving member.
	before := f1.execCount()
	if _, _, err := c.Exec(keyFor(t, 0.71), nil); err != nil {
		t.Fatal(err)
	}
	if got := f1.execCount(); got != before {
		t.Errorf("departed worker still receives new cells (%d -> %d)", before, got)
	}
	st := c.Stats()
	if len(st.Workers) != 1 || st.Workers[0].Name != f2.srv.URL {
		t.Fatalf("surviving fleet = %+v", st.Workers)
	}
	var failed int64
	for _, w := range st.Workers {
		failed += w.Failed
	}
	if failed != 0 {
		t.Errorf("membership churn recorded %d worker failures", failed)
	}
}

package cpu

import (
	"fmt"
	"strings"
)

// ThreadStats accumulates per-hardware-thread execution statistics.
type ThreadStats struct {
	// Retired counts committed (OoO) or issued-in-order (InO) instructions.
	Retired uint64
	// Remotes counts demarcated µs-scale remote operations.
	Remotes uint64
	// RemoteStallCycles accumulates cycles attributable to remote
	// operations: the summed device latencies of engine-managed
	// (RemoteBlock) remotes, plus — for controller-managed threads like
	// the morphing master — the cycles the controller parked the thread
	// off the core (charged via AddRemoteStall). Overlapping remotes
	// within one OoO window each charge their full latency.
	RemoteStallCycles uint64
	// IdleCycles accumulates cycles with no work available.
	IdleCycles uint64
	// RequestsCompleted counts committed EndOfRequest markers.
	RequestsCompleted uint64
}

// String renders the per-thread statistics on one line.
func (s ThreadStats) String() string {
	return fmt.Sprintf("retired %d, remotes %d, remote-stall %d, idle %d, requests %d",
		s.Retired, s.Remotes, s.RemoteStallCycles, s.IdleCycles, s.RequestsCompleted)
}

// ThreadTable formats a labelled set of per-thread statistics as an
// aligned table (the cmd/dyadsim per-thread report). names and stats
// must be parallel slices.
func ThreadTable(names []string, stats []*ThreadStats) string {
	rows := [][]string{{"thread", "retired", "remotes", "remote-stall", "idle", "requests"}}
	for i, s := range stats {
		rows = append(rows, []string{
			names[i],
			fmt.Sprintf("%d", s.Retired),
			fmt.Sprintf("%d", s.Remotes),
			fmt.Sprintf("%d", s.RemoteStallCycles),
			fmt.Sprintf("%d", s.IdleCycles),
			fmt.Sprintf("%d", s.RequestsCompleted),
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := strings.Repeat(" ", widths[i]-len(cell))
			if i == 0 {
				b.WriteString(cell + pad)
			} else {
				b.WriteString(pad + cell)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CoreStats aggregates per-core counters.
type CoreStats struct {
	Cycles       uint64
	TotalRetired uint64
	// FetchStallCycles counts cycles the front end fetched nothing.
	FetchStallCycles uint64
	// IssueSlotsUsed counts issue slots filled (utilization numerator is
	// retired instructions; this tracks raw issue activity). It is not
	// part of any printed table; the telemetry registry surfaces it as
	// "<core>.issue_slots_used" (see core.Dyad.CollectInto).
	IssueSlotsUsed uint64
}

// IPC returns total retired instructions per cycle.
func (s CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.TotalRetired) / float64(s.Cycles)
}

// Utilization returns retired instructions per peak retire slot — the
// paper's core-utilization metric (retired IPC divided by width 4).
// Non-positive widths (a miswired caller) yield 0 rather than a
// negative or infinite utilization.
func (s CoreStats) Utilization(width int) float64 {
	if s.Cycles == 0 || width <= 0 {
		return 0
	}
	return float64(s.TotalRetired) / float64(s.Cycles*uint64(width))
}

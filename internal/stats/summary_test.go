package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 {
		t.Fatalf("count = %d", s.Count())
	}
	if s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Population variance is 4; sample variance = 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Fatalf("variance = %v", s.Variance())
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 {
		t.Fatal("empty summary should report zeros")
	}
	_, hw := s.MeanCI(1.96)
	if !math.IsInf(hw, 1) {
		t.Fatal("CI of empty summary should be infinite")
	}
}

// Property: merging two summaries equals summarizing the concatenation.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e8 {
					out = append(out, v)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var sa, sb, all Summary
		for _, v := range a {
			sa.Add(v)
			all.Add(v)
		}
		for _, v := range b {
			sb.Add(v)
			all.Add(v)
		}
		sa.Merge(&sb)
		if sa.Count() != all.Count() {
			return false
		}
		if all.Count() == 0 {
			return true
		}
		tol := 1e-6 * (1 + math.Abs(all.Mean()))
		if math.Abs(sa.Mean()-all.Mean()) > tol {
			return false
		}
		vtol := 1e-5 * (1 + all.Variance())
		return math.Abs(sa.Variance()-all.Variance()) <= vtol &&
			sa.Min() == all.Min() && sa.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileBasics(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Quantile(data, 0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(data, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	if got := Quantile(data, 0.5); got != 5.5 {
		t.Fatalf("median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty slice should be NaN")
	}
}

// Property: quantile is monotone in q and bounded by extremes.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, q1f, q2f uint16) bool {
		data := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		sort.Float64s(data)
		q1 := float64(q1f) / 65535
		q2 := float64(q2f) / 65535
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1 := Quantile(data, q1)
		v2 := Quantile(data, q2)
		return v1 <= v2 && v1 >= data[0] && v2 <= data[len(data)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeErrorBelow(t *testing.T) {
	var s Summary
	r := NewRNG(20)
	for i := 0; i < 10; i++ {
		s.Add(10 + r.NormFloat64())
	}
	// With 10k samples of stddev 1 around mean 10, the 95% CI is tiny.
	for i := 0; i < 10000; i++ {
		s.Add(10 + r.NormFloat64())
	}
	if !s.RelativeErrorBelow(1.96, 0.05) {
		t.Fatal("tight distribution should satisfy 5% relative error")
	}
	var loose Summary
	loose.Add(1)
	loose.Add(100)
	if loose.RelativeErrorBelow(1.96, 0.05) {
		t.Fatal("two wild samples should not satisfy 5% relative error")
	}
}

package expt

import (
	"fmt"

	"duplexity/internal/core"
	"duplexity/internal/power"
	"duplexity/internal/workload"
)

// Table1 regenerates Table I: the microarchitecture configuration.
func (s *Suite) Table1() *Table {
	t := &Table{
		Title:   "Table I: microarchitecture details",
		Columns: []string{"unit", "configuration"},
	}
	t.AddRow("Baseline/SMT", "4-wide OoO, 144-entry ROB/PRF, 48-entry LQ, 32-entry SQ, ICOUNT fetch for SMT")
	t.AddRow("", "tournament predictor: bimodal (16K), gshare (16K), selector (16K); 32-entry RAS; 2K-entry BTB; 64-entry I/D TLBs")
	t.AddRow("Lender-core", "8-way InO HSMT, 32 virtual contexts, 4-wide issue, round-robin fetch, gshare (8K), 2K-entry BTB, 64-entry I/D TLBs")
	t.AddRow("Master-core", "transitions between single-threaded OoO and InO HSMT; uarch same as baseline; tournament(16K)/gshare(8K); separate TLBs per mode; 2KB/4KB I/D write-through L0 caches")
	t.AddRow("L1 caches", "private 64KB I/D, 64B lines, 2-way set-associative")
	t.AddRow("LLC", "1MB per core, 64B lines, 8-way set-associative")
	t.AddRow("Memory", "50ns access latency")
	t.AddRow("NIC", "FDR 4x InfiniBand (56 Gbit/s, 90M ops/s)")
	return t
}

// Table2 regenerates Table II: area and clock frequency per component,
// from the McPAT/CACTI-lite model.
func (s *Suite) Table2() *Table {
	t := &Table{
		Title:   "Table II: area and clock frequencies (32nm)",
		Columns: []string{"component", "area (mm²)", "frequency (GHz)"},
	}
	for _, row := range power.TableIIRows() {
		freq := "N/A"
		if row.FreqGHz > 0 {
			freq = fmt.Sprintf("%.2f", row.FreqGHz)
		}
		t.AddRow(row.Component, f2(row.AreaMM2), freq)
	}
	return t
}

// Workloads summarizes the Section V workload suite (a convenience table,
// not a paper figure).
func (s *Suite) Workloads() *Table {
	t := &Table{
		Title:   "Section V workloads",
		Columns: []string{"microservice", "service (µs)", "stall (µs)", "capacity (QPS)"},
	}
	for _, w := range workload.Microservices() {
		t.AddRow(w.Name, f1(w.NominalServiceUs), f1(w.StallUs), fmt.Sprintf("%.0f", w.CapacityQPS()))
	}
	return t
}

// ServiceSlowdowns reports the measured per-design service-time inflation
// feeding Figures 5(d) and 5(e) (a diagnostic table).
func (s *Suite) ServiceSlowdowns() (*Table, error) {
	slows, err := s.Slowdowns()
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Measured service-time slowdown vs Baseline (saturated closed loop)",
		Columns: designColumns("workload"),
	}
	for _, spec := range workload.Microservices() {
		row := []string{spec.Name}
		for _, d := range core.AllDesigns {
			row = append(row, f2(slows[slowKey{d, spec.Name}]))
		}
		t.AddRow(row...)
		baseUs := s.serviceBase[spec.Name] / (core.DesignBaseline.FreqGHz() * 1e3)
		t.Notes = append(t.Notes,
			fmt.Sprintf("%s measured baseline service: %.1f µs (nominal %.1f)", spec.Name, baseUs, spec.NominalServiceUs))
	}
	return t, nil
}

package core

import "duplexity/internal/cache"

// cacheOwnerFiller avoids importing cache in every test file.
func cacheOwnerFiller() cache.Owner { return cache.OwnerFiller }

package stats

import (
	"math"
	"testing"
)

// sampleMean draws n samples and returns their mean.
func sampleMean(d Distribution, n int, seed uint64) float64 {
	r := NewRNG(seed)
	var s Summary
	for i := 0; i < n; i++ {
		s.Add(d.Sample(r))
	}
	return s.Mean()
}

func checkMean(t *testing.T, d Distribution, tol float64) {
	t.Helper()
	got := sampleMean(d, 200000, 99)
	want := d.Mean()
	if math.Abs(got-want) > tol*math.Max(want, 1e-12) {
		t.Fatalf("%s: sample mean %v, analytic mean %v", d, got, want)
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 4.2}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 4.2 {
			t.Fatal("deterministic sample differs from value")
		}
	}
	if d.Mean() != 4.2 {
		t.Fatal("deterministic mean differs from value")
	}
}

func TestExponentialMean(t *testing.T)   { checkMean(t, Exponential{MeanVal: 3.5}, 0.02) }
func TestUniformMean(t *testing.T)       { checkMean(t, Uniform{Lo: 2, Hi: 10}, 0.02) }
func TestLognormalMean(t *testing.T)     { checkMean(t, Lognormal{MeanVal: 4, CV: 1.0}, 0.05) }
func TestBoundedParetoMean(t *testing.T) { checkMean(t, BoundedPareto{L: 1, H: 100, Alpha: 1.5}, 0.05) }
func TestShiftedMean(t *testing.T) {
	checkMean(t, Shifted{Base: Exponential{MeanVal: 2}, Shift: 5}, 0.02)
}
func TestScaledMean(t *testing.T) {
	checkMean(t, Scaled{Base: Exponential{MeanVal: 2}, Factor: 3}, 0.02)
}

func TestExponentialCDF(t *testing.T) {
	e := Exponential{MeanVal: 2}
	if got := e.CDF(0); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	if got := e.CDF(-1); got != 0 {
		t.Fatalf("CDF(-1) = %v", got)
	}
	// CDF(mean) = 1 - 1/e.
	want := 1 - math.Exp(-1)
	if got := e.CDF(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("CDF(mean) = %v, want %v", got, want)
	}
	// Empirical check.
	r := NewRNG(12)
	under := 0
	const n = 200000
	for i := 0; i < n; i++ {
		if e.Sample(r) <= 3 {
			under++
		}
	}
	if math.Abs(float64(under)/n-e.CDF(3)) > 0.01 {
		t.Fatalf("empirical CDF(3) = %v, analytic %v", float64(under)/n, e.CDF(3))
	}
}

func TestLognormalCV(t *testing.T) {
	d := Lognormal{MeanVal: 10, CV: 1.5}
	r := NewRNG(13)
	var s Summary
	for i := 0; i < 400000; i++ {
		s.Add(d.Sample(r))
	}
	if math.Abs(s.CV()-1.5) > 0.1 {
		t.Fatalf("lognormal CV = %v, want ~1.5", s.CV())
	}
}

func TestBoundedParetoSupport(t *testing.T) {
	d := BoundedPareto{L: 2, H: 50, Alpha: 1.2}
	r := NewRNG(14)
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < d.L-1e-9 || v > d.H+1e-9 {
			t.Fatalf("sample %v outside [%v,%v]", v, d.L, d.H)
		}
	}
}

func TestMixtureValidation(t *testing.T) {
	if _, err := NewMixture(nil, nil); err == nil {
		t.Fatal("empty mixture accepted")
	}
	if _, err := NewMixture([]Distribution{Deterministic{1}}, []float64{0.5}); err == nil {
		t.Fatal("weights not summing to 1 accepted")
	}
	if _, err := NewMixture([]Distribution{Deterministic{1}}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	m, err := NewMixture(
		[]Distribution{Deterministic{1}, Deterministic{3}},
		[]float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Mean()-2.5) > 1e-12 {
		t.Fatalf("mixture mean = %v, want 2.5", m.Mean())
	}
	checkMean(t, m, 0.02)
}

func TestEmpirical(t *testing.T) {
	if _, err := NewEmpirical(nil); err == nil {
		t.Fatal("empty empirical accepted")
	}
	obs := []float64{5, 1, 3, 2, 4}
	e, err := NewEmpirical(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Mean()-3) > 1e-12 {
		t.Fatalf("empirical mean = %v, want 3", e.Mean())
	}
	if got := e.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := e.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	r := NewRNG(15)
	for i := 0; i < 10000; i++ {
		v := e.Sample(r)
		if v < 1 || v > 5 {
			t.Fatalf("empirical sample %v outside data range", v)
		}
	}
	checkMean(t, e, 0.03)
}

func TestEmpiricalSingle(t *testing.T) {
	e, err := NewEmpirical([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if e.Sample(NewRNG(1)) != 7 {
		t.Fatal("single-point empirical should always return the point")
	}
}

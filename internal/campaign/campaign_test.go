package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"duplexity/internal/telemetry"
)

func baseKey(i int) Key {
	return Key{
		Kind: "test", Model: "m1", Design: "Baseline",
		Workload: fmt.Sprintf("wl%d", i), Spec: "abcd",
		Load: 0.5, Scale: 1.0, Seed: 1,
	}
}

// result is a stand-in campaign cell result with the field shapes the
// experiment harness caches (floats, unsigned counters).
type result struct {
	Index   int     `json:"index"`
	Value   float64 `json:"value"`
	Retired uint64  `json:"retired"`
}

func compute(i int) result {
	// Deterministic but index-dependent, with an awkward float.
	return result{Index: i, Value: 0.1 * float64(i*i+1), Retired: uint64(i) * 1_000_003}
}

func tasksOf(n int, executed *atomic.Int64) []Task[result] {
	tasks := make([]Task[result], n)
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = Task[result]{
			Key: baseKey(i),
			Run: func() (result, error) {
				if executed != nil {
					executed.Add(1)
				}
				return compute(i), nil
			},
		}
	}
	return tasks
}

func TestKeyDigestStableAndSensitive(t *testing.T) {
	k := baseKey(0)
	if k.Digest() != k.Digest() {
		t.Fatal("digest not stable")
	}
	if len(k.Digest()) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(k.Digest()))
	}
	mutations := map[string]Key{}
	add := func(name string, m func(*Key)) {
		mk := baseKey(0)
		m(&mk)
		mutations[name] = mk
	}
	add("kind", func(k *Key) { k.Kind = "other" })
	add("model", func(k *Key) { k.Model = "m2" })
	add("design", func(k *Key) { k.Design = "SMT" })
	add("workload", func(k *Key) { k.Workload = "x" })
	add("spec", func(k *Key) { k.Spec = "dcba" })
	add("load", func(k *Key) { k.Load = 0.7 })
	add("scale", func(k *Key) { k.Scale = 0.05 })
	add("seed", func(k *Key) { k.Seed = 2 })
	seen := map[string]string{k.Digest(): "base"}
	for name, mk := range mutations {
		d := mk.Digest()
		if prev, dup := seen[d]; dup {
			t.Errorf("mutating %s collided with %s", name, prev)
		}
		seen[d] = name
	}
}

func TestDigestOfDistinguishesTypes(t *testing.T) {
	type a struct{ MeanVal float64 }
	type b struct{ MeanVal float64 }
	if DigestOf(a{1000}) == DigestOf(b{1000}) {
		t.Fatal("DigestOf ignores concrete type")
	}
	if DigestOf(a{1000}) != DigestOf(a{1000}) {
		t.Fatal("DigestOf not stable")
	}
	if DigestOf(a{1000}) == DigestOf(a{1001}) {
		t.Fatal("DigestOf ignores field values")
	}
}

// TestRunDeterministicAcrossWorkers is the engine-level half of the
// determinism guarantee: identical results in identical (submission)
// order at any worker count.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	want := make([]result, 40)
	for i := range want {
		want[i] = compute(i)
	}
	for _, workers := range []int{1, 3, 8} {
		e, err := New(Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Run(e, tasksOf(40, nil))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: results differ from sequential", workers)
		}
	}
}

func TestDefaultWorkers(t *testing.T) {
	e, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() < 1 {
		t.Fatalf("default workers = %d", e.Workers())
	}
}

func TestCacheColdWarmByteIdentical(t *testing.T) {
	dir := t.TempDir()
	var executed atomic.Int64

	cold, err := New(Options{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Run(cold, tasksOf(10, &executed))
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 10 {
		t.Fatalf("cold run executed %d cells, want 10", got)
	}
	cs := cold.Stats()
	if cs.Hits != 0 || cs.Misses != 10 || cs.Cells != 10 || cs.PriorCells != 0 {
		t.Fatalf("cold stats %+v", cs)
	}

	warm, err := New(Options{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(warm, tasksOf(10, &executed))
	if err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 10 {
		t.Fatalf("warm run re-simulated: %d executions total, want 10", got)
	}
	ws := warm.Stats()
	if ws.Hits != 10 || ws.Misses != 0 || ws.PriorCells != 10 || ws.HitRate != 1.0 {
		t.Fatalf("warm stats %+v", ws)
	}

	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("warm results not byte-identical:\ncold %s\nwarm %s", b1, b2)
	}

	// Journal recorded both passes, misses then hits.
	entries, err := ReadJournal(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 20 {
		t.Fatalf("journal has %d entries, want 20", len(entries))
	}
	cached := 0
	for _, e := range entries {
		if e.Cached {
			cached++
		}
		if e.Digest == "" || e.Kind != "test" {
			t.Fatalf("bad journal entry %+v", e)
		}
	}
	if cached != 10 {
		t.Fatalf("journal cached entries = %d, want 10", cached)
	}
}

func TestDigestChangeResimulates(t *testing.T) {
	dir := t.TempDir()
	var executed atomic.Int64
	e1, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e1, tasksOf(5, &executed)); err != nil {
		t.Fatal(err)
	}

	// Same cells under a bumped model version: every digest changes, so
	// everything re-simulates.
	e2, err := New(Options{Workers: 2, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tasks := tasksOf(5, &executed)
	for i := range tasks {
		tasks[i].Key.Model = "m2"
	}
	if _, err := Run(e2, tasks); err != nil {
		t.Fatal(err)
	}
	if got := executed.Load(); got != 10 {
		t.Fatalf("model bump: %d executions total, want 10 (5 cold + 5 invalidated)", got)
	}
	if s := e2.Stats(); s.Hits != 0 || s.Misses != 5 {
		t.Fatalf("stats after model bump: %+v", s)
	}
}

// TestResumeAfterFailure is the checkpoint/resume contract: a batch
// that dies mid-campaign keeps its finished cells, and the retry only
// simulates what is missing.
func TestResumeAfterFailure(t *testing.T) {
	dir := t.TempDir()
	var executed atomic.Int64
	boom := errors.New("cell exploded")

	tasks := tasksOf(12, &executed)
	failing := tasks[7].Run
	tasks[7].Run = func() (result, error) { return result{}, boom }

	e1, err := New(Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(e1, tasks); !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	done := executed.Load() // cells finished before the failure (7 with workers=1)
	if done == 0 || done >= 12 {
		t.Fatalf("partial run executed %d cells", done)
	}

	// "Fix the bug" and resume: only the unfinished cells simulate.
	tasks[7].Run = failing
	e2, err := New(Options{Workers: 4, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(e2, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if total := executed.Load(); total != 12 {
		t.Fatalf("resume re-simulated finished cells: %d executions total, want 12", total)
	}
	s := e2.Stats()
	if int64(s.Hits) != done || s.Hits+s.Misses != 12 {
		t.Fatalf("resume stats %+v (prior done = %d)", s, done)
	}
	for i := range got {
		if got[i] != compute(i) {
			t.Fatalf("cell %d: %+v != %+v", i, got[i], compute(i))
		}
	}
}

func TestErrorIsLowestIndex(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	tasks := tasksOf(10, nil)
	tasks[3].Run = func() (result, error) { return result{}, errB }
	tasks[2].Run = func() (result, error) { return result{}, errA }
	for _, workers := range []int{1, 8} {
		e, err := New(Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(e, tasks)
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: error = %v, want lowest-index %v", workers, err, errA)
		}
		if !strings.Contains(err.Error(), "wl2") {
			t.Fatalf("error %q does not name the failing cell", err)
		}
	}
}

func TestJournalToleratesTornLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j := NewJournal(path)
	if err := j.Append(JournalEntry{Seq: 1, Digest: "d1", Kind: "test"}); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"digest":"d2","ki`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	entries, err := ReadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Digest != "d1" {
		t.Fatalf("entries = %+v, want the one complete line", entries)
	}
}

func TestCorruptCacheEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	var executed atomic.Int64
	e1, err := New(Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tasks := tasksOf(1, &executed)
	if _, err := Run(e1, tasks); err != nil {
		t.Fatal(err)
	}
	// Corrupt the entry on disk.
	digest := tasks[0].Key.Digest()
	if err := os.WriteFile(filepath.Join(dir, digest+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	e2, err := New(Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Run(e2, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if executed.Load() != 2 {
		t.Fatalf("corrupt entry not re-simulated (%d executions)", executed.Load())
	}
	if got[0] != compute(0) {
		t.Fatalf("recomputed cell wrong: %+v", got[0])
	}
	// And the overwrite healed the cache.
	if _, ok := e2.cache.Get(digest); !ok {
		t.Fatal("recomputed entry not written back")
	}
}

func TestCacheLenCountsOnlyEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put("aa", Entry{Key: baseKey(0), Result: json.RawMessage(`1`)}); err != nil {
		t.Fatal(err)
	}
	if err := NewJournal(c.JournalPath()).Append(JournalEntry{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "put-123.tmp"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := c.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("Len = %d, want 1 (journal and temp excluded)", n)
	}
}

// fakeRemote is a scriptable Remote: it answers from a prepared entry
// table or returns a fixed error, counting calls either way.
type fakeRemote struct {
	entries map[string]Entry // digest -> entry
	cached  bool             // reported "worker cache hit" flag
	err     error
	calls   atomic.Int64
}

func (f *fakeRemote) Exec(k Key, tr *telemetry.CellTrace) (Entry, bool, error) {
	f.calls.Add(1)
	if f.err != nil {
		return Entry{}, false, f.err
	}
	e, ok := f.entries[k.Digest()]
	if !ok {
		return Entry{}, false, fmt.Errorf("fakeRemote: no entry for %s", k.Digest())
	}
	return e, f.cached, nil
}

func remoteEntryFor(i int, wall float64) Entry {
	raw, err := json.Marshal(compute(i))
	if err != nil {
		panic(err)
	}
	return Entry{Key: baseKey(i), WallSeconds: wall, Result: raw}
}

func TestRemoteExecutesAndCachesLocally(t *testing.T) {
	dir := t.TempDir()
	k := baseKey(0)
	rem := &fakeRemote{entries: map[string]Entry{k.Digest(): remoteEntryFor(0, 1.5)}}
	e, err := New(Options{Workers: 1, CacheDir: dir, Remote: rem})
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	task := Task[result]{Key: k, Run: func() (result, error) {
		executed.Add(1)
		return compute(0), nil
	}}
	r, cached, err := Do(e, task)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("remote miss reported as cached")
	}
	if r != compute(0) {
		t.Fatalf("remote result wrong: %+v", r)
	}
	if executed.Load() != 0 {
		t.Fatal("local Run executed despite healthy remote")
	}
	if rem.calls.Load() != 1 {
		t.Fatalf("remote called %d times, want 1", rem.calls.Load())
	}
	// The remote entry landed in the local cache verbatim.
	ent, ok := e.cache.GetEntry(k.Digest())
	if !ok {
		t.Fatal("remote entry not written to local cache")
	}
	if ent.WallSeconds != 1.5 || !reflect.DeepEqual(ent.Key, k) {
		t.Fatalf("local entry differs from remote envelope: %+v", ent)
	}
	// A second resolution hits the local cache, never the remote.
	if _, cached, err := Do(e, task); err != nil || !cached {
		t.Fatalf("second Do: cached=%v err=%v, want local hit", cached, err)
	}
	if rem.calls.Load() != 1 {
		t.Fatalf("remote consulted again after local cache warm (%d calls)", rem.calls.Load())
	}
	sum := e.Stats()
	if sum.Remote != 1 || sum.Misses != 1 || sum.Hits != 1 {
		t.Fatalf("stats remote=%d misses=%d hits=%d, want 1/1/1", sum.Remote, sum.Misses, sum.Hits)
	}
	if sum.SimWallSeconds != 1.5 {
		t.Fatalf("sim wall %v, want the worker's 1.5", sum.SimWallSeconds)
	}
}

func TestRemoteWorkerCacheHitCountsAsHit(t *testing.T) {
	k := baseKey(3)
	rem := &fakeRemote{entries: map[string]Entry{k.Digest(): remoteEntryFor(3, 0)}, cached: true}
	e, err := New(Options{Workers: 1, Remote: rem})
	if err != nil {
		t.Fatal(err)
	}
	_, cached, err := Do(e, Task[result]{Key: k, Run: func() (result, error) { return compute(3), nil }})
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("worker cache hit not surfaced as cached")
	}
	sum := e.Stats()
	if sum.Hits != 1 || sum.Remote != 1 {
		t.Fatalf("stats hits=%d remote=%d, want 1/1", sum.Hits, sum.Remote)
	}
}

func TestRemoteFailureFallsBackLocally(t *testing.T) {
	rem := &fakeRemote{err: errors.New("fleet down")}
	e, err := New(Options{Workers: 1, CacheDir: t.TempDir(), Remote: rem})
	if err != nil {
		t.Fatal(err)
	}
	var executed atomic.Int64
	r, cached, err := Do(e, Task[result]{Key: baseKey(7), Run: func() (result, error) {
		executed.Add(1)
		return compute(7), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if cached || r != compute(7) || executed.Load() != 1 {
		t.Fatalf("fallback wrong: cached=%v r=%+v executed=%d", cached, r, executed.Load())
	}
}

func TestRemoteFailureWithoutRunBodyErrors(t *testing.T) {
	rem := &fakeRemote{err: errors.New("fleet down")}
	e, err := New(Options{Workers: 1, Remote: rem})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.DoRaw(baseKey(9), nil); err == nil {
		t.Fatal("uncomputable cell with dead remote should error")
	}
}

package queueing

import (
	"math"
	"testing"

	"duplexity/internal/idle"
	"duplexity/internal/stats"
)

func mustGov(t *testing.T, name string) idle.Governor {
	t.Helper()
	g, ok := idle.ByName(name)
	if !ok {
		t.Fatalf("unknown governor %q", name)
	}
	return g
}

// Conservation invariant: every simulated microsecond is either busy
// (service + charged wake) or inside exactly one idle interval, so
// Utilization + IdleFraction == 1 to float tolerance — with or without
// a governor, at any load, for any service distribution.
func TestIdleConservation(t *testing.T) {
	govNames := append([]string{""}, idle.Names()...)
	dists := map[string]stats.Distribution{
		"exp":    stats.Exponential{MeanVal: 10},
		"lognrm": stats.Lognormal{MeanVal: 10, CV: 2},
	}
	for _, govName := range govNames {
		for distName, dist := range dists {
			for _, load := range []float64{0.1, 0.5, 0.9} {
				cfg := Config{
					ArrivalQPS:  load * 100_000,
					ServiceUs:   dist,
					MinRequests: 2000,
					MaxRequests: 20_000,
					Seed:        11,
				}
				if govName != "" {
					cfg.IdleGov = mustGov(t, govName)
				}
				res, err := Simulate(cfg)
				if err != nil {
					t.Fatalf("gov=%q dist=%s load=%v: %v", govName, distName, load, err)
				}
				if gap := math.Abs(res.Utilization + res.IdleFraction - 1); gap > 1e-6 {
					t.Errorf("gov=%q dist=%s load=%v: util %v + idle %v misses 1 by %v",
						govName, distName, load, res.Utilization, res.IdleFraction, gap)
				}
				if res.SimulatedUs <= 0 || res.IdleIntervals <= 0 {
					t.Errorf("gov=%q dist=%s load=%v: degenerate span %v / intervals %d",
						govName, distName, load, res.SimulatedUs, res.IdleIntervals)
				}
				if govName == "" {
					if res.Idle != nil || res.WakeChargedUs != 0 {
						t.Errorf("dist=%s load=%v: idle accounting leaked into governor-free run", distName, load)
					}
					continue
				}
				sum := res.Idle
				if sum == nil {
					t.Fatalf("gov=%q: no idle summary", govName)
				}
				if err := sum.Validate(); err != nil {
					t.Errorf("gov=%q dist=%s load=%v: %v", govName, distName, load, err)
				}
				if sum.Governor != govName {
					t.Errorf("summary governor %q, want %q", sum.Governor, govName)
				}
				// The summary and the Result must agree on every shared total.
				wantIdleUs := res.IdleFraction * res.SimulatedUs
				if math.Abs(sum.IdleUs-wantIdleUs) > 1e-6*(1+wantIdleUs) {
					t.Errorf("gov=%q: summary idle %v µs, result says %v", govName, sum.IdleUs, wantIdleUs)
				}
				if int(sum.Intervals) != res.IdleIntervals {
					t.Errorf("gov=%q: summary intervals %d, result %d", govName, sum.Intervals, res.IdleIntervals)
				}
				if math.Abs(sum.WakeUs-res.WakeChargedUs) > 1e-9*(1+sum.WakeUs) {
					t.Errorf("gov=%q: summary wake %v, result %v", govName, sum.WakeUs, res.WakeChargedUs)
				}
				if got := res.MeanIdleUs * float64(res.IdleIntervals); math.Abs(got-sum.IdleUs) > 1e-6*(1+sum.IdleUs) {
					t.Errorf("gov=%q: mean idle %v × %d intervals = %v, want %v",
						govName, res.MeanIdleUs, res.IdleIntervals, got, sum.IdleUs)
				}
			}
		}
	}
}

// The paper's core argument against core parking: a deep C-state saves
// idle power but its exit latency lands on the request that ends the
// idle interval, fattening the tail.
func TestDeepIdleFattensTail(t *testing.T) {
	run := func(gov string) Result {
		cfg := Config{
			ArrivalQPS:  50_000,
			ServiceUs:   stats.Exponential{MeanVal: 10},
			MinRequests: 20_000,
			MaxRequests: 100_000,
			Seed:        4,
		}
		if gov != "" {
			cfg.IdleGov = mustGov(t, gov)
		}
		res, err := Simulate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base, shallow, deep := run(""), run(idle.GovShallow), run(idle.GovDeep)
	// Same seed, same sample path: wake charging only ever delays, so the
	// ordering is deterministic, and C6's 40µs exit (vs C1's 1µs) must be
	// visible in the 99th percentile, not just the mean.
	if !(shallow.P99Us >= base.P99Us) {
		t.Errorf("shallow wake lowered p99: %v < %v", shallow.P99Us, base.P99Us)
	}
	if deep.P99Us < shallow.P99Us+10 {
		t.Errorf("deep idle did not fatten the tail: p99 %v vs shallow %v", deep.P99Us, shallow.P99Us)
	}
	if deep.WakeChargedUs <= shallow.WakeChargedUs {
		t.Errorf("deep charged %v µs wake, shallow %v", deep.WakeChargedUs, shallow.WakeChargedUs)
	}
	// At a 10µs mean inter-idle gap, C6 residency is mostly transition
	// time: the conservation split must still attribute all of it.
	for _, st := range deep.Idle.States {
		if st.Name != "C6" {
			t.Errorf("deep governor entered %s", st.Name)
		}
	}
}

// The fill pseudo-state models Duplexity: idle time is spent running
// filler-threads at full power, with only the morph/restart latencies
// as transition cost.
func TestFillGovernorResidency(t *testing.T) {
	res, err := Simulate(Config{
		ArrivalQPS:  50_000,
		ServiceUs:   stats.Exponential{MeanVal: 10},
		IdleGov:     mustGov(t, idle.GovFill),
		MinRequests: 10_000,
		MaxRequests: 50_000,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Idle.States) != 1 || res.Idle.States[0].Name != "C0-fill" {
		t.Fatalf("fill governor states: %+v", res.Idle.States)
	}
	st := res.Idle.States[0]
	if st.FillIPC != 2.0 || st.PowerFrac != 1 {
		t.Fatalf("fill state lost its character: IPC %v power %v", st.FillIPC, st.PowerFrac)
	}
	if st.ResidencyUs <= 0 {
		t.Fatal("no harvestable fill residency at 50% load")
	}
	// Sub-µs morph + restart: the tail penalty must be far below C1's.
	shallow, err := Simulate(Config{
		ArrivalQPS:  50_000,
		ServiceUs:   stats.Exponential{MeanVal: 10},
		IdleGov:     mustGov(t, idle.GovShallow),
		MinRequests: 10_000,
		MaxRequests: 50_000,
		Seed:        4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WakeChargedUs >= shallow.WakeChargedUs {
		t.Errorf("fill charged %v µs wake, not below shallow's %v", res.WakeChargedUs, shallow.WakeChargedUs)
	}
}

package cpu

import (
	"fmt"

	"duplexity/internal/bpred"
	"duplexity/internal/isa"
	"duplexity/internal/memsys"
	"duplexity/internal/telemetry"
)

// FetchPolicy selects which thread fetches each cycle on an SMT core.
type FetchPolicy int

// Fetch policies.
const (
	// FetchICount picks the thread with the fewest in-flight instructions
	// (Tullsen's ICOUNT, used by the SMT design point).
	FetchICount FetchPolicy = iota
	// FetchRoundRobin rotates threads.
	FetchRoundRobin
)

type robState uint8

const (
	robWaiting robState = iota
	robIssued
	robDone
)

// robEntry is one in-flight instruction.
type robEntry struct {
	seq        uint64
	in         isa.Instr
	state      robState
	completeAt uint64
	// producer links: the ROB positions (and seqs, for liveness checks)
	// of the instructions producing this entry's sources.
	prod [2]prodLink
	// resource flags for refunds.
	hasPhys, inLQ, inSQ bool
	mispredicted        bool
}

type prodLink struct {
	valid bool
	pos   int // ring index within the same thread's ROB
	seq   uint64
}

// oooThread is one hardware context of the OoO engine.
type oooThread struct {
	stream isa.Stream

	// rob is a ring buffer; head is the oldest entry.
	rob        []robEntry
	head, size int
	nextSeq    uint64

	// regProducer maps each architectural register to the ROB position of
	// its latest in-flight writer.
	regProducer [isa.NumArchRegs]prodLink

	// fetchBuf is consumed from fetchHead (a ring-head index, so the
	// steady-state pop does not shed backing-array capacity the way
	// re-slicing with [1:] would — dispatch pops every cycle, and the
	// lost capacity would force an allocation every few instructions).
	fetchBuf  []isa.Instr
	fetchHead int
	// replay holds squashed-but-not-retired instructions that must be
	// re-fetched in program order before pulling from the stream again
	// (a stream is a consuming generator, so squashed work would
	// otherwise be silently lost). Consumed from replayHead; squashBuf
	// is the double-buffer SquashYoungerThanRemote rebuilds into, so
	// steady-state morph churn does not allocate.
	replay        []isa.Instr
	replayHead    int
	squashBuf     []isa.Instr
	fetchResumeAt uint64
	fetchBlocked  bool // fetch disabled until mispredicted branch resolves
	// pendingMispredict marks that the last fetch-buffer entry is a
	// mispredicted branch whose ROB entry must carry the flag.
	pendingMispredict bool
	lastLine          uint64
	fetchHalted       bool // controller-requested fetch stop (morphing)

	iqCount, lqCount, sqCount, physCount int

	// minCompleteAt lower-bounds the earliest completion time of any
	// issued-but-not-done entry (NoEvent when none): complete() skips its
	// ROB scan until the bound elapses, and NextEvent uses it directly.
	// The bound may be stale-low after a squash (harmless: one spurious
	// scan recomputes it), never stale-high.
	minCompleteAt uint64

	// noReady memoizes "a full issue scan found no ready waiting entry",
	// letting issue() and NextEvent skip the O(ROB) readiness scan on the
	// cycles a µs-scale stall pins the in-order window. Readiness is a
	// pure function of producer done-ness, so it can only appear at a
	// completion (complete clears the memo when any entry turns done), a
	// dispatch (a new entry may have no live producers), or a squash
	// (cleared conservatively). Clearing is always safe: it re-pays one
	// scan.
	noReady bool

	Stats ThreadStats
}

func (t *oooThread) inflight() int { return t.size + t.fetchLen() }

// fetchLen returns the fetch-buffer occupancy.
func (t *oooThread) fetchLen() int { return len(t.fetchBuf) - t.fetchHead }

// popFetch removes and returns the oldest fetch-buffer entry.
func (t *oooThread) popFetch() isa.Instr {
	in := t.fetchBuf[t.fetchHead]
	t.fetchHead++
	if t.fetchHead == len(t.fetchBuf) {
		t.fetchBuf = t.fetchBuf[:0]
		t.fetchHead = 0
	}
	return in
}

// pushFetch appends to the fetch buffer, compacting the consumed head
// region instead of growing the backing array.
func (t *oooThread) pushFetch(in isa.Instr) {
	if len(t.fetchBuf) == cap(t.fetchBuf) && t.fetchHead > 0 {
		n := copy(t.fetchBuf, t.fetchBuf[t.fetchHead:])
		t.fetchBuf = t.fetchBuf[:n]
		t.fetchHead = 0
	}
	t.fetchBuf = append(t.fetchBuf, in)
}

// replayLen returns the number of pending replay instructions.
func (t *oooThread) replayLen() int { return len(t.replay) - t.replayHead }

// robAt returns the entry at ring offset i from head (0 = oldest).
func (t *oooThread) robAt(i int) *robEntry { return &t.rob[(t.head+i)%len(t.rob)] }

// OoOCore is the 4-wide out-of-order superscalar engine from Table I,
// supporting one or more SMT threads with ICOUNT fetch, optional SMT+
// prioritization/partitioning, and the controller hooks the master-core
// uses for morphing (fetch halt, squash-younger, drain detection).
type OoOCore struct {
	cfg   PipelineConfig
	iport *memsys.Port
	dport *memsys.Port
	pred  *bpred.Unit

	threads []*oooThread
	rrPtr   int
	// orderBuf is the scratch slice issue and fetch build their
	// thread-priority order in each cycle (capacity len(threads), so the
	// per-cycle ordering never allocates in steady state).
	orderBuf []int

	Stats CoreStats

	// OnRemote is consulted when a remote op issues. RemoteBlock keeps
	// the thread resident (default); RemoteHandled leaves handling to the
	// controller, which typically squashes younger work and morphs.
	OnRemote func(tid int, in isa.Instr, completeAt uint64) RemoteAction
	// OnRequestEnd fires when an EndOfRequest instruction commits.
	OnRequestEnd func(tid int, now uint64)

	// Telemetry, when non-nil, receives stall and cache-miss events.
	// Every emission site is guarded by a nil check, so uninstrumented
	// runs pay one predictable branch.
	Telemetry telemetry.Sink
	// TelemetrySrc tags emitted events with the owning component.
	TelemetrySrc uint8
}

// NewOoOCore builds an out-of-order core running the given streams as SMT
// threads (len(streams) == 1 gives the single-threaded Baseline).
func NewOoOCore(cfg PipelineConfig, streams []isa.Stream, iport, dport *memsys.Port, pred *bpred.Unit) (*OoOCore, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(streams) == 0 {
		return nil, fmt.Errorf("cpu: OoO core needs at least one thread")
	}
	if err := iport.Validate(); err != nil {
		return nil, err
	}
	if err := dport.Validate(); err != nil {
		return nil, err
	}
	c := &OoOCore{cfg: cfg, iport: iport, dport: dport, pred: pred}
	// Partition the ROB among threads. SMT+ gives the priority thread the
	// complement of the co-runner cap.
	n := len(streams)
	for i, s := range streams {
		share := cfg.ROBEntries / n
		if cfg.PriorityThread >= 0 && n > 1 {
			if i == cfg.PriorityThread {
				share = int(float64(cfg.ROBEntries) * (1 - cfg.StorageCapFrac))
			} else {
				share = int(float64(cfg.ROBEntries) * cfg.StorageCapFrac / float64(n-1))
			}
		}
		if share < 4 {
			share = 4
		}
		c.threads = append(c.threads, &oooThread{
			stream:        s,
			rob:           make([]robEntry, share),
			fetchBuf:      make([]isa.Instr, 0, cfg.FetchBufEntries),
			lastLine:      ^uint64(0),
			minCompleteAt: NoEvent,
		})
	}
	c.orderBuf = make([]int, 0, len(c.threads))
	return c, nil
}

// Config returns the core's configuration.
func (c *OoOCore) Config() PipelineConfig { return c.cfg }

// Threads returns the number of hardware threads.
func (c *OoOCore) Threads() int { return len(c.threads) }

// ThreadStats returns thread t's statistics.
func (c *OoOCore) ThreadStats(t int) *ThreadStats { return &c.threads[t].Stats }

// storage caps for shared structures (IQ/LQ/SQ) under SMT+.
func (c *OoOCore) capFor(tid, capacity int) int {
	if c.cfg.PriorityThread < 0 || len(c.threads) == 1 {
		return capacity
	}
	if tid == c.cfg.PriorityThread {
		return capacity
	}
	cap30 := int(float64(capacity) * c.cfg.StorageCapFrac)
	if cap30 < 1 {
		cap30 = 1
	}
	return cap30
}

func (c *OoOCore) sharedIQ() int {
	n := 0
	for _, t := range c.threads {
		n += t.iqCount
	}
	return n
}

func (c *OoOCore) sharedLQ() int {
	n := 0
	for _, t := range c.threads {
		n += t.lqCount
	}
	return n
}

func (c *OoOCore) sharedSQ() int {
	n := 0
	for _, t := range c.threads {
		n += t.sqCount
	}
	return n
}

func (c *OoOCore) sharedPhys() int {
	n := 0
	for _, t := range c.threads {
		n += t.physCount
	}
	return n
}

// Step simulates one cycle at global time now.
func (c *OoOCore) Step(now uint64) {
	c.Stats.Cycles++
	c.commit(now)
	c.complete(now)
	c.issue(now)
	c.dispatch(now)
	c.fetch(now)
}

// commit retires up to Width done instructions, round-robin over threads,
// in order within each thread.
func (c *OoOCore) commit(now uint64) {
	budget := c.cfg.Width
	n := len(c.threads)
	start := c.rrPtr
	for k := 0; k < n && budget > 0; k++ {
		tid := (start + k) % n
		t := c.threads[tid]
		for budget > 0 && t.size > 0 {
			e := t.robAt(0)
			if e.state != robDone || e.completeAt > now {
				break
			}
			c.refund(t, e)
			t.head = (t.head + 1) % len(t.rob)
			t.size--
			t.Stats.Retired++
			c.Stats.TotalRetired++
			budget--
			if e.in.EndOfRequest {
				t.Stats.RequestsCompleted++
				if c.OnRequestEnd != nil {
					c.OnRequestEnd(tid, now)
				}
			}
		}
	}
}

func (c *OoOCore) refund(t *oooThread, e *robEntry) {
	if e.hasPhys {
		t.physCount--
		e.hasPhys = false
	}
	if e.inLQ {
		t.lqCount--
		e.inLQ = false
	}
	if e.inSQ {
		t.sqCount--
		e.inSQ = false
	}
	if e.state == robWaiting {
		t.iqCount--
	}
}

// complete marks issued instructions whose latency elapsed as done and
// resumes fetch after mispredicted branches resolve. The per-thread
// minCompleteAt bound skips the ROB scan on cycles where no issued entry
// can cross its completion time (the scan is exact, so gating it on the
// bound changes nothing observable).
func (c *OoOCore) complete(now uint64) {
	for _, t := range c.threads {
		if t.minCompleteAt > now {
			continue
		}
		next := uint64(NoEvent)
		for i := 0; i < t.size; i++ {
			e := t.robAt(i)
			if e.state != robIssued {
				continue
			}
			if e.completeAt <= now {
				e.state = robDone
				t.noReady = false // a finished producer may wake waiters
				if e.mispredicted && t.fetchBlocked {
					t.fetchBlocked = false
					t.fetchResumeAt = now + uint64(c.cfg.MispredictPenalty)
				}
			} else if e.completeAt < next {
				next = e.completeAt
			}
		}
		t.minCompleteAt = next
	}
}

// ready reports whether entry e's sources are produced.
func (c *OoOCore) ready(t *oooThread, e *robEntry) bool {
	for _, p := range e.prod {
		if !p.valid {
			continue
		}
		pe := &t.rob[p.pos]
		if pe.seq == p.seq && pe.state != robDone {
			return false
		}
	}
	return true
}

// issue selects up to Width ready waiting instructions, oldest first, with
// per-FU structural limits. SMT+ issues the priority thread's ready
// instructions first.
func (c *OoOCore) issue(now uint64) {
	total := c.cfg.Width
	ldst, fp, mul, ialu := c.cfg.LdStPorts, c.cfg.FPUs, c.cfg.Muls, c.cfg.IntALUs

	order := c.orderBuf[:0]
	if c.cfg.PriorityThread >= 0 && c.cfg.PriorityThread < len(c.threads) {
		order = append(order, c.cfg.PriorityThread)
		for i := range c.threads {
			if i != c.cfg.PriorityThread {
				order = append(order, i)
			}
		}
	} else {
		start := c.rrPtr
		c.rrPtr = (c.rrPtr + 1) % len(c.threads)
		for k := range c.threads {
			order = append(order, (start+k)%len(c.threads))
		}
	}

	for _, tid := range order {
		t := c.threads[tid]
		if total == 0 {
			break
		}
		if t.iqCount == 0 {
			continue // no waiting entries: the scan below would find nothing
		}
		if t.noReady {
			continue // memoized: no waiting entry is ready (oooThread.noReady)
		}
		anyReady := false
		fullScan := true
		for i := 0; i < t.size; i++ {
			if total == 0 {
				fullScan = false
				break
			}
			e := t.robAt(i)
			if e.state != robWaiting || !c.ready(t, e) {
				continue
			}
			anyReady = true
			switch e.in.Op {
			case isa.OpLoad, isa.OpStore, isa.OpRemote:
				if ldst == 0 {
					continue
				}
			case isa.OpPark:
				// Parking needs no functional unit.
			case isa.OpFPAlu:
				if fp == 0 {
					continue
				}
			case isa.OpIntMul:
				if mul == 0 {
					continue
				}
			default:
				if ialu == 0 {
					continue
				}
			}
			// Issue.
			e.state = robIssued
			t.iqCount--
			total--
			c.Stats.IssueSlotsUsed++
			switch e.in.Op {
			case isa.OpLoad:
				ldst--
				lat := uint64(c.dport.Access(now, e.in.Addr, false))
				e.completeAt = now + lat
				if c.Telemetry != nil && lat >= memsys.LLCHitLat {
					c.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvCacheMiss,
						Src: c.TelemetrySrc, A: lat, B: uint64(tid)})
				}
			case isa.OpStore:
				ldst--
				c.dport.Access(now, e.in.Addr, true)
				e.completeAt = now + LatStore
			case isa.OpRemote:
				ldst--
				t.Stats.Remotes++
				completeAt := now + CyclesFromNs(e.in.RemoteNs, c.cfg.FreqGHz)
				e.completeAt = completeAt
				if c.Telemetry != nil {
					c.Telemetry.Emit(telemetry.Event{Cycle: now, Kind: telemetry.EvMasterStall,
						Src: c.TelemetrySrc, A: completeAt - now, B: uint64(tid)})
				}
				action := RemoteBlock
				if c.OnRemote != nil {
					action = c.OnRemote(tid, e.in, completeAt)
				}
				if action == RemoteBlock {
					// Engine-managed remote: the thread stays resident,
					// blocked on the device for the full latency.
					t.Stats.RemoteStallCycles += completeAt - now
				}
			case isa.OpPark:
				// Wait in place until the poll interval elapses.
				e.completeAt = now + CyclesFromNs(e.in.RemoteNs, c.cfg.FreqGHz)
			case isa.OpFPAlu:
				fp--
				e.completeAt = now + LatFPAlu
			case isa.OpIntMul:
				mul--
				e.completeAt = now + LatIntMul
			case isa.OpBranch:
				ialu--
				e.completeAt = now + LatBranch
			default:
				ialu--
				e.completeAt = now + LatIntAlu
			}
			if e.completeAt < t.minCompleteAt {
				t.minCompleteAt = e.completeAt
			}
		}
		if fullScan && !anyReady {
			// The whole window was examined and nothing is ready (entries
			// blocked only by structural hazards count as ready and keep
			// the memo unset): skip further scans until an invalidation.
			t.noReady = true
		}
	}
}

// dispatch renames and inserts fetched instructions into the ROB/IQ.
func (c *OoOCore) dispatch(now uint64) {
	budget := c.cfg.Width
	n := len(c.threads)
	start := c.rrPtr
	for k := 0; k < n && budget > 0; k++ {
		tid := (start + k) % n
		t := c.threads[tid]
		for budget > 0 && t.fetchLen() > 0 {
			in := t.fetchBuf[t.fetchHead]
			if t.size == len(t.rob) {
				break // per-thread ROB full
			}
			if c.sharedIQ() >= c.cfg.IQEntries || t.iqCount >= c.capFor(tid, c.cfg.IQEntries) {
				break
			}
			needPhys := in.Dst != isa.RegNone
			if needPhys && c.sharedPhys() >= c.cfg.PhysRegs {
				break
			}
			if in.Op == isa.OpLoad || in.Op == isa.OpRemote {
				if c.sharedLQ() >= c.cfg.LQEntries || t.lqCount >= c.capFor(tid, c.cfg.LQEntries) {
					break
				}
			}
			if in.Op == isa.OpStore {
				if c.sharedSQ() >= c.cfg.SQEntries || t.sqCount >= c.capFor(tid, c.cfg.SQEntries) {
					break
				}
			}
			t.popFetch()
			pos := (t.head + t.size) % len(t.rob)
			t.nextSeq++
			e := &t.rob[pos]
			*e = robEntry{seq: t.nextSeq, in: in, state: robWaiting}
			if t.pendingMispredict && t.fetchLen() == 0 {
				e.mispredicted = true
				t.pendingMispredict = false
			}
			// Record producer links before updating the rename map.
			if in.Src1 != isa.RegNone {
				e.prod[0] = t.regProducer[in.Src1]
			}
			if in.Src2 != isa.RegNone {
				e.prod[1] = t.regProducer[in.Src2]
			}
			if needPhys {
				e.hasPhys = true
				t.physCount++
				t.regProducer[in.Dst] = prodLink{valid: true, pos: pos, seq: e.seq}
			}
			if in.Op == isa.OpLoad || in.Op == isa.OpRemote {
				e.inLQ = true
				t.lqCount++
			}
			if in.Op == isa.OpStore {
				e.inSQ = true
				t.sqCount++
			}
			t.iqCount++
			t.size++
			t.noReady = false // the new entry may have no live producers
			budget--
		}
	}
}

// fetch brings instructions into the fetch buffer of the thread selected
// by the fetch policy (ICOUNT by default; priority thread first for SMT+).
func (c *OoOCore) fetch(now uint64) {
	// Select thread order.
	order := c.orderBuf[:0]
	switch {
	case c.cfg.PriorityThread >= 0 && c.cfg.PriorityThread < len(c.threads):
		order = append(order, c.cfg.PriorityThread)
		for i := range c.threads {
			if i != c.cfg.PriorityThread {
				order = append(order, i)
			}
		}
	default:
		// ICOUNT: ascending in-flight count.
		for i := range c.threads {
			order = append(order, i)
		}
		for a := 1; a < len(order); a++ {
			for b := a; b > 0 && c.threads[order[b]].inflight() < c.threads[order[b-1]].inflight(); b-- {
				order[b], order[b-1] = order[b-1], order[b]
			}
		}
	}

	budget := c.cfg.Width
	fetchedAny := false
	for _, tid := range order {
		t := c.threads[tid]
		if budget == 0 {
			break
		}
		if t.fetchHalted || t.fetchBlocked || t.fetchResumeAt > now {
			continue
		}
		for budget > 0 && t.fetchLen() < c.cfg.FetchBufEntries {
			var in isa.Instr
			var ok bool
			if t.replayLen() > 0 {
				in, ok = t.replay[t.replayHead], true
				t.replayHead++
				if t.replayHead == len(t.replay) {
					t.replay = t.replay[:0]
					t.replayHead = 0
				}
			} else {
				in, ok = t.stream.Next(now)
			}
			if !ok {
				if t.inflight() == 0 {
					t.Stats.IdleCycles++
				}
				break
			}
			line := in.PC >> 6
			if line != t.lastLine {
				t.lastLine = line
				ilat := uint64(c.iport.Access(now, in.PC, false))
				if ilat > uint64(c.iport.L1.HitLatency()) {
					t.fetchResumeAt = now + ilat
				}
			}
			t.pushFetch(in)
			budget--
			fetchedAny = true
			if in.Op == isa.OpBranch {
				if c.pred.PredictAndTrain(in) {
					// Stall fetch until this branch resolves (plus the
					// redirect penalty applied in complete()).
					t.fetchBlocked = true
					t.pendingMispredict = true
					break
				}
				if in.Taken {
					break // taken-branch fetch break
				}
			}
			if t.fetchResumeAt > now {
				break
			}
		}
	}
	if !fetchedAny {
		c.Stats.FetchStallCycles++
	}
}

// Run steps the core for n cycles starting at cycle start and returns the
// next cycle value (start+n). Quiescent spans — every thread stalled on a
// long-latency completion or an empty stream — are fast-forwarded via
// NextEvent/SkipCycles; the result is bit-identical to n plain Steps.
func (c *OoOCore) Run(start, n uint64) uint64 {
	end := start + n
	now := start
	for now < end {
		if c.maybeQuiescent() {
			if ev := c.NextEvent(now); ev > now+1 {
				target := ev
				if target > end {
					target = end
				}
				c.SkipCycles(now, target-now)
				now = target
				continue
			}
		}
		c.Step(now)
		now++
	}
	return end
}

package duplexity

// End-to-end telemetry tests: a real Duplexity dyad run with the ring
// sink attached, checking the invariants the event stream promises —
// balanced borrow/evict pairs, reconstructible request spans, a
// parseable manifest with the required counters and histograms, and
// deterministic windowed snapshots across identical runs.

import (
	"bytes"
	"path/filepath"
	"testing"

	"duplexity/internal/core"
	"duplexity/internal/telemetry"
)

func e2eDyad(t *testing.T, seed uint64) *Dyad {
	t.Helper()
	spec := McRouter()
	master, err := spec.NewMaster(0.5, DesignDuplexity.FreqGHz(), seed)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDyad(DyadConfig{
		Design:       DesignDuplexity,
		MasterStream: master,
		BatchStreams: BatchSet(32, seed+4),
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestE2EBorrowEvictBalanced runs a dyad and checks that, per source,
// FillerBorrow events exceed FillerEvict events by exactly the number of
// contexts still bound — every borrow is eventually matched by an evict.
func TestE2EBorrowEvictBalanced(t *testing.T) {
	d := e2eDyad(t, 1)
	ring := NewTelemetryRing(1 << 20)
	d.EnableTelemetry(ring)
	d.Run(400_000)

	if ring.Dropped() > 0 {
		t.Fatalf("ring dropped %d events; enlarge the capacity for this test", ring.Dropped())
	}
	borrows := map[uint8]uint64{}
	evicts := map[uint8]uint64{}
	for _, e := range ring.Events() {
		switch e.Kind {
		case telemetry.EvFillerBorrow:
			borrows[e.Src]++
		case telemetry.EvFillerEvict:
			evicts[e.Src]++
		}
	}
	if borrows[telemetry.SrcLender] == 0 {
		t.Fatal("no lender-side borrows observed")
	}
	if diff := borrows[telemetry.SrcLender] - evicts[telemetry.SrcLender]; diff != uint64(d.Lender.BoundCount()) {
		t.Errorf("lender borrow-evict diff %d != bound count %d", diff, d.Lender.BoundCount())
	}

	fillerBound := uint64(0)
	fc := d.Master.FillerCore()
	for i := 0; i < fc.Slots(); i++ {
		if fc.Slot(i).Active() {
			fillerBound++
		}
	}
	if diff := borrows[telemetry.SrcFiller] - evicts[telemetry.SrcFiller]; diff != fillerBound {
		t.Errorf("filler borrow-evict diff %d != bound count %d", diff, fillerBound)
	}
	// In master mode every filler was evicted, so the diff must be zero.
	if d.Master.Mode() == core.ModeMaster && fillerBound != 0 {
		t.Errorf("mode master but %d filler slots still bound", fillerBound)
	}
}

// TestE2ESpansReconstructible checks that completed requests yield spans
// with consistent arrive/dispatch/complete ordering and that the
// completion-reported latency matches the stamps.
func TestE2ESpansReconstructible(t *testing.T) {
	d := e2eDyad(t, 2)
	ring := NewTelemetryRing(1 << 20)
	d.EnableTelemetry(ring)
	d.Run(600_000)

	spans := RequestSpans(ring.Events())
	if len(spans) == 0 {
		t.Fatal("no request spans reconstructed")
	}
	for _, sp := range spans {
		if sp.Complete == 0 || sp.LatencyCycles == 0 {
			t.Errorf("span %d: incomplete stamps %+v", sp.ID, sp)
		}
		if sp.Arrive != 0 && sp.Complete-sp.Arrive != sp.LatencyCycles {
			t.Errorf("span %d: latency %d != complete-arrive %d",
				sp.ID, sp.LatencyCycles, sp.Complete-sp.Arrive)
		}
		if sp.Dispatch != 0 && sp.Arrive != 0 && sp.Dispatch < sp.Arrive {
			t.Errorf("span %d: dispatched at %d before arrival %d", sp.ID, sp.Dispatch, sp.Arrive)
		}
		for _, w := range sp.Waits {
			if w.Cycle > sp.Complete {
				t.Errorf("span %d: wait event at %d after completion %d", sp.ID, w.Cycle, sp.Complete)
			}
		}
	}
}

// TestE2EManifest builds the full run report the dyadsim CLI writes —
// collected registry, derived histograms, event summary, spans — and
// checks the file round-trips with the required content.
func TestE2EManifest(t *testing.T) {
	d := e2eDyad(t, 3)
	ring := NewTelemetryRing(1 << 20)
	d.EnableTelemetry(ring)
	d.Run(400_000)

	reg := NewTelemetryRegistry()
	d.CollectInto(reg)
	events := ring.Events()
	telemetry.Derive(reg, events)
	spans := RequestSpans(events)
	summary := telemetry.Summarize(ring, len(spans))
	snap := reg.Snapshot(d.Now())

	path := filepath.Join(t.TempDir(), "manifest.json")
	m := &RunManifest{
		Tool: "test", Version: telemetry.ManifestVersion,
		Design: DesignDuplexity.String(), Seed: 3,
		GitDescribe: telemetry.GitDescribe(),
		Cycles:      d.Now(), Snapshot: &snap,
		Events: &summary, Spans: spans,
	}
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := telemetry.ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"master.cycles", "master.total_retired", "master.issue_slots_used",
		"lender.cycles", "filler.cycles", "master.thread0.remote_stall_cycles",
		"pool.steals", "dyad.requests_completed",
	} {
		if _, ok := got.Snapshot.Counters[name]; !ok {
			t.Errorf("manifest missing counter %q", name)
		}
	}
	h, ok := got.Snapshot.Histograms[telemetry.HistRestartAway]
	if !ok {
		t.Fatalf("manifest missing %q histogram", telemetry.HistRestartAway)
	}
	if h.Count == 0 {
		t.Error("master-restart histogram is empty: no restarts in a morphing run?")
	}
	if got.Events.Total == 0 || got.Events.Spans != len(spans) {
		t.Errorf("event summary mismatch: %+v vs %d spans", got.Events, len(spans))
	}
	if got.Snapshot.Counters["master.thread0.remote_stall_cycles"] == 0 {
		t.Error("remote_stall_cycles never charged on a stalling master-thread")
	}
}

// TestE2EWindowDeterminism runs the same seeded simulation twice with
// windowed snapshots and requires byte-identical CSV output: snapshot
// cadence depends only on simulated cycles, never wall clock.
func TestE2EWindowDeterminism(t *testing.T) {
	run := func() []byte {
		d := e2eDyad(t, 4)
		ring := NewTelemetryRing(1 << 18)
		d.EnableTelemetry(ring)
		reg := NewTelemetryRegistry()
		win := reg.Windowed(50_000)
		for d.Now() < 300_000 {
			d.Run(10_000)
			d.CollectInto(reg)
			win.Tick(d.Now())
		}
		var buf bytes.Buffer
		if err := telemetry.WriteCSV(&buf, win.Snaps); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Error("windowed snapshots differ between identical seeded runs")
	}
	if len(a) == 0 || bytes.Count(a, []byte("\n")) < 2 {
		t.Errorf("expected at least header + snapshots, got %d bytes", len(a))
	}
}

package expt

import (
	"encoding/json"
	"fmt"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/queueing"
	"duplexity/internal/stats"
	"duplexity/internal/workload"
)

// The tail cell family content-addresses the Figure 5(d)/5(e) queueing
// stage, which before the two-phase split was recomputed inline on
// every CLI invocation — ~240 BigHouse-style simulations per run even
// with a fully warm cache. A tail cell is the canonical two-phase
// shape: its phase-1 dependencies are the closed-loop "slowdown"
// micro-sims (cache-keyed identically to the legacy Slowdowns()
// campaign, so warm pre-split caches already hold them), and its
// phase-2 result is the queueing simulation over the derived slowdown.

// tailCell is one cached queueing-stage point. Fields are exported for
// exact JSON round-trip through the campaign cache.
type tailCell struct {
	Design    core.Design `json:"design"`
	Workload  string      `json:"workload"`
	Load      float64     `json:"load"`
	LambdaQPS float64     `json:"lambda_qps"`
	P99Us     float64     `json:"p99_us"`
}

// tailKey content-addresses one tail cell. Lambda is always set
// explicitly (even when it equals the workload's nominal QPS at the
// load) so density-scaled Figure 5(e) cells and nominal Figure 5(d)
// cells address the same cache family without collisions.
func (s *Suite) tailKey(design core.Design, spec *workload.Spec, load, lambdaQPS float64) campaign.Key {
	k := s.cellKey(KindTail, design, spec, load, "")
	k.Lambda = lambdaQPS
	return k
}

// slowMicros enumerates the phase-1 micro-sim dependencies of a cell
// whose queueing stage needs the design's frequency-adjusted slowdown:
// the design's own closed-loop measurement and the baseline's, in that
// order. The baseline design needs neither (its slowdown is 1.0 by
// definition), mirroring slowdownFor's short-circuit.
func (s *Suite) slowMicros(design core.Design, spec *workload.Spec) []campaign.MicroTask {
	if design == core.DesignBaseline {
		return nil
	}
	mk := func(d core.Design) campaign.MicroTask {
		return campaign.MicroTask{
			Key: s.cellKey(KindSlowdown, d, spec, 0, ""),
			Run: func() (json.RawMessage, error) {
				v, err := s.measureSlowdown(d, spec)
				if err != nil {
					return nil, err
				}
				return json.Marshal(v)
			},
		}
	}
	return []campaign.MicroTask{mk(design), mk(core.DesignBaseline)}
}

// slowFromMicros derives the frequency-adjusted slowdown from phase-1
// bytes, with exactly the arithmetic every monolithic path uses
// (freqAdjSlowdown), so phase-2 results are byte-identical to
// single-phase cells. The micro order matches slowMicros.
func slowFromMicros(design core.Design, micro []json.RawMessage) (float64, error) {
	if design == core.DesignBaseline {
		return 1.0, nil
	}
	if len(micro) != 2 {
		return 0, fmt.Errorf("expt: %v slowdown needs 2 micro-sims, got %d", design, len(micro))
	}
	var v, base float64
	if err := json.Unmarshal(micro[0], &v); err != nil {
		return 0, fmt.Errorf("expt: decoding %v micro-sim: %w", design, err)
	}
	if err := json.Unmarshal(micro[1], &base); err != nil {
		return 0, fmt.Errorf("expt: decoding baseline micro-sim: %w", err)
	}
	return freqAdjSlowdown(design, v, base), nil
}

// queueTail runs the BigHouse-style queueing stage for one design
// point over an already-derived slowdown. This is the legacy tailP99
// body verbatim — the single-phase inline path, the monolithic cell,
// and the two-phase queue closure all execute this exact code, so all
// three produce identical results.
func (s *Suite) queueTail(design core.Design, spec *workload.Spec, load, lambdaQPS, slow float64) (tailCell, error) {
	if slow == 0 {
		return tailCell{}, fmt.Errorf("expt: no slowdown for %v/%s", design, spec.Name)
	}
	// Per-request master restart overhead applies to requests that arrive
	// while the core is morphed (approximately the idle fraction).
	var extra stats.Distribution
	if r := design.RestartLat(); r > 0 {
		restartUs := float64(r) / (design.FreqGHz() * 1e3)
		extra = stats.Deterministic{Value: restartUs * (1 - load)}
	}
	rho := lambdaQPS * spec.NominalServiceUs * slow / 1e6
	// Common random numbers: all designs at one (workload, load) point
	// share a seed, so normalized tail ratios difference out sampling
	// noise. Sojourn times are autocorrelated at high load, so the CI
	// stopping rule alone is optimistic; a large floor keeps p99 stable.
	cfg := queueing.Config{
		ArrivalQPS:  lambdaQPS,
		ServiceUs:   stats.Scaled{Base: spec.ServiceDist(), Factor: slow},
		ExtraUs:     extra,
		Seed:        s.opts.Seed*131 + uint64(len(spec.Name))*977 + uint64(load*1000),
		MinRequests: 400_000,
		MaxRequests: 3_000_000,
	}
	if rho >= 0.95 {
		// Saturated design point: measure the tail over a finite window,
		// as on real hardware.
		cfg.AllowUnstable = true
		cfg.MaxRequests = int(s.opts.Scale * 400_000)
		if cfg.MaxRequests < 50_000 {
			cfg.MaxRequests = 50_000
		}
	}
	res, err := queueing.Simulate(cfg)
	if err != nil {
		return tailCell{}, err
	}
	return tailCell{
		Design: design, Workload: spec.Name, Load: load,
		LambdaQPS: lambdaQPS, P99Us: res.P99Us,
	}, nil
}

// runTailCell computes one tail cell monolithically: the opaque-cell
// baseline, deriving everything (including the closed-loop micro-sims)
// from the cell's own inputs with no cross-cell sharing. The campaign
// A/B in scripts/bench.sh times this against the two-phase path; it is
// also the local fallback when a fleet remote fails mid-campaign.
func (s *Suite) runTailCell(design core.Design, spec *workload.Spec, load, lambdaQPS float64) (tailCell, error) {
	slow := 1.0
	if design != core.DesignBaseline {
		v, err := s.measureSlowdown(design, spec)
		if err != nil {
			return tailCell{}, err
		}
		base, err := s.measureSlowdown(core.DesignBaseline, spec)
		if err != nil {
			return tailCell{}, err
		}
		slow = freqAdjSlowdown(design, v, base)
	}
	return s.queueTail(design, spec, load, lambdaQPS, slow)
}

// tailTwoPhase builds the two-phase decomposition of one tail cell.
func (s *Suite) tailTwoPhase(design core.Design, spec *workload.Spec, load, lambdaQPS float64) *campaign.TwoPhase {
	return &campaign.TwoPhase{
		Micro: s.slowMicros(design, spec),
		Queue: func(micro []json.RawMessage) (json.RawMessage, error) {
			slow, err := slowFromMicros(design, micro)
			if err != nil {
				return nil, err
			}
			c, err := s.queueTail(design, spec, load, lambdaQPS, slow)
			if err != nil {
				return nil, err
			}
			return json.Marshal(c)
		},
	}
}

// tailTask builds one tail campaign task: two-phase by default,
// monolithic under Options.SinglePhase.
func (s *Suite) tailTask(design core.Design, spec *workload.Spec, load, lambdaQPS float64) campaign.Task[tailCell] {
	t := campaign.Task[tailCell]{
		Key: s.tailKey(design, spec, load, lambdaQPS),
		Run: func() (tailCell, error) { return s.runTailCell(design, spec, load, lambdaQPS) },
	}
	if !s.opts.SinglePhase {
		t.TwoPhase = s.tailTwoPhase(design, spec, load, lambdaQPS)
	}
	return t
}

// tailMatrixTasks enumerates the 105-cell tail campaign — every design
// × workload × Figure 5 load at the workload's nominal arrival rate —
// in canonical (workload, load, design) order so streamed results line
// up with Figure 5(d) rows.
func (s *Suite) tailMatrixTasks() []campaign.Task[tailCell] {
	var tasks []campaign.Task[tailCell]
	for _, spec := range workload.Microservices() {
		for _, load := range Loads {
			lambda := spec.QPSAtLoad(load)
			for _, design := range core.AllDesigns {
				tasks = append(tasks, s.tailTask(design, spec, load, lambda))
			}
		}
	}
	return tasks
}

// TailMatrix runs the 105-cell tail campaign and renders the absolute
// p99 latencies (Figure 5(d) before normalization). Cold, the
// two-phase path computes exactly one closed-loop micro-sim per
// design×workload (35) however many loads fan out from it; the
// single-phase baseline re-measures them inside every cell.
func (s *Suite) TailMatrix() (*Table, error) {
	if s.engErr != nil {
		return nil, s.engErr
	}
	cells, err := campaign.Run(s.eng, s.tailMatrixTasks())
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Tail-latency matrix: absolute p99 (µs) per design × workload × load",
		Columns: designColumns("workload@load"),
		Notes: []string{
			"the Figure 5(d) queueing stage as content-addressed cells: phase-1 slowdown micro-sims shared across loads",
		},
	}
	i := 0
	for _, spec := range workload.Microservices() {
		for _, load := range Loads {
			row := []string{fmt.Sprintf("%s@%d%%", spec.Name, int(load*100))}
			for range core.AllDesigns {
				row = append(row, f1(cells[i].P99Us))
				i++
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// Command duplexityd runs the simulation campaign engine as a
// long-running HTTP/JSON daemon, plus the client tooling to drive it.
//
// Usage:
//
//	duplexityd serve   [-addr a] [-scale f] [-seed n] [-workers n]
//	                   [-cachedir dir] [-resume] [-queue n] [-rps f]
//	                   [-burst n] [-timeout d] [-drain-timeout d]
//	                   [-tracing] [-trace-depth n] [-job-ttl d]
//	                   [-tenant-inflight n] [-tenant-jobs n]
//	                   [-tenant-weights a=2,b=1] [-join url] [-advertise url]
//	duplexityd coordinate [-fleet url1,url2,...] [-addr a] [-scale f]
//	                   [-seed n] [-workers n] [-cachedir dir] [-resume]
//	                   [-queue n] [-rps f] [-burst n] [-timeout d]
//	                   [-drain-timeout d] [-hedge-after d]
//	                   [-heartbeat d] [-evict-after d]
//	                   [-tracing] [-trace-depth n] [-job-ttl d]
//	                   [-tenant-inflight n] [-tenant-jobs n]
//	                   [-tenant-weights a=2,b=1]
//	duplexityd submit  [-addr a] [-campaign] [-kind k] [-designs l]
//	                   [-workloads l] [-loads l] [-governors l]
//	                   [-design d] [-workload w] [-governor g]
//	                   [-load f] [-lambda f] [-timeout-ms n]
//	duplexityd jobs    [-addr a] [-submit] [-kind k] [-designs l]
//	                   [-workloads l] [-loads l] [-tenant t] [-lane l]
//	                   [-deadline-ms n] [-ttl-sec n] [-stream] [-id j]
//	                   [-results]
//	duplexityd join    -coordinator url -worker url [-once]
//	duplexityd drain   [-addr a]
//	duplexityd status  [-addr a]
//	duplexityd tracez  [-addr a] [-n n] [-width n]
//	duplexityd loadgen [-addr a] [-conc n] [-requests n] [-qps f]
//	                   [-duration d] [-spread n] [-design d] [-workload w]
//	                   [-tenant a,b] [-lane l]
//
// serve exposes the campaign engine over HTTP: POST /v1/cells for
// synchronous single cells, POST /v1/campaigns + GET /v1/campaigns/{id}
// for streamed batches, GET /v1/healthz and /v1/statz for operations.
// The daemon serves one fixed (scale, seed) world; requests name only
// the cell axes (kind, design, workload, load). SIGTERM or SIGINT
// drains gracefully: new work is refused, admitted cells finish, and
// the campaign checkpoint is flushed.
//
// coordinate runs the same HTTP surface but resolves cells through a
// worker fleet instead of the local simulation pool: cells shard across
// the -fleet workers by rendezvous hashing on their cache digests,
// stragglers are hedged to a second worker after an adaptive p99-based
// threshold, failed workers are retried with backoff, and merged
// results land in the coordinator's cache byte-identical to a
// single-node run. With -scale/-seed unset the coordinator adopts the
// workers' world; set them to pin (and verify) it. GET /v1/fleetz
// reports per-worker dispatch state.
//
// submit posts one cell (default) or a campaign (-campaign) to a
// running daemon and writes results to stdout — campaign results stream
// as NDJSON in submission order. status pretty-prints /v1/statz, writes
// a one-line job summary to stderr, and exits non-zero when any job
// finished with failed cells.
//
// jobs is the multi-tenant control-plane client: -submit posts a
// durable job (tenant, lane, deadline, TTL) and optionally streams it;
// -id fetches one job's status (or, with -results, its result stream);
// with neither it lists jobs. On daemons with a cache directory jobs
// are journaled and survive restarts: an interrupted daemon resumes
// every incomplete job exactly where it stopped.
//
// join registers a running worker daemon with a coordinator's dynamic
// fleet (POST /v1/fleet/join) and keeps heartbeating until signalled,
// then leaves gracefully — the fleet grows and shrinks at runtime
// without restarting the coordinator. serve -join does the same from
// inside the worker process. drain asks a daemon to finish in-flight
// work and flush its checkpoint (POST /v1/drain) without a signal.
//
// tracez fetches a daemon's GET /v1/tracez ring and renders the -n
// slowest cells as text waterfalls: one bar per stage (admission,
// coalesce, cache, remote, compute, serialize), hedged duplicates and
// adopted worker-side child spans indented under their parents. Every
// daemon also serves GET /v1/metricsz (Prometheus text exposition);
// coordinators additionally aggregate their workers' metrics under
// GET /v1/fleet/metricsz with per-worker labels.
//
// loadgen drives a running daemon closed-loop (-conc workers issuing
// -requests total) or open-loop (-qps arrivals for -duration), spreads
// requests over -spread distinct load points so the cache doesn't
// absorb everything, and reports a single-line JSON envelope with
// throughput and latency quantiles.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"duplexity/internal/core"
	"duplexity/internal/expt"
	"duplexity/internal/fleet"
	"duplexity/internal/jobstore"
	"duplexity/internal/serve"
	"duplexity/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "coordinate":
		err = cmdCoordinate(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "jobs":
		err = cmdJobs(os.Args[2:])
	case "join":
		err = cmdJoin(os.Args[2:])
	case "drain":
		err = cmdDrain(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "tracez":
		err = cmdTracez(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "duplexityd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplexityd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: duplexityd <command> [flags]

commands:
  serve       run the simulation daemon
  coordinate  run the daemon as a fleet coordinator over -fleet workers
  submit      submit a cell or campaign to a running daemon
  jobs        submit, list, or stream multi-tenant durable jobs
  join        register a worker with a coordinator's fleet and heartbeat
  drain       ask a running daemon to drain (finish in-flight, checkpoint)
  status      print a running daemon's /v1/statz (non-zero exit on failed jobs)
  tracez      render a running daemon's slowest cell traces as waterfalls
  loadgen     drive a running daemon with closed- or open-loop load

run "duplexityd <command> -h" for per-command flags
`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	scale := fs.Float64("scale", 1.0, "simulation fidelity (1.0 = paper scale)")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "simulation pool width (0 = one per CPU)")
	cacheDir := fs.String("cachedir", "", "content-addressed result cache directory")
	resume := fs.Bool("resume", false, "use the default cache (.duplexity-cache) when -cachedir is unset")
	queue := fs.Int("queue", 0, "submission queue depth (0 = default 64)")
	rps := fs.Float64("rps", 0, "token-bucket rate limit on POST /v1/cells (0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst (0 = derived from -rps)")
	timeout := fs.Duration("timeout", 10*time.Minute, "default per-cell deadline")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "how long a drain waits for in-flight cells")
	tracing := fs.Bool("tracing", true, "record per-cell stage traces (GET /v1/tracez)")
	traceDepth := fs.Int("trace-depth", 0, "recent traces kept in the tracez ring (0 = default 256)")
	jobFlags := addJobFlags(fs)
	joinURL := fs.String("join", "", "coordinator base URL to join as a dynamic fleet worker")
	advertise := fs.String("advertise", "", "base URL this worker advertises when joining (default http://<addr>)")
	fs.Parse(args)
	if *resume && *cacheDir == "" {
		*cacheDir = ".duplexity-cache"
	}

	suite := expt.NewSuite(expt.Options{Scale: *scale, Seed: *seed, Workers: *workers, CacheDir: *cacheDir})
	cfg := serve.Config{
		Suite: suite, Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rps, Burst: *burst, DefaultTimeout: *timeout,
		DisableTracing: !*tracing, TraceDepth: *traceDepth,
	}
	if err := jobFlags.apply(&cfg); err != nil {
		return err
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: jobstore: resumed %d incomplete job(s)\n", srv.Resumed())

	hooks := &serveHooks{}
	if *joinURL != "" {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		hooks.onReady = func(bound net.Addr) {
			self := *advertise
			if self == "" {
				self = "http://" + bound.String()
			}
			pw := *workers
			if pw <= 0 {
				pw = runtime.NumCPU()
			}
			go joinLoop(ctx, normalizeURL(*joinURL), normalizeURL(self), pw, suite.World())
		}
		hooks.onStop = func() {
			cancel()
			self := *advertise
			if self == "" {
				return // bound address already gone; eviction will reap us
			}
			leaveFleet(normalizeURL(*joinURL), normalizeURL(self))
		}
	}

	banner := fmt.Sprintf("serving on %%s (scale=%g seed=%d cachedir=%q)", *scale, *seed, *cacheDir)
	return serveUntilSignal(srv, srv.Handler(), *addr, banner, *drainTimeout, hooks)
}

// jobFlagSet is the multi-tenant job store knobs shared by serve and
// coordinate.
type jobFlagSet struct {
	ttl            *time.Duration
	tenantInflight *int
	tenantJobs     *int
	tenantWeights  *string
	deadline       *time.Duration
}

func addJobFlags(fs *flag.FlagSet) *jobFlagSet {
	return &jobFlagSet{
		ttl:            fs.Duration("job-ttl", 0, "how long finished/abandoned jobs are retained (0 = default 24h)"),
		tenantInflight: fs.Int("tenant-inflight", 0, "per-tenant max in-flight cells (0 = default 4x pool width)"),
		tenantJobs:     fs.Int("tenant-jobs", 0, "per-tenant max queued+running jobs (0 = default 16)"),
		tenantWeights:  fs.String("tenant-weights", "", "fair-share weights, e.g. prod=4,batch=1 (default 1 each)"),
		deadline:       fs.Duration("interactive-deadline", 0, "default deadline for interactive-lane work (0 = default 30s)"),
	}
}

func (j *jobFlagSet) apply(cfg *serve.Config) error {
	cfg.JobTTL = *j.ttl
	cfg.TenantInflight = *j.tenantInflight
	cfg.TenantQueuedJobs = *j.tenantJobs
	cfg.InteractiveDeadline = *j.deadline
	if *j.tenantWeights == "" {
		return nil
	}
	cfg.TenantWeights = make(map[string]float64)
	for _, pair := range strings.Split(*j.tenantWeights, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || name == "" {
			return fmt.Errorf("parsing -tenant-weights: %q is not tenant=weight", pair)
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w <= 0 {
			return fmt.Errorf("parsing -tenant-weights: weight %q must be a positive number", val)
		}
		cfg.TenantWeights[name] = w
	}
	return nil
}

// normalizeURL gives bare host:port flags a scheme and strips trailing
// slashes so worker identities compare equal across join/leave/evict.
func normalizeURL(u string) string {
	u = strings.TrimSuffix(strings.TrimSpace(u), "/")
	if u != "" && !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return u
}

// joinLoop announces this worker to a coordinator and heartbeats at the
// cadence the coordinator asks for, re-joining through coordinator
// restarts until ctx is cancelled.
func joinLoop(ctx context.Context, coordinator, self string, poolWidth int, world expt.World) {
	interval := 2 * time.Second
	announced := false
	for {
		body, err := postJSONCtx(ctx, coordinator+"/v1/fleet/join", fleet.JoinRequest{
			Worker: self, PoolWidth: poolWidth, World: world,
		})
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "duplexityd: fleet join %s: %v (retrying)\n", coordinator, err)
		} else {
			var jr fleet.JoinResponse
			if json.Unmarshal(body, &jr) == nil && jr.HeartbeatSec > 0 {
				interval = time.Duration(jr.HeartbeatSec) * time.Second
			}
			if !announced || jr.Created {
				fmt.Fprintf(os.Stderr, "duplexityd: joined fleet at %s as %s (%d workers)\n", coordinator, self, jr.Workers)
				announced = true
			}
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(interval):
		}
	}
}

// leaveFleet tells the coordinator this worker is going away so its
// cells reshard immediately instead of waiting out the eviction window.
func leaveFleet(coordinator, self string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := postJSONCtx(ctx, coordinator+"/v1/fleet/leave", fleet.LeaveRequest{Worker: self}); err != nil {
		fmt.Fprintf(os.Stderr, "duplexityd: fleet leave %s: %v\n", coordinator, err)
		return
	}
	fmt.Fprintf(os.Stderr, "duplexityd: left fleet at %s\n", coordinator)
}

func postJSONCtx(ctx context.Context, url string, v any) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

// serveHooks customizes serveUntilSignal's lifecycle: onReady fires
// once the listener is bound (with its actual address), onStop after a
// successful drain — where a joined worker leaves its fleet.
type serveHooks struct {
	onReady func(net.Addr)
	onStop  func()
}

// serveUntilSignal binds addr, serves handler, and on SIGTERM/SIGINT —
// or a POST /v1/drain request — drains srv (refusing new work,
// finishing in-flight cells, flushing the campaign checkpoint) before
// shutting the listener down.
func serveUntilSignal(srv *serve.Server, handler http.Handler, addr, banner string, drainTimeout time.Duration, hooks *serveHooks) error {
	// Bind before announcing so scripts can poll the printed address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: "+banner+"\n", ln.Addr())
	if hooks != nil && hooks.onReady != nil {
		hooks.onReady(ln.Addr())
	}

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "duplexityd: %v: draining (finishing in-flight cells)...\n", s)
	case <-srv.DrainRequested():
		fmt.Fprintln(os.Stderr, "duplexityd: drain requested over HTTP: draining (finishing in-flight cells)...")
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		// The checkpoint may be lost but the cache and journal are still
		// consistent; report and exit nonzero.
		_ = hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "duplexityd: drained; checkpoint flushed")
	if hooks != nil && hooks.onStop != nil {
		hooks.onStop()
	}
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	return hs.Shutdown(shCtx)
}

func cmdCoordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	fleetList := fs.String("fleet", "", "comma-separated worker base URLs, e.g. http://h1:8077,http://h2:8077 (empty = dynamic membership only)")
	scale := fs.Float64("scale", 0, "world scale the workers must serve (0 = adopt from workers)")
	seed := fs.Uint64("seed", 0, "world seed the workers must serve (0 = adopt from workers)")
	workers := fs.Int("workers", 0, "campaign engine width feeding the fleet (0 = one per CPU)")
	cacheDir := fs.String("cachedir", "", "coordinator-side content-addressed result cache directory")
	resume := fs.Bool("resume", false, "use the default cache (.duplexity-cache) when -cachedir is unset")
	queue := fs.Int("queue", 0, "submission queue depth (0 = default 64)")
	rps := fs.Float64("rps", 0, "token-bucket rate limit on POST /v1/cells (0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst (0 = derived from -rps)")
	timeout := fs.Duration("timeout", 10*time.Minute, "default per-cell deadline")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "how long a drain waits for in-flight cells")
	hedgeAfter := fs.Duration("hedge-after", 0, "straggler hedge threshold before p99 history accrues (0 = default 2s)")
	heartbeat := fs.Duration("heartbeat", 0, "dynamic-worker heartbeat interval (0 = default 2s)")
	evictAfter := fs.Duration("evict-after", 0, "evict a joined worker after this long without a heartbeat (0 = 3x heartbeat)")
	tracing := fs.Bool("tracing", true, "record per-cell stage traces (GET /v1/tracez)")
	traceDepth := fs.Int("trace-depth", 0, "recent traces kept in the tracez ring (0 = default 256)")
	jobFlags := addJobFlags(fs)
	fs.Parse(args)
	if *resume && *cacheDir == "" {
		*cacheDir = ".duplexity-cache"
	}
	if *fleetList == "" && (*scale == 0 || *seed == 0) {
		return fmt.Errorf("with an empty -fleet, -scale and -seed must pin the world joining workers are verified against")
	}

	coord, err := newCoordinator(*fleetList, *scale, *seed, *hedgeAfter, *heartbeat, *evictAfter)
	if err != nil {
		return err
	}
	world := coord.World()
	fmt.Fprintf(os.Stderr, "duplexityd: fleet registered: %d workers, world model=%s scale=%g seed=%d\n",
		len(coord.Stats().Workers), world.Model, world.Scale, world.Seed)

	suite := expt.NewSuite(expt.Options{
		Scale: world.Scale, Seed: world.Seed, Workers: *workers,
		CacheDir: *cacheDir, Remote: coord,
	})
	cfg := serve.Config{
		Suite: suite, Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rps, Burst: *burst, DefaultTimeout: *timeout,
		DisableTracing: !*tracing, TraceDepth: *traceDepth,
	}
	if err := jobFlags.apply(&cfg); err != nil {
		return err
	}
	srv, err := serve.New(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: jobstore: resumed %d incomplete job(s)\n", srv.Resumed())

	// Sweep joined workers that stop heartbeating for as long as we serve.
	memCtx, memCancel := context.WithCancel(context.Background())
	defer memCancel()
	go coord.RunMembership(memCtx, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "duplexityd: "+format+"\n", args...)
	})

	// The coordinator serves the standard daemon surface plus its own
	// fleet introspection and membership routes.
	fh := coord.Handler()
	mux := http.NewServeMux()
	mux.Handle("GET /v1/fleetz", fh)
	mux.Handle("GET /v1/fleet/metricsz", fh)
	mux.Handle("POST /v1/fleet/join", fh)
	mux.Handle("POST /v1/fleet/leave", fh)
	mux.Handle("/", srv.Handler())

	banner := fmt.Sprintf("coordinating on %%s (scale=%g seed=%d cachedir=%q fleet=%s)",
		world.Scale, world.Seed, *cacheDir, *fleetList)
	return serveUntilSignal(srv, mux, *addr, banner, *drainTimeout, nil)
}

// newCoordinator parses a -fleet worker list (possibly empty — the
// fleet then grows through /v1/fleet/join), builds the fleet
// coordinator, and registers it (verifying world identity). A zero
// scale+seed adopts the workers' world; otherwise the workers must
// match this binary's model at the given scale and seed.
func newCoordinator(fleetList string, scale float64, seed uint64, hedgeAfter, heartbeat, evictAfter time.Duration) (*fleet.Coordinator, error) {
	var urls []string
	for _, u := range strings.Split(fleetList, ",") {
		if u = normalizeURL(u); u != "" {
			urls = append(urls, u)
		}
	}
	o := fleet.Options{
		Workers: urls, HedgeAfter: hedgeAfter,
		HeartbeatInterval: heartbeat, EvictAfter: evictAfter,
	}
	if scale != 0 || seed != 0 {
		o.World = expt.World{Model: core.ModelVersion, Scale: scale, Seed: seed}
	}
	coord, err := fleet.New(o)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Register(ctx); err != nil {
		return nil, err
	}
	if w := coord.World(); w != (expt.World{}) && w.Model != core.ModelVersion {
		return nil, fmt.Errorf("fleet serves model %q but this binary is %q", w.Model, core.ModelVersion)
	}
	return coord, nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	campaign := fs.Bool("campaign", false, "submit a campaign instead of one cell")
	kind := fs.String("kind", "matrix", "cell or campaign kind (matrix | slowdown | energyprop | tail | fig5 | slowdowns | tails)")
	design := fs.String("design", "Baseline", "cell design")
	workload := fs.String("workload", "RSC", "cell workload")
	load := fs.Float64("load", 0.5, "cell offered load (0 for slowdown cells)")
	governor := fs.String("governor", "", "cell idle governor (energyprop cells only)")
	lambda := fs.Float64("lambda", 0, "cell arrival rate in QPS (tail cells only; 0 = the workload's nominal rate at -load)")
	timeoutMs := fs.Int64("timeout-ms", 0, "per-request deadline in ms (0 = server default)")
	designs := fs.String("designs", "", "campaign designs, comma-separated (empty = all)")
	workloads := fs.String("workloads", "", "campaign workloads, comma-separated (empty = all)")
	loads := fs.String("loads", "", "campaign loads, comma-separated (empty = default grid)")
	governors := fs.String("governors", "", "campaign idle governors, comma-separated (energyprop; empty = default set)")
	fs.Parse(args)
	base := "http://" + *addr

	if !*campaign {
		body, err := postExpectOK(base+"/v1/cells", serve.CellRequest{
			CellSpec:  expt.CellSpec{Kind: *kind, Design: *design, Workload: *workload, Load: *load, Governor: *governor, Lambda: *lambda},
			TimeoutMs: *timeoutMs,
		}, http.StatusOK)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil
	}

	spec := expt.CampaignSpec{Kind: *kind}
	if *designs != "" {
		spec.Designs = strings.Split(*designs, ",")
	}
	if *workloads != "" {
		spec.Workloads = strings.Split(*workloads, ",")
	}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("parsing -loads: %w", err)
			}
			spec.Loads = append(spec.Loads, v)
		}
	}
	if *governors != "" {
		spec.Governors = strings.Split(*governors, ",")
	}
	body, err := postExpectOK(base+"/v1/campaigns", spec, http.StatusAccepted)
	if err != nil {
		return err
	}
	var acc serve.CampaignAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: campaign %s accepted (%d cells); streaming...\n", acc.ID, acc.Cells)
	resp, err := http.Get(base + acc.Stream)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("streaming %s: HTTP %d", acc.ID, resp.StatusCode)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// cmdJobs is the multi-tenant job client: submit (-submit), inspect
// (-id [-results]), or list (default) jobs on a running daemon.
func cmdJobs(args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	submit := fs.Bool("submit", false, "submit a job instead of listing")
	kind := fs.String("kind", "fig5", "campaign kind (fig5 | slowdowns | energyprop)")
	designs := fs.String("designs", "", "designs, comma-separated (empty = all)")
	workloads := fs.String("workloads", "", "workloads, comma-separated (empty = all)")
	loads := fs.String("loads", "", "loads, comma-separated (empty = default grid)")
	governors := fs.String("governors", "", "idle governors, comma-separated (energyprop; empty = default set)")
	tenant := fs.String("tenant", "", "tenant the job (or listing filter) belongs to")
	lane := fs.String("lane", "", "priority lane: interactive (deadline) | batch (default)")
	deadlineMs := fs.Int64("deadline-ms", 0, "interactive deadline in ms (0 = server default)")
	ttlSec := fs.Int64("ttl-sec", 0, "retention TTL in seconds (0 = server default)")
	stream := fs.Bool("stream", false, "after submitting, stream the job's results to stdout")
	id := fs.String("id", "", "job ID to inspect instead of listing")
	results := fs.Bool("results", false, "with -id, stream the job's results instead of its status")
	fs.Parse(args)
	base := "http://" + *addr

	streamTo := func(path string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			return fmt.Errorf("streaming %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(body))
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		return err
	}
	indentTo := func(path string) error {
		resp, err := http.Get(base + path)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(data))
		}
		var buf bytes.Buffer
		if err := json.Indent(&buf, data, "", "  "); err != nil {
			return err
		}
		buf.WriteByte('\n')
		_, err = buf.WriteTo(os.Stdout)
		return err
	}

	switch {
	case *submit:
		req := serve.JobRequest{
			CampaignSpec: expt.CampaignSpec{Kind: *kind},
			Tenant:       *tenant, Lane: *lane,
			DeadlineMs: *deadlineMs, TTLSec: *ttlSec,
		}
		if *designs != "" {
			req.Designs = strings.Split(*designs, ",")
		}
		if *workloads != "" {
			req.Workloads = strings.Split(*workloads, ",")
		}
		if *loads != "" {
			for _, f := range strings.Split(*loads, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return fmt.Errorf("parsing -loads: %w", err)
				}
				req.Loads = append(req.Loads, v)
			}
		}
		if *governors != "" {
			req.Governors = strings.Split(*governors, ",")
		}
		body, err := postExpectOK(base+"/v1/jobs", req, http.StatusAccepted)
		if err != nil {
			return err
		}
		var acc serve.JobAccepted
		if err := json.Unmarshal(body, &acc); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "duplexityd: job %s accepted (%d cells, tenant=%s lane=%s durable=%v)\n",
			acc.ID, acc.Cells, acc.Tenant, acc.Lane, acc.Durable)
		if *stream {
			return streamTo(acc.Stream)
		}
		os.Stdout.Write(append(bytes.TrimSpace(body), '\n'))
		return nil
	case *id != "":
		if *results {
			return streamTo("/v1/jobs/" + *id + "/results")
		}
		return indentTo("/v1/jobs/" + *id)
	default:
		path := "/v1/jobs"
		if *tenant != "" {
			path += "?tenant=" + *tenant
		}
		return indentTo(path)
	}
}

// cmdJoin registers an already-running worker daemon with a
// coordinator's dynamic fleet and heartbeats until signalled, then
// leaves gracefully.
func cmdJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	coordinator := fs.String("coordinator", "", "coordinator base URL (required)")
	workerURL := fs.String("worker", "", "worker daemon base URL to register (required)")
	once := fs.Bool("once", false, "join once and exit instead of heartbeating")
	fs.Parse(args)
	if *coordinator == "" || *workerURL == "" {
		return fmt.Errorf("join: -coordinator and -worker are required")
	}
	coord, self := normalizeURL(*coordinator), normalizeURL(*workerURL)

	// Probe the worker for its world and pool width so the coordinator
	// can verify identity before dispatching a single cell to it.
	resp, err := http.Get(self + "/v1/queuez")
	if err != nil {
		return fmt.Errorf("probing worker %s: %w", self, err)
	}
	var qz serve.Queuez
	err = json.NewDecoder(resp.Body).Decode(&qz)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("probing worker %s: %w", self, err)
	}

	if *once {
		body, err := postJSONCtx(context.Background(), coord+"/v1/fleet/join", fleet.JoinRequest{
			Worker: self, PoolWidth: qz.Workers, World: qz.World,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "duplexityd: %s\n", bytes.TrimSpace(body))
		return nil
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	joinLoop(ctx, coord, self, qz.Workers, qz.World)
	leaveFleet(coord, self)
	return nil
}

// cmdDrain asks a running daemon to drain over HTTP — the remote
// equivalent of sending it SIGTERM.
func cmdDrain(args []string) error {
	fs := flag.NewFlagSet("drain", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	fs.Parse(args)
	body, err := postExpectOK("http://"+*addr+"/v1/drain", struct{}{}, http.StatusAccepted)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: drain accepted: %s\n", bytes.TrimSpace(body))
	return nil
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	fs.Parse(args)
	resp, err := http.Get("http://" + *addr + "/v1/statz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("statz: HTTP %d: %s", resp.StatusCode, data)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	if _, err := buf.WriteTo(os.Stdout); err != nil {
		return err
	}

	// Job health rides the exit code: any job that finished with failed
	// cells makes status exit non-zero, so scripts can gate on it.
	var st serve.Statz
	if err := json.Unmarshal(data, &st); err != nil || len(st.Jobs) == 0 {
		return nil
	}
	var failedJobs, failedCells, cancelledCells int
	for _, j := range st.Jobs {
		failedCells += j.Failed
		cancelledCells += j.Cancelled
		if j.State == jobstore.StateFailed || j.Failed > 0 {
			failedJobs++
		}
	}
	fmt.Fprintf(os.Stderr, "duplexityd: jobs: %d total, %d with failures (%d failed cell(s), %d cancelled cell(s))\n",
		len(st.Jobs), failedJobs, failedCells, cancelledCells)
	if failedJobs > 0 {
		return fmt.Errorf("%d job(s) finished with failures", failedJobs)
	}
	return nil
}

// cmdTracez fetches a daemon's trace ring and renders the -n slowest
// cells as text waterfalls, slowest first.
func cmdTracez(args []string) error {
	fs := flag.NewFlagSet("tracez", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	n := fs.Int("n", 5, "how many of the slowest traces to render")
	width := fs.Int("width", 64, "waterfall bar width in columns")
	fs.Parse(args)
	resp, err := http.Get("http://" + *addr + "/v1/tracez")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tracez: HTTP %d: %s", resp.StatusCode, data)
	}
	var tz serve.Tracez
	if err := json.Unmarshal(data, &tz); err != nil {
		return err
	}
	if tz.Disabled {
		fmt.Println("tracing is disabled on this daemon (-tracing=false)")
		return nil
	}
	if len(tz.Traces) == 0 {
		fmt.Printf("no traces recorded yet (%d total)\n", tz.Total)
		return nil
	}
	sort.Slice(tz.Traces, func(i, j int) bool { return tz.Traces[i].WallNs > tz.Traces[j].WallNs })
	if *n > 0 && len(tz.Traces) > *n {
		tz.Traces = tz.Traces[:*n]
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "%d traces recorded; slowest %d:\n\n", tz.Total, len(tz.Traces))
	for _, tr := range tz.Traces {
		if err := tr.Waterfall(out, *width); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// loadReport is loadgen's single-line JSON envelope (bench.sh parses
// it into BENCH_serve.json).
type loadReport struct {
	Mode         string  `json:"mode"` // "closed" | "open"
	Conc         int     `json:"conc,omitempty"`
	TargetQPS    float64 `json:"target_qps,omitempty"`
	Sent         int64   `json:"sent"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`
	Errors       int64   `json:"errors"`
	WallSeconds  float64 `json:"wall_seconds"`
	RPS          float64 `json:"rps"`
	LatencyP50Us uint64  `json:"latency_p50_us"`
	LatencyP99Us uint64  `json:"latency_p99_us"`
	// StatusCounts breaks Sent down by HTTP status code ("error" for
	// transport failures); ShedRate is Shed/Sent.
	StatusCounts map[string]int64 `json:"status_counts,omitempty"`
	ShedRate     float64          `json:"shed_rate"`
	// TenantStatusCounts splits StatusCounts per tenant when -tenant
	// names one or more tenants, making per-tenant shed rates visible.
	TenantStatusCounts map[string]map[string]int64 `json:"tenant_status_counts,omitempty"`
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	conc := fs.Int("conc", 4, "closed-loop concurrency")
	requests := fs.Int("requests", 0, "closed-loop total requests (0 = open loop)")
	qps := fs.Float64("qps", 0, "open-loop arrival rate")
	duration := fs.Duration("duration", 10*time.Second, "open-loop run length")
	spread := fs.Int("spread", 8, "distinct load points to cycle through (defeats pure cache hits)")
	design := fs.String("design", "Baseline", "cell design")
	workload := fs.String("workload", "RSC", "cell workload")
	tenantList := fs.String("tenant", "", "tenant header(s), comma-separated — requests cycle through them")
	lane := fs.String("lane", "", "priority lane header (interactive | batch)")
	fs.Parse(args)
	if *requests <= 0 && *qps <= 0 {
		return fmt.Errorf("loadgen: need -requests (closed loop) or -qps (open loop)")
	}
	var tenants []string
	for _, t := range strings.Split(*tenantList, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tenants = append(tenants, t)
		}
	}
	if *spread < 1 {
		*spread = 1
	}
	base := "http://" + *addr

	// Distinct loads on a fine grid: request i exercises load
	// 0.05 + (i mod spread) * step, all within the valid (0, 0.95] range.
	cellFor := func(i int64) expt.CellSpec {
		step := 0.90 / float64(*spread)
		return expt.CellSpec{
			Kind: expt.KindMatrix, Design: *design, Workload: *workload,
			Load: math.Round((0.05+float64(i%int64(*spread))*step)*1e6) / 1e6,
		}
	}

	var (
		mu   sync.Mutex
		hist telemetry.Histogram
		rep  loadReport
	)
	rep.StatusCounts = make(map[string]int64)
	if len(tenants) > 0 {
		rep.TenantStatusCounts = make(map[string]map[string]int64, len(tenants))
		for _, t := range tenants {
			rep.TenantStatusCounts[t] = make(map[string]int64)
		}
	}
	issue := func(i int64) {
		body, err := json.Marshal(cellFor(i))
		if err != nil {
			return
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/cells", bytes.NewReader(body))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", "application/json")
		tenant := ""
		if len(tenants) > 0 {
			tenant = tenants[i%int64(len(tenants))]
			req.Header.Set(serve.HeaderTenant, tenant)
		}
		if *lane != "" {
			req.Header.Set(serve.HeaderLane, *lane)
		}
		start := time.Now()
		resp, err := http.DefaultClient.Do(req)
		us := uint64(time.Since(start).Microseconds())
		mu.Lock()
		defer mu.Unlock()
		count := func(code string) {
			rep.StatusCounts[code]++
			if tenant != "" {
				rep.TenantStatusCounts[tenant][code]++
			}
		}
		rep.Sent++
		if err != nil {
			rep.Errors++
			count("error")
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		count(strconv.Itoa(resp.StatusCode))
		switch {
		case resp.StatusCode == http.StatusOK:
			rep.OK++
			hist.Observe(us)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			rep.Shed++
		default:
			rep.Errors++
		}
	}

	start := time.Now()
	if *requests > 0 {
		rep.Mode, rep.Conc = "closed", *conc
		var next int64
		var wg sync.WaitGroup
		nextCh := make(chan int64)
		go func() {
			for next = 0; next < int64(*requests); next++ {
				nextCh <- next
			}
			close(nextCh)
		}()
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range nextCh {
					issue(i)
				}
			}()
		}
		wg.Wait()
	} else {
		rep.Mode, rep.TargetQPS = "open", *qps
		interval := time.Duration(float64(time.Second) / *qps)
		deadline := time.Now().Add(*duration)
		var wg sync.WaitGroup
		var i int64
		for t := time.Now(); t.Before(deadline); t = t.Add(interval) {
			if d := time.Until(t); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int64) { defer wg.Done(); issue(i) }(i)
			i++
		}
		wg.Wait()
	}

	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.RPS = float64(rep.Sent) / rep.WallSeconds
	}
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
	}
	rep.LatencyP50Us = hist.Quantile(0.50)
	rep.LatencyP99Us = hist.Quantile(0.99)
	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return out.Flush()
}

// postExpectOK posts v as JSON and returns the body, erroring on any
// status other than want (429s include the server's Retry-After hint).
func postExpectOK(url string, v any, want int) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return nil, fmt.Errorf("HTTP %d (retry after %ss): %s", resp.StatusCode, ra, bytes.TrimSpace(body))
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

package campaign

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// microKey is a phase-1 key: the micro-sim family shared by every load
// fanned out in these tests (no Load, like a real slowdown cell).
func microKey(i int) Key {
	return Key{
		Kind: "micro", Model: "m1", Design: "Duplexity",
		Workload: fmt.Sprintf("wl%d", i), Spec: "abcd", Scale: 1.0, Seed: 1,
	}
}

// twoPhaseKey is a phase-2 key at one load.
func twoPhaseKey(i int, load float64) Key {
	k := microKey(i)
	k.Kind = "twophase"
	k.Load = load
	return k
}

// twoPhaseOf builds a TwoPhase whose queue combines one micro result
// with the load deterministically, counting executions of each stage.
func twoPhaseOf(i int, load float64, microRuns, queueRuns *atomic.Int64) *TwoPhase {
	return &TwoPhase{
		Micro: []MicroTask{{
			Key: microKey(i),
			Run: func() (json.RawMessage, error) {
				if microRuns != nil {
					microRuns.Add(1)
				}
				return json.Marshal(float64(i) * 10)
			},
		}},
		Queue: func(micro []json.RawMessage) (json.RawMessage, error) {
			if queueRuns != nil {
				queueRuns.Add(1)
			}
			var v float64
			if err := json.Unmarshal(micro[0], &v); err != nil {
				return nil, err
			}
			return json.Marshal(v * load)
		},
	}
}

// A cold two-phase fan-out computes each micro-sim exactly once however
// many loads share it, and the per-layer counters account micros and
// queueing cells separately from the legacy whole-cell totals.
func TestTwoPhaseMicroComputedOnce(t *testing.T) {
	eng, err := New(Options{Workers: 4, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	loads := []float64{0.3, 0.5, 0.7}
	var microRuns, queueRuns atomic.Int64
	var tasks []Task[float64]
	for i := 0; i < 2; i++ {
		for _, load := range loads {
			i, load := i, load
			tasks = append(tasks, Task[float64]{
				Key:      twoPhaseKey(i, load),
				TwoPhase: twoPhaseOf(i, load, &microRuns, &queueRuns),
			})
		}
	}
	got, err := Run(eng, tasks)
	if err != nil {
		t.Fatal(err)
	}
	for n, v := range got {
		i, load := n/len(loads), loads[n%len(loads)]
		if want := float64(i) * 10 * load; v != want {
			t.Fatalf("cell %d = %v, want %v", n, v, want)
		}
	}
	if microRuns.Load() != 2 {
		t.Fatalf("micro-sims simulated %d times, want 2 (one per family)", microRuns.Load())
	}
	if queueRuns.Load() != 6 {
		t.Fatalf("queue stages ran %d times, want 6", queueRuns.Load())
	}
	st := eng.Stats()
	if st.Cells != 6 || st.Hits != 0 || st.Misses != 6 {
		t.Fatalf("legacy totals = cells %d hits %d misses %d, want 6/0/6", st.Cells, st.Hits, st.Misses)
	}
	if st.QueueingMisses != 6 || st.QueueingHits != 0 {
		t.Fatalf("queueing layer = %d hits / %d misses, want 0/6", st.QueueingHits, st.QueueingMisses)
	}
	// 6 cells resolve 6 micro references; 2 simulate, 4 coalesce or memo.
	if st.MicrosimMisses != 2 {
		t.Fatalf("micro-sim layer misses = %d, want 2", st.MicrosimMisses)
	}
	if st.MicrosimHits != 4 {
		t.Fatalf("micro-sim layer hits = %d, want 4", st.MicrosimHits)
	}
}

// A warm rerun answers every cell from the phase-2 layer without
// touching phase 1 at all, and a load-grid change re-simulates zero
// micro-sims (they hit the disk cache).
func TestTwoPhaseWarmAndGridChange(t *testing.T) {
	dir := t.TempDir()
	run := func(loads []float64) (Summary, int64, error) {
		eng, err := New(Options{Workers: 2, CacheDir: dir})
		if err != nil {
			return Summary{}, 0, err
		}
		var microRuns atomic.Int64
		var tasks []Task[float64]
		for _, load := range loads {
			load := load
			tasks = append(tasks, Task[float64]{
				Key:      twoPhaseKey(0, load),
				TwoPhase: twoPhaseOf(0, load, &microRuns, nil),
			})
		}
		if _, err := Run(eng, tasks); err != nil {
			return Summary{}, 0, err
		}
		return eng.Stats(), microRuns.Load(), nil
	}
	if _, _, err := run([]float64{0.3, 0.5}); err != nil {
		t.Fatal(err)
	}
	st, micros, err := run([]float64{0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueingHits != 2 || st.QueueingMisses != 0 {
		t.Fatalf("warm rerun: queueing layer %d/%d, want 2 hits", st.QueueingHits, st.QueueingMisses)
	}
	if st.MicrosimHits != 0 || st.MicrosimMisses != 0 || micros != 0 {
		t.Fatalf("warm rerun touched phase 1: %d/%d counters, %d simulations",
			st.MicrosimHits, st.MicrosimMisses, micros)
	}
	// New loads only: the overlapping cell hits, the fresh one resolves
	// its micro from disk — zero re-simulation.
	st, micros, err = run([]float64{0.5, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	if micros != 0 {
		t.Fatalf("grid change re-simulated %d micro-sims, want 0", micros)
	}
	if st.QueueingHits != 1 || st.QueueingMisses != 1 {
		t.Fatalf("grid change: queueing layer %d/%d, want 1/1", st.QueueingHits, st.QueueingMisses)
	}
	if st.MicrosimHits != 1 {
		t.Fatalf("grid change: micro disk hits = %d, want 1", st.MicrosimHits)
	}
}

// The journal distinguishes the layers: micro resolutions append
// layer="microsim" entries, two-phase cells layer="queueing" entries
// carrying their phase-1 digests.
func TestTwoPhaseJournalLayers(t *testing.T) {
	dir := t.TempDir()
	eng, err := New(Options{Workers: 1, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	task := Task[float64]{Key: twoPhaseKey(0, 0.5), TwoPhase: twoPhaseOf(0, 0.5, nil, nil)}
	if _, err := Run(eng, []Task[float64]{task}); err != nil {
		t.Fatal(err)
	}
	entries, err := ReadJournal(eng.cache.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	var micros, queueing int
	for _, e := range entries {
		switch e.Layer {
		case LayerMicrosim:
			micros++
			if e.Digest != microKey(0).Digest() {
				t.Fatalf("micro journal digest %s, want %s", e.Digest, microKey(0).Digest())
			}
		case LayerQueueing:
			queueing++
			if len(e.MicroDigests) != 1 || e.MicroDigests[0] != microKey(0).Digest() {
				t.Fatalf("queueing entry micro_digests = %v", e.MicroDigests)
			}
		}
	}
	if micros != 1 || queueing != 1 {
		t.Fatalf("journal layers: %d microsim + %d queueing, want 1+1", micros, queueing)
	}
}

// Concurrent cells sharing one micro-sim coalesce onto a single
// simulation even when they arrive simultaneously on many workers.
func TestTwoPhaseSingleflight(t *testing.T) {
	eng, err := New(Options{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var microRuns atomic.Int64
	slowMicro := func() (json.RawMessage, error) {
		microRuns.Add(1)
		time.Sleep(20 * time.Millisecond)
		return json.Marshal(7.0)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			tp := &TwoPhase{
				Micro: []MicroTask{{Key: microKey(0), Run: slowMicro}},
				Queue: func(micro []json.RawMessage) (json.RawMessage, error) {
					return micro[0], nil
				},
			}
			_, _, errs[w] = eng.DoRawTwoPhase(twoPhaseKey(0, float64(w+1)/10), tp, nil, time.Time{})
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if microRuns.Load() != 1 {
		t.Fatalf("shared micro-sim ran %d times under contention, want 1", microRuns.Load())
	}
}

// A nil decomposition is rejected rather than silently miscached.
func TestTwoPhaseRejectsNil(t *testing.T) {
	eng, err := New(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := eng.DoRawTwoPhase(twoPhaseKey(0, 0.5), nil, nil, time.Time{}); err == nil {
		t.Fatal("nil TwoPhase accepted")
	}
	if _, _, err := eng.DoRawTwoPhase(twoPhaseKey(0, 0.5), &TwoPhase{}, nil, time.Time{}); err == nil {
		t.Fatal("TwoPhase without Queue accepted")
	}
}

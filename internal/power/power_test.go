package power

import (
	"math"
	"testing"

	"duplexity/internal/core"
)

// Table II calibration: the model must land near the paper's totals.
func TestTableIICalibration(t *testing.T) {
	cases := []struct {
		design core.Design
		want   float64
	}{
		{core.DesignBaseline, 12.1},
		{core.DesignSMT, 12.2},
		{core.DesignMorphCore, 12.4},
		{core.DesignDuplexity, 12.7},
		{core.DesignDuplexityRepl, 16.7},
	}
	for _, c := range cases {
		got := CoreArea(c.design)
		if math.Abs(got-c.want)/c.want > 0.03 {
			t.Errorf("%v area %.2f mm², Table II %.1f", c.design, got, c.want)
		}
	}
	if got := LenderArea(); math.Abs(got-5.5)/5.5 > 0.05 {
		t.Errorf("lender area %.2f mm², Table II 5.5", got)
	}
}

func TestReplicationOverheadMatchesPaper(t *testing.T) {
	// Section V: replication is a 38% area overhead over baseline;
	// the master-core is ~5%.
	base := CoreArea(core.DesignBaseline)
	repl := CoreArea(core.DesignDuplexityRepl) / base
	if repl < 1.3 || repl > 1.45 {
		t.Fatalf("replication overhead %vx, paper ~1.38x", repl)
	}
	master := CoreArea(core.DesignDuplexity) / base
	if master < 1.03 || master > 1.08 {
		t.Fatalf("master-core overhead %vx, paper ~1.05x", master)
	}
}

func TestTableIIRows(t *testing.T) {
	rows := TableIIRows()
	if len(rows) != 7 {
		t.Fatalf("got %d rows, want 7", len(rows))
	}
	if rows[6].Component != "LLC (per MB)" || rows[6].AreaMM2 != 3.9 {
		t.Fatal("LLC row wrong")
	}
	// Frequencies decrease with morphing complexity.
	if !(rows[0].FreqGHz > rows[2].FreqGHz && rows[2].FreqGHz > rows[3].FreqGHz) {
		t.Fatal("frequency ordering violated")
	}
}

func TestChipArea(t *testing.T) {
	got := ChipArea(core.DesignBaseline)
	want := CoreArea(core.DesignBaseline) + LenderArea() + 7.8
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("chip area %v, want %v", got, want)
	}
}

func TestPowerModel(t *testing.T) {
	act := Activity{Seconds: 1e-3, OoOInstrs: 3_000_000, InOInstrs: 6_000_000}
	p, err := ChipPowerW(core.DesignDuplexity, act)
	if err != nil {
		t.Fatal(err)
	}
	// Leakage ~2.1W + dynamic (3e6*0.45 + 6e6*0.16)nJ / 1ms ≈ 2.3W.
	if p < 2 || p > 10 {
		t.Fatalf("power %v W implausible", p)
	}
	if _, err := ChipPowerW(core.DesignDuplexity, Activity{}); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestEnergyPerInstr(t *testing.T) {
	// All else equal, retiring more instructions in the same interval
	// lowers energy per instruction (leakage amortization).
	low := Activity{Seconds: 1e-3, OoOInstrs: 1_000_000}
	high := Activity{Seconds: 1e-3, OoOInstrs: 1_000_000, InOInstrs: 8_000_000}
	el, err := EnergyPerInstrNJ(core.DesignDuplexity, low)
	if err != nil {
		t.Fatal(err)
	}
	eh, err := EnergyPerInstrNJ(core.DesignDuplexity, high)
	if err != nil {
		t.Fatal(err)
	}
	if eh >= el {
		t.Fatalf("energy/instr did not drop with utilization: %v -> %v", el, eh)
	}
	if _, err := EnergyPerInstrNJ(core.DesignBaseline, Activity{Seconds: 1}); err == nil {
		t.Fatal("zero instructions accepted")
	}
}

func TestPerfDensity(t *testing.T) {
	act := Activity{Seconds: 1e-3, OoOInstrs: 4_000_000}
	base, err := PerfDensity(core.DesignBaseline, act)
	if err != nil {
		t.Fatal(err)
	}
	repl, err := PerfDensity(core.DesignDuplexityRepl, act)
	if err != nil {
		t.Fatal(err)
	}
	// Same throughput on a bigger chip: lower density.
	if repl >= base {
		t.Fatal("replication did not pay an area penalty in density")
	}
	if _, err := PerfDensity(core.DesignBaseline, Activity{}); err == nil {
		t.Fatal("invalid activity accepted")
	}
}

func TestComponentBreakdownsSum(t *testing.T) {
	for _, d := range core.AllDesigns {
		comps := CoreComponents(d)
		if len(comps) < 9 {
			t.Fatalf("%v breakdown too small", d)
		}
		sum := 0.0
		for _, c := range comps {
			if c.AreaMM2 <= 0 {
				t.Fatalf("%v component %q non-positive", d, c.Name)
			}
			sum += c.AreaMM2
		}
		if math.Abs(sum-CoreArea(d)) > 1e-9 {
			t.Fatalf("%v: components sum %v != area %v", d, sum, CoreArea(d))
		}
	}
}

package cpu

import "duplexity/internal/isa"

// This file is the controller surface the master-core's morph state
// machine (internal/core) uses to drive an OoOCore through the
// drain/flush/restart protocol of Section III-B1.

// HaltFetch stops instruction fetch for thread tid (start of a morph:
// the master-thread stalled or went idle).
func (c *OoOCore) HaltFetch(tid int) { c.threads[tid].fetchHalted = true }

// ResumeFetch re-enables fetch for thread tid no earlier than cycle at
// (master-thread restart after filler eviction).
func (c *OoOCore) ResumeFetch(tid int, at uint64) {
	t := c.threads[tid]
	t.fetchHalted = false
	if t.fetchResumeAt < at {
		t.fetchResumeAt = at
	}
}

// Inflight returns the number of in-flight instructions (ROB + fetch
// buffer) for thread tid.
func (c *OoOCore) Inflight(tid int) int { return c.threads[tid].inflight() }

// SquashYoungerThanRemote flushes all of tid's in-flight state younger
// than its oldest in-flight remote operation, returning whether a remote
// was found. Elder instructions continue draining; the remote itself
// remains, waiting for its device latency to elapse. This implements
// "we drain instructions elder than the stalling instruction and flush
// younger" (Section III-B1).
func (c *OoOCore) SquashYoungerThanRemote(tid int) bool {
	t := c.threads[tid]
	remoteIdx := -1
	for i := 0; i < t.size; i++ {
		if t.robAt(i).in.Op == isa.OpRemote && t.robAt(i).state != robDone {
			remoteIdx = i
			break
		}
	}
	if remoteIdx < 0 {
		return false
	}
	// Squash entries younger than the remote, youngest first, collecting
	// them for replay: a stream is a consuming generator, so squashed
	// instructions must be re-fetched after the master-thread resumes.
	// The rebuild goes through squashBuf, double-buffered with the replay
	// queue, so steady-state morph churn does not allocate.
	squashed := t.squashBuf[:0]
	for t.size > remoteIdx+1 {
		e := t.robAt(t.size - 1)
		c.refund(t, e)
		if e.mispredicted {
			t.fetchBlocked = false
		}
		// Invalidate rename-map entries pointing at the squashed slot.
		if e.hasPhysDst() && t.regProducer[e.in.Dst].seq == e.seq {
			t.regProducer[e.in.Dst] = prodLink{}
		}
		squashed = append(squashed, e.in)
		e.seq = 0 // liveness guard: dependents see a dead producer
		t.size--
	}
	// Rebuild the replay queue in program order: squashed ROB entries
	// (collected youngest-first), then the flushed fetch buffer, then any
	// prior replay content.
	for i, j := 0, len(squashed)-1; i < j; i, j = i+1, j-1 {
		squashed[i], squashed[j] = squashed[j], squashed[i]
	}
	squashed = append(squashed, t.fetchBuf[t.fetchHead:]...)
	squashed = append(squashed, t.replay[t.replayHead:]...)
	t.squashBuf = t.replay[:0] // old replay backing becomes the next scratch
	t.replay = squashed
	t.replayHead = 0
	t.fetchBuf = t.fetchBuf[:0]
	t.fetchHead = 0
	// If the buffer still held an undispatched mispredicted branch, the
	// fetch-blocked latch must be released here — its ROB entry will
	// never exist to release it at completion.
	if t.pendingMispredict {
		t.fetchBlocked = false
		t.pendingMispredict = false
	}
	t.noReady = false // conservative: re-pay one issue scan after a squash
	return true
}

// hasPhysDst reports whether the entry allocated a rename mapping.
// (A squashed entry may already have had its physical register refunded;
// the rename-map check uses the destination register regardless.)
func (e *robEntry) hasPhysDst() bool { return e.in.Dst != isa.RegNone }

// DrainedToRemote reports whether thread tid's only in-flight instruction
// is a pending remote operation — the morph's "drained" condition.
func (c *OoOCore) DrainedToRemote(tid int) bool {
	t := c.threads[tid]
	return t.fetchLen() == 0 && t.size == 1 && t.robAt(0).in.Op == isa.OpRemote
}

// Drained reports whether thread tid has no in-flight work at all
// (idle-triggered morphs drain to empty).
func (c *OoOCore) Drained(tid int) bool { return c.threads[tid].inflight() == 0 }

// HeadRemoteCompletion returns the completion cycle of tid's ROB-head
// remote operation, if the head is an issued remote.
func (c *OoOCore) HeadRemoteCompletion(tid int) (uint64, bool) {
	t := c.threads[tid]
	if t.size == 0 {
		return 0, false
	}
	e := t.robAt(0)
	if e.in.Op != isa.OpRemote || e.state == robWaiting {
		return 0, false
	}
	return e.completeAt, true
}

// AddRemoteStall charges n cycles of remote-stall time to thread tid's
// statistics (the controller accounts stall windows it manages itself).
func (c *OoOCore) AddRemoteStall(tid int, n uint64) {
	c.threads[tid].Stats.RemoteStallCycles += n
}

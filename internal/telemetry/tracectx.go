package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace-context propagation headers. A coordinator (or any submitter)
// mints a trace at submission time and injects these on every hop; each
// daemon extracts them, opens its own span under the inherited trace,
// and re-injects when it dispatches further. The contract is documented
// in DESIGN.md §11.
const (
	// HeaderTraceID carries the end-to-end trace identifier.
	HeaderTraceID = "X-Duplexity-Trace"
	// HeaderSpanID carries the caller's span id; the callee records it
	// as the parent of its own span.
	HeaderSpanID = "X-Duplexity-Span"
	// HeaderCampaign carries the submitting campaign/job id, if any.
	HeaderCampaign = "X-Duplexity-Campaign"
	// HeaderHedge marks a request as a hedged duplicate ("1"); absent or
	// any other value means primary.
	HeaderHedge = "X-Duplexity-Hedge"
)

// Stage names for per-cell spans — the closed taxonomy every layer
// records against, so cross-process timelines stitch without name
// translation. See DESIGN.md §11.
const (
	// StageSched is time a campaign-job cell spent in the multi-tenant
	// fair-share scheduler before being dispatched into admission.
	StageSched = "sched"
	// StageAdmission is time spent queued behind the serve admission
	// gate before a worker goroutine picked the cell up.
	StageAdmission = "admission"
	// StageCoalesce is time a duplicate request spent waiting on
	// another in-flight execution of the same cell.
	StageCoalesce = "coalesce"
	// StageCache is the content-addressed cache probe (Detail "hit",
	// "miss", or "l1" for the coordinator's in-memory tier).
	StageCache = "cache"
	// StageRemote is a coordinator-side dispatch to a fleet worker,
	// network round trip included (Worker names the target).
	StageRemote = "remote"
	// StageCompute is the simulation itself, result encoding included.
	StageCompute = "compute"
	// StageSerialize is the cache write persisting a computed result.
	StageSerialize = "serialize"
)

// TraceContext is the minted-at-submission identity that rides the
// headers above. The zero value means "untraced": Inject does nothing
// and the receiving daemon mints a fresh trace.
type TraceContext struct {
	// TraceID identifies the end-to-end cell execution.
	TraceID string `json:"trace_id"`
	// SpanID is the caller's span (the parent of any span the callee
	// opens).
	SpanID string `json:"span_id,omitempty"`
	// Campaign is the submitting campaign/job id, if any.
	Campaign string `json:"campaign,omitempty"`
	// Hedged marks the request as a hedged duplicate of another
	// in-flight dispatch.
	Hedged bool `json:"hedged,omitempty"`
}

// idCounter sequences span/trace ids; idBase is a per-process random
// mask so ids from different daemons never collide.
var (
	idCounter atomic.Uint64
	idBase    = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Degrade to process-locally-unique ids; the counter alone
			// still distinguishes spans within one daemon.
			return 0xd17a5e_c0ffee
		}
		return binary.LittleEndian.Uint64(b[:])
	}()
)

// MintID returns a new 16-hex-digit id, unique per process and (with
// overwhelming probability) across the fleet. It is cheap: one atomic
// add and one format, no time or entropy syscalls on the hot path.
func MintID() string {
	return fmt.Sprintf("%016x", idBase^idCounter.Add(1))
}

// MintTrace starts a fresh trace for a campaign cell submission.
func MintTrace(campaign string) TraceContext {
	return TraceContext{TraceID: MintID(), Campaign: campaign}
}

// Inject writes the context into h. A zero context (no TraceID) writes
// nothing, keeping untraced requests byte-identical to pre-tracing ones.
func (tc TraceContext) Inject(h http.Header) {
	if tc.TraceID == "" {
		return
	}
	h.Set(HeaderTraceID, tc.TraceID)
	if tc.SpanID != "" {
		h.Set(HeaderSpanID, tc.SpanID)
	}
	if tc.Campaign != "" {
		h.Set(HeaderCampaign, tc.Campaign)
	}
	if tc.Hedged {
		h.Set(HeaderHedge, "1")
	}
}

// TraceFromHeaders extracts a context from h; ok is false when no trace
// id is present (the callee should mint its own).
func TraceFromHeaders(h http.Header) (tc TraceContext, ok bool) {
	tc.TraceID = h.Get(HeaderTraceID)
	if tc.TraceID == "" {
		return TraceContext{}, false
	}
	tc.SpanID = h.Get(HeaderSpanID)
	tc.Campaign = h.Get(HeaderCampaign)
	tc.Hedged = h.Get(HeaderHedge) == "1"
	return tc, true
}

// StageSpan is one recorded stage of a cell's execution. Spans are
// plain data and cross process boundaries verbatim (a worker ships its
// spans back inside the /v1/exec response; the coordinator adopts them
// as children).
type StageSpan struct {
	// Stage is one of the Stage* constants above.
	Stage string `json:"stage"`
	// StartUnixNs is the span's start on the recording host's clock.
	// Cross-host comparisons are subject to clock skew (DESIGN.md §11).
	StartUnixNs int64 `json:"start_unix_ns"`
	// DurNs is the span's duration.
	DurNs int64 `json:"dur_ns"`
	// Worker names the daemon that recorded the span, for child spans
	// adopted across a dispatch hop.
	Worker string `json:"worker,omitempty"`
	// Detail carries stage-specific annotation ("hit"/"miss"/"l1" for
	// cache probes, an HTTP status for failed remote legs, ...).
	Detail string `json:"detail,omitempty"`
	// Hedged marks a remote span as a hedged duplicate leg.
	Hedged bool `json:"hedged,omitempty"`
	// Winner marks the remote leg whose result was used (at most one
	// per trace).
	Winner bool `json:"winner,omitempty"`
	// Child marks a nested span (adopted from a callee or a coalesce
	// leader); child spans overlap their parent and are excluded from
	// top-level stage sums.
	Child bool `json:"child,omitempty"`
	// Err records the failure for spans that ended in error.
	Err string `json:"err,omitempty"`
}

// CellTrace accumulates the spans of one cell execution. It is safe for
// concurrent use (serve fans one flight's result to many waiters) and
// every method is a no-op on a nil receiver, so untraced paths thread a
// nil *CellTrace with zero branching at call sites.
type CellTrace struct {
	mu     sync.Mutex
	tc     TraceContext
	span   string // this execution's own span id
	digest string
	start  time.Time
	joined string
	cached bool
	errMsg string
	spans  []StageSpan
}

// NewCellTrace opens a trace for one cell execution. An empty inherited
// context mints a fresh trace id; the execution always gets its own
// span id with tc.SpanID as parent.
func NewCellTrace(tc TraceContext, digest string) *CellTrace {
	return NewCellTraceAt(tc, digest, time.Now())
}

// NewCellTraceAt opens a trace whose wall clock starts at start — used
// when the cell's life began before execution (a scheduler queue), so
// queue-wait spans stay inside the trace's wall time.
func NewCellTraceAt(tc TraceContext, digest string, start time.Time) *CellTrace {
	if tc.TraceID == "" {
		tc.TraceID = MintID()
	}
	if start.IsZero() {
		start = time.Now()
	}
	return &CellTrace{tc: tc, span: MintID(), digest: digest, start: start}
}

// Context returns the propagation context for outbound hops: the trace
// id with this execution's span as the parent-to-be.
func (t *CellTrace) Context() TraceContext {
	if t == nil {
		return TraceContext{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	tc := t.tc
	tc.SpanID = t.span
	return tc
}

// TraceID returns the trace id ("" on nil).
func (t *CellTrace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.tc.TraceID
}

// Stage records a stage that started at start and ends now.
func (t *CellTrace) Stage(stage string, start time.Time) {
	t.StageDetail(stage, start, "")
}

// StageDetail records a stage with a Detail annotation.
func (t *CellTrace) StageDetail(stage string, start time.Time, detail string) {
	if t == nil {
		return
	}
	t.Record(StageSpan{
		Stage:       stage,
		StartUnixNs: start.UnixNano(),
		DurNs:       time.Since(start).Nanoseconds(),
		Detail:      detail,
	})
}

// Record appends a fully built span.
func (t *CellTrace) Record(sp StageSpan) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Adopt copies spans recorded by another party (a worker's shipped
// spans, a coalesce leader's flight) as children of this trace. Worker
// labels spans that don't already carry an origin.
func (t *CellTrace) Adopt(spans []StageSpan, worker string) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	for _, sp := range spans {
		sp.Child = true
		if sp.Worker == "" {
			sp.Worker = worker
		}
		t.spans = append(t.spans, sp)
	}
	t.mu.Unlock()
}

// SetJoined marks this trace as coalesced onto another in-flight
// execution (the leader's trace id).
func (t *CellTrace) SetJoined(leaderTraceID string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.joined = leaderTraceID
	t.mu.Unlock()
}

// SetCached marks whether the cell resolved from cache.
func (t *CellTrace) SetCached(cached bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.cached = cached
	t.mu.Unlock()
}

// SetError records a terminal error.
func (t *CellTrace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	t.errMsg = err.Error()
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans ("" on nil: nil slice).
func (t *CellTrace) Spans() []StageSpan {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageSpan, len(t.spans))
	copy(out, t.spans)
	return out
}

// StageTotalsUs aggregates the top-level recorded span durations (µs)
// by stage name, for journaling a per-cell breakdown; nil when nothing
// was recorded (or on a nil receiver).
func (t *CellTrace) StageTotalsUs() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var m map[string]int64
	for _, sp := range t.spans {
		if sp.Child {
			continue
		}
		if m == nil {
			m = make(map[string]int64)
		}
		m[sp.Stage] += sp.DurNs / 1e3
	}
	return m
}

// Finish closes the trace and returns its snapshot. The trace remains
// usable (serve snapshots at each waiter's return; late spans simply
// miss earlier snapshots).
func (t *CellTrace) Finish() CellTraceSnapshot {
	if t == nil {
		return CellTraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := CellTraceSnapshot{
		TraceID:     t.tc.TraceID,
		SpanID:      t.span,
		Parent:      t.tc.SpanID,
		Campaign:    t.tc.Campaign,
		Digest:      t.digest,
		Hedged:      t.tc.Hedged,
		Joined:      t.joined,
		Cached:      t.cached,
		Error:       t.errMsg,
		StartUnixNs: t.start.UnixNano(),
		WallNs:      time.Since(t.start).Nanoseconds(),
	}
	s.Spans = make([]StageSpan, len(t.spans))
	copy(s.Spans, t.spans)
	return s
}

// CellTraceSnapshot is the stitched end-to-end timeline of one cell
// execution, as served on GET /v1/tracez.
type CellTraceSnapshot struct {
	TraceID  string `json:"trace_id"`
	SpanID   string `json:"span_id"`
	Parent   string `json:"parent_span_id,omitempty"`
	Campaign string `json:"campaign,omitempty"`
	Digest   string `json:"digest"`
	// Hedged marks a trace opened for a hedged duplicate request.
	Hedged bool `json:"hedged,omitempty"`
	// Joined names the leader trace this request coalesced onto.
	Joined string `json:"joined_trace_id,omitempty"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// StartUnixNs / WallNs bound the observed end-to-end wall time on
	// the recording daemon's clock.
	StartUnixNs int64       `json:"start_unix_ns"`
	WallNs      int64       `json:"wall_ns"`
	Spans       []StageSpan `json:"spans,omitempty"`
}

// StageSumNs sums top-level stage durations: child spans (nested work
// adopted from a callee) and losing hedge legs are excluded, so the sum
// is ≤ WallNs up to the documented slack (DESIGN.md §11).
func (s CellTraceSnapshot) StageSumNs() int64 {
	var sum int64
	for _, sp := range s.Spans {
		if sp.Child {
			continue
		}
		if sp.Stage == StageRemote && sp.Hedged && !sp.Winner {
			continue
		}
		sum += sp.DurNs
	}
	return sum
}

// StageTotalsUs aggregates top-level span durations (µs) by stage name
// — the per-cell breakdown the campaign journal persists. Returns nil
// when no spans were recorded.
func (s CellTraceSnapshot) StageTotalsUs() map[string]int64 {
	var m map[string]int64
	for _, sp := range s.Spans {
		if sp.Child {
			continue
		}
		if m == nil {
			m = make(map[string]int64)
		}
		m[sp.Stage] += sp.DurNs / 1e3
	}
	return m
}

// TraceRing keeps the most recent N cell-trace snapshots; it is safe
// for concurrent use (every serve waiter pushes on return).
type TraceRing struct {
	mu    sync.Mutex
	buf   []CellTraceSnapshot
	next  int
	total uint64
}

// DefaultTraceDepth is the default tracez ring capacity.
const DefaultTraceDepth = 256

// NewTraceRing builds a ring of the given capacity (≤ 0 uses
// DefaultTraceDepth).
func NewTraceRing(capacity int) *TraceRing {
	if capacity <= 0 {
		capacity = DefaultTraceDepth
	}
	return &TraceRing{buf: make([]CellTraceSnapshot, 0, capacity)}
}

// Add records a snapshot, evicting the oldest once full. No-op on nil
// (tracing disabled).
func (r *TraceRing) Add(s CellTraceSnapshot) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, s)
	} else {
		r.buf[r.next] = s
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
	r.mu.Unlock()
}

// Total returns the number of traces ever recorded (0 on nil).
func (r *TraceRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the buffered traces oldest-first (nil receiver:
// empty).
func (r *TraceRing) Snapshot() []CellTraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CellTraceSnapshot, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		copy(out, r.buf)
		return out
	}
	n := copy(out, r.buf[r.next:])
	copy(out[n:], r.buf[:r.next])
	return out
}

// Waterfall renders the trace as a text timeline: one bar per span,
// offset and scaled against the trace's wall time. width is the bar
// column in characters (≤ 0 uses 48).
func (s CellTraceSnapshot) Waterfall(w io.Writer, width int) error {
	if width <= 0 {
		width = 48
	}
	digest := s.Digest
	if len(digest) > 12 {
		digest = digest[:12]
	}
	var flags []string
	if s.Cached {
		flags = append(flags, "cached")
	}
	if s.Hedged {
		flags = append(flags, "hedged-duplicate")
	}
	if s.Joined != "" {
		flags = append(flags, "coalesced→"+s.Joined)
	}
	if s.Error != "" {
		flags = append(flags, "error: "+s.Error)
	}
	suffix := ""
	if len(flags) > 0 {
		suffix = "  [" + strings.Join(flags, ", ") + "]"
	}
	if _, err := fmt.Fprintf(w, "trace %s  cell %s  wall %s  stages %s%s\n",
		s.TraceID, digest, time.Duration(s.WallNs), time.Duration(s.StageSumNs()), suffix); err != nil {
		return err
	}
	// Children sort under their position in recorded order; recorded
	// order already reflects execution order per recorder, so sort by
	// start time only for display.
	spans := make([]StageSpan, len(s.Spans))
	copy(spans, s.Spans)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUnixNs < spans[j].StartUnixNs })
	for _, sp := range spans {
		off := sp.StartUnixNs - s.StartUnixNs
		if off < 0 {
			off = 0
		}
		lead := 0
		if s.WallNs > 0 {
			lead = int(off * int64(width) / s.WallNs)
		}
		bar := 0
		if s.WallNs > 0 {
			bar = int(sp.DurNs * int64(width) / s.WallNs)
		}
		if lead > width {
			lead = width
		}
		if bar < 1 {
			bar = 1
		}
		if lead+bar > width {
			bar = width - lead
			if bar < 1 {
				bar = 1
				lead = width - 1
			}
		}
		name := sp.Stage
		if sp.Child {
			name = "  └ " + name
		}
		var tags []string
		if sp.Worker != "" {
			tags = append(tags, sp.Worker)
		}
		if sp.Detail != "" {
			tags = append(tags, sp.Detail)
		}
		if sp.Hedged {
			tags = append(tags, "hedge")
		}
		if sp.Winner {
			tags = append(tags, "winner")
		}
		if sp.Err != "" {
			tags = append(tags, "err: "+sp.Err)
		}
		tag := ""
		if len(tags) > 0 {
			tag = "  (" + strings.Join(tags, ", ") + ")"
		}
		if _, err := fmt.Fprintf(w, "  %-14s %s%s%s %10s%s\n",
			name,
			strings.Repeat(" ", lead),
			strings.Repeat("█", bar),
			strings.Repeat(" ", width-lead-bar),
			time.Duration(sp.DurNs), tag); err != nil {
			return err
		}
	}
	return nil
}

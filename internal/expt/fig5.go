package expt

import (
	"fmt"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/metrics"
	"duplexity/internal/netmodel"
	"duplexity/internal/power"
	"duplexity/internal/workload"
)

// designColumns returns the Figure 5 column header set.
func designColumns(first string) []string {
	cols := []string{first}
	for _, d := range core.AllDesigns {
		cols = append(cols, d.String())
	}
	return cols
}

// perCellTable builds a workload@load × design table from a cell metric,
// with an aggregate row (arithmetic mean of the metric, or geometric mean
// when normalizing ratios).
func (s *Suite) perCellTable(title string, value func(cell) float64, format func(float64) string, geomeanRow bool) (*Table, error) {
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	t := &Table{Title: title, Columns: designColumns("workload@load")}
	perDesign := make(map[core.Design][]float64)
	for _, spec := range workload.Microservices() {
		for _, load := range Loads {
			row := []string{fmt.Sprintf("%s@%d%%", spec.Name, int(load*100))}
			for _, d := range core.AllDesigns {
				v := 0.0
				for _, c := range s.matrix {
					if c.Design == d && c.Workload == spec.Name && c.Load == load {
						v = value(c)
						break
					}
				}
				perDesign[d] = append(perDesign[d], v)
				row = append(row, format(v))
			}
			t.AddRow(row...)
		}
	}
	mean := []string{"mean"}
	for _, d := range core.AllDesigns {
		var m float64
		var err error
		if geomeanRow {
			m, err = metrics.GeoMean(perDesign[d])
		} else {
			m, err = metrics.Mean(perDesign[d])
		}
		if err != nil {
			m = 0
		}
		mean = append(mean, format(m))
	}
	t.AddRow(mean...)
	return t, nil
}

// Fig5a regenerates Figure 5(a): master-core utilization (instructions
// retired on the master-core — including borrowed filler-threads, but
// not the lender-core — over peak retire slots).
func (s *Suite) Fig5a() (*Table, error) {
	return s.perCellTable(
		"Figure 5(a): core utilization",
		func(c cell) float64 { return c.Utilization },
		f3, false)
}

// Fig5b regenerates Figure 5(b): performance density (instructions per
// second per mm² of the evaluated unit), normalized to Baseline.
func (s *Suite) Fig5b() (*Table, error) {
	density := func(c cell) float64 {
		d, err := power.PerfDensity(c.Design, power.Activity{
			Seconds: c.Seconds, OoOInstrs: c.OoORetired, InOInstrs: c.InORetired,
		})
		if err != nil {
			return 0
		}
		return d
	}
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	baseline := make(map[string]float64)
	for _, c := range s.matrix {
		if c.Design == core.DesignBaseline {
			baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)] = density(c)
		}
	}
	t, err := s.perCellTable(
		"Figure 5(b): normalized performance density",
		func(c cell) float64 {
			b := baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)]
			if b == 0 {
				return 0
			}
			return density(c) / b
		},
		f2, true)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "instructions/s/mm² over core+lender+2MB LLC, normalized to Baseline")
	return t, nil
}

// Fig5c regenerates Figure 5(c): energy per instruction normalized to
// Baseline (lower is better).
func (s *Suite) Fig5c() (*Table, error) {
	energy := func(c cell) float64 {
		e, err := power.EnergyPerInstrNJ(c.Design, power.Activity{
			Seconds: c.Seconds, OoOInstrs: c.OoORetired, InOInstrs: c.InORetired,
		})
		if err != nil {
			return 0
		}
		return e
	}
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	baseline := make(map[string]float64)
	for _, c := range s.matrix {
		if c.Design == core.DesignBaseline {
			baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)] = energy(c)
		}
	}
	t, err := s.perCellTable(
		"Figure 5(c): normalized energy per instruction (lower is better)",
		func(c cell) float64 {
			b := baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)]
			if b == 0 {
				return 0
			}
			return energy(c) / b
		},
		f2, true)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes, "leakage over chip area plus per-instruction dynamic energy, normalized to Baseline")
	return t, nil
}

// tailP99 runs the BigHouse-style queueing stage for one design point
// over the Slowdowns() memo — the legacy inline path, kept for the
// single-phase A/B baseline (-single-phase). The default Figure 5(d)/(e)
// path resolves the same computation as content-addressed tail cells
// (see tail.go); both execute queueTail, so they agree byte-for-byte.
func (s *Suite) tailP99(design core.Design, spec *workload.Spec, load, lambdaQPS float64) (float64, error) {
	c, err := s.queueTail(design, spec, load, lambdaQPS, s.slowdowns[slowKey{design, spec.Name}])
	if err != nil {
		return 0, err
	}
	return c.P99Us, nil
}

// tailTable renders a normalized Figure 5(d)/(e)-shaped table from a
// per-(workload, load) p99 lookup.
func (s *Suite) tailTable(title string, notes []string, p99 func(d core.Design, spec *workload.Spec, load float64) (float64, error)) (*Table, error) {
	t := &Table{Title: title, Columns: designColumns("workload@load"), Notes: notes}
	perDesign := make(map[core.Design][]float64)
	for _, spec := range workload.Microservices() {
		for _, load := range Loads {
			base, err := p99(core.DesignBaseline, spec, load)
			if err != nil {
				return nil, err
			}
			row := []string{fmt.Sprintf("%s@%d%%", spec.Name, int(load*100))}
			for _, d := range core.AllDesigns {
				p, err := p99(d, spec, load)
				if err != nil {
					return nil, err
				}
				norm := p / base
				perDesign[d] = append(perDesign[d], norm)
				row = append(row, f2(norm))
			}
			t.AddRow(row...)
		}
	}
	mean := []string{"geomean"}
	for _, d := range core.AllDesigns {
		m, err := metrics.GeoMean(perDesign[d])
		if err != nil {
			m = 0
		}
		mean = append(mean, f2(m))
	}
	t.AddRow(mean...)
	return t, nil
}

// tailCellLookup runs a batch of tail tasks through the campaign
// engine and returns a lookup keyed on the cell's full coordinates.
func (s *Suite) tailCellLookup(tasks []campaign.Task[tailCell]) (func(d core.Design, spec *workload.Spec, load float64) (float64, error), error) {
	if s.engErr != nil {
		return nil, s.engErr
	}
	cells, err := campaign.Run(s.eng, tasks)
	if err != nil {
		return nil, err
	}
	byPoint := make(map[string]float64, len(cells))
	for _, c := range cells {
		byPoint[fmt.Sprintf("%v|%s|%v", c.Design, c.Workload, c.Load)] = c.P99Us
	}
	return func(d core.Design, spec *workload.Spec, load float64) (float64, error) {
		p, ok := byPoint[fmt.Sprintf("%v|%s|%v", d, spec.Name, load)]
		if !ok {
			return 0, fmt.Errorf("expt: no tail cell for %v/%s@%v", d, spec.Name, load)
		}
		return p, nil
	}, nil
}

var fig5dNotes = []string{
	"BigHouse methodology: M/G/1 at request granularity, service scaled by measured IPC slowdown",
	"values >> 1 indicate QoS violation; saturated points measured over a finite window",
}

// Fig5d regenerates Figure 5(d): 99th-percentile tail latency of the
// microservice, normalized to Baseline, at equal offered load. The
// queueing stage resolves as two-phase tail cells: each design×workload
// slowdown micro-sim simulates once (or hits a warm cache, including
// caches written before the split) and every load reuses it, and the
// queueing results themselves are cached — previously they were
// recomputed inline on every invocation.
func (s *Suite) Fig5d() (*Table, error) {
	const title = "Figure 5(d): normalized 99th-percentile tail latency"
	if s.opts.SinglePhase {
		if _, err := s.Slowdowns(); err != nil {
			return nil, err
		}
		return s.tailTable(title, fig5dNotes, func(d core.Design, spec *workload.Spec, load float64) (float64, error) {
			return s.tailP99(d, spec, load, spec.QPSAtLoad(load))
		})
	}
	lookup, err := s.tailCellLookup(s.tailMatrixTasks())
	if err != nil {
		return nil, err
	}
	return s.tailTable(title, fig5dNotes, lookup)
}

// Fig5e regenerates Figure 5(e): iso-throughput 99th-percentile tail
// latency — load scaled per design in proportion to its performance
// density, normalized to Baseline. The density scaling comes from the
// open-loop matrix campaign; the queueing stage resolves as two-phase
// tail cells keyed on the scaled arrival rate. Baseline's scaled rate
// is exactly the nominal one (dd/dBase is exactly 1.0 when dd == dBase),
// so its cells share digests — and therefore cache entries — with
// Figure 5(d).
func (s *Suite) Fig5e() (*Table, error) {
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	density := func(d core.Design, wl string, load float64) float64 {
		for _, c := range s.matrix {
			if c.Design == d && c.Workload == wl && c.Load == load {
				pd, err := power.PerfDensity(d, power.Activity{
					Seconds: c.Seconds, OoOInstrs: c.OoORetired, InOInstrs: c.InORetired,
				})
				if err != nil {
					return 0
				}
				return pd
			}
		}
		return 0
	}
	isoLambda := func(d core.Design, spec *workload.Spec, load float64) float64 {
		lambdaBase := spec.QPSAtLoad(load)
		dBase := density(core.DesignBaseline, spec.Name, load)
		if dd := density(d, spec.Name, load); dd > 0 && dBase > 0 {
			return lambdaBase * dd / dBase
		}
		return lambdaBase
	}
	const title = "Figure 5(e): normalized iso-throughput 99th-percentile tail latency"
	notes := []string{
		"arrival rate scaled per design by its performance density (equal cost comparison)",
	}
	if s.opts.SinglePhase {
		if _, err := s.Slowdowns(); err != nil {
			return nil, err
		}
		return s.tailTable(title, notes, func(d core.Design, spec *workload.Spec, load float64) (float64, error) {
			return s.tailP99(d, spec, load, isoLambda(d, spec, load))
		})
	}
	var tasks []campaign.Task[tailCell]
	for _, spec := range workload.Microservices() {
		for _, load := range Loads {
			for _, d := range core.AllDesigns {
				tasks = append(tasks, s.tailTask(d, spec, load, isoLambda(d, spec, load)))
			}
		}
	}
	lookup, err := s.tailCellLookup(tasks)
	if err != nil {
		return nil, err
	}
	return s.tailTable(title, notes, lookup)
}

// Fig5f regenerates Figure 5(f): batch-thread system throughput (STP),
// normalized to Baseline. With homogeneous batch threads, STP is
// proportional to aggregate batch instruction throughput, so the
// normalization is exact.
func (s *Suite) Fig5f() (*Table, error) {
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	baseline := make(map[string]float64)
	for _, c := range s.matrix {
		if c.Design == core.DesignBaseline {
			baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)] = float64(c.BatchRetired) / c.Seconds
		}
	}
	t, err := s.perCellTable(
		"Figure 5(f): normalized batch system throughput (STP)",
		func(c cell) float64 {
			b := baseline[fmt.Sprintf("%s@%v", c.Workload, c.Load)]
			if b == 0 {
				return 0
			}
			return float64(c.BatchRetired) / c.Seconds / b
		},
		f2, true)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"batch = lender-core + borrowed fillers + SMT co-runner; PageRank/SSSP BSP filler threads")
	return t, nil
}

// Fig6 regenerates Figure 6: network IOPS utilization per dyad on an
// FDR 4x InfiniBand link.
func (s *Suite) Fig6() (*Table, error) {
	if _, err := s.Matrix(); err != nil {
		return nil, err
	}
	nic := netmodel.FDR4x()
	maxU := 0.0
	t, err := s.perCellTable(
		"Figure 6: network IOPS utilization per dyad (%)",
		func(c cell) float64 {
			u, _, err := nic.Utilization(c.RemotesPerS, 64)
			if err != nil {
				return 0
			}
			if u > maxU {
				maxU = u
			}
			return u * 100
		},
		f2, false)
	if err != nil {
		return nil, err
	}
	dyads := 0
	if maxU > 0 {
		dyads = int(1 / maxU)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("max per-dyad utilization %.2f%%: %d dyads can share one FDR port", maxU*100, dyads))
	return t, nil
}

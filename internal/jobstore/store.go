package jobstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"duplexity/internal/expt"
)

// Record is the on-disk job header: everything needed to reconstruct
// the job after a restart except the per-cell progress (the cursor)
// and the result bytes (the campaign cache). It is rewritten atomically
// on every state transition, mirroring the campaign checkpoint's
// temp-file-and-rename discipline.
type Record struct {
	Version        int             `json:"version"`
	ID             string          `json:"id"`
	Tenant         string          `json:"tenant"`
	Lane           Lane            `json:"lane"`
	Kind           string          `json:"kind"`
	Cells          []expt.CellSpec `json:"cells"`
	DeadlineUnixMs int64           `json:"deadline_unix_ms,omitempty"`
	TTLSec         int64           `json:"ttl_sec,omitempty"`
	CreatedUnixMs  int64           `json:"created_unix_ms"`
	State          string          `json:"state"`
	DoneUnixMs     int64           `json:"done_unix_ms,omitempty"`
	DeadlineMet    bool            `json:"deadline_met,omitempty"`
}

// recordVersion guards the on-disk format; unknown versions are
// skipped on load rather than misread.
const recordVersion = 1

// CursorEntry is one append-only cursor line: cell Index finished,
// with Error set when it failed. No entry means the cell never
// finished — drain- or crash-interrupted cells are deliberately not
// written, which is exactly what makes them resume.
type CursorEntry struct {
	Index int    `json:"index"`
	Error string `json:"error,omitempty"`
}

// StoredJob is one job as read back from disk.
type StoredJob struct {
	Record Record
	Cursor []CursorEntry
}

// Store persists job records (<id>.job.json) and cursors
// (<id>.cursor.jsonl) under one directory.
type Store struct {
	dir string
	mu  sync.Mutex
	seq int
}

const (
	recordSuffix = ".job.json"
	cursorSuffix = ".cursor.jsonl"
)

// OpenStore opens (creating if needed) a job store rooted at dir and
// scans it for the highest existing job sequence number, so restarted
// daemons keep minting fresh IDs.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &Store{dir: dir}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	for _, de := range names {
		if n, ok := seqOf(de.Name()); ok && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

// seqOf extracts the numeric sequence from a "j%04d"-prefixed file
// name.
func seqOf(name string) (int, bool) {
	base, ok := strings.CutSuffix(name, recordSuffix)
	if !ok {
		if base, ok = strings.CutSuffix(name, cursorSuffix); !ok {
			return 0, false
		}
	}
	if !strings.HasPrefix(base, "j") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimPrefix(base, "j"))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// MaxSeq returns the highest job sequence number seen on disk.
func (s *Store) MaxSeq() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Put atomically writes (or rewrites) a job record.
func (s *Store) Put(rec Record) error {
	rec.Version = recordVersion
	raw, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encoding record %s: %w", rec.ID, err)
	}
	path := filepath.Join(s.dir, rec.ID+recordSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.mu.Lock()
	if n, ok := seqOf(rec.ID + recordSuffix); ok && n > s.seq {
		s.seq = n
	}
	s.mu.Unlock()
	return nil
}

// AppendCursor appends one finished-cell entry to the job's cursor.
// Like the campaign journal, each append opens/writes/closes so a
// crash loses at most the line being written — and a torn final line
// is tolerated on load.
func (s *Store) AppendCursor(id string, e CursorEntry) error {
	raw, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("jobstore: encoding cursor for %s: %w", id, err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, id+cursorSuffix),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(append(raw, '\n')); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Load reads every job back from disk, sorted by ID. Records that fail
// to parse (torn writes, foreign files) are skipped; torn trailing
// cursor lines are dropped.
func (s *Store) Load() ([]StoredJob, error) {
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var jobs []StoredJob
	for _, de := range names {
		if !strings.HasSuffix(de.Name(), recordSuffix) {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.dir, de.Name()))
		if err != nil {
			continue
		}
		var rec Record
		if json.Unmarshal(raw, &rec) != nil || rec.Version != recordVersion || rec.ID == "" {
			continue
		}
		jobs = append(jobs, StoredJob{Record: rec, Cursor: s.readCursor(rec.ID)})
	}
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Record.ID < jobs[j].Record.ID })
	return jobs, nil
}

func (s *Store) readCursor(id string) []CursorEntry {
	f, err := os.Open(filepath.Join(s.dir, id+cursorSuffix))
	if err != nil {
		return nil
	}
	defer f.Close()
	var out []CursorEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e CursorEntry
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			break // torn tail: everything after it is unreadable
		}
		out = append(out, e)
	}
	return out
}

// Reap removes a job's record and cursor from disk.
func (s *Store) Reap(id string) error {
	var first error
	for _, suffix := range []string{recordSuffix, cursorSuffix} {
		if err := os.Remove(filepath.Join(s.dir, id+suffix)); err != nil && !os.IsNotExist(err) && first == nil {
			first = fmt.Errorf("jobstore: %w", err)
		}
	}
	return first
}

package telemetry

import "math/bits"

// NumBuckets is the fixed bucket count of a Histogram: bucket 0 holds
// exact zeros and bucket k (1 ≤ k ≤ 64) holds values in [2^(k-1), 2^k).
const NumBuckets = 65

// Histogram is a fixed-size log-scaled histogram with power-of-two
// bucket boundaries. Observations are uint64 (cycle counts, latencies in
// ns, byte sizes, ...). Histograms are mergeable: two histograms of the
// same quantity can be summed bucket-wise, so per-shard histograms
// aggregate exactly.
//
// Like Counter, Observe is unsynchronized (single-goroutine simulator).
type Histogram struct {
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [NumBuckets]uint64
}

// bucketIndex returns the bucket for v: 0 for v == 0, else
// bits.Len64(v), i.e. v ∈ [2^(k-1), 2^k) lands in bucket k.
func bucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns bucket i's half-open value range [lo, hi).
// Bucket 0 is [0, 1); bucket 64's upper bound saturates at MaxUint64.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 1
	}
	lo = uint64(1) << (i - 1)
	if i >= 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1) << i
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// Merge adds o's observations into h. Min/max and the bucket-wise sums
// merge exactly; h is unchanged when o is nil or empty.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min returns the smallest observed value (0 if empty).
func (h *Histogram) Min() uint64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observed value (0 if empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean returns the arithmetic mean of observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns bucket i's count.
func (h *Histogram) Bucket(i int) uint64 {
	if i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i]
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1): the
// upper bound of the bucket containing the ceil(q*count)-th observation,
// clamped to the observed max. Resolution is one power of two.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			_, hi := BucketBounds(i)
			if hi > h.max {
				return h.max
			}
			return hi
		}
	}
	return h.max
}

// BucketCount is one non-empty bucket of a histogram snapshot.
type BucketCount struct {
	// Lo and Hi bound the bucket's half-open value range [Lo, Hi).
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is an encodable point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Min     uint64        `json:"min"`
	Max     uint64        `json:"max"`
	Mean    float64       `json:"mean"`
	P50     uint64        `json:"p50"`
	P95     uint64        `json:"p95"`
	P99     uint64        `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state, keeping only non-empty
// buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count, Sum: h.sum, Min: h.Min(), Max: h.max,
		Mean: h.Mean(),
		P50:  h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, BucketCount{Lo: lo, Hi: hi, Count: c})
	}
	return s
}

// Command duplexityd runs the simulation campaign engine as a
// long-running HTTP/JSON daemon, plus the client tooling to drive it.
//
// Usage:
//
//	duplexityd serve   [-addr a] [-scale f] [-seed n] [-workers n]
//	                   [-cachedir dir] [-resume] [-queue n] [-rps f]
//	                   [-burst n] [-timeout d] [-drain-timeout d]
//	                   [-tracing] [-trace-depth n]
//	duplexityd coordinate -fleet url1,url2,... [-addr a] [-scale f]
//	                   [-seed n] [-workers n] [-cachedir dir] [-resume]
//	                   [-queue n] [-rps f] [-burst n] [-timeout d]
//	                   [-drain-timeout d] [-hedge-after d]
//	                   [-tracing] [-trace-depth n]
//	duplexityd submit  [-addr a] [-campaign] [-kind k] [-designs l]
//	                   [-workloads l] [-loads l] [-design d] [-workload w]
//	                   [-load f] [-timeout-ms n]
//	duplexityd status  [-addr a]
//	duplexityd tracez  [-addr a] [-n n] [-width n]
//	duplexityd loadgen [-addr a] [-conc n] [-requests n] [-qps f]
//	                   [-duration d] [-spread n] [-design d] [-workload w]
//
// serve exposes the campaign engine over HTTP: POST /v1/cells for
// synchronous single cells, POST /v1/campaigns + GET /v1/campaigns/{id}
// for streamed batches, GET /v1/healthz and /v1/statz for operations.
// The daemon serves one fixed (scale, seed) world; requests name only
// the cell axes (kind, design, workload, load). SIGTERM or SIGINT
// drains gracefully: new work is refused, admitted cells finish, and
// the campaign checkpoint is flushed.
//
// coordinate runs the same HTTP surface but resolves cells through a
// worker fleet instead of the local simulation pool: cells shard across
// the -fleet workers by rendezvous hashing on their cache digests,
// stragglers are hedged to a second worker after an adaptive p99-based
// threshold, failed workers are retried with backoff, and merged
// results land in the coordinator's cache byte-identical to a
// single-node run. With -scale/-seed unset the coordinator adopts the
// workers' world; set them to pin (and verify) it. GET /v1/fleetz
// reports per-worker dispatch state.
//
// submit posts one cell (default) or a campaign (-campaign) to a
// running daemon and writes results to stdout — campaign results stream
// as NDJSON in submission order. status pretty-prints /v1/statz.
//
// tracez fetches a daemon's GET /v1/tracez ring and renders the -n
// slowest cells as text waterfalls: one bar per stage (admission,
// coalesce, cache, remote, compute, serialize), hedged duplicates and
// adopted worker-side child spans indented under their parents. Every
// daemon also serves GET /v1/metricsz (Prometheus text exposition);
// coordinators additionally aggregate their workers' metrics under
// GET /v1/fleet/metricsz with per-worker labels.
//
// loadgen drives a running daemon closed-loop (-conc workers issuing
// -requests total) or open-loop (-qps arrivals for -duration), spreads
// requests over -spread distinct load points so the cache doesn't
// absorb everything, and reports a single-line JSON envelope with
// throughput and latency quantiles.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"duplexity/internal/core"
	"duplexity/internal/expt"
	"duplexity/internal/fleet"
	"duplexity/internal/serve"
	"duplexity/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "coordinate":
		err = cmdCoordinate(os.Args[2:])
	case "submit":
		err = cmdSubmit(os.Args[2:])
	case "status":
		err = cmdStatus(os.Args[2:])
	case "tracez":
		err = cmdTracez(os.Args[2:])
	case "loadgen":
		err = cmdLoadgen(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "duplexityd: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "duplexityd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: duplexityd <command> [flags]

commands:
  serve       run the simulation daemon
  coordinate  run the daemon as a fleet coordinator over -fleet workers
  submit      submit a cell or campaign to a running daemon
  status      print a running daemon's /v1/statz
  tracez      render a running daemon's slowest cell traces as waterfalls
  loadgen     drive a running daemon with closed- or open-loop load

run "duplexityd <command> -h" for per-command flags
`)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	scale := fs.Float64("scale", 1.0, "simulation fidelity (1.0 = paper scale)")
	seed := fs.Uint64("seed", 1, "campaign seed")
	workers := fs.Int("workers", 0, "simulation pool width (0 = one per CPU)")
	cacheDir := fs.String("cachedir", "", "content-addressed result cache directory")
	resume := fs.Bool("resume", false, "use the default cache (.duplexity-cache) when -cachedir is unset")
	queue := fs.Int("queue", 0, "submission queue depth (0 = default 64)")
	rps := fs.Float64("rps", 0, "token-bucket rate limit on POST /v1/cells (0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst (0 = derived from -rps)")
	timeout := fs.Duration("timeout", 10*time.Minute, "default per-cell deadline")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "how long a drain waits for in-flight cells")
	tracing := fs.Bool("tracing", true, "record per-cell stage traces (GET /v1/tracez)")
	traceDepth := fs.Int("trace-depth", 0, "recent traces kept in the tracez ring (0 = default 256)")
	fs.Parse(args)
	if *resume && *cacheDir == "" {
		*cacheDir = ".duplexity-cache"
	}

	suite := expt.NewSuite(expt.Options{Scale: *scale, Seed: *seed, Workers: *workers, CacheDir: *cacheDir})
	srv, err := serve.New(serve.Config{
		Suite: suite, Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rps, Burst: *burst, DefaultTimeout: *timeout,
		DisableTracing: !*tracing, TraceDepth: *traceDepth,
	})
	if err != nil {
		return err
	}

	banner := fmt.Sprintf("serving on %%s (scale=%g seed=%d cachedir=%q)", *scale, *seed, *cacheDir)
	return serveUntilSignal(srv, srv.Handler(), *addr, banner, *drainTimeout)
}

// serveUntilSignal binds addr, serves handler, and on SIGTERM/SIGINT
// drains srv (refusing new work, finishing in-flight cells, flushing
// the campaign checkpoint) before shutting the listener down.
func serveUntilSignal(srv *serve.Server, handler http.Handler, addr, banner string, drainTimeout time.Duration) error {
	// Bind before announcing so scripts can poll the printed address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: "+banner+"\n", ln.Addr())

	hs := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "duplexityd: %v: draining (finishing in-flight cells)...\n", s)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		// The checkpoint may be lost but the cache and journal are still
		// consistent; report and exit nonzero.
		_ = hs.Close()
		return fmt.Errorf("drain: %w", err)
	}
	fmt.Fprintln(os.Stderr, "duplexityd: drained; checkpoint flushed")
	shCtx, shCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shCancel()
	return hs.Shutdown(shCtx)
}

func cmdCoordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "listen address")
	fleetList := fs.String("fleet", "", "comma-separated worker base URLs (required), e.g. http://h1:8077,http://h2:8077")
	scale := fs.Float64("scale", 0, "world scale the workers must serve (0 = adopt from workers)")
	seed := fs.Uint64("seed", 0, "world seed the workers must serve (0 = adopt from workers)")
	workers := fs.Int("workers", 0, "campaign engine width feeding the fleet (0 = one per CPU)")
	cacheDir := fs.String("cachedir", "", "coordinator-side content-addressed result cache directory")
	resume := fs.Bool("resume", false, "use the default cache (.duplexity-cache) when -cachedir is unset")
	queue := fs.Int("queue", 0, "submission queue depth (0 = default 64)")
	rps := fs.Float64("rps", 0, "token-bucket rate limit on POST /v1/cells (0 = unlimited)")
	burst := fs.Int("burst", 0, "token-bucket burst (0 = derived from -rps)")
	timeout := fs.Duration("timeout", 10*time.Minute, "default per-cell deadline")
	drainTimeout := fs.Duration("drain-timeout", 2*time.Minute, "how long a drain waits for in-flight cells")
	hedgeAfter := fs.Duration("hedge-after", 0, "straggler hedge threshold before p99 history accrues (0 = default 2s)")
	tracing := fs.Bool("tracing", true, "record per-cell stage traces (GET /v1/tracez)")
	traceDepth := fs.Int("trace-depth", 0, "recent traces kept in the tracez ring (0 = default 256)")
	fs.Parse(args)
	if *resume && *cacheDir == "" {
		*cacheDir = ".duplexity-cache"
	}

	coord, err := newCoordinator(*fleetList, *scale, *seed, *hedgeAfter)
	if err != nil {
		return err
	}
	world := coord.World()
	fmt.Fprintf(os.Stderr, "duplexityd: fleet registered: %d workers, world model=%s scale=%g seed=%d\n",
		len(strings.Split(*fleetList, ",")), world.Model, world.Scale, world.Seed)

	suite := expt.NewSuite(expt.Options{
		Scale: world.Scale, Seed: world.Seed, Workers: *workers,
		CacheDir: *cacheDir, Remote: coord,
	})
	srv, err := serve.New(serve.Config{
		Suite: suite, Workers: *workers, QueueDepth: *queue,
		RatePerSec: *rps, Burst: *burst, DefaultTimeout: *timeout,
		DisableTracing: !*tracing, TraceDepth: *traceDepth,
	})
	if err != nil {
		return err
	}

	// The coordinator serves the standard daemon surface plus its own
	// fleet introspection routes.
	mux := http.NewServeMux()
	mux.Handle("GET /v1/fleetz", coord.Handler())
	mux.Handle("GET /v1/fleet/metricsz", coord.Handler())
	mux.Handle("/", srv.Handler())

	banner := fmt.Sprintf("coordinating on %%s (scale=%g seed=%d cachedir=%q fleet=%s)",
		world.Scale, world.Seed, *cacheDir, *fleetList)
	return serveUntilSignal(srv, mux, *addr, banner, *drainTimeout)
}

// newCoordinator parses a -fleet worker list, builds the fleet
// coordinator, and registers it (verifying world identity). A zero
// scale+seed adopts the workers' world; otherwise the workers must
// match this binary's model at the given scale and seed.
func newCoordinator(fleetList string, scale float64, seed uint64, hedgeAfter time.Duration) (*fleet.Coordinator, error) {
	if fleetList == "" {
		return nil, fmt.Errorf("-fleet is required: comma-separated worker base URLs")
	}
	var urls []string
	for _, u := range strings.Split(fleetList, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		urls = append(urls, u)
	}
	o := fleet.Options{Workers: urls, HedgeAfter: hedgeAfter}
	if scale != 0 || seed != 0 {
		o.World = expt.World{Model: core.ModelVersion, Scale: scale, Seed: seed}
	}
	coord, err := fleet.New(o)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := coord.Register(ctx); err != nil {
		return nil, err
	}
	if w := coord.World(); w.Model != core.ModelVersion {
		return nil, fmt.Errorf("fleet serves model %q but this binary is %q", w.Model, core.ModelVersion)
	}
	return coord, nil
}

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	campaign := fs.Bool("campaign", false, "submit a campaign instead of one cell")
	kind := fs.String("kind", "matrix", "cell or campaign kind (matrix | slowdown | fig5 | slowdowns)")
	design := fs.String("design", "Baseline", "cell design")
	workload := fs.String("workload", "RSC", "cell workload")
	load := fs.Float64("load", 0.5, "cell offered load (0 for slowdown cells)")
	timeoutMs := fs.Int64("timeout-ms", 0, "per-request deadline in ms (0 = server default)")
	designs := fs.String("designs", "", "campaign designs, comma-separated (empty = all)")
	workloads := fs.String("workloads", "", "campaign workloads, comma-separated (empty = all)")
	loads := fs.String("loads", "", "campaign loads, comma-separated (empty = default grid)")
	fs.Parse(args)
	base := "http://" + *addr

	if !*campaign {
		body, err := postExpectOK(base+"/v1/cells", serve.CellRequest{
			CellSpec: expt.CellSpec{Kind: *kind, Design: *design, Workload: *workload, Load: *load},
			TimeoutMs: *timeoutMs,
		}, http.StatusOK)
		if err != nil {
			return err
		}
		os.Stdout.Write(body)
		return nil
	}

	spec := expt.CampaignSpec{Kind: *kind}
	if *designs != "" {
		spec.Designs = strings.Split(*designs, ",")
	}
	if *workloads != "" {
		spec.Workloads = strings.Split(*workloads, ",")
	}
	if *loads != "" {
		for _, f := range strings.Split(*loads, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return fmt.Errorf("parsing -loads: %w", err)
			}
			spec.Loads = append(spec.Loads, v)
		}
	}
	body, err := postExpectOK(base+"/v1/campaigns", spec, http.StatusAccepted)
	if err != nil {
		return err
	}
	var acc serve.CampaignAccepted
	if err := json.Unmarshal(body, &acc); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "duplexityd: campaign %s accepted (%d cells); streaming...\n", acc.ID, acc.Cells)
	resp, err := http.Get(base + acc.Stream)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("streaming %s: HTTP %d", acc.ID, resp.StatusCode)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func cmdStatus(args []string) error {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	fs.Parse(args)
	resp, err := http.Get("http://" + *addr + "/v1/statz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("statz: HTTP %d: %s", resp.StatusCode, data)
	}
	var buf bytes.Buffer
	if err := json.Indent(&buf, data, "", "  "); err != nil {
		return err
	}
	buf.WriteByte('\n')
	_, err = buf.WriteTo(os.Stdout)
	return err
}

// cmdTracez fetches a daemon's trace ring and renders the -n slowest
// cells as text waterfalls, slowest first.
func cmdTracez(args []string) error {
	fs := flag.NewFlagSet("tracez", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	n := fs.Int("n", 5, "how many of the slowest traces to render")
	width := fs.Int("width", 64, "waterfall bar width in columns")
	fs.Parse(args)
	resp, err := http.Get("http://" + *addr + "/v1/tracez")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("tracez: HTTP %d: %s", resp.StatusCode, data)
	}
	var tz serve.Tracez
	if err := json.Unmarshal(data, &tz); err != nil {
		return err
	}
	if tz.Disabled {
		fmt.Println("tracing is disabled on this daemon (-tracing=false)")
		return nil
	}
	if len(tz.Traces) == 0 {
		fmt.Printf("no traces recorded yet (%d total)\n", tz.Total)
		return nil
	}
	sort.Slice(tz.Traces, func(i, j int) bool { return tz.Traces[i].WallNs > tz.Traces[j].WallNs })
	if *n > 0 && len(tz.Traces) > *n {
		tz.Traces = tz.Traces[:*n]
	}
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	fmt.Fprintf(out, "%d traces recorded; slowest %d:\n\n", tz.Total, len(tz.Traces))
	for _, tr := range tz.Traces {
		if err := tr.Waterfall(out, *width); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// loadReport is loadgen's single-line JSON envelope (bench.sh parses
// it into BENCH_serve.json).
type loadReport struct {
	Mode         string  `json:"mode"` // "closed" | "open"
	Conc         int     `json:"conc,omitempty"`
	TargetQPS    float64 `json:"target_qps,omitempty"`
	Sent         int64   `json:"sent"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`
	Errors       int64   `json:"errors"`
	WallSeconds  float64 `json:"wall_seconds"`
	RPS          float64 `json:"rps"`
	LatencyP50Us uint64  `json:"latency_p50_us"`
	LatencyP99Us uint64  `json:"latency_p99_us"`
	// StatusCounts breaks Sent down by HTTP status code ("error" for
	// transport failures); ShedRate is Shed/Sent.
	StatusCounts map[string]int64 `json:"status_counts,omitempty"`
	ShedRate     float64          `json:"shed_rate"`
}

func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "daemon address")
	conc := fs.Int("conc", 4, "closed-loop concurrency")
	requests := fs.Int("requests", 0, "closed-loop total requests (0 = open loop)")
	qps := fs.Float64("qps", 0, "open-loop arrival rate")
	duration := fs.Duration("duration", 10*time.Second, "open-loop run length")
	spread := fs.Int("spread", 8, "distinct load points to cycle through (defeats pure cache hits)")
	design := fs.String("design", "Baseline", "cell design")
	workload := fs.String("workload", "RSC", "cell workload")
	fs.Parse(args)
	if *requests <= 0 && *qps <= 0 {
		return fmt.Errorf("loadgen: need -requests (closed loop) or -qps (open loop)")
	}
	if *spread < 1 {
		*spread = 1
	}
	base := "http://" + *addr

	// Distinct loads on a fine grid: request i exercises load
	// 0.05 + (i mod spread) * step, all within the valid (0, 0.95] range.
	cellFor := func(i int64) expt.CellSpec {
		step := 0.90 / float64(*spread)
		return expt.CellSpec{
			Kind: expt.KindMatrix, Design: *design, Workload: *workload,
			Load: math.Round((0.05+float64(i%int64(*spread))*step)*1e6) / 1e6,
		}
	}

	var (
		mu   sync.Mutex
		hist telemetry.Histogram
		rep  loadReport
	)
	rep.StatusCounts = make(map[string]int64)
	issue := func(i int64) {
		body, err := json.Marshal(cellFor(i))
		if err != nil {
			return
		}
		start := time.Now()
		resp, err := http.Post(base+"/v1/cells", "application/json", bytes.NewReader(body))
		us := uint64(time.Since(start).Microseconds())
		mu.Lock()
		defer mu.Unlock()
		rep.Sent++
		if err != nil {
			rep.Errors++
			rep.StatusCounts["error"]++
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		rep.StatusCounts[strconv.Itoa(resp.StatusCode)]++
		switch {
		case resp.StatusCode == http.StatusOK:
			rep.OK++
			hist.Observe(us)
		case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
			rep.Shed++
		default:
			rep.Errors++
		}
	}

	start := time.Now()
	if *requests > 0 {
		rep.Mode, rep.Conc = "closed", *conc
		var next int64
		var wg sync.WaitGroup
		nextCh := make(chan int64)
		go func() {
			for next = 0; next < int64(*requests); next++ {
				nextCh <- next
			}
			close(nextCh)
		}()
		for w := 0; w < *conc; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range nextCh {
					issue(i)
				}
			}()
		}
		wg.Wait()
	} else {
		rep.Mode, rep.TargetQPS = "open", *qps
		interval := time.Duration(float64(time.Second) / *qps)
		deadline := time.Now().Add(*duration)
		var wg sync.WaitGroup
		var i int64
		for t := time.Now(); t.Before(deadline); t = t.Add(interval) {
			if d := time.Until(t); d > 0 {
				time.Sleep(d)
			}
			wg.Add(1)
			go func(i int64) { defer wg.Done(); issue(i) }(i)
			i++
		}
		wg.Wait()
	}

	rep.WallSeconds = time.Since(start).Seconds()
	if rep.WallSeconds > 0 {
		rep.RPS = float64(rep.Sent) / rep.WallSeconds
	}
	if rep.Sent > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(rep.Sent)
	}
	rep.LatencyP50Us = hist.Quantile(0.50)
	rep.LatencyP99Us = hist.Quantile(0.99)
	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	if err := enc.Encode(rep); err != nil {
		return err
	}
	return out.Flush()
}

// postExpectOK posts v as JSON and returns the body, erroring on any
// status other than want (429s include the server's Retry-After hint).
func postExpectOK(url string, v any, want int) ([]byte, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != want {
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			return nil, fmt.Errorf("HTTP %d (retry after %ss): %s", resp.StatusCode, ra, bytes.TrimSpace(body))
		}
		return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	return body, nil
}

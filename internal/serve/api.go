package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/jobstore"
	"duplexity/internal/telemetry"
)

// CellRequest is the POST /v1/cells body: one cell plus an optional
// per-request deadline. A request whose deadline expires while the cell
// is still queued abandons it (the cell is cancelled and journaled
// incomplete if nobody else wants it); a deadline that expires during
// execution only abandons the response — the result still lands in the
// cache.
type CellRequest struct {
	expt.CellSpec
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// CampaignAccepted is the POST /v1/campaigns response: where to stream
// the submitted job's results from.
type CampaignAccepted struct {
	ID     string `json:"id"`
	Cells  int    `json:"cells"`
	Stream string `json:"stream"`
}

// JobRequest is the POST /v1/jobs body: a campaign expansion plus
// multi-tenant scheduling directives. The tenant may also arrive via
// the X-Duplexity-Tenant header; the body wins when both are set.
type JobRequest struct {
	expt.CampaignSpec
	Tenant string `json:"tenant,omitempty"`
	// Lane is "interactive" (deadline lane, dispatched first) or
	// "batch" (the default).
	Lane string `json:"lane,omitempty"`
	// DeadlineMs is the job's deadline relative to submission;
	// interactive jobs without one get the server default.
	DeadlineMs int64 `json:"deadline_ms,omitempty"`
	// TTLSec bounds the job's state lifetime (0: server default).
	TTLSec int64 `json:"ttl_sec,omitempty"`
}

// JobAccepted is the POST /v1/jobs response.
type JobAccepted struct {
	ID      string `json:"id"`
	Cells   int    `json:"cells"`
	Tenant  string `json:"tenant"`
	Lane    string `json:"lane"`
	Durable bool   `json:"durable"`
	Stream  string `json:"stream"`
}

// Queuez is the GET /v1/queuez body: the dispatch-relevant slice of a
// worker's state, polled by fleet coordinators for backpressure and
// verified once at registration for world identity.
type Queuez struct {
	Draining      bool       `json:"draining"`
	Workers       int        `json:"workers"`
	QueueCapacity int        `json:"queue_capacity"`
	QueueLength   int        `json:"queue_length"`
	InFlight      int        `json:"in_flight"`
	RetryAfterSec int        `json:"retry_after_sec"`
	World         expt.World `json:"world"`
}

// Healthz is the GET /v1/healthz body.
type Healthz struct {
	Status string `json:"status"` // "ok" | "draining"
}

// Statz is the GET /v1/statz body: admission/coalescing/latency metrics
// (log2 histograms with p50/p99), the campaign engine's cache
// accounting, and the job table.
type Statz struct {
	Draining      bool               `json:"draining"`
	Workers       int                `json:"workers"`
	QueueCapacity int                `json:"queue_capacity"`
	QueueLength   int                `json:"queue_length"`
	Campaign      campaign.Summary   `json:"campaign"`
	Metrics       telemetry.Snapshot `json:"metrics"`
	Jobs          []JobStatus        `json:"jobs,omitempty"`
	// JobStats is the job manager's lifecycle accounting, including
	// per-tenant scheduler state (weight, vtime, in-flight, queued).
	JobStats jobstore.Stats `json:"job_stats"`
}

// Tracez is the GET /v1/tracez body: the most recent stitched cell
// traces (oldest first) plus the lifetime total, or disabled=true when
// the daemon runs with tracing off.
type Tracez struct {
	Disabled bool                          `json:"disabled,omitempty"`
	Total    uint64                        `json:"total"`
	Traces   []telemetry.CellTraceSnapshot `json:"traces,omitempty"`
}

// ErrorResponse is every non-2xx body: a message, the invalid fields
// for 400s, and a retry hint for 429s.
type ErrorResponse struct {
	Error         string            `json:"error"`
	Fields        []expt.FieldError `json:"fields,omitempty"`
	RetryAfterSec int               `json:"retry_after_sec,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// decodeJSON parses a bounded request body, rejecting unknown fields so
// typos fail loudly at the boundary instead of silently defaulting.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("parsing request body: %w", err)
	}
	return nil
}

// writeExecError maps an admission/execution error onto the API:
// structured 400s for validation, 429 + Retry-After for shed load, 503
// for drain, 504 for expired deadlines, 500 for failed cells.
func writeExecError(w http.ResponseWriter, err error) {
	var ve *expt.ValidationError
	if errors.As(err, &ve) {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{Error: "invalid request", Fields: ve.Fields})
		return
	}
	var se *shedError
	if errors.As(err, &se) {
		sec := int(math.Ceil(se.retryAfter.Seconds()))
		w.Header().Set("Retry-After", fmt.Sprintf("%d", sec))
		writeJSON(w, se.status, ErrorResponse{Error: se.msg, RetryAfterSec: sec})
		return
	}
	var qe *jobstore.QuotaError
	if errors.As(err, &qe) {
		// Over-quota is shed load, tenant-scoped: same 429 + Retry-After
		// contract as a full queue.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, ErrorResponse{Error: qe.Error(), RetryAfterSec: 1})
		return
	}
	switch {
	case errors.Is(err, jobstore.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: err.Error()})
	case errors.Is(err, errDraining):
		writeJSON(w, http.StatusServiceUnavailable, ErrorResponse{Error: errDraining.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{Error: "deadline exceeded before the cell completed"})
	case errors.Is(err, context.Canceled):
		// Client went away; nothing useful to write.
	default:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error()})
	}
}

#!/usr/bin/env bash
# restart_smoke.sh — end-to-end crash-recovery smoke test of the
# durable job store (the part a Go test can't exercise faithfully: a
# real SIGKILL of a real process mid-campaign, then a real re-exec over
# the same cache dir):
#
#   1. boot duplexityd with a fresh cache dir and a single worker
#   2. submit a durable 6-cell fig5 job
#   3. poll /v1/jobs/<id> until the job is mid-flight (some cells
#      completed, some not), then SIGKILL the daemon — no drain, no
#      checkpoint flush
#   4. restart duplexityd over the same cache dir and assert the boot
#      log reports exactly one resumed incomplete job
#   5. poll the job to completion, stream its results, and assert
#      "resumed": true with zero failed/cancelled cells
#   6. assert zero duplicate simulation: the cache journal across both
#      daemon lifetimes holds exactly one '"cached":false' line per cell
#   7. run the same job on a fresh daemon with a clean cache dir and
#      assert the resumed job's result stream is byte-identical to it
#
# Tunables: SMOKE_SCALE (default 0.2 — big enough that a one-worker
# daemon is reliably mid-job when the kill lands), SMOKE_ADDR (default
# 127.0.0.1:8124).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${SMOKE_SCALE:-0.2}"
ADDR="${SMOKE_ADDR:-127.0.0.1:8124}"
CELLS=6 # 2 designs x 1 workload x 3 loads

tmp="$(mktemp -d)"
cleanup() {
    [[ -n "${daemon_pid:-}" ]] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

boot() { # boot <cachedir> <logfile>
    "$tmp/duplexityd" serve -addr "$ADDR" -scale "$SCALE" -seed 1 \
        -workers 1 -cachedir "$1" 2>"$2" &
    daemon_pid=$!
    for i in $(seq 1 100); do
        if curl -fsS "http://$ADDR/v1/healthz" >/dev/null 2>&1; then break; fi
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "FAIL: daemon died during boot"; cat "$2"; exit 1
        fi
        sleep 0.1
    done
    curl -fsS "http://$ADDR/v1/healthz" | grep -q '"ok"' \
        || { echo "FAIL: daemon never became healthy"; cat "$2"; exit 1; }
}

job_field() { # job_field <id> <python-expr over job dict j>
    curl -fsS "http://$ADDR/v1/jobs/$1" \
        | python3 -c "import json,sys; j=json.load(sys.stdin); print($2)"
}

echo "== build =="
go build -o "$tmp/duplexityd" ./cmd/duplexityd

echo "== boot A =="
boot "$tmp/cache" "$tmp/daemonA.log"
echo "daemon A healthy on $ADDR"

echo "== submit durable job =="
"$tmp/duplexityd" jobs -addr "$ADDR" -submit -kind fig5 \
    -designs Baseline,Duplexity -workloads RSC -loads 0.3,0.5,0.7 \
    -tenant smoke >"$tmp/accepted.json"
grep -q '"durable":true' "$tmp/accepted.json" \
    || { echo "FAIL: job not durable"; cat "$tmp/accepted.json"; exit 1; }
job="$(python3 -c "import json;print(json.load(open('$tmp/accepted.json'))['id'])")"
echo "job $job accepted"

echo "== kill mid-job =="
# Wait until the job is genuinely mid-flight: >=1 cell completed (so
# the resume has finished work to preserve) and >=1 still pending (so
# there is something to resume).
mid=0
for i in $(seq 1 200); do
    done_cells="$(job_field "$job" "j['completed']")"
    if [[ "$done_cells" -ge 1 && "$done_cells" -lt "$CELLS" ]]; then mid=1; break; fi
    if [[ "$done_cells" -ge "$CELLS" ]]; then break; fi
    sleep 0.05
done
[[ "$mid" == "1" ]] \
    || { echo "FAIL: never caught the job mid-flight ($done_cells/$CELLS done); raise SMOKE_SCALE"; exit 1; }
kill -KILL "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "killed daemon A with $done_cells/$CELLS cells complete"

echo "== boot B over the same cache dir =="
boot "$tmp/cache" "$tmp/daemonB.log"
grep -q "jobstore: resumed 1 incomplete job(s)" "$tmp/daemonB.log" \
    || { echo "FAIL: restart did not resume the job"; cat "$tmp/daemonB.log"; exit 1; }

for i in $(seq 1 600); do
    if [[ "$(job_field "$job" "j['done']")" == "True" ]]; then break; fi
    sleep 0.05
done
state="$(job_field "$job" "j['state']")"
[[ "$state" == "done" ]] \
    || { echo "FAIL: resumed job state = $state, want done"; curl -fsS "http://$ADDR/v1/jobs/$job"; exit 1; }
job_field "$job" "j.get('resumed', False)" | grep -q True \
    || { echo "FAIL: finished job is not marked resumed"; exit 1; }
failed="$(job_field "$job" "j.get('failed', 0) + j.get('cancelled', 0)")"
[[ "$failed" == "0" ]] \
    || { echo "FAIL: resumed job finished with $failed failed/cancelled cells"; exit 1; }

"$tmp/duplexityd" jobs -addr "$ADDR" -id "$job" -results >"$tmp/resumed.ndjson"
lines="$(wc -l <"$tmp/resumed.ndjson")"
[[ "$lines" == "$((CELLS + 1))" ]] \
    || { echo "FAIL: resumed stream has $lines lines, want $CELLS cells + status"; exit 1; }
tail -1 "$tmp/resumed.ndjson" | grep -q '"state":"done"' \
    || { echo "FAIL: resumed stream did not end done"; tail -1 "$tmp/resumed.ndjson"; exit 1; }

# `duplexityd status` must agree (exit 0: no job finished with failures).
"$tmp/duplexityd" status -addr "$ADDR" >/dev/null \
    || { echo "FAIL: status exited non-zero on a clean resumed job"; exit 1; }

echo "== zero duplicate simulation =="
# Every simulated cell writes one '"cached":false' journal line; the
# journal survives both daemon lifetimes in the shared cache dir, so
# any re-simulated cell would push the count past $CELLS.
sims="$(grep -c '"cached":false' "$tmp/cache/journal.jsonl")"
[[ "$sims" == "$CELLS" ]] \
    || { echo "FAIL: journal shows $sims simulated cells across both runs, want $CELLS"; cat "$tmp/cache/journal.jsonl"; exit 1; }

kill -TERM "$daemon_pid"
wait "$daemon_pid" || { echo "FAIL: daemon B did not drain cleanly"; cat "$tmp/daemonB.log"; exit 1; }
daemon_pid=""

echo "== byte-identity vs an uninterrupted run =="
boot "$tmp/cache-ref" "$tmp/daemonC.log"
"$tmp/duplexityd" jobs -addr "$ADDR" -submit -kind fig5 \
    -designs Baseline,Duplexity -workloads RSC -loads 0.3,0.5,0.7 \
    -tenant smoke -stream >"$tmp/reference.ndjson"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || true
daemon_pid=""

# Cell lines must match byte-for-byte; the trailing status summary is
# compared separately because only the resumed run carries
# "resumed":true.
if ! diff <(head -n "$CELLS" "$tmp/resumed.ndjson") \
          <(head -n "$CELLS" "$tmp/reference.ndjson") >/dev/null; then
    echo "FAIL: resumed results diverge from an uninterrupted run"
    diff "$tmp/resumed.ndjson" "$tmp/reference.ndjson" || true
    exit 1
fi
tail -1 "$tmp/reference.ndjson" | grep -q '"state":"done"' \
    || { echo "FAIL: reference stream did not end done"; tail -1 "$tmp/reference.ndjson"; exit 1; }

echo "restart smoke OK: killed at $done_cells/$CELLS, resumed to done, $sims total simulations (no duplicates), results byte-identical"

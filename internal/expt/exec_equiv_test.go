package expt

import (
	"testing"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/workload"
)

// TestCellDigestExecEquivalence pins the cache-digest half of the
// execution-mode equivalence contract: a matrix cell simulated on the
// discrete-event engine, with the legacy fast-forward loop, and stepped
// cycle by cycle must serialize to the same bytes — so its campaign
// cache digest, and therefore every cache entry and fleet shard
// assignment, is independent of how simulated time advanced.
func TestCellDigestExecEquivalence(t *testing.T) {
	modes := []core.ExecMode{core.ExecStepped, core.ExecFastForward, core.ExecEvent}
	spec := workload.McRouter()
	var digests []string
	for _, mode := range modes {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 1, Exec: mode})
		if err := s.Err(); err != nil {
			t.Fatal(err)
		}
		c, err := s.runCell(core.DesignDuplexity, spec, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, campaign.DigestOf(c))
	}
	for i, mode := range modes[1:] {
		if digests[i+1] != digests[0] {
			t.Fatalf("cell digest for %v diverged from stepped: %s vs %s",
				mode, digests[i+1], digests[0])
		}
	}
	// The closed-loop slowdown cell exercises RunUntilRequests.
	var slow []float64
	for _, mode := range modes {
		s := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 1, Exec: mode})
		v, err := s.measureSlowdown(core.DesignBaseline, spec)
		if err != nil {
			t.Fatal(err)
		}
		slow = append(slow, v)
	}
	for i, mode := range modes[1:] {
		if slow[i+1] != slow[0] {
			t.Fatalf("slowdown cell for %v diverged from stepped: %v vs %v",
				mode, slow[i+1], slow[0])
		}
	}
}

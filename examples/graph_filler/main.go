// Graph-filler study: run the Section V filler workloads (BSP PageRank
// and SSSP with 1µs remote-vertex RDMA reads) on a lender-core's HSMT
// datapath, showing how a virtual-context backlog hides µs-scale stalls,
// and verify that the distributed execution computes the same answers as
// serial reference implementations.
//
// Run with: go run ./examples/graph_filler
package main

import (
	"fmt"
	"log"
	"math"

	"duplexity"
	"duplexity/internal/bpred"
	"duplexity/internal/cache"
	"duplexity/internal/cpu"
	"duplexity/internal/graphwl"
	"duplexity/internal/hsmt"
	"duplexity/internal/memsys"
)

// runLender executes the streams on an 8-slot lender-core backed by an
// HSMT virtual-context pool and returns aggregate IPC.
func runLender(streams []duplexity.Stream, cycles uint64) float64 {
	cm := memsys.NewTableICoreMem("lender")
	sh := memsys.NewTableIShared("chip", 3.4)
	ip, dp := memsys.LocalPorts(cm, sh, cache.OwnerFiller)
	core, err := cpu.NewInOCore(cpu.TableIConfig(), 8, ip, dp, bpred.NewLenderUnit())
	if err != nil {
		log.Fatal(err)
	}
	pool := hsmt.NewPool()
	for i, s := range streams {
		pool.Add(&hsmt.VirtualContext{ID: i, Stream: s})
	}
	sched, err := hsmt.NewScheduler(core, pool, hsmt.DefaultSwapLat, hsmt.QuantumCycles(3.4))
	if err != nil {
		log.Fatal(err)
	}
	for now := uint64(0); now < cycles; now++ {
		sched.StepCore(now)
	}
	return core.Stats.IPC()
}

func main() {
	g := graphwl.MustGenPowerLaw(4096, 12, 0.5, 21)
	fmt.Printf("graph: %d vertices, %d edges (power-law, 50%% locality)\n\n", g.N, g.Edges())

	// HSMT's value: 8 physical contexts alone vs backed by 32 contexts.
	streams8, _, _, err := duplexity.FillerSet(g, 8, 3)
	if err != nil {
		log.Fatal(err)
	}
	ipc8 := runLender(streams8, 2_000_000)
	streams32, pr, ss, err := duplexity.FillerSet(g, 32, 3)
	if err != nil {
		log.Fatal(err)
	}
	ipc32 := runLender(streams32, 2_000_000)
	fmt.Printf("lender-core IPC, 8 contexts (no backlog) : %.2f\n", ipc8)
	fmt.Printf("lender-core IPC, 32 virtual contexts     : %.2f  (%.1fx)\n\n", ipc32, ipc32/ipc8)
	fmt.Printf("completed kernel runs: pagerank=%d sssp=%d\n\n", pr.Runs, ss.Runs)

	// Correctness: drive a fresh PageRank job to 10 supersteps and compare
	// with the serial reference.
	job := graphwl.MustNewJob(graphwl.JobConfig{
		Graph: g, Kernel: graphwl.KernelPageRank, Workers: 8, ItersPerRun: 1000, Seed: 5,
	})
	streams := job.Streams()
	for job.Superstep() < 10 {
		for _, s := range streams {
			s.Next(0)
		}
	}
	ref := graphwl.PageRankRef(g, 0.85, 10)
	maxErr := 0.0
	for v := 0; v < g.N; v++ {
		if e := math.Abs(job.Rank()[v] - ref[v]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("BSP PageRank vs serial reference after 10 supersteps: max |Δ| = %.2e\n", maxErr)
	if maxErr > 1e-12 {
		log.Fatal("distributed execution diverged from reference")
	}
	fmt.Println("distributed instruction-stream execution is numerically exact ✓")
}

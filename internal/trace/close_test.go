package trace

import (
	"bytes"
	"fmt"
	"testing"

	"duplexity/internal/isa"
)

// failAfterWriter errors once its byte budget is exhausted, to exercise
// Close's error wrapping.
type failAfterWriter struct{ budget int }

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.budget < len(p) {
		return 0, fmt.Errorf("disk full")
	}
	f.budget -= len(p)
	return len(p), nil
}

func TestWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(isa.Instr{Op: isa.OpIntAlu, PC: 4}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := w.Append(isa.Instr{}); err == nil {
		t.Fatal("Append after Close should fail")
	}
	// The closed trace must still be readable.
	if _, err := ReadAll(&buf); err != nil {
		t.Fatalf("round-trip after Close: %v", err)
	}
}

func TestWriterCloseWrapsFlushError(t *testing.T) {
	w, err := NewWriter(&failAfterWriter{budget: 8}) // header fits, data won't
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		if err := w.Append(isa.Instr{Op: isa.OpLoad, PC: uint64(i * 4), Addr: 64}); err != nil {
			// The bufio buffer overflowed mid-append: also acceptable,
			// as long as Close reports failure too.
			break
		}
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close should surface the flush error")
	}
}

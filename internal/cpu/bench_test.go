package cpu

import (
	"testing"

	"duplexity/internal/bpred"
	"duplexity/internal/isa"
	"duplexity/internal/stats"
)

// stallStream builds the stall-heavy microservice-like workload the
// hot-loop benchmarks run: generic integer/memory mix with a ~1µs
// remote access every ~2000 instructions, so the core spends most of
// its time in exactly the stalled spans the fast-forward path targets.
func stallStream(seed uint64) isa.Stream {
	return isa.MustSynthStream(isa.SynthConfig{
		Seed: seed, LoadFrac: 0.22, StoreFrac: 0.08, BranchFrac: 0.14,
		CodeBytes: 8 * 1024, DataBytes: 1 << 16, HotFrac: 0.95, HotBytes: 4 * 1024,
		StreamFrac: 0.2, DepP: 0.3, BranchRandomFrac: 0.06,
		RemoteEvery: 2000, RemoteLat: stats.Exponential{MeanVal: 1000},
	})
}

func benchOoO(b *testing.B, nthreads int) *OoOCore {
	b.Helper()
	streams := make([]isa.Stream, nthreads)
	for i := range streams {
		streams[i] = stallStream(uint64(1 + i))
	}
	iport, dport := testRig()
	c, err := NewOoOCore(TableIConfig(), streams, iport, dport, bpred.NewTableIUnit())
	if err != nil {
		b.Fatal(err)
	}
	return c
}

func benchInO(b *testing.B, slots int) *InOCore {
	b.Helper()
	iport, dport := testRig()
	c, err := NewInOCore(TableIConfig(), slots, iport, dport, bpred.NewLenderUnit())
	if err != nil {
		b.Fatal(err)
	}
	for s := 0; s < slots; s++ {
		c.Bind(s, isa.MustSynthStream(isa.SynthConfig{
			Seed: uint64(10 + s), LoadFrac: 0.2, StoreFrac: 0.07, BranchFrac: 0.12,
			CodeBytes: 4096, DataBytes: 1 << 16, HotFrac: 0.95, HotBytes: 2 * 1024,
			StreamFrac: 0.25, DepP: 0.2, BranchRandomFrac: 0.04,
		}), 0, 0)
	}
	return c
}

// BenchmarkOoOStep measures the cycle-by-cycle cost of the OoO engine
// under the stall-heavy workload. Steady state must not allocate.
func BenchmarkOoOStep(b *testing.B) {
	c := benchOoO(b, 1)
	now := uint64(0)
	for ; now < 100_000; now++ { // warm caches, fill the ROB rings
		c.Step(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(now)
		now++
	}
}

// BenchmarkOoORunFastForward measures the same workload through the
// event-driven Run path, so skipped stall spans amortize to near-zero
// cost per simulated cycle.
func BenchmarkOoORunFastForward(b *testing.B) {
	c := benchOoO(b, 1)
	now := c.Run(0, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	now = c.Run(now, uint64(b.N))
	_ = now
}

// BenchmarkInOStep measures the lender pipeline's per-cycle cost with
// all eight slots bound.
func BenchmarkInOStep(b *testing.B) {
	c := benchInO(b, 8)
	now := uint64(0)
	for ; now < 100_000; now++ {
		c.Step(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(now)
		now++
	}
}

// TestOoOStepZeroAlloc pins the zero-allocation property of the OoO
// hot loop: after warmup, stepping must not allocate.
func TestOoOStepZeroAlloc(t *testing.T) {
	streams := []isa.Stream{stallStream(1), stallStream(2)}
	iport, dport := testRig()
	c, err := NewOoOCore(TableIConfig(), streams, iport, dport, bpred.NewTableIUnit())
	if err != nil {
		t.Fatal(err)
	}
	now := uint64(0)
	for ; now < 200_000; now++ {
		c.Step(now)
	}
	if n := testing.AllocsPerRun(5000, func() {
		c.Step(now)
		now++
	}); n != 0 {
		t.Fatalf("OoO Step allocates %.2f objects/cycle in steady state, want 0", n)
	}
}

// TestInOStepZeroAlloc pins the same property for the in-order lender
// pipeline.
func TestInOStepZeroAlloc(t *testing.T) {
	iport, dport := testRig()
	c, err := NewInOCore(TableIConfig(), 8, iport, dport, bpred.NewLenderUnit())
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		c.Bind(s, stallStream(uint64(20+s)), 0, 0)
	}
	now := uint64(0)
	for ; now < 200_000; now++ {
		c.Step(now)
	}
	if n := testing.AllocsPerRun(5000, func() {
		c.Step(now)
		now++
	}); n != 0 {
		t.Fatalf("InO Step allocates %.2f objects/cycle in steady state, want 0", n)
	}
}

// Command dyadsim runs one dyad simulation and prints its statistics:
// a single design point under a single microservice at one load level,
// with the Section V PageRank/SSSP filler threads.
//
// Usage:
//
//	dyadsim [-design name] [-workload name] [-load f] [-cycles n] [-seed n]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"duplexity"
)

func main() {
	designName := flag.String("design", "duplexity",
		"baseline|smt|smt+|morphcore|morphcore+|duplexity-repl|duplexity")
	wlName := flag.String("workload", "mcrouter", "flann-ha|flann-ll|rsc|mcrouter|wordstem")
	load := flag.Float64("load", 0.5, "offered load in (0,1)")
	cycles := flag.Uint64("cycles", 5_000_000, "cycles to simulate")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	design, err := parseDesign(*designName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(2)
	}
	spec, err := parseWorkload(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(2)
	}

	master, err := spec.NewMaster(*load, design.FreqGHz(), *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(2)
	}
	g, err := duplexity.NewGraph(4096, 12, 0.5, *seed+3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(1)
	}
	fillers, pr, ss, err := duplexity.FillerSet(g, 32, *seed+4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(1)
	}
	d, err := duplexity.NewDyad(duplexity.DyadConfig{
		Design:       design,
		MasterStream: master,
		BatchStreams: fillers,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dyadsim:", err)
		os.Exit(1)
	}
	d.Run(*cycles)

	fmt.Printf("design      : %v (%.2f GHz)\n", design, design.FreqGHz())
	fmt.Printf("workload    : %s @ %.0f%% load (%.0f QPS)\n", spec.Name, *load*100, spec.QPSAtLoad(*load))
	fmt.Printf("cycles      : %d (%.2f ms)\n", d.Now(), d.Seconds()*1e3)
	fmt.Printf("utilization : %.3f\n", d.MasterUtilization())
	fmt.Printf("requests    : %d completed\n", d.MasterOoO.ThreadStats(0).RequestsCompleted)
	if d.Latencies.Count() > 0 {
		fmt.Printf("latency     : mean %.1fµs  p99 %.1fµs\n",
			d.CyclesToUs(d.Latencies.Mean()), d.CyclesToUs(d.Latencies.P99()))
	}
	fmt.Printf("batch       : %d instructions (%.1f MIPS)\n",
		d.BatchRetired(), float64(d.BatchRetired())/d.Seconds()/1e6)
	fmt.Printf("remote ops  : %.2f M/s\n", float64(d.RemoteOps())/d.Seconds()/1e6)
	if d.Master != nil {
		ms := d.Master.Stats
		fmt.Printf("morphs      : %d stall-triggered, %d idle-triggered\n", ms.Morphs, ms.IdleMorphs)
		fmt.Printf("mode cycles : master %d, drain %d, filler %d\n",
			ms.MasterCycles, ms.DrainCycles, ms.FillerCycles)
	}
	fmt.Printf("graph jobs  : pagerank %d runs, sssp %d runs\n", pr.Runs, ss.Runs)
}

func parseDesign(s string) (duplexity.Design, error) {
	for _, d := range duplexity.AllDesigns {
		if strings.EqualFold(strings.ReplaceAll(d.String(), "+repl", "-repl"), s) ||
			strings.EqualFold(d.String(), s) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func parseWorkload(s string) (*duplexity.Workload, error) {
	for _, w := range duplexity.Microservices() {
		if strings.EqualFold(w.Name, s) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", s)
}

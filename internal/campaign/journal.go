package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// JournalEntry is one line of the completion journal: which cell
// finished, whether it came from cache, and what it cost. The journal
// is an append-only audit trail of campaign progress across runs —
// resume correctness comes from the content-addressed cache entries,
// not from the journal, so the journal can be deleted at any time.
type JournalEntry struct {
	// Seq is the completion sequence number within one engine's
	// lifetime (completion order, not submission order).
	Seq         int     `json:"seq"`
	Digest      string  `json:"digest"`
	Kind        string  `json:"kind"`
	Design      string  `json:"design"`
	Workload    string  `json:"workload"`
	Load        float64 `json:"load"`
	Cached      bool    `json:"cached"`
	Remote      bool    `json:"remote,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// StagesUs is the traced per-stage time breakdown (µs by stage
	// name: admission, coalesce, cache, remote, compute, serialize) for
	// cells resolved through a tracing serving layer; absent for
	// untraced paths. encoding/json sorts map keys, so lines stay
	// deterministic.
	StagesUs map[string]int64 `json:"stages_us,omitempty"`
	// Layer marks which cache layer of a two-phase cell this line
	// records: LayerMicrosim for a phase-1 micro-sim resolution,
	// LayerQueueing for the whole-cell (phase-2) completion. Empty for
	// legacy single-phase cells, so pre-split journal lines are
	// unchanged.
	Layer string `json:"layer,omitempty"`
	// MicroDigests lists the phase-1 digests a queueing-layer cell was
	// derived from, in dependency order.
	MicroDigests []string `json:"micro_digests,omitempty"`
	// Status is empty for a completed cell. Incomplete cells — admitted
	// by a serving layer but never finished — are journaled with
	// StatusCancelled (abandoned before execution, e.g. a deadline
	// expired while queued) or StatusPanic (the cell's Run panicked), so
	// an audit of a drained or killed daemon can distinguish "finished
	// and cached" from "accepted but lost".
	Status string `json:"status,omitempty"`
}

// Journal layer values for two-phase cells.
const (
	// LayerMicrosim marks a phase-1 micro-sim resolution.
	LayerMicrosim = "microsim"
	// LayerQueueing marks a two-phase cell's whole-cell completion.
	LayerQueueing = "queueing"
)

// Journal status values for incomplete cells.
const (
	// StatusCancelled marks a cell abandoned before execution.
	StatusCancelled = "cancelled"
	// StatusPanic marks a cell whose Run panicked.
	StatusPanic = "panic"
)

// Journal appends completion records to a JSON-lines file. Each append
// opens, writes, and closes the file, so no descriptor outlives a cell
// and a killed process loses at most its final, partially-written line
// (which ReadJournal tolerates).
type Journal struct {
	mu   sync.Mutex
	path string
}

// NewJournal records completions at path.
func NewJournal(path string) *Journal { return &Journal{path: path} }

// Append writes one entry.
func (j *Journal) Append(e JournalEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("campaign: encoding journal entry: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	f, err := os.OpenFile(j.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("campaign: opening journal: %w", err)
	}
	_, werr := f.Write(append(data, '\n'))
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("campaign: appending journal: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("campaign: closing journal: %w", cerr)
	}
	return nil
}

// ReadJournal parses a journal file, skipping malformed lines (a line
// torn by a kill mid-append). A missing file is an empty journal.
func ReadJournal(path string) ([]JournalEntry, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: opening journal: %w", err)
	}
	defer f.Close()
	var out []JournalEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var e JournalEntry
		if json.Unmarshal(sc.Bytes(), &e) == nil {
			out = append(out, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: reading journal: %w", err)
	}
	return out, nil
}

// Package analytic implements the paper's closed-form motivation models:
// the closed-loop compute/stall utilization surface (Figure 1a), the
// M/G/1 idle-period distribution (Figure 1b), and the binomial
// ready-thread model for sizing virtual-context pools (Figure 2b).
package analytic

import (
	"fmt"
	"math"

	"duplexity/internal/stats"
)

// ClosedLoopUtilization models a single-job closed-loop system that
// alternates between computeUs of execution and stallUs of stalling
// (Section II-A): utilization = compute / (compute + stall).
func ClosedLoopUtilization(computeUs, stallUs float64) float64 {
	if computeUs < 0 || stallUs < 0 {
		return math.NaN()
	}
	if computeUs == 0 && stallUs == 0 {
		return 1
	}
	return computeUs / (computeUs + stallUs)
}

// UtilizationSurface evaluates Figure 1(a): utilization over a grid of
// stall and compute durations (µs).
func UtilizationSurface(stallsUs, computesUs []float64) [][]float64 {
	out := make([][]float64, len(stallsUs))
	for i, s := range stallsUs {
		out[i] = make([]float64, len(computesUs))
		for j, c := range computesUs {
			out[i][j] = ClosedLoopUtilization(c, s)
		}
	}
	return out
}

// IdlePeriods models the idle-period distribution of an M/G/1 queue.
// By the memoryless property of Poisson arrivals, idle periods are
// exponential with mean 1/λ regardless of the service distribution
// (Section II-A): an idle period ends when the next arrival occurs.
type IdlePeriods struct {
	// QPS is the service rate µ (queries the server can serve per
	// second at full utilization).
	QPS float64
	// Load is the offered load ρ in (0, 1).
	Load float64
}

// Validate reports parameter errors.
func (p IdlePeriods) Validate() error {
	if p.QPS <= 0 {
		return fmt.Errorf("analytic: QPS must be positive, got %v", p.QPS)
	}
	if p.Load <= 0 || p.Load >= 1 {
		return fmt.Errorf("analytic: load must be in (0,1), got %v", p.Load)
	}
	return nil
}

// MeanUs returns the mean idle-period duration in µs: 1/λ = 1/(ρµ).
func (p IdlePeriods) MeanUs() float64 {
	lambda := p.QPS * p.Load // arrivals per second
	return 1e6 / lambda
}

// CDF returns P(idle period <= xUs).
func (p IdlePeriods) CDF(xUs float64) float64 {
	if xUs <= 0 {
		return 0
	}
	return 1 - math.Exp(-xUs/p.MeanUs())
}

// ReadyThreads is the Section III-A model for sizing virtual contexts:
// with n virtual contexts each independently stalled with probability
// pStall, the number of ready threads is Binomial(n, 1-pStall).
type ReadyThreads struct {
	// Contexts is the number of virtual contexts n.
	Contexts int
	// PStall is the probability a thread is stalled.
	PStall float64
}

// ProbAtLeast returns P(ready >= k) — Figure 2(b) plots k = 8.
func (r ReadyThreads) ProbAtLeast(k int) float64 {
	return stats.BinomialTail(r.Contexts, 1-r.PStall, k)
}

// MinContextsFor returns the smallest n such that P(ready >= k) >= target,
// searching up to maxN (returns maxN+1 if unsatisfiable within the range).
func MinContextsFor(k int, pStall, target float64, maxN int) int {
	for n := k; n <= maxN; n++ {
		if (ReadyThreads{Contexts: n, PStall: pStall}).ProbAtLeast(k) >= target {
			return n
		}
	}
	return maxN + 1
}

// SimulateIdlePeriods cross-checks the analytic idle-period CDF with a
// discrete-event M/G/1 simulation, returning the empirical idle-period
// durations (µs). The service distribution only affects busy periods, not
// idle-period durations — the memoryless property the paper leans on.
func SimulateIdlePeriods(p IdlePeriods, service stats.Distribution, n int, seed uint64) []float64 {
	rng := stats.NewRNG(seed)
	lambda := p.QPS * p.Load // per second
	meanGapUs := 1e6 / lambda
	var (
		clock   float64 // µs
		freeAt  float64 // µs when server becomes free
		periods []float64
	)
	for len(periods) < n {
		clock += meanGapUs * rng.ExpFloat64() // next arrival
		if clock > freeAt {
			periods = append(periods, clock-freeAt)
			freeAt = clock
		}
		freeAt += service.Sample(rng) // serve this request (FCFS)
	}
	return periods
}

// Package queueing is the BigHouse-style request-granularity simulator
// used for tail-latency results (Section V): an FCFS M/G/1 queue with
// Poisson arrivals whose service times come from a measured/parametric
// distribution scaled by IPC slowdowns from the micro-architecture
// simulation, run until the 99th percentile's 95% confidence interval is
// within 5% of the estimate.
//
// The simulator is already discrete-event — it advances from arrival to
// departure directly, never ticking a cycle clock — so the event-driven
// fast-forward machinery of the cycle-level layers (core.Dyad.NextEvent)
// does not apply here: there are no dead cycles to skip.
package queueing

import (
	"fmt"
	"math"

	"duplexity/internal/idle"
	"duplexity/internal/stats"
	"duplexity/internal/telemetry"
)

// Config parameterizes one queueing simulation.
type Config struct {
	// ArrivalQPS is the Poisson arrival rate λ in requests per second.
	ArrivalQPS float64
	// ServiceUs is the service-time distribution in µs (already scaled
	// by the design's IPC slowdown).
	ServiceUs stats.Distribution
	// ExtraUs, if non-nil, is an additive per-request overhead in µs
	// (e.g. master-thread restart after filler eviction).
	ExtraUs stats.Distribution
	// Warmup requests are simulated but not measured (default 1000).
	Warmup int
	// MaxRequests bounds the simulation (default 2,000,000).
	MaxRequests int
	// TargetRelErr is the BigHouse stopping criterion: stop once the 95%
	// CI of the 99th percentile is within this fraction of the estimate
	// (default 0.05). The simulator still runs at least MinRequests.
	TargetRelErr float64
	// MinRequests is the floor before convergence checks (default 20000).
	MinRequests int
	// AllowUnstable skips the ρ < 1 stability check and measures the tail
	// over a finite window of MaxRequests requests, the way a saturated
	// design point is measured on real hardware.
	AllowUnstable bool
	Seed          uint64

	// IdleGov, if non-nil, classifies every server-idle gap into a
	// C-state (internal/idle). The chosen state's exit latency is charged
	// onto the request that ends the gap — deep idle visibly fattens the
	// tail — and per-state residency flows back in Result.Idle. Nil
	// leaves the simulation bit-identical to the pre-idle-model code.
	IdleGov idle.Governor

	// Telemetry, when non-nil, receives RequestArrive/RequestComplete
	// events tagged telemetry.SrcQueue. This simulator has no cycle clock;
	// events are stamped in integer nanoseconds of simulated time, and
	// RequestComplete's B argument is the sojourn time in ns.
	Telemetry telemetry.Sink
	// LatencyHist, when non-nil, observes every measured sojourn time in
	// nanoseconds (a mergeable power-of-two histogram for run reports, in
	// addition to the exact reservoir the percentiles come from).
	LatencyHist *telemetry.Histogram
}

func (c Config) withDefaults() Config {
	if c.Warmup == 0 {
		c.Warmup = 1000
	}
	if c.MaxRequests == 0 {
		c.MaxRequests = 2_000_000
	}
	if c.TargetRelErr == 0 {
		c.TargetRelErr = 0.05
	}
	if c.MinRequests == 0 {
		c.MinRequests = 20000
	}
	return c
}

// Validate reports configuration errors, including offered-load >= 1
// (an unstable M/G/1 queue has no steady-state tail).
func (c Config) Validate() error {
	if c.ArrivalQPS <= 0 {
		return fmt.Errorf("queueing: arrival rate must be positive")
	}
	if c.ServiceUs == nil {
		return fmt.Errorf("queueing: service distribution required")
	}
	rho := c.ArrivalQPS * c.ServiceUs.Mean() / 1e6
	if c.ExtraUs != nil {
		rho += c.ArrivalQPS * c.ExtraUs.Mean() / 1e6
	}
	if rho >= 1 && !c.AllowUnstable {
		return fmt.Errorf("queueing: offered load %.3f >= 1 is unstable", rho)
	}
	return nil
}

// Result summarizes one simulation.
type Result struct {
	// Latency percentiles and mean, in µs (sojourn time: queueing + service).
	MeanUs, P50Us, P95Us, P99Us float64
	// P99Lo/P99Hi bound the 95% CI of the 99th percentile.
	P99LoUs, P99HiUs float64
	// Utilization is the fraction of time the server was busy.
	Utilization float64
	// MeanQueueDepth is the time-averaged number of waiting requests.
	MeanQueueDepth float64
	// Completed counts measured requests; Converged reports whether the
	// CI criterion was met before MaxRequests.
	Completed int
	Converged bool

	// Idle-time breakdown. The conservation invariant
	// Utilization + IdleFraction == 1 holds to float tolerance: every
	// simulated microsecond is either inside a busy period (service plus
	// charged wake latency) or inside exactly one idle interval.
	//
	// IdleFraction is idle time over simulated time; IdleIntervals
	// counts server-idle gaps (busy periods = IdleIntervals when the
	// simulation starts idle, which it always does at t=0).
	IdleFraction  float64
	IdleIntervals int
	// MeanIdleUs and MeanBusyUs are the mean idle-interval and
	// busy-period lengths in µs (0 when there were none).
	MeanIdleUs, MeanBusyUs float64
	// WakeChargedUs is total C-state exit latency added to request
	// latencies (0 without an idle governor).
	WakeChargedUs float64
	// TotalRequests includes warmup (Completed does not); SimulatedUs is
	// the simulated span from t=0 to the last departure.
	TotalRequests int
	SimulatedUs   float64
	// Idle is the per-state residency summary (nil without a governor).
	Idle *idle.Summary
}

// Simulate runs the FCFS M/G/1 simulation to convergence.
func Simulate(cfg Config) (Result, error) {
	c := cfg.withDefaults()
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	rng := stats.NewRNG(c.Seed)
	rec := stats.NewLatencyRecorder(c.MinRequests * 2)

	meanGap := 1e6 / c.ArrivalQPS // µs between arrivals
	var (
		clock     float64 // arrival clock
		freeAt    float64 // when the server becomes free
		busyTime  float64
		idleTime  float64 // sum of server-idle gaps
		intervals int     // count of server-idle gaps
		wakeTotal float64 // C-state exit latency charged onto requests
		queueArea float64 // integral of queue depth over time
		lastEvent float64
	)
	var acct *idle.Accountant
	if c.IdleGov != nil {
		acct = idle.NewAccountant(c.IdleGov)
	}
	total := 0
	for {
		total++
		clock += meanGap * rng.ExpFloat64()
		start := clock
		var wake float64
		if freeAt >= start {
			start = freeAt
		} else {
			// The server sat idle from the last departure to this
			// arrival. Always account the gap; with a governor attached,
			// classify it into a C-state and charge the wake latency
			// onto this request's service start.
			gap := clock - freeAt
			idleTime += gap
			intervals++
			if acct != nil {
				w, st := acct.Idle(gap)
				wake = w
				wakeTotal += w
				start = clock + wake
				if c.Telemetry != nil {
					c.Telemetry.Emit(telemetry.Event{Cycle: uint64(freeAt * 1e3),
						Kind: telemetry.EvIdleEnter, Src: telemetry.SrcQueue,
						A: uint64(st + 1), B: uint64(gap * 1e3)})
					c.Telemetry.Emit(telemetry.Event{Cycle: uint64(clock * 1e3),
						Kind: telemetry.EvIdleExit, Src: telemetry.SrcQueue,
						A: uint64(st + 1), B: uint64(wake * 1e3)})
				}
			}
		}
		svc := c.ServiceUs.Sample(rng)
		if c.ExtraUs != nil {
			svc += c.ExtraUs.Sample(rng)
		}
		if svc < 0 {
			svc = 0
		}
		depart := start + svc
		// Wake latency is busy time: the core burns full power completing
		// the exit sequence, and the request it delays observes it.
		busyTime += svc + wake
		// Queue-depth integral: this request waits (start - clock).
		queueArea += start - clock
		freeAt = depart
		lastEvent = depart

		if c.Telemetry != nil {
			seq := uint64(total - 1)
			c.Telemetry.Emit(telemetry.Event{Cycle: uint64(clock * 1e3),
				Kind: telemetry.EvRequestArrive, Src: telemetry.SrcQueue, A: seq})
			c.Telemetry.Emit(telemetry.Event{Cycle: uint64(depart * 1e3),
				Kind: telemetry.EvRequestComplete, Src: telemetry.SrcQueue,
				A: seq, B: uint64((depart - clock) * 1e3)})
		}
		if total > c.Warmup {
			rec.Add(depart - clock)
			if c.LatencyHist != nil {
				c.LatencyHist.Observe(uint64((depart - clock) * 1e3))
			}
		}
		converged := false
		done := total-c.Warmup >= c.MaxRequests
		if rec.Count() >= c.MinRequests && rec.Count()%8192 == 0 &&
			rec.RelativeQuantileErrorBelow(0.99, 1.96, c.TargetRelErr) {
			converged, done = true, true
		}
		if done {
			r := c.finish(rec, busyTime, queueArea, lastEvent, converged)
			r.IdleFraction = idleTime / lastEvent
			r.IdleIntervals = intervals
			if intervals > 0 {
				r.MeanIdleUs = idleTime / float64(intervals)
				r.MeanBusyUs = busyTime / float64(intervals)
			} else {
				r.MeanBusyUs = busyTime
			}
			r.WakeChargedUs = wakeTotal
			r.TotalRequests = total
			r.SimulatedUs = lastEvent
			if acct != nil {
				r.Idle = acct.Summary()
			}
			return r, nil
		}
	}
}

func (c Config) finish(rec *stats.LatencyRecorder, busy, queueArea, elapsed float64, converged bool) Result {
	p99, lo, hi := rec.QuantileCI(0.99, 1.96)
	return Result{
		MeanUs:         rec.Mean(),
		P50Us:          rec.Quantile(0.50),
		P95Us:          rec.Quantile(0.95),
		P99Us:          p99,
		P99LoUs:        lo,
		P99HiUs:        hi,
		Utilization:    busy / elapsed,
		MeanQueueDepth: queueArea / elapsed,
		Completed:      rec.Count(),
		Converged:      converged,
	}
}

// MM1P99Us returns the analytic 99th-percentile sojourn time of an M/M/1
// queue (exponential service with mean serviceUs): the sojourn time is
// exponential with rate µ-λ, so p99 = ln(100)/(µ-λ). Used to validate
// the simulator.
func MM1P99Us(arrivalQPS, serviceUs float64) float64 {
	mu := 1e6 / serviceUs // per second
	if arrivalQPS >= mu {
		return math.Inf(1)
	}
	return math.Log(100) / (mu - arrivalQPS) * 1e6
}

// MM1MeanUs returns the analytic mean sojourn time of an M/M/1 queue.
func MM1MeanUs(arrivalQPS, serviceUs float64) float64 {
	mu := 1e6 / serviceUs
	if arrivalQPS >= mu {
		return math.Inf(1)
	}
	return 1 / (mu - arrivalQPS) * 1e6
}

// Command simbench measures the cycle-level simulator's own speed: for
// each requested design it builds the same dyad twice — one stepped
// cycle by cycle, one with event-driven fast-forward — runs both for the
// same simulated-cycle budget, and prints a JSON report with simulated
// cycles per wall second, the fast-forward speedup, and the skip ratio
// (fraction of simulated cycles advanced by jumps rather than steps).
//
// Usage:
//
//	simbench [-cycles n] [-seed n] [-load f] [-workload name] [-designs a,b]
//
// The two runs double as a live equivalence check: simbench exits
// non-zero if the stepped and fast-forwarded dyads disagree on retired
// instructions or completed requests.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"duplexity"
)

type row struct {
	design          duplexity.Design
	cycles          uint64
	stepSec, ffSec  float64
	skipped         uint64
	retired         uint64
	requestsStepped uint64
	requestsFF      uint64
}

func main() {
	cycles := flag.Uint64("cycles", 3_000_000, "simulated cycles per run")
	seed := flag.Uint64("seed", 1, "simulation seed")
	load := flag.Float64("load", 0.5, "offered load in (0,1)")
	wlName := flag.String("workload", "mcrouter", "flann-ha|flann-ll|rsc|mcrouter|wordstem")
	designs := flag.String("designs", "baseline,duplexity", "comma-separated design list")
	flag.Parse()

	spec, err := findWorkload(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simbench:", err)
		os.Exit(2)
	}

	var rows []row
	for _, name := range strings.Split(*designs, ",") {
		design, err := findDesign(strings.TrimSpace(name))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(2)
		}
		r, err := measure(design, spec, *load, *seed, *cycles)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simbench:", err)
			os.Exit(1)
		}
		rows = append(rows, r)
	}

	fmt.Println("{")
	fmt.Printf("  %q: %q,\n", "bench", "simcore")
	fmt.Printf("  %q: %q,\n", "workload", spec.Name)
	fmt.Printf("  %q: %g,\n", "load", *load)
	fmt.Printf("  %q: %d,\n", "cycles", *cycles)
	fmt.Printf("  %q: [\n", "designs")
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		fmt.Printf("    {\"design\": %q, \"step_cycles_per_sec\": %.0f, \"ff_cycles_per_sec\": %.0f, "+
			"\"speedup\": %.2f, \"skip_ratio\": %.4f, \"retired\": %d, \"requests\": %d}%s\n",
			r.design.String(), float64(r.cycles)/r.stepSec, float64(r.cycles)/r.ffSec,
			r.stepSec/r.ffSec, float64(r.skipped)/float64(r.cycles), r.retired, r.requestsFF, comma)
	}
	fmt.Println("  ]")
	fmt.Println("}")
}

// build constructs one dyad for the measurement; both runs of a design
// call it with identical arguments so their streams are identical.
func build(design duplexity.Design, spec *duplexity.Workload, load float64, seed uint64) (*duplexity.Dyad, error) {
	master, err := spec.NewMaster(load, design.FreqGHz(), seed)
	if err != nil {
		return nil, err
	}
	g, err := duplexity.NewGraph(4096, 12, 0.5, seed+3)
	if err != nil {
		return nil, err
	}
	fillers, _, _, err := duplexity.FillerSet(g, 32, seed+4)
	if err != nil {
		return nil, err
	}
	return duplexity.NewDyad(duplexity.DyadConfig{
		Design:       design,
		MasterStream: master,
		BatchStreams: fillers,
	})
}

func measure(design duplexity.Design, spec *duplexity.Workload, load float64, seed, cycles uint64) (row, error) {
	r := row{design: design, cycles: cycles}

	slow, err := build(design, spec, load, seed)
	if err != nil {
		return r, err
	}
	slow.FastForward = false
	t0 := time.Now()
	slow.Run(cycles)
	r.stepSec = time.Since(t0).Seconds()
	r.requestsStepped = slow.MasterOoO.ThreadStats(0).RequestsCompleted

	fast, err := build(design, spec, load, seed)
	if err != nil {
		return r, err
	}
	t0 = time.Now()
	fast.Run(cycles)
	r.ffSec = time.Since(t0).Seconds()
	r.skipped = fast.SkippedCycles
	r.retired = fast.MasterOoO.Stats.TotalRetired
	r.requestsFF = fast.MasterOoO.ThreadStats(0).RequestsCompleted

	if r.retired != slow.MasterOoO.Stats.TotalRetired || r.requestsFF != r.requestsStepped {
		return r, fmt.Errorf("%v: fast-forward diverged from stepping: retired %d vs %d, requests %d vs %d",
			design, r.retired, slow.MasterOoO.Stats.TotalRetired, r.requestsFF, r.requestsStepped)
	}
	return r, nil
}

func findDesign(s string) (duplexity.Design, error) {
	for _, d := range duplexity.AllDesigns {
		if strings.EqualFold(strings.ReplaceAll(d.String(), "+repl", "-repl"), s) ||
			strings.EqualFold(d.String(), s) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func findWorkload(s string) (*duplexity.Workload, error) {
	for _, w := range duplexity.Microservices() {
		if strings.EqualFold(w.Name, s) {
			return w, nil
		}
	}
	return nil, fmt.Errorf("unknown workload %q", s)
}

package expt

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
	"duplexity/internal/workload"
)

func TestCellSpecValidate(t *testing.T) {
	good := []CellSpec{
		{Kind: KindMatrix, Design: "Baseline", Workload: "RSC", Load: 0.5},
		{Kind: KindSlowdown, Design: "Duplexity", Workload: "McRouter"},
	}
	for _, cs := range good {
		if err := cs.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cs, err)
		}
	}

	bad := CellSpec{Kind: "figX", Design: "Pentium", Workload: "nginx", Load: -1}
	err := bad.Validate()
	ve, ok := err.(*ValidationError)
	if !ok {
		t.Fatalf("Validate(bad) = %T %v, want *ValidationError", err, err)
	}
	fields := map[string]bool{}
	for _, f := range ve.Fields {
		fields[f.Field] = true
	}
	for _, want := range []string{"kind", "design", "workload"} {
		if !fields[want] {
			t.Errorf("missing field error for %q in %v", want, ve)
		}
	}

	// Per-kind load rules.
	if err := (CellSpec{Kind: KindMatrix, Design: "Baseline", Workload: "RSC", Load: 0}).Validate(); err == nil {
		t.Error("matrix cell with load 0 validated")
	}
	if err := (CellSpec{Kind: KindSlowdown, Design: "Baseline", Workload: "RSC", Load: 0.5}).Validate(); err == nil {
		t.Error("slowdown cell with nonzero load validated")
	}
}

func TestCampaignSpecExpand(t *testing.T) {
	cells, err := (CampaignSpec{Kind: CampaignFig5, Designs: []string{"Baseline", "Duplexity"},
		Workloads: []string{"RSC"}, Loads: []float64{0.3, 0.7}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("expanded %d cells, want 4", len(cells))
	}
	// Canonical order: design-major.
	if cells[0].Design != "Baseline" || cells[0].Load != 0.3 || cells[3].Design != "Duplexity" || cells[3].Load != 0.7 {
		t.Errorf("unexpected order: %+v", cells)
	}
	for _, c := range cells {
		if c.Kind != KindMatrix {
			t.Errorf("cell kind = %q, want %q", c.Kind, KindMatrix)
		}
	}

	// Defaults: full paper campaign.
	all, err := (CampaignSpec{Kind: CampaignMatrix}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := len(core.AllDesigns) * len(workload.Microservices()) * len(Loads)
	if len(all) != want {
		t.Errorf("default matrix = %d cells, want %d", len(all), want)
	}

	slow, err := (CampaignSpec{Kind: CampaignSlowdowns, Designs: []string{"SMT+"}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(slow) != len(workload.Microservices()) {
		t.Errorf("slowdowns = %d cells, want %d", len(slow), len(workload.Microservices()))
	}
	if slow[0].Kind != KindSlowdown || slow[0].Load != 0 {
		t.Errorf("slowdown cell = %+v", slow[0])
	}

	if _, err := (CampaignSpec{Kind: "bogus"}).Expand(); err == nil {
		t.Error("bogus campaign kind expanded")
	}
	if _, err := (CampaignSpec{Kind: CampaignSlowdowns, Loads: []float64{0.5}}).Expand(); err == nil {
		t.Error("slowdown campaign with loads expanded")
	}
}

// TestServedKeyMatchesCLI: a served cell's cache key is exactly the key
// the CLI figure path computes for the same point.
func TestServedKeyMatchesCLI(t *testing.T) {
	s := NewSuite(Options{Scale: 0.02, Seed: 3})
	spec := workload.Microservices()[1]
	cli := s.cellKey("matrix", core.DesignDuplexity, spec, 0.5, "")
	served, err := s.ServedKey(CellSpec{Kind: KindMatrix, Design: "Duplexity", Workload: spec.Name, Load: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if served != cli {
		t.Errorf("served key %+v != CLI key %+v", served, cli)
	}
	if served.Digest() != cli.Digest() {
		t.Error("digests differ")
	}
}

// TestRunServedMatchesCLIEntry: serving a cell writes a cache entry
// whose digest and result bytes are identical to a CLI campaign run of
// the same cell — the serve layer adds scheduling, never semantics.
func TestRunServedMatchesCLIEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation cell")
	}
	spec := workload.Microservices()[0]
	const load = 0.5

	cliDir := t.TempDir()
	cli := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: cliDir})
	if cli.Err() != nil {
		t.Fatal(cli.Err())
	}
	key := cli.cellKey("matrix", core.DesignBaseline, spec, load, "")
	if _, err := campaign.Run(cli.eng, []campaign.Task[cell]{{
		Key: key,
		Run: func() (cell, error) { return cli.runCell(core.DesignBaseline, spec, load) },
	}}); err != nil {
		t.Fatal(err)
	}

	srvDir := t.TempDir()
	srv := NewSuite(Options{Scale: 0.01, Seed: 1, Workers: 1, CacheDir: srvDir})
	if srv.Err() != nil {
		t.Fatal(srv.Err())
	}
	res, err := srv.RunServed(CellSpec{Kind: KindMatrix, Design: "Baseline", Workload: spec.Name, Load: load})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("cold served cell reported cached")
	}
	if res.Digest != key.Digest() {
		t.Errorf("served digest %s != CLI digest %s", res.Digest, key.Digest())
	}

	read := func(dir string) json.RawMessage {
		data, err := os.ReadFile(dir + "/" + key.Digest() + ".json")
		if err != nil {
			t.Fatal(err)
		}
		var e campaign.Entry
		if err := json.Unmarshal(data, &e); err != nil {
			t.Fatal(err)
		}
		return e.Result
	}
	if a, b := read(cliDir), read(srvDir); !bytes.Equal(a, b) {
		t.Errorf("cache entry results differ:\nCLI   %s\nserve %s", a, b)
	}

	// A second served request is answered by the cache, not simulation.
	res2, err := srv.RunServed(CellSpec{Kind: KindMatrix, Design: "Baseline", Workload: spec.Name, Load: load})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Cached {
		t.Error("warm served cell not cached")
	}
	if res2.Cell == nil || *res2.Cell != *res.Cell {
		t.Errorf("warm result differs: %+v vs %+v", res2.Cell, res.Cell)
	}
}

// Package expt is the experiment harness: one entry point per table and
// figure of the paper, each returning a printable Table whose rows mirror
// what the paper reports. The cycle-level design × workload × load matrix
// is simulated once per Suite and shared by the Figure 5 and Figure 6
// experiments, exactly as one gem5 campaign feeds several plots.
package expt

import (
	"fmt"
	"strings"
	"sync"

	"duplexity/internal/campaign"
	"duplexity/internal/core"
)

// Options scales experiment fidelity and configures the campaign
// engine that executes the simulation cells.
type Options struct {
	// Scale multiplies simulation budgets; 1.0 reproduces the paper-scale
	// run, ~0.1 is a smoke test. Default 1.0.
	Scale float64
	// Seed makes the whole campaign reproducible. Default 1.
	Seed uint64
	// Workers is the campaign worker-pool width: 0 uses one worker per
	// CPU, 1 is the sequential path. Results are bit-identical at any
	// worker count (every cell derives its seeds from its own inputs).
	Workers int
	// CacheDir enables the persistent content-addressed result cache:
	// repeated runs and overlapping figures skip simulation, and an
	// interrupted campaign resumes from its completed cells. Empty
	// disables persistence.
	CacheDir string
	// Remote, when non-nil, dispatches cells that miss the local cache to
	// a remote executor (internal/fleet's sharded worker pool) instead of
	// simulating them in this process. Remote entries land in the local
	// cache verbatim, so a fleet run is byte-identical to a local one.
	Remote campaign.Remote
	// Exec selects the simulator's execution mode for every cell (zero
	// value: the discrete-event engine). Cell results — and therefore
	// campaign cache digests — are bit-identical in every mode, which
	// TestCellDigestExecEquivalence pins; the knob exists for that test
	// and for debugging.
	Exec core.ExecMode
	// SinglePhase disables the two-layer (micro-sim + queueing) cache
	// split for decomposable cell kinds: every cell computes its full
	// pipeline monolithically, as before the split. Results and cache
	// bytes are byte-identical either way (TestTwoPhaseByteIdentity);
	// the knob exists for the A/B benchmark and for debugging.
	SinglePhase bool
}

func (o Options) withDefaults() Options {
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// cycles scales a full-fidelity cycle budget, with a floor that keeps
// even smoke runs meaningful.
func (o Options) cycles(full uint64) uint64 {
	c := uint64(float64(full) * o.Scale)
	if c < 200_000 {
		c = 200_000
	}
	return c
}

// requests scales a request-count budget.
func (o Options) requests(full uint64) uint64 {
	r := uint64(float64(full) * o.Scale)
	if r < 20 {
		r = 20
	}
	return r
}

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(cell)
			}
			if i == 0 {
				b.WriteString(cell)
				b.WriteString(strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	b.WriteString(strings.Repeat("-", sum(widths)+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// f2, f3, f4 format floats at fixed precision for table cells.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Suite memoizes the shared cycle-level simulation campaign. The cells
// themselves run concurrently on the campaign engine's worker pool, but
// a Suite's methods must be called from one goroutine (memoization is
// unsynchronized).
type Suite struct {
	opts Options

	eng    *campaign.Engine
	engErr error

	matrix    []cell
	matrixErr error
	matrixRun bool

	slowdowns    map[slowKey]float64
	serviceBase  map[string]float64
	slowdownsRun bool
	slowdownsErr error

	energy    []energyCell
	energyRun bool
	energyErr error

	// rawSlow memoizes closed-loop cycles-per-request for the served
	// energyprop path, which (unlike the figure methods) runs cells
	// concurrently and so needs the mutex.
	slowMu  sync.Mutex
	rawSlow map[slowKey]float64
}

// NewSuite builds a harness with the given fidelity options. An engine
// configuration failure (e.g. an uncreatable cache directory) is
// deferred to the first experiment that needs simulation; Err exposes
// it for callers that want to fail fast.
func NewSuite(opts Options) *Suite {
	s := &Suite{opts: opts.withDefaults()}
	s.eng, s.engErr = campaign.New(campaign.Options{
		Workers:  s.opts.Workers,
		CacheDir: s.opts.CacheDir,
		Remote:   s.opts.Remote,
	})
	return s
}

// World identifies the (model-version, scale, seed) world this suite
// simulates. Every fleet member must serve the same world, or identical
// cell specs would resolve to different cache keys on different hosts;
// the coordinator verifies this at worker registration.
type World struct {
	Model string  `json:"model"`
	Scale float64 `json:"scale"`
	Seed  uint64  `json:"seed"`
}

// World returns this suite's world identity.
func (s *Suite) World() World {
	return World{Model: core.ModelVersion, Scale: s.opts.Scale, Seed: s.opts.Seed}
}

// Err reports the campaign-engine configuration error, if any.
func (s *Suite) Err() error { return s.engErr }

// CampaignStats snapshots the campaign engine's cache-hit/miss and
// per-cell wall-time accounting (zero until an experiment simulates).
func (s *Suite) CampaignStats() campaign.Summary {
	if s.eng == nil {
		return campaign.Summary{}
	}
	return s.eng.Stats()
}

// Package fleet is the distributed campaign tier: a coordinator that
// shards campaign cells across duplexityd worker daemons and implements
// campaign.Remote, so an unmodified campaign engine fans out over
// machines the way it already fans out over goroutines.
//
// Dispatch is tail-aware, practicing what the paper preaches about
// killer microseconds in fan-out tiers:
//
//   - Sharding: cells route by rendezvous (HRW) hashing on their
//     SHA-256 cache digest, so each worker's disk cache stays hot for
//     "its" cells across campaigns and coordinator restarts.
//   - Backpressure: per-worker in-flight windows grow additively on
//     success and halve on 429, honoring the serving layer's
//     Retry-After — the admission signals from PR 4 become the fleet's
//     flow control.
//   - Hedging: a cell that outlives an adaptive p99-based threshold is
//     re-dispatched to the next-ranked worker; the first result wins
//     and the loser's HTTP request is cancelled (the worker's
//     coalescing layer then cancels the cell if it is still queued).
//   - Retry: failed workers are down-marked with exponential backoff
//     and their cells reshard to the next-ranked worker, so killing a
//     worker mid-campaign delays cells instead of losing them.
//   - L1: an in-memory singleflight result cache in front of the
//     coordinator's disk cache absorbs duplicate submissions without a
//     disk probe or a dispatch.
//
// Workers ship cache-entry-level results (expt.RawCellResult), which
// the engine writes into the coordinator's cache verbatim — a fleet
// campaign is byte-identical to a single-node run.
package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"duplexity/internal/campaign"
	"duplexity/internal/expt"
	"duplexity/internal/serve"
	"duplexity/internal/stats"
	"duplexity/internal/telemetry"
)

// Options configures a Coordinator.
type Options struct {
	// Workers lists worker daemon base URLs ("http://host:9400") known
	// at boot. May be empty: workers can also join (and leave) the fleet
	// at runtime through POST /v1/fleet/join, so a coordinator can start
	// with nothing and grow as daemons come up.
	Workers []string
	// World is the (model, scale, seed) world every worker must serve.
	// Zero-valued, Register adopts the first reachable worker's world
	// and verifies the rest against it.
	World expt.World
	// Client issues the fleet's HTTP requests. Default: a client with
	// no global timeout (per-cell contexts bound each call).
	Client *http.Client
	// HedgeAfter is the straggler threshold before a cell is hedged to
	// a second worker while latency history is still thin; once enough
	// cells complete the threshold adapts to ~1.1× the observed p99.
	// <= 0 means 2s.
	HedgeAfter time.Duration
	// CellTimeout bounds one cell end-to-end, across every retry and
	// hedge. <= 0 means 15 minutes.
	CellTimeout time.Duration
	// MaxAttempts bounds dispatch attempts per cell. <= 0 means
	// 3 × len(Workers), minimum 4.
	MaxAttempts int
	// HeartbeatInterval is how often joined workers are expected to
	// re-POST /v1/fleet/join, and how often the membership loop sweeps
	// for stale ones. <= 0 means 2s.
	HeartbeatInterval time.Duration
	// EvictAfter is how long a joined worker may go without a heartbeat
	// before it is removed from the ring. <= 0 means 3 × HeartbeatInterval.
	EvictAfter time.Duration
}

// l1flight coalesces concurrent Execs of the same digest.
type l1flight struct {
	done chan struct{}
	ent  campaign.Entry
	err  error
	// tr is the leader's trace; followers adopt its spans as children
	// so coalesced timelines still show where the shared work went.
	tr *telemetry.CellTrace
}

// Coordinator shards cells across a worker fleet. It implements
// campaign.Remote and is safe for concurrent use.
type Coordinator struct {
	opts   Options
	client *http.Client

	// wmu guards the membership view: the worker list and the agreed
	// world. Dispatch reads a snapshot; join/leave/evict rewrite the
	// slice, which rebuilds the rendezvous ring implicitly (HRW ranking
	// is a pure function of the current membership).
	wmu     sync.RWMutex
	workers []*worker
	world   expt.World

	mu      sync.Mutex
	l1      map[string]campaign.Entry
	flights map[string]*l1flight

	latMu sync.Mutex
	lat   *stats.LatencyRecorder // completed-cell seconds, feeds the hedge threshold

	hedges         atomic.Int64
	hedgeWins      atomic.Int64
	retries        atomic.Int64
	l1Hits         atomic.Int64
	joins          atomic.Int64
	leaves         atomic.Int64
	evictions      atomic.Int64
	deadlineCells  atomic.Int64
	deadlineHedges atomic.Int64
}

// New builds a coordinator over a (possibly empty) boot worker list.
// Call Register before dispatching to verify world identity and size
// the windows; workers may also Join at runtime.
func New(o Options) (*Coordinator, error) {
	seen := make(map[string]bool, len(o.Workers))
	ws := make([]*worker, 0, len(o.Workers))
	for _, name := range o.Workers {
		if name == "" || seen[name] {
			return nil, fmt.Errorf("fleet: empty or duplicate worker %q", name)
		}
		seen[name] = true
		ws = append(ws, newWorker(name))
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 2 * time.Second
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 15 * time.Minute
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3 * len(o.Workers)
		if o.MaxAttempts < 4 {
			o.MaxAttempts = 4
		}
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = 2 * time.Second
	}
	if o.EvictAfter <= 0 {
		o.EvictAfter = 3 * o.HeartbeatInterval
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	return &Coordinator{
		opts:    o,
		client:  client,
		workers: ws,
		world:   o.World,
		l1:      make(map[string]campaign.Entry),
		flights: make(map[string]*l1flight),
		lat:     stats.NewLatencyRecorder(1024),
	}, nil
}

// World returns the fleet's agreed world identity (meaningful after
// Register or the first Join; when Options.World was zero it is the
// adopted one).
func (c *Coordinator) World() expt.World {
	c.wmu.RLock()
	defer c.wmu.RUnlock()
	return c.world
}

// snapshot copies the current membership for lock-free iteration.
// Workers removed after the copy still finish their in-flight cells —
// the dispatch path holds the *worker, not an index — so the fleet can
// shrink without failing work already placed.
func (c *Coordinator) snapshot() []*worker {
	c.wmu.RLock()
	defer c.wmu.RUnlock()
	return append([]*worker(nil), c.workers...)
}

// Register probes every worker's /v1/queuez: verifies all reachable
// workers serve the same (model, scale, seed) world and sizes each
// in-flight window from the worker's simulation pool width. Unreachable
// workers are down-marked, not fatal — dispatch retries them — but at
// least one configured worker must answer, and any world mismatch is a
// hard error (mismatched worlds would compute different cells for the
// same spec). With an empty boot list Register is a no-op: the fleet
// fills in as workers join.
func (c *Coordinator) Register(ctx context.Context) error {
	ws := c.snapshot()
	if len(ws) == 0 {
		return nil
	}
	reachable := 0
	for _, w := range ws {
		qz, err := c.queuez(ctx, w)
		if err != nil {
			w.connFail(time.Now())
			continue
		}
		c.wmu.Lock()
		if c.world == (expt.World{}) {
			c.world = qz.World
		}
		world := c.world
		c.wmu.Unlock()
		if qz.World != world {
			return fmt.Errorf("fleet: worker %s serves world %+v, want %+v", w.name, qz.World, world)
		}
		w.configure(qz.Workers)
		reachable++
	}
	if reachable == 0 {
		return fmt.Errorf("fleet: no worker reachable of %d", len(ws))
	}
	return nil
}

func (c *Coordinator) queuez(ctx context.Context, w *worker) (serve.Queuez, error) {
	ctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.name+"/v1/queuez", nil)
	if err != nil {
		return serve.Queuez{}, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return serve.Queuez{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return serve.Queuez{}, fmt.Errorf("fleet: %s queuez = %d", w.name, resp.StatusCode)
	}
	var qz serve.Queuez
	if err := json.NewDecoder(resp.Body).Decode(&qz); err != nil {
		return serve.Queuez{}, fmt.Errorf("fleet: %s queuez: %w", w.name, err)
	}
	return qz, nil
}

// Exec resolves one cell through the fleet: L1 probe, singleflight
// coalescing, then sharded/hedged dispatch. It is the campaign.Remote
// seam — the returned Entry is stored in the coordinator's disk cache
// verbatim by the engine. tr (nil for untraced callers) receives the
// dispatch's remote spans, with the worker's shipped spans adopted as
// children.
func (c *Coordinator) Exec(k campaign.Key, tr *telemetry.CellTrace) (campaign.Entry, bool, error) {
	return c.execDeadline(k, "", tr, time.Time{})
}

// ExecDeadline is the campaign.DeadlineRemote seam: identical routing
// and result semantics to Exec, but the hedge threshold shrinks as the
// deadline approaches (Hurry-up-style placement) — a straggling
// deadline-lane cell is duplicated onto the next-ranked worker sooner
// than the adaptive p99 threshold would on its own.
func (c *Coordinator) ExecDeadline(k campaign.Key, tr *telemetry.CellTrace, deadline time.Time) (campaign.Entry, bool, error) {
	if !deadline.IsZero() {
		c.deadlineCells.Add(1)
	}
	return c.execDeadline(k, "", tr, deadline)
}

// ExecSharded is the campaign.ShardedRemote seam: identical result
// semantics to ExecDeadline, but workers are rendezvous-ranked on
// shardDigest — a two-phase cell's first phase-1 micro-sim digest —
// instead of the cell's own digest. Every cell sharing a micro-sim
// family therefore lands on the same worker, whose in-process phase-1
// memo turns the family's remaining micro resolutions into hits;
// ranking on cell digests would scatter the family and re-simulate the
// micro-sims once per worker. L1, singleflight, and the digest
// verification all still use the cell's own content address.
func (c *Coordinator) ExecSharded(k campaign.Key, shardDigest string, tr *telemetry.CellTrace, deadline time.Time) (campaign.Entry, bool, error) {
	if !deadline.IsZero() {
		c.deadlineCells.Add(1)
	}
	return c.execDeadline(k, shardDigest, tr, deadline)
}

func (c *Coordinator) execDeadline(k campaign.Key, rankDigest string, tr *telemetry.CellTrace, deadline time.Time) (campaign.Entry, bool, error) {
	digest := k.Digest()
	if rankDigest == "" {
		rankDigest = digest
	}
	probe := time.Now()
	c.mu.Lock()
	if ent, ok := c.l1[digest]; ok {
		c.mu.Unlock()
		c.l1Hits.Add(1)
		tr.StageDetail(telemetry.StageCache, probe, "l1")
		return ent, true, nil
	}
	if f, ok := c.flights[digest]; ok {
		c.mu.Unlock()
		<-f.done
		tr.Stage(telemetry.StageCoalesce, probe)
		tr.SetJoined(f.tr.TraceID())
		tr.Adopt(f.tr.Spans(), "")
		if f.err != nil {
			return campaign.Entry{}, false, f.err
		}
		// A coalesced follower's cell cost it nothing: a cache hit as
		// far as its accounting is concerned.
		return f.ent, true, nil
	}
	f := &l1flight{done: make(chan struct{}), tr: tr}
	c.flights[digest] = f
	c.mu.Unlock()

	ent, cached, err := c.dispatch(k, digest, rankDigest, tr, deadline)

	c.mu.Lock()
	delete(c.flights, digest)
	if err == nil {
		c.l1[digest] = ent
	}
	c.mu.Unlock()
	f.ent, f.err = ent, err
	close(f.done)
	return ent, cached, err
}

// dispatch runs the retry loop: acquire the best-ranked available
// worker, attempt (with hedging), reshard to the next worker on
// failure. Validation failures and digest mismatches are fatal; 429s
// and connection errors reshard.
func (c *Coordinator) dispatch(k campaign.Key, digest, rankDigest string, tr *telemetry.CellTrace, deadline time.Time) (campaign.Entry, bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.CellTimeout)
	defer cancel()
	var lastErr error
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		w, err := c.acquireWait(ctx, rankDigest)
		if err != nil {
			if lastErr != nil {
				return campaign.Entry{}, false, fmt.Errorf("fleet: cell %s: %w (last worker error: %v)", digest[:12], err, lastErr)
			}
			return campaign.Entry{}, false, fmt.Errorf("fleet: cell %s: %w", digest[:12], err)
		}
		out := c.attemptHedged(ctx, w, k, digest, rankDigest, tr, deadline)
		if out.err == nil {
			return out.ent, out.cached, nil
		}
		if out.fatal {
			return campaign.Entry{}, false, out.err
		}
		lastErr = out.err
	}
	return campaign.Entry{}, false, fmt.Errorf("fleet: cell %s failed after %d attempts: %w", digest[:12], c.opts.MaxAttempts, lastErr)
}

// acquireWait blocks until some worker in the cell's rendezvous order
// has a free window slot (25ms poll — windows release on completions,
// holdoffs expire on their own).
func (c *Coordinator) acquireWait(ctx context.Context, digest string) (*worker, error) {
	for {
		if w := c.acquire(digest, nil); w != nil {
			return w, nil
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("no worker available: %w", ctx.Err())
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// acquire claims the best-ranked usable worker for a digest, skipping
// exclude (the hedge's primary).
func (c *Coordinator) acquire(digest string, exclude *worker) *worker {
	now := time.Now()
	for _, w := range rankWorkers(digest, c.snapshot()) {
		if w == exclude {
			continue
		}
		if w.tryAcquire(now) {
			return w
		}
	}
	return nil
}

type attemptOutcome struct {
	ent    campaign.Entry
	cached bool
	err    error
	fatal  bool
	hedged bool
	// span is the leg's remote-dispatch span; children are the spans
	// the worker shipped back inside its response. Both are recorded on
	// the cell's trace as legs resolve (the winner's span is marked).
	span     telemetry.StageSpan
	children []telemetry.StageSpan
	worker   string
}

// record stitches one resolved leg's spans onto the cell's trace.
// Cancelled legs never deliver an outcome, so a hedged trace carries at
// most one winning remote span (and at most one adopted compute span).
func (out attemptOutcome) record(tr *telemetry.CellTrace, winner bool) {
	if tr == nil {
		return
	}
	sp := out.span
	sp.Winner = winner
	tr.Record(sp)
	tr.Adopt(out.children, out.worker)
}

// attemptHedged executes the cell on primary and, if it outlives the
// hedge threshold, also on the next-ranked available worker. The first
// success wins and cancels the other request; the worker's coalescing
// layer cancels the losing cell if it is still queued there.
func (c *Coordinator) attemptHedged(ctx context.Context, primary *worker, k campaign.Key, digest, rankDigest string, tr *telemetry.CellTrace, deadline time.Time) attemptOutcome {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan attemptOutcome, 2)
	go c.attempt(ctx, primary, k, digest, tr.Context(), false, results)
	inFlight := 1
	hedgeT := time.NewTimer(c.hedgeDelayFor(deadline))
	defer hedgeT.Stop()
	var firstErr attemptOutcome
	haveErr := false
	for {
		select {
		case out := <-results:
			inFlight--
			if out.err == nil {
				cancel() // first result wins; the sibling is abandoned
				out.record(tr, true)
				if out.hedged {
					c.hedgeWins.Add(1)
				}
				return out
			}
			out.record(tr, false)
			if out.fatal {
				return out
			}
			if inFlight > 0 {
				// One leg failed but the other is still running — its
				// result (or error) decides the attempt.
				if !haveErr {
					firstErr, haveErr = out, true
				}
				continue
			}
			if haveErr {
				return firstErr
			}
			return out
		case <-hedgeT.C:
			if inFlight == 1 {
				if h := c.acquire(rankDigest, primary); h != nil {
					c.hedges.Add(1)
					if !deadline.IsZero() {
						c.deadlineHedges.Add(1)
					}
					inFlight++
					go c.attempt(ctx, h, k, digest, tr.Context(), true, results)
				}
			}
		}
	}
}

// hedgeDelay is the straggler threshold: ~1.1× the observed p99 of
// completed cells once history is meaningful, the configured floor
// before that. Never below 10ms — hedging microsecond-scale cache hits
// would double traffic for nothing.
func (c *Coordinator) hedgeDelay() time.Duration {
	c.latMu.Lock()
	defer c.latMu.Unlock()
	if c.lat.Count() < 16 {
		return c.opts.HedgeAfter
	}
	d := time.Duration(1.1 * c.lat.Quantile(0.99) * float64(time.Second))
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

// hedgeDelayFor tightens the hedge threshold for deadline-lane cells:
// never wait longer than half the remaining budget before duplicating
// the cell, so a straggling primary still leaves the hedge a real
// chance of beating the deadline. The 10ms floor keeps microsecond
// cells from doubling traffic even when the deadline has nearly (or
// already) passed.
func (c *Coordinator) hedgeDelayFor(deadline time.Time) time.Duration {
	d := c.hedgeDelay()
	if deadline.IsZero() {
		return d
	}
	if budget := time.Until(deadline) / 2; budget < d {
		d = budget
	}
	if d < 10*time.Millisecond {
		d = 10 * time.Millisecond
	}
	return d
}

func (c *Coordinator) observe(elapsed time.Duration) {
	c.latMu.Lock()
	c.lat.Add(elapsed.Seconds())
	c.latMu.Unlock()
}

// attempt performs one POST /v1/exec against one worker and classifies
// the outcome for the dispatch loop. tc is the cell trace's propagation
// context (zero for untraced cells): it rides the X-Duplexity-* headers
// so the worker's own spans join the same trace, with hedged legs
// tagged so the worker side can tell a duplicate from a primary.
func (c *Coordinator) attempt(ctx context.Context, w *worker, k campaign.Key, digest string, tc telemetry.TraceContext, hedged bool, results chan<- attemptOutcome) {
	defer w.release()
	out := attemptOutcome{hedged: hedged, worker: w.name}
	finishSpan := func(start time.Time, errMsg string) {
		out.span = telemetry.StageSpan{
			Stage:       telemetry.StageRemote,
			StartUnixNs: start.UnixNano(),
			DurNs:       time.Since(start).Nanoseconds(),
			Worker:      w.name,
			Hedged:      hedged,
			Err:         errMsg,
		}
	}
	start := time.Now()
	body, err := json.Marshal(serve.CellRequest{CellSpec: expt.CellSpec{
		Kind: k.Kind, Design: k.Design, Workload: k.Workload, Load: k.Load,
		Governor: k.Governor, Lambda: k.Lambda,
	}})
	if err != nil {
		out.err, out.fatal = err, true
		finishSpan(start, err.Error())
		results <- out
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.name+"/v1/exec", bytes.NewReader(body))
	if err != nil {
		out.err, out.fatal = err, true
		finishSpan(start, err.Error())
		results <- out
		return
	}
	req.Header.Set("Content-Type", "application/json")
	tc.Hedged = hedged
	tc.Inject(req.Header)
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			// A real connection failure, not our own hedge cancellation:
			// down-mark so retries prefer healthy workers.
			w.connFail(time.Now())
		}
		out.err = fmt.Errorf("fleet: %s: %w", w.name, err)
		finishSpan(start, out.err.Error())
		results <- out
		return
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		if ctx.Err() == nil {
			w.connFail(time.Now())
		}
		out.err = fmt.Errorf("fleet: %s: reading response: %w", w.name, err)
		finishSpan(start, out.err.Error())
		results <- out
		return
	}
	switch resp.StatusCode {
	case http.StatusOK:
		var raw expt.RawCellResult
		if err := json.Unmarshal(data, &raw); err != nil {
			w.connFail(time.Now())
			out.err = fmt.Errorf("fleet: %s: undecodable exec response: %w", w.name, err)
			break
		}
		if raw.Digest != digest {
			// The worker resolved a different content address for the
			// same spec: world drift the registration check should have
			// caught. Never cache it; never retry into it.
			out.err = fmt.Errorf("fleet: %s computed digest %s for cell %s (world drift?)", w.name, raw.Digest, digest)
			out.fatal = true
			break
		}
		w.success()
		c.observe(time.Since(start))
		out.ent = campaign.Entry{Key: k, WallSeconds: raw.WallSeconds, Result: raw.Result}
		out.cached = raw.Cached
		out.children = raw.Stages
	case http.StatusTooManyRequests:
		ra, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		w.reject(time.Duration(ra)*time.Second, time.Now())
		out.err = fmt.Errorf("fleet: %s shed cell %s (retry after %ds)", w.name, digest[:12], ra)
	case http.StatusBadRequest:
		out.err = fmt.Errorf("fleet: %s rejected cell %s: %s", w.name, digest[:12], data)
		out.fatal = true
	default:
		// 503 (draining), 5xx, anything unexpected: back off this worker.
		w.connFail(time.Now())
		out.err = fmt.Errorf("fleet: %s returned %d for cell %s: %s", w.name, resp.StatusCode, digest[:12], data)
	}
	errMsg := ""
	if out.err != nil {
		errMsg = out.err.Error()
	}
	finishSpan(start, errMsg)
	out.span.Detail = resp.Status
	results <- out
}

// WorkerStatus is one worker's row in the fleet status report.
type WorkerStatus struct {
	Name       string `json:"name"`
	Window     int    `json:"window"`
	InFlight   int    `json:"in_flight"`
	Down       bool   `json:"down"`
	Joined     bool   `json:"joined,omitempty"`
	Dispatched int64  `json:"dispatched"`
	Completed  int64  `json:"completed"`
	Rejected   int64  `json:"rejected"`
	Failed     int64  `json:"failed"`
}

// Status is the GET /v1/fleetz body.
type Status struct {
	World          expt.World     `json:"world"`
	Workers        []WorkerStatus `json:"workers"`
	Hedges         int64          `json:"hedges"`
	HedgeWins      int64          `json:"hedge_wins"`
	Retries        int64          `json:"retries"`
	L1Hits         int64          `json:"l1_hits"`
	L1Entries      int            `json:"l1_entries"`
	Joins          int64          `json:"joins,omitempty"`
	Leaves         int64          `json:"leaves,omitempty"`
	Evictions      int64          `json:"evictions,omitempty"`
	DeadlineCells  int64          `json:"deadline_cells,omitempty"`
	DeadlineHedges int64          `json:"deadline_hedges,omitempty"`
}

// Stats snapshots the fleet's dispatch accounting.
func (c *Coordinator) Stats() Status {
	now := time.Now()
	st := Status{
		World:          c.World(),
		Hedges:         c.hedges.Load(),
		HedgeWins:      c.hedgeWins.Load(),
		Retries:        c.retries.Load(),
		L1Hits:         c.l1Hits.Load(),
		Joins:          c.joins.Load(),
		Leaves:         c.leaves.Load(),
		Evictions:      c.evictions.Load(),
		DeadlineCells:  c.deadlineCells.Load(),
		DeadlineHedges: c.deadlineHedges.Load(),
	}
	for _, w := range c.snapshot() {
		st.Workers = append(st.Workers, w.status(now))
	}
	c.mu.Lock()
	st.L1Entries = len(c.l1)
	c.mu.Unlock()
	return st
}

// Handler returns the coordinator's introspection and membership API
// (GET /v1/fleetz, the aggregated GET /v1/fleet/metricsz, and the
// POST /v1/fleet/join and /v1/fleet/leave membership endpoints),
// mounted by duplexityd coordinate next to the serving layer's routes.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleetz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(c.Stats())
	})
	mux.HandleFunc("GET /v1/fleet/metricsz", c.handleFleetMetricsz)
	mux.HandleFunc("POST /v1/fleet/join", c.handleJoin)
	mux.HandleFunc("POST /v1/fleet/leave", c.handleLeave)
	return mux
}

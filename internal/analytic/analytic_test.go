package analytic

import (
	"math"
	"sort"
	"testing"

	"duplexity/internal/stats"
)

func TestClosedLoopUtilization(t *testing.T) {
	cases := []struct{ c, s, want float64 }{
		{10, 0, 1},
		{0, 10, 0},
		{5, 5, 0.5},
		{9, 1, 0.9},
		{1, 9, 0.1},
	}
	for _, c := range cases {
		if got := ClosedLoopUtilization(c.c, c.s); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("U(%v,%v) = %v, want %v", c.c, c.s, got, c.want)
		}
	}
	if !math.IsNaN(ClosedLoopUtilization(-1, 1)) {
		t.Error("negative compute accepted")
	}
	if ClosedLoopUtilization(0, 0) != 1 {
		t.Error("degenerate case should be fully utilized")
	}
}

func TestUtilizationSurfaceShape(t *testing.T) {
	stalls := []float64{0.1, 1, 10, 100}
	computes := []float64{0.1, 1, 10, 100}
	s := UtilizationSurface(stalls, computes)
	// Monotone: longer stalls reduce utilization; longer compute raises it.
	for i := range stalls {
		for j := range computes {
			if i > 0 && s[i][j] > s[i-1][j] {
				t.Fatalf("utilization increased with stall length at (%d,%d)", i, j)
			}
			if j > 0 && s[i][j] < s[i][j-1] {
				t.Fatalf("utilization decreased with compute length at (%d,%d)", i, j)
			}
		}
	}
	// Paper's claims: DRAM-scale stalls (0.1µs) every 10µs ≈ full
	// utilization; stall == compute gives exactly 50%.
	if s[0][2] < 0.98 {
		t.Fatalf("short-stall utilization = %v, want ~1", s[0][2])
	}
	if s[1][1] != 0.5 {
		t.Fatalf("balanced utilization = %v, want 0.5", s[1][1])
	}
}

func TestIdlePeriodsValidate(t *testing.T) {
	if (IdlePeriods{QPS: 0, Load: 0.5}).Validate() == nil {
		t.Error("zero QPS accepted")
	}
	if (IdlePeriods{QPS: 1000, Load: 0}).Validate() == nil {
		t.Error("zero load accepted")
	}
	if (IdlePeriods{QPS: 1000, Load: 1}).Validate() == nil {
		t.Error("unit load accepted")
	}
	if err := (IdlePeriods{QPS: 200_000, Load: 0.5}).Validate(); err != nil {
		t.Error(err)
	}
}

// The paper's Figure 1(b) anchor points: a 200K QPS service at 50% load
// has 10µs mean idle periods; 1M QPS at 50% load has 2µs.
func TestIdlePeriodPaperNumbers(t *testing.T) {
	p1 := IdlePeriods{QPS: 200_000, Load: 0.5}
	if got := p1.MeanUs(); math.Abs(got-10) > 1e-9 {
		t.Fatalf("200K @ 50%%: mean idle = %v µs, want 10", got)
	}
	p2 := IdlePeriods{QPS: 1_000_000, Load: 0.5}
	if got := p2.MeanUs(); math.Abs(got-2) > 1e-9 {
		t.Fatalf("1M @ 50%%: mean idle = %v µs, want 2", got)
	}
}

func TestIdleCDFProperties(t *testing.T) {
	p := IdlePeriods{QPS: 200_000, Load: 0.3}
	if p.CDF(0) != 0 || p.CDF(-5) != 0 {
		t.Fatal("CDF not zero at origin")
	}
	prev := 0.0
	for x := 0.5; x < 200; x *= 2 {
		v := p.CDF(x)
		if v < prev || v > 1 {
			t.Fatalf("CDF not monotone in [0,1] at %v", x)
		}
		prev = v
	}
	// CDF(mean) = 1 - 1/e.
	if got := p.CDF(p.MeanUs()); math.Abs(got-(1-math.Exp(-1))) > 1e-12 {
		t.Fatalf("CDF(mean) = %v", got)
	}
}

// Idle periods are exponential regardless of the service distribution —
// verify against discrete-event simulation with a heavy-tailed service.
func TestIdlePeriodsMemoryless(t *testing.T) {
	p := IdlePeriods{QPS: 200_000, Load: 0.5}
	meanSvcUs := 1e6 / p.QPS
	for _, svc := range []stats.Distribution{
		stats.Deterministic{Value: meanSvcUs},
		stats.Exponential{MeanVal: meanSvcUs},
		stats.Lognormal{MeanVal: meanSvcUs, CV: 2},
	} {
		periods := SimulateIdlePeriods(p, svc, 40000, 11)
		sort.Float64s(periods)
		var sum float64
		for _, v := range periods {
			sum += v
		}
		mean := sum / float64(len(periods))
		if math.Abs(mean-p.MeanUs())/p.MeanUs() > 0.05 {
			t.Fatalf("%s: empirical mean idle %v, analytic %v", svc, mean, p.MeanUs())
		}
		// Compare empirical and analytic CDF at a few points.
		for _, q := range []float64{0.25, 0.5, 0.9} {
			x := stats.Quantile(periods, q)
			if math.Abs(p.CDF(x)-q) > 0.03 {
				t.Fatalf("%s: CDF mismatch at q=%v: analytic %v", svc, q, p.CDF(x))
			}
		}
	}
}

func TestReadyThreadsPaperNumbers(t *testing.T) {
	// 10% stall: 11 virtual contexts keep 8 physical contexts ~90% fed.
	r := ReadyThreads{Contexts: 11, PStall: 0.1}
	if got := r.ProbAtLeast(8); got < 0.88 {
		t.Fatalf("P(>=8 | n=11, p=0.1) = %v", got)
	}
	// 50% stall: 21 virtual contexts needed.
	if got := MinContextsFor(8, 0.5, 0.9, 64); got < 19 || got > 23 {
		t.Fatalf("min contexts for 50%% stall = %v, want ~21", got)
	}
	if got := MinContextsFor(8, 0.1, 0.9, 64); got < 10 || got > 12 {
		t.Fatalf("min contexts for 10%% stall = %v, want ~11", got)
	}
}

func TestMinContextsUnsatisfiable(t *testing.T) {
	if got := MinContextsFor(8, 0.99, 0.9, 32); got != 33 {
		t.Fatalf("unsatisfiable search returned %v, want maxN+1", got)
	}
}

func TestReadyThreadsMonotone(t *testing.T) {
	prev := 0.0
	for n := 8; n <= 40; n++ {
		v := (ReadyThreads{Contexts: n, PStall: 0.5}).ProbAtLeast(8)
		if v < prev {
			t.Fatalf("P(>=8) not monotone in n at %d", n)
		}
		prev = v
	}
}
